// twreport: post-mortem reporting over the project's own JSON artifacts.
//
//   twreport run <results.json>        render one bench results file (the
//                                      {bench, runs:[...]} schema written by
//                                      bench::BenchReport) as markdown,
//                                      including each run's embedded trace
//                                      analysis when present.
//   twreport diff <a.json> <b.json>    compare two results files run-by-run
//                                      (matched on label + x): delta
//                                      throughput, rollback rate, execution
//                                      time and per-phase self-times, with a
//                                      relative noise threshold so identical
//                                      runs report zero significant deltas.
//   twreport flight <flight-N.json>    render a black-box flight-recorder
//                                      dump (schema otw-flight-v1): dump
//                                      reason, watchdog state, retained
//                                      snapshots with latency quantiles, and
//                                      the tail of the relayed-frame ring.
//   twreport snapshot <epoch.otwsnap>  print an "OTWSNAP1" snapshot
//                                      container's manifest (engine, epoch,
//                                      cut GVT, per-shard LP counts and
//                                      bytes) without restoring anything.
//
// The CLI is a thin shim over this library so the tests can drive the exact
// code the tool ships.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "otw/obs/json.hpp"

namespace otw::tools {

struct DiffOptions {
  /// Relative change below this fraction is reported but not significant.
  double threshold = 0.02;
};

/// One compared metric of one matched run.
struct MetricDelta {
  std::string name;
  double before = 0.0;
  double after = 0.0;
  /// |after - before| / max(|before|, |after|); 0 when both are 0.
  double relative = 0.0;
  bool significant = false;
};

/// All metric deltas for one (label, x) run present in both files.
struct RunDelta {
  std::string label;
  double x = 0.0;
  std::vector<MetricDelta> metrics;

  [[nodiscard]] bool significant() const {
    for (const MetricDelta& m : metrics) {
      if (m.significant) {
        return true;
      }
    }
    return false;
  }
};

struct DiffReport {
  std::string bench_a;
  std::string bench_b;
  std::vector<RunDelta> runs;
  std::vector<std::string> only_in_a;  ///< "label @ x" keys missing from b
  std::vector<std::string> only_in_b;

  [[nodiscard]] std::size_t significant_runs() const {
    std::size_t n = 0;
    for (const RunDelta& run : runs) {
      n += run.significant() ? 1 : 0;
    }
    return n;
  }
};

/// Reads and parses a whole JSON file. On failure returns false and fills
/// `error` with a one-line reason.
[[nodiscard]] bool load_json_file(const std::string& path,
                                  obs::json::Value& out, std::string& error);

/// Renders one bench results document as markdown. Returns false (with
/// `error`) when the document does not look like a BenchReport file.
[[nodiscard]] bool render_run_report(std::ostream& os,
                                     const obs::json::Value& doc,
                                     std::string& error);

/// Renders a flight-recorder dump (`flight-<shard>.json`, schema
/// otw-flight-v1) as markdown: reason, watchdog state, retained snapshots
/// with latency quantiles, and the tail of the relayed-frame ring. Returns
/// false (with `error`) when the document is not an otw-flight-v1 dump.
[[nodiscard]] bool render_flight_report(std::ostream& os,
                                        const obs::json::Value& doc,
                                        std::string& error);

/// Renders an "OTWSNAP1" snapshot container's manifest as markdown: engine,
/// epoch, cut GVT, and the per-shard LP counts and blob sizes — without
/// deserializing any LP state. Returns false (with `error`) when the file
/// cannot be read or is not a snapshot container.
[[nodiscard]] bool render_snapshot_manifest(std::ostream& os,
                                            const std::string& path,
                                            std::string& error);

/// Compares two bench results documents run-by-run.
[[nodiscard]] DiffReport diff_bench(const obs::json::Value& a,
                                    const obs::json::Value& b,
                                    const DiffOptions& options = {});

void render_diff_markdown(std::ostream& os, const DiffReport& report,
                          const DiffOptions& options = {});

/// The whole command-line tool (argv[0] ignored). Writes the report to
/// `out`, diagnostics to `err`. Returns the process exit code: 0 on
/// success, 2 on usage/parse errors.
int run_cli(int argc, const char* const* argv, std::ostream& out,
            std::ostream& err);

}  // namespace otw::tools
