// twtop: terminal viewer for the live introspection plane.
//
// Polls GET /snapshot on a running simulation's scrape endpoint
// (KernelConfig::observability.live_port) and renders a one-screen summary:
// cluster GVT, committed-event throughput (derived from successive polls),
// rollback ratio, one row per shard, and the watchdog's active alarms plus
// its most recent transitions. Curses-free on purpose — plain ANSI
// clear+home per frame — so it works in any terminal and inside CI logs.
//
//   twtop <port> [--interval-ms N] [--once] [--raw]
//
//     --interval-ms N   poll period (default 1000)
//     --once            print a single frame and exit (no screen clearing)
//     --raw             dump the raw JSON document instead of rendering
#include <unistd.h>

#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <sys/socket.h>
#include <vector>

#include "otw/obs/json.hpp"
#include "otw/util/net.hpp"

namespace {

constexpr char kUsage[] =
    "usage: twtop <port> [--interval-ms N] [--once] [--raw]\n";

/// One blocking HTTP GET against 127.0.0.1:port; returns the response body.
/// The live server closes the connection after each response, so "read to
/// EOF, strip headers" is a complete client.
std::string http_get(std::uint16_t port, const std::string& path) {
  const std::string ctx = "twtop";
  const int fd = otw::util::net::connect_loopback(port, ctx);
  const std::string request =
      "GET " + path + " HTTP/1.1\r\nHost: 127.0.0.1\r\nConnection: close\r\n\r\n";
  try {
    otw::util::net::write_all(
        fd, reinterpret_cast<const std::uint8_t*>(request.data()),
        request.size(), ctx);
    std::string response;
    char chunk[4096];
    for (;;) {
      const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
      if (n > 0) {
        response.append(chunk, static_cast<std::size_t>(n));
        continue;
      }
      if (n == 0) {
        break;
      }
      if (errno == EINTR) {
        continue;
      }
      otw::util::net::throw_errno(ctx, "recv");
    }
    ::close(fd);
    const std::size_t split = response.find("\r\n\r\n");
    if (split == std::string::npos) {
      throw std::runtime_error("twtop: malformed HTTP response (no header end)");
    }
    if (response.rfind("HTTP/1.1 200", 0) != 0) {
      throw std::runtime_error("twtop: server returned " +
                               response.substr(0, response.find('\r')));
    }
    return response.substr(split + 4);
  } catch (...) {
    ::close(fd);
    throw;
  }
}

double ratio(double num, double den) { return den > 0.0 ? num / den : 0.0; }

/// Throughput derivation across polls. `prev_*` only advance on a
/// successfully parsed poll, and a poll whose wall_ns matches the previous
/// one (a run that terminated but keeps serving its final snapshot) keeps
/// the last-known rate, flagged stale, instead of suppressing it forever.
struct RateTracker {
  std::uint64_t prev_wall_ns = 0;
  double prev_committed = 0.0;
  double last_rate = -1.0;  ///< < 0 until two advancing polls have been seen
  bool stale = false;

  void observe(std::uint64_t wall_ns, double committed) {
    if (prev_wall_ns != 0 && wall_ns > prev_wall_ns) {
      last_rate = (committed - prev_committed) /
                  (static_cast<double>(wall_ns - prev_wall_ns) / 1e9);
      stale = false;
    } else if (prev_wall_ns != 0) {
      stale = true;  // clock did not advance: show last-known rate as stale
    }
    if (wall_ns != prev_wall_ns) {
      prev_wall_ns = wall_ns;
      prev_committed = committed;
    }
  }
};

/// Worst-case per-seam latency summary across every shard (and, for link
/// seams, every (src,dst) pair): counts are summed, quantiles take the max —
/// the quantile upper bounds from different shards are not mergeable, and a
/// top view wants the worst offender anyway.
struct SeamRow {
  std::string seam;
  double count = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

std::vector<SeamRow> collect_seams(const otw::obs::json::Value* shards) {
  std::vector<SeamRow> rows;
  if (shards == nullptr || !shards->is_array()) {
    return rows;
  }
  for (const auto& s : shards->array) {
    const otw::obs::json::Value* hists = s.find("hists");
    if (hists == nullptr || !hists->is_array()) {
      continue;
    }
    for (const auto& h : hists->array) {
      const std::string seam = h.get_string("seam");
      SeamRow* row = nullptr;
      for (auto& r : rows) {
        if (r.seam == seam) {
          row = &r;
          break;
        }
      }
      if (row == nullptr) {
        rows.push_back(SeamRow{seam, 0.0, 0.0, 0.0, 0.0});
        row = &rows.back();
      }
      row->count += h.get_number("count");
      row->p50 = std::max(row->p50, h.get_number("p50"));
      row->p95 = std::max(row->p95, h.get_number("p95"));
      row->p99 = std::max(row->p99, h.get_number("p99"));
    }
  }
  return rows;
}

void render(const otw::obs::json::Value& doc, RateTracker& rates, bool clear) {
  if (clear) {
    std::fputs("\x1b[H\x1b[2J", stdout);
  }
  const double wall_ns = doc.get_number("wall_ns");
  const double gvt = doc.get_number("gvt_ticks", -1.0);
  const otw::obs::json::Value* shards = doc.find("shards");

  double committed = 0.0;
  double rolled_back = 0.0;
  double processed = 0.0;
  std::uint64_t lps = 0;
  if (shards != nullptr && shards->is_array()) {
    for (const auto& s : shards->array) {
      committed += s.get_number("events_committed");
      rolled_back += s.get_number("events_rolled_back");
      processed += s.get_number("events_processed");
      lps += static_cast<std::uint64_t>(s.get_number("num_lps"));
    }
  }
  rates.observe(static_cast<std::uint64_t>(wall_ns), committed);

  std::printf("twtop — live Time Warp introspection\n");
  if (gvt < 0) {
    std::printf("  GVT: inf");
  } else {
    std::printf("  GVT: %.0f", gvt);
  }
  std::printf("   LPs: %" PRIu64 "   committed: %.0f   rollback ratio: %.3f\n",
              lps, committed, ratio(rolled_back, processed));
  if (rates.last_rate >= 0.0) {
    std::printf("  throughput: %.0f committed events/s%s\n", rates.last_rate,
                rates.stale ? " (stale)" : "");
  } else {
    std::printf("  throughput: (need two polls)\n");
  }

  std::printf("\n  %-6s %-6s %-12s %-12s %-12s %-10s %-10s\n", "shard", "lps",
              "processed", "committed", "rolledback", "mem MiB", "mailbox");
  if (shards != nullptr && shards->is_array()) {
    for (const auto& s : shards->array) {
      std::printf("  %-6.0f %-6.0f %-12.0f %-12.0f %-12.0f %-10.2f %-10.0f\n",
                  s.get_number("shard"), s.get_number("num_lps"),
                  s.get_number("events_processed"),
                  s.get_number("events_committed"),
                  s.get_number("events_rolled_back"),
                  s.get_number("memory_bytes") / (1024.0 * 1024.0),
                  s.get_number("mailbox_occupancy"));
    }
  }

  const std::vector<SeamRow> seams = collect_seams(shards);
  if (!seams.empty()) {
    std::printf("\n  %-22s %-10s %-12s %-12s %-12s\n", "latency seam", "count",
                "p50", "p95", "p99");
    for (const SeamRow& r : seams) {
      std::printf("  %-22s %-10.0f %-12.0f %-12.0f %-12.0f\n", r.seam.c_str(),
                  r.count, r.p50, r.p95, r.p99);
    }
  }

  const otw::obs::json::Value* watchdog = doc.find("watchdog");
  const otw::obs::json::Value* active =
      watchdog != nullptr ? watchdog->find("active") : nullptr;
  if (active != nullptr && active->is_array() && !active->array.empty()) {
    std::printf("\n  watchdog: %zu ALARM(S) ACTIVE\n", active->array.size());
    for (const auto& a : active->array) {
      std::printf("    !! %s shard=%.0f\n", a.get_string("rule").c_str(),
                  a.get_number("shard"));
    }
  } else {
    std::printf("\n  watchdog: healthy\n");
  }
  const otw::obs::json::Value* events =
      watchdog != nullptr ? watchdog->find("events") : nullptr;
  if (events != nullptr && events->is_array() && !events->array.empty()) {
    std::printf("  recent transitions:\n");
    const std::size_t start =
        events->array.size() > 5 ? events->array.size() - 5 : 0;
    for (std::size_t i = start; i < events->array.size(); ++i) {
      const auto& e = events->array[i];
      std::printf("    %s %s shard=%.0f %s\n", e.get_string("state").c_str(),
                  e.get_string("rule").c_str(), e.get_number("shard"),
                  e.get_string("detail").c_str());
    }
  }
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  std::uint16_t port = 0;
  std::uint32_t interval_ms = 1000;
  bool once = false;
  bool raw = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--once") {
      once = true;
    } else if (arg == "--raw") {
      raw = true;
    } else if (arg == "--interval-ms" && i + 1 < argc) {
      interval_ms = static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (!arg.empty() && arg[0] != '-' && port == 0) {
      port = static_cast<std::uint16_t>(std::strtoul(arg.c_str(), nullptr, 10));
    } else {
      std::fputs(kUsage, stderr);
      return 2;
    }
  }
  if (port == 0) {
    std::fputs(kUsage, stderr);
    return 2;
  }

  RateTracker rates;
  for (;;) {
    // A failed or malformed poll must leave the rate tracker untouched so
    // the next good poll derives its rate from the last *good* sample, not
    // from a half-updated one.
    std::string body;
    bool polled = false;
    try {
      body = http_get(port, "/snapshot");
      polled = true;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      if (once) {
        return 1;
      }
    }
    if (polled) {
      if (raw) {
        std::fputs(body.c_str(), stdout);
        std::fputc('\n', stdout);
      } else {
        otw::obs::json::Value doc;
        if (!otw::obs::json::parse(body, doc)) {
          std::fprintf(stderr, "twtop: endpoint returned malformed JSON\n");
          if (once) {
            return 1;
          }
        } else {
          render(doc, rates, /*clear=*/!once);
        }
      }
    }
    if (once) {
      break;
    }
    ::usleep(interval_ms * 1000);
  }
  return 0;
}
