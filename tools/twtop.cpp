// twtop: terminal viewer for the live introspection plane.
//
// Polls GET /snapshot on a running simulation's scrape endpoint
// (KernelConfig::observability.live_port) and renders a one-screen summary:
// cluster GVT, committed-event throughput (derived from successive polls),
// rollback ratio, one row per shard, and the watchdog's active alarms plus
// its most recent transitions. Curses-free on purpose — plain ANSI
// clear+home per frame — so it works in any terminal and inside CI logs.
//
//   twtop <port> [--interval-ms N] [--once] [--raw]
//
//     --interval-ms N   poll period (default 1000)
//     --once            print a single frame and exit (no screen clearing)
//     --raw             dump the raw JSON document instead of rendering
#include <unistd.h>

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <sys/socket.h>
#include <vector>

#include "otw/obs/json.hpp"
#include "otw/util/net.hpp"

namespace {

constexpr char kUsage[] =
    "usage: twtop <port> [--interval-ms N] [--once] [--raw]\n";

/// One blocking HTTP GET against 127.0.0.1:port; returns the response body.
/// The live server closes the connection after each response, so "read to
/// EOF, strip headers" is a complete client.
std::string http_get(std::uint16_t port, const std::string& path) {
  const std::string ctx = "twtop";
  const int fd = otw::util::net::connect_loopback(port, ctx);
  const std::string request =
      "GET " + path + " HTTP/1.1\r\nHost: 127.0.0.1\r\nConnection: close\r\n\r\n";
  try {
    otw::util::net::write_all(
        fd, reinterpret_cast<const std::uint8_t*>(request.data()),
        request.size(), ctx);
    std::string response;
    char chunk[4096];
    for (;;) {
      const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
      if (n > 0) {
        response.append(chunk, static_cast<std::size_t>(n));
        continue;
      }
      if (n == 0) {
        break;
      }
      if (errno == EINTR) {
        continue;
      }
      otw::util::net::throw_errno(ctx, "recv");
    }
    ::close(fd);
    const std::size_t split = response.find("\r\n\r\n");
    if (split == std::string::npos) {
      throw std::runtime_error("twtop: malformed HTTP response (no header end)");
    }
    if (response.rfind("HTTP/1.1 200", 0) != 0) {
      throw std::runtime_error("twtop: server returned " +
                               response.substr(0, response.find('\r')));
    }
    return response.substr(split + 4);
  } catch (...) {
    ::close(fd);
    throw;
  }
}

double ratio(double num, double den) { return den > 0.0 ? num / den : 0.0; }

struct Frame {
  std::uint64_t wall_ns = 0;
  double committed = 0.0;
};

void render(const otw::obs::json::Value& doc, const Frame& prev, bool clear) {
  if (clear) {
    std::fputs("\x1b[H\x1b[2J", stdout);
  }
  const double wall_ns = doc.get_number("wall_ns");
  const double gvt = doc.get_number("gvt_ticks", -1.0);
  const otw::obs::json::Value* shards = doc.find("shards");

  double committed = 0.0;
  double rolled_back = 0.0;
  double processed = 0.0;
  std::uint64_t lps = 0;
  if (shards != nullptr && shards->is_array()) {
    for (const auto& s : shards->array) {
      committed += s.get_number("events_committed");
      rolled_back += s.get_number("events_rolled_back");
      processed += s.get_number("events_processed");
      lps += static_cast<std::uint64_t>(s.get_number("num_lps"));
    }
  }
  double rate = 0.0;
  if (prev.wall_ns != 0 && wall_ns > static_cast<double>(prev.wall_ns)) {
    rate = (committed - prev.committed) /
           ((wall_ns - static_cast<double>(prev.wall_ns)) / 1e9);
  }

  std::printf("twtop — live Time Warp introspection\n");
  if (gvt < 0) {
    std::printf("  GVT: inf");
  } else {
    std::printf("  GVT: %.0f", gvt);
  }
  std::printf("   LPs: %" PRIu64 "   committed: %.0f   rollback ratio: %.3f\n",
              lps, committed, ratio(rolled_back, processed));
  if (rate > 0.0) {
    std::printf("  throughput: %.0f committed events/s\n", rate);
  } else {
    std::printf("  throughput: (need two polls)\n");
  }

  std::printf("\n  %-6s %-6s %-12s %-12s %-12s %-10s %-10s\n", "shard", "lps",
              "processed", "committed", "rolledback", "mem MiB", "mailbox");
  if (shards != nullptr && shards->is_array()) {
    for (const auto& s : shards->array) {
      std::printf("  %-6.0f %-6.0f %-12.0f %-12.0f %-12.0f %-10.2f %-10.0f\n",
                  s.get_number("shard"), s.get_number("num_lps"),
                  s.get_number("events_processed"),
                  s.get_number("events_committed"),
                  s.get_number("events_rolled_back"),
                  s.get_number("memory_bytes") / (1024.0 * 1024.0),
                  s.get_number("mailbox_occupancy"));
    }
  }

  const otw::obs::json::Value* watchdog = doc.find("watchdog");
  const otw::obs::json::Value* active =
      watchdog != nullptr ? watchdog->find("active") : nullptr;
  if (active != nullptr && active->is_array() && !active->array.empty()) {
    std::printf("\n  watchdog: %zu ALARM(S) ACTIVE\n", active->array.size());
    for (const auto& a : active->array) {
      std::printf("    !! %s shard=%.0f\n", a.get_string("rule").c_str(),
                  a.get_number("shard"));
    }
  } else {
    std::printf("\n  watchdog: healthy\n");
  }
  const otw::obs::json::Value* events =
      watchdog != nullptr ? watchdog->find("events") : nullptr;
  if (events != nullptr && events->is_array() && !events->array.empty()) {
    std::printf("  recent transitions:\n");
    const std::size_t start =
        events->array.size() > 5 ? events->array.size() - 5 : 0;
    for (std::size_t i = start; i < events->array.size(); ++i) {
      const auto& e = events->array[i];
      std::printf("    %s %s shard=%.0f %s\n", e.get_string("state").c_str(),
                  e.get_string("rule").c_str(), e.get_number("shard"),
                  e.get_string("detail").c_str());
    }
  }
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  std::uint16_t port = 0;
  std::uint32_t interval_ms = 1000;
  bool once = false;
  bool raw = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--once") {
      once = true;
    } else if (arg == "--raw") {
      raw = true;
    } else if (arg == "--interval-ms" && i + 1 < argc) {
      interval_ms = static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (!arg.empty() && arg[0] != '-' && port == 0) {
      port = static_cast<std::uint16_t>(std::strtoul(arg.c_str(), nullptr, 10));
    } else {
      std::fputs(kUsage, stderr);
      return 2;
    }
  }
  if (port == 0) {
    std::fputs(kUsage, stderr);
    return 2;
  }

  Frame prev;
  for (;;) {
    std::string body;
    try {
      body = http_get(port, "/snapshot");
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
    if (raw) {
      std::fputs(body.c_str(), stdout);
      std::fputc('\n', stdout);
    } else {
      otw::obs::json::Value doc;
      if (!otw::obs::json::parse(body, doc)) {
        std::fprintf(stderr, "twtop: endpoint returned malformed JSON\n");
        return 1;
      }
      render(doc, prev, /*clear=*/!once);
      prev.wall_ns = static_cast<std::uint64_t>(doc.get_number("wall_ns"));
      double committed = 0.0;
      const otw::obs::json::Value* shards = doc.find("shards");
      if (shards != nullptr && shards->is_array()) {
        for (const auto& s : shards->array) {
          committed += s.get_number("events_committed");
        }
      }
      prev.committed = committed;
    }
    if (once) {
      break;
    }
    ::usleep(interval_ms * 1000);
  }
  return 0;
}
