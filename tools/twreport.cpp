// twreport CLI entry point; all the work lives in twreport_lib so the tests
// can drive the same code.
#include <iostream>

#include "twreport_lib.hpp"

int main(int argc, char** argv) {
  return otw::tools::run_cli(argc, argv, std::cout, std::cerr);
}
