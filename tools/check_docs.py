#!/usr/bin/env python3
"""Documentation lint for the otw repository.

Two checks, both zero-dependency (stdlib only), run by CI's docs-check job:

1. Markdown link integrity. Every ``[text](target)`` in every tracked
   ``*.md`` file is resolved: relative paths must exist on disk, and
   ``#fragment`` anchors (same-file or cross-file) must match a heading in
   the target file after GitHub's slugging rules (lowercase, punctuation
   stripped, spaces to hyphens, ``-1``/``-2`` suffixes for duplicates).
   External schemes (http/https/mailto) are not fetched.

2. TraceKind drift guard. The observability docs promise that DESIGN.md
   section 5b documents the full trace schema; this check parses the
   ``TraceKind`` enumerators out of ``src/obs/include/otw/obs/trace.hpp``
   and fails if any enumerator is missing from that section, so adding a
   trace kind without documenting it breaks CI.

3. HealthRule drift guard. Same discipline for the live plane: the
   ``HealthRule`` enumerators in ``src/obs/include/otw/obs/live.hpp`` must
   all appear (backticked) in DESIGN.md section 9's watchdog rule table.

4. Seam drift guard. The latency-attribution ``Seam`` enumerators in
   ``src/obs/include/otw/obs/hist.hpp`` must all appear (backticked) in
   DESIGN.md section 10's seam table.

5. Flight schema drift guard. Every JSON key ``src/obs/flight.cpp``
   actually emits (the ``\"key\":`` literals) must appear in DESIGN.md
   section 10's dump-schema listing, so the documented ``otw-flight-v1``
   schema cannot silently drift from the writer.

6. QueueKind drift guard. The ``QueueKind`` enumerators in
   ``src/timewarp/include/otw/tw/pending_set.hpp`` must all appear
   (backticked) in DESIGN.md section 10b's pending-event-set tables, so a
   new racing implementation cannot ship undocumented.

7. Control-frame tag drift guard. Every transport-reserved wire tag
   (``kTag*`` constants >= 0xFF00 in
   ``src/platform/include/otw/platform/wire.hpp``) must appear in DESIGN.md
   section 8b's tag table with both its name and its hex value, so a new
   control frame cannot ship without a documented slot in the protocol.

8. MIGRATE frame schema drift guard. Every field name in wire.hpp's
   ``kMigrateFrameFields`` listing must appear (backticked) in DESIGN.md
   section 8b's frame-layout description, keeping the documented wire
   order in lockstep with the serializer.

9. Snapshot container schema drift guard. Every field name in wire.hpp's
   ``kSnapshotManifestFields`` listing (the ``OTWSNAP1`` file layout
   written by ``tw::snapshot`` and the coordinator's spill path) must
   appear (backticked) in DESIGN.md section 8c's container description.

Usage: ``python3 tools/check_docs.py`` from the repository root (or any
subdirectory; the root is located from this file's path). Exit 0 = clean.
"""

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
TRACE_HEADER = REPO_ROOT / "src" / "obs" / "include" / "otw" / "obs" / "trace.hpp"
LIVE_HEADER = REPO_ROOT / "src" / "obs" / "include" / "otw" / "obs" / "live.hpp"
HIST_HEADER = REPO_ROOT / "src" / "obs" / "include" / "otw" / "obs" / "hist.hpp"
FLIGHT_SOURCE = REPO_ROOT / "src" / "obs" / "flight.cpp"
PENDING_HEADER = (REPO_ROOT / "src" / "timewarp" / "include" / "otw" / "tw"
                  / "pending_set.hpp")
WIRE_HEADER = (REPO_ROOT / "src" / "platform" / "include" / "otw" / "platform"
               / "wire.hpp")
DESIGN = REPO_ROOT / "DESIGN.md"

# Directories never scanned for markdown (build trees, VCS internals).
SKIP_DIRS = {".git", "build", "build-werror", "build-tsan", "build-asan",
             "node_modules", ".cache"}

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
FENCE_RE = re.compile(r"^(```|~~~)")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: strip markup, lowercase, drop punctuation,
    spaces to hyphens."""
    # Inline code and emphasis markers vanish; their contents stay.
    text = re.sub(r"[`*_]", "", heading)
    # Links render as their text.
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_slugs(md_path: Path) -> set:
    """All anchor slugs a GitHub render of this file would expose."""
    slugs = {}
    out = set()
    in_fence = False
    for line in md_path.read_text(encoding="utf-8").splitlines():
        if FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = HEADING_RE.match(line)
        if not m:
            continue
        slug = github_slug(m.group(2))
        n = slugs.get(slug, 0)
        slugs[slug] = n + 1
        out.add(slug if n == 0 else f"{slug}-{n}")
    return out


def markdown_files():
    for path in sorted(REPO_ROOT.rglob("*.md")):
        if any(part in SKIP_DIRS for part in path.relative_to(REPO_ROOT).parts):
            continue
        yield path


def extract_links(md_path: Path):
    """(line_number, target) for every inline link outside code fences."""
    links = []
    in_fence = False
    for lineno, line in enumerate(
            md_path.read_text(encoding="utf-8").splitlines(), start=1):
        if FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        # Inline code spans can hold example links; mask them out.
        masked = re.sub(r"`[^`]*`", "", line)
        for m in LINK_RE.finditer(masked):
            links.append((lineno, m.group(1)))
    return links


def check_links():
    errors = []
    slug_cache = {}
    for md in markdown_files():
        rel = md.relative_to(REPO_ROOT)
        for lineno, target in extract_links(md):
            if re.match(r"^[a-zA-Z][a-zA-Z0-9+.-]*:", target):
                continue  # http:, https:, mailto: — not fetched
            path_part, _, fragment = target.partition("#")
            if path_part:
                dest = (md.parent / path_part).resolve()
                if not dest.exists():
                    errors.append(f"{rel}:{lineno}: broken link "
                                  f"'{target}' (no such file)")
                    continue
            else:
                dest = md
            if fragment:
                if dest.suffix.lower() != ".md" or dest.is_dir():
                    continue  # anchors into non-markdown are not checkable
                if dest not in slug_cache:
                    slug_cache[dest] = heading_slugs(dest)
                if fragment.lower() not in slug_cache[dest]:
                    errors.append(f"{rel}:{lineno}: broken anchor "
                                  f"'{target}' (no heading slugs to "
                                  f"'#{fragment}')")
    return errors


def enum_members(header: Path, enum_name: str):
    """Enumerator names of one ``enum class`` in a header, in order.
    ``kCount``-style sentinels are skipped."""
    text = header.read_text(encoding="utf-8")
    m = re.search(rf"enum\s+class\s+{enum_name}[^{{]*\{{(.*?)\}};", text, re.S)
    if not m:
        sys.exit(f"error: could not find 'enum class {enum_name}' "
                 f"in {header}")
    body = re.sub(r"//[^\n]*", "", m.group(1))  # strip comments
    body = re.sub(r"/\*.*?\*/", "", body, flags=re.S)
    members = []
    for entry in body.split(","):
        name = entry.split("=")[0].strip()
        if name and name != "kCount":
            members.append(name)
    return members


def trace_kinds():
    """Enumerator names of otw::obs::TraceKind, in declaration order."""
    return enum_members(TRACE_HEADER, "TraceKind")


def design_section(label: str, what: str):
    """The text of DESIGN.md from a ``## <label>`` heading to the next ##."""
    lines = DESIGN.read_text(encoding="utf-8").splitlines()
    start = None
    for i, line in enumerate(lines):
        if re.match(rf"^##\s+{re.escape(label)}\b", line):
            start = i
            break
    if start is None:
        sys.exit(f"error: DESIGN.md has no '## {label}' section ({what})")
    end = len(lines)
    for i in range(start + 1, len(lines)):
        if lines[i].startswith("## "):
            end = i
            break
    return "\n".join(lines[start:end])


def check_trace_drift():
    errors = []
    section = design_section("5b", "trace schema")
    for kind in trace_kinds():
        if not re.search(rf"`{re.escape(kind)}`", section):
            errors.append(f"DESIGN.md: TraceKind::{kind} exists in "
                          f"trace.hpp but is not documented in the "
                          f"section 5b schema table")
    return errors


def check_health_rule_drift():
    errors = []
    section = design_section("9", "live introspection plane")
    for rule in enum_members(LIVE_HEADER, "HealthRule"):
        if not re.search(rf"`{re.escape(rule)}`", section):
            errors.append(f"DESIGN.md: HealthRule::{rule} exists in "
                          f"live.hpp but is not documented in the "
                          f"section 9 watchdog rule table")
    return errors


def check_seam_drift():
    errors = []
    section = design_section("10", "latency attribution plane")
    for seam in enum_members(HIST_HEADER, "Seam"):
        if not re.search(rf"`{re.escape(seam)}`", section):
            errors.append(f"DESIGN.md: Seam::{seam} exists in hist.hpp "
                          f"but is not documented in the section 10 seam "
                          f"table")
    return errors


def check_queue_kind_drift():
    errors = []
    section = design_section("10b", "pluggable pending-event sets")
    for kind in enum_members(PENDING_HEADER, "QueueKind"):
        if not re.search(rf"`{re.escape(kind)}`", section):
            errors.append(f"DESIGN.md: QueueKind::{kind} exists in "
                          f"pending_set.hpp but is not documented in the "
                          f"section 10b implementation table")
    return errors


def control_tags():
    """(name, hex value) of every transport-reserved control tag — the
    ``kTag*`` WireTag constants >= 0xFF00 in wire.hpp."""
    text = WIRE_HEADER.read_text(encoding="utf-8")
    tags = []
    for m in re.finditer(
            r"inline\s+constexpr\s+WireTag\s+(kTag\w+)\s*=\s*(0[xX][0-9A-Fa-f]+)",
            text):
        name, value = m.group(1), m.group(2)
        if int(value, 16) >= 0xFF00:
            tags.append((name, "0x" + value[2:].upper()))
    if not tags:
        sys.exit(f"error: no reserved kTag* constants found in {WIRE_HEADER}")
    return tags


def check_control_tag_drift():
    errors = []
    section = design_section("8b", "mesh data plane")
    for name, value in control_tags():
        if not re.search(rf"`{re.escape(name)}`", section):
            errors.append(f"DESIGN.md: control tag {name} exists in "
                          f"wire.hpp but is missing from the section 8b "
                          f"tag table")
        elif not re.search(rf"`{re.escape(value)}`", section):
            errors.append(f"DESIGN.md: control tag {name} is documented "
                          f"in section 8b but without its value {value}")
    return errors


def migrate_frame_fields():
    """Field names of the MIGRATE frame payload, from wire.hpp's
    ``kMigrateFrameFields`` initializer, in wire order."""
    text = WIRE_HEADER.read_text(encoding="utf-8")
    m = re.search(r"kMigrateFrameFields\[\]\s*=\s*\{(.*?)\};", text, re.S)
    if not m:
        sys.exit(f"error: could not find kMigrateFrameFields in {WIRE_HEADER}")
    fields = re.findall(r'"([^"]+)"', m.group(1))
    if not fields:
        sys.exit(f"error: kMigrateFrameFields in {WIRE_HEADER} is empty")
    return fields


def check_migrate_schema_drift():
    errors = []
    section = design_section("8b", "mesh data plane")
    for field in migrate_frame_fields():
        if not re.search(rf"`{re.escape(field)}`", section):
            errors.append(f"DESIGN.md: MIGRATE frame field '{field}' is "
                          f"listed in wire.hpp's kMigrateFrameFields but "
                          f"section 8b's frame layout does not mention it")
    return errors


def snapshot_manifest_fields():
    """Field names of the OTWSNAP1 snapshot container, from wire.hpp's
    ``kSnapshotManifestFields`` initializer, in file order."""
    text = WIRE_HEADER.read_text(encoding="utf-8")
    m = re.search(r"kSnapshotManifestFields\[\]\s*=\s*\{(.*?)\};", text, re.S)
    if not m:
        sys.exit(f"error: could not find kSnapshotManifestFields in "
                 f"{WIRE_HEADER}")
    fields = re.findall(r'"([^"]+)"', m.group(1))
    if not fields:
        sys.exit(f"error: kSnapshotManifestFields in {WIRE_HEADER} is empty")
    return fields


def check_snapshot_schema_drift():
    errors = []
    section = design_section("8c", "checkpoint/restart plane")
    for field in snapshot_manifest_fields():
        if not re.search(rf"`{re.escape(field)}`", section):
            errors.append(f"DESIGN.md: snapshot container field '{field}' "
                          f"is listed in wire.hpp's kSnapshotManifestFields "
                          f"but section 8c's container layout does not "
                          f"mention it")
    return errors


def flight_schema_keys():
    """JSON keys the flight-recorder writer emits, from the ``\\"key\\":``
    string literals in flight.cpp."""
    text = FLIGHT_SOURCE.read_text(encoding="utf-8")
    return sorted(set(re.findall(r'\\"([A-Za-z_][A-Za-z_0-9]*)\\":', text)))


def check_flight_schema_drift():
    errors = []
    section = design_section("10", "latency attribution plane")
    keys = flight_schema_keys()
    if not keys:
        sys.exit(f"error: no emitted JSON keys found in {FLIGHT_SOURCE}")
    for key in keys:
        if not re.search(rf"\b{re.escape(key)}\b", section):
            errors.append(f"DESIGN.md: flight.cpp emits JSON key "
                          f"'{key}' but section 10's otw-flight-v1 "
                          f"schema listing does not mention it")
    return errors


def main():
    errors = (check_links() + check_trace_drift() + check_health_rule_drift()
              + check_seam_drift() + check_flight_schema_drift()
              + check_queue_kind_drift() + check_control_tag_drift()
              + check_migrate_schema_drift() + check_snapshot_schema_drift())
    n_md = sum(1 for _ in markdown_files())
    if errors:
        for e in errors:
            print(e, file=sys.stderr)
        print(f"\ncheck_docs: FAIL ({len(errors)} error(s) across "
              f"{n_md} markdown files)", file=sys.stderr)
        return 1
    kinds = trace_kinds()
    rules = enum_members(LIVE_HEADER, "HealthRule")
    seams = enum_members(HIST_HEADER, "Seam")
    keys = flight_schema_keys()
    queue_kinds = enum_members(PENDING_HEADER, "QueueKind")
    tags = control_tags()
    migrate_fields = migrate_frame_fields()
    snap_fields = snapshot_manifest_fields()
    print(f"check_docs: OK — {n_md} markdown files, links and anchors "
          f"resolve, all {len(kinds)} TraceKind enumerators documented "
          f"in DESIGN.md section 5b, all {len(tags)} control-frame tags "
          f"and {len(migrate_fields)} MIGRATE frame fields documented in "
          f"section 8b, all {len(snap_fields)} snapshot container fields "
          f"documented in section 8c, all {len(rules)} HealthRule "
          f"enumerators documented in section 9, all {len(seams)} Seam "
          f"enumerators and {len(keys)} flight schema keys documented "
          f"in section 10, all {len(queue_kinds)} QueueKind enumerators "
          f"documented in section 10b")
    return 0


if __name__ == "__main__":
    sys.exit(main())
