#include "twreport_lib.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>

#include "otw/platform/snapshot_file.hpp"

namespace otw::tools {
namespace {

using obs::json::Value;

std::string fmt(double value) {
  if (!std::isfinite(value)) {
    return "0";
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

// Flight-dump fields are u64 counts and nanosecond stamps travelling
// through JSON doubles: render them as integers, never scientific
// notation. The one out-of-range value is the VirtualTime::infinity
// sentinel (2^64-1, which rounds to 2^64 as a double) in a pre-first-GVT
// snapshot.
std::string fmt_u64(double value) {
  if (!std::isfinite(value) || value < 0.0) {
    return "0";
  }
  if (value >= 18446744073709551615.0) {
    return "inf";
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(value + 0.5));
  return buf;
}

std::string fmt_pct(double fraction) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%+.2f%%",
                std::isfinite(fraction) ? fraction * 100.0 : 0.0);
  return buf;
}

std::string run_key(const std::string& label, double x) {
  return label + " @ " + fmt(x);
}

/// The comparable metrics of one run row, in report order.
std::vector<std::pair<std::string, double>> run_metrics(const Value& run) {
  std::vector<std::pair<std::string, double>> out;
  const Value* results = run.find("results");
  if (results != nullptr) {
    out.emplace_back("throughput (ev/sec)",
                     results->get_number("committed_events_per_sec"));
    const double processed = results->get_number("events_processed");
    const double rollbacks = results->get_number("rollbacks");
    out.emplace_back("rollback rate",
                     processed > 0.0 ? rollbacks / processed : 0.0);
    out.emplace_back("execution time ns",
                     results->get_number("execution_time_ns"));
  }
  const Value* phases = run.find("phases");
  if (phases != nullptr && phases->is_object()) {
    for (const auto& [phase, totals] : phases->object) {
      out.emplace_back("phase " + phase + " self ns",
                       totals.get_number("ns"));
    }
  }
  return out;
}

const Value* find_runs(const Value& doc) {
  const Value* runs = doc.find("runs");
  return runs != nullptr && runs->is_array() ? runs : nullptr;
}

bool get_bool(const Value& v, const std::string& key) {
  const Value* f = v.find(key);
  return f != nullptr && f->kind == Value::Kind::Bool && f->boolean;
}

}  // namespace

bool load_json_file(const std::string& path, Value& out, std::string& error) {
  std::ifstream is(path);
  if (!is) {
    error = "cannot open " + path;
    return false;
  }
  std::ostringstream buffer;
  buffer << is.rdbuf();
  if (!obs::json::parse(buffer.str(), out)) {
    error = path + " is not valid JSON";
    return false;
  }
  return true;
}

bool render_run_report(std::ostream& os, const Value& doc,
                       std::string& error) {
  const Value* runs = find_runs(doc);
  if (runs == nullptr) {
    error = "document has no runs[] array (not a bench results file?)";
    return false;
  }
  os << "# Bench report: " << doc.get_string("bench", "(unnamed)") << "\n\n";
  os << "| run | x | exec sec | committed | rollbacks | rollback rate | "
        "throughput ev/s |\n";
  os << "|---|---:|---:|---:|---:|---:|---:|\n";
  bool any_analysis = false;
  for (const Value& run : runs->array) {
    const Value* results = run.find("results");
    if (results == nullptr) {
      continue;
    }
    const double processed = results->get_number("events_processed");
    const double rollbacks = results->get_number("rollbacks");
    os << "| " << run.get_string("label", "?") << " | "
       << fmt(run.get_number("x")) << " | "
       << fmt(results->get_number("execution_time_ns") / 1e9) << " | "
       << fmt(results->get_number("committed")) << " | " << fmt(rollbacks)
       << " | " << fmt(processed > 0.0 ? rollbacks / processed : 0.0) << " | "
       << fmt(results->get_number("committed_events_per_sec")) << " |\n";
    any_analysis = any_analysis || run.find("analysis") != nullptr;
  }
  os << "\n";

  if (any_analysis) {
    os << "## Trace analysis\n\n";
    os << "| run | records | dropped | commit eff | rollbacks (prim/casc) | "
          "max depth | top blame | A<->L switches |\n";
    os << "|---|---:|---:|---:|---:|---:|---:|---:|\n";
    for (const Value& run : runs->array) {
      const Value* a = run.find("analysis");
      if (a == nullptr) {
        continue;
      }
      const Value* cascades = a->find("cascades");
      const Value* convergence = a->find("convergence");
      std::string blame = "-";
      if (cascades != nullptr) {
        const Value* entries = cascades->find("blame");
        if (entries != nullptr && entries->is_array() &&
            !entries->array.empty()) {
          const Value& top = entries->array.front();
          blame = "obj " + fmt(top.get_number("object")) + " (" +
                  fmt(top.get_number("rollbacks_caused")) + ")";
        }
      }
      os << "| " << run.get_string("label", "?") << " | "
         << fmt(a->get_number("total_records")) << " | "
         << fmt(a->get_number("dropped_records")) << " | "
         << fmt(a->get_number("overall_efficiency")) << " | ";
      if (cascades != nullptr) {
        os << fmt(cascades->get_number("primary")) << "/"
           << fmt(cascades->get_number("cascaded"));
      } else {
        os << "-";
      }
      os << " | "
         << (cascades != nullptr ? fmt(cascades->get_number("max_depth"))
                                 : "-")
         << " | " << blame << " | ";
      if (convergence != nullptr) {
        const Value* cancellation = convergence->find("cancellation");
        os << (cancellation != nullptr
                   ? fmt(cancellation->get_number("mode_switches"))
                   : "-");
      } else {
        os << "-";
      }
      os << " |\n";
    }
    os << "\n";
  }
  return true;
}

DiffReport diff_bench(const Value& a, const Value& b,
                      const DiffOptions& options) {
  DiffReport report;
  report.bench_a = a.get_string("bench", "(unnamed)");
  report.bench_b = b.get_string("bench", "(unnamed)");

  std::map<std::string, const Value*> runs_b;
  if (const Value* runs = find_runs(b)) {
    for (const Value& run : runs->array) {
      runs_b[run_key(run.get_string("label", "?"), run.get_number("x"))] =
          &run;
    }
  }

  if (const Value* runs = find_runs(a)) {
    for (const Value& run : runs->array) {
      const std::string key =
          run_key(run.get_string("label", "?"), run.get_number("x"));
      const auto it = runs_b.find(key);
      if (it == runs_b.end()) {
        report.only_in_a.push_back(key);
        continue;
      }
      RunDelta delta;
      delta.label = run.get_string("label", "?");
      delta.x = run.get_number("x");

      const auto before = run_metrics(run);
      const auto after = run_metrics(*it->second);
      std::map<std::string, double> after_by_name(after.begin(), after.end());
      for (const auto& [name, value] : before) {
        const auto match = after_by_name.find(name);
        if (match == after_by_name.end()) {
          continue;
        }
        MetricDelta m;
        m.name = name;
        m.before = value;
        m.after = match->second;
        const double scale = std::max(std::abs(m.before), std::abs(m.after));
        m.relative = scale > 0.0 ? std::abs(m.after - m.before) / scale : 0.0;
        m.significant = m.relative > options.threshold;
        delta.metrics.push_back(std::move(m));
      }
      report.runs.push_back(std::move(delta));
      runs_b.erase(it);
    }
  }
  for (const auto& [key, run] : runs_b) {
    report.only_in_b.push_back(key);
  }
  return report;
}

void render_diff_markdown(std::ostream& os, const DiffReport& report,
                          const DiffOptions& options) {
  os << "# Bench diff: " << report.bench_a << " vs " << report.bench_b
     << "\n\n";
  os << "- matched runs: " << report.runs.size() << "\n";
  os << "- significant runs (>" << fmt(options.threshold * 100)
     << "% on any metric): " << report.significant_runs() << "\n";
  for (const std::string& key : report.only_in_a) {
    os << "- only in A: " << key << "\n";
  }
  for (const std::string& key : report.only_in_b) {
    os << "- only in B: " << key << "\n";
  }
  os << "\n";

  if (report.significant_runs() == 0) {
    os << "No significant deltas.\n";
    return;
  }
  for (const RunDelta& run : report.runs) {
    if (!run.significant()) {
      continue;
    }
    os << "## " << run.label << " @ " << fmt(run.x) << "\n\n";
    os << "| metric | before | after | delta |\n|---|---:|---:|---:|\n";
    for (const MetricDelta& m : run.metrics) {
      if (!m.significant) {
        continue;
      }
      const double signed_rel =
          m.before != 0.0
              ? (m.after - m.before) / std::abs(m.before)
              : (m.after > 0.0 ? 1.0 : -1.0);
      os << "| " << m.name << " | " << fmt(m.before) << " | " << fmt(m.after)
         << " | " << fmt_pct(signed_rel) << " |\n";
    }
    os << "\n";
  }
}

bool render_flight_report(std::ostream& os, const Value& doc,
                          std::string& error) {
  if (doc.get_string("schema") != "otw-flight-v1") {
    error = "document is not an otw-flight-v1 dump";
    return false;
  }
  os << "# Flight recorder dump: shard " << fmt_u64(doc.get_number("shard", -1.0))
     << "\n\n";
  os << "- reason: " << doc.get_string("reason", "(none)") << "\n";
  os << "- dumped_at_ns: " << fmt_u64(doc.get_number("dumped_at_ns")) << "\n";

  const Value* watchdog = doc.find("watchdog");
  const Value* active = watchdog != nullptr ? watchdog->find("active") : nullptr;
  if (active != nullptr && active->is_array() && !active->array.empty()) {
    os << "- watchdog active:";
    for (const Value& a : active->array) {
      os << " " << a.get_string("rule") << "(shard "
         << fmt_u64(a.get_number("shard")) << ")";
    }
    os << "\n";
  } else {
    os << "- watchdog active: none\n";
  }
  const Value* last = watchdog != nullptr ? watchdog->find("last_event") : nullptr;
  if (last != nullptr && last->is_object()) {
    os << "- last transition: " << last->get_string("rule") << " "
       << (get_bool(*last, "raised") ? "RAISED" : "cleared") << " shard "
       << fmt_u64(last->get_number("shard")) << " — " << last->get_string("detail")
       << "\n";
  }
  os << "\n";

  const Value* snapshots = doc.find("snapshots");
  if (snapshots != nullptr && snapshots->is_array() &&
      !snapshots->array.empty()) {
    os << "## Snapshots (" << snapshots->array.size() << " retained)\n\n";
    os << "| wall ns | gvt | processed | committed | rolled back |\n";
    os << "|---:|---:|---:|---:|---:|\n";
    for (const Value& s : snapshots->array) {
      os << "| " << fmt_u64(s.get_number("wall_ns")) << " | "
         << fmt_u64(s.get_number("gvt_ticks", -1.0)) << " | "
         << fmt_u64(s.get_number("processed")) << " | "
         << fmt_u64(s.get_number("committed")) << " | "
         << fmt_u64(s.get_number("rolled_back")) << " |\n";
    }
    os << "\n";
    // Latency columns from the newest snapshot carrying histograms.
    const Value* hists = nullptr;
    for (auto it = snapshots->array.rbegin(); it != snapshots->array.rend();
         ++it) {
      const Value* h = it->find("hists");
      if (h != nullptr && h->is_array() && !h->array.empty()) {
        hists = h;
        break;
      }
    }
    if (hists != nullptr) {
      os << "## Latency (last snapshot)\n\n";
      os << "| seam | link | count | p50 | p95 | p99 |\n";
      os << "|---|---|---:|---:|---:|---:|\n";
      for (const Value& h : hists->array) {
        std::string link = "-";
        if (h.find("src") != nullptr) {
          link = fmt_u64(h.get_number("src")) + "->" + fmt_u64(h.get_number("dst"));
        }
        os << "| " << h.get_string("seam") << " | " << link << " | "
           << fmt_u64(h.get_number("count")) << " | " << fmt_u64(h.get_number("p50"))
           << " | " << fmt_u64(h.get_number("p95")) << " | "
           << fmt_u64(h.get_number("p99")) << " |\n";
      }
      os << "\n";
    }
  }

  const Value* frames = doc.find("frames");
  if (frames != nullptr && frames->is_array() && !frames->array.empty()) {
    os << "## Last " << frames->array.size() << " relayed frames\n\n";
    os << "| src | dst | tag | len | send ns | relay ns |\n";
    os << "|---:|---:|---:|---:|---:|---:|\n";
    const std::size_t start =
        frames->array.size() > 20 ? frames->array.size() - 20 : 0;
    if (start > 0) {
      os << "| ... | | | | | |\n";
    }
    for (std::size_t i = start; i < frames->array.size(); ++i) {
      const Value& f = frames->array[i];
      os << "| " << fmt_u64(f.get_number("src")) << " | "
         << fmt_u64(f.get_number("dst")) << " | " << fmt_u64(f.get_number("tag"))
         << " | " << fmt_u64(f.get_number("len")) << " | "
         << fmt_u64(f.get_number("send_ns")) << " | "
         << fmt_u64(f.get_number("relay_ns")) << " |\n";
    }
    os << "\n";
  }

  const Value* health = doc.find("health_events");
  if (health != nullptr && health->is_array() && !health->array.empty()) {
    os << "## Health transitions\n\n";
    for (const Value& e : health->array) {
      os << "- " << e.get_string("rule") << " "
         << (get_bool(e, "raised") ? "RAISED" : "cleared") << " shard "
         << fmt_u64(e.get_number("shard")) << " at " << fmt_u64(e.get_number("wall_ns"))
         << " — " << e.get_string("detail") << "\n";
    }
    os << "\n";
  }
  return true;
}

bool render_snapshot_manifest(std::ostream& os, const std::string& path,
                              std::string& error) {
  platform::SnapshotImage image;
  try {
    image = platform::read_snapshot_file(path);
  } catch (const std::exception& e) {
    error = e.what();
    return false;
  }
  os << "# Snapshot manifest: " << path << "\n\n";
  os << "- engine: "
     << (image.engine == platform::kSnapshotEngineSequential ? "sequential"
                                                             : "distributed")
     << "\n";
  os << "- epoch: " << image.epoch << "\n";
  os << "- gvt_ticks: " << image.gvt_ticks << "\n";
  os << "- num_lps: " << image.num_lps << "\n";
  os << "- num_shards: " << image.shards.size() << "\n";
  os << "- total_bytes: " << image.total_blob_bytes() << "\n\n";
  os << "| shard | lps | bytes |\n|---|---|---|\n";
  for (const platform::SnapshotShardBlob& shard : image.shards) {
    os << "| " << shard.shard << " | " << shard.lp_count() << " | "
       << shard.blob.size() << " |\n";
  }
  return true;
}

int run_cli(int argc, const char* const* argv, std::ostream& out,
            std::ostream& err) {
  const auto usage = [&err]() {
    err << "usage: twreport run <results.json>\n"
           "       twreport diff <a.json> <b.json> [--threshold FRACTION]\n"
           "       twreport flight <flight-N.json>\n"
           "       twreport snapshot <epoch.otwsnap>\n";
    return 2;
  };
  if (argc < 2) {
    return usage();
  }
  const std::string mode = argv[1];
  std::string error;

  if (mode == "run") {
    if (argc != 3) {
      return usage();
    }
    Value doc;
    if (!load_json_file(argv[2], doc, error) ||
        !render_run_report(out, doc, error)) {
      err << "twreport: " << error << "\n";
      return 2;
    }
    return 0;
  }

  if (mode == "flight") {
    if (argc != 3) {
      return usage();
    }
    Value doc;
    if (!load_json_file(argv[2], doc, error) ||
        !render_flight_report(out, doc, error)) {
      err << "twreport: " << error << "\n";
      return 2;
    }
    return 0;
  }

  if (mode == "snapshot") {
    if (argc != 3) {
      return usage();
    }
    if (!render_snapshot_manifest(out, argv[2], error)) {
      err << "twreport: " << error << "\n";
      return 2;
    }
    return 0;
  }

  if (mode == "diff") {
    if (argc < 4) {
      return usage();
    }
    DiffOptions options;
    for (int i = 4; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--threshold" && i + 1 < argc) {
        options.threshold = std::atof(argv[++i]);
      } else {
        return usage();
      }
    }
    Value a;
    Value b;
    if (!load_json_file(argv[2], a, error) ||
        !load_json_file(argv[3], b, error)) {
      err << "twreport: " << error << "\n";
      return 2;
    }
    render_diff_markdown(out, diff_bench(a, b, options), options);
    return 0;
  }

  return usage();
}

}  // namespace otw::tools
