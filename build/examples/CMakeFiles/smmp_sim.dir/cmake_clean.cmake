file(REMOVE_RECURSE
  "CMakeFiles/smmp_sim.dir/smmp_sim.cpp.o"
  "CMakeFiles/smmp_sim.dir/smmp_sim.cpp.o.d"
  "smmp_sim"
  "smmp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smmp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
