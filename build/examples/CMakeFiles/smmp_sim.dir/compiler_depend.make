# Empty compiler generated dependencies file for smmp_sim.
# This may be replaced when dependencies are built.
