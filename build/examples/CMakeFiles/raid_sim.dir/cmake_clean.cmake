file(REMOVE_RECURSE
  "CMakeFiles/raid_sim.dir/raid_sim.cpp.o"
  "CMakeFiles/raid_sim.dir/raid_sim.cpp.o.d"
  "raid_sim"
  "raid_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raid_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
