# Empty dependencies file for raid_sim.
# This may be replaced when dependencies are built.
