# Empty dependencies file for phold_sim.
# This may be replaced when dependencies are built.
