file(REMOVE_RECURSE
  "CMakeFiles/phold_sim.dir/phold_sim.cpp.o"
  "CMakeFiles/phold_sim.dir/phold_sim.cpp.o.d"
  "phold_sim"
  "phold_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phold_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
