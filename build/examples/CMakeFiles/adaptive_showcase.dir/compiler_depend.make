# Empty compiler generated dependencies file for adaptive_showcase.
# This may be replaced when dependencies are built.
