file(REMOVE_RECURSE
  "CMakeFiles/adaptive_showcase.dir/adaptive_showcase.cpp.o"
  "CMakeFiles/adaptive_showcase.dir/adaptive_showcase.cpp.o.d"
  "adaptive_showcase"
  "adaptive_showcase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_showcase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
