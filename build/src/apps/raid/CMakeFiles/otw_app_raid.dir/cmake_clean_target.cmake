file(REMOVE_RECURSE
  "libotw_app_raid.a"
)
