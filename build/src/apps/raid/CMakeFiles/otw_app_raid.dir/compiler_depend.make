# Empty compiler generated dependencies file for otw_app_raid.
# This may be replaced when dependencies are built.
