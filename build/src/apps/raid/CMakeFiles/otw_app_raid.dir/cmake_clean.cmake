file(REMOVE_RECURSE
  "CMakeFiles/otw_app_raid.dir/raid.cpp.o"
  "CMakeFiles/otw_app_raid.dir/raid.cpp.o.d"
  "libotw_app_raid.a"
  "libotw_app_raid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/otw_app_raid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
