file(REMOVE_RECURSE
  "libotw_app_smmp.a"
)
