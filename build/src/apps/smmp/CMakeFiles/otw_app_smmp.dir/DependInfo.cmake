
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/smmp/smmp.cpp" "src/apps/smmp/CMakeFiles/otw_app_smmp.dir/smmp.cpp.o" "gcc" "src/apps/smmp/CMakeFiles/otw_app_smmp.dir/smmp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/timewarp/CMakeFiles/otw_timewarp.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/otw_core.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/otw_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/otw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
