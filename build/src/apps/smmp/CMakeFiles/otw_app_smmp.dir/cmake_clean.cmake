file(REMOVE_RECURSE
  "CMakeFiles/otw_app_smmp.dir/smmp.cpp.o"
  "CMakeFiles/otw_app_smmp.dir/smmp.cpp.o.d"
  "libotw_app_smmp.a"
  "libotw_app_smmp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/otw_app_smmp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
