# Empty dependencies file for otw_app_smmp.
# This may be replaced when dependencies are built.
