file(REMOVE_RECURSE
  "CMakeFiles/otw_app_phold.dir/phold.cpp.o"
  "CMakeFiles/otw_app_phold.dir/phold.cpp.o.d"
  "libotw_app_phold.a"
  "libotw_app_phold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/otw_app_phold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
