file(REMOVE_RECURSE
  "libotw_app_phold.a"
)
