# Empty dependencies file for otw_app_phold.
# This may be replaced when dependencies are built.
