file(REMOVE_RECURSE
  "CMakeFiles/otw_app_logic.dir/logic.cpp.o"
  "CMakeFiles/otw_app_logic.dir/logic.cpp.o.d"
  "libotw_app_logic.a"
  "libotw_app_logic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/otw_app_logic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
