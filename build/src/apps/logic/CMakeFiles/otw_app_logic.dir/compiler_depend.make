# Empty compiler generated dependencies file for otw_app_logic.
# This may be replaced when dependencies are built.
