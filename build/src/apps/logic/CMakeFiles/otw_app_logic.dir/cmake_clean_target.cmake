file(REMOVE_RECURSE
  "libotw_app_logic.a"
)
