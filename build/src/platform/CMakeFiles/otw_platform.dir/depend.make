# Empty dependencies file for otw_platform.
# This may be replaced when dependencies are built.
