
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/platform/simulated_now.cpp" "src/platform/CMakeFiles/otw_platform.dir/simulated_now.cpp.o" "gcc" "src/platform/CMakeFiles/otw_platform.dir/simulated_now.cpp.o.d"
  "/root/repo/src/platform/threaded.cpp" "src/platform/CMakeFiles/otw_platform.dir/threaded.cpp.o" "gcc" "src/platform/CMakeFiles/otw_platform.dir/threaded.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/otw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
