file(REMOVE_RECURSE
  "CMakeFiles/otw_platform.dir/simulated_now.cpp.o"
  "CMakeFiles/otw_platform.dir/simulated_now.cpp.o.d"
  "CMakeFiles/otw_platform.dir/threaded.cpp.o"
  "CMakeFiles/otw_platform.dir/threaded.cpp.o.d"
  "libotw_platform.a"
  "libotw_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/otw_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
