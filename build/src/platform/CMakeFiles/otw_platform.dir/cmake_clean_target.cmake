file(REMOVE_RECURSE
  "libotw_platform.a"
)
