file(REMOVE_RECURSE
  "libotw_util.a"
)
