# Empty compiler generated dependencies file for otw_util.
# This may be replaced when dependencies are built.
