file(REMOVE_RECURSE
  "CMakeFiles/otw_util.dir/rng.cpp.o"
  "CMakeFiles/otw_util.dir/rng.cpp.o.d"
  "CMakeFiles/otw_util.dir/stats.cpp.o"
  "CMakeFiles/otw_util.dir/stats.cpp.o.d"
  "libotw_util.a"
  "libotw_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/otw_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
