
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/timewarp/checkpoint_store.cpp" "src/timewarp/CMakeFiles/otw_timewarp.dir/checkpoint_store.cpp.o" "gcc" "src/timewarp/CMakeFiles/otw_timewarp.dir/checkpoint_store.cpp.o.d"
  "/root/repo/src/timewarp/gvt.cpp" "src/timewarp/CMakeFiles/otw_timewarp.dir/gvt.cpp.o" "gcc" "src/timewarp/CMakeFiles/otw_timewarp.dir/gvt.cpp.o.d"
  "/root/repo/src/timewarp/kernel.cpp" "src/timewarp/CMakeFiles/otw_timewarp.dir/kernel.cpp.o" "gcc" "src/timewarp/CMakeFiles/otw_timewarp.dir/kernel.cpp.o.d"
  "/root/repo/src/timewarp/lp.cpp" "src/timewarp/CMakeFiles/otw_timewarp.dir/lp.cpp.o" "gcc" "src/timewarp/CMakeFiles/otw_timewarp.dir/lp.cpp.o.d"
  "/root/repo/src/timewarp/object_runtime.cpp" "src/timewarp/CMakeFiles/otw_timewarp.dir/object_runtime.cpp.o" "gcc" "src/timewarp/CMakeFiles/otw_timewarp.dir/object_runtime.cpp.o.d"
  "/root/repo/src/timewarp/queues.cpp" "src/timewarp/CMakeFiles/otw_timewarp.dir/queues.cpp.o" "gcc" "src/timewarp/CMakeFiles/otw_timewarp.dir/queues.cpp.o.d"
  "/root/repo/src/timewarp/sequential.cpp" "src/timewarp/CMakeFiles/otw_timewarp.dir/sequential.cpp.o" "gcc" "src/timewarp/CMakeFiles/otw_timewarp.dir/sequential.cpp.o.d"
  "/root/repo/src/timewarp/stats.cpp" "src/timewarp/CMakeFiles/otw_timewarp.dir/stats.cpp.o" "gcc" "src/timewarp/CMakeFiles/otw_timewarp.dir/stats.cpp.o.d"
  "/root/repo/src/timewarp/telemetry.cpp" "src/timewarp/CMakeFiles/otw_timewarp.dir/telemetry.cpp.o" "gcc" "src/timewarp/CMakeFiles/otw_timewarp.dir/telemetry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/otw_core.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/otw_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/otw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
