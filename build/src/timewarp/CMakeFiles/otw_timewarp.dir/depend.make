# Empty dependencies file for otw_timewarp.
# This may be replaced when dependencies are built.
