file(REMOVE_RECURSE
  "CMakeFiles/otw_timewarp.dir/checkpoint_store.cpp.o"
  "CMakeFiles/otw_timewarp.dir/checkpoint_store.cpp.o.d"
  "CMakeFiles/otw_timewarp.dir/gvt.cpp.o"
  "CMakeFiles/otw_timewarp.dir/gvt.cpp.o.d"
  "CMakeFiles/otw_timewarp.dir/kernel.cpp.o"
  "CMakeFiles/otw_timewarp.dir/kernel.cpp.o.d"
  "CMakeFiles/otw_timewarp.dir/lp.cpp.o"
  "CMakeFiles/otw_timewarp.dir/lp.cpp.o.d"
  "CMakeFiles/otw_timewarp.dir/object_runtime.cpp.o"
  "CMakeFiles/otw_timewarp.dir/object_runtime.cpp.o.d"
  "CMakeFiles/otw_timewarp.dir/queues.cpp.o"
  "CMakeFiles/otw_timewarp.dir/queues.cpp.o.d"
  "CMakeFiles/otw_timewarp.dir/sequential.cpp.o"
  "CMakeFiles/otw_timewarp.dir/sequential.cpp.o.d"
  "CMakeFiles/otw_timewarp.dir/stats.cpp.o"
  "CMakeFiles/otw_timewarp.dir/stats.cpp.o.d"
  "CMakeFiles/otw_timewarp.dir/telemetry.cpp.o"
  "CMakeFiles/otw_timewarp.dir/telemetry.cpp.o.d"
  "libotw_timewarp.a"
  "libotw_timewarp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/otw_timewarp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
