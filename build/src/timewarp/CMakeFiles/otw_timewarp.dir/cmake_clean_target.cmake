file(REMOVE_RECURSE
  "libotw_timewarp.a"
)
