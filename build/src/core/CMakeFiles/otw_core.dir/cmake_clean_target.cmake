file(REMOVE_RECURSE
  "libotw_core.a"
)
