
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/aggregation_controller.cpp" "src/core/CMakeFiles/otw_core.dir/aggregation_controller.cpp.o" "gcc" "src/core/CMakeFiles/otw_core.dir/aggregation_controller.cpp.o.d"
  "/root/repo/src/core/cancellation_controller.cpp" "src/core/CMakeFiles/otw_core.dir/cancellation_controller.cpp.o" "gcc" "src/core/CMakeFiles/otw_core.dir/cancellation_controller.cpp.o.d"
  "/root/repo/src/core/checkpoint_controller.cpp" "src/core/CMakeFiles/otw_core.dir/checkpoint_controller.cpp.o" "gcc" "src/core/CMakeFiles/otw_core.dir/checkpoint_controller.cpp.o.d"
  "/root/repo/src/core/optimism_controller.cpp" "src/core/CMakeFiles/otw_core.dir/optimism_controller.cpp.o" "gcc" "src/core/CMakeFiles/otw_core.dir/optimism_controller.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/otw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
