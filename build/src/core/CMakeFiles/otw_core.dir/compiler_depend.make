# Empty compiler generated dependencies file for otw_core.
# This may be replaced when dependencies are built.
