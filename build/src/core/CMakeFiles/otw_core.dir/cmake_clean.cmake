file(REMOVE_RECURSE
  "CMakeFiles/otw_core.dir/aggregation_controller.cpp.o"
  "CMakeFiles/otw_core.dir/aggregation_controller.cpp.o.d"
  "CMakeFiles/otw_core.dir/cancellation_controller.cpp.o"
  "CMakeFiles/otw_core.dir/cancellation_controller.cpp.o.d"
  "CMakeFiles/otw_core.dir/checkpoint_controller.cpp.o"
  "CMakeFiles/otw_core.dir/checkpoint_controller.cpp.o.d"
  "CMakeFiles/otw_core.dir/optimism_controller.cpp.o"
  "CMakeFiles/otw_core.dir/optimism_controller.cpp.o.d"
  "libotw_core.a"
  "libotw_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/otw_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
