# Empty dependencies file for abl_logic_cancellation.
# This may be replaced when dependencies are built.
