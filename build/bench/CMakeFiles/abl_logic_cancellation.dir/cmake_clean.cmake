file(REMOVE_RECURSE
  "CMakeFiles/abl_logic_cancellation.dir/abl_logic_cancellation.cpp.o"
  "CMakeFiles/abl_logic_cancellation.dir/abl_logic_cancellation.cpp.o.d"
  "CMakeFiles/abl_logic_cancellation.dir/bench_common.cpp.o"
  "CMakeFiles/abl_logic_cancellation.dir/bench_common.cpp.o.d"
  "abl_logic_cancellation"
  "abl_logic_cancellation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_logic_cancellation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
