file(REMOVE_RECURSE
  "CMakeFiles/abl_ckpt_sweep.dir/abl_ckpt_sweep.cpp.o"
  "CMakeFiles/abl_ckpt_sweep.dir/abl_ckpt_sweep.cpp.o.d"
  "CMakeFiles/abl_ckpt_sweep.dir/bench_common.cpp.o"
  "CMakeFiles/abl_ckpt_sweep.dir/bench_common.cpp.o.d"
  "abl_ckpt_sweep"
  "abl_ckpt_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_ckpt_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
