# Empty compiler generated dependencies file for abl_ckpt_sweep.
# This may be replaced when dependencies are built.
