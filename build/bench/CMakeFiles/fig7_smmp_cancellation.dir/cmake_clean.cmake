file(REMOVE_RECURSE
  "CMakeFiles/fig7_smmp_cancellation.dir/bench_common.cpp.o"
  "CMakeFiles/fig7_smmp_cancellation.dir/bench_common.cpp.o.d"
  "CMakeFiles/fig7_smmp_cancellation.dir/fig7_smmp_cancellation.cpp.o"
  "CMakeFiles/fig7_smmp_cancellation.dir/fig7_smmp_cancellation.cpp.o.d"
  "fig7_smmp_cancellation"
  "fig7_smmp_cancellation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_smmp_cancellation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
