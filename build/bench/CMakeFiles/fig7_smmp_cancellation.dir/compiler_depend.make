# Empty compiler generated dependencies file for fig7_smmp_cancellation.
# This may be replaced when dependencies are built.
