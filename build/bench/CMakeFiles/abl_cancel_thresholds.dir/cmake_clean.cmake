file(REMOVE_RECURSE
  "CMakeFiles/abl_cancel_thresholds.dir/abl_cancel_thresholds.cpp.o"
  "CMakeFiles/abl_cancel_thresholds.dir/abl_cancel_thresholds.cpp.o.d"
  "CMakeFiles/abl_cancel_thresholds.dir/bench_common.cpp.o"
  "CMakeFiles/abl_cancel_thresholds.dir/bench_common.cpp.o.d"
  "abl_cancel_thresholds"
  "abl_cancel_thresholds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_cancel_thresholds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
