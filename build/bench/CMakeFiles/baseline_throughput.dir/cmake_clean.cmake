file(REMOVE_RECURSE
  "CMakeFiles/baseline_throughput.dir/baseline_throughput.cpp.o"
  "CMakeFiles/baseline_throughput.dir/baseline_throughput.cpp.o.d"
  "CMakeFiles/baseline_throughput.dir/bench_common.cpp.o"
  "CMakeFiles/baseline_throughput.dir/bench_common.cpp.o.d"
  "baseline_throughput"
  "baseline_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
