# Empty compiler generated dependencies file for baseline_throughput.
# This may be replaced when dependencies are built.
