file(REMOVE_RECURSE
  "CMakeFiles/fig9_dyma_raid.dir/bench_common.cpp.o"
  "CMakeFiles/fig9_dyma_raid.dir/bench_common.cpp.o.d"
  "CMakeFiles/fig9_dyma_raid.dir/fig9_dyma_raid.cpp.o"
  "CMakeFiles/fig9_dyma_raid.dir/fig9_dyma_raid.cpp.o.d"
  "fig9_dyma_raid"
  "fig9_dyma_raid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_dyma_raid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
