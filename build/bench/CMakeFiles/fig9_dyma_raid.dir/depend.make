# Empty dependencies file for fig9_dyma_raid.
# This may be replaced when dependencies are built.
