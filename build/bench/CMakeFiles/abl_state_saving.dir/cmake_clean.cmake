file(REMOVE_RECURSE
  "CMakeFiles/abl_state_saving.dir/abl_state_saving.cpp.o"
  "CMakeFiles/abl_state_saving.dir/abl_state_saving.cpp.o.d"
  "CMakeFiles/abl_state_saving.dir/bench_common.cpp.o"
  "CMakeFiles/abl_state_saving.dir/bench_common.cpp.o.d"
  "abl_state_saving"
  "abl_state_saving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_state_saving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
