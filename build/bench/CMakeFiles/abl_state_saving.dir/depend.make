# Empty dependencies file for abl_state_saving.
# This may be replaced when dependencies are built.
