file(REMOVE_RECURSE
  "CMakeFiles/abl_saaw_variants.dir/abl_saaw_variants.cpp.o"
  "CMakeFiles/abl_saaw_variants.dir/abl_saaw_variants.cpp.o.d"
  "CMakeFiles/abl_saaw_variants.dir/bench_common.cpp.o"
  "CMakeFiles/abl_saaw_variants.dir/bench_common.cpp.o.d"
  "abl_saaw_variants"
  "abl_saaw_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_saaw_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
