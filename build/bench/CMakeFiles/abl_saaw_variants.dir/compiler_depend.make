# Empty compiler generated dependencies file for abl_saaw_variants.
# This may be replaced when dependencies are built.
