# Empty compiler generated dependencies file for fig8_dyma_smmp.
# This may be replaced when dependencies are built.
