file(REMOVE_RECURSE
  "CMakeFiles/fig8_dyma_smmp.dir/bench_common.cpp.o"
  "CMakeFiles/fig8_dyma_smmp.dir/bench_common.cpp.o.d"
  "CMakeFiles/fig8_dyma_smmp.dir/fig8_dyma_smmp.cpp.o"
  "CMakeFiles/fig8_dyma_smmp.dir/fig8_dyma_smmp.cpp.o.d"
  "fig8_dyma_smmp"
  "fig8_dyma_smmp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_dyma_smmp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
