file(REMOVE_RECURSE
  "CMakeFiles/abl_optimism_window.dir/abl_optimism_window.cpp.o"
  "CMakeFiles/abl_optimism_window.dir/abl_optimism_window.cpp.o.d"
  "CMakeFiles/abl_optimism_window.dir/bench_common.cpp.o"
  "CMakeFiles/abl_optimism_window.dir/bench_common.cpp.o.d"
  "abl_optimism_window"
  "abl_optimism_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_optimism_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
