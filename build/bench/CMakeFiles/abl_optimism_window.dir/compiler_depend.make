# Empty compiler generated dependencies file for abl_optimism_window.
# This may be replaced when dependencies are built.
