file(REMOVE_RECURSE
  "CMakeFiles/abl_control_period.dir/abl_control_period.cpp.o"
  "CMakeFiles/abl_control_period.dir/abl_control_period.cpp.o.d"
  "CMakeFiles/abl_control_period.dir/bench_common.cpp.o"
  "CMakeFiles/abl_control_period.dir/bench_common.cpp.o.d"
  "abl_control_period"
  "abl_control_period.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_control_period.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
