# Empty dependencies file for abl_control_period.
# This may be replaced when dependencies are built.
