# Empty dependencies file for abl_gvt_period.
# This may be replaced when dependencies are built.
