file(REMOVE_RECURSE
  "CMakeFiles/abl_gvt_period.dir/abl_gvt_period.cpp.o"
  "CMakeFiles/abl_gvt_period.dir/abl_gvt_period.cpp.o.d"
  "CMakeFiles/abl_gvt_period.dir/bench_common.cpp.o"
  "CMakeFiles/abl_gvt_period.dir/bench_common.cpp.o.d"
  "abl_gvt_period"
  "abl_gvt_period.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_gvt_period.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
