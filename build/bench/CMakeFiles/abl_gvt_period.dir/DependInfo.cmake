
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/abl_gvt_period.cpp" "bench/CMakeFiles/abl_gvt_period.dir/abl_gvt_period.cpp.o" "gcc" "bench/CMakeFiles/abl_gvt_period.dir/abl_gvt_period.cpp.o.d"
  "/root/repo/bench/bench_common.cpp" "bench/CMakeFiles/abl_gvt_period.dir/bench_common.cpp.o" "gcc" "bench/CMakeFiles/abl_gvt_period.dir/bench_common.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/timewarp/CMakeFiles/otw_timewarp.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/phold/CMakeFiles/otw_app_phold.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/smmp/CMakeFiles/otw_app_smmp.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/raid/CMakeFiles/otw_app_raid.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/logic/CMakeFiles/otw_app_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/otw_core.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/otw_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/otw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
