# Empty compiler generated dependencies file for fig6_raid_cancellation.
# This may be replaced when dependencies are built.
