file(REMOVE_RECURSE
  "CMakeFiles/fig6_raid_cancellation.dir/bench_common.cpp.o"
  "CMakeFiles/fig6_raid_cancellation.dir/bench_common.cpp.o.d"
  "CMakeFiles/fig6_raid_cancellation.dir/fig6_raid_cancellation.cpp.o"
  "CMakeFiles/fig6_raid_cancellation.dir/fig6_raid_cancellation.cpp.o.d"
  "fig6_raid_cancellation"
  "fig6_raid_cancellation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_raid_cancellation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
