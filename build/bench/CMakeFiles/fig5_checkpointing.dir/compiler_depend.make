# Empty compiler generated dependencies file for fig5_checkpointing.
# This may be replaced when dependencies are built.
