file(REMOVE_RECURSE
  "CMakeFiles/fig5_checkpointing.dir/bench_common.cpp.o"
  "CMakeFiles/fig5_checkpointing.dir/bench_common.cpp.o.d"
  "CMakeFiles/fig5_checkpointing.dir/fig5_checkpointing.cpp.o"
  "CMakeFiles/fig5_checkpointing.dir/fig5_checkpointing.cpp.o.d"
  "fig5_checkpointing"
  "fig5_checkpointing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_checkpointing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
