
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/tw_checkpoint_store_test.cpp" "tests/CMakeFiles/timewarp_test.dir/tw_checkpoint_store_test.cpp.o" "gcc" "tests/CMakeFiles/timewarp_test.dir/tw_checkpoint_store_test.cpp.o.d"
  "/root/repo/tests/tw_equivalence_test.cpp" "tests/CMakeFiles/timewarp_test.dir/tw_equivalence_test.cpp.o" "gcc" "tests/CMakeFiles/timewarp_test.dir/tw_equivalence_test.cpp.o.d"
  "/root/repo/tests/tw_event_test.cpp" "tests/CMakeFiles/timewarp_test.dir/tw_event_test.cpp.o" "gcc" "tests/CMakeFiles/timewarp_test.dir/tw_event_test.cpp.o.d"
  "/root/repo/tests/tw_gvt_test.cpp" "tests/CMakeFiles/timewarp_test.dir/tw_gvt_test.cpp.o" "gcc" "tests/CMakeFiles/timewarp_test.dir/tw_gvt_test.cpp.o.d"
  "/root/repo/tests/tw_kernel_test.cpp" "tests/CMakeFiles/timewarp_test.dir/tw_kernel_test.cpp.o" "gcc" "tests/CMakeFiles/timewarp_test.dir/tw_kernel_test.cpp.o.d"
  "/root/repo/tests/tw_messages_test.cpp" "tests/CMakeFiles/timewarp_test.dir/tw_messages_test.cpp.o" "gcc" "tests/CMakeFiles/timewarp_test.dir/tw_messages_test.cpp.o.d"
  "/root/repo/tests/tw_object_runtime_test.cpp" "tests/CMakeFiles/timewarp_test.dir/tw_object_runtime_test.cpp.o" "gcc" "tests/CMakeFiles/timewarp_test.dir/tw_object_runtime_test.cpp.o.d"
  "/root/repo/tests/tw_optimism_test.cpp" "tests/CMakeFiles/timewarp_test.dir/tw_optimism_test.cpp.o" "gcc" "tests/CMakeFiles/timewarp_test.dir/tw_optimism_test.cpp.o.d"
  "/root/repo/tests/tw_queues_test.cpp" "tests/CMakeFiles/timewarp_test.dir/tw_queues_test.cpp.o" "gcc" "tests/CMakeFiles/timewarp_test.dir/tw_queues_test.cpp.o.d"
  "/root/repo/tests/tw_sequential_test.cpp" "tests/CMakeFiles/timewarp_test.dir/tw_sequential_test.cpp.o" "gcc" "tests/CMakeFiles/timewarp_test.dir/tw_sequential_test.cpp.o.d"
  "/root/repo/tests/tw_stats_test.cpp" "tests/CMakeFiles/timewarp_test.dir/tw_stats_test.cpp.o" "gcc" "tests/CMakeFiles/timewarp_test.dir/tw_stats_test.cpp.o.d"
  "/root/repo/tests/tw_stress_test.cpp" "tests/CMakeFiles/timewarp_test.dir/tw_stress_test.cpp.o" "gcc" "tests/CMakeFiles/timewarp_test.dir/tw_stress_test.cpp.o.d"
  "/root/repo/tests/tw_telemetry_test.cpp" "tests/CMakeFiles/timewarp_test.dir/tw_telemetry_test.cpp.o" "gcc" "tests/CMakeFiles/timewarp_test.dir/tw_telemetry_test.cpp.o.d"
  "/root/repo/tests/tw_threaded_stress_test.cpp" "tests/CMakeFiles/timewarp_test.dir/tw_threaded_stress_test.cpp.o" "gcc" "tests/CMakeFiles/timewarp_test.dir/tw_threaded_stress_test.cpp.o.d"
  "/root/repo/tests/tw_virtual_time_test.cpp" "tests/CMakeFiles/timewarp_test.dir/tw_virtual_time_test.cpp.o" "gcc" "tests/CMakeFiles/timewarp_test.dir/tw_virtual_time_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/timewarp/CMakeFiles/otw_timewarp.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/phold/CMakeFiles/otw_app_phold.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/smmp/CMakeFiles/otw_app_smmp.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/raid/CMakeFiles/otw_app_raid.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/logic/CMakeFiles/otw_app_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/otw_core.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/otw_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/otw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
