#include "otw/obs/json.hpp"

#include <cctype>
#include <cstdint>
#include <cstdlib>

namespace otw::obs::json {
namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  bool parse(Value& out) {
    skip_ws();
    if (!value(out)) {
      return false;
    }
    skip_ws();
    return pos_ == text_.size();  // no trailing garbage
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool literal(const char* word) {
    const std::size_t n = std::char_traits<char>::length(word);
    if (text_.compare(pos_, n, word) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  bool value(Value& out) {
    if (pos_ >= text_.size()) {
      return false;
    }
    switch (text_[pos_]) {
      case '{': return object(out);
      case '[': return array(out);
      case '"': out.kind = Value::Kind::String; return string(out.string);
      case 't': out.kind = Value::Kind::Bool; out.boolean = true;
                return literal("true");
      case 'f': out.kind = Value::Kind::Bool; out.boolean = false;
                return literal("false");
      case 'n': out.kind = Value::Kind::Null; return literal("null");
      default: return number(out);
    }
  }

  bool number(Value& out) {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) {
      return false;
    }
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    out.number = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      return false;
    }
    out.kind = Value::Kind::Number;
    return true;
  }

  void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool string(std::string& out) {
    if (text_[pos_] != '"') {
      return false;
    }
    ++pos_;
    out.clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) {
          return false;
        }
        switch (text_[pos_]) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 >= text_.size()) {
              return false;
            }
            std::uint32_t cp = 0;
            for (int i = 1; i <= 4; ++i) {
              const char c = text_[pos_ + i];
              cp <<= 4;
              if (c >= '0' && c <= '9') {
                cp |= static_cast<std::uint32_t>(c - '0');
              } else if (c >= 'a' && c <= 'f') {
                cp |= static_cast<std::uint32_t>(c - 'a' + 10);
              } else if (c >= 'A' && c <= 'F') {
                cp |= static_cast<std::uint32_t>(c - 'A' + 10);
              } else {
                return false;
              }
            }
            append_utf8(out, cp);
            pos_ += 4;
            break;
          }
          default: return false;
        }
        ++pos_;
      } else {
        out += text_[pos_++];
      }
    }
    if (pos_ >= text_.size()) {
      return false;
    }
    ++pos_;  // closing quote
    return true;
  }

  bool array(Value& out) {
    out.kind = Value::Kind::Array;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      Value element;
      skip_ws();
      if (!value(element)) {
        return false;
      }
      out.array.push_back(std::move(element));
      skip_ws();
      if (pos_ >= text_.size()) {
        return false;
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool object(Value& out) {
    out.kind = Value::Kind::Object;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (pos_ >= text_.size() || !string(key)) {
        return false;
      }
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return false;
      }
      ++pos_;
      skip_ws();
      Value val;
      if (!value(val)) {
        return false;
      }
      out.object[key] = std::move(val);
      skip_ws();
      if (pos_ >= text_.size()) {
        return false;
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool parse(const std::string& text, Value& out) {
  return Parser(text).parse(out);
}

}  // namespace otw::obs::json
