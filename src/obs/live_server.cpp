#include "otw/obs/live_server.hpp"

#if OTW_OBS_LIVE
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <sstream>
#include <utility>

#include "otw/util/net.hpp"
#endif

namespace otw::obs::live {

#if OTW_OBS_LIVE

namespace {
const std::string kCtx = "LiveServer";
}  // namespace

LiveServer::LiveServer(LiveServerConfig config, SnapshotFn snapshots)
    : config_(std::move(config)),
      snapshots_(std::move(snapshots)),
      watchdog_(config_.watchdog) {}

LiveServer::~LiveServer() { stop(); }

void LiveServer::start() {
  if (running_.load(std::memory_order_acquire)) {
    return;
  }
  listen_fd_ = util::net::listen_loopback(config_.port, /*backlog=*/8, port_,
                                          kCtx);
  util::net::set_nonblocking(listen_fd_, kCtx);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { serve(); });
  if (config_.on_endpoint) {
    config_.on_endpoint(port_);
  }
}

void LiveServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    return;
  }
  if (thread_.joinable()) {
    thread_.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

std::uint16_t LiveServer::port() const noexcept { return port_; }

std::vector<HealthEvent> LiveServer::health() const {
  std::lock_guard<std::mutex> lock(watchdog_mutex_);
  return watchdog_.history();
}

void LiveServer::serve() {
  std::uint64_t last_feed_ns = 0;
  const std::uint64_t period_ns =
      static_cast<std::uint64_t>(config_.monitor_period_ms) * 1'000'000;
  while (running_.load(std::memory_order_acquire)) {
    const std::uint64_t now = util::net::mono_ns();
    if (now - last_feed_ns >= period_ns) {
      last_feed_ns = now;
      const std::vector<LiveSnapshot> shards = snapshots_();
      std::vector<HealthEvent> transitions;
      {
        std::lock_guard<std::mutex> lock(watchdog_mutex_);
        transitions = watchdog_.feed(shards, now);
      }
      if (config_.on_health) {
        for (const HealthEvent& event : transitions) {
          config_.on_health(event);
        }
      }
    }
    pollfd p{listen_fd_, POLLIN, 0};
    // Short poll keeps both the accept and the monitor cadence responsive
    // without a second thread.
    const int timeout_ms =
        static_cast<int>(config_.monitor_period_ms > 20
                             ? 20
                             : (config_.monitor_period_ms ? config_.monitor_period_ms : 1));
    const int rc = ::poll(&p, 1, timeout_ms);
    if (rc <= 0) {
      continue;  // timeout or EINTR; errors surface on accept
    }
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      continue;  // raced another wakeup / transient error; keep serving
    }
    try {
      handle_client(fd);
    } catch (...) {
      // A misbehaving scraper must never take the run down.
    }
    ::close(fd);
  }
}

void LiveServer::handle_client(int fd) {
  // Read until the end of the request head (or a small cap); only the
  // request line matters. The client may legally still be sending when we
  // respond — we close after one response anyway.
  std::string head;
  char buf[1024];
  while (head.size() < 8192 && head.find("\r\n\r\n") == std::string::npos &&
         head.find('\n') == std::string::npos) {
    pollfd p{fd, POLLIN, 0};
    if (::poll(&p, 1, 1000) <= 0) {
      return;  // slow or dead client; drop it
    }
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      return;
    }
    head.append(buf, static_cast<std::size_t>(n));
  }
  std::string path = "/";
  const std::size_t sp1 = head.find(' ');
  if (sp1 != std::string::npos) {
    const std::size_t sp2 = head.find(' ', sp1 + 1);
    if (sp2 != std::string::npos) {
      path = head.substr(sp1 + 1, sp2 - sp1 - 1);
    }
  }
  const std::string response = render(path);
  util::net::write_all(fd, reinterpret_cast<const std::uint8_t*>(response.data()),
                       response.size(), kCtx);
}

std::string LiveServer::render(const std::string& path) {
  std::string body;
  std::string content_type = "text/plain; version=0.0.4; charset=utf-8";
  std::string status = "200 OK";
  if (path == "/metrics") {
    std::ostringstream os;
    write_prometheus(os, build_live_metrics(snapshots_()));
    body = os.str();
  } else if (path == "/snapshot" || path == "/") {
    std::ostringstream os;
    std::vector<std::pair<HealthRule, std::uint32_t>> active;
    std::vector<HealthEvent> events;
    {
      std::lock_guard<std::mutex> lock(watchdog_mutex_);
      active = watchdog_.active();
      events = watchdog_.history();
    }
    write_live_json(os, snapshots_(), active, events, util::net::mono_ns());
    body = os.str();
    content_type = "application/json";
  } else if (path == "/health") {
    std::ostringstream os;
    {
      std::lock_guard<std::mutex> lock(watchdog_mutex_);
      write_health_jsonl(os, watchdog_.history());
    }
    body = os.str();
    content_type = "application/x-ndjson";
  } else {
    status = "404 Not Found";
    body = "not found\n";
  }
  std::string response = "HTTP/1.1 " + status +
                         "\r\nContent-Type: " + content_type +
                         "\r\nContent-Length: " + std::to_string(body.size()) +
                         "\r\nConnection: close\r\n\r\n";
  response += body;
  return response;
}

#else  // !OTW_OBS_LIVE

LiveServer::LiveServer(LiveServerConfig config, SnapshotFn snapshots)
    : config_(std::move(config)), snapshots_(std::move(snapshots)) {}

LiveServer::~LiveServer() = default;

void LiveServer::start() {}
void LiveServer::stop() {}
std::uint16_t LiveServer::port() const noexcept { return 0; }
std::vector<HealthEvent> LiveServer::health() const { return {}; }

#endif  // OTW_OBS_LIVE

}  // namespace otw::obs::live
