#include "otw/obs/hist.hpp"

#include <algorithm>
#include <cmath>

namespace otw::obs::hist {

const char* seam_name(Seam seam) noexcept {
  switch (seam) {
    case Seam::WireEncode:
      return "wire_encode_ns";
    case Seam::WireDecode:
      return "wire_decode_ns";
    case Seam::LinkLatency:
      return "link_latency_ns";
    case Seam::RelayResidency:
      return "relay_residency_ns";
    case Seam::GvtRound:
      return "gvt_round_ns";
    case Seam::MailboxDwell:
      return "mailbox_dwell_ns";
    case Seam::RollbackDepth:
      return "rollback_depth_events";
    case Seam::StealLatency:
      return "steal_latency_ns";
    case Seam::MigrationFreeze:
      return "migration_freeze_ns";
    case Seam::MigrationRestore:
      return "migration_restore_ns";
    case Seam::SnapshotEncode:
      return "snapshot_encode_ns";
    case Seam::RestoreReplay:
      return "restore_replay_ns";
    case Seam::kCount:
      break;
  }
  return "unknown";
}

std::size_t bucket_index(std::uint64_t value) noexcept {
  if (value == 0) {
    return 0;
  }
  // Bucket i holds [2^(i-1), 2^i): bit_width(value) clamped to the table.
  std::size_t i = 0;
  while (value != 0) {
    value >>= 1;
    ++i;
  }
  return std::min(i, kNumBuckets - 1);
}

std::uint64_t bucket_upper_bound(std::size_t i) noexcept {
  if (i == 0) {
    return 0;
  }
  if (i >= 64) {
    return UINT64_MAX;
  }
  return (std::uint64_t{1} << i) - 1;
}

void Snapshot::add(std::uint64_t value) noexcept {
  buckets[bucket_index(value)] += 1;
  count += 1;
  sum += value;
}

void Snapshot::merge(const Snapshot& other) noexcept {
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    buckets[i] += other.buckets[i];
  }
  count += other.count;
  sum += other.sum;
}

std::uint64_t Snapshot::quantile_upper_bound(double q) const noexcept {
  if (count == 0) {
    return 0;
  }
  q = std::clamp(q, 0.0, 1.0);
  const auto target =
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    seen += buckets[i];
    if (seen >= target) {
      return bucket_upper_bound(i);
    }
  }
  return bucket_upper_bound(kNumBuckets - 1);
}

}  // namespace otw::obs::hist
