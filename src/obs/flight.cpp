#include "otw/obs/flight.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "otw/util/net.hpp"

namespace otw::obs::flight {

namespace {

void json_escape(std::ostream& os, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

void write_health_event(std::ostream& os, const live::HealthEvent& e) {
  os << "{\"rule\":\"" << live::health_rule_name(e.rule) << "\","
     << "\"raised\":" << (e.raised ? "true" : "false") << ","
     << "\"shard\":" << e.shard << ","
     << "\"wall_ns\":" << e.wall_ns << ",\"detail\":\"";
  json_escape(os, e.detail);
  os << "\"}";
}

template <typename T>
void push_ring(std::deque<T>& ring, const T& value, std::size_t cap) {
  if (cap == 0) {
    return;
  }
  if (ring.size() == cap) {
    ring.pop_front();
  }
  ring.push_back(value);
}

}  // namespace

FlightRecorder::FlightRecorder(FlightConfig config, std::uint32_t num_shards)
    : config_(std::move(config)),
      num_shards_(num_shards),
      snapshots_(num_shards),
      frames_(num_shards) {}

void FlightRecorder::on_snapshot(const live::LiveSnapshot& snap) {
  if (!config_.enabled || snap.shard >= num_shards_) {
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  push_ring(snapshots_[snap.shard], snap, config_.snapshot_ring);
}

void FlightRecorder::on_health(const live::HealthEvent& event) {
  if (!config_.enabled) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    push_ring(health_, event, config_.health_ring);
    last_event_ = event;
    has_last_event_ = true;
    const auto key = std::make_pair(event.rule, event.shard);
    const auto it = std::find(active_.begin(), active_.end(), key);
    if (event.raised && it == active_.end()) {
      active_.push_back(key);
    } else if (!event.raised && it != active_.end()) {
      active_.erase(it);
    }
  }
  if (event.raised) {
    dump(event.shard < num_shards_ ? event.shard : 0,
         std::string("watchdog raised ") + live::health_rule_name(event.rule) +
             " on shard " + std::to_string(event.shard));
  }
}

void FlightRecorder::on_frame(const FrameEvent& event) {
  if (!config_.enabled || event.src_shard >= num_shards_) {
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  push_ring(frames_[event.src_shard], event, config_.frame_ring);
}

std::string FlightRecorder::render(std::uint32_t shard,
                                   const std::string& reason,
                                   std::uint64_t now_ns) const {
  std::ostringstream os;
  os << "{\"schema\":\"otw-flight-v1\",\"shard\":" << shard << ",\"reason\":\"";
  json_escape(os, reason);
  os << "\",\"dumped_at_ns\":" << now_ns << ",";

  // Last-known watchdog state: what was raised when the box went dark.
  os << "\"watchdog\":{\"active\":[";
  for (std::size_t i = 0; i < active_.size(); ++i) {
    os << (i ? "," : "") << "{\"rule\":\""
       << live::health_rule_name(active_[i].first)
       << "\",\"shard\":" << active_[i].second << "}";
  }
  os << "],\"last_event\":";
  if (has_last_event_) {
    write_health_event(os, last_event_);
  } else {
    os << "null";
  }
  os << "},";

  os << "\"health_events\":[";
  for (std::size_t i = 0; i < health_.size(); ++i) {
    if (i) {
      os << ",";
    }
    write_health_event(os, health_[i]);
  }
  os << "],";

  os << "\"snapshots\":[";
  const std::deque<live::LiveSnapshot>& ring = snapshots_[shard];
  for (std::size_t i = 0; i < ring.size(); ++i) {
    const live::LiveSnapshot& snap = ring[i];
    if (i) {
      os << ",";
    }
    os << "{\"wall_ns\":" << snap.wall_ns
       << ",\"gvt_ticks\":" << snap.gvt_ticks
       << ",\"processed\":" << snap.total(live::Counter::EventsProcessed)
       << ",\"committed\":" << snap.total(live::Counter::EventsCommitted)
       << ",\"rolled_back\":" << snap.total(live::Counter::EventsRolledBack)
       << ",\"hists\":[";
    for (std::size_t h = 0; h < snap.hists.size(); ++h) {
      const hist::Entry& e = snap.hists[h];
      os << (h ? "," : "") << "{\"seam\":\"" << hist::seam_name(e.seam) << "\"";
      if (hist::seam_is_link(e.seam)) {
        os << ",\"src\":" << e.src << ",\"dst\":" << e.dst;
      }
      os << ",\"count\":" << e.hist.count << ",\"sum\":" << e.hist.sum
         << ",\"p50\":" << e.hist.quantile_upper_bound(0.50)
         << ",\"p95\":" << e.hist.quantile_upper_bound(0.95)
         << ",\"p99\":" << e.hist.quantile_upper_bound(0.99) << "}";
    }
    os << "]}";
  }
  os << "],";

  os << "\"frames\":[";
  const std::deque<FrameEvent>& frames = frames_[shard];
  for (std::size_t i = 0; i < frames.size(); ++i) {
    const FrameEvent& f = frames[i];
    os << (i ? "," : "") << "{\"src\":" << f.src_shard
       << ",\"dst\":" << f.dst_shard << ",\"tag\":" << f.tag
       << ",\"len\":" << f.frame_len << ",\"send_ns\":" << f.send_ns
       << ",\"relay_ns\":" << f.coord_now_ns << "}";
  }
  os << "]}";
  return os.str();
}

std::string FlightRecorder::dump(std::uint32_t shard,
                                 const std::string& reason) {
  if (!config_.enabled || shard >= num_shards_) {
    return "";
  }
  std::lock_guard<std::mutex> lock(mutex_);
  const std::string path =
      config_.dir + "/flight-" + std::to_string(shard) + ".json";
  const std::string body = render(shard, reason, util::net::mono_ns());
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return "";  // evidence is best-effort; never take the run down
  }
  out << body << "\n";
  out.flush();
  if (std::find(dumped_.begin(), dumped_.end(), path) == dumped_.end()) {
    dumped_.push_back(path);
  }
  return path;
}

void FlightRecorder::dump_all(const std::string& reason) {
  for (std::uint32_t shard = 0; shard < num_shards_; ++shard) {
    dump(shard, reason);
  }
}

std::vector<std::string> FlightRecorder::dumped_paths() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dumped_;
}

// ---------------------------------------------------------------------------
// Worker-side fatal-signal dump (async-signal-safe).
// ---------------------------------------------------------------------------

namespace {

// Fixed at install time; the handler only calls open/write/close/raise.
char g_fatal_path[512];
char g_fatal_prefix[256];
volatile std::sig_atomic_t g_fatal_armed = 0;

extern "C" void otw_flight_fatal_handler(int sig) {
  if (g_fatal_armed != 0) {
    const int fd = ::open(g_fatal_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      const std::size_t prefix_len = ::strlen(g_fatal_prefix);
      ssize_t ignored = ::write(fd, g_fatal_prefix, prefix_len);
      char digits[16];
      int n = 0;
      int v = sig;
      do {
        digits[n++] = static_cast<char>('0' + v % 10);
        v /= 10;
      } while (v > 0 && n < 15);
      for (int i = n - 1; i >= 0; --i) {
        ignored = ::write(fd, &digits[i], 1);
      }
      const char suffix[] = "\"}\n";
      ignored = ::write(fd, suffix, sizeof suffix - 1);
      static_cast<void>(ignored);
      ::close(fd);
    }
  }
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

}  // namespace

void install_worker_fatal_dump(const std::string& dir, std::uint32_t shard) {
  if (dir.empty()) {
    return;
  }
  const std::string path =
      dir + "/flight-" + std::to_string(shard) + ".json";
  if (path.size() >= sizeof g_fatal_path) {
    return;
  }
  std::memcpy(g_fatal_path, path.c_str(), path.size() + 1);
  const std::string prefix =
      "{\"schema\":\"otw-flight-v1\",\"shard\":" + std::to_string(shard) +
      ",\"reason\":\"fatal signal ";
  if (prefix.size() >= sizeof g_fatal_prefix) {
    return;
  }
  std::memcpy(g_fatal_prefix, prefix.c_str(), prefix.size() + 1);
  g_fatal_armed = 1;
  struct sigaction sa;
  std::memset(&sa, 0, sizeof sa);
  sa.sa_handler = otw_flight_fatal_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  ::sigaction(SIGSEGV, &sa, nullptr);
  ::sigaction(SIGBUS, &sa, nullptr);
  ::sigaction(SIGFPE, &sa, nullptr);
  ::sigaction(SIGABRT, &sa, nullptr);
}

}  // namespace otw::obs::flight
