#include "otw/obs/live.hpp"

#include <cstring>
#include <ostream>
#include <sstream>

namespace otw::obs::live {

namespace {

// Snapshot wire format. Little-endian throughout:
//   u32 magic 'OTWL' | u32 version | u32 shard | u64 wall_ns | u64 gvt_ticks
//   u32 n_engine | u64 * n_engine
//   u32 n_lps    | per LP: u32 lp | u32 n_counters | u64 * | u32 n_gauges | u64 *
// Version 2 appends the attribution-histogram section:
//   u32 n_hists  | per hist: u32 seam | u32 src | u32 dst
//                | u32 n_buckets | u64 count | u64 sum | u64 * n_buckets
// Slot counts are explicit so a decoder one enum ahead/behind still frames
// the payload correctly (extra slots are dropped, missing slots stay 0).
// The decoder accepts version 1 (no histogram section) so a mixed fleet
// mid-upgrade still merges into one ClusterView.
constexpr std::uint32_t kMagic = 0x4C57544Fu;  // 'OTWL'
constexpr std::uint32_t kVersion = 2;

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

struct Cursor {
  const std::uint8_t* data;
  std::size_t len;
  std::size_t pos = 0;

  [[nodiscard]] bool u32(std::uint32_t& v) {
    if (len - pos < 4) {
      return false;
    }
    v = static_cast<std::uint32_t>(data[pos]) |
        static_cast<std::uint32_t>(data[pos + 1]) << 8 |
        static_cast<std::uint32_t>(data[pos + 2]) << 16 |
        static_cast<std::uint32_t>(data[pos + 3]) << 24;
    pos += 4;
    return true;
  }

  [[nodiscard]] bool u64(std::uint64_t& v) {
    std::uint32_t lo = 0;
    std::uint32_t hi = 0;
    if (!u32(lo) || !u32(hi)) {
      return false;
    }
    v = static_cast<std::uint64_t>(lo) | static_cast<std::uint64_t>(hi) << 32;
    return true;
  }
};

/// -1 for the infinity sentinel, the tick count otherwise (JSON-friendly).
void append_ticks(std::ostream& os, std::uint64_t ticks) {
  if (ticks == kTicksInfinity) {
    os << -1;
  } else {
    os << ticks;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Codec.
// ---------------------------------------------------------------------------

void encode_snapshot(const LiveSnapshot& snap, std::vector<std::uint8_t>& out) {
  out.clear();
  put_u32(out, kMagic);
  put_u32(out, kVersion);
  put_u32(out, snap.shard);
  put_u64(out, snap.wall_ns);
  put_u64(out, snap.gvt_ticks);
  put_u32(out, static_cast<std::uint32_t>(kNumEngineGauges));
  for (std::uint64_t g : snap.engine) {
    put_u64(out, g);
  }
  put_u32(out, static_cast<std::uint32_t>(snap.lps.size()));
  for (const LpLive& lp : snap.lps) {
    put_u32(out, lp.lp);
    put_u32(out, static_cast<std::uint32_t>(kNumCounters));
    for (std::uint64_t c : lp.counters) {
      put_u64(out, c);
    }
    put_u32(out, static_cast<std::uint32_t>(kNumGauges));
    for (std::uint64_t g : lp.gauges) {
      put_u64(out, g);
    }
  }
  put_u32(out, static_cast<std::uint32_t>(snap.hists.size()));
  for (const hist::Entry& e : snap.hists) {
    put_u32(out, static_cast<std::uint32_t>(e.seam));
    put_u32(out, e.src);
    put_u32(out, e.dst);
    put_u32(out, static_cast<std::uint32_t>(hist::kNumBuckets));
    put_u64(out, e.hist.count);
    put_u64(out, e.hist.sum);
    for (std::uint64_t b : e.hist.buckets) {
      put_u64(out, b);
    }
  }
}

bool decode_snapshot(const std::uint8_t* data, std::size_t len,
                     LiveSnapshot& out) {
  Cursor cur{data, len};
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  if (!cur.u32(magic) || magic != kMagic || !cur.u32(version) ||
      version < 1 || version > kVersion) {
    return false;
  }
  out = LiveSnapshot{};
  if (!cur.u32(out.shard) || !cur.u64(out.wall_ns) || !cur.u64(out.gvt_ticks)) {
    return false;
  }
  std::uint32_t n_engine = 0;
  if (!cur.u32(n_engine)) {
    return false;
  }
  for (std::uint32_t g = 0; g < n_engine; ++g) {
    std::uint64_t v = 0;
    if (!cur.u64(v)) {
      return false;
    }
    if (g < kNumEngineGauges) {
      out.engine[g] = v;
    }
  }
  std::uint32_t n_lps = 0;
  if (!cur.u32(n_lps)) {
    return false;
  }
  // 16 bytes is the floor for one serialized LP; rejects absurd counts
  // before the resize rather than after an allocation failure.
  if (static_cast<std::size_t>(n_lps) > len / 16 + 1) {
    return false;
  }
  out.lps.resize(n_lps);
  for (std::uint32_t i = 0; i < n_lps; ++i) {
    LpLive& lp = out.lps[i];
    std::uint32_t n_counters = 0;
    if (!cur.u32(lp.lp) || !cur.u32(n_counters)) {
      return false;
    }
    for (std::uint32_t c = 0; c < n_counters; ++c) {
      std::uint64_t v = 0;
      if (!cur.u64(v)) {
        return false;
      }
      if (c < kNumCounters) {
        lp.counters[c] = v;
      }
    }
    std::uint32_t n_gauges = 0;
    if (!cur.u32(n_gauges)) {
      return false;
    }
    for (std::uint32_t g = 0; g < n_gauges; ++g) {
      std::uint64_t v = 0;
      if (!cur.u64(v)) {
        return false;
      }
      if (g < kNumGauges) {
        lp.gauges[g] = v;
      }
    }
  }
  if (version >= 2) {
    std::uint32_t n_hists = 0;
    if (!cur.u32(n_hists)) {
      return false;
    }
    // 32 bytes is a generous floor for one serialized histogram entry.
    if (static_cast<std::size_t>(n_hists) > len / 32 + 1) {
      return false;
    }
    out.hists.resize(n_hists);
    for (std::uint32_t i = 0; i < n_hists; ++i) {
      hist::Entry& e = out.hists[i];
      std::uint32_t seam = 0;
      std::uint32_t n_buckets = 0;
      if (!cur.u32(seam) || !cur.u32(e.src) || !cur.u32(e.dst) ||
          !cur.u32(n_buckets) || !cur.u64(e.hist.count) ||
          !cur.u64(e.hist.sum)) {
        return false;
      }
      if (seam >= static_cast<std::uint32_t>(hist::kNumSeams)) {
        return false;
      }
      e.seam = static_cast<hist::Seam>(seam);
      e.shard = out.shard;
      for (std::uint32_t b = 0; b < n_buckets; ++b) {
        std::uint64_t v = 0;
        if (!cur.u64(v)) {
          return false;
        }
        if (b < hist::kNumBuckets) {
          e.hist.buckets[b] = v;
        }
      }
    }
  }
  return cur.pos == cur.len;
}

// ---------------------------------------------------------------------------
// Watchdog.
// ---------------------------------------------------------------------------

const char* health_rule_name(HealthRule rule) noexcept {
  switch (rule) {
    case HealthRule::GvtStall:
      return "GvtStall";
    case HealthRule::RollbackStorm:
      return "RollbackStorm";
    case HealthRule::OccupancyPinned:
      return "OccupancyPinned";
    case HealthRule::ShardSilent:
      return "ShardSilent";
    case HealthRule::kCount:
      break;
  }
  return "Unknown";
}

void Watchdog::transition(ShardState& state, HealthRule rule, bool now_raised,
                          std::uint32_t shard, std::uint64_t now_ns,
                          std::string detail, std::vector<HealthEvent>& out) {
  bool& flag = state.raised[static_cast<std::size_t>(rule)];
  if (flag == now_raised) {
    return;
  }
  flag = now_raised;
  HealthEvent event;
  event.rule = rule;
  event.raised = now_raised;
  event.shard = shard;
  event.wall_ns = now_ns;
  event.detail = std::move(detail);
  history_.push_back(event);
  out.push_back(std::move(event));
}

std::vector<HealthEvent> Watchdog::feed(const std::vector<LiveSnapshot>& shards,
                                        std::uint64_t now_ns) {
  std::vector<HealthEvent> out;
  for (const LiveSnapshot& snap : shards) {
    if (snap.shard >= states_.size()) {
      states_.resize(snap.shard + 1);
    }
    ShardState& st = states_[snap.shard];

    // --- ShardSilent: end-to-end staleness of the latest snapshot. ---
    const std::uint64_t age =
        now_ns > snap.wall_ns ? now_ns - snap.wall_ns : 0;
    transition(st, HealthRule::ShardSilent, age > config_.shard_silent_ns,
               snap.shard, now_ns,
               "snapshot age " + std::to_string(age) + " ns", out);

    const std::uint64_t processed = snap.total(Counter::EventsProcessed);
    const std::uint64_t committed = snap.total(Counter::EventsCommitted);
    const std::uint64_t rolled_back = snap.total(Counter::EventsRolledBack);

    if (st.seen) {
      // --- GvtStall: GVT frozen across feeds while the shard kept busy. ---
      const bool worked = processed > st.last_processed;
      if (snap.gvt_ticks != st.last_gvt) {
        st.gvt_stall_feeds = 0;
      } else if (worked) {
        ++st.gvt_stall_feeds;
      }
      transition(st, HealthRule::GvtStall,
                 st.gvt_stall_feeds >= config_.gvt_stall_feeds, snap.shard,
                 now_ns,
                 "gvt unchanged for " + std::to_string(st.gvt_stall_feeds) +
                     " feeds",
                 out);

      // --- RollbackStorm: wasted work dominating the delta window. ---
      const std::uint64_t d_committed = committed - st.last_committed;
      const std::uint64_t d_rolled = rolled_back - st.last_rolled_back;
      if (d_committed + d_rolled >= config_.rollback_min_events) {
        const bool storm =
            static_cast<double>(d_rolled) >
            config_.rollback_ratio * static_cast<double>(d_committed);
        transition(st, HealthRule::RollbackStorm, storm, snap.shard, now_ns,
                   "delta rolled_back=" + std::to_string(d_rolled) +
                       " committed=" + std::to_string(d_committed),
                   out);
      }
    }

    // --- OccupancyPinned: footprint riding the governance budget. ---
    const std::uint64_t footprint = snap.sum_gauge(Gauge::MemoryBytes);
    const std::uint64_t budget = snap.sum_gauge(Gauge::MemoryBudgetBytes);
    const bool pinned_now =
        budget > 0 && static_cast<double>(footprint) >=
                          config_.occupancy_fraction * static_cast<double>(budget);
    st.occupancy_feeds = pinned_now ? st.occupancy_feeds + 1 : 0;
    transition(st, HealthRule::OccupancyPinned,
               st.occupancy_feeds >= config_.occupancy_feeds, snap.shard,
               now_ns,
               "footprint " + std::to_string(footprint) + " of budget " +
                   std::to_string(budget),
               out);

    st.seen = true;
    st.last_gvt = snap.gvt_ticks;
    st.last_processed = processed;
    st.last_committed = committed;
    st.last_rolled_back = rolled_back;
  }
  return out;
}

std::vector<std::pair<HealthRule, std::uint32_t>> Watchdog::active() const {
  std::vector<std::pair<HealthRule, std::uint32_t>> out;
  for (std::size_t shard = 0; shard < states_.size(); ++shard) {
    for (std::size_t r = 0; r < static_cast<std::size_t>(HealthRule::kCount);
         ++r) {
      if (states_[shard].raised[r]) {
        out.emplace_back(static_cast<HealthRule>(r),
                         static_cast<std::uint32_t>(shard));
      }
    }
  }
  return out;
}

void write_health_jsonl(std::ostream& os,
                        const std::vector<HealthEvent>& events) {
  for (const HealthEvent& e : events) {
    os << "{\"rule\":\"" << health_rule_name(e.rule) << "\",\"state\":\""
       << (e.raised ? "raised" : "cleared") << "\",\"shard\":" << e.shard
       << ",\"wall_ns\":" << e.wall_ns << ",\"detail\":\""
       << json_escape(e.detail) << "\"}\n";
  }
}

// ---------------------------------------------------------------------------
// ClusterView.
// ---------------------------------------------------------------------------

void ClusterView::update(LiveSnapshot snap, std::uint64_t arrival_ns) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint32_t shard = snap.shard;
  if (shard >= shards_.size()) {
    shards_.resize(shard + 1);
    seen_.resize(shard + 1, false);
  }
  snap.wall_ns = arrival_ns;
  shards_[shard] = std::move(snap);
  seen_[shard] = true;
}

std::vector<LiveSnapshot> ClusterView::shards() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<LiveSnapshot> out;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (seen_[i]) {
      out.push_back(shards_[i]);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Exposition.
// ---------------------------------------------------------------------------

MetricsSnapshot build_live_metrics(const std::vector<LiveSnapshot>& shards) {
  MetricsSnapshot snapshot;
  std::uint64_t cluster_gvt = kTicksInfinity;
  for (const LiveSnapshot& s : shards) {
    if (s.gvt_ticks != kTicksInfinity &&
        (cluster_gvt == kTicksInfinity || s.gvt_ticks < cluster_gvt)) {
      cluster_gvt = s.gvt_ticks;
    }
  }
  snapshot.add("otw_live_shards", static_cast<double>(shards.size()),
               Metric::Type::Gauge);
  snapshot.add("otw_live_gvt_ticks", static_cast<double>(cluster_gvt),
               Metric::Type::Gauge);

  for (const LiveSnapshot& s : shards) {
    const std::pair<std::string, std::string> label{"shard",
                                                    std::to_string(s.shard)};
    auto add = [&](const char* name, double value, Metric::Type type) {
      Metric metric;
      metric.name = name;
      metric.labels.push_back(label);
      metric.value = value;
      metric.type = type;
      snapshot.metrics.push_back(std::move(metric));
    };
    using T = Metric::Type;
    add("otw_live_lps", static_cast<double>(s.lps.size()), T::Gauge);
    add("otw_live_shard_gvt_ticks", static_cast<double>(s.gvt_ticks), T::Gauge);
    add("otw_live_snapshot_wall_ns", static_cast<double>(s.wall_ns), T::Gauge);
    add("otw_live_events_processed_total",
        static_cast<double>(s.total(Counter::EventsProcessed)), T::Counter);
    add("otw_live_events_committed_total",
        static_cast<double>(s.total(Counter::EventsCommitted)), T::Counter);
    add("otw_live_events_rolled_back_total",
        static_cast<double>(s.total(Counter::EventsRolledBack)), T::Counter);
    add("otw_live_rollbacks_total",
        static_cast<double>(s.total(Counter::Rollbacks)), T::Counter);
    add("otw_live_anti_messages_sent_total",
        static_cast<double>(s.total(Counter::AntiMessagesSent)), T::Counter);
    add("otw_live_messages_sent_total",
        static_cast<double>(s.total(Counter::MessagesSent)), T::Counter);
    add("otw_live_sends_held_total",
        static_cast<double>(s.total(Counter::SendsHeld)), T::Counter);
    add("otw_live_pressure_enters_total",
        static_cast<double>(s.total(Counter::PressureEnters)), T::Counter);
    add("otw_live_gvt_epochs_total",
        static_cast<double>(s.total(Counter::GvtEpochs)), T::Counter);
    add("otw_live_memory_bytes",
        static_cast<double>(s.sum_gauge(Gauge::MemoryBytes)), T::Gauge);
    add("otw_live_memory_budget_bytes",
        static_cast<double>(s.sum_gauge(Gauge::MemoryBudgetBytes)), T::Gauge);
    add("otw_live_pressure_state_max",
        static_cast<double>(s.max_gauge(Gauge::PressureState)), T::Gauge);
    add("otw_live_last_rollback_depth_max",
        static_cast<double>(s.max_gauge(Gauge::LastRollbackDepth)), T::Gauge);
    add("otw_live_mailbox_occupancy",
        static_cast<double>(s.engine_gauge(EngineGauge::MailboxOccupancy)),
        T::Gauge);
    add("otw_live_workers_parked",
        static_cast<double>(s.engine_gauge(EngineGauge::WorkersParked)),
        T::Gauge);

    // Attribution histograms: one family per seam ("otw_hist_<seam>"),
    // cumulative le buckets trimmed at the highest non-empty bucket (the
    // implicit +Inf bucket is appended by the writer).
    for (const hist::Entry& e : s.hists) {
      HistogramMetric h;
      h.name = std::string("otw_hist_") + hist::seam_name(e.seam);
      h.labels.emplace_back("shard", std::to_string(s.shard));
      if (hist::seam_is_link(e.seam)) {
        h.labels.emplace_back("src", std::to_string(e.src));
        h.labels.emplace_back("dst", std::to_string(e.dst));
      }
      h.count = e.hist.count;
      h.sum = static_cast<double>(e.hist.sum);
      std::size_t top = 0;
      for (std::size_t i = 0; i < hist::kNumBuckets; ++i) {
        if (e.hist.buckets[i] != 0) {
          top = i;
        }
      }
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i <= top; ++i) {
        cumulative += e.hist.buckets[i];
        h.buckets.emplace_back(
            static_cast<double>(hist::bucket_upper_bound(i)), cumulative);
      }
      snapshot.histograms.push_back(std::move(h));
    }
  }
  return snapshot;
}

void write_live_json(std::ostream& os, const std::vector<LiveSnapshot>& shards,
                     const std::vector<std::pair<HealthRule, std::uint32_t>>& active,
                     const std::vector<HealthEvent>& recent_events,
                     std::uint64_t now_ns) {
  std::uint64_t cluster_gvt = kTicksInfinity;
  for (const LiveSnapshot& s : shards) {
    if (s.gvt_ticks != kTicksInfinity &&
        (cluster_gvt == kTicksInfinity || s.gvt_ticks < cluster_gvt)) {
      cluster_gvt = s.gvt_ticks;
    }
  }
  os << "{\"wall_ns\":" << now_ns << ",\"num_shards\":" << shards.size()
     << ",\"gvt_ticks\":";
  append_ticks(os, cluster_gvt);
  os << ",\"shards\":[";
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const LiveSnapshot& s = shards[i];
    if (i > 0) {
      os << ",";
    }
    os << "{\"shard\":" << s.shard << ",\"wall_ns\":" << s.wall_ns
       << ",\"num_lps\":" << s.lps.size() << ",\"gvt_ticks\":";
    append_ticks(os, s.gvt_ticks);
    os << ",\"events_processed\":" << s.total(Counter::EventsProcessed)
       << ",\"events_committed\":" << s.total(Counter::EventsCommitted)
       << ",\"events_rolled_back\":" << s.total(Counter::EventsRolledBack)
       << ",\"rollbacks\":" << s.total(Counter::Rollbacks)
       << ",\"anti_messages_sent\":" << s.total(Counter::AntiMessagesSent)
       << ",\"messages_sent\":" << s.total(Counter::MessagesSent)
       << ",\"sends_held\":" << s.total(Counter::SendsHeld)
       << ",\"pressure_enters\":" << s.total(Counter::PressureEnters)
       << ",\"gvt_epochs\":" << s.total(Counter::GvtEpochs)
       << ",\"memory_bytes\":" << s.sum_gauge(Gauge::MemoryBytes)
       << ",\"memory_budget_bytes\":" << s.sum_gauge(Gauge::MemoryBudgetBytes)
       << ",\"pressure_state_max\":" << s.max_gauge(Gauge::PressureState)
       << ",\"last_rollback_depth_max\":"
       << s.max_gauge(Gauge::LastRollbackDepth)
       << ",\"mailbox_occupancy\":"
       << s.engine_gauge(EngineGauge::MailboxOccupancy)
       << ",\"workers_parked\":" << s.engine_gauge(EngineGauge::WorkersParked)
       << ",\"hists\":[";
    for (std::size_t h = 0; h < s.hists.size(); ++h) {
      const hist::Entry& e = s.hists[h];
      if (h > 0) {
        os << ",";
      }
      os << "{\"seam\":\"" << hist::seam_name(e.seam) << "\"";
      if (hist::seam_is_link(e.seam)) {
        os << ",\"src\":" << e.src << ",\"dst\":" << e.dst;
      }
      os << ",\"count\":" << e.hist.count << ",\"sum\":" << e.hist.sum
         << ",\"p50\":" << e.hist.quantile_upper_bound(0.50)
         << ",\"p95\":" << e.hist.quantile_upper_bound(0.95)
         << ",\"p99\":" << e.hist.quantile_upper_bound(0.99) << "}";
    }
    os << "]}";
  }
  os << "],\"watchdog\":{\"active\":[";
  for (std::size_t i = 0; i < active.size(); ++i) {
    if (i > 0) {
      os << ",";
    }
    os << "{\"rule\":\"" << health_rule_name(active[i].first)
       << "\",\"shard\":" << active[i].second << "}";
  }
  os << "],\"events\":[";
  for (std::size_t i = 0; i < recent_events.size(); ++i) {
    const HealthEvent& e = recent_events[i];
    if (i > 0) {
      os << ",";
    }
    os << "{\"rule\":\"" << health_rule_name(e.rule) << "\",\"state\":\""
       << (e.raised ? "raised" : "cleared") << "\",\"shard\":" << e.shard
       << ",\"wall_ns\":" << e.wall_ns << ",\"detail\":\""
       << json_escape(e.detail) << "\"}";
  }
  os << "]}}";
}

}  // namespace otw::obs::live
