#include "otw/obs/export.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <ostream>

namespace otw::obs {

std::string json_escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

/// JSON number formatting: integral values print without a fraction (keeps
/// counters exact), everything else with enough digits to round-trip.
std::string format_number(double value) {
  char buf[64];
  if (std::isfinite(value) && value == std::floor(value) &&
      std::fabs(value) < 9.0e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  } else if (std::isfinite(value)) {
    std::snprintf(buf, sizeof(buf), "%.9g", value);
  } else {
    // JSON has no Infinity/NaN.
    std::snprintf(buf, sizeof(buf), "%s", "null");
  }
  return buf;
}

std::string ts_us(std::uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03u", ns / 1000,
                static_cast<unsigned>(ns % 1000));
  return buf;
}

/// One trace_event line. `extra` is spliced verbatim after the common fields
/// (callers pass pre-rendered `"args":{...}` etc.).
void emit_event(std::ostream& os, bool& first, const char* ph, std::uint32_t lp,
                std::uint64_t ts_ns, const char* name, const std::string& extra) {
  os << (first ? "\n " : ",\n ") << "{\"ph\":\"" << ph
     << "\",\"pid\":0,\"tid\":" << lp << ",\"ts\":" << ts_us(ts_ns);
  if (name != nullptr) {
    os << ",\"name\":\"" << name << '"';
  }
  if (!extra.empty()) {
    os << ',' << extra;
  }
  os << '}';
  first = false;
}

std::string args1(const char* key, const std::string& value) {
  return std::string("\"args\":{\"") + key + "\":" + value + "}";
}

}  // namespace

void write_chrome_trace(std::ostream& os, const RunTrace& trace) {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;

  for (const LpTraceLog& log : trace.lps) {
    // Track naming: one thread per LP (or scheduler worker) under a single
    // process.
    const std::string track =
        log.name.empty() ? "LP " + std::to_string(log.lp) : log.name;
    emit_event(os, first, "M", log.lp, 0, "thread_name",
               "\"args\":{\"name\":\"" + json_escape(track) + "\"}");

    std::uint64_t open_rollbacks = 0;
    std::uint64_t last_ts = 0;
    for (const TraceRecord& r : log.records) {
      last_ts = r.wall_ns;
      const std::string actor = std::to_string(r.actor);
      switch (r.kind) {
        case TraceKind::EventProcessed:
          emit_event(os, first, "i", log.lp, r.wall_ns, "event",
                     "\"s\":\"t\",\"args\":{\"object\":" + actor +
                         ",\"vt\":" + std::to_string(r.vt) + "}");
          break;
        case TraceKind::EventsCommitted:
          emit_event(os, first, "i", log.lp, r.wall_ns, "commit",
                     "\"s\":\"t\",\"args\":{\"object\":" + actor +
                         ",\"count\":" + std::to_string(r.arg0) + "}");
          break;
        case TraceKind::RollbackBegin: {
          ++open_rollbacks;
          const RollbackCause cause = unpack_rollback_cause(r);
          emit_event(os, first, "B", log.lp, r.wall_ns, "rollback",
                     "\"args\":{\"object\":" + actor +
                         ",\"target_vt\":" + std::to_string(r.vt) +
                         ",\"cause\":\"" + (cause.anti ? "anti" : "straggler") +
                         "\",\"src\":" + std::to_string(cause.source_object) +
                         ",\"send_vt\":" + std::to_string(cause.send_time) + "}");
          break;
        }
        case TraceKind::RollbackEnd:
          if (open_rollbacks == 0) {
            // The matching Begin was overwritten by ring overflow: degrade to
            // an instant so the file still pairs up.
            emit_event(os, first, "i", log.lp, r.wall_ns, "rollback_end",
                       "\"s\":\"t\"," + args1("undone", std::to_string(r.arg0)));
            break;
          }
          --open_rollbacks;
          emit_event(os, first, "E", log.lp, r.wall_ns, nullptr,
                     args1("undone", std::to_string(r.arg0)));
          break;
        case TraceKind::StateSave:
          emit_event(os, first, "i", log.lp, r.wall_ns, "checkpoint",
                     "\"s\":\"t\",\"args\":{\"object\":" + actor +
                         ",\"vt\":" + std::to_string(r.vt) +
                         ",\"bytes\":" + std::to_string(r.arg0) + "}");
          break;
        case TraceKind::StateRestore:
          emit_event(os, first, "i", log.lp, r.wall_ns, "restore",
                     "\"s\":\"t\",\"args\":{\"object\":" + actor +
                         ",\"vt\":" + std::to_string(r.vt) + "}");
          break;
        case TraceKind::CoastForward:
          emit_event(os, first, "X", log.lp, r.wall_ns, "coast_forward",
                     "\"dur\":" + ts_us(r.arg1) +
                         ",\"args\":{\"object\":" + actor +
                         ",\"events\":" + std::to_string(r.arg0) + "}");
          break;
        case TraceKind::AntiSent: {
          const AntiSentInfo anti = unpack_anti_sent(r);
          emit_event(os, first, "i", log.lp, r.wall_ns, "anti_sent",
                     "\"s\":\"t\",\"args\":{\"object\":" + actor +
                         ",\"vt\":" + std::to_string(r.vt) +
                         ",\"to\":" + std::to_string(anti.receiver) +
                         ",\"send_vt\":" + std::to_string(anti.send_time) + "}");
          break;
        }
        case TraceKind::AntiReceived:
          emit_event(os, first, "i", log.lp, r.wall_ns, "anti_received",
                     "\"s\":\"t\",\"args\":{\"object\":" + actor +
                         ",\"vt\":" + std::to_string(r.vt) + "}");
          break;
        case TraceKind::GvtEpoch:
          emit_event(os, first, "i", log.lp, r.wall_ns, "gvt",
                     "\"s\":\"p\"," + args1("gvt", std::to_string(r.vt)));
          break;
        case TraceKind::AggregateFlush: {
          const AggregateFlushInfo flush = unpack_aggregate_flush(r);
          emit_event(os, first, "i", log.lp, r.wall_ns, "aggregate_flush",
                     "\"s\":\"t\",\"args\":{\"batch\":" +
                         std::to_string(flush.batch_size) +
                         ",\"window_us\":" + format_number(flush.window_us) + "}");
          break;
        }
        case TraceKind::CheckpointDecision: {
          const CheckpointDecisionInfo chi = unpack_checkpoint_decision(r);
          emit_event(os, first, "i", log.lp, r.wall_ns, "chi_decision",
                     "\"s\":\"t\",\"args\":{\"object\":" + actor +
                         ",\"chi\":" + std::to_string(chi.interval) +
                         ",\"cost_index\":" + format_number(chi.cost_index) + "}");
          break;
        }
        case TraceKind::CancellationSwitch: {
          const CancellationSwitchInfo sw = unpack_cancellation_switch(r);
          emit_event(os, first, "i", log.lp, r.wall_ns, "cancellation_switch",
                     "\"s\":\"t\",\"args\":{\"object\":" + actor +
                         ",\"mode\":\"" + (sw.lazy ? "lazy" : "aggressive") +
                         "\",\"hit_ratio\":" + format_number(sw.hit_ratio) + "}");
          break;
        }
        case TraceKind::OptimismDecision: {
          const OptimismDecisionInfo opt = unpack_optimism_decision(r);
          emit_event(os, first, "i", log.lp, r.wall_ns, "optimism_decision",
                     "\"s\":\"t\",\"args\":{\"window\":" + std::to_string(opt.window) +
                         ",\"rollback_fraction\":" +
                         format_number(opt.rollback_fraction) + "}");
          break;
        }
        case TraceKind::TelemetrySample:
          if (is_object_sample(r)) {
            const ObjectSampleInfo s = unpack_object_sample(r);
            emit_event(os, first, "i", log.lp, r.wall_ns, "sample",
                       "\"s\":\"t\",\"args\":{\"object\":" + actor +
                           ",\"vt\":" + std::to_string(r.vt) + ",\"mode\":\"" +
                           (s.lazy ? "lazy" : "aggressive") +
                           "\",\"hit_ratio\":" + format_number(s.hit_ratio) + "}");
          } else {
            emit_event(os, first, "i", log.lp, r.wall_ns, "sample",
                       "\"s\":\"t\",\"args\":{\"object\":" + actor +
                           ",\"vt\":" + std::to_string(r.vt) + ",\"events\":" +
                           std::to_string(unpack_lp_sample(r)) + "}");
          }
          break;
        case TraceKind::WorkerPark: {
          const WorkerParkInfo park = unpack_worker_park(r);
          emit_event(os, first, "X", log.lp, r.wall_ns, "park",
                     "\"dur\":" + ts_us(park.duration_ns) +
                         ",\"args\":{\"woken_by\":\"" +
                         (park.token ? "token" : "timeout") + "\"}");
          break;
        }
        case TraceKind::WorkerWake:
          emit_event(os, first, "i", log.lp, r.wall_ns, "wake", "\"s\":\"t\"");
          break;
        case TraceKind::WorkerSteal: {
          const WorkerStealInfo steal = unpack_worker_steal(r);
          emit_event(os, first, "i", log.lp, r.wall_ns, "steal",
                     "\"s\":\"t\",\"args\":{\"victim\":" +
                         std::to_string(steal.victim) +
                         ",\"lp\":" + std::to_string(steal.lp) + "}");
          break;
        }
        case TraceKind::PressureEnter: {
          const PressureEnterInfo p = unpack_pressure_enter(r);
          emit_event(os, first, "i", log.lp, r.wall_ns, "pressure_enter",
                     "\"s\":\"p\",\"args\":{\"state\":\"" +
                         std::string(p.state >= 2 ? "emergency" : "throttle") +
                         "\",\"footprint\":" + std::to_string(p.footprint_bytes) +
                         ",\"budget\":" + std::to_string(p.budget_bytes) + "}");
          break;
        }
        case TraceKind::PressureExit: {
          const PressureExitInfo p = unpack_pressure_exit(r);
          emit_event(os, first, "i", log.lp, r.wall_ns, "pressure_exit",
                     "\"s\":\"p\",\"args\":{\"footprint\":" +
                         std::to_string(p.footprint_bytes) +
                         ",\"duration_us\":" + ts_us(p.duration_ns) + "}");
          break;
        }
        case TraceKind::WireFrame: {
          const WireFrameInfo w = unpack_wire_frame(r);
          emit_event(os, first, "i", log.lp, r.wall_ns, "wire_frame",
                     "\"s\":\"t\",\"args\":{\"src\":" + actor + ",\"dir\":\"" +
                         (w.sent ? "tx" : "rx") +
                         "\",\"tag\":" + std::to_string(w.wire_tag) +
                         ",\"bytes\":" + std::to_string(w.bytes) + "}");
          break;
        }
      }
    }
    // Ring overflow may have swallowed RollbackEnd records: close any scope
    // still open so every B has an E.
    for (; open_rollbacks > 0; --open_rollbacks) {
      emit_event(os, first, "E", log.lp, last_ts, nullptr, "");
    }
    if (log.dropped > 0) {
      emit_event(os, first, "i", log.lp, last_ts, "trace_overflow",
                 "\"s\":\"p\"," + args1("dropped", std::to_string(log.dropped)));
    }
  }

  os << "\n]}\n";
}

namespace {

std::string render_labels_json(
    const std::vector<std::pair<std::string, std::string>>& labels) {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    out += first ? "\"" : ",\"";
    out += json_escape(key) + "\":\"" + json_escape(value) + '"';
    first = false;
  }
  out += '}';
  return out;
}

/// `{key="value",...,extra}` or empty when there is nothing to render.
void render_labels_prom(
    std::ostream& os,
    const std::vector<std::pair<std::string, std::string>>& labels,
    const std::string& extra = {}) {
  if (labels.empty() && extra.empty()) {
    return;
  }
  os << '{';
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) {
      os << ',';
    }
    os << key << "=\"" << json_escape(value) << '"';
    first = false;
  }
  if (!extra.empty()) {
    os << (first ? "" : ",") << extra;
  }
  os << '}';
}

}  // namespace

void write_metrics_jsonl(std::ostream& os, const MetricsSnapshot& snapshot) {
  for (const Metric& m : snapshot.metrics) {
    os << "{\"name\":\"" << json_escape(m.name) << "\",\"type\":\""
       << (m.type == Metric::Type::Counter ? "counter" : "gauge")
       << "\",\"labels\":" << render_labels_json(m.labels)
       << ",\"value\":" << format_number(m.value) << "}\n";
  }
  for (const HistogramMetric& h : snapshot.histograms) {
    os << "{\"name\":\"" << json_escape(h.name)
       << "\",\"type\":\"histogram\",\"labels\":"
       << render_labels_json(h.labels) << ",\"count\":" << h.count
       << ",\"sum\":" << format_number(h.sum) << ",\"buckets\":[";
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (i > 0) {
        os << ',';
      }
      os << "{\"le\":" << format_number(h.buckets[i].first)
         << ",\"cumulative\":" << h.buckets[i].second << '}';
    }
    os << "]}\n";
  }
}

void write_prometheus(std::ostream& os, const MetricsSnapshot& snapshot) {
  // The exposition format requires all samples of a family to sit together
  // under one TYPE header; group by name in order of first appearance.
  std::vector<const Metric*> ordered;
  ordered.reserve(snapshot.metrics.size());
  std::vector<std::string> names;
  for (const Metric& m : snapshot.metrics) {
    bool seen = false;
    for (const std::string& n : names) {
      seen = seen || n == m.name;
    }
    if (!seen) {
      names.push_back(m.name);
    }
  }
  for (const std::string& name : names) {
    bool headed = false;
    for (const Metric& m : snapshot.metrics) {
      if (m.name != name) {
        continue;
      }
      if (!headed) {
        os << "# TYPE " << m.name << ' '
           << (m.type == Metric::Type::Counter ? "counter" : "gauge") << '\n';
        headed = true;
      }
      os << m.name;
      render_labels_prom(os, m.labels);
      os << ' ' << format_number(m.value) << '\n';
    }
  }

  // Histogram families: all samples of one family under one TYPE header,
  // grouped by name in order of first appearance.
  std::vector<std::string> hist_names;
  for (const HistogramMetric& h : snapshot.histograms) {
    bool seen = false;
    for (const std::string& n : hist_names) {
      seen = seen || n == h.name;
    }
    if (!seen) {
      hist_names.push_back(h.name);
    }
  }
  for (const std::string& name : hist_names) {
    os << "# TYPE " << name << " histogram\n";
    for (const HistogramMetric& h : snapshot.histograms) {
      if (h.name != name) {
        continue;
      }
      for (const auto& [le, cumulative] : h.buckets) {
        os << h.name << "_bucket";
        render_labels_prom(os, h.labels,
                           "le=\"" + format_number(le) + "\"");
        os << ' ' << cumulative << '\n';
      }
      os << h.name << "_bucket";
      render_labels_prom(os, h.labels, "le=\"+Inf\"");
      os << ' ' << h.count << '\n';
      os << h.name << "_sum";
      render_labels_prom(os, h.labels);
      os << ' ' << format_number(h.sum) << '\n';
      os << h.name << "_count";
      render_labels_prom(os, h.labels);
      os << ' ' << h.count << '\n';
    }
  }
}

void add_phase_metrics(MetricsSnapshot& snapshot,
                       const std::vector<PhaseTotals>& per_lp) {
  for (std::size_t lp = 0; lp < per_lp.size(); ++lp) {
    for (std::size_t p = 0; p < kPhaseCount; ++p) {
      Metric& ns = snapshot.add("otw_phase_ns",
                                static_cast<double>(per_lp[lp].ns[p]));
      ns.labels = {{"lp", std::to_string(lp)},
                   {"phase", to_string(static_cast<Phase>(p))}};
      Metric& count = snapshot.add("otw_phase_count",
                                   static_cast<double>(per_lp[lp].count[p]));
      count.labels = {{"lp", std::to_string(lp)},
                      {"phase", to_string(static_cast<Phase>(p))}};
    }
  }
}

}  // namespace otw::obs
