// Black-box flight recorder (otw::obs::flight): bounded rings of the most
// recent live snapshots, watchdog transitions and relayed-frame metadata,
// dumped as one JSON document per shard when something goes wrong — a
// watchdog alarm, an abnormal shard exit, or a fatal signal.
//
// The recorder lives in the COORDINATOR process in distributed runs: a
// SIGKILLed worker cannot dump anything, so the evidence has to accumulate
// on the surviving side of the socket. Feeds ride the existing telemetry
// paths (STATS payload decode, watchdog monitor loop, relay loop) and take
// a plain mutex — none of them are on an LP hot path. In-process engines
// can feed the same recorder from their snapshot callback.
//
// Dump schema ("otw-flight-v1", DESIGN.md section 10; check_docs.py guards
// the key set against drift):
//
//   { "schema": "otw-flight-v1", "shard": k, "reason": "...",
//     "dumped_at_ns": t, "watchdog": {"active": [...], "last_event": {...}},
//     "health_events": [...], "snapshots": [...], "frames": [...] }
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "otw/obs/live.hpp"

namespace otw::obs::flight {

struct FlightConfig {
  /// Master switch; a disabled recorder ignores every feed and dump.
  bool enabled = false;
  /// Directory receiving flight-<shard>.json dumps.
  std::string dir = ".";
  /// Most recent live snapshots retained per shard.
  std::size_t snapshot_ring = 32;
  /// Most recent relayed-frame records retained per (src) shard.
  std::size_t frame_ring = 256;
  /// Most recent watchdog transitions retained (global).
  std::size_t health_ring = 128;
};

/// Metadata of one relayed data frame (coordinator relay loop feed).
struct FrameEvent {
  std::uint32_t src_shard = 0;
  std::uint32_t dst_shard = 0;
  std::uint16_t tag = 0;
  std::uint32_t frame_len = 0;
  std::uint64_t send_ns = 0;       ///< origin encode time, coordinator domain
  std::uint64_t coord_now_ns = 0;  ///< relay time, coordinator clock
};

class FlightRecorder {
 public:
  FlightRecorder(FlightConfig config, std::uint32_t num_shards);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  [[nodiscard]] bool enabled() const noexcept { return config_.enabled; }
  [[nodiscard]] const FlightConfig& config() const noexcept { return config_; }

  /// Retains a decoded live snapshot in its shard's ring.
  void on_snapshot(const live::LiveSnapshot& snap);
  /// Retains a watchdog transition and tracks the active-rule set. Dumps
  /// the affected shard when a rule is RAISED (edge-triggered; at most one
  /// dump per shard per run unless the shard dumps again for a new reason).
  void on_health(const live::HealthEvent& event);
  /// Retains relayed-frame metadata in the source shard's ring.
  void on_frame(const FrameEvent& event);

  /// Writes flight-<shard>.json and returns its path ("" when disabled or
  /// the write failed; a flight dump must never take the run down). Always
  /// overwrites: the latest reason is the one that matters.
  std::string dump(std::uint32_t shard, const std::string& reason);
  /// Dumps every shard with the same reason (abnormal run teardown).
  void dump_all(const std::string& reason);

  /// Paths written so far (test/tool convenience).
  [[nodiscard]] std::vector<std::string> dumped_paths() const;

 private:
  std::string render(std::uint32_t shard, const std::string& reason,
                     std::uint64_t now_ns) const;  // caller holds mutex_

  FlightConfig config_;
  std::uint32_t num_shards_;
  mutable std::mutex mutex_;
  std::vector<std::deque<live::LiveSnapshot>> snapshots_;  ///< per shard
  std::vector<std::deque<FrameEvent>> frames_;             ///< per src shard
  std::deque<live::HealthEvent> health_;
  std::vector<std::pair<live::HealthRule, std::uint32_t>> active_;
  bool has_last_event_ = false;
  live::HealthEvent last_event_;
  std::vector<std::string> dumped_;
};

/// Installs minimal async-signal-safe handlers for catchable fatal signals
/// (SIGSEGV/SIGBUS/SIGFPE/SIGABRT) in a WORKER process: the handler writes a
/// tiny flight-<shard>.json naming the signal, then re-raises it so the exit
/// status stays honest. The path is fixed at install time (no allocation in
/// the handler). Call after fork, once per worker; no-op when dir is empty.
void install_worker_fatal_dump(const std::string& dir, std::uint32_t shard);

}  // namespace otw::obs::flight
