// Minimal JSON value + recursive-descent parser (otw::obs::json).
//
// Just enough JSON for the project's own artifacts — bench result files,
// exported traces, analysis reports — so the twreport tool and the tests can
// parse what the exporters write without an external dependency. Not a
// general-purpose library: numbers are doubles, object keys are unique
// (last one wins), \uXXXX escapes decode to UTF-8 without surrogate-pair
// combining.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace otw::obs::json {

struct Value {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::map<std::string, Value> object;

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Value* find(const std::string& key) const {
    const auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }

  [[nodiscard]] bool is_object() const noexcept { return kind == Kind::Object; }
  [[nodiscard]] bool is_array() const noexcept { return kind == Kind::Array; }

  /// number_or / string_or: forgiving accessors for report plumbing.
  [[nodiscard]] double number_or(double fallback) const noexcept {
    return kind == Kind::Number ? number : fallback;
  }
  [[nodiscard]] const std::string& string_or(
      const std::string& fallback) const noexcept {
    return kind == Kind::String ? string : fallback;
  }

  /// find + number_or in one step (fallback when the key is missing).
  [[nodiscard]] double get_number(const std::string& key,
                                  double fallback = 0.0) const {
    const Value* v = find(key);
    return v ? v->number_or(fallback) : fallback;
  }
  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback = "") const {
    const Value* v = find(key);
    return v ? v->string_or(fallback) : fallback;
  }
};

/// Parses `text` as one JSON document (no trailing garbage allowed).
/// Returns false on malformed input; `out` is unspecified then.
[[nodiscard]] bool parse(const std::string& text, Value& out);

}  // namespace otw::obs::json
