// Phase profiler (otw::obs): where does the kernel's time actually go?
//
// A per-LP accumulator of scoped timers over the kernel's phases: event
// processing, state saving, rollback, coast-forward, GVT, communication /
// aggregation, idle polling, and controller invocations. Timestamps come
// from the platform clock, so totals are *modeled* nanoseconds on the
// SimulatedNow engine and *wall* nanoseconds on the ThreadedEngine — the
// same clock the paper's execution times are quoted in.
//
// Scopes nest (a rollback contains a state restore and a coast-forward, a
// coast-forward re-executes events): begin/end attribute *self* time to each
// phase, so the per-phase totals partition the measured time without double
// counting and sum to the outermost scopes' spans.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace otw::obs {

enum class Phase : std::uint8_t {
  EventProcessing,  ///< SimulationObject::process_event + per-event overhead
  StateSaving,      ///< checkpoint writes
  Rollback,         ///< rollback surgery: restore, output cancellation
  CoastForward,     ///< silent re-execution up to the rollback target
  Gvt,              ///< token handling, epoch starts, fossil collection
  Comm,             ///< message drain, aggregation pump, physical sends
  Idle,             ///< idle polls (nothing runnable, nothing received)
  Control,          ///< on-line controller transfer functions
  kCount,
};

inline constexpr std::size_t kPhaseCount = static_cast<std::size_t>(Phase::kCount);

[[nodiscard]] constexpr const char* to_string(Phase phase) noexcept {
  switch (phase) {
    case Phase::EventProcessing: return "event_processing";
    case Phase::StateSaving: return "state_saving";
    case Phase::Rollback: return "rollback";
    case Phase::CoastForward: return "coast_forward";
    case Phase::Gvt: return "gvt";
    case Phase::Comm: return "comm";
    case Phase::Idle: return "idle";
    case Phase::Control: return "control";
    case Phase::kCount: break;
  }
  return "?";
}

/// Accumulated self-time and entry counts per phase.
struct PhaseTotals {
  std::array<std::uint64_t, kPhaseCount> ns{};
  std::array<std::uint64_t, kPhaseCount> count{};

  [[nodiscard]] std::uint64_t total_ns() const noexcept {
    std::uint64_t sum = 0;
    for (const std::uint64_t v : ns) {
      sum += v;
    }
    return sum;
  }

  void merge(const PhaseTotals& other) noexcept {
    for (std::size_t i = 0; i < kPhaseCount; ++i) {
      ns[i] += other.ns[i];
      count[i] += other.count[i];
    }
  }
};

/// Nesting-aware accumulator. Not thread-safe: one per LP.
class PhaseProfiler {
 public:
  PhaseProfiler() { stack_.reserve(8); }

  void begin(Phase phase, std::uint64_t now_ns) {
    stack_.push_back(Frame{phase, now_ns, 0});
  }

  /// Closes the innermost scope: elapsed-since-begin minus time already
  /// attributed to nested scopes is credited to the scope's phase.
  void end(std::uint64_t now_ns) {
    if (stack_.empty()) {
      return;  // unbalanced end: ignore rather than corrupt totals
    }
    const Frame frame = stack_.back();
    stack_.pop_back();
    const std::uint64_t span = now_ns >= frame.start_ns ? now_ns - frame.start_ns : 0;
    const std::uint64_t self = span >= frame.child_ns ? span - frame.child_ns : 0;
    const auto idx = static_cast<std::size_t>(frame.phase);
    totals_.ns[idx] += self;
    ++totals_.count[idx];
    if (!stack_.empty()) {
      stack_.back().child_ns += span;
    }
  }

  /// Leaf accounting without a scope (e.g. a fixed idle-poll charge). Counts
  /// toward the enclosing scope's children so nesting stays consistent.
  void add(Phase phase, std::uint64_t ns) {
    const auto idx = static_cast<std::size_t>(phase);
    totals_.ns[idx] += ns;
    ++totals_.count[idx];
    if (!stack_.empty()) {
      stack_.back().child_ns += ns;
    }
  }

  [[nodiscard]] const PhaseTotals& totals() const noexcept { return totals_; }
  [[nodiscard]] std::size_t open_scopes() const noexcept { return stack_.size(); }

 private:
  struct Frame {
    Phase phase;
    std::uint64_t start_ns;
    std::uint64_t child_ns;
  };

  std::vector<Frame> stack_;
  PhaseTotals totals_;
};

}  // namespace otw::obs
