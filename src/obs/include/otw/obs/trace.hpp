// Low-overhead kernel trace ring (otw::obs).
//
// The paper's whole argument is that the optimal Time Warp configuration
// changes during a run; this ring makes the *when* and *why* observable.
// Each logical process owns one fixed-capacity ring of POD records. The hot
// path is a store plus two index updates — no allocation, no locking (an LP
// is single-threaded on every engine), and the whole recording path compiles
// to an empty inline function when OTW_OBS_TRACING is 0 (CMake option).
//
// Records are typed: event processed/committed, rollback begin/end, state
// save/restore, coast-forward, anti-message traffic, GVT epochs, aggregation
// flushes, and every on-line controller decision with the sample values that
// triggered it. Drained rings are exported as Chrome trace_event JSON (see
// export.hpp) and load directly in Perfetto / chrome://tracing.
#pragma once

#include <cstdint>
#include <type_traits>
#include <vector>

namespace otw::obs {

enum class TraceKind : std::uint8_t {
  EventProcessed,    ///< vt = recv time; arg0 = 1 if re-execution after rollback
  EventsCommitted,   ///< arg0 = events committed by this fossil collection
  RollbackBegin,     ///< vt = rollback target recv time
  RollbackEnd,       ///< arg0 = processed events undone
  StateSave,         ///< vt = checkpoint position; arg0 = stored bytes
  StateRestore,      ///< vt = restored position
  CoastForward,      ///< arg0 = events re-executed; arg1 = duration ns
  AntiSent,          ///< vt = cancelled message's recv time
  AntiReceived,      ///< vt = annihilated message's recv time
  GvtEpoch,          ///< vt = new GVT (per LP, at announce/completion)
  AggregateFlush,    ///< arg0 = batch size; arg1 = window_us bits (double)
  CheckpointDecision,///< chi step: arg0 = new interval; arg1 = cost index bits
  CancellationSwitch,///< A<->L: arg0 = new mode (0=aggr,1=lazy); arg1 = HR bits
  OptimismDecision,  ///< W step: arg0 = new window; arg1 = rollback frac bits
  TelemetrySample,   ///< periodic controller-state sample (telemetry fold)
};

[[nodiscard]] constexpr const char* to_string(TraceKind kind) noexcept {
  switch (kind) {
    case TraceKind::EventProcessed: return "event";
    case TraceKind::EventsCommitted: return "commit";
    case TraceKind::RollbackBegin: return "rollback";
    case TraceKind::RollbackEnd: return "rollback_end";
    case TraceKind::StateSave: return "checkpoint";
    case TraceKind::StateRestore: return "restore";
    case TraceKind::CoastForward: return "coast_forward";
    case TraceKind::AntiSent: return "anti_sent";
    case TraceKind::AntiReceived: return "anti_received";
    case TraceKind::GvtEpoch: return "gvt";
    case TraceKind::AggregateFlush: return "aggregate_flush";
    case TraceKind::CheckpointDecision: return "chi_decision";
    case TraceKind::CancellationSwitch: return "cancellation_switch";
    case TraceKind::OptimismDecision: return "optimism_decision";
    case TraceKind::TelemetrySample: return "sample";
  }
  return "?";
}

/// One trace record. Interpretation of vt/arg0/arg1 is per TraceKind (see the
/// enum comments); doubles travel as bit patterns via arg_bits()/from_bits().
struct TraceRecord {
  std::uint64_t wall_ns = 0;  ///< platform clock (modeled or real ns)
  std::uint64_t vt = 0;       ///< virtual-time ticks
  std::uint64_t arg0 = 0;
  std::uint64_t arg1 = 0;
  std::uint32_t actor = 0;    ///< ObjectId (or LpId for LP-scoped kinds)
  TraceKind kind{};
};
static_assert(std::is_trivially_copyable_v<TraceRecord>);

[[nodiscard]] std::uint64_t arg_bits(double value) noexcept;
[[nodiscard]] double arg_from_bits(std::uint64_t bits) noexcept;

/// Fixed-capacity overwrite-oldest ring. Capacity is allocated once at
/// construction; push() never allocates. When full, the oldest record is
/// overwritten and `dropped()` counts the loss.
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity) : buffer_(capacity ? capacity : 1) {}

  void push(const TraceRecord& record) noexcept {
    buffer_[head_] = record;
    head_ = head_ + 1 == buffer_.size() ? 0 : head_ + 1;
    if (size_ < buffer_.size()) {
      ++size_;
    } else {
      ++dropped_;
    }
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return buffer_.size(); }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  /// Records overwritten because the ring was full.
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

  /// Copies the surviving records oldest-first.
  [[nodiscard]] std::vector<TraceRecord> drain() const {
    std::vector<TraceRecord> out;
    out.reserve(size_);
    // Oldest record sits at head_ when the ring has wrapped, at 0 otherwise.
    const std::size_t start = size_ == buffer_.size() ? head_ : 0;
    for (std::size_t i = 0; i < size_; ++i) {
      std::size_t idx = start + i;
      if (idx >= buffer_.size()) {
        idx -= buffer_.size();
      }
      out.push_back(buffer_[idx]);
    }
    return out;
  }

 private:
  std::vector<TraceRecord> buffer_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::uint64_t dropped_ = 0;
};

/// One LP's drained trace, as collected into a RunResult.
struct LpTraceLog {
  std::uint32_t lp = 0;
  std::uint64_t dropped = 0;
  std::vector<TraceRecord> records;  ///< oldest-first, wall_ns monotone per LP
};

/// All trace rings of one run.
struct RunTrace {
  std::vector<LpTraceLog> lps;

  [[nodiscard]] bool empty() const noexcept {
    for (const LpTraceLog& log : lps) {
      if (!log.records.empty()) {
        return false;
      }
    }
    return true;
  }

  [[nodiscard]] std::size_t total_records() const noexcept {
    std::size_t n = 0;
    for (const LpTraceLog& log : lps) {
      n += log.records.size();
    }
    return n;
  }
};

}  // namespace otw::obs
