// Low-overhead kernel trace ring (otw::obs).
//
// The paper's whole argument is that the optimal Time Warp configuration
// changes during a run; this ring makes the *when* and *why* observable.
// Each logical process owns one fixed-capacity ring of POD records. The hot
// path is a store plus two index updates — no allocation, no locking (an LP
// is single-threaded on every engine), and the whole recording path compiles
// to an empty inline function when OTW_OBS_TRACING is 0 (CMake option).
//
// Records are typed: event processed/committed, rollback begin/end, state
// save/restore, coast-forward, anti-message traffic, GVT epochs, aggregation
// flushes, and every on-line controller decision with the sample values that
// triggered it. Drained rings are exported as Chrome trace_event JSON (see
// export.hpp) and load directly in Perfetto / chrome://tracing, or analyzed
// post-mortem (see analysis.hpp: rollback-cascade attribution, controller
// convergence, per-epoch commit efficiency).
//
// Schema v2: RollbackBegin and AntiSent carry causal fields (the offending
// message's source object and send time) so cascades can be chained across
// LPs, and object-scoped TelemetrySample records carry the cancellation
// mode + Hit Ratio. All multi-field arg0/arg1 payloads go through the named
// pack_*/unpack_* helpers below — recorders and exporters share one encoding.
#pragma once

#include <bit>
#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

namespace otw::obs {

enum class TraceKind : std::uint8_t {
  EventProcessed,    ///< vt = recv time; arg0 = 1 if re-execution after rollback
  EventsCommitted,   ///< vt = GVT; arg0 = events committed by this fossil collection
  RollbackBegin,     ///< vt = target recv time; arg0/arg1 = pack_rollback_cause
  RollbackEnd,       ///< vt = target recv time; arg0 = processed events undone
  StateSave,         ///< vt = checkpoint position; arg0 = stored bytes
  StateRestore,      ///< vt = restored position
  CoastForward,      ///< arg0 = events re-executed; arg1 = duration ns
  AntiSent,          ///< vt = cancelled msg recv time; arg0/arg1 = pack_anti_sent
  AntiReceived,      ///< vt = annihilated message's recv time
  GvtEpoch,          ///< vt = new GVT (per LP, at announce/completion)
  AggregateFlush,    ///< arg0/arg1 = pack_aggregate_flush
  CheckpointDecision,///< chi step: arg0/arg1 = pack_checkpoint_decision
  CancellationSwitch,///< A<->L: arg0/arg1 = pack_cancellation_switch
  OptimismDecision,  ///< W step: arg0/arg1 = pack_optimism_decision
  TelemetrySample,   ///< arg0/arg1 = pack_object_sample or pack_lp_sample
  WorkerPark,        ///< wall_ns = park begin; arg0/arg1 = pack_worker_park
  WorkerWake,        ///< a wake token was handed to the parking lot
  WorkerSteal,       ///< arg0/arg1 = pack_worker_steal
  PressureEnter,     ///< vt = GVT; arg0/arg1 = pack_pressure_enter
  PressureExit,      ///< vt = GVT; arg0/arg1 = pack_pressure_exit
  WireFrame,         ///< socket frame tx/rx: arg0/arg1 = pack_wire_frame
};

[[nodiscard]] constexpr const char* to_string(TraceKind kind) noexcept {
  switch (kind) {
    case TraceKind::EventProcessed: return "event";
    case TraceKind::EventsCommitted: return "commit";
    case TraceKind::RollbackBegin: return "rollback";
    case TraceKind::RollbackEnd: return "rollback_end";
    case TraceKind::StateSave: return "checkpoint";
    case TraceKind::StateRestore: return "restore";
    case TraceKind::CoastForward: return "coast_forward";
    case TraceKind::AntiSent: return "anti_sent";
    case TraceKind::AntiReceived: return "anti_received";
    case TraceKind::GvtEpoch: return "gvt";
    case TraceKind::AggregateFlush: return "aggregate_flush";
    case TraceKind::CheckpointDecision: return "chi_decision";
    case TraceKind::CancellationSwitch: return "cancellation_switch";
    case TraceKind::OptimismDecision: return "optimism_decision";
    case TraceKind::TelemetrySample: return "sample";
    case TraceKind::WorkerPark: return "park";
    case TraceKind::WorkerWake: return "wake";
    case TraceKind::WorkerSteal: return "steal";
    case TraceKind::PressureEnter: return "pressure_enter";
    case TraceKind::PressureExit: return "pressure_exit";
    case TraceKind::WireFrame: return "wire_frame";
  }
  return "?";
}

/// One trace record. Interpretation of vt/arg0/arg1 is per TraceKind (see the
/// enum comments); doubles travel as bit patterns via arg_bits()/from_bits().
struct TraceRecord {
  std::uint64_t wall_ns = 0;  ///< platform clock (modeled or real ns)
  std::uint64_t vt = 0;       ///< virtual-time ticks
  std::uint64_t arg0 = 0;
  std::uint64_t arg1 = 0;
  std::uint32_t actor = 0;    ///< ObjectId (or LpId for LP-scoped kinds)
  TraceKind kind{};
};
static_assert(std::is_trivially_copyable_v<TraceRecord>);

[[nodiscard]] constexpr std::uint64_t arg_bits(double value) noexcept {
  return std::bit_cast<std::uint64_t>(value);
}
[[nodiscard]] constexpr double arg_from_bits(std::uint64_t bits) noexcept {
  return std::bit_cast<double>(bits);
}

// --- schema v2 arg0/arg1 payloads ------------------------------------------
//
// One pack_*/unpack_* pair per multi-field TraceKind. Pack helpers return the
// (arg0, arg1) pair to hand to Recorder::record; unpack helpers decode a
// drained record. Exporters and the analysis module use ONLY these, so the
// encoding lives in exactly one place.

/// arg0/arg1 pair produced by the pack_* helpers.
struct TraceArgs {
  std::uint64_t arg0 = 0;
  std::uint64_t arg1 = 0;
};

/// RollbackBegin: which message forced the rollback. `anti` distinguishes a
/// cascaded rollback (annihilation of an already-processed event) from a
/// primary straggler rollback (late positive message).
struct RollbackCause {
  std::uint32_t source_object = 0;  ///< sender of the offending message
  bool anti = false;                ///< true: anti-message; false: straggler
  std::uint64_t send_time = 0;      ///< offending message's send time, ticks
};

[[nodiscard]] constexpr TraceArgs pack_rollback_cause(std::uint32_t source_object,
                                                      bool anti,
                                                      std::uint64_t send_time) noexcept {
  return {static_cast<std::uint64_t>(source_object) |
              (anti ? std::uint64_t{1} << 32 : 0),
          send_time};
}
[[nodiscard]] constexpr RollbackCause unpack_rollback_cause(const TraceRecord& r) noexcept {
  return {static_cast<std::uint32_t>(r.arg0 & 0xFFFFFFFFu),
          ((r.arg0 >> 32) & 1) != 0, r.arg1};
}

/// AntiSent: where the cancellation goes and the send time of the cancelled
/// message — together with the record's vt (recv time) this names the exact
/// message a downstream RollbackBegin will report as its cause.
struct AntiSentInfo {
  std::uint32_t receiver = 0;
  std::uint64_t send_time = 0;
};

[[nodiscard]] constexpr TraceArgs pack_anti_sent(std::uint32_t receiver,
                                                 std::uint64_t send_time) noexcept {
  return {receiver, send_time};
}
[[nodiscard]] constexpr AntiSentInfo unpack_anti_sent(const TraceRecord& r) noexcept {
  return {static_cast<std::uint32_t>(r.arg0 & 0xFFFFFFFFu), r.arg1};
}

/// AggregateFlush: batch size and the DyMA window that produced it.
struct AggregateFlushInfo {
  std::uint64_t batch_size = 0;
  double window_us = 0.0;
};

[[nodiscard]] constexpr TraceArgs pack_aggregate_flush(std::uint64_t batch_size,
                                                       double window_us) noexcept {
  return {batch_size, arg_bits(window_us)};
}
[[nodiscard]] constexpr AggregateFlushInfo unpack_aggregate_flush(
    const TraceRecord& r) noexcept {
  return {r.arg0, arg_from_bits(r.arg1)};
}

/// CheckpointDecision: the chi controller's new interval and the cost index
/// sample that produced it.
struct CheckpointDecisionInfo {
  std::uint32_t interval = 0;
  double cost_index = 0.0;
};

[[nodiscard]] constexpr TraceArgs pack_checkpoint_decision(std::uint32_t interval,
                                                           double cost_index) noexcept {
  return {interval, arg_bits(cost_index)};
}
[[nodiscard]] constexpr CheckpointDecisionInfo unpack_checkpoint_decision(
    const TraceRecord& r) noexcept {
  return {static_cast<std::uint32_t>(r.arg0 & 0xFFFFFFFFu), arg_from_bits(r.arg1)};
}

/// CancellationSwitch: the new mode and the Hit Ratio that triggered it.
struct CancellationSwitchInfo {
  bool lazy = false;
  double hit_ratio = 0.0;
};

[[nodiscard]] constexpr TraceArgs pack_cancellation_switch(bool lazy,
                                                           double hit_ratio) noexcept {
  return {lazy ? std::uint64_t{1} : 0, arg_bits(hit_ratio)};
}
[[nodiscard]] constexpr CancellationSwitchInfo unpack_cancellation_switch(
    const TraceRecord& r) noexcept {
  return {r.arg0 != 0, arg_from_bits(r.arg1)};
}

/// OptimismDecision: the new window W and the rollback fraction sample.
struct OptimismDecisionInfo {
  std::uint64_t window = 0;
  double rollback_fraction = 0.0;
};

[[nodiscard]] constexpr TraceArgs pack_optimism_decision(std::uint64_t window,
                                                         double rollback_fraction) noexcept {
  return {window, arg_bits(rollback_fraction)};
}
[[nodiscard]] constexpr OptimismDecisionInfo unpack_optimism_decision(
    const TraceRecord& r) noexcept {
  return {r.arg0, arg_from_bits(r.arg1)};
}

/// TelemetrySample comes in two scopes sharing one kind. Object-scoped
/// samples (from ObjectRuntime) set bit 63 of arg0 and carry the object's
/// cancellation mode + Hit Ratio; LP-scoped samples (from LogicalProcess)
/// carry the LP's cumulative processed-event count (always < 2^63).
struct ObjectSampleInfo {
  bool lazy = false;
  double hit_ratio = 0.0;
};

[[nodiscard]] constexpr TraceArgs pack_object_sample(bool lazy,
                                                     double hit_ratio) noexcept {
  return {(std::uint64_t{1} << 63) | (lazy ? 1 : 0), arg_bits(hit_ratio)};
}
[[nodiscard]] constexpr TraceArgs pack_lp_sample(std::uint64_t events_processed) noexcept {
  return {events_processed, 0};
}
[[nodiscard]] constexpr bool is_object_sample(const TraceRecord& r) noexcept {
  return (r.arg0 >> 63) != 0;
}
[[nodiscard]] constexpr ObjectSampleInfo unpack_object_sample(
    const TraceRecord& r) noexcept {
  return {(r.arg0 & 1) != 0, arg_from_bits(r.arg1)};
}
[[nodiscard]] constexpr std::uint64_t unpack_lp_sample(const TraceRecord& r) noexcept {
  return r.arg0;
}

/// WorkerPark: how long a scheduler worker slept and what ended the sleep
/// (a wake token vs. a timer deadline / safety timeout).
struct WorkerParkInfo {
  std::uint64_t duration_ns = 0;
  bool token = false;  ///< true: woken by a token; false: timeout/deadline
};

[[nodiscard]] constexpr TraceArgs pack_worker_park(std::uint64_t duration_ns,
                                                   bool token) noexcept {
  return {duration_ns, token ? std::uint64_t{1} : 0};
}
[[nodiscard]] constexpr WorkerParkInfo unpack_worker_park(
    const TraceRecord& r) noexcept {
  return {r.arg0, r.arg1 != 0};
}

/// WorkerSteal: which worker was robbed and which LP was taken.
struct WorkerStealInfo {
  std::uint32_t victim = 0;
  std::uint32_t lp = 0;
};

[[nodiscard]] constexpr TraceArgs pack_worker_steal(std::uint32_t victim,
                                                    std::uint32_t lp) noexcept {
  return {victim, lp};
}
[[nodiscard]] constexpr WorkerStealInfo unpack_worker_steal(
    const TraceRecord& r) noexcept {
  return {static_cast<std::uint32_t>(r.arg0 & 0xFFFFFFFFu),
          static_cast<std::uint32_t>(r.arg1 & 0xFFFFFFFFu)};
}

/// PressureEnter: an LP's memory-pressure controller left Normal. The
/// footprint sample that tripped the watermark plus the budget it is
/// measured against; the new state travels in the low bits of arg0.
struct PressureEnterInfo {
  std::uint64_t footprint_bytes = 0;  ///< sampled footprint (< 2^62)
  std::uint8_t state = 0;             ///< 1 = Throttle, 2 = Emergency
  std::uint64_t budget_bytes = 0;
};

[[nodiscard]] constexpr TraceArgs pack_pressure_enter(std::uint64_t footprint_bytes,
                                                      std::uint8_t state,
                                                      std::uint64_t budget_bytes) noexcept {
  return {(footprint_bytes << 2) | (state & 0x3u), budget_bytes};
}
[[nodiscard]] constexpr PressureEnterInfo unpack_pressure_enter(
    const TraceRecord& r) noexcept {
  return {r.arg0 >> 2, static_cast<std::uint8_t>(r.arg0 & 0x3u), r.arg1};
}

/// PressureExit: back to Normal — the footprint after relief and how long
/// the pressure episode lasted (wall/modeled ns).
struct PressureExitInfo {
  std::uint64_t footprint_bytes = 0;
  std::uint64_t duration_ns = 0;
};

[[nodiscard]] constexpr TraceArgs pack_pressure_exit(std::uint64_t footprint_bytes,
                                                     std::uint64_t duration_ns) noexcept {
  return {footprint_bytes, duration_ns};
}
[[nodiscard]] constexpr PressureExitInfo unpack_pressure_exit(
    const TraceRecord& r) noexcept {
  return {r.arg0, r.arg1};
}

/// WireFrame: one length-prefixed frame crossing a shard socket. The record's
/// actor is the source LP; vt is unused (frames are wall-clock events). Sent
/// vs. received distinguishes the two halves of the same frame on the two
/// shards' wire tracks.
struct WireFrameInfo {
  std::uint32_t wire_tag = 0;   ///< registered message-type tag (wire.hpp)
  bool sent = false;            ///< true: written to socket; false: decoded
  std::uint64_t bytes = 0;      ///< header + payload length
};

[[nodiscard]] constexpr TraceArgs pack_wire_frame(std::uint16_t wire_tag,
                                                  bool sent,
                                                  std::uint64_t bytes) noexcept {
  return {static_cast<std::uint64_t>(wire_tag) |
              (sent ? std::uint64_t{1} << 32 : 0),
          bytes};
}
[[nodiscard]] constexpr WireFrameInfo unpack_wire_frame(
    const TraceRecord& r) noexcept {
  return {static_cast<std::uint32_t>(r.arg0 & 0xFFFFu),
          ((r.arg0 >> 32) & 1) != 0, r.arg1};
}

/// Fixed-capacity overwrite-oldest ring. Capacity is allocated once at
/// construction; push() never allocates. When full, the oldest record is
/// overwritten and `dropped()` counts the loss.
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity) : buffer_(capacity ? capacity : 1) {}

  void push(const TraceRecord& record) noexcept {
    buffer_[head_] = record;
    head_ = head_ + 1 == buffer_.size() ? 0 : head_ + 1;
    if (size_ < buffer_.size()) {
      ++size_;
    } else {
      ++dropped_;
    }
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return buffer_.size(); }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  /// Records overwritten because the ring was full.
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

  /// Copies the surviving records oldest-first.
  [[nodiscard]] std::vector<TraceRecord> drain() const {
    std::vector<TraceRecord> out;
    out.reserve(size_);
    // Oldest record sits at head_ when the ring has wrapped, at 0 otherwise.
    const std::size_t start = size_ == buffer_.size() ? head_ : 0;
    for (std::size_t i = 0; i < size_; ++i) {
      std::size_t idx = start + i;
      if (idx >= buffer_.size()) {
        idx -= buffer_.size();
      }
      out.push_back(buffer_[idx]);
    }
    return out;
  }

 private:
  std::vector<TraceRecord> buffer_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::uint64_t dropped_ = 0;
};

/// One LP's drained trace, as collected into a RunResult.
struct LpTraceLog {
  std::uint32_t lp = 0;
  std::uint64_t dropped = 0;
  /// Exporter display name for this track; empty = "LP <id>". Scheduler
  /// worker tracks set e.g. "worker 3".
  std::string name;
  std::vector<TraceRecord> records;  ///< oldest-first, wall_ns monotone per LP
};

/// All trace rings of one run.
struct RunTrace {
  std::vector<LpTraceLog> lps;

  [[nodiscard]] bool empty() const noexcept {
    for (const LpTraceLog& log : lps) {
      if (!log.records.empty()) {
        return false;
      }
    }
    return true;
  }

  [[nodiscard]] std::size_t total_records() const noexcept {
    std::size_t n = 0;
    for (const LpTraceLog& log : lps) {
      n += log.records.size();
    }
    return n;
  }
};

}  // namespace otw::obs
