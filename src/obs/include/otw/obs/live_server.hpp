// Embedded scrape endpoint (otw::obs::live::LiveServer): one background
// thread that owns a loopback HTTP listener and the watchdog monitor loop.
//
//   GET /metrics   Prometheus text exposition (otw_live_* family)
//   GET /snapshot  JSON snapshot document (what twtop polls)
//   GET /health    structured health events, one JSON object per line
//
// The server never touches the registry's writers: it pulls snapshots
// through a caller-supplied SnapshotFn (local registry, or the
// coordinator's ClusterView in distributed runs), so the simulation side of
// the live plane stays lock-free. HTTP handling is deliberately minimal —
// sequential accept, first request line parsed, connection closed after one
// response — which is all a scrape needs.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "otw/obs/live.hpp"

#if OTW_OBS_LIVE
#include <atomic>
#include <mutex>
#include <thread>
#endif

namespace otw::obs::live {

struct LiveServerConfig {
  /// TCP port on 127.0.0.1; 0 = kernel-assigned ephemeral port.
  std::uint16_t port = 0;
  /// Watchdog evaluation cadence (also bounds scrape-accept latency).
  std::uint32_t monitor_period_ms = 100;
  WatchdogConfig watchdog;
  /// Invoked once from start() with the bound port (ephemeral-port
  /// discovery for tests and tools); runs on the caller's thread.
  std::function<void(std::uint16_t)> on_endpoint;
  /// Invoked on the server thread for every edge-triggered watchdog
  /// transition (the flight recorder's dump trigger). Must not block.
  std::function<void(const HealthEvent&)> on_health;
};

class LiveServer {
 public:
  /// Produces the per-shard snapshots to serve/evaluate. Called from the
  /// server thread every monitor period and per request; must be
  /// thread-safe with respect to the simulation.
  using SnapshotFn = std::function<std::vector<LiveSnapshot>()>;

  LiveServer(LiveServerConfig config, SnapshotFn snapshots);
  ~LiveServer();

  LiveServer(const LiveServer&) = delete;
  LiveServer& operator=(const LiveServer&) = delete;

  /// Binds the listener and launches the server thread. Throws on bind
  /// failure. No-op when the live plane is compiled out.
  void start();

  /// Joins the server thread and closes the listener. Idempotent.
  void stop();

  /// Bound port (valid after start(); 0 when compiled out / not started).
  [[nodiscard]] std::uint16_t port() const noexcept;

  /// Every health event the watchdog has emitted so far (run summary).
  [[nodiscard]] std::vector<HealthEvent> health() const;

 private:
#if OTW_OBS_LIVE
  void serve();
  void handle_client(int fd);
  [[nodiscard]] std::string render(const std::string& path);

  LiveServerConfig config_;
  SnapshotFn snapshots_;
  Watchdog watchdog_;
  mutable std::mutex watchdog_mutex_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
#else
  LiveServerConfig config_;
  SnapshotFn snapshots_;
#endif
};

}  // namespace otw::obs::live
