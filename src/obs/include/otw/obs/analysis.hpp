// Post-mortem trace analysis (otw::obs): consumes a drained RunTrace and
// answers the three questions the paper's on-line controllers are built
// around, but off-line and in full:
//
//   * Rollback-cascade attribution — every RollbackBegin carries the message
//     that forced it (schema v2), so cascaded rollbacks (caused by
//     anti-messages) can be chained back through the AntiSent records of the
//     rolling-back object to the PRIMARY straggler rollback that started the
//     cascade. Blame for the whole cascade lands on the object that sent the
//     original straggler; depth/width histograms show how far damage spread.
//
//   * Controller convergence — per-controller settling time, decision and
//     oscillation counts, and value trajectories for chi (checkpoint
//     interval), W (optimism window) and the aggregation window; A<->L mode
//     dwell times and the Hit-Ratio dead-zone dwell fraction for the
//     cancellation controller.
//
//   * Commit efficiency per GVT epoch — committed vs rolled-back event
//     counts and coast-forward overhead between consecutive GvtEpoch
//     records, i.e. how much of the optimistic work each epoch kept.
//
// Everything here is pure post-processing: analyze() never touches the
// kernel and a run's digests/makespan are identical with or without it.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "otw/obs/trace.hpp"

namespace otw::obs {

struct AnalysisConfig {
  /// Hit-Ratio dead zone: [lazy_to_aggr, aggr_to_lazy) of the cancellation
  /// controller. HR samples inside it leave the mode unchanged; the dwell
  /// fraction says how decisively the controller has converged.
  double dead_zone_low = 0.2;
  double dead_zone_high = 0.45;
  /// Blame table is truncated to the top-N objects (all are still counted).
  std::size_t max_blame_entries = 16;
  /// Depth/width histograms use buckets [1], [2], ... [N], [>N].
  std::size_t histogram_buckets = 8;
};

// --- rollback cascades ------------------------------------------------------

/// Per-object share of cascade blame. Blame for every rollback in a cascade
/// goes to the object whose straggler message started it.
struct BlameEntry {
  std::uint32_t object = 0;
  std::uint64_t rollbacks_caused = 0;     ///< rollbacks in cascades it started
  std::uint64_t events_undone = 0;        ///< processed events those undid
  std::uint64_t cascades_started = 0;     ///< primary (straggler) rollbacks
};

/// One reconstructed cascade: a primary straggler rollback plus every
/// anti-message-caused rollback transitively chained to it.
struct Cascade {
  std::uint32_t root_object = 0;     ///< object that rolled back first
  std::uint32_t blamed_object = 0;   ///< sender of the straggler
  std::uint64_t root_vt = 0;         ///< straggler's receive time (ticks)
  std::uint64_t rollbacks = 1;       ///< total rollbacks in the cascade
  std::uint64_t events_undone = 0;
  std::uint32_t depth = 1;           ///< longest chain of caused rollbacks
  std::uint32_t width = 1;           ///< distinct objects rolled back
};

struct CascadeReport {
  std::uint64_t total_rollbacks = 0;
  std::uint64_t primary_rollbacks = 0;    ///< straggler-caused (cascade roots)
  std::uint64_t cascaded_rollbacks = 0;   ///< anti-message-caused
  /// Cascaded rollbacks whose causing anti-message was found in the trace
  /// and chained to a parent rollback. The rest (e.g. cause outside the
  /// ring's retention window) root their own cascade.
  std::uint64_t chained_rollbacks = 0;
  std::uint64_t total_events_undone = 0;
  std::vector<BlameEntry> blame;          ///< sorted by rollbacks_caused desc
  std::vector<Cascade> cascades;          ///< sorted by rollbacks desc
  /// Histogram bucket i counts cascades of depth/width i+1; the last bucket
  /// is the overflow (> histogram_buckets).
  std::vector<std::uint64_t> depth_histogram;
  std::vector<std::uint64_t> width_histogram;
  std::uint32_t max_depth = 0;
  std::uint32_t max_width = 0;
};

// --- controller convergence -------------------------------------------------

/// Trajectory statistics for one scalar control variable, merged across all
/// actors (objects or LPs) that run that controller.
struct SeriesStats {
  std::uint64_t decisions = 0;        ///< controller invocations traced
  std::uint64_t value_changes = 0;    ///< decisions that moved the value
  /// Direction reversals (an increase followed by a decrease or vice versa):
  /// the controller hunting instead of settling.
  std::uint64_t oscillations = 0;
  /// Wall/modeled time of the LAST value change, relative to the run start —
  /// after this the controller held its setting (0 when it never moved).
  std::uint64_t settle_ns = 0;
  double min_value = 0.0;
  double max_value = 0.0;
  double final_mean = 0.0;            ///< mean of each actor's final value

  [[nodiscard]] bool active() const noexcept { return decisions > 0; }
};

struct ConvergenceReport {
  SeriesStats checkpoint_interval;    ///< chi (per object)
  SeriesStats optimism_window;        ///< W (per LP)
  SeriesStats aggregation_window;     ///< DyMA window us (per LP)

  // Cancellation controller (per object), A<->L.
  std::uint64_t mode_switches = 0;
  std::uint64_t aggressive_dwell_ns = 0;
  std::uint64_t lazy_dwell_ns = 0;
  double lazy_dwell_fraction = 0.0;
  /// Wall/modeled time of the last A<->L switch relative to run start.
  std::uint64_t cancellation_settle_ns = 0;
  std::uint64_t hr_samples = 0;
  /// Fraction of object HR samples inside [dead_zone_low, dead_zone_high).
  double dead_zone_dwell_fraction = 0.0;
};

// --- commit efficiency ------------------------------------------------------

/// Aggregated counters for one GVT epoch (the interval that ENDS when the
/// epoch's GVT value is announced). Keyed by the GVT at the interval start:
/// 0 for the bootstrap interval, UINT64_MAX for the final (termination)
/// interval.
struct EpochStats {
  std::uint64_t gvt = 0;              ///< GVT at interval start (ticks)
  std::uint64_t committed = 0;        ///< events committed by fossil collection
  std::uint64_t rolled_back = 0;      ///< processed events undone by rollbacks
  std::uint64_t rollbacks = 0;
  std::uint64_t coast_events = 0;     ///< events re-executed coasting forward
  std::uint64_t coast_ns = 0;

  /// committed / (committed + rolled_back); 1.0 when nothing happened.
  [[nodiscard]] double efficiency() const noexcept {
    const double total = static_cast<double>(committed + rolled_back);
    return total == 0.0 ? 1.0 : static_cast<double>(committed) / total;
  }
};

// --- top level --------------------------------------------------------------

struct AnalysisReport {
  std::uint64_t run_begin_ns = 0;     ///< earliest record wall clock
  std::uint64_t run_end_ns = 0;       ///< latest record wall clock
  std::size_t total_records = 0;
  std::uint64_t dropped_records = 0;  ///< ring overwrites (analysis is partial)
  CascadeReport cascades;
  ConvergenceReport convergence;
  std::vector<EpochStats> epochs;     ///< in GVT order
  double overall_efficiency = 1.0;    ///< committed/(committed+rolled_back)
};

/// Runs all three analyses over a drained run trace. Pure function of the
/// trace — never touches kernel state.
[[nodiscard]] AnalysisReport analyze(const RunTrace& trace,
                                     const AnalysisConfig& config = {});

/// Renders the report as human-readable markdown (tables + headline numbers).
void write_analysis_markdown(std::ostream& os, const AnalysisReport& report);

/// Renders the report as a single JSON object (embeddable in bench results).
void write_analysis_json(std::ostream& os, const AnalysisReport& report);

}  // namespace otw::obs
