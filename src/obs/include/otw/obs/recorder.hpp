// Per-LP observability front end (otw::obs): one Recorder owns the LP's
// trace ring and phase profiler and is the single sink every kernel layer
// (object runtime, LP, controllers, comm) writes through.
//
// Cost discipline:
//   * default-constructed Recorder: tracing() and profiling() are false and
//     every call is a branch on a bool/pointer — nothing is recorded;
//   * OTW_OBS_TRACING=0 (CMake -DOTW_OBS_TRACING=OFF): record() compiles to
//     an empty inline function and the ring is never allocated;
//   * enabled: record() is a bounds-free store into a preallocated ring.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "otw/obs/live.hpp"
#include "otw/obs/phase_profiler.hpp"
#include "otw/obs/trace.hpp"

#ifndef OTW_OBS_TRACING
#define OTW_OBS_TRACING 1
#endif

namespace otw::obs {

struct ObsConfig {
  /// Record typed kernel events into the per-LP trace ring.
  bool tracing = false;
  /// Accumulate per-phase time (modeled or wall ns, per the platform clock).
  bool profiling = false;
  /// Trace-ring capacity in records, per LP (overwrite-oldest on overflow).
  std::size_t ring_capacity = 1u << 16;

  /// Live introspection plane: a non-zero port (or live.enabled) arms the
  /// registry and starts the scrape endpoint on 127.0.0.1:live_port
  /// (live_port == 0 with live.enabled: kernel-assigned ephemeral port,
  /// discoverable via live.on_endpoint).
  std::uint16_t live_port = 0;
  struct Live {
    /// Force-enable with an ephemeral port even when live_port == 0.
    bool enabled = false;
    /// Watchdog evaluation cadence on the endpoint's monitor thread.
    std::uint32_t monitor_period_ms = 100;
    /// Shard STATS-frame cadence in the distributed engine.
    std::uint32_t stats_period_ms = 50;
    /// Latency-attribution histograms (obs::hist seams). On by default when
    /// the live plane is armed; recording is relaxed atomics only, so the
    /// differential harness proves the toggle digest-neutral.
    bool histograms = true;
    live::WatchdogConfig watchdog;
    /// Invoked once with the bound endpoint port when the server starts.
    std::function<void(std::uint16_t)> on_endpoint;
  } live;

  /// Black-box flight recorder (obs::flight). Requires the live plane: its
  /// evidence rings are fed from STATS snapshots and watchdog transitions.
  struct Flight {
    bool enabled = false;
    /// Directory receiving flight-<shard>.json dumps.
    std::string dir = ".";
    /// Live snapshots retained per shard.
    std::size_t snapshot_ring = 32;
    /// Relayed-frame records retained per source shard (distributed only).
    std::size_t frame_ring = 256;
  } flight;

  [[nodiscard]] bool live_enabled() const noexcept {
    return live.enabled || live_port != 0;
  }
};

class Recorder {
 public:
  Recorder() = default;

  /// (Re)arms the recorder for one run. Allocates the ring up front so the
  /// recording path never allocates.
  void configure(const ObsConfig& config, std::uint32_t lp) {
    lp_ = lp;
    profiling_ = config.profiling;
#if OTW_OBS_TRACING
    ring_ = config.tracing ? std::make_unique<TraceRing>(config.ring_capacity)
                           : nullptr;
#endif
  }

  [[nodiscard]] bool tracing() const noexcept {
#if OTW_OBS_TRACING
    return ring_ != nullptr;
#else
    return false;
#endif
  }
  [[nodiscard]] bool profiling() const noexcept { return profiling_; }
  [[nodiscard]] std::uint32_t lp() const noexcept { return lp_; }

  /// Overload for kinds whose payload has a pack_* helper (schema v2).
  void record(TraceKind kind, std::uint64_t wall_ns, std::uint32_t actor,
              std::uint64_t vt, TraceArgs args) noexcept {
    record(kind, wall_ns, actor, vt, args.arg0, args.arg1);
  }

  void record(TraceKind kind, std::uint64_t wall_ns, std::uint32_t actor,
              std::uint64_t vt = 0, std::uint64_t arg0 = 0,
              std::uint64_t arg1 = 0) noexcept {
#if OTW_OBS_TRACING
    if (ring_) {
      ring_->push(TraceRecord{wall_ns, vt, arg0, arg1, actor, kind});
    }
#else
    static_cast<void>(kind);
    static_cast<void>(wall_ns);
    static_cast<void>(actor);
    static_cast<void>(vt);
    static_cast<void>(arg0);
    static_cast<void>(arg1);
#endif
  }

  // --- phase profiling (no-ops unless profiling is enabled) ---
  void phase_begin(Phase phase, std::uint64_t now_ns) {
    if (profiling_) {
      profiler_.begin(phase, now_ns);
    }
  }
  void phase_end(std::uint64_t now_ns) {
    if (profiling_) {
      profiler_.end(now_ns);
    }
  }
  void phase_add(Phase phase, std::uint64_t ns) {
    if (profiling_) {
      profiler_.add(phase, ns);
    }
  }

  [[nodiscard]] const PhaseTotals& phase_totals() const noexcept {
    return profiler_.totals();
  }

  /// Drains the ring into a RunResult-ready log (empty when not tracing).
  [[nodiscard]] LpTraceLog drain_trace() const {
    LpTraceLog log;
    log.lp = lp_;
#if OTW_OBS_TRACING
    if (ring_) {
      log.dropped = ring_->dropped();
      log.records = ring_->drain();
    }
#endif
    return log;
  }

 private:
  std::uint32_t lp_ = 0;
  bool profiling_ = false;
  PhaseProfiler profiler_;
#if OTW_OBS_TRACING
  std::unique_ptr<TraceRing> ring_;
#endif
};

}  // namespace otw::obs
