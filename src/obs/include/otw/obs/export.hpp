// Exporters (otw::obs): turn collected traces and metrics into standard
// formats a human can actually open.
//
//   write_chrome_trace  - Chrome trace_event JSON ("JSON Object Format"),
//                         loadable in Perfetto (ui.perfetto.dev) and
//                         chrome://tracing. One track per LP; rollbacks and
//                         coast-forwards are duration slices, everything
//                         else (GVT epochs, checkpoints, anti-messages,
//                         controller decisions) instant events with args.
//   write_metrics_jsonl - one JSON object per line per metric; trivially
//                         machine-parseable run snapshots.
//   write_prometheus    - Prometheus text exposition format (# TYPE + sample
//                         lines), for scraping or textfile collection.
//
// The metrics model is deliberately generic (name + labels + value): the
// Time Warp layer builds a MetricsSnapshot from its KernelStats without obs
// needing to know any kernel types.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "otw/obs/phase_profiler.hpp"
#include "otw/obs/trace.hpp"

namespace otw::obs {

/// One sample of one metric: `name{labels...} value`.
struct Metric {
  std::string name;
  std::vector<std::pair<std::string, std::string>> labels;
  double value = 0.0;
  enum class Type : std::uint8_t { Counter, Gauge } type = Type::Counter;
};

/// One histogram family sample: cumulative `le` buckets plus sum/count,
/// rendered in the Prometheus exposition as `name_bucket{...,le="..."}` /
/// `name_sum` / `name_count` under a single `# TYPE name histogram`
/// header — the shape PromQL's histogram_quantile() expects.
struct HistogramMetric {
  std::string name;
  std::vector<std::pair<std::string, std::string>> labels;
  /// (upper bound, cumulative count at-or-below it), ascending; the
  /// implicit +Inf bucket equals `count` and is emitted by the writers.
  std::vector<std::pair<double, std::uint64_t>> buckets;
  std::uint64_t count = 0;
  double sum = 0.0;
};

struct MetricsSnapshot {
  std::vector<Metric> metrics;
  std::vector<HistogramMetric> histograms;

  Metric& add(std::string name, double value,
              Metric::Type type = Metric::Type::Counter) {
    metrics.push_back(Metric{std::move(name), {}, value, type});
    return metrics.back();
  }
};

/// Escapes a string for inclusion in a JSON string literal (no quotes added).
[[nodiscard]] std::string json_escape(const std::string& raw);

/// Writes the run trace as Chrome trace_event JSON. Unmatched duration
/// events (possible after ring overflow) are repaired so the file always
/// parses. `wall_offset_ns` shifts all timestamps (rarely needed).
void write_chrome_trace(std::ostream& os, const RunTrace& trace);

/// Writes one JSON object per metric, one per line.
void write_metrics_jsonl(std::ostream& os, const MetricsSnapshot& snapshot);

/// Writes the Prometheus text exposition format.
void write_prometheus(std::ostream& os, const MetricsSnapshot& snapshot);

/// Folds per-LP phase totals into `snapshot` as otw_phase_ns/otw_phase_count
/// metrics labelled by phase and lp.
void add_phase_metrics(MetricsSnapshot& snapshot,
                       const std::vector<PhaseTotals>& per_lp);

}  // namespace otw::obs
