// Live introspection plane (otw::obs::live): a lock-free registry of
// relaxed-atomic counters/gauges that kernel hot paths publish into while a
// run is in flight, plus the snapshot/codec/watchdog machinery that turns
// those cells into something an operator can scrape mid-run.
//
// Digest neutrality: publishing is nothing but relaxed atomic stores into
// preallocated cells — no allocation, no locks, no ctx->charge(), no control
// flow that depends on reader activity — so enabling the live plane cannot
// perturb committed results. The differential tests prove this bit-for-bit.
//
// Cost discipline (mirrors obs::Recorder):
//   * registry pointer null: every publish site is one branch;
//   * OTW_OBS_LIVE=0 (CMake -DOTW_OBS_LIVE=OFF): publish methods compile to
//     empty inline functions and the cells are never allocated;
//   * enabled: a publish is a handful of relaxed stores per LP batch.
//
// Memory model: writers use memory_order_relaxed stores of *absolute totals*
// (never read-modify-write on the LP path), readers use relaxed loads. A
// scrape may therefore see a torn view *across* cells (counter A from batch
// n, counter B from batch n-1) but never a torn value *within* one cell, and
// every counter is individually monotone — exactly the guarantee Prometheus
// counters need. Engine-level gauges (mailbox occupancy, parked workers) are
// relaxed fetch_adds from many threads; they are order-free tallies.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "otw/obs/export.hpp"
#include "otw/obs/hist.hpp"

#ifndef OTW_OBS_LIVE
#define OTW_OBS_LIVE 1
#endif

namespace otw::obs::live {

// ---------------------------------------------------------------------------
// Metric identities.
// ---------------------------------------------------------------------------

/// Per-LP monotone counters (published as absolute running totals).
enum class Counter : std::uint8_t {
  EventsProcessed,
  EventsCommitted,
  EventsRolledBack,
  Rollbacks,
  AntiMessagesSent,
  MessagesSent,
  SendsHeld,
  PressureEnters,
  GvtEpochs,
  kCount,
};

/// Per-LP point-in-time gauges.
enum class Gauge : std::uint8_t {
  LvtTicks,          ///< local virtual time (UINT64_MAX = infinity)
  MemoryBytes,       ///< live footprint (queues + state + pool slabs)
  MemoryBudgetBytes, ///< governance budget (0 = unlimited)
  PressureState,     ///< 0 Normal / 1 Throttle / 2 Emergency
  OptimismWindowTicks,   ///< controller parameter (UINT64_MAX = unthrottled)
  CheckpointPeriod,      ///< controller parameter (events per state save)
  LastRollbackDepth,     ///< events undone by the most recent rollback
  kCount,
};

/// Engine-wide occupancy gauges (relaxed +/- tallies from scheduler threads).
enum class EngineGauge : std::uint8_t {
  MailboxOccupancy,  ///< messages enqueued but not yet popped, all LPs
  WorkersParked,     ///< threads currently blocked in park()
  kCount,
};

inline constexpr std::size_t kNumCounters =
    static_cast<std::size_t>(Counter::kCount);
inline constexpr std::size_t kNumGauges = static_cast<std::size_t>(Gauge::kCount);
inline constexpr std::size_t kNumEngineGauges =
    static_cast<std::size_t>(EngineGauge::kCount);

/// Sentinel for "virtual time = infinity" in tick-valued slots.
inline constexpr std::uint64_t kTicksInfinity = UINT64_MAX;

// ---------------------------------------------------------------------------
// Snapshots: plain (non-atomic) copies of registry state.
// ---------------------------------------------------------------------------

/// One LP's cell, copied with relaxed loads.
struct LpLive {
  std::uint32_t lp = 0;
  std::array<std::uint64_t, kNumCounters> counters{};
  std::array<std::uint64_t, kNumGauges> gauges{};

  [[nodiscard]] std::uint64_t counter(Counter c) const noexcept {
    return counters[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] std::uint64_t gauge(Gauge g) const noexcept {
    return gauges[static_cast<std::size_t>(g)];
  }
};

/// One shard's full registry state at a point in time. `wall_ns` is stamped
/// by the producer (capture) and refreshed by the consumer on arrival, so
/// the watchdog's silent-shard rule measures end-to-end staleness.
struct LiveSnapshot {
  std::uint32_t shard = 0;
  std::uint64_t wall_ns = 0;
  std::uint64_t gvt_ticks = kTicksInfinity;
  std::array<std::uint64_t, kNumEngineGauges> engine{};
  std::vector<LpLive> lps;
  /// Attribution histograms (non-empty seams only; codec v2 section).
  std::vector<hist::Entry> hists;

  [[nodiscard]] std::uint64_t engine_gauge(EngineGauge g) const noexcept {
    return engine[static_cast<std::size_t>(g)];
  }
  /// Sum of one counter across every LP in the shard.
  [[nodiscard]] std::uint64_t total(Counter c) const noexcept {
    std::uint64_t sum = 0;
    for (const LpLive& lp : lps) {
      sum += lp.counter(c);
    }
    return sum;
  }
  /// Sum of one gauge across every LP (bytes-valued gauges).
  [[nodiscard]] std::uint64_t sum_gauge(Gauge g) const noexcept {
    std::uint64_t sum = 0;
    for (const LpLive& lp : lps) {
      sum += lp.gauge(g);
    }
    return sum;
  }
  /// Max of one gauge across every LP (state-valued gauges).
  [[nodiscard]] std::uint64_t max_gauge(Gauge g) const noexcept {
    std::uint64_t mx = 0;
    for (const LpLive& lp : lps) {
      mx = lp.gauge(g) > mx ? lp.gauge(g) : mx;
    }
    return mx;
  }
};

// ---------------------------------------------------------------------------
// The registry.
// ---------------------------------------------------------------------------

/// Lock-free cell bank: one cache-line-aligned cell per LP plus a global GVT
/// slot and engine gauges. Writers are the owning LP (its cell), whichever
/// LP closes a GVT epoch (the GVT slot), and scheduler threads (engine
/// gauges); the only reader is the snapshot thread.
class LiveMetricsRegistry {
 public:
  explicit LiveMetricsRegistry(std::uint32_t num_lps) : num_lps_(num_lps) {
#if OTW_OBS_LIVE
    cells_ = std::make_unique<Cell[]>(num_lps);
#endif
  }

  LiveMetricsRegistry(const LiveMetricsRegistry&) = delete;
  LiveMetricsRegistry& operator=(const LiveMetricsRegistry&) = delete;

  [[nodiscard]] static constexpr bool compiled_in() noexcept {
#if OTW_OBS_LIVE
    return true;
#else
    return false;
#endif
  }

  [[nodiscard]] std::uint32_t num_lps() const noexcept { return num_lps_; }

  /// Allocates the latency-attribution bank (idempotent). Called once
  /// before any thread/process splits off so everyone shares the layout.
  void enable_hists(std::uint32_t num_shards) {
#if OTW_OBS_LIVE
    if (!hists_) {
      hists_ = std::make_unique<hist::Bank>(num_shards);
    }
#else
    static_cast<void>(num_shards);
#endif
  }

  /// The attribution bank, or nullptr when disabled / compiled out. Every
  /// record site is a null check away from free when histograms are off.
  [[nodiscard]] hist::Bank* hists() const noexcept {
#if OTW_OBS_LIVE
    return hists_.get();
#else
    return nullptr;
#endif
  }

  /// Relaxed store of an absolute running total into the LP's cell.
  void store_counter(std::uint32_t lp, Counter c, std::uint64_t total) noexcept {
#if OTW_OBS_LIVE
    cells_[lp].slots[static_cast<std::size_t>(c)].store(
        total, std::memory_order_relaxed);
#else
    static_cast<void>(lp);
    static_cast<void>(c);
    static_cast<void>(total);
#endif
  }

  void store_gauge(std::uint32_t lp, Gauge g, std::uint64_t value) noexcept {
#if OTW_OBS_LIVE
    cells_[lp].slots[kNumCounters + static_cast<std::size_t>(g)].store(
        value, std::memory_order_relaxed);
#else
    static_cast<void>(lp);
    static_cast<void>(g);
    static_cast<void>(value);
#endif
  }

  /// GVT advances monotonically; any LP that applies an epoch may store it.
  void store_gvt(std::uint64_t ticks) noexcept {
#if OTW_OBS_LIVE
    gvt_.store(ticks, std::memory_order_relaxed);
#else
    static_cast<void>(ticks);
#endif
  }

  /// Relaxed tally for engine-wide occupancy gauges (may be called from any
  /// scheduler thread; deltas of +1/-1 around push/pop and park/unpark).
  void engine_add(EngineGauge g, std::int64_t delta) noexcept {
#if OTW_OBS_LIVE
    engine_[static_cast<std::size_t>(g)].fetch_add(
        static_cast<std::uint64_t>(delta), std::memory_order_relaxed);
#else
    static_cast<void>(g);
    static_cast<void>(delta);
#endif
  }

  /// Full relaxed-load copy. `shard` and `wall_ns` are stamped through.
  [[nodiscard]] LiveSnapshot snapshot(std::uint32_t shard,
                                      std::uint64_t wall_ns) const {
    LiveSnapshot snap;
    snap.shard = shard;
    snap.wall_ns = wall_ns;
#if OTW_OBS_LIVE
    snap.gvt_ticks = gvt_.load(std::memory_order_relaxed);
    for (std::size_t g = 0; g < kNumEngineGauges; ++g) {
      snap.engine[g] = engine_[g].load(std::memory_order_relaxed);
    }
    snap.lps.resize(num_lps_);
    for (std::uint32_t lp = 0; lp < num_lps_; ++lp) {
      LpLive& out = snap.lps[lp];
      out.lp = lp;
      for (std::size_t c = 0; c < kNumCounters; ++c) {
        out.counters[c] = cells_[lp].slots[c].load(std::memory_order_relaxed);
      }
      for (std::size_t g = 0; g < kNumGauges; ++g) {
        out.gauges[g] =
            cells_[lp].slots[kNumCounters + g].load(std::memory_order_relaxed);
      }
    }
    if (hists_) {
      snap.hists = hists_->snapshot(shard);
    }
#endif
    return snap;
  }

 private:
#if OTW_OBS_LIVE
  struct alignas(64) Cell {
    std::array<std::atomic<std::uint64_t>, kNumCounters + kNumGauges> slots{};
  };
  std::unique_ptr<Cell[]> cells_;
  std::atomic<std::uint64_t> gvt_{kTicksInfinity};
  std::array<std::atomic<std::uint64_t>, kNumEngineGauges> engine_{};
  std::unique_ptr<hist::Bank> hists_;
#endif
  std::uint32_t num_lps_;
};

// ---------------------------------------------------------------------------
// Snapshot wire codec (raw little-endian; the distributed transport carries
// these as opaque STATS payloads so obs stays independent of platform).
// ---------------------------------------------------------------------------

void encode_snapshot(const LiveSnapshot& snap, std::vector<std::uint8_t>& out);

/// Strict decode; false on truncation, bad magic, or unknown version.
[[nodiscard]] bool decode_snapshot(const std::uint8_t* data, std::size_t len,
                                   LiveSnapshot& out);

// ---------------------------------------------------------------------------
// Watchdog.
// ---------------------------------------------------------------------------

/// Health rules, evaluated per shard on every monitor feed. Documented in
/// DESIGN.md section 9 (check_docs.py guards against drift).
enum class HealthRule : std::uint8_t {
  GvtStall,        ///< GVT unchanged for N consecutive feeds while work ran
  RollbackStorm,   ///< rolled-back/committed delta ratio above threshold
  OccupancyPinned, ///< memory footprint pinned >= fraction of budget
  ShardSilent,     ///< no snapshot from a shard past the deadline
  kCount,
};

[[nodiscard]] const char* health_rule_name(HealthRule rule) noexcept;

/// One edge-triggered watchdog transition (raise or clear).
struct HealthEvent {
  HealthRule rule = HealthRule::GvtStall;
  bool raised = true;  ///< true = condition entered, false = condition cleared
  std::uint32_t shard = 0;
  std::uint64_t wall_ns = 0;
  std::string detail;
};

struct WatchdogConfig {
  /// Feeds with unchanged GVT (while events were processed) before GvtStall.
  std::uint32_t gvt_stall_feeds = 8;
  /// RollbackStorm when rolled_back_delta > ratio * committed_delta ...
  double rollback_ratio = 2.0;
  /// ... and the deltas are large enough to be statistically meaningful.
  std::uint64_t rollback_min_events = 256;
  /// OccupancyPinned when footprint >= fraction * budget for N feeds.
  double occupancy_fraction = 0.9;
  std::uint32_t occupancy_feeds = 4;
  /// ShardSilent when now - snapshot.wall_ns exceeds this.
  std::uint64_t shard_silent_ns = 2'000'000'000;
};

/// Pure rule evaluator: feed it per-shard snapshots at a steady cadence and
/// it emits edge-triggered HealthEvents. Single-threaded by design (the
/// monitor loop owns it); no I/O, so tests drive it with synthetic snapshots.
class Watchdog {
 public:
  explicit Watchdog(WatchdogConfig config) : config_(config) {}

  /// Evaluates every rule against this feed. Returns only the transitions
  /// (newly raised / newly cleared); the full log accretes in history().
  std::vector<HealthEvent> feed(const std::vector<LiveSnapshot>& shards,
                                std::uint64_t now_ns);

  [[nodiscard]] const std::vector<HealthEvent>& history() const noexcept {
    return history_;
  }

  /// Rules currently in the raised state, as (rule, shard) pairs.
  [[nodiscard]] std::vector<std::pair<HealthRule, std::uint32_t>> active() const;

 private:
  struct ShardState {
    bool seen = false;
    std::uint64_t last_gvt = kTicksInfinity;
    std::uint32_t gvt_stall_feeds = 0;
    std::uint64_t last_processed = 0;
    std::uint64_t last_committed = 0;
    std::uint64_t last_rolled_back = 0;
    std::uint32_t occupancy_feeds = 0;
    std::array<bool, static_cast<std::size_t>(HealthRule::kCount)> raised{};
  };

  void transition(ShardState& state, HealthRule rule, bool now_raised,
                  std::uint32_t shard, std::uint64_t now_ns,
                  std::string detail, std::vector<HealthEvent>& out);

  WatchdogConfig config_;
  std::vector<ShardState> states_;
  std::vector<HealthEvent> history_;
};

/// One JSON object per line per event (machine-parseable health log).
void write_health_jsonl(std::ostream& os, const std::vector<HealthEvent>& events);

// ---------------------------------------------------------------------------
// Cluster view: latest per-shard snapshots, mutex-protected (written by the
// coordinator relay thread, read by the scrape/monitor thread).
// ---------------------------------------------------------------------------

class ClusterView {
 public:
  explicit ClusterView(std::uint32_t num_shards) : shards_(num_shards) {}

  /// Replaces the stored snapshot for `snap.shard` (stamps arrival time).
  void update(LiveSnapshot snap, std::uint64_t arrival_ns);

  /// Copies of every snapshot seen so far (unseen shards are omitted).
  [[nodiscard]] std::vector<LiveSnapshot> shards() const;

 private:
  mutable std::mutex mutex_;
  std::vector<LiveSnapshot> shards_;
  std::vector<bool> seen_ = std::vector<bool>(shards_.size(), false);
};

// ---------------------------------------------------------------------------
// Exposition.
// ---------------------------------------------------------------------------

/// Folds per-shard snapshots into otw_live_* metrics (shard-labelled
/// aggregates; per-LP detail stays in the registry, not the exposition).
[[nodiscard]] MetricsSnapshot build_live_metrics(
    const std::vector<LiveSnapshot>& shards);

/// JSON snapshot document served at /snapshot and polled by twtop.
void write_live_json(std::ostream& os, const std::vector<LiveSnapshot>& shards,
                     const std::vector<std::pair<HealthRule, std::uint32_t>>& active,
                     const std::vector<HealthEvent>& recent_events,
                     std::uint64_t now_ns);

}  // namespace otw::obs::live
