// Latency attribution histograms (otw::obs::hist): fixed-size, lock-free
// log2-bucket histograms that hot paths record into while a run is in
// flight. The bucket layout mirrors util::Log2Histogram (bucket 0 holds
// value 0, bucket i counts values in [2^(i-1), 2^i)) so wire-decoded
// snapshots interoperate with the existing offline statistics, but the
// cells here are relaxed atomics: a record() is two relaxed fetch_adds
// plus a sum accumulate, safe from any thread, and a scrape thread can
// snapshot concurrently without a lock.
//
// Digest neutrality follows the same argument as obs::live: recording
// never allocates, never takes a lock and never feeds back into kernel
// control flow, so enabling the attribution plane cannot perturb committed
// results. With OTW_OBS_LIVE=0 the storage is never allocated and every
// record site compiles down to a null-pointer branch.
//
// Seams (one histogram per seam per shard, link seams keyed (src, dst)):
//   WireEncode     ns to serialize one frame payload (sender side)
//   WireDecode     ns to deserialize one frame payload (receiver side)
//   LinkLatency    ns from send-stamp to decode per (src, dst) shard link,
//                  measured on the coordinator-aligned clock
//   RelayResidency ns from send-stamp to coordinator relay per (src, dst)
//   GvtRound       ns from GVT epoch start to completion (initiating LP)
//   MailboxDwell   ns a message sat in a mailbox/inbox before poll()
//   RollbackDepth  events undone by one rollback (unitless, not ns)
//   StealLatency   ns one successful steal sweep took (threaded scheduler)
//   MigrationFreeze   ns to freeze + serialize one LP for migration (source)
//   MigrationRestore  ns to deserialize + revive one migrated LP (destination)
//   SnapshotEncode    ns to serialize one LP into a snapshot cut (worker)
//   RestoreReplay     ns to revive one LP from a snapshot blob (recovery)
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#ifndef OTW_OBS_LIVE
#define OTW_OBS_LIVE 1
#endif

namespace otw::obs::hist {

/// Instrumented hot seams. Documented in DESIGN.md section 10
/// (check_docs.py guards against drift).
enum class Seam : std::uint8_t {
  WireEncode,
  WireDecode,
  LinkLatency,
  RelayResidency,
  GvtRound,
  MailboxDwell,
  RollbackDepth,
  StealLatency,
  MigrationFreeze,
  MigrationRestore,
  SnapshotEncode,
  RestoreReplay,
  kCount,
};

inline constexpr std::size_t kNumSeams = static_cast<std::size_t>(Seam::kCount);

/// Exposition name fragment, e.g. "link_latency_ns" (units baked into the
/// name so dashboards never have to guess; RollbackDepth is event-valued).
[[nodiscard]] const char* seam_name(Seam seam) noexcept;

/// True for seams recorded per (src, dst) shard link.
[[nodiscard]] constexpr bool seam_is_link(Seam seam) noexcept {
  return seam == Seam::LinkLatency || seam == Seam::RelayResidency;
}

/// Bucket count: value 0 plus [2^(i-1), 2^i) for i in [1, 40) covers
/// sub-nanosecond through ~9 minutes in ns; larger values clamp into the
/// last bucket (quantiles then report its upper bound, which is honest
/// about "at least this long").
inline constexpr std::size_t kNumBuckets = 40;

/// Bucket index for a value (shared by the atomic and plain histograms).
[[nodiscard]] std::size_t bucket_index(std::uint64_t value) noexcept;

/// Inclusive upper bound of bucket i: 0 for bucket 0, 2^i - 1 otherwise.
[[nodiscard]] std::uint64_t bucket_upper_bound(std::size_t i) noexcept;

/// Plain (non-atomic) copy of one histogram: what snapshots, wire codecs
/// and exposition operate on.
struct Snapshot {
  std::array<std::uint64_t, kNumBuckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;

  [[nodiscard]] bool empty() const noexcept { return count == 0; }
  void add(std::uint64_t value) noexcept;
  void merge(const Snapshot& other) noexcept;
  /// Smallest bucket upper bound v such that >= q of the mass is <= v
  /// (same contract as util::Log2Histogram::quantile_upper_bound).
  [[nodiscard]] std::uint64_t quantile_upper_bound(double q) const noexcept;
};

/// One labelled histogram in a snapshot/export: scalar seams carry
/// src = dst = 0, link seams the (src, dst) shard pair. `shard` is the
/// shard that recorded it (stamped at snapshot/merge time).
struct Entry {
  Seam seam = Seam::WireEncode;
  std::uint32_t shard = 0;
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  Snapshot hist;
};

/// Lock-free fixed-size log2 histogram. Writers do relaxed fetch_adds;
/// the snapshot reader does relaxed loads, so a concurrent snapshot may
/// be torn across cells (count from record n, a bucket from n-1) but
/// every cell is individually monotone — exactly what a Prometheus
/// histogram scrape tolerates.
class LatencyHistogram {
 public:
  void record(std::uint64_t value) noexcept {
#if OTW_OBS_LIVE
    buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
#else
    static_cast<void>(value);
#endif
  }

  [[nodiscard]] Snapshot snapshot() const noexcept {
    Snapshot out;
#if OTW_OBS_LIVE
    for (std::size_t i = 0; i < kNumBuckets; ++i) {
      out.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    }
    out.count = count_.load(std::memory_order_relaxed);
    out.sum = sum_.load(std::memory_order_relaxed);
#endif
    return out;
  }

  /// Zeroes every cell. Only safe when no concurrent writer exists (used by
  /// a freshly fork()ed worker to shed the parent's recorded values).
  void reset() noexcept {
#if OTW_OBS_LIVE
    for (std::size_t i = 0; i < kNumBuckets; ++i) {
      buckets_[i].store(0, std::memory_order_relaxed);
    }
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
#endif
  }

 private:
#if OTW_OBS_LIVE
  std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
#endif
};

/// One shard's full set of attribution histograms: one per scalar seam
/// plus a (num_shards x num_shards) matrix per link seam. Allocated once
/// (pre-fork in the distributed engine, so every shard inherits the same
/// layout and writes its own copy); recording is wait-free.
class Bank {
 public:
  explicit Bank(std::uint32_t num_shards)
      : num_shards_(num_shards == 0 ? 1 : num_shards) {
#if OTW_OBS_LIVE
    links_ = std::make_unique<LatencyHistogram[]>(
        kNumLinkSeams * static_cast<std::size_t>(num_shards_) * num_shards_);
#endif
  }

  Bank(const Bank&) = delete;
  Bank& operator=(const Bank&) = delete;

  [[nodiscard]] std::uint32_t num_shards() const noexcept { return num_shards_; }

  /// Records into a scalar seam (not LinkLatency/RelayResidency).
  void record(Seam seam, std::uint64_t value) noexcept {
#if OTW_OBS_LIVE
    scalars_[static_cast<std::size_t>(seam)].record(value);
#else
    static_cast<void>(seam);
    static_cast<void>(value);
#endif
  }

  /// Records into a link seam; out-of-range shard ids are dropped (can
  /// only happen on a malformed frame, which the transport rejects later).
  void record_link(Seam seam, std::uint32_t src, std::uint32_t dst,
                   std::uint64_t value) noexcept {
#if OTW_OBS_LIVE
    if (src >= num_shards_ || dst >= num_shards_) {
      return;
    }
    links_[link_slot(seam, src, dst)].record(value);
#else
    static_cast<void>(seam);
    static_cast<void>(src);
    static_cast<void>(dst);
    static_cast<void>(value);
#endif
  }

  /// Non-empty histograms as labelled entries, `shard` stamped through.
  [[nodiscard]] std::vector<Entry> snapshot(std::uint32_t shard) const {
    std::vector<Entry> out;
#if OTW_OBS_LIVE
    for (std::size_t s = 0; s < kNumSeams; ++s) {
      const Seam seam = static_cast<Seam>(s);
      if (seam_is_link(seam)) {
        continue;
      }
      Snapshot snap = scalars_[s].snapshot();
      if (!snap.empty()) {
        out.push_back(Entry{seam, shard, 0, 0, snap});
      }
    }
    for (const Seam seam : {Seam::LinkLatency, Seam::RelayResidency}) {
      for (std::uint32_t src = 0; src < num_shards_; ++src) {
        for (std::uint32_t dst = 0; dst < num_shards_; ++dst) {
          Snapshot snap = links_[link_slot(seam, src, dst)].snapshot();
          if (!snap.empty()) {
            out.push_back(Entry{seam, shard, src, dst, snap});
          }
        }
      }
    }
#else
    static_cast<void>(shard);
#endif
    return out;
  }

  /// Zeroes every histogram in the bank. A replacement worker fork()ed
  /// mid-run inherits the coordinator's bank — which by then holds
  /// coordinator-side entries (relay residency) — and must start clean so
  /// its RESULT reports only its own incarnation. Single-writer only.
  void reset() noexcept {
#if OTW_OBS_LIVE
    for (auto& hist : scalars_) {
      hist.reset();
    }
    const std::size_t n_links =
        kNumLinkSeams * static_cast<std::size_t>(num_shards_) * num_shards_;
    for (std::size_t i = 0; i < n_links; ++i) {
      links_[i].reset();
    }
#endif
  }

 private:
  static constexpr std::size_t kNumLinkSeams = 2;

#if OTW_OBS_LIVE
  [[nodiscard]] std::size_t link_slot(Seam seam, std::uint32_t src,
                                      std::uint32_t dst) const noexcept {
    const std::size_t plane = seam == Seam::LinkLatency ? 0 : 1;
    return (plane * num_shards_ + src) * num_shards_ + dst;
  }

  std::array<LatencyHistogram, kNumSeams> scalars_{};
  std::unique_ptr<LatencyHistogram[]> links_;
#endif
  std::uint32_t num_shards_;
};

}  // namespace otw::obs::hist
