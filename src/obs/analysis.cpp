#include "otw/obs/analysis.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <map>
#include <ostream>
#include <set>
#include <string>
#include <vector>

namespace otw::obs {
namespace {

// --- cascade reconstruction -------------------------------------------------

struct RollbackScope {
  std::size_t lp = 0;
  std::uint32_t actor = 0;
  std::uint64_t begin_ns = 0;
  std::uint64_t end_ns = 0;
  std::uint64_t target_vt = 0;
  RollbackCause cause;
  std::uint64_t undone = 0;
  bool closed = false;
};

/// Identity of a traced message: (sender, receiver, recv_time, send_time).
/// The same identity can recur when an event is re-executed and re-cancelled,
/// so each key holds a FIFO of occurrences consumed in wall order.
using AntiKey = std::array<std::uint64_t, 4>;

struct AntiOccurrence {
  std::uint64_t wall_ns = 0;
  std::size_t rollback = SIZE_MAX;  ///< owning RollbackScope (SIZE_MAX: none)
};

struct AntiFifo {
  std::vector<AntiOccurrence> entries;
  std::size_t next = 0;
};

struct CascadeAccumulator {
  Cascade cascade;
  std::set<std::uint32_t> objects;
};

CascadeReport build_cascades(const RunTrace& trace,
                             const AnalysisConfig& config) {
  CascadeReport report;

  // Pass 1: per-LP stream scan. Collect rollback scopes and attribute each
  // AntiSent to the rollback that emitted it: the actor's open scope
  // (aggressive cancellation and annihilation purges emit inside the
  // rollback), or the scope that just closed at this same wall instant
  // (lazy-miss flushes right after coast-forward). Antis emitted outside any
  // scope (idle-time lazy resolution) stay unowned — a downstream rollback
  // they cause roots its own cascade.
  std::vector<RollbackScope> rollbacks;
  std::map<AntiKey, AntiFifo> antis;
  for (std::size_t lp = 0; lp < trace.lps.size(); ++lp) {
    struct ActorState {
      std::size_t open = SIZE_MAX;
      std::size_t last_closed = SIZE_MAX;
    };
    std::map<std::uint32_t, ActorState> actors;
    for (const TraceRecord& r : trace.lps[lp].records) {
      switch (r.kind) {
        case TraceKind::RollbackBegin: {
          RollbackScope scope;
          scope.lp = lp;
          scope.actor = r.actor;
          scope.begin_ns = r.wall_ns;
          scope.end_ns = r.wall_ns;
          scope.target_vt = r.vt;
          scope.cause = unpack_rollback_cause(r);
          rollbacks.push_back(scope);
          actors[r.actor].open = rollbacks.size() - 1;
          break;
        }
        case TraceKind::RollbackEnd: {
          ActorState& st = actors[r.actor];
          if (st.open != SIZE_MAX) {
            RollbackScope& scope = rollbacks[st.open];
            scope.end_ns = r.wall_ns;
            scope.undone = r.arg0;
            scope.closed = true;
            st.last_closed = st.open;
            st.open = SIZE_MAX;
          }
          break;
        }
        case TraceKind::AntiSent: {
          const AntiSentInfo info = unpack_anti_sent(r);
          const ActorState& st = actors.count(r.actor)
                                     ? actors.at(r.actor)
                                     : ActorState{};
          std::size_t owner = st.open;
          if (owner == SIZE_MAX && st.last_closed != SIZE_MAX &&
              rollbacks[st.last_closed].end_ns == r.wall_ns) {
            owner = st.last_closed;
          }
          const AntiKey key{r.actor, info.receiver, r.vt, info.send_time};
          antis[key].entries.push_back(AntiOccurrence{r.wall_ns, owner});
          break;
        }
        default:
          break;
      }
    }
  }

  report.total_rollbacks = rollbacks.size();
  if (rollbacks.empty()) {
    report.depth_histogram.assign(config.histogram_buckets + 1, 0);
    report.width_histogram.assign(config.histogram_buckets + 1, 0);
    return report;
  }

  // Pass 2: chain rollbacks in global wall order. A straggler-caused
  // rollback roots a new cascade; an anti-caused rollback joins the cascade
  // of the rollback that sent the matching anti-message.
  std::vector<std::size_t> order(rollbacks.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::stable_sort(order.begin(), order.end(),
                   [&rollbacks](std::size_t a, std::size_t b) {
                     return rollbacks[a].begin_ns < rollbacks[b].begin_ns;
                   });

  std::vector<std::size_t> root(rollbacks.size(), SIZE_MAX);
  std::vector<std::uint32_t> depth(rollbacks.size(), 1);
  std::map<std::size_t, CascadeAccumulator> cascades;  // keyed by root index

  for (const std::size_t i : order) {
    const RollbackScope& rb = rollbacks[i];
    std::size_t parent = SIZE_MAX;
    if (rb.cause.anti) {
      ++report.cascaded_rollbacks;
      const AntiKey key{rb.cause.source_object, rb.actor, rb.target_vt,
                        rb.cause.send_time};
      auto it = antis.find(key);
      if (it != antis.end() && it->second.next < it->second.entries.size()) {
        const AntiOccurrence& occ = it->second.entries[it->second.next];
        if (occ.wall_ns <= rb.begin_ns) {
          ++it->second.next;
          if (occ.rollback != SIZE_MAX && root[occ.rollback] != SIZE_MAX) {
            parent = occ.rollback;
          }
        }
      }
    } else {
      ++report.primary_rollbacks;
    }

    if (parent != SIZE_MAX) {
      ++report.chained_rollbacks;
      root[i] = root[parent];
      depth[i] = depth[parent] + 1;
    } else {
      root[i] = i;
      CascadeAccumulator& acc = cascades[i];
      acc.cascade.root_object = rb.actor;
      acc.cascade.blamed_object = rb.cause.source_object;
      acc.cascade.root_vt = rb.target_vt;
      acc.cascade.rollbacks = 0;  // counted below, with every member
    }

    CascadeAccumulator& acc = cascades.at(root[i]);
    ++acc.cascade.rollbacks;
    acc.cascade.events_undone += rb.undone;
    acc.cascade.depth = std::max(acc.cascade.depth, depth[i]);
    acc.objects.insert(rb.actor);
    report.total_events_undone += rb.undone;
  }

  // Blame + histograms.
  report.depth_histogram.assign(config.histogram_buckets + 1, 0);
  report.width_histogram.assign(config.histogram_buckets + 1, 0);
  std::map<std::uint32_t, BlameEntry> blame;
  report.cascades.reserve(cascades.size());
  for (auto& [root_idx, acc] : cascades) {
    acc.cascade.width = static_cast<std::uint32_t>(acc.objects.size());
    report.max_depth = std::max(report.max_depth, acc.cascade.depth);
    report.max_width = std::max(report.max_width, acc.cascade.width);
    const std::size_t db =
        std::min<std::size_t>(acc.cascade.depth - 1, config.histogram_buckets);
    const std::size_t wb =
        std::min<std::size_t>(acc.cascade.width - 1, config.histogram_buckets);
    ++report.depth_histogram[db];
    ++report.width_histogram[wb];

    BlameEntry& entry = blame[acc.cascade.blamed_object];
    entry.object = acc.cascade.blamed_object;
    entry.rollbacks_caused += acc.cascade.rollbacks;
    entry.events_undone += acc.cascade.events_undone;
    ++entry.cascades_started;
    report.cascades.push_back(acc.cascade);
  }
  std::stable_sort(report.cascades.begin(), report.cascades.end(),
                   [](const Cascade& a, const Cascade& b) {
                     return a.rollbacks > b.rollbacks;
                   });

  report.blame.reserve(blame.size());
  for (const auto& [object, entry] : blame) {
    report.blame.push_back(entry);
  }
  std::stable_sort(report.blame.begin(), report.blame.end(),
                   [](const BlameEntry& a, const BlameEntry& b) {
                     return a.rollbacks_caused > b.rollbacks_caused;
                   });
  if (report.blame.size() > config.max_blame_entries) {
    report.blame.resize(config.max_blame_entries);
  }
  return report;
}

// --- controller convergence -------------------------------------------------

/// One actor's observed trajectory of a scalar control variable.
struct ActorSeries {
  std::uint64_t decisions = 0;
  std::uint64_t changes = 0;
  std::uint64_t oscillations = 0;
  std::uint64_t last_change_ns = 0;
  int last_direction = 0;  // +1 rising, -1 falling
  double min_value = 0.0;
  double max_value = 0.0;
  double last_value = 0.0;
  bool seen = false;

  void observe(std::uint64_t wall_ns, double value) {
    ++decisions;
    if (!seen) {
      seen = true;
      min_value = max_value = last_value = value;
      return;
    }
    min_value = std::min(min_value, value);
    max_value = std::max(max_value, value);
    if (value != last_value) {
      ++changes;
      last_change_ns = wall_ns;
      const int direction = value > last_value ? 1 : -1;
      if (last_direction != 0 && direction != last_direction) {
        ++oscillations;
      }
      last_direction = direction;
      last_value = value;
    }
  }
};

SeriesStats merge_series(const std::map<std::uint32_t, ActorSeries>& actors,
                         std::uint64_t run_begin_ns) {
  SeriesStats out;
  double final_sum = 0.0;
  std::uint64_t last_change = 0;
  bool first = true;
  for (const auto& [actor, series] : actors) {
    out.decisions += series.decisions;
    out.value_changes += series.changes;
    out.oscillations += series.oscillations;
    last_change = std::max(last_change, series.last_change_ns);
    if (first) {
      out.min_value = series.min_value;
      out.max_value = series.max_value;
      first = false;
    } else {
      out.min_value = std::min(out.min_value, series.min_value);
      out.max_value = std::max(out.max_value, series.max_value);
    }
    final_sum += series.last_value;
  }
  if (!actors.empty()) {
    out.final_mean = final_sum / static_cast<double>(actors.size());
    out.settle_ns = last_change > run_begin_ns ? last_change - run_begin_ns : 0;
  }
  return out;
}

ConvergenceReport build_convergence(const RunTrace& trace,
                                    const AnalysisConfig& config,
                                    std::uint64_t run_begin_ns,
                                    std::uint64_t run_end_ns) {
  ConvergenceReport report;
  std::map<std::uint32_t, ActorSeries> chi;
  std::map<std::uint32_t, ActorSeries> optimism;
  std::map<std::uint32_t, ActorSeries> aggregation;

  struct ModeState {
    bool lazy = false;
    std::uint64_t since_ns = 0;
    bool seen = false;
  };
  std::map<std::uint32_t, ModeState> modes;
  std::uint64_t last_switch_ns = 0;
  std::uint64_t dead_zone_samples = 0;

  for (const LpTraceLog& log : trace.lps) {
    for (const TraceRecord& r : log.records) {
      switch (r.kind) {
        case TraceKind::CheckpointDecision: {
          const CheckpointDecisionInfo info = unpack_checkpoint_decision(r);
          chi[r.actor].observe(r.wall_ns, static_cast<double>(info.interval));
          break;
        }
        case TraceKind::OptimismDecision: {
          const OptimismDecisionInfo info = unpack_optimism_decision(r);
          optimism[r.actor].observe(r.wall_ns,
                                    static_cast<double>(info.window));
          break;
        }
        case TraceKind::AggregateFlush: {
          const AggregateFlushInfo info = unpack_aggregate_flush(r);
          aggregation[r.actor].observe(r.wall_ns, info.window_us);
          break;
        }
        case TraceKind::CancellationSwitch: {
          const CancellationSwitchInfo info = unpack_cancellation_switch(r);
          ModeState& state = modes[r.actor];
          if (!state.seen) {
            // The mode before the first switch is the other one; charge its
            // dwell from the run start.
            state.seen = true;
            state.lazy = !info.lazy;
            state.since_ns = run_begin_ns;
          }
          const std::uint64_t dwell =
              r.wall_ns > state.since_ns ? r.wall_ns - state.since_ns : 0;
          (state.lazy ? report.lazy_dwell_ns : report.aggressive_dwell_ns) +=
              dwell;
          state.lazy = info.lazy;
          state.since_ns = r.wall_ns;
          ++report.mode_switches;
          last_switch_ns = std::max(last_switch_ns, r.wall_ns);
          break;
        }
        case TraceKind::TelemetrySample: {
          if (is_object_sample(r)) {
            const ObjectSampleInfo info = unpack_object_sample(r);
            ++report.hr_samples;
            if (info.hit_ratio >= config.dead_zone_low &&
                info.hit_ratio < config.dead_zone_high) {
              ++dead_zone_samples;
            }
          }
          break;
        }
        default:
          break;
      }
    }
  }

  // Close the dwell intervals at the end of the run.
  for (auto& [actor, state] : modes) {
    const std::uint64_t dwell =
        run_end_ns > state.since_ns ? run_end_ns - state.since_ns : 0;
    (state.lazy ? report.lazy_dwell_ns : report.aggressive_dwell_ns) += dwell;
  }

  report.checkpoint_interval = merge_series(chi, run_begin_ns);
  report.optimism_window = merge_series(optimism, run_begin_ns);
  report.aggregation_window = merge_series(aggregation, run_begin_ns);

  const std::uint64_t total_dwell =
      report.lazy_dwell_ns + report.aggressive_dwell_ns;
  if (total_dwell > 0) {
    report.lazy_dwell_fraction = static_cast<double>(report.lazy_dwell_ns) /
                                 static_cast<double>(total_dwell);
  }
  if (report.mode_switches > 0 && last_switch_ns > run_begin_ns) {
    report.cancellation_settle_ns = last_switch_ns - run_begin_ns;
  }
  if (report.hr_samples > 0) {
    report.dead_zone_dwell_fraction =
        static_cast<double>(dead_zone_samples) /
        static_cast<double>(report.hr_samples);
  }
  return report;
}

// --- commit efficiency per epoch --------------------------------------------

std::vector<EpochStats> build_epochs(const RunTrace& trace) {
  // Per-LP streams split at GvtEpoch records; segments are keyed by the GVT
  // value announced at the segment start (0 for the bootstrap segment) and
  // merged across LPs.
  std::map<std::uint64_t, EpochStats> epochs;
  for (const LpTraceLog& log : trace.lps) {
    std::uint64_t key = 0;
    for (const TraceRecord& r : log.records) {
      EpochStats& epoch = epochs[key];
      epoch.gvt = key;
      switch (r.kind) {
        case TraceKind::GvtEpoch:
          key = r.vt;
          break;
        case TraceKind::EventsCommitted:
          // Fossil collection runs right after the epoch announcement, so
          // commits land in the segment keyed by the GVT that freed them.
          epochs[r.vt].gvt = r.vt;
          epochs[r.vt].committed += r.arg0;
          break;
        case TraceKind::RollbackEnd:
          ++epoch.rollbacks;
          epoch.rolled_back += r.arg0;
          break;
        case TraceKind::CoastForward:
          epoch.coast_events += r.arg0;
          epoch.coast_ns += r.arg1;
          break;
        default:
          break;
      }
    }
  }
  std::vector<EpochStats> out;
  out.reserve(epochs.size());
  for (const auto& [key, epoch] : epochs) {
    if (epoch.committed || epoch.rolled_back || epoch.rollbacks ||
        epoch.coast_events) {
      out.push_back(epoch);
    }
  }
  return out;
}

// --- rendering helpers ------------------------------------------------------

std::string fmt(double value) {
  if (!std::isfinite(value)) {
    return "0";
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

std::string pct(double fraction) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f%%",
                std::isfinite(fraction) ? fraction * 100.0 : 0.0);
  return buf;
}

std::string ms(std::uint64_t ns) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f ms", static_cast<double>(ns) / 1e6);
  return buf;
}

void series_row(std::ostream& os, const char* name, const SeriesStats& s) {
  if (!s.active()) {
    os << "| " << name << " | - | - | - | - | - | - |\n";
    return;
  }
  os << "| " << name << " | " << s.decisions << " | " << s.value_changes
     << " | " << s.oscillations << " | " << fmt(s.min_value) << ".."
     << fmt(s.max_value) << " | " << fmt(s.final_mean) << " | "
     << ms(s.settle_ns) << " |\n";
}

void series_json(std::ostream& os, const SeriesStats& s) {
  os << "{\"decisions\":" << s.decisions
     << ",\"value_changes\":" << s.value_changes
     << ",\"oscillations\":" << s.oscillations
     << ",\"settle_ns\":" << s.settle_ns << ",\"min\":" << fmt(s.min_value)
     << ",\"max\":" << fmt(s.max_value)
     << ",\"final_mean\":" << fmt(s.final_mean) << "}";
}

}  // namespace

AnalysisReport analyze(const RunTrace& trace, const AnalysisConfig& config) {
  AnalysisReport report;
  report.total_records = trace.total_records();
  bool first = true;
  for (const LpTraceLog& log : trace.lps) {
    report.dropped_records += log.dropped;
    if (!log.records.empty()) {
      // Per-LP streams are wall-monotone; front/back bracket the stream.
      const std::uint64_t begin = log.records.front().wall_ns;
      const std::uint64_t end = log.records.back().wall_ns;
      if (first) {
        report.run_begin_ns = begin;
        report.run_end_ns = end;
        first = false;
      } else {
        report.run_begin_ns = std::min(report.run_begin_ns, begin);
        report.run_end_ns = std::max(report.run_end_ns, end);
      }
    }
  }

  report.cascades = build_cascades(trace, config);
  report.convergence = build_convergence(trace, config, report.run_begin_ns,
                                         report.run_end_ns);
  report.epochs = build_epochs(trace);

  std::uint64_t committed = 0;
  std::uint64_t rolled_back = 0;
  for (const EpochStats& epoch : report.epochs) {
    committed += epoch.committed;
    rolled_back += epoch.rolled_back;
  }
  const double total = static_cast<double>(committed + rolled_back);
  report.overall_efficiency =
      total == 0.0 ? 1.0 : static_cast<double>(committed) / total;
  return report;
}

void write_analysis_markdown(std::ostream& os, const AnalysisReport& report) {
  os << "# Trace analysis\n\n";
  os << "- records: " << report.total_records << " (dropped "
     << report.dropped_records << ")\n";
  os << "- span: " << ms(report.run_end_ns - report.run_begin_ns) << "\n";
  os << "- commit efficiency: " << pct(report.overall_efficiency) << " over "
     << report.epochs.size() << " GVT epochs\n\n";

  const CascadeReport& c = report.cascades;
  os << "## Rollback cascades\n\n";
  os << "- rollbacks: " << c.total_rollbacks << " (" << c.primary_rollbacks
     << " primary, " << c.cascaded_rollbacks << " cascaded, "
     << c.chained_rollbacks << " chained to a parent)\n";
  os << "- events undone: " << c.total_events_undone << "\n";
  os << "- max cascade depth: " << c.max_depth << ", max width: " << c.max_width
     << "\n\n";
  if (!c.blame.empty()) {
    os << "| blamed object | rollbacks caused | events undone | cascades "
          "started |\n";
    os << "|---:|---:|---:|---:|\n";
    for (const BlameEntry& entry : c.blame) {
      os << "| " << entry.object << " | " << entry.rollbacks_caused << " | "
         << entry.events_undone << " | " << entry.cascades_started << " |\n";
    }
    os << "\n";
  }
  if (c.max_depth > 1 || c.max_width > 1) {
    os << "| bucket | depth | width |\n|---:|---:|---:|\n";
    for (std::size_t i = 0; i < c.depth_histogram.size(); ++i) {
      if (c.depth_histogram[i] == 0 && c.width_histogram[i] == 0) {
        continue;
      }
      if (i + 1 == c.depth_histogram.size()) {
        os << "| >" << i << " | ";
      } else {
        os << "| " << i + 1 << " | ";
      }
      os << c.depth_histogram[i] << " | " << c.width_histogram[i] << " |\n";
    }
    os << "\n";
  }

  const ConvergenceReport& v = report.convergence;
  os << "## Controller convergence\n\n";
  os << "| controller | decisions | changes | oscillations | range | final "
        "mean | settle |\n";
  os << "|---|---:|---:|---:|---:|---:|---:|\n";
  series_row(os, "chi (checkpoint interval)", v.checkpoint_interval);
  series_row(os, "W (optimism window)", v.optimism_window);
  series_row(os, "aggregation window (us)", v.aggregation_window);
  os << "\n";
  os << "- cancellation: " << v.mode_switches << " A<->L switches, lazy dwell "
     << pct(v.lazy_dwell_fraction) << ", settled after "
     << ms(v.cancellation_settle_ns) << "\n";
  os << "- Hit Ratio: " << v.hr_samples << " samples, "
     << pct(v.dead_zone_dwell_fraction) << " inside the dead zone\n\n";

  os << "## Commit efficiency per GVT epoch\n\n";
  if (report.epochs.empty()) {
    os << "(no epochs traced)\n";
    return;
  }
  os << "| gvt | committed | rolled back | rollbacks | coast events | coast "
        "time | efficiency |\n";
  os << "|---:|---:|---:|---:|---:|---:|---:|\n";
  constexpr std::size_t kMaxEpochRows = 24;
  const std::size_t rows = std::min(report.epochs.size(), kMaxEpochRows);
  for (std::size_t i = 0; i < rows; ++i) {
    const EpochStats& e = report.epochs[i];
    if (e.gvt == UINT64_MAX) {
      os << "| end | ";
    } else {
      os << "| " << e.gvt << " | ";
    }
    os << e.committed << " | " << e.rolled_back << " | " << e.rollbacks
       << " | " << e.coast_events << " | " << ms(e.coast_ns) << " | "
       << pct(e.efficiency()) << " |\n";
  }
  if (report.epochs.size() > rows) {
    os << "\n(" << report.epochs.size() - rows << " more epochs omitted)\n";
  }
}

void write_analysis_json(std::ostream& os, const AnalysisReport& report) {
  const CascadeReport& c = report.cascades;
  const ConvergenceReport& v = report.convergence;
  os << "{\"run_span_ns\":" << report.run_end_ns - report.run_begin_ns
     << ",\"total_records\":" << report.total_records
     << ",\"dropped_records\":" << report.dropped_records
     << ",\"overall_efficiency\":" << fmt(report.overall_efficiency)
     << ",\"epoch_count\":" << report.epochs.size();

  std::uint64_t committed = 0;
  std::uint64_t rolled_back = 0;
  std::uint64_t coast_events = 0;
  std::uint64_t coast_ns = 0;
  double min_efficiency = 1.0;
  for (const EpochStats& epoch : report.epochs) {
    committed += epoch.committed;
    rolled_back += epoch.rolled_back;
    coast_events += epoch.coast_events;
    coast_ns += epoch.coast_ns;
    min_efficiency = std::min(min_efficiency, epoch.efficiency());
  }
  os << ",\"committed\":" << committed << ",\"rolled_back\":" << rolled_back
     << ",\"coast_events\":" << coast_events << ",\"coast_ns\":" << coast_ns
     << ",\"min_epoch_efficiency\":" << fmt(min_efficiency);

  os << ",\"cascades\":{\"total_rollbacks\":" << c.total_rollbacks
     << ",\"primary\":" << c.primary_rollbacks
     << ",\"cascaded\":" << c.cascaded_rollbacks
     << ",\"chained\":" << c.chained_rollbacks
     << ",\"events_undone\":" << c.total_events_undone
     << ",\"max_depth\":" << c.max_depth << ",\"max_width\":" << c.max_width
     << ",\"blame\":[";
  for (std::size_t i = 0; i < c.blame.size(); ++i) {
    const BlameEntry& entry = c.blame[i];
    os << (i ? "," : "") << "{\"object\":" << entry.object
       << ",\"rollbacks_caused\":" << entry.rollbacks_caused
       << ",\"events_undone\":" << entry.events_undone
       << ",\"cascades_started\":" << entry.cascades_started << "}";
  }
  os << "]}";

  os << ",\"convergence\":{\"chi\":";
  series_json(os, v.checkpoint_interval);
  os << ",\"optimism\":";
  series_json(os, v.optimism_window);
  os << ",\"aggregation\":";
  series_json(os, v.aggregation_window);
  os << ",\"cancellation\":{\"mode_switches\":" << v.mode_switches
     << ",\"lazy_dwell_fraction\":" << fmt(v.lazy_dwell_fraction)
     << ",\"settle_ns\":" << v.cancellation_settle_ns
     << ",\"hr_samples\":" << v.hr_samples
     << ",\"dead_zone_dwell_fraction\":" << fmt(v.dead_zone_dwell_fraction)
     << "}}}";
}

}  // namespace otw::obs
