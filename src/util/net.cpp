#include "otw/util/net.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>

namespace otw::util::net {

std::uint64_t mono_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void throw_errno(const std::string& context, const std::string& what) {
  throw std::runtime_error(context + ": " + what + ": " + std::strerror(errno));
}

void set_nonblocking(int fd, const std::string& context) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_errno(context, "fcntl(O_NONBLOCK)");
  }
}

void set_nodelay(int fd, const std::string& context) {
  const int one = 1;
  if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one) < 0) {
    throw_errno(context, "setsockopt(TCP_NODELAY)");
  }
}

void wait_for(int fd, short events, const std::string& context) {
  pollfd p{fd, events, 0};
  for (;;) {
    const int rc = ::poll(&p, 1, -1);
    if (rc > 0) {
      return;
    }
    if (rc < 0 && errno != EINTR) {
      throw_errno(context, "poll");
    }
  }
}

void write_all(int fd, const std::uint8_t* data, std::size_t len,
               const std::string& context) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      wait_for(fd, POLLOUT, context);
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    throw_errno(context, "send");
  }
}

bool read_exact(int fd, std::uint8_t* data, std::size_t len,
                const std::string& context) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::recv(fd, data + off, len - off, 0);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) {
      if (off == 0) {
        return false;
      }
      throw std::runtime_error(context + ": peer closed mid-frame");
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      wait_for(fd, POLLIN, context);
      continue;
    }
    if (errno != EINTR) {
      throw_errno(context, "recv");
    }
  }
  return true;
}

int listen_loopback(std::uint16_t port, int backlog, std::uint16_t& bound_port,
                    const std::string& context) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw_errno(context, "socket (listen)");
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    ::close(fd);
    throw_errno(context, "bind");
  }
  if (::listen(fd, backlog) < 0) {
    ::close(fd);
    throw_errno(context, "listen");
  }
  socklen_t addr_len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) < 0) {
    ::close(fd);
    throw_errno(context, "getsockname");
  }
  bound_port = ntohs(addr.sin_port);
  return fd;
}

int connect_loopback(std::uint16_t port, const std::string& context) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw_errno(context, "socket");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    ::close(fd);
    throw_errno(context, "connect");
  }
  return fd;
}

}  // namespace otw::util::net
