// Fixed-capacity sliding windows.
//
// BoolWindow backs the cancellation controller's Hit Ratio filter: it keeps
// the outcome of the last `depth` output-message comparisons (the paper's
// "Filter Depth") and reports the fraction of hits in O(1).
// ValueWindow keeps the last N doubles for moving-average filtering.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "otw/util/assert.hpp"

namespace otw::util {

/// Ring of the most recent `capacity` boolean samples with an O(1) popcount.
class BoolWindow {
 public:
  explicit BoolWindow(std::size_t capacity) : slots_(capacity, false) {
    OTW_REQUIRE(capacity > 0);
  }

  void push(bool value) noexcept {
    if (size_ == slots_.size()) {
      if (slots_[head_]) {
        --ones_;
      }
    } else {
      ++size_;
    }
    slots_[head_] = value;
    if (value) {
      ++ones_;
    }
    head_ = (head_ + 1) % slots_.size();
  }

  void clear() noexcept {
    size_ = 0;
    ones_ = 0;
    head_ = 0;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool full() const noexcept { return size_ == slots_.size(); }
  [[nodiscard]] std::size_t ones() const noexcept { return ones_; }

  /// Fraction of true samples among those present; 0 when empty.
  [[nodiscard]] double ratio() const noexcept {
    return size_ == 0 ? 0.0
                      : static_cast<double>(ones_) / static_cast<double>(size_);
  }

  /// Fraction of true samples over the full capacity (the paper divides by
  /// Filter Depth, not by the number of samples seen so far).
  [[nodiscard]] double ratio_over_capacity() const noexcept {
    return static_cast<double>(ones_) / static_cast<double>(slots_.size());
  }

 private:
  std::vector<bool> slots_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::size_t ones_ = 0;
};

/// Ring of the most recent `capacity` doubles with an O(1) running sum.
class ValueWindow {
 public:
  explicit ValueWindow(std::size_t capacity) : slots_(capacity, 0.0) {
    OTW_REQUIRE(capacity > 0);
  }

  void push(double value) noexcept {
    if (size_ == slots_.size()) {
      sum_ -= slots_[head_];
    } else {
      ++size_;
    }
    slots_[head_] = value;
    sum_ += value;
    head_ = (head_ + 1) % slots_.size();
  }

  void clear() noexcept {
    size_ = 0;
    sum_ = 0.0;
    head_ = 0;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool full() const noexcept { return size_ == slots_.size(); }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept {
    return size_ == 0 ? 0.0 : sum_ / static_cast<double>(size_);
  }

 private:
  std::vector<double> slots_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  double sum_ = 0.0;
};

}  // namespace otw::util
