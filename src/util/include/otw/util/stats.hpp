// Statistics accumulators used by the kernel instrumentation and the bench
// harness: streaming mean/variance (Welford), min/max tracking, and a
// logarithmically bucketed histogram for long-tailed quantities such as
// rollback lengths.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace otw::util {

/// Streaming accumulator: count, mean, variance (Welford), min, max, sum.
class RunningStat {
 public:
  void add(double x) noexcept;
  void merge(const RunningStat& other) noexcept;
  void reset() noexcept { *this = RunningStat{}; }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept { return count_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return count_ ? max_ : 0.0; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Histogram with power-of-two buckets: bucket i counts values in
/// [2^(i-1), 2^i) with bucket 0 holding value 0. Suited to rollback lengths,
/// aggregate sizes, queue depths.
class Log2Histogram {
 public:
  void add(std::uint64_t value) noexcept;
  void merge(const Log2Histogram& other);

  /// Rebuilds a histogram from raw bucket counts (bucket i as produced by
  /// bucket(i)) — the wire-deserialization inverse of reading the buckets.
  static Log2Histogram from_buckets(std::vector<std::uint64_t> buckets);

  [[nodiscard]] std::uint64_t count() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const noexcept {
    return i < buckets_.size() ? buckets_[i] : 0;
  }
  [[nodiscard]] std::size_t num_buckets() const noexcept { return buckets_.size(); }
  /// Smallest upper bound v such that at least q (in [0,1]) of the mass is <= v.
  [[nodiscard]] std::uint64_t quantile_upper_bound(double q) const noexcept;

  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::uint64_t> buckets_;
  std::uint64_t total_ = 0;
};

std::ostream& operator<<(std::ostream& os, const RunningStat& stat);

}  // namespace otw::util
