// Small POSIX socket helpers shared by every localhost TCP surface in the
// tree: the distributed engine's coordinator/worker streams (PR 5) and the
// live-introspection scrape endpoint (obs::live). All loopback-only; no name
// resolution, no TLS. Errors surface as std::runtime_error carrying
// strerror(errno) and a caller-supplied context prefix.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace otw::util::net {

/// Monotonic wall clock, nanoseconds (steady_clock since epoch).
[[nodiscard]] std::uint64_t mono_ns() noexcept;

/// Throws std::runtime_error("<context>: <what>: <strerror(errno)>").
[[noreturn]] void throw_errno(const std::string& context, const std::string& what);

void set_nonblocking(int fd, const std::string& context);
/// Disables Nagle. Batching is the application's job (DyMA), not the kernel's.
void set_nodelay(int fd, const std::string& context);

/// Blocking wait for one poll event on a (possibly non-blocking) fd.
/// `events` is a poll(2) event mask (POLLIN / POLLOUT).
void wait_for(int fd, short events, const std::string& context);

/// Writes the whole buffer, polling through EAGAIN (fd may be non-blocking).
void write_all(int fd, const std::uint8_t* data, std::size_t len,
               const std::string& context);

/// Reads exactly len bytes, polling through EAGAIN. False on clean EOF at
/// offset 0; throws on EOF mid-object.
bool read_exact(int fd, std::uint8_t* data, std::size_t len,
                const std::string& context);

/// Binds and listens on 127.0.0.1:port (port 0 = ephemeral). Returns the
/// listening fd; `bound_port` receives the actual port.
[[nodiscard]] int listen_loopback(std::uint16_t port, int backlog,
                                  std::uint16_t& bound_port,
                                  const std::string& context);

/// Blocking connect to 127.0.0.1:port. Returns the connected fd.
[[nodiscard]] int connect_loopback(std::uint16_t port, const std::string& context);

}  // namespace otw::util::net
