// Thread-safe recycler for std::vector buffers that cross thread boundaries.
//
// The threaded engine ships event batches as std::vector<Event> inside
// messages: the sending LP's thread fills the vector, the receiving LP's
// thread drains it and destroys the message. Without recycling, every
// physical message is a heap allocation on one thread and a free on another
// — the classic producer/consumer malloc ping-pong. A BufferPool breaks it:
// released vectors keep their capacity and are handed to the next acquire(),
// so steady-state batch traffic allocates nothing.
//
// Unlike tw::SlabPool this pool IS thread-safe (one mutex around a small
// vector-of-vectors); it is shared by all LPs of a run and must outlive
// every message whose destructor releases into it (the kernel guarantees
// this: messages die inside the engine run, the pool dies with the
// assembly).
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

namespace otw::util {

template <typename T>
class BufferPool {
 public:
  explicit BufferPool(std::size_t capacity = 256) : capacity_(capacity) {
    free_.reserve(capacity_);
  }

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// An empty vector, reusing a released buffer's capacity when available.
  [[nodiscard]] std::vector<T> acquire() {
    std::lock_guard lock(mutex_);
    if (free_.empty()) {
      return {};
    }
    std::vector<T> buf = std::move(free_.back());
    free_.pop_back();
    ++reuses_;
    return buf;
  }

  /// Parks `buf` (cleared, capacity kept) for a future acquire(). Beyond
  /// `capacity` parked buffers it simply destroys it.
  void release(std::vector<T>&& buf) noexcept {
    buf.clear();
    if (buf.capacity() == 0) {
      return;
    }
    std::lock_guard lock(mutex_);
    if (free_.size() < capacity_) {
      free_.push_back(std::move(buf));
    }
  }

  [[nodiscard]] std::uint64_t reuses() const noexcept {
    std::lock_guard lock(mutex_);
    return reuses_;
  }

  [[nodiscard]] std::size_t parked() const noexcept {
    std::lock_guard lock(mutex_);
    return free_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::vector<std::vector<T>> free_;
  std::size_t capacity_;
  std::uint64_t reuses_ = 0;
};

}  // namespace otw::util
