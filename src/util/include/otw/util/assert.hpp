// Lightweight contract checking for the simulator.
//
// OTW_ASSERT   - internal invariant; aborts in debug builds, compiled out in
//                NDEBUG builds (hot paths).
// OTW_REQUIRE  - precondition on public API input; always checked, throws
//                otw::ContractViolation so callers (and tests) can observe it.
#pragma once

#include <cassert>
#include <stdexcept>
#include <string>

namespace otw {

/// Thrown when a public-API precondition is violated.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void require_failed(const char* expr, const char* file, int line,
                                        const std::string& msg) {
  std::string what = std::string("requirement failed: ") + expr + " at " + file + ":" +
                     std::to_string(line);
  if (!msg.empty()) {
    what += " (" + msg + ")";
  }
  throw ContractViolation(what);
}
}  // namespace detail

}  // namespace otw

#define OTW_ASSERT(expr) assert(expr)

#define OTW_REQUIRE(expr)                                                  \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::otw::detail::require_failed(#expr, __FILE__, __LINE__, {});        \
    }                                                                      \
  } while (false)

#define OTW_REQUIRE_MSG(expr, msg)                                         \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::otw::detail::require_failed(#expr, __FILE__, __LINE__, (msg));     \
    }                                                                      \
  } while (false)
