// Fixed-capacity inline buffer for trivially-copyable event payloads.
//
// Lazy cancellation decides hits by comparing a regenerated output message
// against the prematurely sent one, so payload equality must be cheap and
// exact. Restricting payloads to trivially-copyable types makes equality a
// byte comparison, copies memcpy-fast, and events free of heap traffic.
#pragma once

#include <array>
#include <cstddef>
#include <cstring>
#include <type_traits>

#include "otw/util/assert.hpp"

namespace otw::util {

template <std::size_t Capacity>
class PodBuffer {
 public:
  static constexpr std::size_t capacity = Capacity;

  PodBuffer() noexcept = default;

  template <typename T>
  static PodBuffer from(const T& value) noexcept {
    static_assert(std::is_trivially_copyable_v<T>, "payload must be a POD type");
    static_assert(sizeof(T) <= Capacity, "payload does not fit in event buffer");
    PodBuffer buf;
    std::memcpy(buf.bytes_.data(), &value, sizeof(T));
    buf.size_ = sizeof(T);
    return buf;
  }

  /// Rebuilds a buffer from raw bytes (wire deserialization). The content is
  /// exactly the bytes a peer's buffer held, so equality semantics survive
  /// the round trip.
  static PodBuffer from_bytes(const void* data, std::size_t len) noexcept {
    OTW_ASSERT(len <= Capacity);
    PodBuffer buf;
    if (len > 0) {
      std::memcpy(buf.bytes_.data(), data, len);
    }
    buf.size_ = len;
    return buf;
  }

  template <typename T>
  [[nodiscard]] T as() const noexcept {
    static_assert(std::is_trivially_copyable_v<T>, "payload must be a POD type");
    static_assert(sizeof(T) <= Capacity, "payload does not fit in event buffer");
    OTW_ASSERT(size_ == sizeof(T));
    T value;
    std::memcpy(&value, bytes_.data(), sizeof(T));
    return value;
  }

  template <typename T>
  [[nodiscard]] bool holds() const noexcept {
    return size_ == sizeof(T);
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] const std::byte* data() const noexcept { return bytes_.data(); }

  friend bool operator==(const PodBuffer& a, const PodBuffer& b) noexcept {
    return a.size_ == b.size_ &&
           std::memcmp(a.bytes_.data(), b.bytes_.data(), a.size_) == 0;
  }

 private:
  alignas(std::max_align_t) std::array<std::byte, Capacity> bytes_{};
  std::size_t size_ = 0;
};

}  // namespace otw::util
