// Deterministic, per-object random number generation.
//
// Simulation objects each own an Xoshiro256** stream seeded via SplitMix64
// from (global seed, object id), so results are reproducible regardless of
// how objects are partitioned into LPs or how LPs interleave. The engine
// state is trivially copyable, so it can live inside checkpointed object
// state and roll back with it.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

#include "otw/util/assert.hpp"

namespace otw::util {

/// SplitMix64 step; used for seeding and as a cheap stateless mixer.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Xoshiro256** PRNG (Blackman & Vigna). Trivially copyable so it can be
/// embedded in rollback-checkpointed state.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  constexpr Xoshiro256() noexcept : Xoshiro256(0xD0E5D0E5D0E5D0E5ULL) {}

  constexpr explicit Xoshiro256(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) {
      word = splitmix64(sm);
    }
  }

  /// Seeds a stream that is decorrelated across (seed, stream) pairs.
  constexpr Xoshiro256(std::uint64_t seed, std::uint64_t stream) noexcept {
    std::uint64_t sm = seed ^ (0x9E3779B97F4A7C15ULL * (stream + 1));
    for (auto& word : state_) {
      word = splitmix64(sm);
    }
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound); bound must be > 0. Uses Lemire's
  /// multiply-shift rejection method (unbiased).
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t next_range(std::uint64_t lo, std::uint64_t hi) noexcept {
    OTW_ASSERT(lo <= hi);
    return lo + next_below(hi - lo + 1);
  }

  /// True with probability p (clamped to [0,1]).
  bool next_bernoulli(double p) noexcept { return next_double() < p; }

  /// Exponentially distributed value with the given mean (> 0).
  double next_exponential(double mean) noexcept;

  friend constexpr bool operator==(const Xoshiro256&, const Xoshiro256&) = default;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

static_assert(std::is_trivially_copyable_v<Xoshiro256>,
              "RNG must be embeddable in checkpointed state");

}  // namespace otw::util
