#include "otw/util/rng.hpp"

#include <cmath>

namespace otw::util {

std::uint64_t Xoshiro256::next_below(std::uint64_t bound) noexcept {
  OTW_ASSERT(bound > 0);
  // Lemire's method: multiply into a 128-bit product; reject the small
  // biased region of the low word.
  __extension__ typedef unsigned __int128 u128;
  std::uint64_t x = (*this)();
  u128 m = static_cast<u128>(x) * static_cast<u128>(bound);
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<u128>(x) * static_cast<u128>(bound);
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Xoshiro256::next_exponential(double mean) noexcept {
  OTW_ASSERT(mean > 0.0);
  // Avoid log(0) by nudging u into (0, 1].
  double u = 1.0 - next_double();
  return -mean * std::log(u);
}

}  // namespace otw::util
