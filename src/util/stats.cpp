#include "otw/util/stats.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <ostream>
#include <sstream>

namespace otw::util {

void RunningStat::add(double x) noexcept {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStat::merge(const RunningStat& other) noexcept {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

double RunningStat::variance() const noexcept {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double RunningStat::stddev() const noexcept { return std::sqrt(variance()); }

namespace {
std::size_t bucket_index(std::uint64_t value) noexcept {
  return value == 0 ? 0 : static_cast<std::size_t>(std::bit_width(value));
}
}  // namespace

void Log2Histogram::add(std::uint64_t value) noexcept {
  const std::size_t idx = bucket_index(value);
  if (idx >= buckets_.size()) {
    buckets_.resize(idx + 1, 0);
  }
  ++buckets_[idx];
  ++total_;
}

Log2Histogram Log2Histogram::from_buckets(std::vector<std::uint64_t> buckets) {
  Log2Histogram h;
  h.buckets_ = std::move(buckets);
  for (const std::uint64_t count : h.buckets_) {
    h.total_ += count;
  }
  return h;
}

void Log2Histogram::merge(const Log2Histogram& other) {
  if (other.buckets_.size() > buckets_.size()) {
    buckets_.resize(other.buckets_.size(), 0);
  }
  for (std::size_t i = 0; i < other.buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  total_ += other.total_;
}

std::uint64_t Log2Histogram::quantile_upper_bound(double q) const noexcept {
  if (total_ == 0) {
    return 0;
  }
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(total_)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target) {
      return i == 0 ? 0 : (std::uint64_t{1} << i) - 1;
    }
  }
  return (std::uint64_t{1} << buckets_.size()) - 1;
}

std::string Log2Histogram::to_string() const {
  std::ostringstream os;
  os << "hist[n=" << total_ << "]";
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) {
      continue;
    }
    const std::uint64_t lo = i == 0 ? 0 : (std::uint64_t{1} << (i - 1));
    const std::uint64_t hi = i == 0 ? 0 : (std::uint64_t{1} << i) - 1;
    os << " [" << lo << ".." << hi << "]=" << buckets_[i];
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const RunningStat& stat) {
  return os << "n=" << stat.count() << " mean=" << stat.mean()
            << " sd=" << stat.stddev() << " min=" << stat.min()
            << " max=" << stat.max();
}

}  // namespace otw::util
