#include "otw/platform/threaded.hpp"

#include <atomic>
#include <chrono>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>

#include "otw/util/assert.hpp"

namespace otw::platform {

namespace {

using SteadyClock = std::chrono::steady_clock;

struct Mailbox {
  std::mutex mutex;
  std::deque<std::unique_ptr<EngineMessage>> queue;

  void push(std::unique_ptr<EngineMessage> msg) {
    const std::scoped_lock lock(mutex);
    queue.push_back(std::move(msg));
  }

  std::unique_ptr<EngineMessage> pop() {
    const std::scoped_lock lock(mutex);
    if (queue.empty()) {
      return nullptr;
    }
    auto msg = std::move(queue.front());
    queue.pop_front();
    return msg;
  }
};

struct Shared {
  std::vector<Mailbox> mailboxes;
  std::atomic<std::uint64_t> physical_messages{0};
  std::atomic<std::uint64_t> wire_bytes{0};
  std::atomic<std::uint64_t> steps{0};
  SteadyClock::time_point start;

  explicit Shared(std::size_t n) : mailboxes(n) {}
};

class ThreadContext final : public LpContext {
 public:
  ThreadContext(LpId self, LpId num_lps, const ThreadedConfig& config, Shared& shared)
      : self_(self), num_lps_(num_lps), config_(config), shared_(shared) {}

  [[nodiscard]] LpId self() const noexcept override { return self_; }
  [[nodiscard]] LpId num_lps() const noexcept override { return num_lps_; }

  [[nodiscard]] std::uint64_t now_ns() const noexcept override {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(SteadyClock::now() -
                                                             shared_.start)
            .count());
  }

  void charge(std::uint64_t ns) noexcept override {
    busy_ns_ += ns;
    if (config_.spin_on_charge && ns > 0) {
      const auto target =
          SteadyClock::now() +
          std::chrono::nanoseconds(static_cast<std::uint64_t>(
              static_cast<double>(ns) * config_.spin_scale));
      while (SteadyClock::now() < target) {
        // busy wait: models the CPU cost of the charged work
      }
    }
  }

  void send(LpId dst, std::unique_ptr<EngineMessage> msg) override {
    OTW_REQUIRE(dst < num_lps_);
    OTW_REQUIRE(msg != nullptr);
    const std::uint64_t bytes = msg->wire_bytes();
    charge(config_.costs.send_cost_ns(bytes));
    shared_.mailboxes[dst].push(std::move(msg));
    shared_.physical_messages.fetch_add(1, std::memory_order_relaxed);
    shared_.wire_bytes.fetch_add(bytes, std::memory_order_relaxed);
  }

  std::unique_ptr<EngineMessage> poll() override {
    auto msg = shared_.mailboxes[self_].pop();
    if (msg != nullptr) {
      charge(config_.costs.msg_recv_overhead_ns);
    }
    return msg;
  }

  [[nodiscard]] const CostModel& costs() const noexcept override {
    return config_.costs;
  }

  [[nodiscard]] std::uint64_t busy_ns() const noexcept { return busy_ns_; }

 private:
  LpId self_;
  LpId num_lps_;
  const ThreadedConfig& config_;
  Shared& shared_;
  std::uint64_t busy_ns_ = 0;
};

}  // namespace

EngineRunResult ThreadedEngine::run(const std::vector<LpRunner*>& lps) {
  OTW_REQUIRE(!lps.empty());
  for (auto* lp : lps) {
    OTW_REQUIRE(lp != nullptr);
  }

  const auto n = static_cast<LpId>(lps.size());
  Shared shared(n);
  shared.start = SteadyClock::now();

  std::vector<std::uint64_t> busy(n, 0);
  std::exception_ptr first_error;
  std::mutex error_mutex;

  {
    std::vector<std::jthread> threads;
    threads.reserve(n);
    for (LpId i = 0; i < n; ++i) {
      threads.emplace_back([&, i] {
        ThreadContext ctx(i, n, config_, shared);
        try {
          StepStatus status = StepStatus::Active;
          while (status != StepStatus::Done) {
            status = lps[i]->step(ctx);
            shared.steps.fetch_add(1, std::memory_order_relaxed);
            if (status == StepStatus::Idle) {
              std::this_thread::sleep_for(
                  std::chrono::microseconds(config_.idle_sleep_us));
            }
          }
        } catch (...) {
          const std::scoped_lock lock(error_mutex);
          if (!first_error) {
            first_error = std::current_exception();
          }
        }
        busy[i] = ctx.busy_ns();
      });
    }
  }  // jthreads join here

  if (first_error) {
    std::rethrow_exception(first_error);
  }

  EngineRunResult result;
  result.execution_time_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(SteadyClock::now() -
                                                           shared.start)
          .count());
  result.lp_busy_ns = std::move(busy);
  result.physical_messages = shared.physical_messages.load();
  result.wire_bytes = shared.wire_bytes.load();
  result.steps = shared.steps.load();
  return result;
}

}  // namespace otw::platform
