// M-worker : N-LP work-stealing scheduler (see threaded.hpp).
//
// Concurrency architecture:
//   * LP state machine — every LP is Idle, Scheduled, Running,
//     RunningNotified or Done (one atomic word). An LP is in at most ONE run
//     queue (only the *->Scheduled transition enqueues) and is stepped by at
//     most one worker (only the Scheduled->Running CAS claims it), so all
//     LP-affine data (kernel state, mailbox consumer cursor, busy counter)
//     is handed between workers through these acquire/release transitions.
//   * Message flow — send() pushes into the destination's MPSC mailbox and
//     then notifies: Idle LPs become Scheduled (and enqueued), Running LPs
//     become RunningNotified so their worker re-enqueues them after the
//     step. Push-before-notify makes a message visible before the LP can be
//     stepped for it; a transiently unpublished ring cell is therefore never
//     lost, only deferred to the notify that follows it.
//   * Parking — a worker with no runnable LP parks on a condition variable.
//     The enqueue->wake and park->recheck sides are ordered by seq_cst
//     fences (Dekker handshake on the parked counter), so a wake-up cannot
//     be lost; a bounded safety timeout exists only as a backstop and is
//     counted, never relied upon.
//   * request_wakeup — deadlines go to a timer wheel; workers advance it
//     opportunistically each loop and bound their park timeout by its next
//     deadline, so an Idle LP with a pending aggregation-window or GVT
//     rate-limit expiry is re-stepped on time with no polling.
#include "otw/platform/threaded.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "otw/obs/trace.hpp"
#include "otw/platform/mpsc_mailbox.hpp"
#include "otw/platform/steal_queue.hpp"
#include "otw/platform/timer_wheel.hpp"
#include "otw/util/assert.hpp"
#include "otw/util/rng.hpp"

namespace otw::platform {

namespace {

using SteadyClock = std::chrono::steady_clock;

enum LpStateValue : std::uint32_t {
  kIdle = 0,            ///< parked; a notify enqueues it
  kScheduled = 1,       ///< in exactly one run queue
  kRunning = 2,         ///< being stepped by a worker
  kRunningNotified = 3, ///< being stepped; re-enqueue when the step returns
  kDone = 4,            ///< finished; never stepped again
};

struct LpSlot {
  explicit LpSlot(std::size_t mailbox_capacity) : mailbox(mailbox_capacity) {}

  std::atomic<std::uint32_t> state{kScheduled};
  MpscMailbox<std::unique_ptr<EngineMessage>> mailbox;
  // Accessed only by the worker currently running this LP; handed off
  // through the state transitions.
  std::uint64_t busy_ns = 0;
  std::uint64_t wake_hint_ns = TimerWheel::kNever;
};

struct WorkerData {
  WorkerData(std::uint32_t queue_capacity, std::uint64_t seed,
             std::size_t trace_capacity)
      : queue(queue_capacity), rng(seed) {
    if (trace_capacity > 0) {
      ring = std::make_unique<obs::TraceRing>(trace_capacity);
    }
  }

  StealQueue queue;
  util::Xoshiro256 rng;  ///< steal-victim selection
  WorkerStats stats;
  std::vector<std::uint32_t> fired;  ///< timer-advance scratch buffer
  std::unique_ptr<obs::TraceRing> ring;  ///< scheduler trace (optional)
  std::uint64_t physical_messages = 0;
  std::uint64_t wire_bytes = 0;
};

class Scheduler {
 public:
  Scheduler(const ThreadedConfig& config, const std::vector<LpRunner*>& lps)
      : config_(config),
        runners_(lps),
        n_(static_cast<std::uint32_t>(lps.size())),
        num_workers_(resolve_workers(config, n_)),
        wheel_(config.timer_tick_ns),
        live_(n_) {
    for (std::uint32_t i = 0; i < n_; ++i) {
      slots_.emplace_back(config_.mailbox_capacity);
    }
    std::uint64_t seed = 0x5EEDC0DE;
    for (std::uint32_t w = 0; w < num_workers_; ++w) {
      workers_.emplace_back(n_, util::splitmix64(seed),
                            config_.scheduler_trace_capacity);
    }
  }

  EngineRunResult run() {
    start_ = SteadyClock::now();
    // Initial placement: round-robin across worker queues (states start
    // Scheduled, so no notify/wake machinery is needed before launch).
    for (std::uint32_t i = 0; i < n_; ++i) {
      const bool pushed = workers_[i % num_workers_].queue.push(i);
      OTW_REQUIRE_MSG(pushed, "run queue undersized at seed time");
    }
    {
      std::vector<std::jthread> threads;
      threads.reserve(num_workers_);
      for (std::uint32_t w = 0; w < num_workers_; ++w) {
        threads.emplace_back([this, w] { worker_entry(w); });
      }
    }  // jthreads join here
    if (first_error_) {
      std::rethrow_exception(first_error_);
    }
    return collect();
  }

  // --- services used by ThreadContext ---------------------------------------

  [[nodiscard]] std::uint64_t now_ns() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            SteadyClock::now() - start_)
            .count());
  }

  [[nodiscard]] const ThreadedConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::uint32_t num_lps() const noexcept { return n_; }
  [[nodiscard]] LpSlot& slot(std::uint32_t lp) noexcept { return slots_[lp]; }
  [[nodiscard]] WorkerData& worker(std::uint32_t w) noexcept { return workers_[w]; }

  /// Makes `lp` runnable (message arrival or timer expiry). `enqueuer` is the
  /// calling worker; new work always lands in its own queue (thieves spread
  /// it). Safe against every LP state.
  void notify(std::uint32_t lp, std::uint32_t enqueuer) {
    auto& state = slots_[lp].state;
    std::uint32_t s = state.load(std::memory_order_acquire);
    for (;;) {
      if (s == kIdle) {
        if (state.compare_exchange_weak(s, kScheduled,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
          enqueue(lp, enqueuer);
          return;
        }
      } else if (s == kRunning) {
        if (state.compare_exchange_weak(s, kRunningNotified,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
          return;
        }
      } else {
        return;  // Scheduled / RunningNotified / Done: nothing to do
      }
    }
  }

 private:
  static std::uint32_t resolve_workers(const ThreadedConfig& config,
                                       std::uint32_t n) {
    if (config.num_workers > 0) {
      return config.num_workers;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return std::max(1u, std::min(hw != 0 ? hw : 2u, n));
  }

  void record(std::uint32_t w, obs::TraceKind kind, std::uint64_t wall_ns,
              std::uint64_t arg0, std::uint64_t arg1) {
    if (workers_[w].ring) {
      workers_[w].ring->push(
          obs::TraceRecord{wall_ns, 0, arg0, arg1, w, kind});
    }
  }

  /// The *->Scheduled winner calls this exactly once per transition, so each
  /// LP occupies at most one queue slot and push can never overflow.
  void enqueue(std::uint32_t lp, std::uint32_t w) {
    const bool pushed = workers_[w].queue.push(lp);
    OTW_REQUIRE_MSG(pushed, "run queue overflow: LP enqueued twice");
    if (advertised_parked() > 0) {
      wake_one(w);
    }
  }

  /// Dekker handshake with park(), phrased as a seq_cst RMW chain on
  /// `parked_` (not a standalone fence — TSan cannot model fences, RMWs it
  /// models exactly). Either this RMW follows the parker's +1 in the
  /// modification order (we read parked > 0 and hand out a token), or it
  /// precedes it — then it synchronizes-with the parker's +1, so the
  /// parker's post-increment re-scan sees our preceding queue push / timer
  /// arm. A wake-up cannot be lost either way.
  [[nodiscard]] int advertised_parked() noexcept {
    return parked_.fetch_add(0, std::memory_order_seq_cst);
  }

  void wake_one(std::uint32_t waker) {
    {
      const std::scoped_lock lock(park_mutex_);
      ++tokens_;
    }
    park_cv_.notify_one();
    record(waker, obs::TraceKind::WorkerWake, now_ns(), 0, 0);
  }

  void wake_all() {
    {
      const std::scoped_lock lock(park_mutex_);
      tokens_ += static_cast<int>(num_workers_);
    }
    park_cv_.notify_all();
  }

  [[nodiscard]] bool has_queued_work() const noexcept {
    for (const WorkerData& w : workers_) {
      if (!w.queue.empty()) {
        return true;
      }
    }
    return false;
  }

  void advance_timers(std::uint32_t w) {
    if (wheel_.next_deadline() > now_ns()) {
      return;
    }
    WorkerData& me = workers_[w];
    me.fired.clear();
    wheel_.advance(now_ns(), me.fired);
    for (const std::uint32_t lp : me.fired) {
      ++me.stats.timer_fires;
      notify(lp, w);
    }
  }

  std::uint32_t steal(std::uint32_t w) {
    if (num_workers_ <= 1) {
      return StealQueue::kEmpty;
    }
    WorkerData& me = workers_[w];
    obs::hist::Bank* bank =
        config_.live != nullptr ? config_.live->hists() : nullptr;
    const std::uint64_t sweep_begin = bank != nullptr ? now_ns() : 0;
    const auto start = static_cast<std::uint32_t>(me.rng() % num_workers_);
    for (std::uint32_t i = 0; i < num_workers_; ++i) {
      const std::uint32_t victim = (start + i) % num_workers_;
      if (victim == w) {
        continue;
      }
      const std::uint32_t lp = workers_[victim].queue.pop();
      if (lp != StealQueue::kEmpty) {
        ++me.stats.steals;
        const std::uint64_t now = now_ns();
        if (bank != nullptr) {
          // Latency of the successful sweep: victim scan + pop.
          bank->record(obs::hist::Seam::StealLatency, now - sweep_begin);
        }
        const obs::TraceArgs args = obs::pack_worker_steal(victim, lp);
        record(w, obs::TraceKind::WorkerSteal, now, args.arg0, args.arg1);
        return lp;
      }
    }
    ++me.stats.steal_fails;
    return StealQueue::kEmpty;
  }

  void park(std::uint32_t w) {
    WorkerData& me = workers_[w];
    parked_.fetch_add(1, std::memory_order_seq_cst);
    // Post-advertise re-scan (the other half of the enqueue handshake).
    if (stop_.load(std::memory_order_acquire) || has_queued_work() ||
        wheel_.next_deadline() <= now_ns()) {
      parked_.fetch_sub(1, std::memory_order_relaxed);
      return;
    }
    ++me.stats.parks;
    if (auto* live_reg = config_.live) {
      live_reg->engine_add(obs::live::EngineGauge::WorkersParked, +1);
    }
    const std::uint64_t park_begin = now_ns();
    const std::uint64_t deadline = wheel_.next_deadline();
    bool token = false;
    {
      std::unique_lock lock(park_mutex_);
      const auto pred = [this] {
        return tokens_ > 0 || stop_.load(std::memory_order_relaxed);
      };
      if (deadline == TimerWheel::kNever) {
        // No timer pending: wake-up comes from a token. The bounded wait is
        // a safety backstop only (a tripped backstop shows up as a park with
        // neither token nor timer in the trace).
        park_cv_.wait_for(lock, std::chrono::milliseconds(250), pred);
      } else {
        // Relative wait, clamped to the backstop: converting an absolute
        // deadline near UINT64_MAX to a time_point would overflow the
        // clock's signed 64-bit rep into the past and busy-spin. A clamped
        // early wake just re-loops through advance_timers() and re-parks.
        const std::uint64_t now = now_ns();
        const auto wait = std::chrono::nanoseconds(std::min<std::uint64_t>(
            deadline > now ? deadline - now : 0, 250'000'000));
        park_cv_.wait_for(lock, wait, pred);
      }
      if (tokens_ > 0) {
        --tokens_;
        token = true;
      }
    }
    parked_.fetch_sub(1, std::memory_order_relaxed);
    if (auto* live_reg = config_.live) {
      live_reg->engine_add(obs::live::EngineGauge::WorkersParked, -1);
    }
    if (token) {
      ++me.stats.wakes;
    }
    const obs::TraceArgs args =
        obs::pack_worker_park(now_ns() - park_begin, token);
    record(w, obs::TraceKind::WorkerPark, park_begin, args.arg0, args.arg1);
  }

  void run_lp(class ThreadContext& ctx, std::uint32_t w, std::uint32_t lp);

  void worker_entry(std::uint32_t w);

  EngineRunResult collect() {
    EngineRunResult result;
    result.execution_time_ns = now_ns();
    result.lp_busy_ns.reserve(n_);
    result.scheduler.num_workers = num_workers_;
    result.scheduler.timers_scheduled =
        timers_scheduled_.load(std::memory_order_relaxed);
    for (std::uint32_t i = 0; i < n_; ++i) {
      result.lp_busy_ns.push_back(slots_[i].busy_ns);
      result.scheduler.mailbox_overflows += slots_[i].mailbox.overflow_pushes();
    }
    for (std::uint32_t w = 0; w < num_workers_; ++w) {
      const WorkerData& wd = workers_[w];
      result.steps += wd.stats.steps;
      result.physical_messages += wd.physical_messages;
      result.wire_bytes += wd.wire_bytes;
      result.scheduler.workers.push_back(wd.stats);
      if (wd.ring) {
        obs::LpTraceLog log;
        log.lp = w;
        log.name = "worker " + std::to_string(w);
        log.dropped = wd.ring->dropped();
        log.records = wd.ring->drain();
        result.worker_traces.push_back(std::move(log));
      }
    }
    return result;
  }

  const ThreadedConfig& config_;
  const std::vector<LpRunner*>& runners_;
  std::uint32_t n_;
  std::uint32_t num_workers_;
  std::deque<LpSlot> slots_;      ///< deque: LpSlot is not movable
  std::deque<WorkerData> workers_;
  TimerWheel wheel_;
  SteadyClock::time_point start_;
  std::atomic<std::uint32_t> live_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> timers_scheduled_{0};

  std::atomic<int> parked_{0};
  std::mutex park_mutex_;
  std::condition_variable park_cv_;
  int tokens_ = 0;  ///< guarded by park_mutex_

  std::mutex error_mutex_;
  std::exception_ptr first_error_;

  friend class ThreadContext;
};

class ThreadContext final : public LpContext {
 public:
  ThreadContext(Scheduler& sched, std::uint32_t worker)
      : sched_(sched), worker_(worker) {}

  void begin_step(std::uint32_t lp) noexcept {
    lp_ = lp;
    yielded_ = false;
  }
  void end_step() noexcept {
    if (yielded_) {
      ++sched_.worker(worker_).stats.yields;
    }
  }

  [[nodiscard]] LpId self() const noexcept override { return lp_; }
  [[nodiscard]] LpId num_lps() const noexcept override {
    return sched_.num_lps();
  }

  [[nodiscard]] std::uint64_t now_ns() const noexcept override {
    return sched_.now_ns();
  }

  void charge(std::uint64_t ns) noexcept override {
    sched_.slot(lp_).busy_ns += ns;
    const ThreadedConfig& config = sched_.config();
    if (config.spin_on_charge && ns > 0) {
      const auto target =
          SteadyClock::now() +
          std::chrono::nanoseconds(static_cast<std::uint64_t>(
              static_cast<double>(ns) * config.spin_scale));
      while (SteadyClock::now() < target) {
        // busy wait: models the CPU cost of the charged work
      }
    }
  }

  void send(LpId dst, std::unique_ptr<EngineMessage> msg) override {
    OTW_REQUIRE(dst < sched_.num_lps());
    OTW_REQUIRE(msg != nullptr);
    const std::uint64_t bytes = msg->wire_bytes();
    charge(sched_.config().costs.send_cost_ns(bytes));
    if (auto* live = sched_.config().live) {
      if (live->hists() != nullptr) {
        msg->obs_enqueue_ns = sched_.now_ns();
      }
    }
    sched_.slot(dst).mailbox.push(std::move(msg));
    if (auto* live = sched_.config().live) {
      live->engine_add(obs::live::EngineGauge::MailboxOccupancy, +1);
    }
    WorkerData& me = sched_.worker(worker_);
    ++me.physical_messages;
    me.wire_bytes += bytes;
    sched_.notify(dst, worker_);
  }

  std::unique_ptr<EngineMessage> poll() override {
    auto msg = sched_.slot(lp_).mailbox.pop();
    if (!msg.has_value()) {
      return nullptr;
    }
    if (auto* live = sched_.config().live) {
      live->engine_add(obs::live::EngineGauge::MailboxOccupancy, -1);
      if (auto* bank = live->hists()) {
        const std::uint64_t now = sched_.now_ns();
        const std::uint64_t queued = (*msg)->obs_enqueue_ns;
        bank->record(obs::hist::Seam::MailboxDwell,
                     now > queued ? now - queued : 0);
      }
    }
    charge(sched_.config().costs.msg_recv_overhead_ns);
    return std::move(*msg);
  }

  void request_wakeup(std::uint64_t abs_ns) noexcept override {
    LpSlot& slot = sched_.slot(lp_);
    slot.wake_hint_ns = std::min(slot.wake_hint_ns, abs_ns);
  }

  [[nodiscard]] bool should_yield() const noexcept override {
    if (sched_.worker(worker_).queue.empty()) {
      return false;
    }
    yielded_ = true;
    return true;
  }

  [[nodiscard]] const CostModel& costs() const noexcept override {
    return sched_.config().costs;
  }

 private:
  Scheduler& sched_;
  std::uint32_t worker_;
  std::uint32_t lp_ = 0;
  mutable bool yielded_ = false;
};

void Scheduler::run_lp(ThreadContext& ctx, std::uint32_t w, std::uint32_t lp) {
  LpSlot& slot = slots_[lp];
  std::uint32_t expected = kScheduled;
  const bool claimed = slot.state.compare_exchange_strong(
      expected, kRunning, std::memory_order_acq_rel);
  OTW_REQUIRE_MSG(claimed, "LP dequeued in a non-Scheduled state");
  slot.wake_hint_ns = TimerWheel::kNever;

  ctx.begin_step(lp);
  const StepStatus status = runners_[lp]->step(ctx);
  ctx.end_step();
  ++workers_[w].stats.steps;

  switch (status) {
    case StepStatus::Done: {
      slot.state.store(kDone, std::memory_order_release);
      if (live_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        stop_.store(true, std::memory_order_release);
        wake_all();
      }
      break;
    }
    case StepStatus::Active: {
      slot.state.exchange(kScheduled, std::memory_order_acq_rel);
      enqueue(lp, w);
      break;
    }
    case StepStatus::Idle: {
      if (slot.wake_hint_ns != TimerWheel::kNever) {
        // Arm the timer before publishing Idle: a fire racing the
        // transition lands as RunningNotified and re-enqueues below.
        wheel_.schedule(lp, slot.wake_hint_ns);
        timers_scheduled_.fetch_add(1, std::memory_order_relaxed);
        if (advertised_parked() > 0) {
          // A parked worker may be waiting on a later (or no) deadline;
          // bounce one so it re-parks against the new earliest deadline.
          wake_one(w);
        }
      }
      std::uint32_t running = kRunning;
      if (!slot.state.compare_exchange_strong(running, kIdle,
                                              std::memory_order_acq_rel)) {
        // A message or timer landed mid-step: stay runnable. A stale wheel
        // entry may fire later; the resulting notify is spurious but safe.
        slot.state.exchange(kScheduled, std::memory_order_acq_rel);
        enqueue(lp, w);
      }
      break;
    }
  }
}

void Scheduler::worker_entry(std::uint32_t w) {
  ThreadContext ctx(*this, w);
  try {
    while (!stop_.load(std::memory_order_acquire)) {
      advance_timers(w);
      std::uint32_t lp = workers_[w].queue.pop();
      if (lp == StealQueue::kEmpty) {
        lp = steal(w);
      }
      if (lp == StealQueue::kEmpty) {
        park(w);
        continue;
      }
      run_lp(ctx, w, lp);
    }
  } catch (...) {
    {
      const std::scoped_lock lock(error_mutex_);
      if (!first_error_) {
        first_error_ = std::current_exception();
      }
    }
    stop_.store(true, std::memory_order_release);
    wake_all();
  }
}

}  // namespace

EngineRunResult ThreadedEngine::run(const std::vector<LpRunner*>& lps) {
  OTW_REQUIRE(!lps.empty());
  for (auto* lp : lps) {
    OTW_REQUIRE(lp != nullptr);
  }
  Scheduler scheduler(config_, lps);
  return scheduler.run();
}

}  // namespace otw::platform
