// Hashed timer wheel for LpContext::request_wakeup deadlines.
//
// An Idle LP that asked to be re-stepped at an absolute platform time (an
// expiring DyMA aggregation window, the GVT rate limit) is parked here; any
// worker advances the wheel opportunistically and before parking, turning
// expired entries back into runnable LPs. Entries hash into coarse slots by
// deadline/tick; an entry whose deadline lies beyond one wheel revolution
// simply survives slot visits until its deadline has actually passed.
//
// Internally synchronized (schedule/advance run on any worker). The mutex is
// uncontended in practice — wakeup requests are control-path-rate, not
// event-rate — and `next_deadline()` is a lock-free hint load so the worker
// hot loop can skip advance() without taking the lock.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>
#include <mutex>
#include <vector>

namespace otw::platform {

class TimerWheel {
 public:
  static constexpr std::uint64_t kNever =
      std::numeric_limits<std::uint64_t>::max();

  explicit TimerWheel(std::uint64_t tick_ns = 16'384, std::size_t slots = 256)
      : tick_ns_(tick_ns ? tick_ns : 1), slots_(slots ? slots : 1) {}

  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;

  void schedule(std::uint32_t lp, std::uint64_t deadline_ns) {
    {
      const std::scoped_lock lock(mutex_);
      slots_[slot_of(deadline_ns)].push_back(Entry{deadline_ns, lp});
      pending_.fetch_add(1, std::memory_order_relaxed);
    }
    // Lower the lock-free hint (monotone min until the next advance()).
    std::uint64_t hint = next_deadline_.load(std::memory_order_relaxed);
    while (deadline_ns < hint &&
           !next_deadline_.compare_exchange_weak(hint, deadline_ns,
                                                 std::memory_order_release,
                                                 std::memory_order_relaxed)) {
    }
  }

  /// Earliest pending deadline (kNever when empty). May be transiently stale
  /// low after an advance raced a schedule — callers treat it as a wake-up
  /// hint, not a guarantee.
  [[nodiscard]] std::uint64_t next_deadline() const noexcept {
    return next_deadline_.load(std::memory_order_acquire);
  }

  /// Moves every entry with deadline <= now_ns into `fired` (append order is
  /// unspecified) and refreshes the next-deadline hint.
  void advance(std::uint64_t now_ns, std::vector<std::uint32_t>& fired) {
    if (next_deadline() > now_ns) {
      return;
    }
    const std::scoped_lock lock(mutex_);
    std::uint64_t next = kNever;
    for (auto& slot : slots_) {
      for (std::size_t i = 0; i < slot.size();) {
        if (slot[i].deadline_ns <= now_ns) {
          fired.push_back(slot[i].lp);
          slot[i] = slot.back();
          slot.pop_back();
          pending_.fetch_sub(1, std::memory_order_relaxed);
        } else {
          next = std::min(next, slot[i].deadline_ns);
          ++i;
        }
      }
    }
    next_deadline_.store(next, std::memory_order_release);
  }

  /// Approximate pending-entry count (atomic, may lag concurrent mutators).
  [[nodiscard]] std::size_t pending() const noexcept {
    return pending_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    std::uint64_t deadline_ns = 0;
    std::uint32_t lp = 0;
  };

  [[nodiscard]] std::size_t slot_of(std::uint64_t deadline_ns) const noexcept {
    return static_cast<std::size_t>((deadline_ns / tick_ns_) % slots_.size());
  }

  std::uint64_t tick_ns_;
  mutable std::mutex mutex_;
  std::vector<std::vector<Entry>> slots_;
  std::atomic<std::size_t> pending_{0};
  std::atomic<std::uint64_t> next_deadline_{kNever};
};

}  // namespace otw::platform
