// Cost model for the simulated network-of-workstations (NOW) testbed.
//
// The paper's experiments ran on SPARC 4/5 workstations on shared 10 Mbit
// Ethernet. Absolute 1998 timings are irrelevant to the published curves;
// what shapes them are the *ratios* between event granularity, state-saving
// cost and the (large) fixed per-message network overhead. The defaults
// below keep those ratios: a physical message costs on the order of 100x an
// event grain, exactly the regime where message aggregation pays off and
// rollback-induced communication dominates.
//
// All values are nanoseconds of modeled workstation time.
#pragma once

#include <cstdint>

namespace otw::platform {

struct CostModel {
  /// Kernel bookkeeping per processed event (scheduling, queue insertion).
  std::uint64_t event_overhead_ns = 2'000;
  /// Fixed part of saving one checkpoint.
  std::uint64_t state_save_base_ns = 1'000;
  /// Per-byte part of saving one checkpoint (bytes actually stored).
  std::uint64_t state_save_per_byte_ns = 10;
  /// Per-byte cost of SCANNING the state for changes (incremental
  /// checkpointing's diff pass; cheaper than storing).
  std::uint64_t state_diff_scan_per_byte_ns = 1;
  /// Restoring a checkpoint during rollback.
  std::uint64_t state_restore_ns = 2'000;
  /// Fixed administrative cost of one rollback (queue surgery).
  std::uint64_t rollback_fixed_ns = 4'000;
  /// Sender-side fixed cost of one physical message (protocol stack; the
  /// dominant term on 10 Mb Ethernet and the reason DyMA works).
  std::uint64_t msg_send_overhead_ns = 150'000;
  /// Receiver-side fixed cost of one physical message.
  std::uint64_t msg_recv_overhead_ns = 75'000;
  /// Serialization cost per payload byte (10 Mbit/s ~ 0.8 us/byte).
  std::uint64_t msg_per_byte_ns = 800;
  /// Wire propagation / switching latency added to every physical message.
  std::uint64_t wire_latency_ns = 200'000;
  /// Cost of one feedback-control invocation (control is intrusive).
  std::uint64_t control_invocation_ns = 500;
  /// Cost of one output-message comparison (lazy regeneration check or the
  /// passive comparison that maintains HR under aggressive cancellation).
  /// This is the monitoring overhead the PS/PA variants avoid by freezing.
  std::uint64_t comparison_cost_ns = 300;
  /// Cost of one fruitless poll of the network by an idle LP.
  std::uint64_t idle_poll_ns = 1'000;

  /// Full sender-side cost of a physical message of `bytes` payload bytes.
  [[nodiscard]] std::uint64_t send_cost_ns(std::uint64_t bytes) const noexcept {
    return msg_send_overhead_ns + bytes * msg_per_byte_ns;
  }

  /// A LAN-free configuration for functional tests: zero comm costs so the
  /// simulated engine degenerates to a fair round-robin interleaving.
  static CostModel free() noexcept {
    CostModel m;
    m.event_overhead_ns = 1;  // keep time advancing so the engine rotates LPs
    m.state_save_base_ns = 0;
    m.state_save_per_byte_ns = 0;
    m.state_diff_scan_per_byte_ns = 0;
    m.state_restore_ns = 0;
    m.rollback_fixed_ns = 0;
    m.msg_send_overhead_ns = 0;
    m.msg_recv_overhead_ns = 0;
    m.msg_per_byte_ns = 0;
    m.wire_latency_ns = 0;
    m.control_invocation_ns = 0;
    m.comparison_cost_ns = 0;
    m.idle_poll_ns = 1;
    return m;
  }
};

}  // namespace otw::platform
