// Per-worker run queue with lock-free stealing.
//
// Chase–Lev-style circular-array deque adapted to FIFO order (as in Go's and
// tokio's schedulers): the owning worker pushes runnable LP ids at the tail;
// the owner AND thieves pop from the head with a CAS. FIFO order matters
// here because the queued items are long-lived LPs, not fork-join tasks — a
// LIFO owner end would let one Active LP monopolize its worker.
//
// Capacity is fixed at construction. The scheduler's LP state machine
// guarantees each LP is enqueued at most once across ALL queues, so a
// capacity of (number of LPs rounded up to a power of two) can never
// overflow.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "otw/util/assert.hpp"

namespace otw::platform {

class StealQueue {
 public:
  static constexpr std::uint32_t kEmpty = UINT32_MAX;

  /// `capacity` is rounded up to a power of two (minimum 2).
  explicit StealQueue(std::uint32_t capacity) {
    std::uint64_t cap = 2;
    while (cap < capacity) {
      cap <<= 1;
    }
    cells_ = std::vector<std::atomic<std::uint32_t>>(cap);
    mask_ = cap - 1;
  }

  StealQueue(const StealQueue&) = delete;
  StealQueue& operator=(const StealQueue&) = delete;

  /// Owner-only enqueue. Returns false when full (cannot happen under the
  /// scheduler's one-entry-per-LP invariant; callers assert).
  bool push(std::uint32_t value) noexcept {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    if (tail - head > mask_) {
      return false;
    }
    cells_[tail & mask_].store(value, std::memory_order_relaxed);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Dequeue from the head; safe for the owner and for thieves. Returns
  /// kEmpty when nothing is available.
  std::uint32_t pop() noexcept {
    std::uint64_t head = head_.load(std::memory_order_acquire);
    for (;;) {
      const std::uint64_t tail = tail_.load(std::memory_order_acquire);
      if (static_cast<std::int64_t>(tail - head) <= 0) {
        return kEmpty;
      }
      // Read before claiming: if the owner recycles this slot the CAS below
      // must fail (head has moved past `head`), so a stale read is discarded.
      // 64-bit indices make the ABA wraparound (head advancing a full 2^64
      // while a thief is stalled) unreachable in practice.
      const std::uint32_t value =
          cells_[head & mask_].load(std::memory_order_relaxed);
      if (head_.compare_exchange_weak(head, head + 1,
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
        return value;
      }
    }
  }

  /// Approximate (racy) emptiness check, for park decisions only.
  [[nodiscard]] bool empty() const noexcept {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::uint32_t capacity() const noexcept {
    return static_cast<std::uint32_t>(mask_ + 1);
  }

 private:
  std::vector<std::atomic<std::uint32_t>> cells_;
  std::uint64_t mask_ = 0;
  alignas(64) std::atomic<std::uint64_t> head_{0};
  alignas(64) std::atomic<std::uint64_t> tail_{0};
};

}  // namespace otw::platform
