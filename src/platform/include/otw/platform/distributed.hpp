// Multi-process engine: LPs sharded across worker processes over TCP.
//
// The coordinator (the calling process) binds a loopback TCP listener,
// forks one worker process per shard, and then acts as a frame router:
// every worker holds exactly one ordered stream to the coordinator, and the
// coordinator forwards each data frame to the shard owning its destination
// LP in arrival order. Per-(src,dst) FIFO therefore holds end to end —
// sender-side stream order, in-order relay, receiver-side stream order —
// which is the non-overtaking guarantee the Time Warp kernel requires (an
// anti-message can never overtake its positive message).
//
// Inside one worker, a single-threaded shard driver round-robins the local
// LPs exactly like the other engines: local cross-LP messages move through
// in-process FIFO mailboxes, remote ones are serialized (wire.hpp) into
// length-prefixed frames. Mattern GVT runs unchanged: the token ring is over
// global LP ids (which interleave across shards), and the white/black
// message counts piggyback on the data frames themselves — each serialized
// event carries its Mattern color, so the receiving LP's GvtAgent counts it
// exactly as it would in-process.
//
// Workers report results as opaque payloads produced by a caller-supplied
// harvest callback (the kernel serializes digests/stats/traces with it), so
// the engine stays free of kernel types. Workers exit with _exit(); the
// coordinator joins them with waitpid and fails loudly on a non-zero child.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "otw/obs/trace.hpp"
#include "otw/platform/cost_model.hpp"
#include "otw/platform/engine.hpp"

namespace otw::platform {

struct DistributedConfig {
  /// Worker processes. LP -> shard placement is round-robin (lp % num_shards)
  /// so the GVT token ring alternates shards — the adversarial layout for
  /// the wire protocol, and the one that matches PHOLD's object placement.
  std::uint32_t num_shards = 2;
  /// TCP port for the coordinator's loopback listener; 0 picks an ephemeral
  /// port (the default — no clashes between concurrent runs).
  std::uint16_t port = 0;
  /// Cost model for kernel-level cost charging. charge() only accounts (no
  /// spinning): the engine runs on real wall clocks.
  CostModel costs = CostModel::free();
  /// Safety valve: abort a worker after this many LP step() invocations.
  std::uint64_t max_steps = 2'000'000'000;
  /// Longest a fully idle worker sleeps in poll() before rechecking local
  /// timer deadlines, microseconds.
  std::uint64_t idle_poll_us = 500;
  /// Per-shard wire trace-ring capacity (TraceKind::WireFrame records,
  /// shipped back with the shard result and merged into the run trace as
  /// "shard k wire" tracks). 0 = off.
  std::size_t wire_trace_capacity = 0;
};

/// Returns the shard owning `lp` under the round-robin placement.
[[nodiscard]] constexpr std::uint32_t shard_of_lp(LpId lp,
                                                  std::uint32_t num_shards) noexcept {
  return lp % num_shards;
}

/// Live health streaming over the worker<->coordinator streams: when
/// period_ms > 0, every worker emits a STATS control frame (tag 0xFF03)
/// carrying whatever bytes `encode` returns (the kernel serializes its live
/// registry snapshot with it), and the coordinator hands each payload to
/// `on_stats` instead of relaying it. The engine treats payloads as opaque,
/// mirroring HarvestFn — no kernel or obs types cross this interface.
struct LiveStatsHooks {
  /// STATS cadence per worker; 0 disables the stream entirely.
  std::uint32_t period_ms = 0;
  /// Worker side: serialize the shard's current live state (called in the
  /// worker process between LP steps; `shard` identifies the caller, exactly
  /// like HarvestFn).
  std::function<std::vector<std::uint8_t>(std::uint32_t shard)> encode;
  /// Coordinator side: consume one shard's payload (called on the relay
  /// loop thread; must be fast or it backpressures the relay).
  std::function<void(std::uint32_t shard, const std::uint8_t* data,
                     std::size_t len)>
      on_stats;
  /// Latency-attribution bank, allocated pre-fork so every process inherits
  /// the same layout. Workers record their seams into their own (COW) copy
  /// and ship the contents home in the RESULT; the coordinator records
  /// relay residency into the parent copy. May be set with period_ms == 0
  /// (e.g. benches that want latency numbers without a live stream). Null
  /// disables all recording. Arming the bank also enables clock-offset
  /// refresh pings (TIME frames) on the worker streams.
  obs::hist::Bank* bank = nullptr;
  /// Coordinator side, optional: observe every relayed data frame (flight
  /// recorder feed). Called on the relay loop thread after the frame is
  /// queued to its destination; must be fast.
  std::function<void(std::uint32_t src_shard, std::uint32_t dst_shard,
                     std::uint16_t tag, std::uint32_t frame_len,
                     std::uint64_t send_ns, std::uint64_t coord_now_ns)>
      on_relay;
  /// Worker side, optional: runs once in each freshly forked worker before
  /// it connects (the kernel installs the flight recorder's fatal-signal
  /// handlers here).
  std::function<void(std::uint32_t shard)> on_worker_start;

  [[nodiscard]] bool enabled() const noexcept {
    return period_ms > 0 && encode && on_stats;
  }
};

class DistributedEngine {
 public:
  /// Serializes whatever the caller wants back from a finished shard
  /// (invoked in the worker process, once all its LPs are Done).
  using HarvestFn = std::function<std::vector<std::uint8_t>(std::uint32_t shard)>;

  explicit DistributedEngine(DistributedConfig config) : config_(config) {}

  /// Drives all LPs to completion across config.num_shards processes.
  /// Returns in the coordinator only; worker processes _exit() internally.
  /// Throws std::runtime_error on socket failures, worker crashes or step
  /// overrun. `harvest` may be null (no shard payloads collected); `live`
  /// may be default (no STATS streaming).
  EngineRunResult run(const std::vector<LpRunner*>& lps, HarvestFn harvest,
                      LiveStatsHooks live = {});

  /// Opaque per-shard payloads produced by the harvest callback, indexed by
  /// shard id. Valid after run() returns. (Per-shard wire trace logs, when
  /// enabled, ride in EngineRunResult::worker_traces with `lp` = shard id.)
  [[nodiscard]] const std::vector<std::vector<std::uint8_t>>& shard_payloads()
      const noexcept {
    return payloads_;
  }

  [[nodiscard]] const DistributedConfig& config() const noexcept { return config_; }

 private:
  DistributedConfig config_;
  std::vector<std::vector<std::uint8_t>> payloads_;
};

}  // namespace otw::platform
