// Multi-process engine: LPs sharded across worker processes over TCP.
//
// The coordinator (the calling process) binds a loopback TCP listener and
// forks one worker process per shard. Two data-plane topologies:
//
//   Topology::Mesh (default) — workers hold direct TCP links to every other
//       worker, dialed at startup from a coordinator-brokered peer directory
//       (each HELLO carries the worker's own listener port; the HELLO-ACK
//       answers with the full port table). Data frames travel one hop on the
//       (src,dst) peer link; the coordinator keeps only control-plane duties
//       (HELLO/RESULT/STATS, GVT tokens and announces, clock pings, the
//       flight-recorder feed, and the migration protocol below).
//
//   Topology::Star — every frame transits the coordinator relay in arrival
//       order (the legacy data plane, kept for A/B comparisons; it is the
//       scaling ceiling BENCH_distributed.json documents).
//
// Both topologies preserve per-(src,dst) FIFO — one ordered TCP stream per
// directed pair (a peer link, or the in-order relay) — which is the
// non-overtaking guarantee the Time Warp kernel requires (an anti-message
// can never overtake its positive message on the same path).
//
// LP -> shard placement is a table (DistributedConfig::placement, filled by
// a partitioner or defaulting to round-robin), and under Mesh it can change
// mid-run: the coordinator may order an LP migrated (MigrationHooks), the
// source shard freezes it at a GVT cut and ships it over the peer link in a
// MIGRATE frame, and the coordinator rebinds routing with an epoch-tagged
// REBIND broadcast. Owner maps only ever advance to higher epochs, so
// forwarding chains for in-flight frames are acyclic and terminate.
//
// Inside one worker, a single-threaded shard driver round-robins the local
// LPs exactly like the other engines: local cross-LP messages move through
// in-process FIFO mailboxes, remote ones are serialized (wire.hpp) into
// length-prefixed frames. Mattern GVT runs unchanged: the token ring is over
// global LP ids (which interleave across shards), and the white/black
// message counts piggyback on the data frames themselves — each serialized
// event carries its Mattern color, so the receiving LP's GvtAgent counts it
// exactly as it would in-process.
//
// Workers report results as opaque payloads produced by a caller-supplied
// harvest callback (the kernel serializes digests/stats/traces with it), so
// the engine stays free of kernel types. Workers exit with _exit(); the
// coordinator joins them with waitpid and fails loudly on a non-zero child.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "otw/obs/trace.hpp"
#include "otw/platform/cost_model.hpp"
#include "otw/platform/engine.hpp"

namespace otw::platform {

class WireReader;
class WireWriter;

/// Data-plane shape of the distributed engine. Control frames always go
/// through the coordinator regardless of topology.
enum class Topology : std::uint8_t {
  Star,  ///< all frames relayed by the coordinator (legacy data plane)
  Mesh,  ///< direct shard-to-shard links; coordinator is control-plane only
};

struct DistributedConfig {
  /// Worker processes. Default LP -> shard placement is round-robin
  /// (lp % num_shards) so the GVT token ring alternates shards — the
  /// adversarial layout for the wire protocol; `placement` overrides it.
  std::uint32_t num_shards = 2;
  /// Data-plane topology. Mesh is the default; Star is kept for A/B
  /// comparisons and as the BENCH_distributed.json baseline.
  Topology topology = Topology::Mesh;
  /// Initial LP -> shard table (index = LpId). Empty = round-robin
  /// (shard_of_lp). When set, must cover every LP with shard < num_shards;
  /// a partitioner (tw/partition.hpp) fills this from the model's send
  /// graph. Migration updates ownership at run time; this stays the
  /// *initial* placement.
  std::vector<std::uint32_t> placement;
  /// TCP port for the coordinator's loopback listener; 0 picks an ephemeral
  /// port (the default — no clashes between concurrent runs).
  std::uint16_t port = 0;
  /// Cost model for kernel-level cost charging. charge() only accounts (no
  /// spinning): the engine runs on real wall clocks.
  CostModel costs = CostModel::free();
  /// Safety valve: abort a worker after this many LP step() invocations.
  std::uint64_t max_steps = 2'000'000'000;
  /// Longest a fully idle worker sleeps in poll() before rechecking local
  /// timer deadlines, microseconds.
  std::uint64_t idle_poll_us = 500;
  /// Per-shard wire trace-ring capacity (TraceKind::WireFrame records,
  /// shipped back with the shard result and merged into the run trace as
  /// "shard k wire" tracks). 0 = off.
  std::size_t wire_trace_capacity = 0;
};

/// Returns the shard owning `lp` under the round-robin placement.
[[nodiscard]] constexpr std::uint32_t shard_of_lp(LpId lp,
                                                  std::uint32_t num_shards) noexcept {
  return lp % num_shards;
}

/// Initial owner of `lp` under `config`: the placement table when present,
/// round-robin otherwise. Run-time ownership (after migrations) lives in the
/// engine's epoch-tagged owner map, not here.
[[nodiscard]] inline std::uint32_t initial_owner_of(
    LpId lp, const DistributedConfig& config) noexcept {
  if (lp < config.placement.size()) {
    return config.placement[lp];
  }
  return shard_of_lp(lp, config.num_shards);
}

/// Implemented by LP runners that can be moved between shards mid-run. The
/// engine freezes the LP on the source shard (migrate_out serializes its
/// whole dynamic state into a MIGRATE frame payload; the LP must roll back
/// to its GVT cut and drain in-flight local work first) and revives it on
/// the destination (migrate_in consumes the same byte stream). Both run
/// between step() calls, with `ctx` bound to the calling shard's driver.
/// migrate_out returns false to decline the move (the LP completed while
/// draining its backlog); the writer's partial output is then discarded.
class MigratableLp {
 public:
  virtual ~MigratableLp() = default;
  [[nodiscard]] virtual bool migrate_out(LpContext& ctx, WireWriter& writer) = 0;
  virtual void migrate_in(LpContext& ctx, WireReader& reader) = 0;

  // --- shard-level checkpoint/restart (fault tolerance) ---
  // The snapshot protocol reuses the migration machinery but keeps the LP
  // alive: settle lets the LP absorb in-flight traffic without processing
  // new events, cut freezes it at the global GVT cut (the same forced
  // rollback migrate_out performs), encode serializes the frozen LP in the
  // MIGRATE revival layout WITHOUT consuming it, and restore rewinds a
  // *live* LP back to a previously encoded cut (migrate_in semantics plus
  // dropping any post-cut aggregation batches). Default implementations
  // make non-checkpointable runners decline every snapshot.

  /// Absorbs pending traffic (drain inboxes, forward GVT tokens, flush
  /// aggregation windows) without processing events. Returns true when any
  /// message or send was handled — i.e. the LP was not yet quiescent.
  virtual bool snapshot_settle(LpContext& ctx) {
    static_cast<void>(ctx);
    return false;
  }
  /// Rolls the LP back to its current GVT cut and flushes every held send
  /// and aggregation batch (their antis/events re-enter the settle loop).
  /// Returns false to decline (GVT still zero, or the LP completed).
  [[nodiscard]] virtual bool snapshot_cut(LpContext& ctx) {
    static_cast<void>(ctx);
    return false;
  }
  /// Serializes the cut LP without consuming it (MIGRATE revival layout).
  /// Only valid after a successful snapshot_cut + re-settle.
  virtual void snapshot_encode(LpContext& ctx, WireWriter& writer) {
    static_cast<void>(ctx);
    static_cast<void>(writer);
  }
  /// Rewinds a live LP to an encoded cut (survivor side of a recovery) or
  /// initializes a fresh replacement from one (migrate_in semantics).
  virtual void snapshot_restore(LpContext& ctx, WireReader& reader) {
    static_cast<void>(ctx);
    static_cast<void>(reader);
  }
  /// Virtual time of the cut snapshot_cut froze this LP at. After global
  /// quiescence every LP of every shard agrees on this value (no GVT epoch
  /// can be in flight), so the driver reads it from any accepting LP.
  [[nodiscard]] virtual std::uint64_t snapshot_gvt_ticks() const noexcept {
    return 0;
  }
};

/// One migration order: move `lp` to shard `to_shard`.
struct MigrationDecision {
  LpId lp = 0;
  std::uint32_t to_shard = 0;
};

/// On-line migration control (Mesh only). When enabled, the coordinator
/// calls `decide` every period_ms with the current owner map; a returned
/// decision triggers the MIGRATE_CMD -> MIGRATE -> MIGRATED -> REBIND
/// sequence. At most one migration is in flight at a time, and the
/// coordinator stops deciding once any shard first drains (endgame).
struct MigrationHooks {
  /// Decision cadence; 0 disables migration entirely.
  std::uint32_t period_ms = 0;
  /// Coordinator side: pick the next migration, or nullopt to hold.
  /// `owners[lp]` is the current owner shard. Must not pick an LP whose
  /// owner equals the target. Called on the relay loop thread.
  std::function<std::optional<MigrationDecision>(
      const std::vector<std::uint32_t>& owners)>
      decide;

  [[nodiscard]] bool enabled() const noexcept {
    return period_ms > 0 && static_cast<bool>(decide);
  }
};

/// Live health streaming over the worker<->coordinator streams: when
/// period_ms > 0, every worker emits a STATS control frame (tag 0xFF03)
/// carrying whatever bytes `encode` returns (the kernel serializes its live
/// registry snapshot with it), and the coordinator hands each payload to
/// `on_stats` instead of relaying it. The engine treats payloads as opaque,
/// mirroring HarvestFn — no kernel or obs types cross this interface.
struct LiveStatsHooks {
  /// STATS cadence per worker; 0 disables the stream entirely.
  std::uint32_t period_ms = 0;
  /// Worker side: serialize the shard's current live state (called in the
  /// worker process between LP steps; `shard` identifies the caller, exactly
  /// like HarvestFn).
  std::function<std::vector<std::uint8_t>(std::uint32_t shard)> encode;
  /// Coordinator side: consume one shard's payload (called on the relay
  /// loop thread; must be fast or it backpressures the relay).
  std::function<void(std::uint32_t shard, const std::uint8_t* data,
                     std::size_t len)>
      on_stats;
  /// Latency-attribution bank, allocated pre-fork so every process inherits
  /// the same layout. Workers record their seams into their own (COW) copy
  /// and ship the contents home in the RESULT; the coordinator records
  /// relay residency into the parent copy. May be set with period_ms == 0
  /// (e.g. benches that want latency numbers without a live stream). Null
  /// disables all recording. Arming the bank also enables clock-offset
  /// refresh pings (TIME frames) on the worker streams.
  obs::hist::Bank* bank = nullptr;
  /// Coordinator side, optional: observe every relayed data frame (flight
  /// recorder feed). Called on the relay loop thread after the frame is
  /// queued to its destination; must be fast.
  std::function<void(std::uint32_t src_shard, std::uint32_t dst_shard,
                     std::uint16_t tag, std::uint32_t frame_len,
                     std::uint64_t send_ns, std::uint64_t coord_now_ns)>
      on_relay;
  /// Worker side, optional: runs once in each freshly forked worker before
  /// it connects (the kernel installs the flight recorder's fatal-signal
  /// handlers here).
  std::function<void(std::uint32_t shard)> on_worker_start;

  [[nodiscard]] bool enabled() const noexcept {
    return period_ms > 0 && encode && on_stats;
  }
};

/// Shard-level checkpoint/restart (Mesh only; mutually exclusive with
/// migration — owners stay at the initial placement so a snapshot never has
/// to version the owner map). When enabled, the coordinator periodically
/// runs the SNAPSHOT protocol (SNAP_CTL stop -> settle -> cut -> settle ->
/// serialize -> resume; see DESIGN.md section 8c), retains the last complete
/// epoch (each worker also keeps its own shard's blob for self-restore), and
/// on a worker death forks a replacement, restores every shard to the cut
/// and resumes — the run completes with digests bit-identical to a
/// failure-free execution.
struct FaultHooks {
  bool enabled = false;
  /// Give up (rethrow the legacy failure) after this many recoveries.
  std::uint32_t max_recoveries = 4;
  /// Abort (discard) a snapshot epoch whose total blob bytes exceed this;
  /// 0 = unlimited.
  std::uint64_t max_snapshot_bytes = 0;
  /// Milliseconds from run start to the first snapshot attempt, and the
  /// fallback gap when `next_gap_ms` is unset.
  std::uint32_t initial_gap_ms = 50;
  /// Cadence controller: called after each complete epoch with its measured
  /// wall cost and size; returns the ms gap until the next snapshot (the
  /// kernel backs this with a Bringmann-style schedule controller).
  std::function<std::uint32_t(std::uint64_t cost_ns, std::uint64_t bytes)>
      next_gap_ms;
  /// Spill directory for complete epochs ("OTWSNAP1" container, see
  /// wire.hpp kSnapshotManifestFields); empty = coordinator memory only.
  std::string spill_dir;
  /// Watchdog -> engine kill request: when set, the coordinator SIGKILLs
  /// the worker of the shard stored here (then recovers it). Written by the
  /// monitor thread, consumed (reset to -1) by the coordinator loop.
  std::shared_ptr<std::atomic<std::int32_t>> kill_request;
  /// Chaos injection for tests/CI: when >= 0, the coordinator SIGKILLs this
  /// shard's worker right after snapshot epoch `inject_kill_after_epoch`
  /// completes (deterministic mid-run failure).
  std::int32_t inject_kill_shard = -1;
  std::uint32_t inject_kill_after_epoch = 1;
};

class DistributedEngine {
 public:
  /// Serializes whatever the caller wants back from a finished shard
  /// (invoked in the worker process, once all its LPs are Done). `owners`
  /// is the LP -> shard map at harvest time; with migration enabled a shard
  /// may finish owning LPs its initial placement never gave it.
  using HarvestFn = std::function<std::vector<std::uint8_t>(
      std::uint32_t shard, const std::vector<std::uint32_t>& owners)>;

  explicit DistributedEngine(DistributedConfig config)
      : config_(std::move(config)) {}

  /// Drives all LPs to completion across config.num_shards processes.
  /// Returns in the coordinator only; worker processes _exit() internally.
  /// Throws std::runtime_error on socket failures, worker crashes or step
  /// overrun. `harvest` may be null (no shard payloads collected); `live`
  /// may be default (no STATS streaming); `migration` may be default (static
  /// placement; requires Topology::Mesh when enabled).
  EngineRunResult run(const std::vector<LpRunner*>& lps, HarvestFn harvest,
                      LiveStatsHooks live = {}, MigrationHooks migration = {},
                      FaultHooks fault = {});

  /// Opaque per-shard payloads produced by the harvest callback, indexed by
  /// shard id. Valid after run() returns. (Per-shard wire trace logs, when
  /// enabled, ride in EngineRunResult::worker_traces with `lp` = shard id.)
  [[nodiscard]] const std::vector<std::vector<std::uint8_t>>& shard_payloads()
      const noexcept {
    return payloads_;
  }

  [[nodiscard]] const DistributedConfig& config() const noexcept { return config_; }

 private:
  DistributedConfig config_;
  std::vector<std::vector<std::uint8_t>> payloads_;
};

}  // namespace otw::platform
