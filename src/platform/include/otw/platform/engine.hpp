// Execution-platform abstraction.
//
// A logical process (LP) of the Time Warp kernel is written as a
// *step-based, non-blocking* state machine (LpRunner). An Engine owns the
// LPs, drives their step() functions, transports messages between them and
// supplies each LP with a wall clock. Two engines are provided:
//
//   SimulatedNowEngine - deterministic direct-execution simulation of a
//       network of workstations: each LP has a modeled clock advanced by
//       LpContext::charge(); the engine always steps the LP with the
//       smallest modeled clock, and message arrival times follow the
//       CostModel. Reported execution time = makespan of the modeled
//       machine. This is the substrate for all paper figures.
//
//   ThreadedEngine - an M-worker : N-LP work-stealing scheduler on real
//       threads and wall clocks: per-worker run queues with lock-free
//       stealing, MPSC mailboxes, a timer wheel for request_wakeup and an
//       event-driven parking lot (no idle polling). Validates the kernel
//       under true concurrency and scales to LP counts far beyond the OS
//       thread limit.
//
// Both transports are non-overtaking per (source, destination) pair, which
// the kernel relies on (an anti-message never arrives before the positive
// message it cancels).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "otw/obs/hist.hpp"
#include "otw/obs/trace.hpp"

namespace otw::platform {

using LpId = std::uint32_t;

class WireWriter;

/// Base class of anything an LP sends to another LP. The engine only needs
/// the wire size (for transmission cost); receivers dispatch on the
/// registered wire tag (see wire.hpp). In-process engines move the object
/// itself; the distributed engine serializes via encode_wire() and rebuilds
/// it through the WireRegistry on the receiving shard.
class EngineMessage {
 public:
  virtual ~EngineMessage() = default;
  /// Payload bytes charged by the cost model for this message.
  [[nodiscard]] virtual std::uint64_t wire_bytes() const noexcept = 0;
  /// Registered type tag (wire.hpp), or kNoWireTag (0) for messages that
  /// cannot leave the process. Cross-process transports refuse untagged
  /// messages with a descriptive error instead of silently dropping them.
  [[nodiscard]] virtual std::uint16_t wire_tag() const noexcept { return 0; }
  /// Serializes the payload (header excluded). Only called when wire_tag()
  /// is non-zero; the default aborts so a tagged type cannot forget it.
  virtual void encode_wire(WireWriter& writer) const;
  /// Control-plane marker (GVT tokens/announces). The distributed transport
  /// flags such frames on the wire and counts them separately from data.
  [[nodiscard]] virtual bool wire_control() const noexcept { return false; }

  /// Transport telemetry stamp: engine clock at enqueue into a mailbox /
  /// inbox, consumed by the MailboxDwell histogram at poll(). Only written
  /// when the attribution plane is armed; never observable by LP logic.
  std::uint64_t obs_enqueue_ns = 0;
};

/// What an LP reports after one step() call.
enum class StepStatus : std::uint8_t {
  Active,  ///< did useful work or has more pending; step again soon
  Idle,    ///< nothing to do until a new message arrives
  Done,    ///< simulation finished for this LP; never step again
};

/// Per-step services the engine hands to the LP.
class LpContext {
 public:
  virtual ~LpContext() = default;

  /// This LP's identity.
  [[nodiscard]] virtual LpId self() const noexcept = 0;
  /// Number of LPs in the simulation.
  [[nodiscard]] virtual LpId num_lps() const noexcept = 0;

  /// Current wall-clock of this LP in nanoseconds (modeled or real).
  [[nodiscard]] virtual std::uint64_t now_ns() const noexcept = 0;

  /// Accounts `ns` nanoseconds of CPU work to this LP. On the simulated
  /// engine this advances the modeled clock; on the threaded engine it is
  /// a calibrated spin (or a no-op when cost charging is disabled).
  virtual void charge(std::uint64_t ns) noexcept = 0;

  /// Ships a message to `dst` (self-sends are allowed). Sender-side send
  /// cost is charged automatically per the cost model.
  virtual void send(LpId dst, std::unique_ptr<EngineMessage> msg) = 0;

  /// Retrieves the next deliverable message, or nullptr. Receiver-side
  /// receive cost is charged automatically per the cost model.
  virtual std::unique_ptr<EngineMessage> poll() = 0;

  /// Asks to be stepped again no later than `abs_ns` even if Idle is
  /// returned and no message arrives (e.g. an aggregation window expiring).
  /// Valid for the current step only. Every engine honors it: the simulated
  /// engine folds it into its ready-time ordering, the threaded engine parks
  /// the LP on a timer wheel.
  virtual void request_wakeup(std::uint64_t abs_ns) noexcept {
    static_cast<void>(abs_ns);
  }

  /// Yield hint: true when the engine would rather have this LP return from
  /// step() soon (other LPs are waiting on the same worker). Purely advisory
  /// — an LP may ignore it; honoring it improves fairness when workers are
  /// outnumbered by LPs.
  [[nodiscard]] virtual bool should_yield() const noexcept { return false; }

  /// The platform's cost model (for kernel-level cost charging).
  [[nodiscard]] virtual const struct CostModel& costs() const noexcept = 0;
};

/// A logical process as seen by the engine.
class LpRunner {
 public:
  virtual ~LpRunner() = default;
  /// Performs a bounded amount of work. Must not block.
  virtual StepStatus step(LpContext& ctx) = 0;
};

/// Per-worker scheduler counters (threaded engine).
struct WorkerStats {
  std::uint64_t steps = 0;          ///< LP step() calls run on this worker
  std::uint64_t steals = 0;         ///< LPs popped from another worker's queue
  std::uint64_t steal_fails = 0;    ///< full sweeps that found nothing to steal
  std::uint64_t parks = 0;          ///< times this worker parked
  std::uint64_t wakes = 0;          ///< unparks caused by a wake token
  std::uint64_t timer_fires = 0;    ///< timer-wheel entries this worker fired
  std::uint64_t yields = 0;         ///< steps where the yield hint was taken
};

/// Scheduler-level telemetry (empty unless produced by a worker-pool engine).
struct SchedulerStats {
  std::uint32_t num_workers = 0;
  std::uint64_t mailbox_overflows = 0;  ///< messages that took the backpressure path
  std::uint64_t timers_scheduled = 0;   ///< request_wakeup deadlines armed
  std::vector<WorkerStats> workers;

  [[nodiscard]] std::uint64_t total_steals() const noexcept {
    std::uint64_t n = 0;
    for (const WorkerStats& w : workers) {
      n += w.steals;
    }
    return n;
  }
  [[nodiscard]] std::uint64_t total_parks() const noexcept {
    std::uint64_t n = 0;
    for (const WorkerStats& w : workers) {
      n += w.parks;
    }
    return n;
  }
};

/// Socket-transport counters (distributed engine only). Frames are physical
/// wire messages (length-prefixed, see wire.hpp); one frame can carry a whole
/// DyMA aggregate, which is what the aggregated-vs-unaggregated frame counts
/// in BENCH_distributed.json measure.
struct DistStats {
  std::uint32_t num_shards = 0;
  std::uint64_t frames_sent = 0;       ///< frames written to the socket
  std::uint64_t frames_received = 0;   ///< frames decoded from the socket
  std::uint64_t frames_relayed = 0;    ///< frames forwarded by the coordinator
  std::uint64_t frames_forwarded = 0;  ///< frames a worker re-shipped to the owner (stale routing epoch)
  std::uint64_t bytes_sent = 0;        ///< header + payload bytes written
  std::uint64_t bytes_received = 0;    ///< header + payload bytes decoded
  std::uint64_t gvt_token_frames = 0;  ///< control frames (GVT tokens/announces)
  std::uint64_t stats_frames = 0;      ///< live STATS frames the coordinator absorbed
  std::uint64_t migrations = 0;        ///< LPs moved between shards mid-run
  std::uint64_t serialize_ns = 0;      ///< wall time spent encoding payloads
  std::uint64_t deserialize_ns = 0;    ///< wall time spent decoding payloads
  std::uint64_t snapshots_taken = 0;   ///< complete snapshot epochs recorded
  std::uint64_t snapshot_bytes = 0;    ///< total bytes across recorded epochs

  void add(const DistStats& other) noexcept {
    frames_sent += other.frames_sent;
    frames_received += other.frames_received;
    frames_relayed += other.frames_relayed;
    frames_forwarded += other.frames_forwarded;
    bytes_sent += other.bytes_sent;
    bytes_received += other.bytes_received;
    gvt_token_frames += other.gvt_token_frames;
    stats_frames += other.stats_frames;
    migrations += other.migrations;
    serialize_ns += other.serialize_ns;
    deserialize_ns += other.deserialize_ns;
    snapshots_taken += other.snapshots_taken;
    snapshot_bytes += other.snapshot_bytes;
  }
};

/// One completed shard recovery (distributed engine with fault tolerance).
/// The coordinator records an incident when a worker process dies mid-run
/// and every shard has been rolled back to the last complete snapshot cut.
struct RecoveryIncident {
  std::uint32_t epoch = 0;       ///< snapshot epoch the run was restored from
  std::uint32_t lost_shard = 0;  ///< shard whose worker process died
  std::uint64_t restore_ns = 0;  ///< death detected -> all shards resumed
  std::uint64_t bytes = 0;       ///< snapshot bytes replayed into the replacement
  std::uint64_t gvt_ticks = 0;   ///< virtual time of the restored cut
};

/// Per-shard steady-clock alignment estimated over the worker stream
/// (distributed engine only). `offset_ns` maps a worker clock reading into
/// the coordinator's clock domain (coordinator = worker + offset); the
/// estimate is the ping RTT midpoint, so its error is bounded by rtt_ns/2.
struct ShardClock {
  std::int64_t offset_ns = 0;
  std::uint64_t rtt_ns = 0;
};

/// Result of driving a set of LPs to completion.
struct EngineRunResult {
  /// Modeled makespan (simulated engine) or elapsed wall time (threaded),
  /// in nanoseconds.
  std::uint64_t execution_time_ns = 0;
  /// Per-LP busy time in nanoseconds (charged work).
  std::vector<std::uint64_t> lp_busy_ns;
  /// Total physical messages transported between LPs.
  std::uint64_t physical_messages = 0;
  /// Total wire bytes transported between LPs.
  std::uint64_t wire_bytes = 0;
  /// Total engine step() invocations.
  std::uint64_t steps = 0;
  /// Worker-pool counters (default-empty on engines without a worker pool).
  SchedulerStats scheduler;
  /// Socket-transport counters (default-empty on in-process engines).
  DistStats dist;
  /// Per-worker scheduler trace rings (park slices, steals, wakes), drained.
  /// Empty unless the engine was configured with a trace capacity. The `lp`
  /// field holds the WORKER index; the kernel offsets it past the LP ids
  /// before merging into a RunResult trace.
  std::vector<obs::LpTraceLog> worker_traces;
  /// Attribution histograms harvested at run end (empty unless the caller
  /// armed a hist::Bank). Distributed: per-shard entries from each RESULT
  /// plus coordinator relay entries stamped shard = num_shards.
  std::vector<obs::hist::Entry> hists;
  /// Clock alignment per shard (distributed engine only; index = shard).
  std::vector<ShardClock> shard_clocks;
  /// Wall-clock shift, per shard, that rebases that shard's driver-relative
  /// trace timestamps onto the coordinator's run-relative timeline (already
  /// applied to worker_traces; the kernel applies it to harvested LP traces).
  std::vector<std::int64_t> shard_trace_shift_ns;
  /// LP -> shard ownership at run end (distributed engine only; index =
  /// LpId). Equals the initial placement unless on-line migration moved LPs;
  /// the kernel keys its harvest merge and trace rebasing on this, never on
  /// the static placement.
  std::vector<std::uint32_t> final_owners;
  /// Shard recoveries performed mid-run (distributed engine with
  /// FaultHooks enabled; empty otherwise), in occurrence order.
  std::vector<RecoveryIncident> recoveries;
};

}  // namespace otw::platform
