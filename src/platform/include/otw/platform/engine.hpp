// Execution-platform abstraction.
//
// A logical process (LP) of the Time Warp kernel is written as a
// *step-based, non-blocking* state machine (LpRunner). An Engine owns the
// LPs, drives their step() functions, transports messages between them and
// supplies each LP with a wall clock. Two engines are provided:
//
//   SimulatedNowEngine - deterministic direct-execution simulation of a
//       network of workstations: each LP has a modeled clock advanced by
//       LpContext::charge(); the engine always steps the LP with the
//       smallest modeled clock, and message arrival times follow the
//       CostModel. Reported execution time = makespan of the modeled
//       machine. This is the substrate for all paper figures.
//
//   ThreadedEngine - one std::thread per LP with mutex-protected mailboxes
//       and real wall clocks; validates the kernel under true concurrency.
//
// Both transports are non-overtaking per (source, destination) pair, which
// the kernel relies on (an anti-message never arrives before the positive
// message it cancels).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

namespace otw::platform {

using LpId = std::uint32_t;

/// Base class of anything an LP sends to another LP. The engine only needs
/// the wire size (for transmission cost); the kernel downcasts on receipt.
class EngineMessage {
 public:
  virtual ~EngineMessage() = default;
  /// Payload bytes charged by the cost model for this message.
  [[nodiscard]] virtual std::uint64_t wire_bytes() const noexcept = 0;
};

/// What an LP reports after one step() call.
enum class StepStatus : std::uint8_t {
  Active,  ///< did useful work or has more pending; step again soon
  Idle,    ///< nothing to do until a new message arrives
  Done,    ///< simulation finished for this LP; never step again
};

/// Per-step services the engine hands to the LP.
class LpContext {
 public:
  virtual ~LpContext() = default;

  /// This LP's identity.
  [[nodiscard]] virtual LpId self() const noexcept = 0;
  /// Number of LPs in the simulation.
  [[nodiscard]] virtual LpId num_lps() const noexcept = 0;

  /// Current wall-clock of this LP in nanoseconds (modeled or real).
  [[nodiscard]] virtual std::uint64_t now_ns() const noexcept = 0;

  /// Accounts `ns` nanoseconds of CPU work to this LP. On the simulated
  /// engine this advances the modeled clock; on the threaded engine it is
  /// a calibrated spin (or a no-op when cost charging is disabled).
  virtual void charge(std::uint64_t ns) noexcept = 0;

  /// Ships a message to `dst` (self-sends are allowed). Sender-side send
  /// cost is charged automatically per the cost model.
  virtual void send(LpId dst, std::unique_ptr<EngineMessage> msg) = 0;

  /// Retrieves the next deliverable message, or nullptr. Receiver-side
  /// receive cost is charged automatically per the cost model.
  virtual std::unique_ptr<EngineMessage> poll() = 0;

  /// Asks to be stepped again no later than `abs_ns` even if Idle is
  /// returned and no message arrives (e.g. an aggregation window expiring).
  /// Valid for the current step only. Engines that poll continuously
  /// (threads) may ignore it.
  virtual void request_wakeup(std::uint64_t abs_ns) noexcept {
    static_cast<void>(abs_ns);
  }

  /// The platform's cost model (for kernel-level cost charging).
  [[nodiscard]] virtual const struct CostModel& costs() const noexcept = 0;
};

/// A logical process as seen by the engine.
class LpRunner {
 public:
  virtual ~LpRunner() = default;
  /// Performs a bounded amount of work. Must not block.
  virtual StepStatus step(LpContext& ctx) = 0;
};

/// Result of driving a set of LPs to completion.
struct EngineRunResult {
  /// Modeled makespan (simulated engine) or elapsed wall time (threaded),
  /// in nanoseconds.
  std::uint64_t execution_time_ns = 0;
  /// Per-LP busy time in nanoseconds (charged work).
  std::vector<std::uint64_t> lp_busy_ns;
  /// Total physical messages transported between LPs.
  std::uint64_t physical_messages = 0;
  /// Total wire bytes transported between LPs.
  std::uint64_t wire_bytes = 0;
  /// Total engine step() invocations.
  std::uint64_t steps = 0;
};

}  // namespace otw::platform
