// Multi-producer single-consumer mailbox for the threaded engine.
//
// Fast path: a lock-free bounded ring (Vyukov-style sequence cells) — a push
// is one CAS on the ticket counter plus a release store, a pop is two loads
// and a release store. Backpressure path: when the ring is full, producers
// divert into a mutex-protected overflow list instead of blocking, so a
// worker whose victim LP is queued behind it can never deadlock on a full
// mailbox.
//
// Ordering guarantee (the kernel's non-overtaking invariant): messages from
// one producer are delivered in the order they were pushed, even across the
// ring -> overflow -> ring transitions. The protocol:
//   * the `overflow_active` flag is set (under the mutex) by the first
//     producer that finds the ring full; while it is set, every producer
//     diverts to the overflow list;
//   * the single consumer drains the ring BEFORE touching overflow (ring
//     entries predate every overflow entry from the same producer), and
//     re-checks the ring under the mutex before popping overflow — the mutex
//     acquisition makes any ring publish that happened-before a producer's
//     overflow push visible;
//   * before popping overflow the consumer additionally requires the ring to
//     be fully drained INCLUDING in-flight claims (dequeue == enqueue
//     ticket). A producer stalled between claiming a cell and publishing it
//     makes the ring head look empty while other producers' already-published
//     entries sit behind the stalled cell; popping overflow past them would
//     reorder those producers. Returning nullopt instead is safe: every
//     publish is followed by a notify that re-steps the consumer LP;
//   * the flag is cleared only when the overflow list is empty, so a
//     producer can only return to the ring after all of its overflow
//     messages were consumed.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "otw/util/assert.hpp"

namespace otw::platform {

template <typename T>
class MpscMailbox {
 public:
  /// `capacity` is rounded up to a power of two (minimum 2).
  explicit MpscMailbox(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) {
      cap <<= 1;
    }
    cells_ = std::vector<Cell>(cap);
    mask_ = cap - 1;
    for (std::size_t i = 0; i < cap; ++i) {
      cells_[i].sequence.store(i, std::memory_order_relaxed);
    }
  }

  MpscMailbox(const MpscMailbox&) = delete;
  MpscMailbox& operator=(const MpscMailbox&) = delete;

  /// Multi-producer enqueue; never fails and never blocks on the consumer
  /// (ring-full diverts to the overflow list).
  void push(T value) {
    if (!overflow_active_.load(std::memory_order_acquire) &&
        try_push_ring(value)) {
      return;
    }
    const std::scoped_lock lock(overflow_mutex_);
    if (!overflow_active_.load(std::memory_order_relaxed)) {
      // The consumer may have drained the ring while we waited for the lock.
      if (try_push_ring(value)) {
        return;
      }
      overflow_active_.store(true, std::memory_order_release);
    }
    overflow_.push_back(std::move(value));
    overflow_pushes_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Single-consumer dequeue. Consumer identity may migrate between worker
  /// threads as long as calls are serialized by a happens-before chain (the
  /// scheduler's LP state machine provides it).
  std::optional<T> pop() {
    if (!overflow_active_.load(std::memory_order_acquire)) {
      return try_pop_ring();
    }
    // Overflow mode: ring entries predate overflow entries from the same
    // producer, so the ring drains first.
    if (auto value = try_pop_ring()) {
      return value;
    }
    const std::scoped_lock lock(overflow_mutex_);
    // Re-check under the mutex: a producer that pushed to overflow published
    // its earlier ring entries before taking the mutex, so they are visible
    // here — popping overflow past them would reorder that producer.
    if (auto value = try_pop_ring()) {
      return value;
    }
    if (overflow_.empty()) {
      overflow_active_.store(false, std::memory_order_release);
      return std::nullopt;
    }
    if (dequeue_pos_ != enqueue_pos_.load(std::memory_order_acquire)) {
      // A claimed-but-unpublished ring cell sits at the head; published
      // entries from other producers may be queued behind it, and popping
      // overflow now would overtake them. Defer — the stalled producer's
      // publish is followed by a notify that re-steps this consumer.
      return std::nullopt;
    }
    T value = std::move(overflow_.front());
    overflow_.pop_front();
    if (overflow_.empty()) {
      overflow_active_.store(false, std::memory_order_release);
    }
    return value;
  }

  [[nodiscard]] std::size_t ring_capacity() const noexcept { return mask_ + 1; }
  /// Messages that took the backpressure (overflow) path.
  [[nodiscard]] std::uint64_t overflow_pushes() const noexcept {
    return overflow_pushes_.load(std::memory_order_relaxed);
  }

 private:
  struct Cell {
    std::atomic<std::size_t> sequence{0};
    T value{};
  };

  bool try_push_ring(T& value) {
    Cell* cell = nullptr;
    std::size_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t seq = cell->sequence.load(std::memory_order_acquire);
      const auto dif = static_cast<std::intptr_t>(seq) -
                       static_cast<std::intptr_t>(pos);
      if (dif == 0) {
        if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          break;
        }
      } else if (dif < 0) {
        return false;  // full
      } else {
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
    cell->value = std::move(value);
    cell->sequence.store(pos + 1, std::memory_order_release);
    return true;
  }

  std::optional<T> try_pop_ring() {
    Cell& cell = cells_[dequeue_pos_ & mask_];
    const std::size_t seq = cell.sequence.load(std::memory_order_acquire);
    if (static_cast<std::intptr_t>(seq) -
            static_cast<std::intptr_t>(dequeue_pos_ + 1) <
        0) {
      // Empty, or the head cell is claimed but not yet published; the
      // producer notifies the destination LP after publishing, so a
      // transiently invisible message is never lost.
      return std::nullopt;
    }
    T value = std::move(cell.value);
    cell.sequence.store(dequeue_pos_ + mask_ + 1, std::memory_order_release);
    ++dequeue_pos_;
    return value;
  }

  std::vector<Cell> cells_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> enqueue_pos_{0};
  alignas(64) std::size_t dequeue_pos_ = 0;  ///< consumer-owned
  alignas(64) std::atomic<bool> overflow_active_{false};
  std::mutex overflow_mutex_;
  std::deque<T> overflow_;  ///< guarded by overflow_mutex_
  std::atomic<std::uint64_t> overflow_pushes_{0};
};

}  // namespace otw::platform
