// Real-concurrency engine: an M-worker : N-LP work-stealing scheduler.
//
// A fixed pool of workers drives all LPs; each worker owns a FIFO run queue
// that other workers steal from (steal_queue.hpp). Messages travel through
// per-LP lock-free MPSC mailboxes (mpsc_mailbox.hpp). An LP that reports
// Idle is parked and re-enqueued only when a message arrives or a
// request_wakeup deadline fires from the timer wheel (timer_wheel.hpp);
// workers with no runnable LP park on an event-driven parking lot — there is
// no idle polling anywhere. charge() optionally spins to model work
// granularity. The simulated-NOW engine remains the measurement substrate;
// this engine validates the kernel under genuine preemption and scales to
// thousands of LPs on a handful of cores.
#pragma once

#include <cstdint>
#include <vector>

#include "otw/obs/live.hpp"
#include "otw/platform/cost_model.hpp"
#include "otw/platform/engine.hpp"

namespace otw::platform {

struct ThreadedConfig {
  CostModel costs;
  /// When true, charge(ns) busy-spins for ns of wall time (scaled by
  /// spin_scale); when false it only accumulates accounting.
  bool spin_on_charge = false;
  /// Wall-nanoseconds actually spun per charged nanosecond.
  double spin_scale = 1.0;
  /// Legacy knob of the one-thread-per-LP engine (sleep between idle polls).
  /// The work-stealing scheduler parks event-driven and ignores it; kept so
  /// existing configurations still compile.
  std::uint32_t idle_sleep_us = 50;
  /// Worker threads; 0 = min(hardware concurrency, number of LPs).
  std::uint32_t num_workers = 0;
  /// Per-LP mailbox ring slots (rounded up to a power of two). Overflowing
  /// messages divert to the mailbox's backpressure list, so this bounds
  /// memory on the fast path, not correctness.
  std::size_t mailbox_capacity = 1024;
  /// Timer-wheel granularity for request_wakeup deadlines.
  std::uint64_t timer_tick_ns = 16'384;
  /// Per-worker scheduler trace-ring capacity (park/steal/wake records,
  /// drained into EngineRunResult::worker_traces). 0 = off.
  std::size_t scheduler_trace_capacity = 0;
  /// Live introspection registry for engine-wide occupancy gauges (mailbox
  /// population, parked workers); null = no live publishing. Must outlive
  /// the run. Updates are relaxed fetch_adds — digest-neutral.
  obs::live::LiveMetricsRegistry* live = nullptr;
};

class ThreadedEngine {
 public:
  explicit ThreadedEngine(ThreadedConfig config) : config_(config) {}

  /// Runs all LPs on the worker pool until each reports Done. Exceptions
  /// thrown by any LP abort the run and are rethrown (first one wins) after
  /// all workers have been joined.
  EngineRunResult run(const std::vector<LpRunner*>& lps);

  [[nodiscard]] const ThreadedConfig& config() const noexcept { return config_; }

 private:
  ThreadedConfig config_;
};

}  // namespace otw::platform
