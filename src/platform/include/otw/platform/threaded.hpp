// Real-concurrency engine: one std::thread per LP, mutex-protected
// mailboxes, wall clocks. Used to validate the kernel under genuine
// preemption and message races; the simulated-NOW engine is the measurement
// substrate. charge() optionally spins to model work granularity.
#pragma once

#include <cstdint>
#include <vector>

#include "otw/platform/cost_model.hpp"
#include "otw/platform/engine.hpp"

namespace otw::platform {

struct ThreadedConfig {
  CostModel costs;
  /// When true, charge(ns) busy-spins for ns of wall time (scaled by
  /// spin_scale); when false it only accumulates accounting.
  bool spin_on_charge = false;
  /// Wall-nanoseconds actually spun per charged nanosecond.
  double spin_scale = 1.0;
  /// Sleep between polls when an LP reports Idle, microseconds.
  std::uint32_t idle_sleep_us = 50;
};

class ThreadedEngine {
 public:
  explicit ThreadedEngine(ThreadedConfig config) : config_(config) {}

  /// Runs each LP on its own thread until all report Done. Exceptions thrown
  /// by any LP are captured and rethrown (first one wins) after all threads
  /// have been joined.
  EngineRunResult run(const std::vector<LpRunner*>& lps);

  [[nodiscard]] const ThreadedConfig& config() const noexcept { return config_; }

 private:
  ThreadedConfig config_;
};

}  // namespace otw::platform
