// Deterministic direct-execution simulation of a network of workstations.
//
// Every LP owns a modeled wall clock. The engine always steps the LP with
// the globally smallest clock, so a message sent at modeled time t (arriving
// at t + send cost + wire latency) can never be delivered into another LP's
// past: the sender held the minimum clock when it sent. Idle LPs are parked
// and woken at the arrival time of their next message. The result is a
// deterministic, causally consistent interleaving whose makespan plays the
// role of the paper's measured execution time.
#pragma once

#include <cstdint>
#include <memory>
#include <queue>
#include <vector>

#include "otw/platform/cost_model.hpp"
#include "otw/platform/engine.hpp"

namespace otw::platform {

struct SimulatedNowConfig {
  CostModel costs;
  /// Safety valve: abort the run after this many step() invocations.
  std::uint64_t max_steps = 2'000'000'000;
};

class SimulatedNowEngine {
 public:
  explicit SimulatedNowEngine(SimulatedNowConfig config) : config_(config) {}

  /// Drives all LPs until each reports Done. Throws std::runtime_error on
  /// deadlock (all LPs idle with no message in flight) or step overrun —
  /// either indicates a kernel bug, not a user error.
  EngineRunResult run(const std::vector<LpRunner*>& lps);

  [[nodiscard]] const SimulatedNowConfig& config() const noexcept { return config_; }

 private:
  struct InFlight {
    std::uint64_t arrival_ns;
    std::uint64_t sequence;  // tie-break: preserves global send order
    std::unique_ptr<EngineMessage> message;
  };
  struct InFlightLater {
    bool operator()(const InFlight& a, const InFlight& b) const noexcept {
      if (a.arrival_ns != b.arrival_ns) return a.arrival_ns > b.arrival_ns;
      return a.sequence > b.sequence;
    }
  };
  struct LpState;
  class Context;

  SimulatedNowConfig config_;
};

}  // namespace otw::platform
