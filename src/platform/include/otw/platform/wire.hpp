// Wire format for cross-process engine messages.
//
// Every EngineMessage subclass that can leave the process carries a
// registered type tag (WireTag) and implements encode_wire(); a process-wide
// WireRegistry maps the tag back to a decoder on the receiving side. This
// replaces the old "downcast on receipt" scheme: transports (and the kernel)
// dispatch on the tag, and a message type nobody registered simply cannot
// travel between processes — the failure is a descriptive exception at the
// send site, not a silent drop at the receiver.
//
// Encoding is explicit little-endian field-by-field (WireWriter/WireReader):
// no struct memcpy, so the frame layout is independent of padding and is
// documented per message type (DESIGN.md section 8). Frames on the socket
// are length-prefixed:
//
//   u32 payload_len | u16 tag | u16 flags | u32 src_lp | u32 dst_lp
//   | u64 send_ns | payload
//
// (24-byte header, see FrameHeader). `send_ns` stamps the sender's
// steady_clock at encode time, pre-shifted into the coordinator's clock
// domain by the sender's estimated offset (see DESIGN.md section 10) — it
// feeds the per-link latency and relay-residency histograms and is ignored
// by the event path, so it is telemetry, never ordering. The same header
// carries the transport's own control frames (hello/result), which use
// tags above kReservedTagBase.
#pragma once

#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <vector>

#include "otw/util/assert.hpp"

namespace otw::platform {

class EngineMessage;

/// Registered message-type tag. 0 means "not wire-capable" (local-only
/// message); tags >= kReservedTagBase are reserved for the transport itself.
using WireTag = std::uint16_t;
inline constexpr WireTag kNoWireTag = 0;
inline constexpr WireTag kReservedTagBase = 0xFF00;

// Transport-reserved control tags (>= kReservedTagBase, never in the
// registry). DESIGN.md section 8b documents this table; tools/check_docs.py
// fails the build when they drift apart.
inline constexpr WireTag kTagHello = 0xFF01;       ///< worker -> coordinator: src_lp = shard, payload u16 mesh port
inline constexpr WireTag kTagResult = 0xFF02;      ///< worker -> coordinator: shard summary + harvest blob
inline constexpr WireTag kTagStats = 0xFF03;       ///< worker -> coordinator: live snapshot
inline constexpr WireTag kTagHelloAck = 0xFF04;    ///< coordinator -> worker: send_ns = t_c, payload = peer directory
inline constexpr WireTag kTagTime = 0xFF05;        ///< clock refresh ping / echo
inline constexpr WireTag kTagMigrateCmd = 0xFF06;  ///< coordinator -> source shard: freeze + ship one LP
inline constexpr WireTag kTagMigrate = 0xFF07;     ///< source -> destination peer link: serialized LP (dst_lp = LP id)
inline constexpr WireTag kTagMigrated = 0xFF08;    ///< source -> coordinator: migration complete, rebind now
inline constexpr WireTag kTagRebind = 0xFF09;      ///< coordinator -> all workers: epoch-tagged owner update
inline constexpr WireTag kTagPeerHello = 0xFF0A;   ///< identity frame on a freshly dialed peer link (src_lp = shard)
inline constexpr WireTag kTagDone = 0xFF0B;        ///< worker -> coordinator: local active set drained, payload u64 migrations_in
inline constexpr WireTag kTagFinish = 0xFF0C;      ///< coordinator -> all workers: harvest and report RESULT
inline constexpr WireTag kTagSnapCtl = 0xFF0D;     ///< coordinator -> all workers: snapshot phase change (payload u8 phase + u32 epoch)
inline constexpr WireTag kTagSnapAck = 0xFF0E;     ///< worker -> coordinator: settle counters / cut outcome for one poll round
inline constexpr WireTag kTagSnapData = 0xFF0F;    ///< worker -> coordinator: serialized shard blob for one snapshot epoch
inline constexpr WireTag kTagRecover = 0xFF10;     ///< coordinator -> survivors: dead shard id + replacement mesh port + epoch
inline constexpr WireTag kTagRestore = 0xFF11;     ///< coordinator -> replacement worker: shard blob of the last complete cut
inline constexpr WireTag kTagRecovered = 0xFF12;   ///< worker -> coordinator: local restore finished, frozen until resume
inline constexpr WireTag kTagRecoverMark = 0xFF13; ///< survivor -> surviving peers: incarnation boundary on a peer link

/// Field names of the MIGRATE frame payload, in wire order (nested: the
/// `runtimes` group repeats per object runtime, `pending` is that runtime's
/// unprocessed event list). DESIGN.md section 8b documents the layout;
/// tools/check_docs.py cross-checks every name listed here against it.
inline constexpr const char* kMigrateFrameFields[] = {
    "epoch",      "gvt",          "gvt_agent",    "lp_stats",
    "events_total", "samples",    "runtimes",     "object",
    "lvt",        "last_position", "instance_seq", "state",
    "object_stats", "object_samples", "pending",
};

/// Field names of the snapshot file container ("OTWSNAP1", written by
/// tw::snapshot and by the coordinator's spill-to-disk path), in file order.
/// The `shard` group repeats num_shards times; each `blob` holds that
/// shard's LPs in the MIGRATE revival layout (one `lp_id`/`lp_bytes` framed
/// record per LP). DESIGN.md section 8c documents the layout;
/// tools/check_docs.py cross-checks every name listed here against it.
inline constexpr const char* kSnapshotManifestFields[] = {
    "magic",     "version",  "engine", "epoch",    "gvt",
    "num_lps",   "num_shards", "shard", "lp_count", "blob_bytes",
    "lp_id",     "lp_bytes", "blob",
};

/// Append-only little-endian encoder.
class WireWriter {
 public:
  explicit WireWriter(std::vector<std::uint8_t>& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) { append(&v, sizeof v); }
  void u32(std::uint32_t v) { append(&v, sizeof v); }
  void u64(std::uint64_t v) { append(&v, sizeof v); }
  void bytes(const void* data, std::size_t len) { append(data, len); }

  [[nodiscard]] std::size_t size() const noexcept { return out_.size(); }

 private:
  void append(const void* data, std::size_t len) {
    if (len == 0) {
      return;  // data may be null for empty spans
    }
    const auto* p = static_cast<const std::uint8_t*>(data);
    out_.insert(out_.end(), p, p + len);
  }
  std::vector<std::uint8_t>& out_;
};

/// Bounds-checked little-endian decoder over a received payload.
class WireReader {
 public:
  WireReader(const std::uint8_t* data, std::size_t len)
      : data_(data), len_(len) {}

  [[nodiscard]] std::uint8_t u8() { return take<std::uint8_t>(); }
  [[nodiscard]] std::uint16_t u16() { return take<std::uint16_t>(); }
  [[nodiscard]] std::uint32_t u32() { return take<std::uint32_t>(); }
  [[nodiscard]] std::uint64_t u64() { return take<std::uint64_t>(); }
  void bytes(void* out, std::size_t len) {
    if (len == 0) {
      return;  // out may be null for empty spans
    }
    OTW_REQUIRE_MSG(pos_ + len <= len_, "wire frame truncated");
    std::memcpy(out, data_ + pos_, len);
    pos_ += len;
  }

  [[nodiscard]] std::size_t remaining() const noexcept { return len_ - pos_; }
  [[nodiscard]] bool done() const noexcept { return pos_ == len_; }

 private:
  template <typename T>
  [[nodiscard]] T take() {
    T v;
    bytes(&v, sizeof v);
    return v;
  }
  const std::uint8_t* data_;
  std::size_t len_;
  std::size_t pos_ = 0;
};

/// Length-prefixed frame header, exactly as laid out on the socket.
struct FrameHeader {
  std::uint32_t payload_len = 0;
  WireTag tag = kNoWireTag;
  std::uint16_t flags = 0;
  std::uint32_t src_lp = 0;
  std::uint32_t dst_lp = 0;
  /// Sender steady_clock at encode time, in the coordinator clock domain
  /// (sender adds its estimated offset). Telemetry only.
  std::uint64_t send_ns = 0;
};
inline constexpr std::size_t kFrameHeaderBytes = 24;

void encode_frame_header(const FrameHeader& h, std::uint8_t out[kFrameHeaderBytes]);
[[nodiscard]] FrameHeader decode_frame_header(const std::uint8_t in[kFrameHeaderBytes]);

/// Process-wide tag -> decoder table. Registration happens once at startup
/// (idempotent per tag as long as the decoder is the same logical type);
/// lookups are lock-free reads after that. register_decoder REQUIREs that a
/// tag is not re-registered to a different decoder identity.
class WireRegistry {
 public:
  using Decoder = std::function<std::unique_ptr<EngineMessage>(WireReader&)>;

  /// The singleton instance (one registry per process; forked workers
  /// inherit it, which is what makes coordinator and shards agree).
  static WireRegistry& instance();

  /// Registers `decoder` for `tag`. `name` identifies the message type for
  /// diagnostics and idempotence (re-registering the same tag+name is a
  /// no-op; same tag with a different name is a contract violation).
  void register_decoder(WireTag tag, const char* name, Decoder decoder);

  /// Decodes one payload. Throws ContractViolation on an unknown tag.
  [[nodiscard]] std::unique_ptr<EngineMessage> decode(WireTag tag,
                                                      WireReader& reader) const;

  [[nodiscard]] bool knows(WireTag tag) const noexcept;
  [[nodiscard]] const char* name_of(WireTag tag) const noexcept;

 private:
  struct Entry {
    WireTag tag = kNoWireTag;
    const char* name = nullptr;
    Decoder decoder;
  };
  std::vector<Entry> entries_;
  [[nodiscard]] const Entry* find(WireTag tag) const noexcept;
};

}  // namespace otw::platform
