// "OTWSNAP1" snapshot container: the on-disk form of one snapshot epoch.
//
// Written by the distributed coordinator when a complete epoch spills to
// disk (FaultHooks::spill_dir) and by tw::snapshot for a suspended
// sequential run; read back by tw::restore and rendered by `twreport
// snapshot`. Layout (all integers little-endian, via the wire codec; field
// names tracked by wire.hpp kSnapshotManifestFields and DESIGN.md section
// 8c):
//
//   char[8]  magic      "OTWSNAP1"
//   u32      version    1
//   u32      engine     0 = sequential, 1 = distributed
//   u32      epoch      snapshot epoch (0 for sequential suspends)
//   u64      gvt        virtual time of the cut, in ticks
//   u32      num_lps    LPs in the simulation (objects, for sequential)
//   u32      num_shards shard sections that follow (1 for sequential)
//   then per shard:
//     u32    shard      shard id
//     u64    blob_bytes length of the opaque shard blob
//     bytes  blob       u32 lp_count, then per LP {u32 lp_id, u32 lp_bytes,
//                       payload} — the MIGRATE revival layout for the
//                       distributed engine, the sequential object layout
//                       (tw/snapshot.hpp) otherwise
//
// Readers REQUIRE-fail with a descriptive message on a bad magic, an
// unknown version, or a truncated file — a half-written snapshot must never
// restore silently.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace otw::platform {

inline constexpr char kSnapshotMagic[8] = {'O', 'T', 'W', 'S',
                                           'N', 'A', 'P', '1'};
inline constexpr std::uint32_t kSnapshotVersion = 1;

/// SnapshotImage::engine values.
inline constexpr std::uint32_t kSnapshotEngineSequential = 0;
inline constexpr std::uint32_t kSnapshotEngineDistributed = 1;

struct SnapshotShardBlob {
  std::uint32_t shard = 0;
  std::vector<std::uint8_t> blob;

  /// LPs serialized in this blob (its leading u32), 0 when empty.
  [[nodiscard]] std::uint32_t lp_count() const noexcept;
};

/// One complete snapshot epoch, engine-agnostic.
struct SnapshotImage {
  std::uint32_t engine = kSnapshotEngineDistributed;
  std::uint32_t epoch = 0;
  std::uint64_t gvt_ticks = 0;
  std::uint32_t num_lps = 0;
  std::vector<SnapshotShardBlob> shards;

  [[nodiscard]] std::uint64_t total_blob_bytes() const noexcept {
    std::uint64_t n = 0;
    for (const SnapshotShardBlob& s : shards) {
      n += s.blob.size();
    }
    return n;
  }
};

/// Serializes `image` into the container layout (magic through blobs).
[[nodiscard]] std::vector<std::uint8_t> encode_snapshot_image(
    const SnapshotImage& image);

/// Parses a container byte stream; REQUIRE-fails on bad magic / version /
/// truncation.
[[nodiscard]] SnapshotImage decode_snapshot_image(
    const std::uint8_t* data, std::size_t len);

/// Writes `image` to `path` (truncating). Throws std::runtime_error on I/O
/// failure.
void write_snapshot_file(const std::string& path, const SnapshotImage& image);

/// Reads a container file back. Throws std::runtime_error when the file
/// cannot be opened; REQUIRE-fails on malformed content.
[[nodiscard]] SnapshotImage read_snapshot_file(const std::string& path);

}  // namespace otw::platform
