#include "otw/platform/simulated_now.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>

#include "otw/util/assert.hpp"

namespace otw::platform {

namespace {
constexpr std::uint64_t kNever = std::numeric_limits<std::uint64_t>::max();
}

struct SimulatedNowEngine::LpState {
  std::uint64_t clock_ns = 0;
  std::uint64_t busy_ns = 0;
  StepStatus status = StepStatus::Active;
  std::uint64_t wake_hint_ns = kNever;  ///< request_wakeup from the last step
  std::priority_queue<InFlight, std::vector<InFlight>, InFlightLater> inbox;

  [[nodiscard]] std::uint64_t next_arrival() const noexcept {
    return inbox.empty() ? kNever : inbox.top().arrival_ns;
  }

  /// Modeled time at which this LP can usefully run, or kNever if parked.
  [[nodiscard]] std::uint64_t ready_time() const noexcept {
    if (status == StepStatus::Done) {
      return kNever;
    }
    const std::uint64_t arrival = next_arrival();
    if (arrival <= clock_ns) {
      return clock_ns;  // a message is already due
    }
    if (status == StepStatus::Idle) {
      // Wakes at the next message arrival or the self-requested deadline
      // (kNever on both = parked).
      return std::min(arrival, std::max(wake_hint_ns, clock_ns));
    }
    return clock_ns;  // Active: runnable right now
  }
};

class SimulatedNowEngine::Context final : public LpContext {
 public:
  Context(LpId self, LpId num_lps, const CostModel& costs,
          std::vector<LpState>& lps, EngineRunResult& totals,
          std::uint64_t& send_sequence)
      : self_(self),
        num_lps_(num_lps),
        costs_(costs),
        lps_(lps),
        totals_(totals),
        send_sequence_(send_sequence) {}

  [[nodiscard]] LpId self() const noexcept override { return self_; }
  [[nodiscard]] LpId num_lps() const noexcept override { return num_lps_; }

  [[nodiscard]] std::uint64_t now_ns() const noexcept override {
    return lps_[self_].clock_ns;
  }

  void charge(std::uint64_t ns) noexcept override {
    lps_[self_].clock_ns += ns;
    lps_[self_].busy_ns += ns;
  }

  void send(LpId dst, std::unique_ptr<EngineMessage> msg) override {
    OTW_REQUIRE(dst < num_lps_);
    OTW_REQUIRE(msg != nullptr);
    const std::uint64_t bytes = msg->wire_bytes();
    charge(costs_.send_cost_ns(bytes));
    const std::uint64_t arrival =
        dst == self_ ? lps_[self_].clock_ns
                     : lps_[self_].clock_ns + costs_.wire_latency_ns;
    lps_[dst].inbox.push(InFlight{arrival, send_sequence_++, std::move(msg)});
    ++totals_.physical_messages;
    totals_.wire_bytes += bytes;
  }

  std::unique_ptr<EngineMessage> poll() override {
    auto& lp = lps_[self_];
    if (lp.inbox.empty() || lp.inbox.top().arrival_ns > lp.clock_ns) {
      return nullptr;
    }
    // priority_queue::top() is const; the unique_ptr move is safe because
    // the element is popped immediately after.
    auto msg = std::move(const_cast<InFlight&>(lp.inbox.top()).message);
    lp.inbox.pop();
    charge(costs_.msg_recv_overhead_ns);
    return msg;
  }

  void request_wakeup(std::uint64_t abs_ns) noexcept override {
    lps_[self_].wake_hint_ns = std::min(lps_[self_].wake_hint_ns, abs_ns);
  }

  [[nodiscard]] const CostModel& costs() const noexcept override { return costs_; }

 private:
  LpId self_;
  LpId num_lps_;
  const CostModel& costs_;
  std::vector<LpState>& lps_;
  EngineRunResult& totals_;
  std::uint64_t& send_sequence_;
};

EngineRunResult SimulatedNowEngine::run(const std::vector<LpRunner*>& lps) {
  OTW_REQUIRE(!lps.empty());
  for (auto* lp : lps) {
    OTW_REQUIRE(lp != nullptr);
  }

  const auto n = static_cast<LpId>(lps.size());
  std::vector<LpState> states(n);
  EngineRunResult result;
  result.lp_busy_ns.assign(n, 0);
  std::uint64_t send_sequence = 0;

  std::uint64_t remaining = n;
  while (remaining > 0) {
    // Pick the LP with the smallest ready time (ties by id: deterministic).
    LpId chosen = n;
    std::uint64_t best = kNever;
    for (LpId i = 0; i < n; ++i) {
      const std::uint64_t ready = states[i].ready_time();
      if (ready < best) {
        best = ready;
        chosen = i;
      }
    }
    if (chosen == n) {
      throw std::runtime_error(
          "SimulatedNowEngine deadlock: all live LPs are idle with no message "
          "in flight (kernel failed to detect termination)");
    }

    auto& lp = states[chosen];
    // An idle LP scheduled at its next arrival fast-forwards to it.
    if (best > lp.clock_ns) {
      lp.clock_ns = best;
    }
    lp.wake_hint_ns = kNever;  // hints are valid for one step only

    Context ctx(chosen, n, config_.costs, states, result, send_sequence);
    lp.status = lps[chosen]->step(ctx);
    if (lp.status == StepStatus::Done) {
      --remaining;
    }

    if (++result.steps > config_.max_steps) {
      throw std::runtime_error("SimulatedNowEngine exceeded max_steps=" +
                               std::to_string(config_.max_steps));
    }
  }

  for (LpId i = 0; i < n; ++i) {
    result.execution_time_ns = std::max(result.execution_time_ns, states[i].clock_ns);
    result.lp_busy_ns[i] = states[i].busy_ns;
  }
  return result;
}

}  // namespace otw::platform
