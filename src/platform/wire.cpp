#include "otw/platform/wire.hpp"

#include <cstring>
#include <string>

#include "otw/platform/engine.hpp"

namespace otw::platform {

void EngineMessage::encode_wire(WireWriter& writer) const {
  static_cast<void>(writer);
  OTW_REQUIRE_MSG(false,
                  "EngineMessage with a wire tag must override encode_wire");
}

void encode_frame_header(const FrameHeader& h, std::uint8_t out[kFrameHeaderBytes]) {
  std::memcpy(out + 0, &h.payload_len, 4);
  std::memcpy(out + 4, &h.tag, 2);
  std::memcpy(out + 6, &h.flags, 2);
  std::memcpy(out + 8, &h.src_lp, 4);
  std::memcpy(out + 12, &h.dst_lp, 4);
  std::memcpy(out + 16, &h.send_ns, 8);
}

FrameHeader decode_frame_header(const std::uint8_t in[kFrameHeaderBytes]) {
  FrameHeader h;
  std::memcpy(&h.payload_len, in + 0, 4);
  std::memcpy(&h.tag, in + 4, 2);
  std::memcpy(&h.flags, in + 6, 2);
  std::memcpy(&h.src_lp, in + 8, 4);
  std::memcpy(&h.dst_lp, in + 12, 4);
  std::memcpy(&h.send_ns, in + 16, 8);
  return h;
}

WireRegistry& WireRegistry::instance() {
  static WireRegistry registry;
  return registry;
}

const WireRegistry::Entry* WireRegistry::find(WireTag tag) const noexcept {
  for (const Entry& e : entries_) {
    if (e.tag == tag) {
      return &e;
    }
  }
  return nullptr;
}

void WireRegistry::register_decoder(WireTag tag, const char* name,
                                    Decoder decoder) {
  OTW_REQUIRE_MSG(tag != kNoWireTag, "tag 0 is reserved for local-only messages");
  OTW_REQUIRE_MSG(tag < kReservedTagBase,
                  "tags >= 0xFF00 are reserved for the transport");
  if (const Entry* existing = find(tag)) {
    OTW_REQUIRE_MSG(std::strcmp(existing->name, name) == 0,
                    std::string("wire tag collision: tag already bound to ") +
                        existing->name);
    return;  // idempotent re-registration
  }
  entries_.push_back(Entry{tag, name, std::move(decoder)});
}

std::unique_ptr<EngineMessage> WireRegistry::decode(WireTag tag,
                                                    WireReader& reader) const {
  const Entry* entry = find(tag);
  OTW_REQUIRE_MSG(entry != nullptr,
                  "no decoder registered for wire tag " + std::to_string(tag));
  return entry->decoder(reader);
}

bool WireRegistry::knows(WireTag tag) const noexcept {
  return find(tag) != nullptr;
}

const char* WireRegistry::name_of(WireTag tag) const noexcept {
  const Entry* entry = find(tag);
  return entry != nullptr ? entry->name : "?";
}

}  // namespace otw::platform
