#include "otw/platform/snapshot_file.hpp"

#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "otw/platform/wire.hpp"
#include "otw/util/assert.hpp"

namespace otw::platform {

std::uint32_t SnapshotShardBlob::lp_count() const noexcept {
  if (blob.size() < 4) {
    return 0;
  }
  std::uint32_t n = 0;
  std::memcpy(&n, blob.data(), 4);
  return n;
}

std::vector<std::uint8_t> encode_snapshot_image(const SnapshotImage& image) {
  std::vector<std::uint8_t> out;
  WireWriter w(out);
  w.bytes(kSnapshotMagic, sizeof kSnapshotMagic);
  w.u32(kSnapshotVersion);
  w.u32(image.engine);
  w.u32(image.epoch);
  w.u64(image.gvt_ticks);
  w.u32(image.num_lps);
  w.u32(static_cast<std::uint32_t>(image.shards.size()));
  for (const SnapshotShardBlob& s : image.shards) {
    w.u32(s.shard);
    w.u64(s.blob.size());
    w.bytes(s.blob.data(), s.blob.size());
  }
  return out;
}

SnapshotImage decode_snapshot_image(const std::uint8_t* data, std::size_t len) {
  WireReader r(data, len);
  OTW_REQUIRE_MSG(r.remaining() >= sizeof kSnapshotMagic + 4,
                  "snapshot truncated before the header");
  char magic[sizeof kSnapshotMagic];
  r.bytes(magic, sizeof magic);
  OTW_REQUIRE_MSG(std::memcmp(magic, kSnapshotMagic, sizeof magic) == 0,
                  "not an OTWSNAP1 snapshot (bad magic)");
  const std::uint32_t version = r.u32();
  OTW_REQUIRE_MSG(version == kSnapshotVersion,
                  "unsupported snapshot version");
  SnapshotImage image;
  OTW_REQUIRE_MSG(r.remaining() >= 4 + 4 + 8 + 4 + 4,
                  "snapshot truncated inside the header");
  image.engine = r.u32();
  image.epoch = r.u32();
  image.gvt_ticks = r.u64();
  image.num_lps = r.u32();
  const std::uint32_t num_shards = r.u32();
  image.shards.reserve(num_shards);
  for (std::uint32_t i = 0; i < num_shards; ++i) {
    OTW_REQUIRE_MSG(r.remaining() >= 4 + 8,
                    "snapshot truncated inside a shard header");
    SnapshotShardBlob s;
    s.shard = r.u32();
    const std::uint64_t blob_bytes = r.u64();
    OTW_REQUIRE_MSG(r.remaining() >= blob_bytes,
                    "snapshot truncated inside a shard blob");
    s.blob.resize(static_cast<std::size_t>(blob_bytes));
    r.bytes(s.blob.data(), s.blob.size());
    image.shards.push_back(std::move(s));
  }
  OTW_REQUIRE_MSG(r.done(), "trailing bytes after the snapshot image");
  return image;
}

void write_snapshot_file(const std::string& path, const SnapshotImage& image) {
  const std::vector<std::uint8_t> bytes = encode_snapshot_image(image);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    throw std::runtime_error("snapshot: cannot open " + path + " for writing");
  }
  const std::size_t n = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const int rc = std::fclose(f);
  if (n != bytes.size() || rc != 0) {
    throw std::runtime_error("snapshot: short write to " + path);
  }
}

SnapshotImage read_snapshot_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw std::runtime_error("snapshot: cannot open " + path);
  }
  std::vector<std::uint8_t> bytes;
  std::uint8_t chunk[1 << 16];
  std::size_t n;
  while ((n = std::fread(chunk, 1, sizeof chunk, f)) > 0) {
    bytes.insert(bytes.end(), chunk, chunk + n);
  }
  std::fclose(f);
  return decode_snapshot_image(bytes.data(), bytes.size());
}

}  // namespace otw::platform
