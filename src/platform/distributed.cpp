#include "otw/platform/distributed.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <deque>
#include <exception>
#include <limits>
#include <optional>
#include <stdexcept>
#include <string>

#include "otw/platform/wire.hpp"
#include "otw/util/assert.hpp"
#include "otw/util/net.hpp"

namespace otw::platform {

namespace {

constexpr std::uint64_t kNever = std::numeric_limits<std::uint64_t>::max();

/// Shortest gap between two clock-refresh pings from one worker. Pings are
/// triggered by received GVT announces, which can burst; the estimate only
/// improves on a lower-RTT sample, so pinging faster than this is waste.
constexpr std::uint64_t kTimePingMinGapNs = 50'000'000;

/// FrameHeader.flags bit for control-plane frames (EngineMessage::wire_control).
constexpr std::uint16_t kFlagControl = 0x0001;

// POSIX plumbing lives in util::net (shared with the obs::live endpoint);
// these shims pin the error-message prefix for this transport.
const std::string kNetCtx = "DistributedEngine";

using util::net::mono_ns;

[[noreturn]] void throw_errno(const std::string& what) {
  util::net::throw_errno(kNetCtx, what);
}

void set_nonblocking(int fd) { util::net::set_nonblocking(fd, kNetCtx); }

void set_nodelay(int fd) {
  // Nagle would serialize the latency the aggregation layer is measuring;
  // batching is DyMA's job, not the kernel's.
  util::net::set_nodelay(fd, kNetCtx);
}

void write_all(int fd, const std::uint8_t* data, std::size_t len) {
  util::net::write_all(fd, data, len, kNetCtx);
}

bool read_exact(int fd, std::uint8_t* data, std::size_t len) {
  return util::net::read_exact(fd, data, len, kNetCtx);
}

void send_frame(int fd, const FrameHeader& header, const std::uint8_t* payload) {
  std::uint8_t raw[kFrameHeaderBytes];
  encode_frame_header(header, raw);
  write_all(fd, raw, kFrameHeaderBytes);
  if (header.payload_len > 0) {
    write_all(fd, payload, header.payload_len);
  }
}

/// Appends a framed message to an outbound byte queue (for links flushed
/// non-blockingly: two peers writing to each other with blocking sockets
/// and full kernel buffers would deadlock; queued writes never block).
void queue_frame(std::vector<std::uint8_t>& out, const FrameHeader& header,
                 const std::uint8_t* payload) {
  std::uint8_t raw[kFrameHeaderBytes];
  encode_frame_header(header, raw);
  out.insert(out.end(), raw, raw + kFrameHeaderBytes);
  if (header.payload_len > 0) {
    out.insert(out.end(), payload, payload + header.payload_len);
  }
}

/// Writes as much queued output as the socket accepts without blocking;
/// POLLOUT resumes the rest.
void flush_out(int fd, std::vector<std::uint8_t>& out, std::size_t& out_pos,
               const char* what) {
  while (out_pos < out.size()) {
    const ssize_t n = ::send(fd, out.data() + out_pos, out.size() - out_pos,
                             MSG_NOSIGNAL);
    if (n > 0) {
      out_pos += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return;  // kernel buffer full; POLLOUT will resume
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    throw_errno(what);
  }
  out.clear();
  out_pos = 0;
}

// ---------------------------------------------------------------------------
// Child side: the shard driver.
// ---------------------------------------------------------------------------

struct ShardLp {
  ShardLp() = default;
  ShardLp(ShardLp&&) = default;
  ShardLp& operator=(ShardLp&&) = default;

  LpId id = 0;
  LpRunner* runner = nullptr;
  StepStatus status = StepStatus::Active;
  bool migrated_out = false;  ///< entry kept (busy_ns) after the LP left
  std::uint64_t busy_ns = 0;
  std::uint64_t wake_hint_ns = kNever;
  std::deque<std::unique_ptr<EngineMessage>> inbox;
};

/// One direct worker-to-worker TCP stream (mesh topology). Output is queued
/// and flushed non-blockingly; input bytes accumulate until whole frames
/// parse out. One stream per ordered pair is exactly the per-(src,dst) FIFO
/// the kernel's non-overtaking contract needs.
struct PeerLink {
  int fd = -1;
  std::vector<std::uint8_t> in;
  std::vector<std::uint8_t> out;
  std::size_t out_pos = 0;

  [[nodiscard]] bool out_pending() const noexcept { return out_pos < out.size(); }
};

/// Everything one worker process accumulates and ships home in its RESULT.
struct ShardTotals {
  std::uint64_t steps = 0;
  std::uint64_t physical_messages = 0;
  std::uint64_t wire_bytes = 0;
  DistStats dist;
};

class ShardDriver {
 public:
  ShardDriver(std::uint32_t shard, const DistributedConfig& config,
              const std::vector<LpRunner*>& all_lps, int fd,
              std::vector<PeerLink> links, const LiveStatsHooks& live,
              std::int64_t clock_offset_ns, std::uint64_t clock_rtt_ns)
      : shard_(shard),
        config_(config),
        live_(live),
        clock_offset_ns_(clock_offset_ns),
        clock_rtt_ns_(clock_rtt_ns),
        num_lps_(static_cast<LpId>(all_lps.size())),
        fd_(fd),
        all_lps_(all_lps),
        links_(std::move(links)),
        mesh_(config.topology == Topology::Mesh && config.num_shards > 1),
        trace_(config.wire_trace_capacity ? config.wire_trace_capacity : 1),
        epoch_ns_(mono_ns()) {
    owners_.resize(num_lps_);
    epochs_.assign(num_lps_, 0);
    lp_index_.assign(num_lps_, SIZE_MAX);
    pending_in_.resize(num_lps_);
    for (LpId lp = 0; lp < num_lps_; ++lp) {
      owners_[lp] = initial_owner_of(lp, config_);
      if (owners_[lp] == shard_) {
        lp_index_[lp] = lps_.size();
        ShardLp state;
        state.id = lp;
        state.runner = all_lps[lp];
        lps_.push_back(std::move(state));
      }
    }
    remaining_ = lps_.size();
  }

  void run();

  /// Encodes the shard summary + harvest blob as the RESULT payload.
  void encode_result(WireWriter& w, const std::vector<std::uint8_t>& harvest) const;

  [[nodiscard]] std::uint64_t now_ns() const noexcept {
    return mono_ns() - epoch_ns_;
  }

  /// Local steady clock shifted into the coordinator's clock domain; what
  /// every outgoing frame stamps into FrameHeader::send_ns.
  [[nodiscard]] std::uint64_t aligned_now_ns() const noexcept {
    return static_cast<std::uint64_t>(static_cast<std::int64_t>(mono_ns()) +
                                      clock_offset_ns_);
  }

  void deliver_local(LpId dst, std::unique_ptr<EngineMessage> msg) {
    if (live_.bank != nullptr) {
      msg->obs_enqueue_ns = now_ns();
    }
    lps_[lp_index_[dst]].inbox.push_back(std::move(msg));
  }

  void send_remote(LpId src, LpId dst, const EngineMessage& msg);

  [[nodiscard]] const std::vector<std::uint32_t>& owners() const noexcept {
    return owners_;
  }

  ShardTotals totals_;

 private:
  void drain_socket();
  void drain_links();
  void handle_coord_frame(const FrameHeader& header, const std::uint8_t* payload);
  void handle_peer_frame(std::uint32_t peer, const std::uint8_t* frame,
                         const FrameHeader& header);
  void route_inbound(const std::uint8_t* frame, const FrameHeader& header,
                     std::uint32_t src_shard_hint);
  void handle_migrate_cmd(const std::uint8_t* payload, std::uint32_t len);
  void handle_migrate_in(const FrameHeader& header, const std::uint8_t* payload);
  void handle_rebind(const std::uint8_t* payload, std::uint32_t len);
  void handle_time_echo(const FrameHeader& header, const std::uint8_t* payload);
  void maybe_send_time_ping();
  void send_done();
  void flush_links();
  void forward_frame(const std::uint8_t* frame, const FrameHeader& header);
  void idle_wait();
  void maybe_send_stats();

  class Context;

  std::uint32_t shard_;
  const DistributedConfig& config_;
  const LiveStatsHooks& live_;
  std::int64_t clock_offset_ns_;   ///< worker -> coordinator clock shift
  std::uint64_t clock_rtt_ns_;     ///< RTT of the best (lowest) estimate so far
  std::uint64_t last_time_ping_ns_ = 0;  ///< driver-relative (now_ns())
  std::uint64_t next_stats_ns_ = 0;  ///< driver-relative deadline (now_ns())
  LpId num_lps_;
  int fd_;
  const std::vector<LpRunner*>& all_lps_;  ///< fork gave us a copy of every LP
  std::vector<PeerLink> links_;            ///< index = shard; self unused
  bool mesh_;
  std::vector<ShardLp> lps_;
  std::vector<std::size_t> lp_index_;  ///< global LpId -> index in lps_
  std::vector<std::uint32_t> owners_;  ///< LP -> shard, current routing epoch
  std::vector<std::uint32_t> epochs_;  ///< LP -> highest rebind epoch seen
  /// Inbound messages for an LP this shard owns (per REBIND/MIGRATE) whose
  /// state has not arrived yet; drained into the inbox at migrate-in.
  std::vector<std::deque<std::unique_ptr<EngineMessage>>> pending_in_;
  std::size_t remaining_ = 0;       ///< local LPs not Done and not migrated out
  std::uint64_t migrations_in_ = 0;
  bool done_announced_ = false;
  bool finish_received_ = false;
  std::vector<std::uint8_t> in_buf_;   ///< unparsed coordinator-stream bytes
  std::vector<std::uint8_t> scratch_;  ///< payload encode buffer
  obs::TraceRing trace_;
  std::uint64_t epoch_ns_;

 public:
  [[nodiscard]] std::int64_t clock_offset_ns() const noexcept {
    return clock_offset_ns_;
  }
  [[nodiscard]] std::uint64_t clock_rtt_ns() const noexcept {
    return clock_rtt_ns_;
  }
};

class ShardDriver::Context final : public LpContext {
 public:
  Context(ShardDriver& driver, ShardLp& lp)
      : driver_(driver), lp_(lp) {}

  [[nodiscard]] LpId self() const noexcept override { return lp_.id; }
  [[nodiscard]] LpId num_lps() const noexcept override { return driver_.num_lps_; }
  [[nodiscard]] std::uint64_t now_ns() const noexcept override {
    return driver_.now_ns();
  }

  void charge(std::uint64_t ns) noexcept override { lp_.busy_ns += ns; }

  void send(LpId dst, std::unique_ptr<EngineMessage> msg) override {
    OTW_REQUIRE(dst < driver_.num_lps_);
    OTW_REQUIRE(msg != nullptr);
    const std::uint64_t bytes = msg->wire_bytes();
    charge(driver_.config_.costs.send_cost_ns(bytes));
    ++driver_.totals_.physical_messages;
    driver_.totals_.wire_bytes += bytes;
    if (driver_.owners_[dst] == driver_.shard_) {
      if (driver_.lp_index_[dst] != SIZE_MAX) {
        driver_.deliver_local(dst, std::move(msg));
      } else {
        // Rebound here, state still in flight: park until migrate-in.
        driver_.pending_in_[dst].push_back(std::move(msg));
      }
    } else {
      driver_.send_remote(lp_.id, dst, *msg);
    }
  }

  std::unique_ptr<EngineMessage> poll() override {
    if (lp_.inbox.empty()) {
      return nullptr;
    }
    auto msg = std::move(lp_.inbox.front());
    lp_.inbox.pop_front();
    if (driver_.live_.bank != nullptr) {
      const std::uint64_t now = driver_.now_ns();
      driver_.live_.bank->record(
          obs::hist::Seam::MailboxDwell,
          now > msg->obs_enqueue_ns ? now - msg->obs_enqueue_ns : 0);
    }
    charge(driver_.config_.costs.msg_recv_overhead_ns);
    return msg;
  }

  void request_wakeup(std::uint64_t abs_ns) noexcept override {
    lp_.wake_hint_ns = std::min(lp_.wake_hint_ns, abs_ns);
  }

  [[nodiscard]] const CostModel& costs() const noexcept override {
    return driver_.config_.costs;
  }

 private:
  ShardDriver& driver_;
  ShardLp& lp_;
};

void ShardDriver::send_remote(LpId src, LpId dst, const EngineMessage& msg) {
  const WireTag tag = msg.wire_tag();
  OTW_REQUIRE_MSG(tag != kNoWireTag,
                  "message type has no wire tag and cannot leave the process "
                  "(register it in the WireRegistry and override "
                  "wire_tag/encode_wire)");
  scratch_.clear();
  WireWriter writer(scratch_);
  const std::uint64_t t0 = mono_ns();
  msg.encode_wire(writer);
  const std::uint64_t encode_ns = mono_ns() - t0;
  totals_.dist.serialize_ns += encode_ns;
  if (live_.bank != nullptr) {
    live_.bank->record(obs::hist::Seam::WireEncode, encode_ns);
  }

  FrameHeader header;
  header.payload_len = static_cast<std::uint32_t>(scratch_.size());
  header.tag = tag;
  header.flags = msg.wire_control() ? kFlagControl : 0;
  header.src_lp = src;
  header.dst_lp = dst;
  header.send_ns = aligned_now_ns();
  if (mesh_ && !msg.wire_control()) {
    // Data plane: one hop on the direct (src,dst) peer link.
    PeerLink& link = links_[owners_[dst]];
    queue_frame(link.out, header, scratch_.data());
    flush_out(link.fd, link.out, link.out_pos, "send (peer link)");
  } else {
    // Control plane (GVT tokens/announces) — and everything under Star —
    // transits the coordinator, which keeps RelayResidency attribution.
    send_frame(fd_, header, scratch_.data());
  }

  ++totals_.dist.frames_sent;
  totals_.dist.bytes_sent += kFrameHeaderBytes + scratch_.size();
  if (msg.wire_control()) {
    ++totals_.dist.gvt_token_frames;
  }
  if (config_.wire_trace_capacity > 0) {
    const obs::TraceArgs args = obs::pack_wire_frame(
        tag, /*sent=*/true, kFrameHeaderBytes + scratch_.size());
    trace_.push(obs::TraceRecord{now_ns(), 0, args.arg0, args.arg1, src,
                                 obs::TraceKind::WireFrame});
  }
}

void ShardDriver::handle_time_echo(const FrameHeader& header,
                                   const std::uint8_t* payload) {
  // Clock refresh: the coordinator echoed our raw t0 with its own clock in
  // send_ns. Midpoint estimate, kept only when this sample's RTT beats the
  // best so far (a low-RTT exchange bounds the offset error by rtt/2).
  OTW_REQUIRE_MSG(header.payload_len == 8, "malformed TIME echo");
  const std::uint64_t t1 = mono_ns();
  std::uint64_t t0 = 0;
  std::memcpy(&t0, payload, 8);
  if (t1 < t0) {
    return;  // nonsense sample (shouldn't happen on one steady clock)
  }
  const std::uint64_t rtt = t1 - t0;
  if (rtt <= clock_rtt_ns_) {
    clock_rtt_ns_ = rtt;
    clock_offset_ns_ = static_cast<std::int64_t>(header.send_ns) -
                       static_cast<std::int64_t>(t0 + rtt / 2);
  }
}

void ShardDriver::maybe_send_time_ping() {
  // Triggered by received GVT-announce (control) frames, rate-limited, and
  // only while the attribution plane is armed — an unarmed run keeps the
  // wire byte-for-byte free of telemetry chatter.
  if (live_.bank == nullptr) {
    return;
  }
  const std::uint64_t now = now_ns();
  if (last_time_ping_ns_ != 0 && now - last_time_ping_ns_ < kTimePingMinGapNs) {
    return;
  }
  last_time_ping_ns_ = now == 0 ? 1 : now;
  FrameHeader ping;
  ping.tag = kTagTime;
  ping.flags = kFlagControl;
  ping.src_lp = shard_;
  ping.send_ns = mono_ns();  // RAW local clock; echoed back verbatim
  send_frame(fd_, ping, nullptr);
}

void ShardDriver::forward_frame(const std::uint8_t* frame,
                                const FrameHeader& header) {
  // The sender's routing epoch was stale: re-ship the frame verbatim to the
  // shard we believe owns the LP. Owner maps only move to higher epochs, so
  // a forwarded frame always moves toward the migration's destination and
  // chains terminate (bounded by the number of rebinds).
  PeerLink& link = links_[owners_[header.dst_lp]];
  link.out.insert(link.out.end(), frame,
                  frame + kFrameHeaderBytes + header.payload_len);
  flush_out(link.fd, link.out, link.out_pos, "send (peer link)");
  ++totals_.dist.frames_forwarded;
}

void ShardDriver::route_inbound(const std::uint8_t* frame,
                                const FrameHeader& header,
                                std::uint32_t src_shard_hint) {
  const LpId dst = header.dst_lp;
  OTW_REQUIRE_MSG(dst < num_lps_, "frame routed to an unknown LP");
  if (owners_[dst] != shard_) {
    // Under Star, placement is static, so this is unconditionally a bug.
    OTW_REQUIRE_MSG(mesh_, "frame routed to the wrong shard");
    forward_frame(frame, header);
    return;
  }
  const std::uint8_t* payload = frame + kFrameHeaderBytes;
  WireReader reader(payload, header.payload_len);
  const std::uint64_t t0 = mono_ns();
  auto msg = WireRegistry::instance().decode(header.tag, reader);
  const std::uint64_t decode_ns = mono_ns() - t0;
  totals_.dist.deserialize_ns += decode_ns;
  OTW_REQUIRE_MSG(reader.done(), "trailing bytes after wire payload");

  ++totals_.dist.frames_received;
  totals_.dist.bytes_received += kFrameHeaderBytes + header.payload_len;
  if (live_.bank != nullptr) {
    live_.bank->record(obs::hist::Seam::WireDecode, decode_ns);
    // End-to-end link latency (encode -> transport -> decode): both
    // timestamps are in the coordinator clock domain, so subtraction is
    // meaningful up to the two offset-estimate errors (each bounded by its
    // RTT/2).
    const std::uint64_t now_aligned = aligned_now_ns();
    live_.bank->record_link(
        obs::hist::Seam::LinkLatency, src_shard_hint, shard_,
        now_aligned > header.send_ns ? now_aligned - header.send_ns : 0);
  }
  if ((header.flags & kFlagControl) != 0) {
    maybe_send_time_ping();
  }
  if (config_.wire_trace_capacity > 0) {
    const obs::TraceArgs args = obs::pack_wire_frame(
        header.tag, /*sent=*/false, kFrameHeaderBytes + header.payload_len);
    trace_.push(obs::TraceRecord{now_ns(), 0, args.arg0, args.arg1,
                                 header.src_lp, obs::TraceKind::WireFrame});
  }
  if (lp_index_[dst] == SIZE_MAX) {
    // We own the LP (rebind seen) but its state is still in flight.
    pending_in_[dst].push_back(std::move(msg));
  } else {
    deliver_local(dst, std::move(msg));
  }
}

void ShardDriver::handle_rebind(const std::uint8_t* payload, std::uint32_t len) {
  WireReader r(payload, len);
  const LpId lp = r.u32();
  const std::uint32_t owner = r.u32();
  const std::uint32_t epoch = r.u32();
  OTW_REQUIRE_MSG(r.done() && lp < num_lps_ && owner < config_.num_shards,
                  "malformed REBIND frame");
  if (epoch > epochs_[lp]) {  // epoch-monotonic: stale rebinds are no-ops
    epochs_[lp] = epoch;
    owners_[lp] = owner;
  }
}

void ShardDriver::handle_migrate_cmd(const std::uint8_t* payload,
                                     std::uint32_t len) {
  WireReader r(payload, len);
  const LpId lp = r.u32();
  const std::uint32_t to = r.u32();
  const std::uint32_t epoch = r.u32();
  OTW_REQUIRE_MSG(r.done() && lp < num_lps_ && to < config_.num_shards &&
                      to != shard_,
                  "malformed MIGRATE_CMD frame");
  OTW_REQUIRE_MSG(mesh_, "migration requires the mesh topology");
  OTW_REQUIRE_MSG(owners_[lp] == shard_ && lp_index_[lp] != SIZE_MAX,
                  "migrate command for an LP this shard does not hold");
  ShardLp& s = lps_[lp_index_[lp]];
  auto* migratable = dynamic_cast<MigratableLp*>(s.runner);
  std::uint8_t accepted = 1;
  if (s.status == StepStatus::Done || migratable == nullptr) {
    // Endgame race (the LP finished while the command was in flight) or a
    // runner that cannot move: decline, the coordinator drops the epoch.
    accepted = 0;
  } else {
    // NOT scratch_: migrate_out ships the LP's held sends and aggregation
    // batches through send_remote mid-serialization, and that path reuses
    // scratch_ as its encode buffer.
    std::vector<std::uint8_t> blob;
    WireWriter w(blob);
    w.u32(epoch);
    const std::uint64_t t0 = mono_ns();
    bool frozen = false;
    {
      Context ctx(*this, s);
      frozen = migratable->migrate_out(ctx, w);
    }
    if (!frozen) {
      // The LP completed while migrate_out drained its backlog; its next
      // step() reports Done through the normal path. Decline the move.
      accepted = 0;
    } else {
      if (live_.bank != nullptr) {
        live_.bank->record(obs::hist::Seam::MigrationFreeze, mono_ns() - t0);
      }
      OTW_ASSERT(s.inbox.empty());  // migrate_out must drain via ctx.poll()
      FrameHeader h;
      h.payload_len = static_cast<std::uint32_t>(blob.size());
      h.tag = kTagMigrate;
      h.flags = kFlagControl;
      h.src_lp = shard_;
      h.dst_lp = lp;
      h.send_ns = aligned_now_ns();
      // Peer link, not the coordinator: frames already forwarded toward the
      // destination sit ahead of the LP state on the same FIFO stream.
      PeerLink& link = links_[to];
      queue_frame(link.out, h, blob.data());
      flush_out(link.fd, link.out, link.out_pos, "send (peer link)");
      ++totals_.dist.frames_sent;
      totals_.dist.bytes_sent += kFrameHeaderBytes + blob.size();

      s.runner = nullptr;
      s.migrated_out = true;
      if (s.status != StepStatus::Done) {
        --remaining_;
      }
      s.status = StepStatus::Done;
      lp_index_[lp] = SIZE_MAX;
      owners_[lp] = to;
      epochs_[lp] = epoch;
    }
  }
  // Report to the coordinator, which rebinds everyone else on acceptance.
  scratch_.clear();
  WireWriter w(scratch_);
  w.u32(lp);
  w.u32(to);
  w.u32(epoch);
  w.u8(accepted);
  FrameHeader h;
  h.payload_len = static_cast<std::uint32_t>(scratch_.size());
  h.tag = kTagMigrated;
  h.flags = kFlagControl;
  h.src_lp = shard_;
  h.send_ns = aligned_now_ns();
  send_frame(fd_, h, scratch_.data());
}

void ShardDriver::handle_migrate_in(const FrameHeader& header,
                                    const std::uint8_t* payload) {
  OTW_REQUIRE_MSG(mesh_, "migration requires the mesh topology");
  const LpId lp = header.dst_lp;
  OTW_REQUIRE_MSG(lp < num_lps_, "MIGRATE frame for an unknown LP");
  WireReader r(payload, header.payload_len);
  const std::uint32_t epoch = r.u32();
  if (epoch > epochs_[lp]) {
    // The MIGRATE beat the REBIND broadcast here; it implies ownership.
    epochs_[lp] = epoch;
    owners_[lp] = shard_;
  }
  OTW_REQUIRE_MSG(owners_[lp] == shard_ && lp_index_[lp] == SIZE_MAX,
                  "MIGRATE frame for an LP this shard already holds");
  auto* migratable = dynamic_cast<MigratableLp*>(all_lps_[lp]);
  OTW_REQUIRE_MSG(migratable != nullptr, "LP runner is not migratable");
  lp_index_[lp] = lps_.size();
  lps_.emplace_back();
  ShardLp& s = lps_.back();
  s.id = lp;
  s.runner = all_lps_[lp];  // fork copy, about to be overwritten from the wire
  s.status = StepStatus::Active;
  const std::uint64_t t0 = mono_ns();
  {
    Context ctx(*this, s);
    migratable->migrate_in(ctx, r);
  }
  OTW_REQUIRE_MSG(r.done(), "trailing bytes after MIGRATE payload");
  if (live_.bank != nullptr) {
    live_.bank->record(obs::hist::Seam::MigrationRestore, mono_ns() - t0);
  }
  ++totals_.dist.frames_received;
  totals_.dist.bytes_received += kFrameHeaderBytes + header.payload_len;
  ++migrations_in_;
  ++remaining_;
  done_announced_ = false;  // active set grew; the last DONE is stale
  // Frames that raced ahead of the LP state resume delivery in FIFO order.
  std::deque<std::unique_ptr<EngineMessage>>& stash = pending_in_[lp];
  while (!stash.empty()) {
    deliver_local(lp, std::move(stash.front()));
    stash.pop_front();
  }
}

void ShardDriver::handle_coord_frame(const FrameHeader& header,
                                     const std::uint8_t* payload) {
  switch (header.tag) {
    case kTagTime:
      handle_time_echo(header, payload);
      return;
    case kTagMigrateCmd:
      handle_migrate_cmd(payload, header.payload_len);
      return;
    case kTagRebind:
      handle_rebind(payload, header.payload_len);
      return;
    case kTagFinish:
      finish_received_ = true;
      return;
    default:
      break;
  }
  OTW_REQUIRE_MSG(header.tag < kReservedTagBase,
                  "worker received a transport control frame");
  // Relayed (control-plane) frame: attribute the link to the sender's shard
  // per our current owner map — best effort under migration, exact otherwise.
  const std::uint32_t src_shard =
      header.src_lp < num_lps_ ? owners_[header.src_lp] : shard_;
  route_inbound(reinterpret_cast<const std::uint8_t*>(payload) -
                    kFrameHeaderBytes,
                header, src_shard);
}

void ShardDriver::handle_peer_frame(std::uint32_t peer,
                                    const std::uint8_t* frame,
                                    const FrameHeader& header) {
  if (header.tag == kTagMigrate) {
    handle_migrate_in(header, frame + kFrameHeaderBytes);
    return;
  }
  OTW_REQUIRE_MSG(header.tag < kReservedTagBase,
                  "worker received a transport control frame");
  route_inbound(frame, header, peer);
}

void ShardDriver::drain_socket() {
  // Pull whatever is available without blocking, then parse complete frames.
  std::uint8_t chunk[16384];
  for (;;) {
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n > 0) {
      in_buf_.insert(in_buf_.end(), chunk, chunk + n);
      continue;
    }
    if (n == 0) {
      throw std::runtime_error("coordinator closed the connection");
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      break;
    }
    if (errno == EINTR) {
      continue;
    }
    throw_errno("recv");
  }
  std::size_t pos = 0;
  while (in_buf_.size() - pos >= kFrameHeaderBytes) {
    const FrameHeader header = decode_frame_header(in_buf_.data() + pos);
    if (in_buf_.size() - pos < kFrameHeaderBytes + header.payload_len) {
      break;  // incomplete frame; keep the tail for the next drain
    }
    handle_coord_frame(header, in_buf_.data() + pos + kFrameHeaderBytes);
    pos += kFrameHeaderBytes + header.payload_len;
  }
  in_buf_.erase(in_buf_.begin(),
                in_buf_.begin() + static_cast<std::ptrdiff_t>(pos));
}

void ShardDriver::drain_links() {
  if (!mesh_) {
    return;
  }
  std::uint8_t chunk[16384];
  for (std::uint32_t peer = 0; peer < links_.size(); ++peer) {
    PeerLink& link = links_[peer];
    if (link.fd < 0) {
      continue;
    }
    for (;;) {
      const ssize_t n = ::recv(link.fd, chunk, sizeof chunk, 0);
      if (n > 0) {
        link.in.insert(link.in.end(), chunk, chunk + n);
        continue;
      }
      if (n == 0) {
        throw std::runtime_error("peer shard " + std::to_string(peer) +
                                 " closed its link");
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        break;
      }
      if (errno == EINTR) {
        continue;
      }
      throw_errno("recv (peer link)");
    }
    std::size_t pos = 0;
    while (link.in.size() - pos >= kFrameHeaderBytes) {
      const FrameHeader header = decode_frame_header(link.in.data() + pos);
      if (link.in.size() - pos < kFrameHeaderBytes + header.payload_len) {
        break;
      }
      handle_peer_frame(peer, link.in.data() + pos, header);
      pos += kFrameHeaderBytes + header.payload_len;
    }
    link.in.erase(link.in.begin(),
                  link.in.begin() + static_cast<std::ptrdiff_t>(pos));
  }
}

void ShardDriver::flush_links() {
  for (PeerLink& link : links_) {
    if (link.fd >= 0 && link.out_pending()) {
      flush_out(link.fd, link.out, link.out_pos, "send (peer link)");
    }
  }
}

void ShardDriver::send_done() {
  FrameHeader h;
  h.payload_len = 8;
  h.tag = kTagDone;
  h.flags = kFlagControl;
  h.src_lp = shard_;
  h.send_ns = aligned_now_ns();
  std::uint8_t payload[8];
  std::memcpy(payload, &migrations_in_, 8);
  send_frame(fd_, h, payload);
  done_announced_ = true;
}

void ShardDriver::idle_wait() {
  // Everyone local is Idle with an empty inbox: sleep until a frame arrives
  // or the earliest self-requested wakeup, capped at idle_poll_us. An armed
  // STATS deadline also caps the sleep: an idle shard must keep reporting,
  // or the coordinator's silent-shard watchdog would see a healthy-but-quiet
  // worker as dead.
  std::uint64_t next_wake = kNever;
  for (const ShardLp& lp : lps_) {
    if (lp.status != StepStatus::Done) {
      next_wake = std::min(next_wake, lp.wake_hint_ns);
    }
  }
  if (live_.enabled()) {
    next_wake = std::min(next_wake, next_stats_ns_);
  }
  std::uint64_t timeout_us = config_.idle_poll_us;
  if (next_wake != kNever) {
    const std::uint64_t now = now_ns();
    timeout_us = next_wake <= now
                     ? 0
                     : std::min<std::uint64_t>(timeout_us,
                                               (next_wake - now) / 1000 + 1);
  }
  std::vector<pollfd> pfds;
  pfds.push_back({fd_, POLLIN, 0});
  for (PeerLink& link : links_) {
    if (link.fd >= 0) {
      pfds.push_back({link.fd,
                      static_cast<short>(POLLIN |
                                         (link.out_pending() ? POLLOUT : 0)),
                      0});
    }
  }
  const int rc = ::poll(pfds.data(), pfds.size(),
                        static_cast<int>(timeout_us / 1000 + 1));
  if (rc < 0 && errno != EINTR) {
    throw_errno("poll");
  }
}

void ShardDriver::maybe_send_stats() {
  if (!live_.enabled()) {
    return;
  }
  const std::uint64_t now = now_ns();
  if (now < next_stats_ns_) {
    return;
  }
  next_stats_ns_ = now + static_cast<std::uint64_t>(live_.period_ms) * 1'000'000;
  const std::vector<std::uint8_t> payload = live_.encode(shard_);
  FrameHeader header;
  header.payload_len = static_cast<std::uint32_t>(payload.size());
  header.tag = kTagStats;
  header.flags = kFlagControl;
  header.src_lp = shard_;
  header.send_ns = aligned_now_ns();
  send_frame(fd_, header, payload.data());
  ++totals_.dist.frames_sent;
  totals_.dist.bytes_sent += kFrameHeaderBytes + payload.size();
}

void ShardDriver::run() {
  // Star: run until every local LP is Done, then report. Mesh: ownership can
  // move and frames may need forwarding even after the local set drains, so
  // run until the coordinator says FINISH (it waits for every shard's DONE
  // with settled migration counts).
  for (;;) {
    drain_socket();
    drain_links();
    if (mesh_ ? finish_received_ : remaining_ == 0) {
      break;
    }
    maybe_send_stats();
    flush_links();
    bool ran_any = false;
    const std::uint64_t now = now_ns();
    for (std::size_t k = 0; k < lps_.size(); ++k) {
      ShardLp& lp = lps_[k];
      if (lp.status == StepStatus::Done) {
        continue;
      }
      const bool runnable = lp.status == StepStatus::Active ||
                            !lp.inbox.empty() || lp.wake_hint_ns <= now;
      if (!runnable) {
        continue;
      }
      lp.wake_hint_ns = kNever;  // hints are valid for one step only
      Context ctx(*this, lp);
      lp.status = lp.runner->step(ctx);
      ran_any = true;
      if (lp.status == StepStatus::Done) {
        --remaining_;
      }
      if (++totals_.steps > config_.max_steps) {
        throw std::runtime_error("shard exceeded max_steps=" +
                                 std::to_string(config_.max_steps));
      }
    }
    if (mesh_ && remaining_ == 0 && !done_announced_) {
      send_done();
    }
    if (!ran_any && (remaining_ > 0 || mesh_)) {
      idle_wait();
    }
  }
  if (mesh_) {
    OTW_ASSERT(remaining_ == 0);
    for (const std::deque<std::unique_ptr<EngineMessage>>& stash : pending_in_) {
      OTW_ASSERT(stash.empty());
      static_cast<void>(stash);
    }
  }
}

void ShardDriver::encode_result(WireWriter& w,
                                const std::vector<std::uint8_t>& harvest) const {
  w.u64(totals_.steps);
  w.u64(totals_.physical_messages);
  w.u64(totals_.wire_bytes);
  w.u64(totals_.dist.frames_sent);
  w.u64(totals_.dist.frames_received);
  w.u64(totals_.dist.bytes_sent);
  w.u64(totals_.dist.bytes_received);
  w.u64(totals_.dist.gvt_token_frames);
  w.u64(totals_.dist.frames_forwarded);
  w.u64(totals_.dist.serialize_ns);
  w.u64(totals_.dist.deserialize_ns);
  w.u32(static_cast<std::uint32_t>(lps_.size()));
  for (const ShardLp& lp : lps_) {
    w.u32(lp.id);
    w.u64(lp.busy_ns);
  }
  w.u32(static_cast<std::uint32_t>(harvest.size()));
  w.bytes(harvest.data(), harvest.size());
  // Clock alignment: driver epoch (absolute worker steady clock) plus the
  // final offset/RTT estimate. The coordinator derives from these the shift
  // that rebases this shard's driver-relative timestamps onto its own
  // run-relative timeline.
  w.u64(epoch_ns_);
  w.u64(static_cast<std::uint64_t>(clock_offset_ns_));  // two's complement
  w.u64(clock_rtt_ns_);
  // Attribution histograms (fixed bucket count; fork shares the layout).
  const std::vector<obs::hist::Entry> entries =
      live_.bank != nullptr ? live_.bank->snapshot(shard_)
                            : std::vector<obs::hist::Entry>{};
  w.u32(static_cast<std::uint32_t>(entries.size()));
  for (const obs::hist::Entry& e : entries) {
    w.u32(static_cast<std::uint32_t>(e.seam));
    w.u32(e.src);
    w.u32(e.dst);
    w.u64(e.hist.count);
    w.u64(e.hist.sum);
    for (std::uint64_t b : e.hist.buckets) {
      w.u64(b);
    }
  }
  // Wire trace (workers and coordinator share the TraceRecord ABI via fork).
  const std::vector<obs::TraceRecord> records =
      config_.wire_trace_capacity > 0 ? trace_.drain()
                                      : std::vector<obs::TraceRecord>{};
  w.u64(trace_.dropped());
  w.u32(static_cast<std::uint32_t>(records.size()));
  w.bytes(records.data(), records.size() * sizeof(obs::TraceRecord));
}

/// Worker process body. Never returns; _exit() keeps the forked child from
/// running the parent's atexit handlers or flushing its stdio twice.
[[noreturn]] void worker_main(std::uint32_t shard, const DistributedConfig& config,
                              const std::vector<LpRunner*>& lps,
                              std::uint16_t port,
                              const DistributedEngine::HarvestFn& harvest,
                              const LiveStatsHooks& live) {
  try {
    if (live.on_worker_start) {
      live.on_worker_start(shard);
    }
    const bool mesh =
        config.topology == Topology::Mesh && config.num_shards > 1;
    // Mesh: bind our own peer listener BEFORE saying HELLO, so the port can
    // ride in the HELLO payload and every other worker can dial it.
    int mesh_listen_fd = -1;
    std::uint16_t mesh_port = 0;
    if (mesh) {
      mesh_listen_fd = util::net::listen_loopback(
          0, static_cast<int>(config.num_shards), mesh_port, kNetCtx);
    }
    const int fd = util::net::connect_loopback(port, kNetCtx);
    set_nodelay(fd);

    // HELLO must be the first (and, until the driver runs, only) frame on
    // this stream: the coordinator reads exactly one frame per connection
    // to learn which shard it is talking to. The payload carries our peer
    // listener port (0 under Star). send_ns carries our raw clock (t0); the
    // coordinator answers with a HELLO-ACK whose send_ns is ITS clock (t_c)
    // and whose payload is the peer directory, read here while the socket is
    // still blocking. Midpoint estimate: offset = t_c - (t0 + t1)/2. The ACK
    // is batched behind every worker's HELLO (the directory needs them all),
    // so the initial RTT bound is loose; TIME pings tighten it when the
    // attribution plane is armed.
    FrameHeader hello;
    hello.tag = kTagHello;
    hello.src_lp = shard;
    hello.payload_len = 2;
    const std::uint64_t t0 = mono_ns();
    hello.send_ns = t0;
    std::uint8_t port_payload[2];
    std::memcpy(port_payload, &mesh_port, 2);
    send_frame(fd, hello, port_payload);
    std::uint8_t ack_raw[kFrameHeaderBytes];
    if (!read_exact(fd, ack_raw, kFrameHeaderBytes)) {
      throw std::runtime_error("coordinator closed before HELLO-ACK");
    }
    const std::uint64_t t1 = mono_ns();
    const FrameHeader ack = decode_frame_header(ack_raw);
    OTW_REQUIRE_MSG(ack.tag == kTagHelloAck,
                    "expected HELLO-ACK as the first coordinator frame");
    std::vector<std::uint8_t> dir(ack.payload_len);
    if (ack.payload_len > 0 &&
        !read_exact(fd, dir.data(), ack.payload_len)) {
      throw std::runtime_error("coordinator closed mid HELLO-ACK");
    }
    const std::uint64_t rtt = t1 - t0;
    const std::int64_t offset = static_cast<std::int64_t>(ack.send_ns) -
                                static_cast<std::int64_t>(t0 + rtt / 2);

    // Mesh dial phase, deterministic: shard i dials every j < i (the TCP
    // accept backlog guarantees those connects succeed even before shard j
    // reaches accept()), then accepts every j > i. One stream per pair.
    std::vector<PeerLink> links(config.num_shards);
    if (mesh) {
      WireReader r(dir.data(), dir.size());
      const std::uint32_t n = r.u32();
      OTW_REQUIRE_MSG(n == config.num_shards,
                      "peer directory size mismatch in HELLO-ACK");
      std::vector<std::uint16_t> ports(n);
      for (std::uint32_t j = 0; j < n; ++j) {
        ports[j] = r.u16();
      }
      OTW_REQUIRE_MSG(r.done(), "trailing bytes after peer directory");
      for (std::uint32_t j = 0; j < shard; ++j) {
        const int pfd = util::net::connect_loopback(ports[j], kNetCtx);
        set_nodelay(pfd);
        FrameHeader peer_hello;
        peer_hello.tag = kTagPeerHello;
        peer_hello.src_lp = shard;
        send_frame(pfd, peer_hello, nullptr);
        links[j].fd = pfd;
      }
      for (std::uint32_t j = shard + 1; j < config.num_shards; ++j) {
        int afd;
        do {
          afd = ::accept(mesh_listen_fd, nullptr, nullptr);
        } while (afd < 0 && errno == EINTR);
        if (afd < 0) {
          throw_errno("accept (peer link)");
        }
        set_nodelay(afd);
        std::uint8_t raw[kFrameHeaderBytes];
        if (!read_exact(afd, raw, kFrameHeaderBytes)) {
          throw std::runtime_error("peer disconnected before PEER-HELLO");
        }
        const FrameHeader ph = decode_frame_header(raw);
        OTW_REQUIRE_MSG(ph.tag == kTagPeerHello && ph.payload_len == 0 &&
                            ph.src_lp > shard &&
                            ph.src_lp < config.num_shards &&
                            links[ph.src_lp].fd < 0,
                        "malformed PEER-HELLO");
        links[ph.src_lp].fd = afd;
      }
      ::close(mesh_listen_fd);
      for (PeerLink& link : links) {
        if (link.fd >= 0) {
          set_nonblocking(link.fd);
        }
      }
    }
    set_nonblocking(fd);

    ShardDriver driver(shard, config, lps, fd, std::move(links), live, offset,
                       rtt);
    driver.run();

    const std::vector<std::uint8_t> blob =
        harvest ? harvest(shard, driver.owners()) : std::vector<std::uint8_t>{};
    std::vector<std::uint8_t> payload;
    WireWriter writer(payload);
    driver.encode_result(writer, blob);
    FrameHeader result;
    result.payload_len = static_cast<std::uint32_t>(payload.size());
    result.tag = kTagResult;
    result.src_lp = shard;
    send_frame(fd, result, payload.data());
    if (mesh) {
      // Linger until the coordinator closes (it does once every RESULT is
      // in): our peer links must stay open as long as any other worker might
      // still flush toward us, or its writes would die on ECONNRESET.
      std::uint8_t sink[4096];
      for (;;) {
        const ssize_t n = ::recv(fd, sink, sizeof sink, 0);
        if (n > 0) {
          continue;  // discard: nothing meaningful follows our RESULT
        }
        if (n == 0) {
          break;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          pollfd p{fd, POLLIN, 0};
          ::poll(&p, 1, -1);
          continue;
        }
        if (errno == EINTR) {
          continue;
        }
        break;  // coordinator already gone; exiting is the right response
      }
    }
    ::close(fd);
    ::_exit(0);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[otw shard %u] fatal: %s\n", shard, e.what());
    ::_exit(2);
  } catch (...) {
    std::fprintf(stderr, "[otw shard %u] fatal: unknown exception\n", shard);
    ::_exit(2);
  }
}

// ---------------------------------------------------------------------------
// Coordinator side.
// ---------------------------------------------------------------------------

struct Conn {
  int fd = -1;
  std::uint32_t shard = 0;
  std::vector<std::uint8_t> in;  ///< unparsed inbound bytes
  std::vector<std::uint8_t> out; ///< queued outbound bytes (non-blocking flush)
  std::size_t out_pos = 0;
  bool done = false;        ///< RESULT received
  bool done_valid = false;  ///< a DONE is the latest active-set report
  std::uint64_t done_migrations_in = 0;  ///< migrations_in from that DONE

  [[nodiscard]] bool out_pending() const noexcept { return out_pos < out.size(); }
};

void flush_conn(Conn& conn) {
  flush_out(conn.fd, conn.out, conn.out_pos, "send (relay)");
}

}  // namespace

EngineRunResult DistributedEngine::run(const std::vector<LpRunner*>& lps,
                                       HarvestFn harvest,
                                       LiveStatsHooks live,
                                       MigrationHooks migration) {
  OTW_REQUIRE(!lps.empty());
  for (auto* lp : lps) {
    OTW_REQUIRE(lp != nullptr);
  }
  OTW_REQUIRE_MSG(config_.num_shards >= 1, "num_shards must be >= 1");
  OTW_REQUIRE_MSG(config_.num_shards <= lps.size(),
                  "more shards than LPs (a shard would be empty)");
  if (!config_.placement.empty()) {
    OTW_REQUIRE_MSG(config_.placement.size() == lps.size(),
                    "placement table must cover every LP");
    for (std::uint32_t shard : config_.placement) {
      OTW_REQUIRE_MSG(shard < config_.num_shards,
                      "placement names a shard that does not exist");
    }
  }
  const bool mesh =
      config_.topology == Topology::Mesh && config_.num_shards > 1;
  OTW_REQUIRE_MSG(!migration.enabled() || mesh,
                  "on-line migration requires the mesh topology");

  const std::uint64_t t_start = mono_ns();
  const std::uint32_t num_shards = config_.num_shards;
  payloads_.assign(num_shards, {});

  // Loopback listener; port 0 lets the kernel pick a free one.
  std::uint16_t port = 0;
  const int listen_fd = util::net::listen_loopback(
      config_.port, static_cast<int>(num_shards), port, kNetCtx);

  std::vector<pid_t> children(num_shards, -1);
  for (std::uint32_t shard = 0; shard < num_shards; ++shard) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(listen_fd);
      for (pid_t child : children) {
        if (child > 0) {
          ::kill(child, SIGKILL);
          ::waitpid(child, nullptr, 0);
        }
      }
      throw_errno("fork");
    }
    if (pid == 0) {
      ::close(listen_fd);
      worker_main(shard, config_, lps, port, harvest, live);  // never returns
    }
    children[shard] = pid;
  }

  EngineRunResult result;
  result.lp_busy_ns.assign(lps.size(), 0);
  result.dist.num_shards = num_shards;
  result.shard_clocks.assign(num_shards, {});
  result.shard_trace_shift_ns.assign(num_shards, 0);
  result.final_owners.resize(lps.size());
  for (LpId lp = 0; lp < lps.size(); ++lp) {
    result.final_owners[lp] = initial_owner_of(lp, config_);
  }

  try {
    // Phase 1: accept every worker and read its HELLO (always the first
    // frame on the stream, payload = that worker's peer listener port) to
    // map connection -> shard. Only once ALL HELLOs are in can the peer
    // directory be assembled, so the HELLO-ACKs — stamped with our clock
    // for the offset estimate and carrying the directory — go out in a
    // second sweep.
    std::vector<Conn> conns(num_shards);
    std::vector<int> shard_conn(num_shards, -1);  // shard -> index in conns
    std::vector<std::uint16_t> mesh_ports(num_shards, 0);
    for (std::uint32_t i = 0; i < num_shards; ++i) {
      int fd;
      do {
        fd = ::accept(listen_fd, nullptr, nullptr);
      } while (fd < 0 && errno == EINTR);
      if (fd < 0) {
        throw_errno("accept");
      }
      std::uint8_t raw[kFrameHeaderBytes];
      if (!read_exact(fd, raw, kFrameHeaderBytes)) {
        throw std::runtime_error("worker disconnected before HELLO");
      }
      const FrameHeader hello = decode_frame_header(raw);
      OTW_REQUIRE_MSG(hello.tag == kTagHello && hello.payload_len == 2,
                      "first frame on a worker stream must be HELLO");
      OTW_REQUIRE_MSG(hello.src_lp < num_shards && shard_conn[hello.src_lp] < 0,
                      "duplicate or out-of-range shard HELLO");
      std::uint8_t port_raw[2];
      if (!read_exact(fd, port_raw, 2)) {
        throw std::runtime_error("worker disconnected mid HELLO");
      }
      std::memcpy(&mesh_ports[hello.src_lp], port_raw, 2);
      set_nodelay(fd);
      conns[i].fd = fd;
      conns[i].shard = hello.src_lp;
      shard_conn[hello.src_lp] = static_cast<int>(i);
    }
    ::close(listen_fd);
    std::vector<std::uint8_t> dir;
    {
      WireWriter w(dir);
      w.u32(num_shards);
      for (std::uint32_t s = 0; s < num_shards; ++s) {
        w.u16(mesh_ports[s]);
      }
    }
    for (Conn& conn : conns) {
      FrameHeader ack;
      ack.payload_len = static_cast<std::uint32_t>(dir.size());
      ack.tag = kTagHelloAck;
      ack.src_lp = conn.shard;
      ack.send_ns = mono_ns();
      send_frame(conn.fd, ack, dir.data());  // still blocking: writes through
      set_nonblocking(conn.fd);
    }

    // Control-plane state: the authoritative owner map (placement + applied
    // rebinds) and the migration protocol.
    std::vector<std::uint32_t>& owners = result.final_owners;
    std::vector<std::uint32_t> epochs(lps.size(), 0);
    std::vector<std::uint64_t> expected_in(num_shards, 0);
    std::uint32_t next_epoch = 1;
    bool migration_inflight = false;
    bool any_done = false;
    bool finish_sent = false;
    const std::uint64_t decide_period_ns =
        static_cast<std::uint64_t>(migration.period_ms) * 1'000'000;
    std::uint64_t next_decide_ns =
        migration.enabled() ? mono_ns() + decide_period_ns : kNever;

    const auto broadcast = [&](const FrameHeader& h,
                               const std::uint8_t* payload) {
      for (Conn& conn : conns) {
        if (conn.done) {
          continue;
        }
        queue_frame(conn.out, h, payload);
        flush_conn(conn);
      }
    };
    // FINISH once every worker's latest DONE is present and its reported
    // migrations_in matches the number of LPs rebound TO it — an
    // order-independent settledness check: a destination's stale DONE (sent
    // before its MIGRATE arrived) can never satisfy it.
    const auto try_finish = [&] {
      if (!mesh || finish_sent || migration_inflight) {
        return;
      }
      for (const Conn& conn : conns) {
        if (!conn.done_valid ||
            conn.done_migrations_in != expected_in[conn.shard]) {
          return;
        }
      }
      FrameHeader fin;
      fin.tag = kTagFinish;
      fin.flags = kFlagControl;
      broadcast(fin, nullptr);
      finish_sent = true;
    };

    // Phase 2: control loop. Star relays every frame in arrival order (the
    // order-preserving relay is the FIFO guarantee); Mesh only sees control
    // frames here — GVT tokens/announces routed by the owner map — plus the
    // migration protocol (DONE/MIGRATED in, MIGRATE_CMD/REBIND/FINISH out).
    std::uint32_t results = 0;
    std::vector<pollfd> pfds(num_shards);
    while (results < num_shards) {
      for (std::uint32_t i = 0; i < num_shards; ++i) {
        pfds[i].fd = conns[i].done ? -1 : conns[i].fd;
        pfds[i].events =
            static_cast<short>(POLLIN | (conns[i].out_pending() ? POLLOUT : 0));
        pfds[i].revents = 0;
      }
      int timeout_ms = -1;
      if (migration.enabled() && !any_done && !finish_sent &&
          !migration_inflight) {
        const std::uint64_t now = mono_ns();
        timeout_ms = next_decide_ns <= now
                         ? 0
                         : static_cast<int>((next_decide_ns - now) / 1'000'000 + 1);
      }
      const int rc = ::poll(pfds.data(), pfds.size(), timeout_ms);
      if (rc < 0) {
        if (errno == EINTR) {
          continue;
        }
        throw_errno("poll (relay)");
      }
      if (migration.enabled() && !any_done && !finish_sent &&
          !migration_inflight && mono_ns() >= next_decide_ns) {
        next_decide_ns = mono_ns() + decide_period_ns;
        const std::optional<MigrationDecision> d = migration.decide(owners);
        if (d.has_value()) {
          OTW_REQUIRE_MSG(d->lp < lps.size() && d->to_shard < num_shards &&
                              owners[d->lp] != d->to_shard,
                          "invalid migration decision");
          std::vector<std::uint8_t> cmd;
          WireWriter w(cmd);
          w.u32(d->lp);
          w.u32(d->to_shard);
          w.u32(next_epoch++);
          FrameHeader h;
          h.payload_len = static_cast<std::uint32_t>(cmd.size());
          h.tag = kTagMigrateCmd;
          h.flags = kFlagControl;
          h.dst_lp = d->lp;
          Conn& src =
              conns[static_cast<std::size_t>(shard_conn[owners[d->lp]])];
          queue_frame(src.out, h, cmd.data());
          flush_conn(src);
          migration_inflight = true;
        }
      }
      for (std::uint32_t i = 0; i < num_shards; ++i) {
        Conn& conn = conns[i];
        if (conn.done) {
          continue;
        }
        if ((pfds[i].revents & POLLOUT) != 0) {
          flush_conn(conn);
        }
        if ((pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) {
          continue;
        }
        std::uint8_t chunk[16384];
        bool eof = false;
        for (;;) {
          const ssize_t n = ::recv(conn.fd, chunk, sizeof chunk, 0);
          if (n > 0) {
            conn.in.insert(conn.in.end(), chunk, chunk + n);
            continue;
          }
          if (n == 0) {
            // The worker may close right after its RESULT; the frame may
            // still be sitting unparsed in conn.in, so only fail after
            // parsing.
            eof = true;
            break;
          }
          if (errno == EAGAIN || errno == EWOULDBLOCK) {
            break;
          }
          if (errno == EINTR) {
            continue;
          }
          throw_errno("recv (relay)");
        }
        // Parse complete frames from this connection, in arrival order.
        std::size_t pos = 0;
        while (!conn.done && conn.in.size() - pos >= kFrameHeaderBytes) {
          const FrameHeader header = decode_frame_header(conn.in.data() + pos);
          if (conn.in.size() - pos < kFrameHeaderBytes + header.payload_len) {
            break;
          }
          const std::uint8_t* frame = conn.in.data() + pos;
          const std::size_t frame_len = kFrameHeaderBytes + header.payload_len;
          if (header.tag == kTagResult) {
            WireReader reader(frame + kFrameHeaderBytes, header.payload_len);
            result.steps += reader.u64();
            result.physical_messages += reader.u64();
            result.wire_bytes += reader.u64();
            DistStats shard_stats;
            shard_stats.frames_sent = reader.u64();
            shard_stats.frames_received = reader.u64();
            shard_stats.bytes_sent = reader.u64();
            shard_stats.bytes_received = reader.u64();
            shard_stats.gvt_token_frames = reader.u64();
            shard_stats.frames_forwarded = reader.u64();
            shard_stats.serialize_ns = reader.u64();
            shard_stats.deserialize_ns = reader.u64();
            result.dist.add(shard_stats);
            const std::uint32_t n_local = reader.u32();
            for (std::uint32_t k = 0; k < n_local; ++k) {
              const std::uint32_t lp = reader.u32();
              const std::uint64_t busy = reader.u64();
              OTW_REQUIRE(lp < result.lp_busy_ns.size());
              // += not =: a migrated LP accrues busy time on both shards.
              result.lp_busy_ns[lp] += busy;
            }
            const std::uint32_t blob_len = reader.u32();
            payloads_[conn.shard].resize(blob_len);
            reader.bytes(payloads_[conn.shard].data(), blob_len);
            // Clock alignment: shift = (worker epoch in coordinator domain)
            // - our run start. Adding it to a driver-relative timestamp
            // yields a coordinator-run-relative one.
            const std::uint64_t epoch_ns = reader.u64();
            ShardClock clock;
            clock.offset_ns = static_cast<std::int64_t>(reader.u64());
            clock.rtt_ns = reader.u64();
            result.shard_clocks[conn.shard] = clock;
            const std::int64_t shift =
                static_cast<std::int64_t>(epoch_ns) + clock.offset_ns -
                static_cast<std::int64_t>(t_start);
            result.shard_trace_shift_ns[conn.shard] = shift;
            const std::uint32_t n_hists = reader.u32();
            for (std::uint32_t k = 0; k < n_hists; ++k) {
              obs::hist::Entry e;
              const std::uint32_t seam = reader.u32();
              OTW_REQUIRE_MSG(seam < obs::hist::kNumSeams,
                              "RESULT carries an unknown histogram seam");
              e.seam = static_cast<obs::hist::Seam>(seam);
              e.shard = conn.shard;
              e.src = reader.u32();
              e.dst = reader.u32();
              e.hist.count = reader.u64();
              e.hist.sum = reader.u64();
              for (std::uint64_t& b : e.hist.buckets) {
                b = reader.u64();
              }
              result.hists.push_back(std::move(e));
            }
            obs::LpTraceLog wire_log;
            wire_log.lp = conn.shard;
            wire_log.dropped = reader.u64();
            wire_log.name = "shard " + std::to_string(conn.shard) + " wire";
            const std::uint32_t n_records = reader.u32();
            wire_log.records.resize(n_records);
            reader.bytes(wire_log.records.data(),
                         n_records * sizeof(obs::TraceRecord));
            for (obs::TraceRecord& rec : wire_log.records) {
              const std::int64_t shifted =
                  static_cast<std::int64_t>(rec.wall_ns) + shift;
              rec.wall_ns =
                  shifted > 0 ? static_cast<std::uint64_t>(shifted) : 0;
            }
            if (n_records > 0 || wire_log.dropped > 0) {
              result.worker_traces.push_back(std::move(wire_log));
            }
            conn.done = true;
            ++results;
          } else if (header.tag == kTagStats) {
            // Live health snapshot: absorbed here, never relayed. The hook
            // may legitimately be absent (a stale child racing shutdown
            // cannot happen — workers only stream while running — but a
            // defensive null check costs nothing).
            if (live.on_stats) {
              live.on_stats(conn.shard, frame + kFrameHeaderBytes,
                            header.payload_len);
            }
            ++result.dist.stats_frames;
          } else if (header.tag == kTagTime) {
            // Clock refresh ping: echo the worker's raw t0 back alongside
            // our own clock. Never relayed, never counted as data.
            FrameHeader echo;
            echo.payload_len = 8;
            echo.tag = kTagTime;
            echo.flags = kFlagControl;
            echo.src_lp = conn.shard;
            echo.send_ns = mono_ns();
            std::uint8_t echo_frame[kFrameHeaderBytes + 8];
            encode_frame_header(echo, echo_frame);
            std::memcpy(echo_frame + kFrameHeaderBytes, &header.send_ns, 8);
            conn.out.insert(conn.out.end(), echo_frame,
                            echo_frame + sizeof echo_frame);
            flush_conn(conn);
          } else if (header.tag == kTagDone) {
            OTW_REQUIRE_MSG(mesh && header.payload_len == 8,
                            "unexpected DONE frame");
            conn.done_valid = true;
            std::memcpy(&conn.done_migrations_in, frame + kFrameHeaderBytes, 8);
            any_done = true;
            try_finish();
          } else if (header.tag == kTagMigrated) {
            OTW_REQUIRE_MSG(mesh && migration_inflight,
                            "unexpected MIGRATED frame");
            WireReader reader(frame + kFrameHeaderBytes, header.payload_len);
            const LpId lp = reader.u32();
            const std::uint32_t to = reader.u32();
            const std::uint32_t epoch = reader.u32();
            const std::uint8_t accepted = reader.u8();
            OTW_REQUIRE_MSG(reader.done() && lp < lps.size() &&
                                to < num_shards,
                            "malformed MIGRATED frame");
            migration_inflight = false;
            if (accepted != 0) {
              ++result.dist.migrations;
              if (epoch > epochs[lp]) {
                epochs[lp] = epoch;
                owners[lp] = to;
              }
              ++expected_in[to];
              std::vector<std::uint8_t> rebind;
              WireWriter w(rebind);
              w.u32(lp);
              w.u32(to);
              w.u32(epoch);
              FrameHeader h;
              h.payload_len = static_cast<std::uint32_t>(rebind.size());
              h.tag = kTagRebind;
              h.flags = kFlagControl;
              h.dst_lp = lp;
              broadcast(h, rebind.data());
            }
            try_finish();
          } else {
            OTW_REQUIRE_MSG(header.tag < kReservedTagBase,
                            "unexpected control frame from worker");
            // Under Mesh the data plane bypasses the coordinator entirely;
            // only control-plane (GVT) frames may still be relayed here.
            OTW_REQUIRE_MSG(!mesh || (header.flags & kFlagControl) != 0,
                            "data frame relayed under mesh topology");
            OTW_REQUIRE(header.dst_lp < lps.size());
            const std::uint32_t dst_shard = owners[header.dst_lp];
            OTW_REQUIRE(dst_shard < num_shards);
            Conn& target = conns[static_cast<std::size_t>(shard_conn[dst_shard])];
            target.out.insert(target.out.end(), frame, frame + frame_len);
            flush_conn(target);  // opportunistic; POLLOUT handles the rest
            ++result.dist.frames_relayed;
            if (live.bank != nullptr || live.on_relay) {
              // Relay residency: origin encode -> queued for the destination
              // (the upstream half of the end-to-end link latency).
              const std::uint64_t now = mono_ns();
              if (live.bank != nullptr) {
                live.bank->record_link(
                    obs::hist::Seam::RelayResidency, conn.shard, dst_shard,
                    now > header.send_ns ? now - header.send_ns : 0);
              }
              if (live.on_relay) {
                live.on_relay(conn.shard, dst_shard, header.tag,
                              static_cast<std::uint32_t>(frame_len),
                              header.send_ns, now);
              }
            }
          }
          pos += frame_len;
        }
        conn.in.erase(conn.in.begin(),
                      conn.in.begin() + static_cast<std::ptrdiff_t>(pos));
        if (eof && !conn.done) {
          throw std::runtime_error("shard " + std::to_string(conn.shard) +
                                   " exited before reporting a result");
        }
      }
    }

    for (Conn& conn : conns) {
      ::close(conn.fd);  // mesh workers linger on this close before exiting
      conn.fd = -1;
    }
  } catch (...) {
    for (pid_t child : children) {
      if (child > 0) {
        ::kill(child, SIGKILL);
        ::waitpid(child, nullptr, 0);
      }
    }
    throw;
  }

  for (std::uint32_t shard = 0; shard < num_shards; ++shard) {
    int status = 0;
    pid_t rc;
    do {
      rc = ::waitpid(children[shard], &status, 0);
    } while (rc < 0 && errno == EINTR);
    if (rc < 0) {
      throw_errno("waitpid");
    }
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      throw std::runtime_error(
          "DistributedEngine: shard " + std::to_string(shard) +
          (WIFSIGNALED(status)
               ? " killed by signal " + std::to_string(WTERMSIG(status))
               : " exited with status " + std::to_string(WEXITSTATUS(status))));
    }
  }

  // RESULT frames land in completion order; report tracks in shard order.
  std::sort(result.worker_traces.begin(), result.worker_traces.end(),
            [](const obs::LpTraceLog& a, const obs::LpTraceLog& b) {
              return a.lp < b.lp;
            });
  // Coordinator-side histograms (relay residency): stamped with the pseudo
  // shard id num_shards so they are distinguishable from worker entries.
  if (live.bank != nullptr) {
    for (obs::hist::Entry& e : live.bank->snapshot(num_shards)) {
      result.hists.push_back(std::move(e));
    }
  }
  result.execution_time_ns = mono_ns() - t_start;
  return result;
}

}  // namespace otw::platform
