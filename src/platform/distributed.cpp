#include "otw/platform/distributed.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <exception>
#include <limits>
#include <optional>
#include <stdexcept>
#include <string>

#include "otw/platform/snapshot_file.hpp"
#include "otw/platform/wire.hpp"
#include "otw/util/assert.hpp"
#include "otw/util/net.hpp"

namespace otw::platform {

namespace {

constexpr std::uint64_t kNever = std::numeric_limits<std::uint64_t>::max();

// SNAP_CTL phases (payload: u8 phase + u32 epoch). DESIGN.md section 8c.
constexpr std::uint8_t kSnapStop = 0;       ///< enter the settle loop
constexpr std::uint8_t kSnapPoll = 1;       ///< report channel-op counters
constexpr std::uint8_t kSnapCut = 2;        ///< freeze every LP at the GVT cut
constexpr std::uint8_t kSnapSerialize = 3;  ///< encode + ship the shard blob
constexpr std::uint8_t kSnapResume = 4;     ///< epoch committed; run again
constexpr std::uint8_t kSnapAbort = 5;      ///< epoch discarded; run again

// SNAP_ACK kinds (payload: u8 kind + u64 a + u64 b).
constexpr std::uint8_t kSnapAckCounters = 0;  ///< a = sent, b = received
constexpr std::uint8_t kSnapAckAccept = 1;    ///< cut taken; a = cut GVT ticks
constexpr std::uint8_t kSnapAckDecline = 2;   ///< cut refused (done / GVT 0)

/// Under fault tolerance the coordinator's poll sleep is capped so watchdog
/// kill requests and snapshot deadlines are honored promptly.
constexpr int kFaultPollCapMs = 25;

/// Temporary protocol tracing for the snapshot/recovery state machine,
/// gated on OTW_SNAP_DEBUG.
bool snap_debug() {
  static const bool on = std::getenv("OTW_SNAP_DEBUG") != nullptr;
  return on;
}

/// Shortest gap between two clock-refresh pings from one worker. Pings are
/// triggered by received GVT announces, which can burst; the estimate only
/// improves on a lower-RTT sample, so pinging faster than this is waste.
constexpr std::uint64_t kTimePingMinGapNs = 50'000'000;

/// FrameHeader.flags bit for control-plane frames (EngineMessage::wire_control).
constexpr std::uint16_t kFlagControl = 0x0001;

// POSIX plumbing lives in util::net (shared with the obs::live endpoint);
// these shims pin the error-message prefix for this transport.
const std::string kNetCtx = "DistributedEngine";

using util::net::mono_ns;

[[noreturn]] void throw_errno(const std::string& what) {
  util::net::throw_errno(kNetCtx, what);
}

void set_nonblocking(int fd) { util::net::set_nonblocking(fd, kNetCtx); }

void set_nodelay(int fd) {
  // Nagle would serialize the latency the aggregation layer is measuring;
  // batching is DyMA's job, not the kernel's.
  util::net::set_nodelay(fd, kNetCtx);
}

void write_all(int fd, const std::uint8_t* data, std::size_t len) {
  util::net::write_all(fd, data, len, kNetCtx);
}

bool read_exact(int fd, std::uint8_t* data, std::size_t len) {
  return util::net::read_exact(fd, data, len, kNetCtx);
}

void send_frame(int fd, const FrameHeader& header, const std::uint8_t* payload) {
  std::uint8_t raw[kFrameHeaderBytes];
  encode_frame_header(header, raw);
  write_all(fd, raw, kFrameHeaderBytes);
  if (header.payload_len > 0) {
    write_all(fd, payload, header.payload_len);
  }
}

/// Appends a framed message to an outbound byte queue (for links flushed
/// non-blockingly: two peers writing to each other with blocking sockets
/// and full kernel buffers would deadlock; queued writes never block).
void queue_frame(std::vector<std::uint8_t>& out, const FrameHeader& header,
                 const std::uint8_t* payload) {
  std::uint8_t raw[kFrameHeaderBytes];
  encode_frame_header(header, raw);
  out.insert(out.end(), raw, raw + kFrameHeaderBytes);
  if (header.payload_len > 0) {
    out.insert(out.end(), payload, payload + header.payload_len);
  }
}

/// Writes as much queued output as the socket accepts without blocking;
/// POLLOUT resumes the rest.
void flush_out(int fd, std::vector<std::uint8_t>& out, std::size_t& out_pos,
               const char* what) {
  while (out_pos < out.size()) {
    const ssize_t n = ::send(fd, out.data() + out_pos, out.size() - out_pos,
                             MSG_NOSIGNAL);
    if (n > 0) {
      out_pos += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return;  // kernel buffer full; POLLOUT will resume
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    throw_errno(what);
  }
  out.clear();
  out_pos = 0;
}

/// flush_out, but a counterpart that died mid-write (its process was
/// SIGKILLed) reports failure instead of throwing: under fault tolerance the
/// link is torn down and re-dialed at recovery. Returns false on a broken
/// link; queued bytes stay put (they are discarded with the incarnation).
[[nodiscard]] bool flush_out_tolerant(int fd, std::vector<std::uint8_t>& out,
                                      std::size_t& out_pos) {
  while (out_pos < out.size()) {
    const ssize_t n = ::send(fd, out.data() + out_pos, out.size() - out_pos,
                             MSG_NOSIGNAL);
    if (n > 0) {
      out_pos += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return true;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    return false;  // EPIPE / ECONNRESET / ...: the counterpart is gone
  }
  out.clear();
  out_pos = 0;
  return true;
}

// ---------------------------------------------------------------------------
// Child side: the shard driver.
// ---------------------------------------------------------------------------

struct ShardLp {
  ShardLp() = default;
  ShardLp(ShardLp&&) = default;
  ShardLp& operator=(ShardLp&&) = default;

  LpId id = 0;
  LpRunner* runner = nullptr;
  StepStatus status = StepStatus::Active;
  bool migrated_out = false;  ///< entry kept (busy_ns) after the LP left
  std::uint64_t busy_ns = 0;
  std::uint64_t wake_hint_ns = kNever;
  std::deque<std::unique_ptr<EngineMessage>> inbox;
};

/// One direct worker-to-worker TCP stream (mesh topology). Output is queued
/// and flushed non-blockingly; input bytes accumulate until whole frames
/// parse out. One stream per ordered pair is exactly the per-(src,dst) FIFO
/// the kernel's non-overtaking contract needs.
struct PeerLink {
  int fd = -1;
  std::vector<std::uint8_t> in;
  std::vector<std::uint8_t> out;
  std::size_t out_pos = 0;

  [[nodiscard]] bool out_pending() const noexcept { return out_pos < out.size(); }
};

/// Everything one worker process accumulates and ships home in its RESULT.
struct ShardTotals {
  std::uint64_t steps = 0;
  std::uint64_t physical_messages = 0;
  std::uint64_t wire_bytes = 0;
  DistStats dist;
};

class ShardDriver {
 public:
  ShardDriver(std::uint32_t shard, const DistributedConfig& config,
              const std::vector<LpRunner*>& all_lps, int fd,
              std::vector<PeerLink> links, const LiveStatsHooks& live,
              std::int64_t clock_offset_ns, std::uint64_t clock_rtt_ns,
              bool fault)
      : shard_(shard),
        config_(config),
        live_(live),
        clock_offset_ns_(clock_offset_ns),
        clock_rtt_ns_(clock_rtt_ns),
        num_lps_(static_cast<LpId>(all_lps.size())),
        fd_(fd),
        all_lps_(all_lps),
        links_(std::move(links)),
        mesh_(config.topology == Topology::Mesh && config.num_shards > 1),
        fault_(fault),
        trace_(config.wire_trace_capacity ? config.wire_trace_capacity : 1),
        epoch_ns_(mono_ns()) {
    await_marker_.assign(config.num_shards, false);
    early_marker_.assign(config.num_shards, false);
    owners_.resize(num_lps_);
    epochs_.assign(num_lps_, 0);
    lp_index_.assign(num_lps_, SIZE_MAX);
    pending_in_.resize(num_lps_);
    for (LpId lp = 0; lp < num_lps_; ++lp) {
      owners_[lp] = initial_owner_of(lp, config_);
      if (owners_[lp] == shard_) {
        lp_index_[lp] = lps_.size();
        ShardLp state;
        state.id = lp;
        state.runner = all_lps[lp];
        lps_.push_back(std::move(state));
      }
    }
    remaining_ = lps_.size();
  }

  void run();

  /// Encodes the shard summary + harvest blob as the RESULT payload.
  void encode_result(WireWriter& w, const std::vector<std::uint8_t>& harvest) const;

  /// Replacement-worker entry: adopt a RESTORE payload as this shard's
  /// committed snapshot, rebuild every local LP from it and freeze until the
  /// coordinator's Resume. Called once, before run().
  void restore_from(std::uint32_t epoch, std::uint64_t gvt_ticks,
                    std::vector<std::uint8_t> blob);

  [[nodiscard]] std::uint64_t now_ns() const noexcept {
    return mono_ns() - epoch_ns_;
  }

  /// Local steady clock shifted into the coordinator's clock domain; what
  /// every outgoing frame stamps into FrameHeader::send_ns.
  [[nodiscard]] std::uint64_t aligned_now_ns() const noexcept {
    return static_cast<std::uint64_t>(static_cast<std::int64_t>(mono_ns()) +
                                      clock_offset_ns_);
  }

  void deliver_local(LpId dst, std::unique_ptr<EngineMessage> msg) {
    if (live_.bank != nullptr) {
      msg->obs_enqueue_ns = now_ns();
    }
    ++snap_sent_;
    lps_[lp_index_[dst]].inbox.push_back(std::move(msg));
  }

  void send_remote(LpId src, LpId dst, const EngineMessage& msg);

  [[nodiscard]] const std::vector<std::uint32_t>& owners() const noexcept {
    return owners_;
  }

  ShardTotals totals_;

 private:
  void drain_socket();
  void drain_links();
  void handle_coord_frame(const FrameHeader& header, const std::uint8_t* payload);
  void handle_peer_frame(std::uint32_t peer, const std::uint8_t* frame,
                         const FrameHeader& header);
  void route_inbound(const std::uint8_t* frame, const FrameHeader& header,
                     std::uint32_t src_shard_hint);
  void handle_migrate_cmd(const std::uint8_t* payload, std::uint32_t len);
  void handle_migrate_in(const FrameHeader& header, const std::uint8_t* payload);
  void handle_rebind(const std::uint8_t* payload, std::uint32_t len);
  void handle_time_echo(const FrameHeader& header, const std::uint8_t* payload);
  void handle_snap_ctl(const std::uint8_t* payload, std::uint32_t len);
  void handle_recover(const std::uint8_t* payload, std::uint32_t len);
  void send_snap_ack(std::uint8_t kind, std::uint64_t a, std::uint64_t b,
                     std::uint32_t seq);
  void serialize_shard(std::uint32_t epoch);
  void restore_local(WireReader& r);
  void settle_pass();
  void drop_peer_link(std::uint32_t peer);
  void flush_peer_link(std::uint32_t peer);
  void maybe_send_time_ping();
  void send_done();
  void flush_links();
  void forward_frame(const std::uint8_t* frame, const FrameHeader& header);
  void idle_wait();
  void maybe_send_stats();

  class Context;

  /// Snapshot-protocol execution mode. Run = normal stepping; Settle = no
  /// stepping, absorb + flush only (between SNAP_CTL stop and resume); Hold
  /// = frozen after serialize/restore until the coordinator's Resume.
  enum class SnapMode : std::uint8_t { Run, Settle, Hold };

  std::uint32_t shard_;
  const DistributedConfig& config_;
  const LiveStatsHooks& live_;
  std::int64_t clock_offset_ns_;   ///< worker -> coordinator clock shift
  std::uint64_t clock_rtt_ns_;     ///< RTT of the best (lowest) estimate so far
  std::uint64_t last_time_ping_ns_ = 0;  ///< driver-relative (now_ns())
  std::uint64_t next_stats_ns_ = 0;  ///< driver-relative deadline (now_ns())
  LpId num_lps_;
  int fd_;
  const std::vector<LpRunner*>& all_lps_;  ///< fork gave us a copy of every LP
  std::vector<PeerLink> links_;            ///< index = shard; self unused
  bool mesh_;
  std::vector<ShardLp> lps_;
  std::vector<std::size_t> lp_index_;  ///< global LpId -> index in lps_
  std::vector<std::uint32_t> owners_;  ///< LP -> shard, current routing epoch
  std::vector<std::uint32_t> epochs_;  ///< LP -> highest rebind epoch seen
  /// Inbound messages for an LP this shard owns (per REBIND/MIGRATE) whose
  /// state has not arrived yet; drained into the inbox at migrate-in.
  std::vector<std::deque<std::unique_ptr<EngineMessage>>> pending_in_;
  std::size_t remaining_ = 0;       ///< local LPs not Done and not migrated out
  std::uint64_t migrations_in_ = 0;
  bool done_announced_ = false;
  bool finish_received_ = false;
  std::vector<std::uint8_t> in_buf_;   ///< unparsed coordinator-stream bytes
  std::vector<std::uint8_t> scratch_;  ///< payload encode buffer

  // --- fault tolerance (DESIGN.md section 8c) ---
  bool fault_ = false;
  SnapMode snap_mode_ = SnapMode::Run;
  bool snap_poll_pending_ = false;  ///< ACK owed after the next settle pass
  std::uint32_t snap_poll_round_ = 0;  ///< round id echoed in the counters ACK
  /// Channel-op counters for the quiescence proof: every enqueue (inbox
  /// push, socket send, forward) bumps snap_sent_, every dequeue (socket
  /// receive, inbox pop) bumps snap_recv_. Stable and globally balanced
  /// counts across two poll rounds mean no message is in flight anywhere.
  std::uint64_t snap_sent_ = 0;
  std::uint64_t snap_recv_ = 0;
  /// Committed self-snapshot: this shard's blob of the last epoch the
  /// coordinator confirmed complete (survivors self-restore from it).
  std::vector<std::uint8_t> self_blob_;
  std::uint32_t self_epoch_ = 0;
  std::uint64_t self_gvt_ = 0;
  /// Serialized-but-unconfirmed blob: promoted to self_blob_ on Resume (or
  /// by a RECOVER naming its epoch), discarded on Abort. Keeping both closes
  /// the window where a death lands between serialize and commit.
  std::vector<std::uint8_t> pending_blob_;
  std::uint32_t pending_epoch_ = 0;
  std::uint64_t pending_gvt_ = 0;
  bool pending_valid_ = false;
  /// Per peer: drop inbound frames until that peer's RECOVER_MARK arrives
  /// (they belong to the incarnation the rollback discarded). FIFO links
  /// make the discard window exact.
  std::vector<bool> await_marker_;
  /// Per peer: a RECOVER_MARK arrived before our own RECOVER did (the two
  /// travel on different streams); consume it instead of awaiting another.
  std::vector<bool> early_marker_;

  obs::TraceRing trace_;
  std::uint64_t epoch_ns_;

 public:
  [[nodiscard]] std::int64_t clock_offset_ns() const noexcept {
    return clock_offset_ns_;
  }
  [[nodiscard]] std::uint64_t clock_rtt_ns() const noexcept {
    return clock_rtt_ns_;
  }
};

class ShardDriver::Context final : public LpContext {
 public:
  Context(ShardDriver& driver, ShardLp& lp)
      : driver_(driver), lp_(lp) {}

  [[nodiscard]] LpId self() const noexcept override { return lp_.id; }
  [[nodiscard]] LpId num_lps() const noexcept override { return driver_.num_lps_; }
  [[nodiscard]] std::uint64_t now_ns() const noexcept override {
    return driver_.now_ns();
  }

  void charge(std::uint64_t ns) noexcept override { lp_.busy_ns += ns; }

  void send(LpId dst, std::unique_ptr<EngineMessage> msg) override {
    OTW_REQUIRE(dst < driver_.num_lps_);
    OTW_REQUIRE(msg != nullptr);
    const std::uint64_t bytes = msg->wire_bytes();
    charge(driver_.config_.costs.send_cost_ns(bytes));
    ++driver_.totals_.physical_messages;
    driver_.totals_.wire_bytes += bytes;
    if (driver_.owners_[dst] == driver_.shard_) {
      if (driver_.lp_index_[dst] != SIZE_MAX) {
        driver_.deliver_local(dst, std::move(msg));
      } else {
        // Rebound here, state still in flight: park until migrate-in.
        ++driver_.snap_sent_;
        driver_.pending_in_[dst].push_back(std::move(msg));
      }
    } else {
      driver_.send_remote(lp_.id, dst, *msg);
    }
  }

  std::unique_ptr<EngineMessage> poll() override {
    if (lp_.inbox.empty()) {
      return nullptr;
    }
    auto msg = std::move(lp_.inbox.front());
    lp_.inbox.pop_front();
    ++driver_.snap_recv_;
    if (driver_.live_.bank != nullptr) {
      const std::uint64_t now = driver_.now_ns();
      driver_.live_.bank->record(
          obs::hist::Seam::MailboxDwell,
          now > msg->obs_enqueue_ns ? now - msg->obs_enqueue_ns : 0);
    }
    charge(driver_.config_.costs.msg_recv_overhead_ns);
    return msg;
  }

  void request_wakeup(std::uint64_t abs_ns) noexcept override {
    lp_.wake_hint_ns = std::min(lp_.wake_hint_ns, abs_ns);
  }

  [[nodiscard]] const CostModel& costs() const noexcept override {
    return driver_.config_.costs;
  }

 private:
  ShardDriver& driver_;
  ShardLp& lp_;
};

void ShardDriver::send_remote(LpId src, LpId dst, const EngineMessage& msg) {
  const WireTag tag = msg.wire_tag();
  OTW_REQUIRE_MSG(tag != kNoWireTag,
                  "message type has no wire tag and cannot leave the process "
                  "(register it in the WireRegistry and override "
                  "wire_tag/encode_wire)");
  scratch_.clear();
  WireWriter writer(scratch_);
  const std::uint64_t t0 = mono_ns();
  msg.encode_wire(writer);
  const std::uint64_t encode_ns = mono_ns() - t0;
  totals_.dist.serialize_ns += encode_ns;
  if (live_.bank != nullptr) {
    live_.bank->record(obs::hist::Seam::WireEncode, encode_ns);
  }

  FrameHeader header;
  header.payload_len = static_cast<std::uint32_t>(scratch_.size());
  header.tag = tag;
  header.flags = msg.wire_control() ? kFlagControl : 0;
  header.src_lp = src;
  header.dst_lp = dst;
  header.send_ns = aligned_now_ns();
  ++snap_sent_;
  if (mesh_ && !msg.wire_control()) {
    // Data plane: one hop on the direct (src,dst) peer link. A dead peer's
    // frames accumulate in the queue and are discarded with the incarnation
    // at recovery (the rollback re-generates them).
    const std::uint32_t peer = owners_[dst];
    queue_frame(links_[peer].out, header, scratch_.data());
    flush_peer_link(peer);
  } else {
    // Control plane (GVT tokens/announces) — and everything under Star —
    // transits the coordinator, which keeps RelayResidency attribution.
    send_frame(fd_, header, scratch_.data());
  }

  ++totals_.dist.frames_sent;
  totals_.dist.bytes_sent += kFrameHeaderBytes + scratch_.size();
  if (msg.wire_control()) {
    ++totals_.dist.gvt_token_frames;
  }
  if (config_.wire_trace_capacity > 0) {
    const obs::TraceArgs args = obs::pack_wire_frame(
        tag, /*sent=*/true, kFrameHeaderBytes + scratch_.size());
    trace_.push(obs::TraceRecord{now_ns(), 0, args.arg0, args.arg1, src,
                                 obs::TraceKind::WireFrame});
  }
}

void ShardDriver::handle_time_echo(const FrameHeader& header,
                                   const std::uint8_t* payload) {
  // Clock refresh: the coordinator echoed our raw t0 with its own clock in
  // send_ns. Midpoint estimate, kept only when this sample's RTT beats the
  // best so far (a low-RTT exchange bounds the offset error by rtt/2).
  OTW_REQUIRE_MSG(header.payload_len == 8, "malformed TIME echo");
  const std::uint64_t t1 = mono_ns();
  std::uint64_t t0 = 0;
  std::memcpy(&t0, payload, 8);
  if (t1 < t0) {
    return;  // nonsense sample (shouldn't happen on one steady clock)
  }
  const std::uint64_t rtt = t1 - t0;
  if (rtt <= clock_rtt_ns_) {
    clock_rtt_ns_ = rtt;
    clock_offset_ns_ = static_cast<std::int64_t>(header.send_ns) -
                       static_cast<std::int64_t>(t0 + rtt / 2);
  }
}

void ShardDriver::maybe_send_time_ping() {
  // Triggered by received GVT-announce (control) frames, rate-limited, and
  // only while the attribution plane is armed — an unarmed run keeps the
  // wire byte-for-byte free of telemetry chatter.
  if (live_.bank == nullptr) {
    return;
  }
  const std::uint64_t now = now_ns();
  if (last_time_ping_ns_ != 0 && now - last_time_ping_ns_ < kTimePingMinGapNs) {
    return;
  }
  last_time_ping_ns_ = now == 0 ? 1 : now;
  FrameHeader ping;
  ping.tag = kTagTime;
  ping.flags = kFlagControl;
  ping.src_lp = shard_;
  ping.send_ns = mono_ns();  // RAW local clock; echoed back verbatim
  send_frame(fd_, ping, nullptr);
}

void ShardDriver::forward_frame(const std::uint8_t* frame,
                                const FrameHeader& header) {
  // The sender's routing epoch was stale: re-ship the frame verbatim to the
  // shard we believe owns the LP. Owner maps only move to higher epochs, so
  // a forwarded frame always moves toward the migration's destination and
  // chains terminate (bounded by the number of rebinds).
  const std::uint32_t peer = owners_[header.dst_lp];
  PeerLink& link = links_[peer];
  link.out.insert(link.out.end(), frame,
                  frame + kFrameHeaderBytes + header.payload_len);
  ++snap_sent_;
  flush_peer_link(peer);
  ++totals_.dist.frames_forwarded;
}

void ShardDriver::route_inbound(const std::uint8_t* frame,
                                const FrameHeader& header,
                                std::uint32_t src_shard_hint) {
  const LpId dst = header.dst_lp;
  OTW_REQUIRE_MSG(dst < num_lps_, "frame routed to an unknown LP");
  ++snap_recv_;
  if (owners_[dst] != shard_) {
    // Under Star, placement is static, so this is unconditionally a bug.
    OTW_REQUIRE_MSG(mesh_, "frame routed to the wrong shard");
    forward_frame(frame, header);
    return;
  }
  const std::uint8_t* payload = frame + kFrameHeaderBytes;
  WireReader reader(payload, header.payload_len);
  const std::uint64_t t0 = mono_ns();
  auto msg = WireRegistry::instance().decode(header.tag, reader);
  const std::uint64_t decode_ns = mono_ns() - t0;
  totals_.dist.deserialize_ns += decode_ns;
  OTW_REQUIRE_MSG(reader.done(), "trailing bytes after wire payload");

  ++totals_.dist.frames_received;
  totals_.dist.bytes_received += kFrameHeaderBytes + header.payload_len;
  if (live_.bank != nullptr) {
    live_.bank->record(obs::hist::Seam::WireDecode, decode_ns);
    // End-to-end link latency (encode -> transport -> decode): both
    // timestamps are in the coordinator clock domain, so subtraction is
    // meaningful up to the two offset-estimate errors (each bounded by its
    // RTT/2).
    const std::uint64_t now_aligned = aligned_now_ns();
    live_.bank->record_link(
        obs::hist::Seam::LinkLatency, src_shard_hint, shard_,
        now_aligned > header.send_ns ? now_aligned - header.send_ns : 0);
  }
  if ((header.flags & kFlagControl) != 0) {
    maybe_send_time_ping();
  }
  if (config_.wire_trace_capacity > 0) {
    const obs::TraceArgs args = obs::pack_wire_frame(
        header.tag, /*sent=*/false, kFrameHeaderBytes + header.payload_len);
    trace_.push(obs::TraceRecord{now_ns(), 0, args.arg0, args.arg1,
                                 header.src_lp, obs::TraceKind::WireFrame});
  }
  if (lp_index_[dst] == SIZE_MAX) {
    // We own the LP (rebind seen) but its state is still in flight.
    pending_in_[dst].push_back(std::move(msg));
  } else {
    deliver_local(dst, std::move(msg));
  }
}

void ShardDriver::handle_rebind(const std::uint8_t* payload, std::uint32_t len) {
  WireReader r(payload, len);
  const LpId lp = r.u32();
  const std::uint32_t owner = r.u32();
  const std::uint32_t epoch = r.u32();
  OTW_REQUIRE_MSG(r.done() && lp < num_lps_ && owner < config_.num_shards,
                  "malformed REBIND frame");
  if (epoch > epochs_[lp]) {  // epoch-monotonic: stale rebinds are no-ops
    epochs_[lp] = epoch;
    owners_[lp] = owner;
  }
}

void ShardDriver::handle_migrate_cmd(const std::uint8_t* payload,
                                     std::uint32_t len) {
  WireReader r(payload, len);
  const LpId lp = r.u32();
  const std::uint32_t to = r.u32();
  const std::uint32_t epoch = r.u32();
  OTW_REQUIRE_MSG(r.done() && lp < num_lps_ && to < config_.num_shards &&
                      to != shard_,
                  "malformed MIGRATE_CMD frame");
  OTW_REQUIRE_MSG(mesh_, "migration requires the mesh topology");
  OTW_REQUIRE_MSG(owners_[lp] == shard_ && lp_index_[lp] != SIZE_MAX,
                  "migrate command for an LP this shard does not hold");
  ShardLp& s = lps_[lp_index_[lp]];
  auto* migratable = dynamic_cast<MigratableLp*>(s.runner);
  std::uint8_t accepted = 1;
  if (s.status == StepStatus::Done || migratable == nullptr) {
    // Endgame race (the LP finished while the command was in flight) or a
    // runner that cannot move: decline, the coordinator drops the epoch.
    accepted = 0;
  } else {
    // NOT scratch_: migrate_out ships the LP's held sends and aggregation
    // batches through send_remote mid-serialization, and that path reuses
    // scratch_ as its encode buffer.
    std::vector<std::uint8_t> blob;
    WireWriter w(blob);
    w.u32(epoch);
    const std::uint64_t t0 = mono_ns();
    bool frozen = false;
    {
      Context ctx(*this, s);
      frozen = migratable->migrate_out(ctx, w);
    }
    if (!frozen) {
      // The LP completed while migrate_out drained its backlog; its next
      // step() reports Done through the normal path. Decline the move.
      accepted = 0;
    } else {
      if (live_.bank != nullptr) {
        live_.bank->record(obs::hist::Seam::MigrationFreeze, mono_ns() - t0);
      }
      OTW_ASSERT(s.inbox.empty());  // migrate_out must drain via ctx.poll()
      FrameHeader h;
      h.payload_len = static_cast<std::uint32_t>(blob.size());
      h.tag = kTagMigrate;
      h.flags = kFlagControl;
      h.src_lp = shard_;
      h.dst_lp = lp;
      h.send_ns = aligned_now_ns();
      // Peer link, not the coordinator: frames already forwarded toward the
      // destination sit ahead of the LP state on the same FIFO stream.
      PeerLink& link = links_[to];
      queue_frame(link.out, h, blob.data());
      flush_out(link.fd, link.out, link.out_pos, "send (peer link)");
      ++totals_.dist.frames_sent;
      totals_.dist.bytes_sent += kFrameHeaderBytes + blob.size();

      s.runner = nullptr;
      s.migrated_out = true;
      if (s.status != StepStatus::Done) {
        --remaining_;
      }
      s.status = StepStatus::Done;
      lp_index_[lp] = SIZE_MAX;
      owners_[lp] = to;
      epochs_[lp] = epoch;
    }
  }
  // Report to the coordinator, which rebinds everyone else on acceptance.
  scratch_.clear();
  WireWriter w(scratch_);
  w.u32(lp);
  w.u32(to);
  w.u32(epoch);
  w.u8(accepted);
  FrameHeader h;
  h.payload_len = static_cast<std::uint32_t>(scratch_.size());
  h.tag = kTagMigrated;
  h.flags = kFlagControl;
  h.src_lp = shard_;
  h.send_ns = aligned_now_ns();
  send_frame(fd_, h, scratch_.data());
}

void ShardDriver::handle_migrate_in(const FrameHeader& header,
                                    const std::uint8_t* payload) {
  OTW_REQUIRE_MSG(mesh_, "migration requires the mesh topology");
  const LpId lp = header.dst_lp;
  OTW_REQUIRE_MSG(lp < num_lps_, "MIGRATE frame for an unknown LP");
  WireReader r(payload, header.payload_len);
  const std::uint32_t epoch = r.u32();
  if (epoch > epochs_[lp]) {
    // The MIGRATE beat the REBIND broadcast here; it implies ownership.
    epochs_[lp] = epoch;
    owners_[lp] = shard_;
  }
  OTW_REQUIRE_MSG(owners_[lp] == shard_ && lp_index_[lp] == SIZE_MAX,
                  "MIGRATE frame for an LP this shard already holds");
  auto* migratable = dynamic_cast<MigratableLp*>(all_lps_[lp]);
  OTW_REQUIRE_MSG(migratable != nullptr, "LP runner is not migratable");
  lp_index_[lp] = lps_.size();
  lps_.emplace_back();
  ShardLp& s = lps_.back();
  s.id = lp;
  s.runner = all_lps_[lp];  // fork copy, about to be overwritten from the wire
  s.status = StepStatus::Active;
  const std::uint64_t t0 = mono_ns();
  {
    Context ctx(*this, s);
    migratable->migrate_in(ctx, r);
  }
  OTW_REQUIRE_MSG(r.done(), "trailing bytes after MIGRATE payload");
  if (live_.bank != nullptr) {
    live_.bank->record(obs::hist::Seam::MigrationRestore, mono_ns() - t0);
  }
  ++totals_.dist.frames_received;
  totals_.dist.bytes_received += kFrameHeaderBytes + header.payload_len;
  ++migrations_in_;
  ++remaining_;
  done_announced_ = false;  // active set grew; the last DONE is stale
  // Frames that raced ahead of the LP state resume delivery in FIFO order.
  std::deque<std::unique_ptr<EngineMessage>>& stash = pending_in_[lp];
  while (!stash.empty()) {
    deliver_local(lp, std::move(stash.front()));
    stash.pop_front();
  }
}

void ShardDriver::send_snap_ack(std::uint8_t kind, std::uint64_t a,
                                std::uint64_t b, std::uint32_t seq) {
  scratch_.clear();
  WireWriter w(scratch_);
  w.u8(kind);
  w.u64(a);
  w.u64(b);
  w.u32(seq);
  FrameHeader h;
  h.payload_len = static_cast<std::uint32_t>(scratch_.size());
  h.tag = kTagSnapAck;
  h.flags = kFlagControl;
  h.src_lp = shard_;
  h.send_ns = aligned_now_ns();
  send_frame(fd_, h, scratch_.data());
}

void ShardDriver::settle_pass() {
  for (ShardLp& lp : lps_) {
    if (lp.runner == nullptr) {
      continue;
    }
    auto* migratable = dynamic_cast<MigratableLp*>(lp.runner);
    if (migratable == nullptr) {
      continue;
    }
    Context ctx(*this, lp);
    migratable->snapshot_settle(ctx);
  }
  flush_links();
  if (snap_poll_pending_) {
    // Deferred Poll ACK: the counters go out only after a full settle pass,
    // which flushed every aggregation window — so a reported-quiescent shard
    // can never be hiding events parked in a channel.
    snap_poll_pending_ = false;
    send_snap_ack(kSnapAckCounters, snap_sent_, snap_recv_, snap_poll_round_);
  }
}

void ShardDriver::serialize_shard(std::uint32_t epoch) {
  const std::uint64_t t0 = mono_ns();
  std::vector<std::uint8_t> blob;
  WireWriter w(blob);
  w.u32(static_cast<std::uint32_t>(lps_.size()));
  std::uint64_t gvt = 0;
  std::vector<std::uint8_t> one;
  for (ShardLp& lp : lps_) {
    auto* migratable = dynamic_cast<MigratableLp*>(lp.runner);
    OTW_REQUIRE_MSG(migratable != nullptr,
                    "snapshot serialize on a runner that cannot encode");
    one.clear();
    WireWriter ow(one);
    {
      Context ctx(*this, lp);
      migratable->snapshot_encode(ctx, ow);
    }
    w.u32(lp.id);
    w.u32(static_cast<std::uint32_t>(one.size()));
    w.bytes(one.data(), one.size());
    gvt = migratable->snapshot_gvt_ticks();
  }
  const std::uint64_t encode_ns = mono_ns() - t0;
  totals_.dist.serialize_ns += encode_ns;
  if (live_.bank != nullptr) {
    live_.bank->record(obs::hist::Seam::SnapshotEncode, encode_ns);
  }
  // SNAP_DATA payload: u32 epoch + u64 gvt + shard blob. The blob is also
  // retained as the pending self-snapshot until the coordinator commits or
  // aborts the epoch.
  scratch_.clear();
  WireWriter pw(scratch_);
  pw.u32(epoch);
  pw.u64(gvt);
  pw.bytes(blob.data(), blob.size());
  FrameHeader h;
  h.payload_len = static_cast<std::uint32_t>(scratch_.size());
  h.tag = kTagSnapData;
  h.flags = kFlagControl;
  h.src_lp = shard_;
  h.send_ns = aligned_now_ns();
  send_frame(fd_, h, scratch_.data());
  totals_.dist.bytes_sent += kFrameHeaderBytes + scratch_.size();
  pending_blob_ = std::move(blob);
  pending_epoch_ = epoch;
  pending_gvt_ = gvt;
  pending_valid_ = true;
}

void ShardDriver::handle_snap_ctl(const std::uint8_t* payload,
                                  std::uint32_t len) {
  OTW_REQUIRE_MSG(fault_, "SNAP_CTL frame without fault tolerance enabled");
  WireReader r(payload, len);
  const std::uint8_t phase = r.u8();
  const std::uint32_t epoch = r.u32();
  OTW_REQUIRE_MSG(r.done(), "malformed SNAP_CTL frame");
  if (snap_debug()) {
    std::fprintf(stderr, "[shard %u] SNAP_CTL phase=%u epoch=%u\n", shard_,
                 phase, epoch);
  }
  switch (phase) {
    case kSnapStop:
      snap_mode_ = SnapMode::Settle;
      return;
    case kSnapPoll:
      // The epoch field carries the poll round id: the coordinator only
      // accepts a counters ACK stamped with the round it is currently
      // collecting, so a late ACK can never complete a later round.
      snap_poll_pending_ = true;  // answered by the next settle pass
      snap_poll_round_ = epoch;
      return;
    case kSnapCut: {
      bool accepted = true;
      for (ShardLp& lp : lps_) {
        if (lp.runner == nullptr) {
          continue;
        }
        auto* migratable = dynamic_cast<MigratableLp*>(lp.runner);
        bool ok = false;
        if (migratable != nullptr) {
          Context ctx(*this, lp);
          ok = migratable->snapshot_cut(ctx);
        }
        if (!ok) {
          // No undo needed: a taken cut is a digest-neutral rollback, the
          // frozen LPs simply resume from it after the coordinator's Abort.
          accepted = false;
          break;
        }
      }
      flush_links();  // the cut flushed held sends + batches toward peers
      // The cut rolled every runtime back to the GVT cut; the driver-side
      // step state (status, wake hints) predates that rollback, and a cut
      // that produces no anti-messages wakes nobody — the whole mesh would
      // sleep forever after Resume. Mark everything runnable so each LP is
      // re-stepped (one with nothing to redo parks itself again), and
      // revive LPs whose completion was itself speculative.
      for (ShardLp& lp : lps_) {
        if (lp.runner == nullptr) {
          continue;
        }
        if (lp.status == StepStatus::Done) {
          ++remaining_;
        }
        lp.status = StepStatus::Active;
        lp.wake_hint_ns = kNever;
      }
      if (accepted) {
        std::uint64_t gvt = 0;
        for (ShardLp& lp : lps_) {
          if (lp.runner == nullptr) {
            continue;
          }
          gvt = dynamic_cast<MigratableLp*>(lp.runner)->snapshot_gvt_ticks();
          break;  // at quiescence every LP agrees on the cut GVT
        }
        send_snap_ack(kSnapAckAccept, gvt, 0, epoch);
      } else {
        send_snap_ack(kSnapAckDecline, 0, 0, epoch);
      }
      return;
    }
    case kSnapSerialize:
      serialize_shard(epoch);
      snap_mode_ = SnapMode::Hold;
      return;
    case kSnapResume:
      if (pending_valid_ && pending_epoch_ == epoch) {
        self_blob_ = std::move(pending_blob_);
        self_epoch_ = pending_epoch_;
        self_gvt_ = pending_gvt_;
        pending_blob_.clear();
        pending_valid_ = false;
      }
      snap_mode_ = SnapMode::Run;
      return;
    case kSnapAbort:
      pending_blob_.clear();
      pending_valid_ = false;
      snap_mode_ = SnapMode::Run;
      return;
    default:
      throw std::runtime_error("unknown SNAP_CTL phase " +
                               std::to_string(phase));
  }
}

void ShardDriver::restore_local(WireReader& r) {
  const std::uint64_t t0 = mono_ns();
  const std::uint32_t count = r.u32();
  OTW_REQUIRE_MSG(count == lps_.size(),
                  "snapshot blob LP count does not match this shard");
  for (std::uint32_t k = 0; k < count; ++k) {
    const LpId id = r.u32();
    const std::uint32_t len = r.u32();
    OTW_REQUIRE_MSG(id < num_lps_ && lp_index_[id] != SIZE_MAX,
                    "snapshot blob names an LP this shard does not hold");
    ShardLp& lp = lps_[lp_index_[id]];
    lp.inbox.clear();  // dead-incarnation deliveries; the cut predates them
    lp.status = StepStatus::Active;
    lp.wake_hint_ns = kNever;
    auto* migratable = dynamic_cast<MigratableLp*>(lp.runner);
    OTW_REQUIRE_MSG(migratable != nullptr,
                    "snapshot blob for a runner that cannot restore");
    std::vector<std::uint8_t> one(len);
    r.bytes(one.data(), len);
    WireReader sub(one.data(), one.size());
    {
      Context ctx(*this, lp);
      migratable->snapshot_restore(ctx, sub);
    }
    OTW_REQUIRE_MSG(sub.done(), "trailing bytes after an LP snapshot record");
  }
  OTW_REQUIRE_MSG(r.done(), "trailing bytes after a shard snapshot blob");
  for (std::deque<std::unique_ptr<EngineMessage>>& stash : pending_in_) {
    stash.clear();
  }
  remaining_ = lps_.size();  // a committed cut never contains a Done LP
  done_announced_ = false;
  if (live_.bank != nullptr) {
    live_.bank->record(obs::hist::Seam::RestoreReplay, mono_ns() - t0);
  }
}

void ShardDriver::restore_from(std::uint32_t epoch, std::uint64_t gvt_ticks,
                               std::vector<std::uint8_t> blob) {
  OTW_REQUIRE_MSG(fault_, "restore_from without fault tolerance enabled");
  self_blob_ = std::move(blob);
  self_epoch_ = epoch;
  self_gvt_ = gvt_ticks;
  WireReader r(self_blob_.data(), self_blob_.size());
  restore_local(r);
  snap_sent_ = 0;
  snap_recv_ = 0;
  snap_mode_ = SnapMode::Hold;  // frozen until the coordinator's Resume
}

void ShardDriver::drop_peer_link(std::uint32_t peer) {
  PeerLink& link = links_[peer];
  if (link.fd >= 0) {
    ::close(link.fd);
  }
  link.fd = -1;
  link.in.clear();
  link.out.clear();
  link.out_pos = 0;
}

void ShardDriver::flush_peer_link(std::uint32_t peer) {
  PeerLink& link = links_[peer];
  if (link.fd < 0 || !link.out_pending()) {
    return;  // fd < 0: dead incarnation, bytes discarded at recovery
  }
  if (fault_) {
    if (!flush_out_tolerant(link.fd, link.out, link.out_pos)) {
      drop_peer_link(peer);  // SIGKILLed peer; recovery re-dials it
    }
  } else {
    flush_out(link.fd, link.out, link.out_pos, "send (peer link)");
  }
}

void ShardDriver::handle_recover(const std::uint8_t* payload,
                                 std::uint32_t len) {
  OTW_REQUIRE_MSG(fault_, "RECOVER frame without fault tolerance enabled");
  WireReader r(payload, len);
  const std::uint32_t epoch = r.u32();
  const std::uint32_t dead = r.u32();
  const std::uint16_t new_port = r.u16();
  OTW_REQUIRE_MSG(r.done() && dead < config_.num_shards && dead != shard_,
                  "malformed RECOVER frame");
  // Incarnation markers first: queued BEHIND whatever already sits in each
  // surviving peer's out queue and never blocking-flushed (two peers
  // blocking-flushing at each other would deadlock). The replacement gets
  // none — its link starts inside the new incarnation.
  for (std::uint32_t p = 0; p < links_.size(); ++p) {
    if (p == shard_ || p == dead || links_[p].fd < 0) {
      continue;
    }
    FrameHeader mark;
    mark.tag = kTagRecoverMark;
    mark.flags = kFlagControl;
    mark.src_lp = shard_;
    mark.send_ns = aligned_now_ns();
    queue_frame(links_[p].out, mark, nullptr);
    if (early_marker_[p]) {
      early_marker_[p] = false;  // the peer's marker already arrived
    } else {
      await_marker_[p] = true;
    }
  }
  drop_peer_link(dead);
  // Adopt the committed cut. A death between serialize and resume means the
  // epoch being restored may still sit unpromoted in pending_blob_.
  if (pending_valid_ && pending_epoch_ == epoch) {
    self_blob_ = std::move(pending_blob_);
    self_epoch_ = pending_epoch_;
    self_gvt_ = pending_gvt_;
  }
  pending_blob_.clear();
  pending_valid_ = false;
  OTW_REQUIRE_MSG(self_epoch_ == epoch && !self_blob_.empty(),
                  "RECOVER names a snapshot epoch this shard does not hold");
  WireReader blob(self_blob_.data(), self_blob_.size());
  restore_local(blob);
  // Dial the replacement and identify ourselves, exactly as at startup.
  const int pfd = util::net::connect_loopback(new_port, kNetCtx);
  set_nodelay(pfd);
  FrameHeader ph;
  ph.tag = kTagPeerHello;
  ph.src_lp = shard_;
  send_frame(pfd, ph, nullptr);
  set_nonblocking(pfd);
  links_[dead].fd = pfd;
  // Fresh incarnation: counters restart from zero on every shard, keeping
  // the conservation proof exact (discarded frames are never counted).
  snap_sent_ = 0;
  snap_recv_ = 0;
  snap_poll_pending_ = false;
  snap_mode_ = SnapMode::Hold;
  FrameHeader done;
  done.tag = kTagRecovered;
  done.flags = kFlagControl;
  done.src_lp = shard_;
  done.send_ns = aligned_now_ns();
  send_frame(fd_, done, nullptr);
}

void ShardDriver::handle_coord_frame(const FrameHeader& header,
                                     const std::uint8_t* payload) {
  switch (header.tag) {
    case kTagTime:
      handle_time_echo(header, payload);
      return;
    case kTagMigrateCmd:
      handle_migrate_cmd(payload, header.payload_len);
      return;
    case kTagRebind:
      handle_rebind(payload, header.payload_len);
      return;
    case kTagFinish:
      finish_received_ = true;
      return;
    case kTagSnapCtl:
      handle_snap_ctl(payload, header.payload_len);
      return;
    case kTagRecover:
      handle_recover(payload, header.payload_len);
      return;
    default:
      break;
  }
  OTW_REQUIRE_MSG(header.tag < kReservedTagBase,
                  "worker received a transport control frame");
  // Relayed (control-plane) frame: attribute the link to the sender's shard
  // per our current owner map — best effort under migration, exact otherwise.
  const std::uint32_t src_shard =
      header.src_lp < num_lps_ ? owners_[header.src_lp] : shard_;
  route_inbound(reinterpret_cast<const std::uint8_t*>(payload) -
                    kFrameHeaderBytes,
                header, src_shard);
}

void ShardDriver::handle_peer_frame(std::uint32_t peer,
                                    const std::uint8_t* frame,
                                    const FrameHeader& header) {
  if (header.tag == kTagMigrate) {
    handle_migrate_in(header, frame + kFrameHeaderBytes);
    return;
  }
  OTW_REQUIRE_MSG(header.tag < kReservedTagBase,
                  "worker received a transport control frame");
  route_inbound(frame, header, peer);
}

void ShardDriver::drain_socket() {
  // Pull whatever is available without blocking, then parse complete frames.
  std::uint8_t chunk[16384];
  for (;;) {
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n > 0) {
      in_buf_.insert(in_buf_.end(), chunk, chunk + n);
      continue;
    }
    if (n == 0) {
      throw std::runtime_error("coordinator closed the connection");
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      break;
    }
    if (errno == EINTR) {
      continue;
    }
    throw_errno("recv");
  }
  std::size_t pos = 0;
  while (in_buf_.size() - pos >= kFrameHeaderBytes) {
    const FrameHeader header = decode_frame_header(in_buf_.data() + pos);
    if (in_buf_.size() - pos < kFrameHeaderBytes + header.payload_len) {
      break;  // incomplete frame; keep the tail for the next drain
    }
    handle_coord_frame(header, in_buf_.data() + pos + kFrameHeaderBytes);
    pos += kFrameHeaderBytes + header.payload_len;
  }
  in_buf_.erase(in_buf_.begin(),
                in_buf_.begin() + static_cast<std::ptrdiff_t>(pos));
}

void ShardDriver::drain_links() {
  if (!mesh_) {
    return;
  }
  std::uint8_t chunk[16384];
  for (std::uint32_t peer = 0; peer < links_.size(); ++peer) {
    PeerLink& link = links_[peer];
    if (link.fd < 0) {
      continue;
    }
    bool dead = false;
    for (;;) {
      const ssize_t n = ::recv(link.fd, chunk, sizeof chunk, 0);
      if (n > 0) {
        link.in.insert(link.in.end(), chunk, chunk + n);
        continue;
      }
      if (n == 0) {
        if (fault_) {
          // The peer's process died. Parse what it already sent (frames from
          // before its death are valid until the rollback discards them),
          // then tear the link down; RECOVER re-dials the replacement.
          dead = true;
          break;
        }
        throw std::runtime_error("peer shard " + std::to_string(peer) +
                                 " closed its link");
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        break;
      }
      if (errno == EINTR) {
        continue;
      }
      if (fault_ && (errno == ECONNRESET || errno == EPIPE)) {
        dead = true;
        break;
      }
      throw_errno("recv (peer link)");
    }
    std::size_t pos = 0;
    while (link.fd >= 0 && link.in.size() - pos >= kFrameHeaderBytes) {
      const FrameHeader header = decode_frame_header(link.in.data() + pos);
      if (link.in.size() - pos < kFrameHeaderBytes + header.payload_len) {
        break;
      }
      if (fault_ && await_marker_[peer]) {
        // Dead-incarnation frame: dropped, uncounted. The marker rides the
        // same FIFO stream, so the discard window is exact.
        if (header.tag == kTagRecoverMark) {
          await_marker_[peer] = false;
        }
      } else if (header.tag == kTagRecoverMark) {
        // The peer's marker beat our own RECOVER here (the two travel on
        // different streams); remember it so RECOVER does not await another.
        early_marker_[peer] = true;
      } else {
        handle_peer_frame(peer, link.in.data() + pos, header);
      }
      pos += kFrameHeaderBytes + header.payload_len;
    }
    pos = std::min(pos, link.in.size());  // a handler may have dropped the link
    link.in.erase(link.in.begin(),
                  link.in.begin() + static_cast<std::ptrdiff_t>(pos));
    if (dead) {
      drop_peer_link(peer);
    }
  }
}

void ShardDriver::flush_links() {
  for (std::uint32_t peer = 0; peer < links_.size(); ++peer) {
    flush_peer_link(peer);
  }
}

void ShardDriver::send_done() {
  FrameHeader h;
  h.payload_len = 8;
  h.tag = kTagDone;
  h.flags = kFlagControl;
  h.src_lp = shard_;
  h.send_ns = aligned_now_ns();
  std::uint8_t payload[8];
  std::memcpy(payload, &migrations_in_, 8);
  send_frame(fd_, h, payload);
  done_announced_ = true;
}

void ShardDriver::idle_wait() {
  // Everyone local is Idle with an empty inbox: sleep until a frame arrives
  // or the earliest self-requested wakeup, capped at idle_poll_us. An armed
  // STATS deadline also caps the sleep: an idle shard must keep reporting,
  // or the coordinator's silent-shard watchdog would see a healthy-but-quiet
  // worker as dead.
  std::uint64_t next_wake = kNever;
  for (const ShardLp& lp : lps_) {
    if (lp.status != StepStatus::Done) {
      next_wake = std::min(next_wake, lp.wake_hint_ns);
    }
  }
  if (live_.enabled()) {
    next_wake = std::min(next_wake, next_stats_ns_);
  }
  std::uint64_t timeout_us = config_.idle_poll_us;
  if (next_wake != kNever) {
    const std::uint64_t now = now_ns();
    timeout_us = next_wake <= now
                     ? 0
                     : std::min<std::uint64_t>(timeout_us,
                                               (next_wake - now) / 1000 + 1);
  }
  std::vector<pollfd> pfds;
  pfds.push_back({fd_, POLLIN, 0});
  for (PeerLink& link : links_) {
    if (link.fd >= 0) {
      pfds.push_back({link.fd,
                      static_cast<short>(POLLIN |
                                         (link.out_pending() ? POLLOUT : 0)),
                      0});
    }
  }
  const int rc = ::poll(pfds.data(), pfds.size(),
                        static_cast<int>(timeout_us / 1000 + 1));
  if (rc < 0 && errno != EINTR) {
    throw_errno("poll");
  }
}

void ShardDriver::maybe_send_stats() {
  if (!live_.enabled()) {
    return;
  }
  const std::uint64_t now = now_ns();
  if (now < next_stats_ns_) {
    return;
  }
  next_stats_ns_ = now + static_cast<std::uint64_t>(live_.period_ms) * 1'000'000;
  const std::vector<std::uint8_t> payload = live_.encode(shard_);
  FrameHeader header;
  header.payload_len = static_cast<std::uint32_t>(payload.size());
  header.tag = kTagStats;
  header.flags = kFlagControl;
  header.src_lp = shard_;
  header.send_ns = aligned_now_ns();
  send_frame(fd_, header, payload.data());
  ++totals_.dist.frames_sent;
  totals_.dist.bytes_sent += kFrameHeaderBytes + payload.size();
}

void ShardDriver::run() {
  // Star: run until every local LP is Done, then report. Mesh: ownership can
  // move and frames may need forwarding even after the local set drains, so
  // run until the coordinator says FINISH (it waits for every shard's DONE
  // with settled migration counts).
  for (;;) {
    drain_socket();
    drain_links();
    if (mesh_ ? finish_received_ : remaining_ == 0) {
      break;
    }
    maybe_send_stats();
    flush_links();
    if (fault_ && snap_mode_ != SnapMode::Run) {
      // Snapshot protocol engaged: no event stepping. Settle absorbs and
      // flushes until the coordinator sees global quiescence; Hold freezes
      // the shard (post-serialize or post-restore) until Resume. STATS keep
      // flowing either way so the watchdog sees a live shard.
      if (snap_mode_ == SnapMode::Settle) {
        settle_pass();
      }
      idle_wait();
      continue;
    }
    bool ran_any = false;
    const std::uint64_t now = now_ns();
    for (std::size_t k = 0; k < lps_.size(); ++k) {
      ShardLp& lp = lps_[k];
      if (lp.status == StepStatus::Done) {
        continue;
      }
      const bool runnable = lp.status == StepStatus::Active ||
                            !lp.inbox.empty() || lp.wake_hint_ns <= now;
      if (!runnable) {
        continue;
      }
      lp.wake_hint_ns = kNever;  // hints are valid for one step only
      Context ctx(*this, lp);
      lp.status = lp.runner->step(ctx);
      ran_any = true;
      if (lp.status == StepStatus::Done) {
        --remaining_;
      }
      if (++totals_.steps > config_.max_steps) {
        throw std::runtime_error("shard exceeded max_steps=" +
                                 std::to_string(config_.max_steps));
      }
    }
    if (mesh_ && remaining_ == 0 && !done_announced_) {
      send_done();
    }
    if (!ran_any && (remaining_ > 0 || mesh_)) {
      idle_wait();
    }
  }
  if (mesh_) {
    OTW_ASSERT(remaining_ == 0);
    for (const std::deque<std::unique_ptr<EngineMessage>>& stash : pending_in_) {
      OTW_ASSERT(stash.empty());
      static_cast<void>(stash);
    }
  }
}

void ShardDriver::encode_result(WireWriter& w,
                                const std::vector<std::uint8_t>& harvest) const {
  w.u64(totals_.steps);
  w.u64(totals_.physical_messages);
  w.u64(totals_.wire_bytes);
  w.u64(totals_.dist.frames_sent);
  w.u64(totals_.dist.frames_received);
  w.u64(totals_.dist.bytes_sent);
  w.u64(totals_.dist.bytes_received);
  w.u64(totals_.dist.gvt_token_frames);
  w.u64(totals_.dist.frames_forwarded);
  w.u64(totals_.dist.serialize_ns);
  w.u64(totals_.dist.deserialize_ns);
  w.u32(static_cast<std::uint32_t>(lps_.size()));
  for (const ShardLp& lp : lps_) {
    w.u32(lp.id);
    w.u64(lp.busy_ns);
  }
  w.u32(static_cast<std::uint32_t>(harvest.size()));
  w.bytes(harvest.data(), harvest.size());
  // Clock alignment: driver epoch (absolute worker steady clock) plus the
  // final offset/RTT estimate. The coordinator derives from these the shift
  // that rebases this shard's driver-relative timestamps onto its own
  // run-relative timeline.
  w.u64(epoch_ns_);
  w.u64(static_cast<std::uint64_t>(clock_offset_ns_));  // two's complement
  w.u64(clock_rtt_ns_);
  // Attribution histograms (fixed bucket count; fork shares the layout).
  const std::vector<obs::hist::Entry> entries =
      live_.bank != nullptr ? live_.bank->snapshot(shard_)
                            : std::vector<obs::hist::Entry>{};
  w.u32(static_cast<std::uint32_t>(entries.size()));
  for (const obs::hist::Entry& e : entries) {
    w.u32(static_cast<std::uint32_t>(e.seam));
    w.u32(e.src);
    w.u32(e.dst);
    w.u64(e.hist.count);
    w.u64(e.hist.sum);
    for (std::uint64_t b : e.hist.buckets) {
      w.u64(b);
    }
  }
  // Wire trace (workers and coordinator share the TraceRecord ABI via fork).
  const std::vector<obs::TraceRecord> records =
      config_.wire_trace_capacity > 0 ? trace_.drain()
                                      : std::vector<obs::TraceRecord>{};
  w.u64(trace_.dropped());
  w.u32(static_cast<std::uint32_t>(records.size()));
  w.bytes(records.data(), records.size() * sizeof(obs::TraceRecord));
}

/// Worker process body. Never returns; _exit() keeps the forked child from
/// running the parent's atexit handlers or flushing its stdio twice.
/// `recover` marks a replacement worker fork()ed mid-run: it accepts every
/// survivor's dial instead of dialing, then blocks on the coordinator's
/// RESTORE frame and starts frozen at the restored cut.
[[noreturn]] void worker_main(std::uint32_t shard, const DistributedConfig& config,
                              const std::vector<LpRunner*>& lps,
                              std::uint16_t port,
                              const DistributedEngine::HarvestFn& harvest,
                              const LiveStatsHooks& live, bool fault,
                              bool recover) {
  try {
    if (live.on_worker_start) {
      live.on_worker_start(shard);
    }
    if (recover && live.bank != nullptr) {
      // The replacement inherited the coordinator's bank (which holds
      // coordinator-side entries by now); its RESULT must report only its
      // own incarnation.
      live.bank->reset();
    }
    const bool mesh =
        config.topology == Topology::Mesh && config.num_shards > 1;
    // Mesh: bind our own peer listener BEFORE saying HELLO, so the port can
    // ride in the HELLO payload and every other worker can dial it.
    int mesh_listen_fd = -1;
    std::uint16_t mesh_port = 0;
    if (mesh) {
      mesh_listen_fd = util::net::listen_loopback(
          0, static_cast<int>(config.num_shards), mesh_port, kNetCtx);
    }
    const int fd = util::net::connect_loopback(port, kNetCtx);
    set_nodelay(fd);

    // HELLO must be the first (and, until the driver runs, only) frame on
    // this stream: the coordinator reads exactly one frame per connection
    // to learn which shard it is talking to. The payload carries our peer
    // listener port (0 under Star). send_ns carries our raw clock (t0); the
    // coordinator answers with a HELLO-ACK whose send_ns is ITS clock (t_c)
    // and whose payload is the peer directory, read here while the socket is
    // still blocking. Midpoint estimate: offset = t_c - (t0 + t1)/2. The ACK
    // is batched behind every worker's HELLO (the directory needs them all),
    // so the initial RTT bound is loose; TIME pings tighten it when the
    // attribution plane is armed.
    FrameHeader hello;
    hello.tag = kTagHello;
    hello.src_lp = shard;
    hello.payload_len = 2;
    const std::uint64_t t0 = mono_ns();
    hello.send_ns = t0;
    std::uint8_t port_payload[2];
    std::memcpy(port_payload, &mesh_port, 2);
    send_frame(fd, hello, port_payload);
    std::uint8_t ack_raw[kFrameHeaderBytes];
    if (!read_exact(fd, ack_raw, kFrameHeaderBytes)) {
      throw std::runtime_error("coordinator closed before HELLO-ACK");
    }
    const std::uint64_t t1 = mono_ns();
    const FrameHeader ack = decode_frame_header(ack_raw);
    OTW_REQUIRE_MSG(ack.tag == kTagHelloAck,
                    "expected HELLO-ACK as the first coordinator frame");
    std::vector<std::uint8_t> dir(ack.payload_len);
    if (ack.payload_len > 0 &&
        !read_exact(fd, dir.data(), ack.payload_len)) {
      throw std::runtime_error("coordinator closed mid HELLO-ACK");
    }
    const std::uint64_t rtt = t1 - t0;
    const std::int64_t offset = static_cast<std::int64_t>(ack.send_ns) -
                                static_cast<std::int64_t>(t0 + rtt / 2);

    // Mesh dial phase, deterministic: shard i dials every j < i (the TCP
    // accept backlog guarantees those connects succeed even before shard j
    // reaches accept()), then accepts every j > i. One stream per pair.
    std::vector<PeerLink> links(config.num_shards);
    if (mesh) {
      WireReader r(dir.data(), dir.size());
      const std::uint32_t n = r.u32();
      OTW_REQUIRE_MSG(n == config.num_shards,
                      "peer directory size mismatch in HELLO-ACK");
      std::vector<std::uint16_t> ports(n);
      for (std::uint32_t j = 0; j < n; ++j) {
        ports[j] = r.u16();
      }
      OTW_REQUIRE_MSG(r.done(), "trailing bytes after peer directory");
      if (!recover) {
        for (std::uint32_t j = 0; j < shard; ++j) {
          const int pfd = util::net::connect_loopback(ports[j], kNetCtx);
          set_nodelay(pfd);
          FrameHeader peer_hello;
          peer_hello.tag = kTagPeerHello;
          peer_hello.src_lp = shard;
          send_frame(pfd, peer_hello, nullptr);
          links[j].fd = pfd;
        }
      }
      // Fresh start: accept every higher-numbered shard's dial. Recovery:
      // every survivor (re-)dials us, in whatever order they process the
      // RECOVER broadcast.
      const std::uint32_t expect_dials =
          recover ? config.num_shards - 1 : config.num_shards - shard - 1;
      for (std::uint32_t j = 0; j < expect_dials; ++j) {
        int afd;
        do {
          afd = ::accept(mesh_listen_fd, nullptr, nullptr);
        } while (afd < 0 && errno == EINTR);
        if (afd < 0) {
          throw_errno("accept (peer link)");
        }
        set_nodelay(afd);
        std::uint8_t raw[kFrameHeaderBytes];
        if (!read_exact(afd, raw, kFrameHeaderBytes)) {
          throw std::runtime_error("peer disconnected before PEER-HELLO");
        }
        const FrameHeader ph = decode_frame_header(raw);
        OTW_REQUIRE_MSG(ph.tag == kTagPeerHello && ph.payload_len == 0 &&
                            (recover ? ph.src_lp != shard : ph.src_lp > shard) &&
                            ph.src_lp < config.num_shards &&
                            links[ph.src_lp].fd < 0,
                        "malformed PEER-HELLO");
        links[ph.src_lp].fd = afd;
      }
      ::close(mesh_listen_fd);
      for (PeerLink& link : links) {
        if (link.fd >= 0) {
          set_nonblocking(link.fd);
        }
      }
    }
    ShardDriver driver(shard, config, lps, fd, std::move(links), live, offset,
                       rtt, fault);
    if (recover) {
      // fd is still blocking: the RESTORE frame (u32 epoch + u64 gvt + shard
      // blob) is the next thing the coordinator sends on this stream.
      std::uint8_t raw[kFrameHeaderBytes];
      if (!read_exact(fd, raw, kFrameHeaderBytes)) {
        throw std::runtime_error("coordinator closed before RESTORE");
      }
      const FrameHeader rh = decode_frame_header(raw);
      OTW_REQUIRE_MSG(rh.tag == kTagRestore && rh.payload_len >= 12,
                      "expected RESTORE as the first post-mesh frame");
      std::vector<std::uint8_t> restore_payload(rh.payload_len);
      if (!read_exact(fd, restore_payload.data(), restore_payload.size())) {
        throw std::runtime_error("coordinator closed mid RESTORE");
      }
      WireReader rr(restore_payload.data(), restore_payload.size());
      const std::uint32_t epoch = rr.u32();
      const std::uint64_t gvt = rr.u64();
      std::vector<std::uint8_t> blob(rr.remaining());
      rr.bytes(blob.data(), blob.size());
      driver.restore_from(epoch, gvt, std::move(blob));
      FrameHeader recovered;
      recovered.tag = kTagRecovered;
      recovered.flags = kFlagControl;
      recovered.src_lp = shard;
      send_frame(fd, recovered, nullptr);
    }
    set_nonblocking(fd);
    driver.run();

    const std::vector<std::uint8_t> blob =
        harvest ? harvest(shard, driver.owners()) : std::vector<std::uint8_t>{};
    std::vector<std::uint8_t> payload;
    WireWriter writer(payload);
    driver.encode_result(writer, blob);
    FrameHeader result;
    result.payload_len = static_cast<std::uint32_t>(payload.size());
    result.tag = kTagResult;
    result.src_lp = shard;
    send_frame(fd, result, payload.data());
    if (mesh) {
      // Linger until the coordinator closes (it does once every RESULT is
      // in): our peer links must stay open as long as any other worker might
      // still flush toward us, or its writes would die on ECONNRESET.
      std::uint8_t sink[4096];
      for (;;) {
        const ssize_t n = ::recv(fd, sink, sizeof sink, 0);
        if (n > 0) {
          continue;  // discard: nothing meaningful follows our RESULT
        }
        if (n == 0) {
          break;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          pollfd p{fd, POLLIN, 0};
          ::poll(&p, 1, -1);
          continue;
        }
        if (errno == EINTR) {
          continue;
        }
        break;  // coordinator already gone; exiting is the right response
      }
    }
    ::close(fd);
    ::_exit(0);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[otw shard %u] fatal: %s\n", shard, e.what());
    ::_exit(2);
  } catch (...) {
    std::fprintf(stderr, "[otw shard %u] fatal: unknown exception\n", shard);
    ::_exit(2);
  }
}

// ---------------------------------------------------------------------------
// Coordinator side.
// ---------------------------------------------------------------------------

struct Conn {
  int fd = -1;
  std::uint32_t shard = 0;
  std::vector<std::uint8_t> in;  ///< unparsed inbound bytes
  std::vector<std::uint8_t> out; ///< queued outbound bytes (non-blocking flush)
  std::size_t out_pos = 0;
  bool done = false;        ///< RESULT received
  bool done_valid = false;  ///< a DONE is the latest active-set report
  std::uint64_t done_migrations_in = 0;  ///< migrations_in from that DONE

  [[nodiscard]] bool out_pending() const noexcept { return out_pos < out.size(); }
};

void flush_conn(Conn& conn) {
  flush_out(conn.fd, conn.out, conn.out_pos, "send (relay)");
}

}  // namespace

EngineRunResult DistributedEngine::run(const std::vector<LpRunner*>& lps,
                                       HarvestFn harvest,
                                       LiveStatsHooks live,
                                       MigrationHooks migration,
                                       FaultHooks fault) {
  OTW_REQUIRE(!lps.empty());
  for (auto* lp : lps) {
    OTW_REQUIRE(lp != nullptr);
  }
  OTW_REQUIRE_MSG(config_.num_shards >= 1, "num_shards must be >= 1");
  OTW_REQUIRE_MSG(config_.num_shards <= lps.size(),
                  "more shards than LPs (a shard would be empty)");
  if (!config_.placement.empty()) {
    OTW_REQUIRE_MSG(config_.placement.size() == lps.size(),
                    "placement table must cover every LP");
    for (std::uint32_t shard : config_.placement) {
      OTW_REQUIRE_MSG(shard < config_.num_shards,
                      "placement names a shard that does not exist");
    }
  }
  const bool mesh =
      config_.topology == Topology::Mesh && config_.num_shards > 1;
  OTW_REQUIRE_MSG(!migration.enabled() || mesh,
                  "on-line migration requires the mesh topology");
  const bool fault_on = fault.enabled;
  OTW_REQUIRE_MSG(!fault_on || mesh,
                  "fault tolerance requires the mesh topology and >= 2 shards");
  OTW_REQUIRE_MSG(!fault_on || !migration.enabled(),
                  "fault tolerance and on-line migration are mutually "
                  "exclusive (a snapshot would have to version the owner map)");

  const std::uint64_t t_start = mono_ns();
  const std::uint32_t num_shards = config_.num_shards;
  payloads_.assign(num_shards, {});

  // Loopback listener; port 0 lets the kernel pick a free one.
  std::uint16_t port = 0;
  const int listen_fd = util::net::listen_loopback(
      config_.port, static_cast<int>(num_shards), port, kNetCtx);

  std::vector<pid_t> children(num_shards, -1);
  for (std::uint32_t shard = 0; shard < num_shards; ++shard) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(listen_fd);
      for (pid_t child : children) {
        if (child > 0) {
          ::kill(child, SIGKILL);
          ::waitpid(child, nullptr, 0);
        }
      }
      throw_errno("fork");
    }
    if (pid == 0) {
      ::close(listen_fd);
      worker_main(shard, config_, lps, port, harvest, live, fault_on,
                  /*recover=*/false);  // never returns
    }
    children[shard] = pid;
  }

  EngineRunResult result;
  result.lp_busy_ns.assign(lps.size(), 0);
  result.dist.num_shards = num_shards;
  result.shard_clocks.assign(num_shards, {});
  result.shard_trace_shift_ns.assign(num_shards, 0);
  result.final_owners.resize(lps.size());
  for (LpId lp = 0; lp < lps.size(); ++lp) {
    result.final_owners[lp] = initial_owner_of(lp, config_);
  }

  try {
    // Phase 1: accept every worker and read its HELLO (always the first
    // frame on the stream, payload = that worker's peer listener port) to
    // map connection -> shard. Only once ALL HELLOs are in can the peer
    // directory be assembled, so the HELLO-ACKs — stamped with our clock
    // for the offset estimate and carrying the directory — go out in a
    // second sweep.
    std::vector<Conn> conns(num_shards);
    std::vector<int> shard_conn(num_shards, -1);  // shard -> index in conns
    std::vector<std::uint16_t> mesh_ports(num_shards, 0);
    for (std::uint32_t i = 0; i < num_shards; ++i) {
      int fd;
      do {
        fd = ::accept(listen_fd, nullptr, nullptr);
      } while (fd < 0 && errno == EINTR);
      if (fd < 0) {
        throw_errno("accept");
      }
      std::uint8_t raw[kFrameHeaderBytes];
      if (!read_exact(fd, raw, kFrameHeaderBytes)) {
        throw std::runtime_error("worker disconnected before HELLO");
      }
      const FrameHeader hello = decode_frame_header(raw);
      OTW_REQUIRE_MSG(hello.tag == kTagHello && hello.payload_len == 2,
                      "first frame on a worker stream must be HELLO");
      OTW_REQUIRE_MSG(hello.src_lp < num_shards && shard_conn[hello.src_lp] < 0,
                      "duplicate or out-of-range shard HELLO");
      std::uint8_t port_raw[2];
      if (!read_exact(fd, port_raw, 2)) {
        throw std::runtime_error("worker disconnected mid HELLO");
      }
      std::memcpy(&mesh_ports[hello.src_lp], port_raw, 2);
      set_nodelay(fd);
      conns[i].fd = fd;
      conns[i].shard = hello.src_lp;
      shard_conn[hello.src_lp] = static_cast<int>(i);
    }
    if (!fault_on) {
      ::close(listen_fd);  // fault keeps it: a replacement worker must HELLO
    }
    std::vector<std::uint8_t> dir;
    {
      WireWriter w(dir);
      w.u32(num_shards);
      for (std::uint32_t s = 0; s < num_shards; ++s) {
        w.u16(mesh_ports[s]);
      }
    }
    for (Conn& conn : conns) {
      FrameHeader ack;
      ack.payload_len = static_cast<std::uint32_t>(dir.size());
      ack.tag = kTagHelloAck;
      ack.src_lp = conn.shard;
      ack.send_ns = mono_ns();
      send_frame(conn.fd, ack, dir.data());  // still blocking: writes through
      set_nonblocking(conn.fd);
    }

    // Control-plane state: the authoritative owner map (placement + applied
    // rebinds) and the migration protocol.
    std::vector<std::uint32_t>& owners = result.final_owners;
    std::vector<std::uint32_t> epochs(lps.size(), 0);
    std::vector<std::uint64_t> expected_in(num_shards, 0);
    std::uint32_t next_epoch = 1;
    bool migration_inflight = false;
    bool any_done = false;
    bool finish_sent = false;
    const std::uint64_t decide_period_ns =
        static_cast<std::uint64_t>(migration.period_ms) * 1'000'000;
    std::uint64_t next_decide_ns =
        migration.enabled() ? mono_ns() + decide_period_ns : kNever;

    // Snapshot / recovery control state (fault tolerance; DESIGN.md 8c).
    // The protocol is stop-the-world: Settle polls channel-op counters until
    // they are identical across two rounds AND globally balanced (the
    // quiescence proof), Cut freezes every LP at the shared GVT, Resettle
    // absorbs the traffic the cut's flushes produced, Serialize collects the
    // per-shard blobs, then Resume (commit) or Abort (discard) releases.
    enum class SnapPhase : std::uint8_t { Idle, Settle, Cut, Resettle,
                                          Serialize };
    SnapPhase snap_phase = SnapPhase::Idle;
    std::uint32_t snap_epoch = 0;
    std::uint32_t next_snap_epoch = 1;
    std::uint64_t snap_started_ns = 0;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> snap_counts(
        num_shards);
    std::vector<std::pair<std::uint64_t, std::uint64_t>> snap_prev(num_shards);
    std::vector<bool> snap_reported(num_shards, false);
    std::uint32_t snap_report_count = 0;
    std::uint32_t snap_poll_round = 0;  // run-unique poll round id
    bool snap_have_prev = false;
    std::uint32_t cut_acks = 0;
    bool cut_declined = false;
    std::uint64_t cut_gvt = 0;
    std::vector<std::vector<std::uint8_t>> snap_blobs(num_shards);
    std::uint32_t snap_data_count = 0;
    SnapshotImage last_cut;          ///< last complete (restorable) cut
    bool have_cut = false;
    bool last_cut_in_memory = false; ///< blobs held in last_cut.shards
    std::string last_cut_path;       ///< spill file of that cut, if written
    const std::uint64_t initial_gap_ns =
        static_cast<std::uint64_t>(fault.initial_gap_ms) * 1'000'000;
    std::uint64_t next_snap_ns = fault_on ? mono_ns() + initial_gap_ns : kNever;
    bool inject_done = false;

    const auto flush_c = [&](Conn& conn) {
      if (fault_on) {
        // A worker SIGKILLed mid-write must not take the coordinator down;
        // its queued bytes die with the incarnation once recovery runs.
        static_cast<void>(flush_out_tolerant(conn.fd, conn.out, conn.out_pos));
      } else {
        flush_conn(conn);
      }
    };
    const auto broadcast = [&](const FrameHeader& h,
                               const std::uint8_t* payload) {
      for (Conn& conn : conns) {
        if (conn.done) {
          continue;
        }
        queue_frame(conn.out, h, payload);
        flush_c(conn);
      }
    };
    // FINISH once every worker's latest DONE is present and its reported
    // migrations_in matches the number of LPs rebound TO it — an
    // order-independent settledness check: a destination's stale DONE (sent
    // before its MIGRATE arrived) can never satisfy it.
    const auto try_finish = [&] {
      if (!mesh || finish_sent || migration_inflight ||
          snap_phase != SnapPhase::Idle) {
        return;
      }
      for (const Conn& conn : conns) {
        if (!conn.done_valid ||
            conn.done_migrations_in != expected_in[conn.shard]) {
          return;
        }
      }
      FrameHeader fin;
      fin.tag = kTagFinish;
      fin.flags = kFlagControl;
      broadcast(fin, nullptr);
      finish_sent = true;
    };

    const auto broadcast_snap_ctl = [&](std::uint8_t code,
                                        std::uint32_t epoch) {
      std::vector<std::uint8_t> p;
      WireWriter w(p);
      w.u8(code);
      w.u32(epoch);
      FrameHeader h;
      h.payload_len = static_cast<std::uint32_t>(p.size());
      h.tag = kTagSnapCtl;
      h.flags = kFlagControl;
      h.send_ns = mono_ns();
      broadcast(h, p.data());
    };
    const auto begin_poll_round = [&] {
      std::fill(snap_reported.begin(), snap_reported.end(), false);
      snap_report_count = 0;
      // The Poll frame's epoch field carries a run-unique round id; only
      // ACKs stamped with it count toward this round, so a late ACK from a
      // previous round can never fake two stable rounds.
      ++snap_poll_round;
      broadcast_snap_ctl(kSnapPoll, snap_poll_round);
    };
    const auto abort_epoch = [&] {
      broadcast_snap_ctl(kSnapAbort, snap_epoch);
      snap_phase = SnapPhase::Idle;
      snap_have_prev = false;
      snap_data_count = 0;
      for (auto& b : snap_blobs) {
        b.clear();
      }
      next_snap_ns = mono_ns() + initial_gap_ns;
      try_finish();
    };
    // All SNAP_DATA blobs are in: commit (spill if asked, Abort instead of
    // keeping an epoch that exceeds the budget with nowhere to spill — the
    // workers' self-blobs must never get ahead of what the coordinator can
    // actually restore from), schedule the next cut, release the world.
    const auto finalize_epoch = [&] {
      std::uint64_t total = 0;
      for (const auto& b : snap_blobs) {
        total += b.size();
      }
      const bool oversize =
          fault.max_snapshot_bytes > 0 && total > fault.max_snapshot_bytes;
      bool committed = false;
      if (!(oversize && fault.spill_dir.empty())) {
        SnapshotImage image;
        image.engine = kSnapshotEngineDistributed;
        image.epoch = snap_epoch;
        image.gvt_ticks = cut_gvt;
        image.num_lps = static_cast<std::uint32_t>(lps.size());
        image.shards.resize(num_shards);
        for (std::uint32_t s = 0; s < num_shards; ++s) {
          image.shards[s].shard = s;
          image.shards[s].blob = std::move(snap_blobs[s]);
          snap_blobs[s].clear();
        }
        if (!fault.spill_dir.empty()) {
          last_cut_path = fault.spill_dir + "/otw_snapshot_epoch" +
                          std::to_string(snap_epoch) + ".otwsnap";
          write_snapshot_file(last_cut_path, image);
        }
        if (oversize) {
          // Spilled; keep only the manifest fields in memory.
          last_cut = SnapshotImage{};
          last_cut.engine = image.engine;
          last_cut.epoch = image.epoch;
          last_cut.gvt_ticks = image.gvt_ticks;
          last_cut.num_lps = image.num_lps;
          last_cut_in_memory = false;
        } else {
          last_cut = std::move(image);
          last_cut_in_memory = true;
        }
        have_cut = true;
        committed = true;
        ++result.dist.snapshots_taken;
        result.dist.snapshot_bytes += total;
      }
      const std::uint64_t cost_ns = mono_ns() - snap_started_ns;
      std::uint32_t gap_ms = fault.initial_gap_ms;
      if (committed && fault.next_gap_ms) {
        gap_ms = fault.next_gap_ms(cost_ns, total);
      }
      next_snap_ns = mono_ns() + static_cast<std::uint64_t>(gap_ms) * 1'000'000;
      broadcast_snap_ctl(committed ? kSnapResume : kSnapAbort, snap_epoch);
      snap_phase = SnapPhase::Idle;
      snap_have_prev = false;
      snap_data_count = 0;
      try_finish();
      if (committed && !inject_done && fault.inject_kill_shard >= 0 &&
          snap_epoch >= fault.inject_kill_after_epoch) {
        // Test hook: lose a shard right after a committed cut.
        inject_done = true;
        const auto victim = static_cast<std::uint32_t>(fault.inject_kill_shard);
        ::kill(children[victim], SIGKILL);
      }
    };
    // A worker died (EOF): fork a replacement, replay the handshake, restore
    // it from the last complete cut, and roll every survivor back to that
    // cut. The world is frozen until all num_shards RECOVERED frames arrive.
    const auto run_recovery = [&](std::uint32_t ci) {
      Conn& dead_conn = conns[ci];
      const std::uint32_t dead = dead_conn.shard;
      const std::uint64_t t0 = mono_ns();
      // Whatever snapshot phase was in flight can no longer complete; the
      // workers discard their pending blobs when RECOVER arrives.
      snap_phase = SnapPhase::Idle;
      snap_have_prev = false;
      snap_data_count = 0;
      for (auto& b : snap_blobs) {
        b.clear();
      }
      ::waitpid(children[dead], nullptr, 0);
      children[dead] = -1;
      ::close(dead_conn.fd);
      dead_conn.fd = -1;
      dead_conn.in.clear();
      dead_conn.out.clear();
      dead_conn.out_pos = 0;
      // The cut blob for the lost shard, from memory or the spill file. Copy
      // (not move) out of last_cut: a second failure may need it again.
      std::vector<std::uint8_t> blob;
      std::uint64_t restore_gvt = last_cut.gvt_ticks;
      if (last_cut_in_memory) {
        blob = last_cut.shards[dead].blob;
      } else {
        SnapshotImage img = read_snapshot_file(last_cut_path);
        OTW_REQUIRE_MSG(img.epoch == last_cut.epoch,
                        "spilled snapshot names a different epoch");
        restore_gvt = img.gvt_ticks;
        for (SnapshotShardBlob& s : img.shards) {
          if (s.shard == dead) {
            blob = std::move(s.blob);
          }
        }
      }
      OTW_REQUIRE_MSG(!blob.empty(),
                      "the last cut holds no blob for the lost shard");
      const pid_t pid = ::fork();
      if (pid < 0) {
        throw_errno("fork (recovery)");
      }
      if (pid == 0) {
        ::close(listen_fd);
        for (Conn& c : conns) {
          if (c.fd >= 0) {
            ::close(c.fd);
          }
        }
        worker_main(dead, config_, lps, port, harvest, live, /*fault=*/true,
                    /*recover=*/true);  // never returns
      }
      children[dead] = pid;
      // Replay phase 1 for the replacement alone: HELLO in, directory out.
      int nfd;
      do {
        nfd = ::accept(listen_fd, nullptr, nullptr);
      } while (nfd < 0 && errno == EINTR);
      if (nfd < 0) {
        throw_errno("accept (recovery)");
      }
      std::uint8_t raw[kFrameHeaderBytes];
      if (!read_exact(nfd, raw, kFrameHeaderBytes)) {
        throw std::runtime_error("replacement worker died before HELLO");
      }
      const FrameHeader hello = decode_frame_header(raw);
      OTW_REQUIRE_MSG(hello.tag == kTagHello && hello.payload_len == 2 &&
                          hello.src_lp == dead,
                      "expected the replacement worker's HELLO");
      std::uint8_t port_raw[2];
      if (!read_exact(nfd, port_raw, 2)) {
        throw std::runtime_error("replacement worker died mid HELLO");
      }
      std::uint16_t new_port = 0;
      std::memcpy(&new_port, port_raw, 2);
      mesh_ports[dead] = new_port;
      set_nodelay(nfd);
      dead_conn.fd = nfd;
      std::vector<std::uint8_t> dir2;
      {
        WireWriter w(dir2);
        w.u32(num_shards);
        for (std::uint32_t s = 0; s < num_shards; ++s) {
          w.u16(mesh_ports[s]);
        }
      }
      FrameHeader ack;
      ack.payload_len = static_cast<std::uint32_t>(dir2.size());
      ack.tag = kTagHelloAck;
      ack.src_lp = dead;
      ack.send_ns = mono_ns();
      send_frame(nfd, ack, dir2.data());  // still blocking: writes through
      // RESTORE is queued non-blocking: the blob can exceed the socket
      // buffer, and the replacement only reads it after accepting the
      // survivors' re-dials — a blocking write here could jam forever.
      {
        std::vector<std::uint8_t> p;
        WireWriter w(p);
        w.u32(last_cut.epoch);
        w.u64(restore_gvt);
        w.bytes(blob.data(), blob.size());
        FrameHeader h;
        h.payload_len = static_cast<std::uint32_t>(p.size());
        h.tag = kTagRestore;
        h.flags = kFlagControl;
        h.send_ns = mono_ns();
        queue_frame(dead_conn.out, h, p.data());
      }
      set_nonblocking(nfd);
      flush_c(dead_conn);
      // Tell the survivors: roll back to the cut, mark your links, re-dial
      // the new incarnation.
      {
        std::vector<std::uint8_t> p;
        WireWriter w(p);
        w.u32(last_cut.epoch);
        w.u32(dead);
        w.u16(new_port);
        FrameHeader h;
        h.payload_len = static_cast<std::uint32_t>(p.size());
        h.tag = kTagRecover;
        h.flags = kFlagControl;
        h.send_ns = mono_ns();
        for (Conn& c : conns) {
          if (c.shard == dead) {
            continue;
          }
          queue_frame(c.out, h, p.data());
          flush_c(c);
        }
      }
      // Mini relay loop until every shard (survivors + replacement) reports
      // RECOVERED. Anything relayable in flight belongs to the dead
      // incarnation's future and is dropped — the restored cut predates it.
      std::uint32_t recovered = 0;
      std::vector<pollfd> rfds(num_shards);
      while (recovered < num_shards) {
        for (std::uint32_t k = 0; k < num_shards; ++k) {
          rfds[k].fd = conns[k].fd;
          rfds[k].events = static_cast<short>(
              POLLIN | (conns[k].out_pending() ? POLLOUT : 0));
          rfds[k].revents = 0;
        }
        const int prc = ::poll(rfds.data(), rfds.size(), 1000);
        if (prc < 0) {
          if (errno == EINTR) {
            continue;
          }
          throw_errno("poll (recovery)");
        }
        for (std::uint32_t k = 0; k < num_shards; ++k) {
          Conn& c = conns[k];
          if ((rfds[k].revents & POLLOUT) != 0) {
            flush_c(c);
          }
          if ((rfds[k].revents & (POLLIN | POLLHUP | POLLERR)) == 0) {
            continue;
          }
          std::uint8_t chunk[16384];
          bool died = false;
          for (;;) {
            const ssize_t n = ::recv(c.fd, chunk, sizeof chunk, 0);
            if (n > 0) {
              c.in.insert(c.in.end(), chunk, chunk + n);
              continue;
            }
            if (n == 0) {
              died = true;
              break;
            }
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
              break;
            }
            if (errno == EINTR) {
              continue;
            }
            died = true;
            break;
          }
          std::size_t pos = 0;
          while (c.in.size() - pos >= kFrameHeaderBytes) {
            const FrameHeader h2 = decode_frame_header(c.in.data() + pos);
            if (c.in.size() - pos < kFrameHeaderBytes + h2.payload_len) {
              break;
            }
            const std::uint8_t* f2 = c.in.data() + pos;
            if (h2.tag == kTagRecovered) {
              ++recovered;
            } else if (h2.tag == kTagStats) {
              if (live.on_stats) {
                live.on_stats(c.shard, f2 + kFrameHeaderBytes, h2.payload_len);
              }
              ++result.dist.stats_frames;
            } else if (h2.tag == kTagTime) {
              FrameHeader echo;
              echo.payload_len = 8;
              echo.tag = kTagTime;
              echo.flags = kFlagControl;
              echo.src_lp = c.shard;
              echo.send_ns = mono_ns();
              std::uint8_t echo_frame[kFrameHeaderBytes + 8];
              encode_frame_header(echo, echo_frame);
              std::memcpy(echo_frame + kFrameHeaderBytes, &h2.send_ns, 8);
              c.out.insert(c.out.end(), echo_frame,
                           echo_frame + sizeof echo_frame);
              flush_c(c);
            }
            // else: dropped (stale SNAP_ACK/SNAP_DATA/DONE, relayed GVT
            // frames of the dead incarnation).
            pos += kFrameHeaderBytes + h2.payload_len;
          }
          c.in.erase(c.in.begin(),
                     c.in.begin() + static_cast<std::ptrdiff_t>(pos));
          if (died) {
            throw std::runtime_error(
                "shard " + std::to_string(c.shard) +
                " died during recovery (double fault is fatal)");
          }
        }
      }
      // Every shard is frozen at the cut: stale endgame state is void.
      for (Conn& c : conns) {
        c.done_valid = false;
        c.done_migrations_in = 0;
      }
      any_done = false;
      RecoveryIncident incident;
      incident.epoch = last_cut.epoch;
      incident.lost_shard = dead;
      incident.restore_ns = mono_ns() - t0;
      incident.bytes = blob.size();
      incident.gvt_ticks = restore_gvt;
      result.recoveries.push_back(incident);
      broadcast_snap_ctl(kSnapResume, last_cut.epoch);
      next_snap_ns = mono_ns() + initial_gap_ns;
    };

    // Phase 2: control loop. Star relays every frame in arrival order (the
    // order-preserving relay is the FIFO guarantee); Mesh only sees control
    // frames here — GVT tokens/announces routed by the owner map — plus the
    // migration protocol (DONE/MIGRATED in, MIGRATE_CMD/REBIND/FINISH out).
    std::uint32_t results = 0;
    std::vector<pollfd> pfds(num_shards);
    if (fault_on && snap_debug()) {
      std::fprintf(stderr, "[coord] relay loop, fault on, first epoch in %lld ms\n",
                   static_cast<long long>(next_snap_ns - mono_ns()) / 1'000'000);
    }
    while (results < num_shards) {
      for (std::uint32_t i = 0; i < num_shards; ++i) {
        pfds[i].fd = conns[i].done ? -1 : conns[i].fd;
        pfds[i].events =
            static_cast<short>(POLLIN | (conns[i].out_pending() ? POLLOUT : 0));
        pfds[i].revents = 0;
      }
      int timeout_ms = -1;
      if (migration.enabled() && !any_done && !finish_sent &&
          !migration_inflight) {
        const std::uint64_t now = mono_ns();
        timeout_ms = next_decide_ns <= now
                         ? 0
                         : static_cast<int>((next_decide_ns - now) / 1'000'000 + 1);
      }
      if (fault_on) {
        // Capped so externally-requested kills (the watchdog path) are
        // noticed promptly even while every stream is quiet.
        int cap = kFaultPollCapMs;
        if (snap_phase == SnapPhase::Idle && !finish_sent && !any_done &&
            results == 0) {
          const std::uint64_t now = mono_ns();
          const auto until_ms =
              next_snap_ns <= now
                  ? 0
                  : static_cast<int>((next_snap_ns - now) / 1'000'000 + 1);
          cap = std::min(cap, until_ms);
        }
        timeout_ms = timeout_ms < 0 ? cap : std::min(timeout_ms, cap);
      }
      const int rc = ::poll(pfds.data(), pfds.size(), timeout_ms);
      if (rc < 0) {
        if (errno == EINTR) {
          continue;
        }
        throw_errno("poll (relay)");
      }
      if (fault_on && fault.kill_request) {
        const std::int32_t victim = fault.kill_request->exchange(-1);
        // Honored only when a restorable cut exists and the run is still in
        // flight; otherwise the request is dropped (recovery would fail).
        if (victim >= 0 && static_cast<std::uint32_t>(victim) < num_shards &&
            have_cut && !finish_sent &&
            !conns[static_cast<std::size_t>(
                       shard_conn[static_cast<std::uint32_t>(victim)])]
                 .done) {
          ::kill(children[static_cast<std::uint32_t>(victim)], SIGKILL);
        }
      }
      if (fault_on && snap_phase == SnapPhase::Idle && !finish_sent &&
          !any_done && results == 0 && mono_ns() >= next_snap_ns) {
        snap_epoch = next_snap_epoch++;
        snap_started_ns = mono_ns();
        snap_phase = SnapPhase::Settle;
        snap_have_prev = false;
        for (auto& b : snap_blobs) {
          b.clear();
        }
        if (snap_debug()) {
          std::fprintf(stderr, "[coord] epoch %u: Stop+Poll\n", snap_epoch);
        }
        broadcast_snap_ctl(kSnapStop, snap_epoch);
        begin_poll_round();
      }
      if (migration.enabled() && !any_done && !finish_sent &&
          !migration_inflight && mono_ns() >= next_decide_ns) {
        next_decide_ns = mono_ns() + decide_period_ns;
        const std::optional<MigrationDecision> d = migration.decide(owners);
        if (d.has_value()) {
          OTW_REQUIRE_MSG(d->lp < lps.size() && d->to_shard < num_shards &&
                              owners[d->lp] != d->to_shard,
                          "invalid migration decision");
          std::vector<std::uint8_t> cmd;
          WireWriter w(cmd);
          w.u32(d->lp);
          w.u32(d->to_shard);
          w.u32(next_epoch++);
          FrameHeader h;
          h.payload_len = static_cast<std::uint32_t>(cmd.size());
          h.tag = kTagMigrateCmd;
          h.flags = kFlagControl;
          h.dst_lp = d->lp;
          Conn& src =
              conns[static_cast<std::size_t>(shard_conn[owners[d->lp]])];
          queue_frame(src.out, h, cmd.data());
          flush_conn(src);
          migration_inflight = true;
        }
      }
      for (std::uint32_t i = 0; i < num_shards; ++i) {
        Conn& conn = conns[i];
        if (conn.done) {
          continue;
        }
        if ((pfds[i].revents & POLLOUT) != 0) {
          flush_c(conn);
        }
        if ((pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) {
          continue;
        }
        std::uint8_t chunk[16384];
        bool eof = false;
        for (;;) {
          const ssize_t n = ::recv(conn.fd, chunk, sizeof chunk, 0);
          if (n > 0) {
            conn.in.insert(conn.in.end(), chunk, chunk + n);
            continue;
          }
          if (n == 0) {
            // The worker may close right after its RESULT; the frame may
            // still be sitting unparsed in conn.in, so only fail after
            // parsing.
            eof = true;
            break;
          }
          if (errno == EAGAIN || errno == EWOULDBLOCK) {
            break;
          }
          if (errno == EINTR) {
            continue;
          }
          if (fault_on && errno == ECONNRESET) {
            // A SIGKILLed worker resets rather than closing; same as EOF
            // for the recovery path below.
            eof = true;
            break;
          }
          throw_errno("recv (relay)");
        }
        // Parse complete frames from this connection, in arrival order.
        std::size_t pos = 0;
        while (!conn.done && conn.in.size() - pos >= kFrameHeaderBytes) {
          const FrameHeader header = decode_frame_header(conn.in.data() + pos);
          if (conn.in.size() - pos < kFrameHeaderBytes + header.payload_len) {
            break;
          }
          const std::uint8_t* frame = conn.in.data() + pos;
          const std::size_t frame_len = kFrameHeaderBytes + header.payload_len;
          if (header.tag == kTagResult) {
            WireReader reader(frame + kFrameHeaderBytes, header.payload_len);
            result.steps += reader.u64();
            result.physical_messages += reader.u64();
            result.wire_bytes += reader.u64();
            DistStats shard_stats;
            shard_stats.frames_sent = reader.u64();
            shard_stats.frames_received = reader.u64();
            shard_stats.bytes_sent = reader.u64();
            shard_stats.bytes_received = reader.u64();
            shard_stats.gvt_token_frames = reader.u64();
            shard_stats.frames_forwarded = reader.u64();
            shard_stats.serialize_ns = reader.u64();
            shard_stats.deserialize_ns = reader.u64();
            result.dist.add(shard_stats);
            const std::uint32_t n_local = reader.u32();
            for (std::uint32_t k = 0; k < n_local; ++k) {
              const std::uint32_t lp = reader.u32();
              const std::uint64_t busy = reader.u64();
              OTW_REQUIRE(lp < result.lp_busy_ns.size());
              // += not =: a migrated LP accrues busy time on both shards.
              result.lp_busy_ns[lp] += busy;
            }
            const std::uint32_t blob_len = reader.u32();
            payloads_[conn.shard].resize(blob_len);
            reader.bytes(payloads_[conn.shard].data(), blob_len);
            // Clock alignment: shift = (worker epoch in coordinator domain)
            // - our run start. Adding it to a driver-relative timestamp
            // yields a coordinator-run-relative one.
            const std::uint64_t epoch_ns = reader.u64();
            ShardClock clock;
            clock.offset_ns = static_cast<std::int64_t>(reader.u64());
            clock.rtt_ns = reader.u64();
            result.shard_clocks[conn.shard] = clock;
            const std::int64_t shift =
                static_cast<std::int64_t>(epoch_ns) + clock.offset_ns -
                static_cast<std::int64_t>(t_start);
            result.shard_trace_shift_ns[conn.shard] = shift;
            const std::uint32_t n_hists = reader.u32();
            for (std::uint32_t k = 0; k < n_hists; ++k) {
              obs::hist::Entry e;
              const std::uint32_t seam = reader.u32();
              OTW_REQUIRE_MSG(seam < obs::hist::kNumSeams,
                              "RESULT carries an unknown histogram seam");
              e.seam = static_cast<obs::hist::Seam>(seam);
              e.shard = conn.shard;
              e.src = reader.u32();
              e.dst = reader.u32();
              e.hist.count = reader.u64();
              e.hist.sum = reader.u64();
              for (std::uint64_t& b : e.hist.buckets) {
                b = reader.u64();
              }
              result.hists.push_back(std::move(e));
            }
            obs::LpTraceLog wire_log;
            wire_log.lp = conn.shard;
            wire_log.dropped = reader.u64();
            wire_log.name = "shard " + std::to_string(conn.shard) + " wire";
            const std::uint32_t n_records = reader.u32();
            wire_log.records.resize(n_records);
            reader.bytes(wire_log.records.data(),
                         n_records * sizeof(obs::TraceRecord));
            for (obs::TraceRecord& rec : wire_log.records) {
              const std::int64_t shifted =
                  static_cast<std::int64_t>(rec.wall_ns) + shift;
              rec.wall_ns =
                  shifted > 0 ? static_cast<std::uint64_t>(shifted) : 0;
            }
            if (n_records > 0 || wire_log.dropped > 0) {
              result.worker_traces.push_back(std::move(wire_log));
            }
            conn.done = true;
            ++results;
          } else if (header.tag == kTagStats) {
            // Live health snapshot: absorbed here, never relayed. The hook
            // may legitimately be absent (a stale child racing shutdown
            // cannot happen — workers only stream while running — but a
            // defensive null check costs nothing).
            if (live.on_stats) {
              live.on_stats(conn.shard, frame + kFrameHeaderBytes,
                            header.payload_len);
            }
            ++result.dist.stats_frames;
          } else if (header.tag == kTagTime) {
            // Clock refresh ping: echo the worker's raw t0 back alongside
            // our own clock. Never relayed, never counted as data.
            FrameHeader echo;
            echo.payload_len = 8;
            echo.tag = kTagTime;
            echo.flags = kFlagControl;
            echo.src_lp = conn.shard;
            echo.send_ns = mono_ns();
            std::uint8_t echo_frame[kFrameHeaderBytes + 8];
            encode_frame_header(echo, echo_frame);
            std::memcpy(echo_frame + kFrameHeaderBytes, &header.send_ns, 8);
            conn.out.insert(conn.out.end(), echo_frame,
                            echo_frame + sizeof echo_frame);
            flush_c(conn);
          } else if (header.tag == kTagDone) {
            OTW_REQUIRE_MSG(mesh && header.payload_len == 8,
                            "unexpected DONE frame");
            conn.done_valid = true;
            std::memcpy(&conn.done_migrations_in, frame + kFrameHeaderBytes, 8);
            any_done = true;
            if (fault_on && snap_phase != SnapPhase::Idle) {
              // A shard finished before our Stop reached it (its DONE
              // precedes its settle ACKs in stream order, so we always see
              // it before the cut fires). Cutting would roll completion
              // back — drop the epoch instead; the run is nearly over.
              abort_epoch();
            }
            try_finish();
          } else if (header.tag == kTagMigrated) {
            OTW_REQUIRE_MSG(mesh && migration_inflight,
                            "unexpected MIGRATED frame");
            WireReader reader(frame + kFrameHeaderBytes, header.payload_len);
            const LpId lp = reader.u32();
            const std::uint32_t to = reader.u32();
            const std::uint32_t epoch = reader.u32();
            const std::uint8_t accepted = reader.u8();
            OTW_REQUIRE_MSG(reader.done() && lp < lps.size() &&
                                to < num_shards,
                            "malformed MIGRATED frame");
            migration_inflight = false;
            if (accepted != 0) {
              ++result.dist.migrations;
              if (epoch > epochs[lp]) {
                epochs[lp] = epoch;
                owners[lp] = to;
              }
              ++expected_in[to];
              std::vector<std::uint8_t> rebind;
              WireWriter w(rebind);
              w.u32(lp);
              w.u32(to);
              w.u32(epoch);
              FrameHeader h;
              h.payload_len = static_cast<std::uint32_t>(rebind.size());
              h.tag = kTagRebind;
              h.flags = kFlagControl;
              h.dst_lp = lp;
              broadcast(h, rebind.data());
            }
            try_finish();
          } else if (header.tag == kTagSnapAck) {
            OTW_REQUIRE_MSG(fault_on && header.payload_len == 21,
                            "unexpected SNAP_ACK frame");
            WireReader reader(frame + kFrameHeaderBytes, header.payload_len);
            const std::uint8_t kind = reader.u8();
            const std::uint64_t a = reader.u64();
            const std::uint64_t b = reader.u64();
            // Round id for counters ACKs, epoch for accept/decline.
            const std::uint32_t seq = reader.u32();
            if (snap_debug()) {
              std::fprintf(stderr,
                           "[coord] SNAP_ACK shard=%u kind=%u a=%llu b=%llu "
                           "seq=%u phase=%u\n",
                           conn.shard, kind,
                           static_cast<unsigned long long>(a),
                           static_cast<unsigned long long>(b), seq,
                           static_cast<unsigned>(snap_phase));
            }
            if (kind == kSnapAckCounters && seq == snap_poll_round &&
                (snap_phase == SnapPhase::Settle ||
                 snap_phase == SnapPhase::Resettle)) {
              if (!snap_reported[conn.shard]) {
                snap_reported[conn.shard] = true;
                ++snap_report_count;
              }
              snap_counts[conn.shard] = {a, b};
              if (snap_report_count == num_shards) {
                // Quiescent iff the counter vector repeated across two
                // rounds AND is globally balanced: repetition alone can be a
                // coincidence of in-flight frames, balance alone can hold
                // while frames are still moving.
                bool identical = snap_have_prev;
                std::uint64_t sum_sent = 0;
                std::uint64_t sum_recv = 0;
                for (std::uint32_t s = 0; s < num_shards; ++s) {
                  sum_sent += snap_counts[s].first;
                  sum_recv += snap_counts[s].second;
                  if (identical && snap_counts[s] != snap_prev[s]) {
                    identical = false;
                  }
                }
                if (identical && sum_sent == sum_recv) {
                  snap_have_prev = false;
                  if (snap_phase == SnapPhase::Settle) {
                    snap_phase = SnapPhase::Cut;
                    cut_acks = 0;
                    cut_declined = false;
                    cut_gvt = 0;
                    broadcast_snap_ctl(kSnapCut, snap_epoch);
                  } else {
                    snap_phase = SnapPhase::Serialize;
                    snap_data_count = 0;
                    broadcast_snap_ctl(kSnapSerialize, snap_epoch);
                  }
                } else {
                  snap_prev = snap_counts;
                  snap_have_prev = true;
                  begin_poll_round();
                }
              }
            } else if ((kind == kSnapAckAccept || kind == kSnapAckDecline) &&
                       snap_phase == SnapPhase::Cut && seq == snap_epoch) {
              ++cut_acks;
              if (kind == kSnapAckDecline) {
                cut_declined = true;
              } else {
                OTW_REQUIRE_MSG(cut_gvt == 0 || cut_gvt == a,
                                "shards disagree on the cut GVT");
                cut_gvt = a;
              }
              if (cut_acks == num_shards) {
                if (cut_declined) {
                  // Some shard cannot cut here (done, or GVT still 0);
                  // nothing was mutated — retry after the initial gap.
                  abort_epoch();
                } else {
                  // The cut's rollbacks flushed fresh sends; settle again
                  // before asking anyone to serialize.
                  snap_phase = SnapPhase::Resettle;
                  snap_have_prev = false;
                  begin_poll_round();
                }
              }
            }
            // Stale ACKs (a recovery voided the epoch mid-flight) drop here.
          } else if (header.tag == kTagSnapData) {
            OTW_REQUIRE_MSG(fault_on && header.payload_len >= 12,
                            "unexpected SNAP_DATA frame");
            WireReader reader(frame + kFrameHeaderBytes, header.payload_len);
            const std::uint32_t epoch = reader.u32();
            const std::uint64_t gvt = reader.u64();
            if (snap_phase == SnapPhase::Serialize && epoch == snap_epoch) {
              OTW_REQUIRE_MSG(gvt == cut_gvt,
                              "SNAP_DATA disagrees with the cut GVT");
              auto& blob = snap_blobs[conn.shard];
              blob.resize(reader.remaining());
              reader.bytes(blob.data(), blob.size());
              if (++snap_data_count == num_shards) {
                finalize_epoch();
              }
            }
            // Stale epochs (voided by a recovery) drop here.
          } else if (header.tag == kTagRecovered) {
            // A straggler from a recovery window that already closed.
            OTW_REQUIRE_MSG(fault_on, "unexpected RECOVERED frame");
          } else {
            OTW_REQUIRE_MSG(header.tag < kReservedTagBase,
                            "unexpected control frame from worker");
            // Under Mesh the data plane bypasses the coordinator entirely;
            // only control-plane (GVT) frames may still be relayed here.
            OTW_REQUIRE_MSG(!mesh || (header.flags & kFlagControl) != 0,
                            "data frame relayed under mesh topology");
            OTW_REQUIRE(header.dst_lp < lps.size());
            const std::uint32_t dst_shard = owners[header.dst_lp];
            OTW_REQUIRE(dst_shard < num_shards);
            Conn& target = conns[static_cast<std::size_t>(shard_conn[dst_shard])];
            target.out.insert(target.out.end(), frame, frame + frame_len);
            flush_c(target);  // opportunistic; POLLOUT handles the rest
            ++result.dist.frames_relayed;
            if (live.bank != nullptr || live.on_relay) {
              // Relay residency: origin encode -> queued for the destination
              // (the upstream half of the end-to-end link latency).
              const std::uint64_t now = mono_ns();
              if (live.bank != nullptr) {
                live.bank->record_link(
                    obs::hist::Seam::RelayResidency, conn.shard, dst_shard,
                    now > header.send_ns ? now - header.send_ns : 0);
              }
              if (live.on_relay) {
                live.on_relay(conn.shard, dst_shard, header.tag,
                              static_cast<std::uint32_t>(frame_len),
                              header.send_ns, now);
              }
            }
          }
          pos += frame_len;
        }
        conn.in.erase(conn.in.begin(),
                      conn.in.begin() + static_cast<std::ptrdiff_t>(pos));
        if (eof && !conn.done) {
          if (fault_on && have_cut && !finish_sent &&
              result.recoveries.size() <
                  static_cast<std::size_t>(fault.max_recoveries)) {
            run_recovery(i);
            continue;  // conn now points at the replacement's stream
          }
          throw std::runtime_error("shard " + std::to_string(conn.shard) +
                                   " exited before reporting a result");
        }
      }
    }

    for (Conn& conn : conns) {
      ::close(conn.fd);  // mesh workers linger on this close before exiting
      conn.fd = -1;
    }
    if (fault_on) {
      ::close(listen_fd);
    }
  } catch (...) {
    if (fault_on) {
      ::close(listen_fd);
    }
    for (pid_t child : children) {
      if (child > 0) {
        ::kill(child, SIGKILL);
        ::waitpid(child, nullptr, 0);
      }
    }
    throw;
  }

  for (std::uint32_t shard = 0; shard < num_shards; ++shard) {
    int status = 0;
    pid_t rc;
    do {
      rc = ::waitpid(children[shard], &status, 0);
    } while (rc < 0 && errno == EINTR);
    if (rc < 0) {
      throw_errno("waitpid");
    }
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      throw std::runtime_error(
          "DistributedEngine: shard " + std::to_string(shard) +
          (WIFSIGNALED(status)
               ? " killed by signal " + std::to_string(WTERMSIG(status))
               : " exited with status " + std::to_string(WEXITSTATUS(status))));
    }
  }

  // RESULT frames land in completion order; report tracks in shard order.
  std::sort(result.worker_traces.begin(), result.worker_traces.end(),
            [](const obs::LpTraceLog& a, const obs::LpTraceLog& b) {
              return a.lp < b.lp;
            });
  // Coordinator-side histograms (relay residency): stamped with the pseudo
  // shard id num_shards so they are distinguishable from worker entries.
  if (live.bank != nullptr) {
    for (obs::hist::Entry& e : live.bank->snapshot(num_shards)) {
      result.hists.push_back(std::move(e));
    }
  }
  result.execution_time_ns = mono_ns() - t_start;
  return result;
}

}  // namespace otw::platform
