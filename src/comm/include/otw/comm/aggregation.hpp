// Dynamic Message Aggregation (DyMA) layer (paper Section 6).
//
// Sits between a logical process and the network: application messages
// destined to the same LP and close in (wall) time are collected into one
// physical message, amortizing the large fixed per-message overhead of the
// interconnect. Three policies:
//
//   None  - every message ships immediately (the "unaggregated" kernel),
//   Fixed - FAW: flush when the aggregate's age reaches a fixed window,
//   Adaptive - SAAW: like FAW but the window is re-tuned by the
//              AggregationWindowController every time an aggregate is sent.
//
// Aggregates also flush when they reach max_batch items (bounds latency and
// memory under bursts). Control traffic (GVT tokens) bypasses this layer.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "otw/core/aggregation_controller.hpp"
#include "otw/platform/engine.hpp"
#include "otw/util/assert.hpp"
#include "otw/util/buffer_pool.hpp"
#include "otw/util/stats.hpp"

namespace otw::comm {

enum class AggregationPolicy : std::uint8_t { None, Fixed, Adaptive };

[[nodiscard]] constexpr const char* to_string(AggregationPolicy p) noexcept {
  switch (p) {
    case AggregationPolicy::None: return "unaggregated";
    case AggregationPolicy::Fixed: return "FAW";
    case AggregationPolicy::Adaptive: return "SAAW";
  }
  return "?";
}

struct AggregationConfig {
  AggregationPolicy policy = AggregationPolicy::None;
  /// FAW window / SAAW initial window ("aggregate age" axis of Figs. 8-9),
  /// in microseconds of platform time.
  double window_us = 32.0;
  /// Hard cap on messages per aggregate.
  std::size_t max_batch = 128;
  /// SAAW controller tuning; initial_window_us is overridden by window_us.
  core::AggregationControlConfig saaw;
};

struct AggregationStats {
  std::uint64_t messages_enqueued = 0;
  std::uint64_t aggregates_sent = 0;
  util::RunningStat aggregate_size;
  util::RunningStat aggregate_age_us;
  util::RunningStat window_us;
};

/// Per-LP outgoing aggregation buffers. Item is the application message type
/// (the kernel's Event). SendFn is invoked as send_fn(dst, std::vector<Item>&&)
/// exactly once per physical message.
template <typename Item>
class AggregationChannel {
 public:
  AggregationChannel(platform::LpId self, platform::LpId num_lps,
                     const AggregationConfig& config)
      : self_(self), config_(config), buffers_(num_lps) {
    OTW_REQUIRE(config.max_batch >= 1);
    OTW_REQUIRE(config.window_us >= 0.0);
    if (config_.policy == AggregationPolicy::Adaptive) {
      auto saaw = config_.saaw;
      saaw.initial_window_us = config_.window_us;
      saaw.min_window_us = std::min(saaw.min_window_us, saaw.initial_window_us);
      saaw.max_window_us = std::max(saaw.max_window_us, saaw.initial_window_us);
      controller_.emplace(saaw);
    }
  }

  /// Queues one item for dst; flushes the destination's aggregate if the
  /// policy says so.
  template <typename SendFn>
  void enqueue(platform::LpId dst, Item item, std::uint64_t now_ns, SendFn&& send_fn) {
    OTW_REQUIRE(dst < buffers_.size());
    OTW_REQUIRE_MSG(dst != self_, "intra-LP traffic must not enter the network");
    ++stats_.messages_enqueued;

    if (config_.policy == AggregationPolicy::None) {
      std::vector<Item> single = acquire_buffer();
      single.push_back(std::move(item));
      ship(dst, std::move(single), 0.0, send_fn);
      return;
    }

    Buffer& buf = buffers_[dst];
    if (buf.items.empty()) {
      if (buf.items.capacity() == 0) {
        buf.items = acquire_buffer();
      }
      buf.opened_ns = now_ns;
      ++open_count_;
    }
    buf.items.push_back(std::move(item));

    if (buf.items.size() >= config_.max_batch || age_us(buf, now_ns) >= window_us()) {
      flush(dst, now_ns, send_fn);
    }
  }

  /// Flushes every aggregate whose age has reached the current window.
  /// Called from the LP's step loop so time-based flushing happens even when
  /// no new messages arrive.
  template <typename SendFn>
  void pump(std::uint64_t now_ns, SendFn&& send_fn) {
    if (open_count_ == 0) {
      return;
    }
    for (platform::LpId dst = 0; dst < buffers_.size(); ++dst) {
      if (!buffers_[dst].items.empty() &&
          age_us(buffers_[dst], now_ns) >= window_us()) {
        flush(dst, now_ns, send_fn);
      }
    }
  }

  /// Ships every open aggregate regardless of age (end of simulation, or a
  /// control message that must not be overtaken by buffered events).
  template <typename SendFn>
  void flush_all(std::uint64_t now_ns, SendFn&& send_fn) {
    for (platform::LpId dst = 0; dst < buffers_.size(); ++dst) {
      if (!buffers_[dst].items.empty()) {
        flush(dst, now_ns, send_fn);
      }
    }
  }

  /// Drops every open aggregate without shipping it (snapshot restore: the
  /// buffered events belong to a rolled-back incarnation and must not reach
  /// the wire). Counters other than the open count are left untouched.
  void discard_all() noexcept {
    for (Buffer& buf : buffers_) {
      if (!buf.items.empty()) {
        buf.items.clear();
        --open_count_;
      }
    }
  }

  /// Ships dst's aggregate if non-empty.
  template <typename SendFn>
  void flush(platform::LpId dst, std::uint64_t now_ns, SendFn&& send_fn) {
    Buffer& buf = buffers_[dst];
    if (buf.items.empty()) {
      return;
    }
    const double age = age_us(buf, now_ns);
    std::vector<Item> items;
    items.swap(buf.items);
    --open_count_;
    if (controller_) {
      // Span since the previous flush to this destination: the rate
      // estimator's observation window (0 = unknown on the first flush).
      const double elapsed =
          buf.flushed_before && now_ns > buf.last_flush_ns
              ? static_cast<double>(now_ns - buf.last_flush_ns) / 1000.0
              : 0.0;
      controller_->on_aggregate_sent(items.size(), age, elapsed);
    }
    buf.last_flush_ns = now_ns;
    buf.flushed_before = true;
    ship(dst, std::move(items), age, send_fn);
  }

  /// True when any aggregate is open; the LP must keep stepping (and
  /// pumping) until this drains.
  [[nodiscard]] bool has_pending() const noexcept { return open_count_ > 0; }

  /// Earliest deadline (ns) at which an open aggregate becomes due, or
  /// UINT64_MAX when none is open.
  [[nodiscard]] std::uint64_t next_deadline_ns() const noexcept {
    std::uint64_t deadline = UINT64_MAX;
    if (open_count_ == 0) {
      return deadline;
    }
    const auto window_ns = static_cast<std::uint64_t>(window_us() * 1000.0);
    for (const Buffer& buf : buffers_) {
      if (!buf.items.empty()) {
        deadline = std::min(deadline, buf.opened_ns + window_ns);
      }
    }
    return deadline;
  }

  /// Current window in microseconds (fixed for FAW, adapted for SAAW).
  [[nodiscard]] double window_us() const noexcept {
    return controller_ ? controller_->window_us() : config_.window_us;
  }

  [[nodiscard]] const AggregationStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const AggregationConfig& config() const noexcept { return config_; }

  /// Batch buffers are drawn from `recycle` instead of freshly allocated
  /// (the receiving side returns them; see tw::EventBatchMessage). Null
  /// disables recycling. The pool must outlive the channel.
  void set_recycler(util::BufferPool<Item>* recycle) noexcept {
    recycle_ = recycle;
  }

 private:
  [[nodiscard]] std::vector<Item> acquire_buffer() {
    return recycle_ != nullptr ? recycle_->acquire() : std::vector<Item>{};
  }
  struct Buffer {
    std::vector<Item> items;
    std::uint64_t opened_ns = 0;
    std::uint64_t last_flush_ns = 0;
    bool flushed_before = false;
  };

  static double age_us(const Buffer& buf, std::uint64_t now_ns) noexcept {
    return now_ns <= buf.opened_ns
               ? 0.0
               : static_cast<double>(now_ns - buf.opened_ns) / 1000.0;
  }

  template <typename SendFn>
  void ship(platform::LpId dst, std::vector<Item>&& items, double age,
            SendFn&& send_fn) {
    ++stats_.aggregates_sent;
    stats_.aggregate_size.add(static_cast<double>(items.size()));
    stats_.aggregate_age_us.add(age);
    stats_.window_us.add(window_us());
    send_fn(dst, std::move(items));
  }

  platform::LpId self_;
  AggregationConfig config_;
  std::vector<Buffer> buffers_;
  std::optional<core::AggregationWindowController> controller_;
  util::BufferPool<Item>* recycle_ = nullptr;
  std::size_t open_count_ = 0;
  AggregationStats stats_;
};

}  // namespace otw::comm
