#include "otw/apps/phold.hpp"

#include "otw/util/rng.hpp"

namespace otw::apps::phold {

namespace {

struct PholdToken {
  std::uint64_t hop = 0;
  std::uint64_t trace = 0;  ///< running hash of the token's path
};
static_assert(std::has_unique_object_representations_v<PholdToken>,
              "payload must be padding-free for bitwise comparison");

struct PholdState {
  util::Xoshiro256 rng;
  std::uint64_t events_handled = 0;
  std::uint64_t checksum = 0;
  /// Padding inflates the state so checkpointing has a realistic cost.
  std::uint64_t pad[20] = {};
};
static_assert(std::has_unique_object_representations_v<PholdState>,
              "state must be padding-free for cross-kernel digests");

class PholdObject final : public tw::SimulationObject {
 public:
  PholdObject(const PholdConfig& config, std::uint32_t index)
      : config_(config), index_(index) {}

  [[nodiscard]] std::unique_ptr<tw::ObjectState> initial_state() const override {
    PholdState state;
    state.rng = util::Xoshiro256(config_.seed, index_);
    return std::make_unique<tw::PodState<PholdState>>(state);
  }

  void initialize(tw::ObjectContext& ctx) override {
    auto& state = ctx.state_as<PholdState>();
    for (std::uint32_t i = 0; i < config_.population_per_object; ++i) {
      forward(ctx, state, PholdToken{0, config_.seed ^ index_ ^ i});
    }
  }

  void process_event(tw::ObjectContext& ctx, const tw::Event& event) override {
    ctx.charge(config_.event_grain_ns);
    auto& state = ctx.state_as<PholdState>();
    auto token = event.payload.as<PholdToken>();

    ++state.events_handled;
    state.checksum = mix(state.checksum ^ token.trace ^ event.recv_time.ticks());

    ++token.hop;
    token.trace = mix(token.trace ^ (static_cast<std::uint64_t>(index_) << 32) ^
                      token.hop);
    forward(ctx, state, token);
  }

  [[nodiscard]] const char* kind() const noexcept override { return "phold"; }

 private:
  static std::uint64_t mix(std::uint64_t x) noexcept {
    std::uint64_t s = x;
    return util::splitmix64(s);
  }

  void forward(tw::ObjectContext& ctx, PholdState& state, const PholdToken& token) {
    if (config_.phase_length > 0 &&
        (ctx.now().ticks() / config_.phase_length) % 2 == 0) {
      // Order-independent phase: the successor is a pure function of the
      // token, so a rollback regenerates the identical message (lazy
      // cancellation scores hits here).
      std::uint64_t h = token.trace ^ (std::uint64_t{token.hop} << 17) ^
                        config_.seed ^ index_;
      const std::uint64_t draw = util::splitmix64(h);
      std::uint32_t dest =
          static_cast<std::uint32_t>(draw % (config_.num_objects - 1));
      dest += dest >= index_;  // skip self
      const auto delay =
          1 + static_cast<tw::VirtualTime::rep>((draw >> 32) %
                                                (2 * config_.mean_delay));
      ctx.send_pod(dest, delay, token);
      return;
    }
    const std::uint32_t dest = pick_destination(state);
    const auto delay = 1 + static_cast<tw::VirtualTime::rep>(
                               state.rng.next_exponential(
                                   static_cast<double>(config_.mean_delay)));
    ctx.send_pod(dest, delay, token);
  }

  [[nodiscard]] std::uint32_t pick_destination(PholdState& state) const {
    const tw::LpId my_lp = config_.lp_of(index_);
    // Round-robin placement: objects on my LP are those congruent to my_lp.
    const std::uint32_t on_my_lp =
        (config_.num_objects + config_.num_lps - 1 - my_lp) / config_.num_lps;
    const bool have_local_peer = on_my_lp > 1;
    bool remote = config_.num_lps > 1 &&
                  state.rng.next_bernoulli(config_.remote_probability);
    if (!have_local_peer) {
      remote = true;  // no same-LP peer exists
    }
    for (;;) {
      const auto candidate = static_cast<std::uint32_t>(
          state.rng.next_below(config_.num_objects));
      if (candidate == index_) {
        continue;
      }
      const bool candidate_remote = config_.lp_of(candidate) != my_lp;
      if (candidate_remote == remote) {
        return candidate;
      }
    }
  }

  PholdConfig config_;
  std::uint32_t index_;
};

}  // namespace

tw::Model build_model(const PholdConfig& config) {
  OTW_REQUIRE(config.num_objects >= 2);
  OTW_REQUIRE(config.num_lps >= 1);
  OTW_REQUIRE(config.num_objects >= config.num_lps);
  OTW_REQUIRE(config.population_per_object >= 1);
  OTW_REQUIRE(config.remote_probability >= 0.0 && config.remote_probability <= 1.0);

  tw::Model model;
  for (std::uint32_t i = 0; i < config.num_objects; ++i) {
    model.add(config.lp_of(i),
              [config, i] { return std::make_unique<PholdObject>(config, i); });
  }

  // Declare the expected send graph so CommGraph partitioning can keep the
  // heavy (local, 1 - remote_probability) edges inside one shard. Rates
  // mirror pick_destination: a remote successor with probability
  // remote_probability spread uniformly over the other-LP population, a
  // local one spread over the same-LP peers otherwise.
  for (std::uint32_t i = 0; i < config.num_objects; ++i) {
    const tw::LpId lp_i = config.lp_of(i);
    const std::uint32_t on_lp_i =
        (config.num_objects + config.num_lps - 1 - lp_i) / config.num_lps;
    const std::uint32_t remote_count = config.num_objects - on_lp_i;
    double p_remote = config.num_lps > 1 ? config.remote_probability : 0.0;
    if (on_lp_i <= 1) {
      p_remote = remote_count > 0 ? 1.0 : 0.0;  // no same-LP peer exists
    }
    for (std::uint32_t j = i + 1; j < config.num_objects; ++j) {
      const bool same_lp = config.lp_of(j) == lp_i;
      const double rate =
          same_lp ? (on_lp_i > 1 ? (1.0 - p_remote) / (on_lp_i - 1) : 0.0)
                  : (remote_count > 0 ? p_remote / remote_count : 0.0);
      if (rate > 0.0) {
        model.add_edge(i, j, rate);
      }
    }
  }
  return model;
}

}  // namespace otw::apps::phold
