// PHOLD: the standard synthetic Time Warp workload (Fujimoto).
//
// A fixed population of messages circulates among objects: processing one
// message schedules exactly one successor at a random destination after a
// random delay. remote_probability controls how much traffic crosses LP
// boundaries (the rollback pressure knob). Used by the test suite and the
// ablation benches; the paper's figures use SMMP and RAID.
#pragma once

#include <cstdint>

#include "otw/tw/kernel.hpp"

namespace otw::apps::phold {

struct PholdConfig {
  std::uint32_t num_objects = 16;
  tw::LpId num_lps = 4;
  /// Initial events seeded per object (total population = objects * this).
  std::uint32_t population_per_object = 4;
  /// Probability a successor is sent to an object on another LP.
  double remote_probability = 0.5;
  /// Mean of the exponential successor delay, in virtual ticks.
  std::uint64_t mean_delay = 100;
  /// Modeled computation per event, nanoseconds.
  std::uint64_t event_grain_ns = 5'000;
  std::uint64_t seed = 1;

  /// When > 0, the workload alternates between two behavioural phases every
  /// phase_length virtual ticks: an order-INdependent phase (successor
  /// destination/delay derived from the token alone — rollback regenerations
  /// are identical, favouring lazy cancellation) and an order-DEPENDENT
  /// phase (successor drawn from the object's RNG stream — regenerations
  /// differ after reordering, favouring aggressive cancellation). Exercises
  /// the paper's claim that the optimal configuration changes over the
  /// lifetime of one simulation.
  std::uint64_t phase_length = 0;

  /// Objects are placed round-robin: object i on LP (i % num_lps).
  [[nodiscard]] tw::LpId lp_of(std::uint32_t object) const noexcept {
    return object % num_lps;
  }
};

/// Builds the PHOLD model; run it with an end_time (the workload is
/// otherwise infinite).
tw::Model build_model(const PholdConfig& config);

}  // namespace otw::apps::phold
