// Gate-level digital logic simulation — the paper's motivating domain (the
// authors' dynamic-cancellation observations come from "digital systems
// models written in the hardware description language VHDL", paper §5).
//
// The model is a synchronous sequential circuit: a ring of D flip-flops
// clocked at a fixed period drives a random combinational network of 2-input
// gates whose outputs feed back into the flip-flop inputs. Gates only emit
// when their output VALUE changes (glitch suppression), which is precisely
// why logic simulation is the classic lazy-cancellation winner: after a
// rollback, re-evaluation usually regenerates the identical transitions.
//
// Objects: one per gate and one per flip-flop; flip-flops self-schedule
// their clock ticks. Everything an object needs to re-derive its committed
// behaviour lives in its PodState (input values, latched bit, a signature
// accumulator used by the cross-kernel digest checks).
#pragma once

#include <cstdint>

#include "otw/tw/kernel.hpp"

namespace otw::apps::logic {

enum class GateOp : std::uint8_t { And, Or, Xor, Nand, Nor, Xnor };

struct LogicConfig {
  /// Combinational 2-input gates.
  std::uint32_t num_gates = 96;
  /// D flip-flops (the state ring).
  std::uint32_t num_dffs = 32;
  tw::LpId num_lps = 4;
  /// Virtual ticks between clock edges.
  std::uint64_t clock_period = 100;
  /// Clock edges simulated (the workload is otherwise infinite).
  std::uint32_t num_cycles = 200;
  /// Gate propagation delays are 1..max_gate_delay ticks (per-gate, fixed).
  std::uint64_t max_gate_delay = 5;
  /// Fanout per net is 1..max_fanout.
  std::uint32_t max_fanout = 3;
  /// Fraction of XOR/XNOR gates. Parity gates propagate every input flip
  /// (high activity: reordered inputs change the transition stream, so
  /// aggressive cancellation wins); AND/OR-family gates absorb most flips
  /// (signals settle, regenerations match, lazy cancellation wins). The
  /// knob reproduces the paper's observation that the optimal strategy is
  /// application-dependent.
  double xor_fraction = 0.33;
  /// Modeled host computation per event, nanoseconds.
  std::uint64_t event_grain_ns = 1'500;
  std::uint64_t seed = 7;

  [[nodiscard]] std::uint32_t total_objects() const noexcept {
    return num_gates + num_dffs;
  }
  [[nodiscard]] tw::VirtualTime end_time() const noexcept {
    return tw::VirtualTime{clock_period * (num_cycles + 1)};
  }
};

/// Builds the circuit model. The netlist is derived deterministically from
/// the seed; the same config always yields the same circuit.
tw::Model build_model(const LogicConfig& config);

}  // namespace otw::apps::logic
