#include "otw/apps/logic.hpp"

#include <memory>
#include <vector>

#include "otw/util/rng.hpp"

namespace otw::apps::logic {

namespace {

enum MsgKind : std::uint16_t { kData = 0, kClock = 1 };

struct NetMsg {
  std::uint32_t source = 0;
  std::uint16_t pin = 0;
  std::uint8_t value = 0;
  std::uint8_t kind = kData;
};
static_assert(std::has_unique_object_representations_v<NetMsg>);

struct Fanout {
  std::uint32_t target;
  std::uint16_t pin;
};

struct GateInfo {
  GateOp op = GateOp::And;
  std::uint64_t delay = 1;
  std::vector<Fanout> fanout;
};

struct DffInfo {
  std::uint8_t initial = 0;
  std::vector<Fanout> fanout;
};

/// The immutable circuit: generated once per build_model call, shared by all
/// object factories (and identical across kernels for the same config).
struct Netlist {
  LogicConfig config;
  std::vector<GateInfo> gates;
  std::vector<DffInfo> dffs;

  [[nodiscard]] tw::LpId lp_of(std::uint32_t object) const {
    if (object < config.num_gates) {
      return static_cast<tw::LpId>(std::uint64_t{object} * config.num_lps /
                                   config.num_gates);
    }
    const std::uint32_t d = object - config.num_gates;
    return static_cast<tw::LpId>(std::uint64_t{d} * config.num_lps /
                                 config.num_dffs);
  }
};

std::uint8_t evaluate(GateOp op, std::uint8_t a, std::uint8_t b) {
  switch (op) {
    case GateOp::And: return a & b;
    case GateOp::Or: return a | b;
    case GateOp::Xor: return a ^ b;
    case GateOp::Nand: return (a & b) ^ 1;
    case GateOp::Nor: return (a | b) ^ 1;
    case GateOp::Xnor: return (a ^ b) ^ 1;
  }
  return 0;
}

std::shared_ptr<const Netlist> generate(const LogicConfig& config) {
  auto netlist = std::make_shared<Netlist>();
  netlist->config = config;
  netlist->gates.resize(config.num_gates);
  netlist->dffs.resize(config.num_dffs);
  util::Xoshiro256 rng(config.seed, 0xC1DC);

  // Fanout budget per source net (gates + dffs).
  std::vector<std::uint32_t> budget(config.total_objects(), config.max_fanout);

  // Each gate g draws from flip-flop outputs and LOWER-numbered gates, so
  // the combinational network is a DAG by construction.
  auto pick_source = [&](std::uint32_t gate_limit) -> std::uint32_t {
    const std::uint32_t pool = gate_limit + config.num_dffs;
    std::uint32_t candidate = static_cast<std::uint32_t>(rng.next_below(pool));
    for (std::uint32_t probe = 0; probe < pool; ++probe) {
      const std::uint32_t index = (candidate + probe) % pool;
      // Pool order: gates [0, gate_limit), then dffs.
      const std::uint32_t object =
          index < gate_limit ? index : config.num_gates + (index - gate_limit);
      if (budget[object] > 0) {
        --budget[object];
        return object;
      }
    }
    // Everything saturated: overflow the first flip-flop (keeps the circuit
    // connected; only reachable with tiny max_fanout).
    return config.num_gates;
  };

  for (std::uint32_t g = 0; g < config.num_gates; ++g) {
    GateInfo& gate = netlist->gates[g];
    if (rng.next_bernoulli(config.xor_fraction)) {
      gate.op = rng.next_bernoulli(0.5) ? GateOp::Xor : GateOp::Xnor;
    } else {
      const GateOp absorbing[] = {GateOp::And, GateOp::Or, GateOp::Nand,
                                  GateOp::Nor};
      gate.op = absorbing[rng.next_below(4)];
    }
    gate.delay = 1 + rng.next_below(config.max_gate_delay);
    for (std::uint16_t pin = 0; pin < 2; ++pin) {
      const std::uint32_t source = pick_source(g);
      if (source < config.num_gates) {
        netlist->gates[source].fanout.push_back(Fanout{g, pin});
      } else {
        netlist->dffs[source - config.num_gates].fanout.push_back(
            Fanout{g, pin});
      }
    }
  }
  // Flip-flop D inputs tap late gates (the feedback path).
  for (std::uint32_t d = 0; d < config.num_dffs; ++d) {
    netlist->dffs[d].initial = static_cast<std::uint8_t>(rng.next_below(2));
    const std::uint32_t half = config.num_gates / 2;
    const std::uint32_t source =
        half + static_cast<std::uint32_t>(rng.next_below(config.num_gates - half));
    netlist->gates[source].fanout.push_back(
        Fanout{config.num_gates + d, /*pin=*/0});
  }
  return netlist;
}

std::uint64_t mix(std::uint64_t a, std::uint64_t b) noexcept {
  std::uint64_t s = a * 0x9E3779B97F4A7C15ULL + b;
  return util::splitmix64(s);
}

struct GateState {
  std::uint64_t events = 0;
  std::uint64_t signature = 0;
  std::uint8_t in[2] = {0, 0};
  std::uint8_t out = 0;
  std::uint8_t pad[5] = {};
};
static_assert(std::has_unique_object_representations_v<GateState>);

class Gate final : public tw::SimulationObject {
 public:
  Gate(std::shared_ptr<const Netlist> netlist, std::uint32_t index)
      : netlist_(std::move(netlist)), index_(index) {}

  std::unique_ptr<tw::ObjectState> initial_state() const override {
    GateState state;
    const GateInfo& info = netlist_->gates[index_];
    state.out = evaluate(info.op, 0, 0);
    return std::make_unique<tw::PodState<GateState>>(state);
  }

  void process_event(tw::ObjectContext& ctx, const tw::Event& event) override {
    ctx.charge(netlist_->config.event_grain_ns);
    auto& state = ctx.state_as<GateState>();
    const auto msg = event.payload.as<NetMsg>();
    OTW_ASSERT(msg.kind == kData && msg.pin < 2);
    state.in[msg.pin] = msg.value;
    ++state.events;
    state.signature = mix(state.signature, (std::uint64_t{msg.source} << 8) |
                                               msg.value);

    const GateInfo& info = netlist_->gates[index_];
    const std::uint8_t next = evaluate(info.op, state.in[0], state.in[1]);
    if (next == state.out) {
      return;  // glitch suppressed: no transition, no traffic
    }
    state.out = next;
    emit(ctx, info.fanout, next, info.delay);
  }

  [[nodiscard]] const char* kind() const noexcept override { return "gate"; }

 private:
  void emit(tw::ObjectContext& ctx, const std::vector<Fanout>& fanout,
            std::uint8_t value, std::uint64_t delay) {
    for (const Fanout& f : fanout) {
      NetMsg msg;
      msg.source = index_;
      msg.pin = f.pin;
      msg.value = value;
      ctx.send_pod(f.target, delay, msg);
    }
  }

  std::shared_ptr<const Netlist> netlist_;
  std::uint32_t index_;
};

struct DffState {
  std::uint64_t cycles = 0;
  std::uint64_t signature = 0;
  std::uint8_t d = 0;
  std::uint8_t q = 0;
  std::uint8_t pad[6] = {};
};
static_assert(std::has_unique_object_representations_v<DffState>);

class Dff final : public tw::SimulationObject {
 public:
  Dff(std::shared_ptr<const Netlist> netlist, std::uint32_t index)
      : netlist_(std::move(netlist)), index_(index) {}

  std::unique_ptr<tw::ObjectState> initial_state() const override {
    DffState state;
    state.d = netlist_->dffs[index_].initial;
    state.q = 0;
    return std::make_unique<tw::PodState<DffState>>(state);
  }

  void initialize(tw::ObjectContext& ctx) override {
    schedule_clock(ctx);
  }

  void process_event(tw::ObjectContext& ctx, const tw::Event& event) override {
    ctx.charge(netlist_->config.event_grain_ns);
    auto& state = ctx.state_as<DffState>();
    const auto msg = event.payload.as<NetMsg>();
    if (msg.kind == kData) {
      state.d = msg.value;
      state.signature = mix(state.signature, (std::uint64_t{msg.source} << 8) |
                                                 msg.value);
      return;
    }
    // Clock edge: latch D; emit Q on change (and once at start-up so the
    // network sees the initial values). Flip-flop 0 is a toggle (a clock
    // divider): it guarantees the circuit oscillates even when the random
    // feedback map has a fixed point.
    const std::uint8_t next =
        index_ == 0 ? static_cast<std::uint8_t>(state.q ^ 1) : state.d;
    if (next != state.q || state.cycles == 0) {
      state.q = next;
      for (const Fanout& f : netlist_->dffs[index_].fanout) {
        NetMsg out;
        out.source = netlist_->config.num_gates + index_;
        out.pin = f.pin;
        out.value = next;
        ctx.send_pod(f.target, 1, out);
      }
    }
    state.signature = mix(state.signature, 0x1000 | next);
    if (++state.cycles < netlist_->config.num_cycles) {
      schedule_clock(ctx);
    }
  }

  [[nodiscard]] const char* kind() const noexcept override { return "dff"; }

 private:
  void schedule_clock(tw::ObjectContext& ctx) {
    NetMsg tick;
    tick.source = netlist_->config.num_gates + index_;
    tick.kind = kClock;
    ctx.send_pod(netlist_->config.num_gates + index_,
                 netlist_->config.clock_period, tick);
  }

  std::shared_ptr<const Netlist> netlist_;
  std::uint32_t index_;
};

}  // namespace

tw::Model build_model(const LogicConfig& config) {
  OTW_REQUIRE(config.num_gates >= 2);
  OTW_REQUIRE(config.num_dffs >= 1);
  OTW_REQUIRE(config.num_lps >= 1);
  OTW_REQUIRE(config.num_gates >= config.num_lps &&
              config.num_dffs >= config.num_lps);
  OTW_REQUIRE(config.clock_period >= 2);
  OTW_REQUIRE(config.max_gate_delay >= 1 &&
              config.max_gate_delay < config.clock_period);
  OTW_REQUIRE(config.max_fanout >= 1);
  OTW_REQUIRE(config.xor_fraction >= 0.0 && config.xor_fraction <= 1.0);

  const std::shared_ptr<const Netlist> netlist = generate(config);
  tw::Model model;
  for (std::uint32_t g = 0; g < config.num_gates; ++g) {
    model.add(netlist->lp_of(g),
              [netlist, g] { return std::make_unique<Gate>(netlist, g); });
  }
  for (std::uint32_t d = 0; d < config.num_dffs; ++d) {
    model.add(netlist->lp_of(config.num_gates + d),
              [netlist, d] { return std::make_unique<Dff>(netlist, d); });
  }
  return model;
}

}  // namespace otw::apps::logic
