#include "otw/apps/raid.hpp"

#include "otw/util/rng.hpp"

namespace otw::apps::raid {

namespace {

enum MsgType : std::uint32_t {
  kTick = 0,      // source -> source (issue pacing)
  kIoRequest = 1, // source -> fork
  kDiskOp = 2,    // fork -> disk
  kDiskDone = 3,  // disk -> fork
  kIoDone = 4,    // fork -> source
};

enum OpKind : std::uint32_t { kRead = 0, kWrite = 1, kParityWrite = 2 };

struct RaidMsg {
  std::uint64_t issued_at = 0;
  std::uint32_t req_index = 0;
  std::uint32_t stripe = 0;
  std::uint32_t cylinder = 0;
  std::uint16_t type = kTick;
  std::uint16_t source = 0;
  std::uint16_t units = 0;
  std::uint16_t start_unit = 0;
  std::uint16_t op_kind = kRead;
  std::uint16_t disk = 0;
  std::uint16_t sectors = 0;
  std::uint16_t slot = 0;
  std::uint16_t is_write = 0;
  std::uint16_t pad = 0;
};
static_assert(sizeof(RaidMsg) <= tw::kMaxPayloadBytes);
static_assert(std::has_unique_object_representations_v<RaidMsg>);

std::uint64_t mix(std::uint64_t a, std::uint64_t b) noexcept {
  std::uint64_t s = a * 0x9E3779B97F4A7C15ULL + b;
  return util::splitmix64(s);
}

/// Object-id layout: sources [0,S), forks [S,S+F), disks [S+F,S+F+D).
struct Layout {
  explicit Layout(const RaidConfig& cfg) : cfg_(cfg) {}

  [[nodiscard]] std::uint32_t sources_per_lp() const {
    return cfg_.num_sources / cfg_.num_lps;
  }
  [[nodiscard]] std::uint32_t forks_per_lp() const {
    return cfg_.num_forks / cfg_.num_lps;
  }
  [[nodiscard]] std::uint32_t disks_per_lp() const {
    return cfg_.num_disks / cfg_.num_lps;
  }

  [[nodiscard]] tw::ObjectId source_id(std::uint32_t s) const { return s; }
  [[nodiscard]] tw::ObjectId fork_id(std::uint32_t f) const {
    return cfg_.num_sources + f;
  }
  [[nodiscard]] tw::ObjectId disk_id(std::uint32_t d) const {
    return cfg_.num_sources + cfg_.num_forks + d;
  }

  [[nodiscard]] tw::LpId lp_of_source(std::uint32_t s) const {
    return s / sources_per_lp();
  }
  [[nodiscard]] tw::LpId lp_of_fork(std::uint32_t f) const {
    return f / forks_per_lp();
  }
  [[nodiscard]] tw::LpId lp_of_disk(std::uint32_t d) const {
    return d / disks_per_lp();
  }

  /// Each source uses a fork on its own LP (the paper's partitioning keeps
  /// source->fork traffic intra-LP; fork->disk traffic crosses LPs).
  [[nodiscard]] std::uint32_t fork_of_source(std::uint32_t s) const {
    const tw::LpId lp = lp_of_source(s);
    return lp * forks_per_lp() + s % forks_per_lp();
  }

  [[nodiscard]] std::uint32_t parity_disk(std::uint32_t row) const {
    return parity_disk_of(row, cfg_.num_disks);
  }
  [[nodiscard]] std::uint32_t data_disk(std::uint32_t row, std::uint32_t unit) const {
    return data_disk_of(row, unit, cfg_.num_disks);
  }
  [[nodiscard]] std::uint32_t cylinder_of(std::uint32_t row) const {
    return (row * cfg_.stripe_unit_sectors / cfg_.sectors_per_track) %
           cfg_.cylinders;
  }

  RaidConfig cfg_;
};

// ---------------------------------------------------------------- Source --

struct SourceState {
  util::Xoshiro256 rng;
  std::uint32_t issued = 0;
  std::uint32_t completed = 0;
  std::uint64_t latency_sum = 0;
  std::uint64_t checksum = 0;
};
static_assert(std::has_unique_object_representations_v<SourceState>);

class Source final : public tw::SimulationObject {
 public:
  Source(const RaidConfig& cfg, std::uint32_t s) : layout_(cfg), s_(s) {}

  [[nodiscard]] std::unique_ptr<tw::ObjectState> initial_state() const override {
    SourceState state;
    state.rng = util::Xoshiro256(layout_.cfg_.seed, 0x500 + s_);
    return std::make_unique<tw::PodState<SourceState>>(state);
  }

  void initialize(tw::ObjectContext& ctx) override {
    auto& state = ctx.state_as<SourceState>();
    const std::uint32_t window =
        std::min(layout_.cfg_.window_per_source, layout_.cfg_.requests_per_source);
    for (std::uint32_t w = 0; w < window; ++w) {
      schedule_tick(ctx, state);
    }
  }

  void process_event(tw::ObjectContext& ctx, const tw::Event& event) override {
    ctx.charge(layout_.cfg_.event_grain_ns);
    auto& state = ctx.state_as<SourceState>();
    const auto msg = event.payload.as<RaidMsg>();
    switch (msg.type) {
      case kTick:
        issue(ctx, state);
        break;
      case kIoDone:
        ++state.completed;
        state.latency_sum += ctx.now().ticks() - msg.issued_at;
        state.checksum = mix(state.checksum, msg.req_index ^ ctx.now().ticks());
        if (state.issued < layout_.cfg_.requests_per_source) {
          schedule_tick(ctx, state);
        }
        break;
      default:
        OTW_REQUIRE_MSG(false, "unexpected message at source");
    }
  }

  [[nodiscard]] const char* kind() const noexcept override { return "source"; }

 private:
  void schedule_tick(tw::ObjectContext& ctx, SourceState& state) {
    const auto think = 1 + static_cast<tw::VirtualTime::rep>(
                               state.rng.next_exponential(
                                   static_cast<double>(layout_.cfg_.mean_think)));
    RaidMsg tick;
    tick.type = kTick;
    tick.source = s_;
    ctx.send_pod(layout_.source_id(s_), think, tick);
  }

  void issue(tw::ObjectContext& ctx, SourceState& state) {
    if (state.issued >= layout_.cfg_.requests_per_source) {
      return;  // a tick scheduled before the budget ran out
    }
    RaidMsg req;
    req.type = kIoRequest;
    req.source = s_;
    req.req_index = state.issued++;
    const std::uint32_t drawn = 1 + static_cast<std::uint32_t>(
        state.rng.next_below(layout_.cfg_.max_units_per_request));
    // A request stays within one stripe row (units <= data disks).
    req.units = static_cast<std::uint16_t>(
        std::min(drawn, layout_.cfg_.num_disks - 1));
    req.stripe = static_cast<std::uint32_t>(state.rng.next_below(
        std::uint64_t{layout_.cfg_.cylinders} * layout_.cfg_.sectors_per_track /
        layout_.cfg_.stripe_unit_sectors));
    req.start_unit = static_cast<std::uint32_t>(
        state.rng.next_below(layout_.cfg_.num_disks - req.units));
    req.is_write = state.rng.next_bernoulli(layout_.cfg_.write_fraction) ? 1 : 0;
    req.issued_at = ctx.now().ticks() + 1;
    ctx.send_pod(layout_.fork_id(layout_.fork_of_source(s_)), 1, req);
  }

  Layout layout_;
  std::uint32_t s_;
};

// ------------------------------------------------------------------ Fork --

constexpr std::uint32_t kForkSlots = 64;

struct ForkState {
  std::uint64_t busy_until = 0;
  std::uint32_t remaining[kForkSlots] = {};
  std::uint32_t slot_source[kForkSlots] = {};
  std::uint32_t slot_req[kForkSlots] = {};
  std::uint64_t slot_issued[kForkSlots] = {};
  std::uint64_t checksum = 0;
  std::uint64_t completed = 0;
};
static_assert(std::has_unique_object_representations_v<ForkState>);

class Fork final : public tw::SimulationObject {
 public:
  Fork(const RaidConfig& cfg, std::uint32_t f) : layout_(cfg), f_(f) {}

  [[nodiscard]] std::unique_ptr<tw::ObjectState> initial_state() const override {
    return std::make_unique<tw::PodState<ForkState>>();
  }

  void process_event(tw::ObjectContext& ctx, const tw::Event& event) override {
    ctx.charge(layout_.cfg_.event_grain_ns);
    auto& state = ctx.state_as<ForkState>();
    const auto msg = event.payload.as<RaidMsg>();
    switch (msg.type) {
      case kIoRequest:
        dispatch(ctx, state, msg);
        break;
      case kDiskDone:
        complete_op(ctx, state, msg);
        break;
      default:
        OTW_REQUIRE_MSG(false, "unexpected message at fork");
    }
  }

  [[nodiscard]] const char* kind() const noexcept override { return "fork"; }

 private:
  void dispatch(tw::ObjectContext& ctx, ForkState& state, const RaidMsg& req) {
    std::uint32_t slot = kForkSlots;
    for (std::uint32_t i = 0; i < kForkSlots; ++i) {
      if (state.remaining[i] == 0) {
        slot = i;
        break;
      }
    }
    OTW_REQUIRE_MSG(slot != kForkSlots, "fork outstanding-request table full");

    state.slot_source[slot] = req.source;
    state.slot_req[slot] = req.req_index;
    state.slot_issued[slot] = req.issued_at;

    // Expand the request into per-disk operations (RAID-5): reads touch the
    // data units; writes also rewrite the row's parity unit.
    std::uint32_t ops = 0;
    for (std::uint32_t u = 0; u < req.units; ++u) {
      forward_op(ctx, state, req, slot,
                 layout_.data_disk(req.stripe, req.start_unit + u),
                 req.is_write != 0 ? kWrite : kRead);
      ++ops;
    }
    if (req.is_write != 0) {
      forward_op(ctx, state, req, slot, layout_.parity_disk(req.stripe),
                 kParityWrite);
      ++ops;
    }
    state.remaining[slot] = ops;
    state.checksum = mix(state.checksum, req.stripe ^ (std::uint64_t{ops} << 32));
  }

  void forward_op(tw::ObjectContext& ctx, ForkState& state, const RaidMsg& req,
                  std::uint32_t slot, std::uint32_t disk, std::uint32_t kind) {
    const std::uint64_t now = ctx.now().ticks();
    std::uint64_t dispatch_at = now + layout_.cfg_.ctrl_overhead;
    if (layout_.cfg_.serialize_fork) {
      // The controller pushes operations through one dispatch engine; this
      // busy-until chain is what makes fork output order-dependent.
      dispatch_at = std::max(now, state.busy_until) + layout_.cfg_.ctrl_overhead;
      state.busy_until = dispatch_at;
    }
    RaidMsg op;
    op.type = kDiskOp;
    op.source = req.source;
    op.req_index = req.req_index;
    op.stripe = req.stripe;
    op.op_kind = kind;
    op.disk = disk;
    op.cylinder = layout_.cylinder_of(req.stripe);
    op.sectors = layout_.cfg_.stripe_unit_sectors;
    op.slot = slot;
    op.issued_at = req.issued_at;
    ctx.send_pod(layout_.disk_id(disk), dispatch_at - now, op);
  }

  void complete_op(tw::ObjectContext& ctx, ForkState& state, const RaidMsg& done) {
    OTW_REQUIRE(done.slot < kForkSlots);
    if (layout_.cfg_.serialize_fork) {
      // Completion handling occupies the same dispatch engine: a reordered
      // completion shifts every later dispatch time. This is what makes a
      // fork's regenerated output differ after a rollback — the paper's
      // "fork objects favour aggressive cancellation" behaviour.
      state.busy_until = std::max(ctx.now().ticks(), state.busy_until) +
                         layout_.cfg_.ctrl_overhead;
    }
    // Optimistic execution can deliver a completion whose dispatch has been
    // rolled back and re-issued under a different slot. The pending
    // anti-message will undo this processing, so the only requirement is to
    // handle it deterministically — ignore it. (A committed completion
    // always matches: annihilations resolve before GVT passes it.)
    if (state.remaining[done.slot] == 0 ||
        state.slot_source[done.slot] != done.source ||
        state.slot_req[done.slot] != done.req_index) {
      return;
    }
    state.checksum = mix(state.checksum, done.disk ^ ctx.now().ticks());
    if (--state.remaining[done.slot] == 0) {
      ++state.completed;
      RaidMsg io_done;
      io_done.type = kIoDone;
      io_done.source = state.slot_source[done.slot];
      io_done.req_index = state.slot_req[done.slot];
      io_done.issued_at = state.slot_issued[done.slot];
      // Completions leave through the same (serialized) dispatch engine, so
      // their send time also depends on the controller's recent history.
      const std::uint64_t delay =
          layout_.cfg_.serialize_fork
              ? state.busy_until - std::min(state.busy_until, ctx.now().ticks()) + 1
              : 1;
      ctx.send_pod(layout_.source_id(io_done.source), delay, io_done);
    }
  }

  Layout layout_;
  [[maybe_unused]] std::uint32_t f_;
};

// ------------------------------------------------------------------ Disk --

struct DiskState {
  std::uint64_t busy_until = 0;  ///< used only when serialize_disks
  std::uint32_t head_cylinder = 0;
  std::uint32_t ops = 0;
  std::uint64_t busy_ticks = 0;
  std::uint64_t checksum = 0;
};
static_assert(std::has_unique_object_representations_v<DiskState>);

class Disk final : public tw::SimulationObject {
 public:
  Disk(const RaidConfig& cfg, std::uint32_t d) : layout_(cfg), d_(d) {}

  [[nodiscard]] std::unique_ptr<tw::ObjectState> initial_state() const override {
    return std::make_unique<tw::PodState<DiskState>>();
  }

  void process_event(tw::ObjectContext& ctx, const tw::Event& event) override {
    ctx.charge(layout_.cfg_.event_grain_ns);
    auto& state = ctx.state_as<DiskState>();
    auto op = event.payload.as<RaidMsg>();
    OTW_ASSERT(op.type == kDiskOp && op.disk == d_);

    // Seek distance: from a fixed park position by default (deterministic in
    // the request: regenerations after a rollback are identical, which is
    // why disks favour lazy cancellation).
    const std::uint32_t from =
        layout_.cfg_.serialize_disks ? state.head_cylinder
                                     : layout_.cfg_.cylinders / 2;
    const std::uint32_t dist =
        op.cylinder > from ? op.cylinder - from : from - op.cylinder;
    const std::uint64_t seek =
        layout_.cfg_.seek_base + std::uint64_t{dist} * layout_.cfg_.seek_per_cylinder;
    const std::uint64_t rotation =
        layout_.cfg_.rotation_max == 0
            ? 0
            : mix(op.stripe, (std::uint64_t{op.disk} << 32) | op.op_kind) %
                  layout_.cfg_.rotation_max;
    const std::uint64_t transfer =
        std::uint64_t{op.sectors} * layout_.cfg_.transfer_per_sector;
    std::uint64_t service = seek + rotation + transfer;

    const std::uint64_t now = ctx.now().ticks();
    std::uint64_t done_at = now + std::max<std::uint64_t>(service, 1);
    if (layout_.cfg_.serialize_disks) {
      done_at = std::max(now, state.busy_until) + std::max<std::uint64_t>(service, 1);
      state.busy_until = done_at;
      state.head_cylinder = op.cylinder;
    }

    ++state.ops;
    state.busy_ticks += service;
    state.checksum = mix(state.checksum, op.cylinder ^ (std::uint64_t{op.slot} << 32));

    op.type = kDiskDone;
    const std::uint32_t fork =
        layout_.fork_of_source(op.source);
    ctx.send_pod(layout_.fork_id(fork), done_at - now, op);
  }

  [[nodiscard]] const char* kind() const noexcept override { return "disk"; }

 private:
  Layout layout_;
  std::uint32_t d_;
};

}  // namespace

// RAID-5 left-symmetric: parity rotates backwards with the stripe row; data
// unit u of row r lives on the disks following the parity disk.
std::uint32_t parity_disk_of(std::uint32_t row, std::uint32_t num_disks) noexcept {
  return (num_disks - 1) - (row % num_disks);
}

std::uint32_t data_disk_of(std::uint32_t row, std::uint32_t unit,
                           std::uint32_t num_disks) noexcept {
  return (parity_disk_of(row, num_disks) + 1 + unit) % num_disks;
}

tw::Model build_model(const RaidConfig& config) {
  OTW_REQUIRE(config.num_lps >= 1);
  OTW_REQUIRE_MSG(config.num_sources % config.num_lps == 0,
                  "sources must divide evenly across LPs");
  OTW_REQUIRE_MSG(config.num_forks % config.num_lps == 0,
                  "forks must divide evenly across LPs");
  OTW_REQUIRE_MSG(config.num_disks % config.num_lps == 0,
                  "disks must divide evenly across LPs");
  OTW_REQUIRE(config.num_disks >= 2);
  OTW_REQUIRE(config.max_units_per_request >= 1);
  OTW_REQUIRE(config.write_fraction >= 0.0 && config.write_fraction <= 1.0);
  const Layout layout(config);
  const std::uint32_t sources_per_fork =
      config.num_sources / config.num_forks;
  OTW_REQUIRE_MSG(sources_per_fork * config.window_per_source <= kForkSlots,
                  "fork slot table too small for this window");

  tw::Model model;
  for (std::uint32_t s = 0; s < config.num_sources; ++s) {
    model.add(layout.lp_of_source(s),
              [config, s] { return std::make_unique<Source>(config, s); });
  }
  for (std::uint32_t f = 0; f < config.num_forks; ++f) {
    model.add(layout.lp_of_fork(f),
              [config, f] { return std::make_unique<Fork>(config, f); });
  }
  for (std::uint32_t d = 0; d < config.num_disks; ++d) {
    model.add(layout.lp_of_disk(d),
              [config, d] { return std::make_unique<Disk>(config, d); });
  }
  OTW_ASSERT(model.objects.size() == config.total_objects());
  return model;
}

std::uint64_t expected_completed_requests(const RaidConfig& config) {
  return std::uint64_t{config.num_sources} * config.requests_per_source;
}

}  // namespace otw::apps::raid
