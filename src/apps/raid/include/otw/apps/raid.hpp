// RAID: disk-array model (paper Section 7).
//
// request sources -> forks (array controllers) -> disks, with RAID-5
// left-symmetric striping and rotating parity. Default geometry matches the
// paper: 20 sources issuing 1000 requests each to 8 disks via 4 forks,
// partitioned into 4 LPs (per LP: 5 sources + 1 fork + 2 disks).
//
// Cancellation character (cf. the paper's Figure 6 observation that
// different object kinds of one model prefer different strategies):
//  * disks favour lazy cancellation: service time is a deterministic
//    function of the disk operation (seek distance, rotation, transfer), so
//    re-execution after a rollback regenerates identical completions
//    (hit ratio ~1.0);
//  * sources favour aggressive cancellation: request pacing is coupled to
//    completions, so reordered completions change every subsequent issue
//    time (hit ratio ~0);
//  * forks sit in between: dispatch is serialized through a busy-until
//    engine (order-dependent), but rollback windows rarely span dispatch
//    boundaries, so they leans lazy in practice.
// In the paper the aggressive-favouring kind was the forks; in this
// realization that role falls to the sources — the load-bearing property
// (a MIXED model in which per-object dynamic selection beats both static
// choices) is preserved. serialize_disks / serialize_fork flip these
// behaviours for ablation studies.
#pragma once

#include <cstdint>

#include "otw/tw/kernel.hpp"

namespace otw::apps::raid {

struct RaidConfig {
  std::uint32_t num_sources = 20;
  std::uint32_t num_forks = 4;
  std::uint32_t num_disks = 8;
  tw::LpId num_lps = 4;
  std::uint32_t requests_per_source = 1000;
  /// Closed-loop window: outstanding requests per source.
  std::uint32_t window_per_source = 4;

  // Disk geometry.
  std::uint32_t cylinders = 1000;
  std::uint32_t sectors_per_track = 64;
  std::uint32_t stripe_unit_sectors = 8;
  /// Stripe units touched by one request (1 .. this).
  std::uint32_t max_units_per_request = 4;
  double write_fraction = 0.25;

  // Virtual-time parameters (ticks ~ microseconds of disk mechanics).
  std::uint64_t mean_think = 2'000;       ///< source inter-request think time
  std::uint64_t ctrl_overhead = 20;       ///< fork per-op dispatch time
  std::uint64_t seek_base = 1'000;
  std::uint64_t seek_per_cylinder = 10;
  std::uint64_t rotation_max = 8'000;
  std::uint64_t transfer_per_sector = 25;

  /// Serialize disk service through a busy-until queue (order-dependent
  /// completions: pushes disks toward aggressive cancellation).
  bool serialize_disks = false;
  /// Serialize fork dispatch (default on; switching it off makes forks
  /// regeneration-friendly, i.e. lazy-leaning).
  bool serialize_fork = true;

  std::uint64_t event_grain_ns = 3'000;
  std::uint64_t seed = 3;

  [[nodiscard]] std::uint32_t total_objects() const noexcept {
    return num_sources + num_forks + num_disks;
  }
};

/// RAID-5 left-symmetric layout: parity disk of a stripe row (rotates
/// backwards with the row index).
[[nodiscard]] std::uint32_t parity_disk_of(std::uint32_t row,
                                           std::uint32_t num_disks) noexcept;

/// Disk holding data unit `unit` of stripe row `row`.
[[nodiscard]] std::uint32_t data_disk_of(std::uint32_t row, std::uint32_t unit,
                                         std::uint32_t num_disks) noexcept;

/// Builds the RAID model (finite workload: terminates on its own).
tw::Model build_model(const RaidConfig& config);

[[nodiscard]] std::uint64_t expected_completed_requests(const RaidConfig& config);

}  // namespace otw::apps::raid
