#include "otw/apps/smmp.hpp"

#include "otw/util/rng.hpp"

namespace otw::apps::smmp {

namespace {

enum MsgType : std::uint32_t {
  kRequest = 0,      // source -> cache
  kResponse = 1,     // cache -> source
  kMemRequest = 2,   // cache -> bus -> bank
  kMemResponse = 3,  // bank -> cache
  kTick = 4,         // source -> source (trace pacing)
};

struct MemMsg {
  std::uint32_t type = kRequest;
  std::uint32_t processor = 0;
  std::uint32_t req_index = 0;
  std::uint32_t address = 0;
  std::uint64_t issued_at = 0;  ///< virtual time the source issued the request
};
static_assert(std::has_unique_object_representations_v<MemMsg>);

/// Stateless mix so decisions depend on the request, not on draw order:
/// a rollback replays identical hit/miss outcomes and identical routing,
/// which is what makes every SMMP object favour lazy cancellation.
std::uint64_t mix(std::uint64_t a, std::uint64_t b, std::uint64_t c) noexcept {
  std::uint64_t s = a * 0x9E3779B97F4A7C15ULL + b * 0xC2B2AE3D27D4EB4FULL + c;
  return util::splitmix64(s);
}

/// Object-id layout: sources [0,P), caches [P,2P), banks [2P,2P+B),
/// buses [2P+B, 2P+B+L).
struct Layout {
  explicit Layout(const SmmpConfig& cfg) : cfg_(cfg) {}

  [[nodiscard]] std::uint32_t sources_per_lp() const {
    return cfg_.num_processors / cfg_.num_lps;
  }
  [[nodiscard]] std::uint32_t banks_per_lp() const {
    return cfg_.memory_banks / cfg_.num_lps;
  }

  [[nodiscard]] tw::ObjectId source_id(std::uint32_t p) const { return p; }
  [[nodiscard]] tw::ObjectId cache_id(std::uint32_t p) const {
    return cfg_.num_processors + p;
  }
  [[nodiscard]] tw::ObjectId bank_id(std::uint32_t b) const {
    return 2 * cfg_.num_processors + b;
  }
  [[nodiscard]] tw::ObjectId bus_id(tw::LpId lp) const {
    return 2 * cfg_.num_processors + cfg_.memory_banks + lp;
  }

  [[nodiscard]] tw::LpId lp_of_processor(std::uint32_t p) const {
    return p / sources_per_lp();
  }
  [[nodiscard]] tw::LpId lp_of_bank(std::uint32_t b) const {
    return b / banks_per_lp();
  }

  /// Address generation with locality: with probability local_bank_fraction
  /// the bank is on the processor's own LP.
  [[nodiscard]] std::uint32_t make_address(std::uint32_t p, std::uint32_t req,
                                           std::uint64_t seed) const {
    const std::uint64_t h = mix(seed, (std::uint64_t{p} << 32) | req, 0x51);
    const bool local =
        static_cast<double>(h >> 11) * 0x1.0p-53 < cfg_.local_bank_fraction;
    const std::uint64_t h2 = mix(seed, (std::uint64_t{p} << 32) | req, 0x52);
    std::uint32_t bank = 0;
    if (local) {
      const tw::LpId lp = lp_of_processor(p);
      bank = lp * banks_per_lp() +
             static_cast<std::uint32_t>(h2 % banks_per_lp());
    } else {
      bank = static_cast<std::uint32_t>(h2 % cfg_.memory_banks);
    }
    // Fold a page number above the bank bits: address % banks == bank.
    const auto page = static_cast<std::uint32_t>((h2 >> 32) & 0xFFFF);
    return bank + cfg_.memory_banks * page;
  }

  [[nodiscard]] bool is_hit(std::uint32_t p, std::uint32_t req,
                            std::uint32_t address, std::uint64_t seed) const {
    const std::uint64_t h =
        mix(seed ^ address, (std::uint64_t{p} << 32) | req, 0x53);
    return static_cast<double>(h >> 11) * 0x1.0p-53 < cfg_.cache_hit_ratio;
  }

  SmmpConfig cfg_;
};

struct SourceState {
  std::uint32_t issued = 0;
  std::uint32_t completed = 0;
  std::uint64_t latency_sum = 0;
  std::uint64_t checksum = 0;
};
static_assert(std::has_unique_object_representations_v<SourceState>);

/// Open-loop "test vector" player: the paper's request tokens carry their
/// creation times, i.e. the trace is issued on a timer, not gated on
/// responses (consistent with memory accepting any number of pending
/// requests). Responses are consumed for latency accounting only.
class Source final : public tw::SimulationObject {
 public:
  Source(const SmmpConfig& cfg, std::uint32_t p) : layout_(cfg), p_(p) {}

  [[nodiscard]] std::unique_ptr<tw::ObjectState> initial_state() const override {
    return std::make_unique<tw::PodState<SourceState>>();
  }

  void initialize(tw::ObjectContext& ctx) override {
    if (layout_.cfg_.requests_per_processor > 0) {
      schedule_tick(ctx, 0);
    }
  }

  void process_event(tw::ObjectContext& ctx, const tw::Event& event) override {
    ctx.charge(layout_.cfg_.event_grain_ns);
    auto& state = ctx.state_as<SourceState>();
    const auto msg = event.payload.as<MemMsg>();
    switch (msg.type) {
      case kTick: {
        MemMsg req;
        req.type = kRequest;
        req.processor = p_;
        req.req_index = state.issued;
        req.address = layout_.make_address(p_, state.issued, layout_.cfg_.seed);
        req.issued_at = ctx.now().ticks() + 1;
        ++state.issued;
        ctx.send_pod(layout_.cache_id(p_), 1, req);
        if (state.issued < layout_.cfg_.requests_per_processor) {
          schedule_tick(ctx, state.issued);
        }
        break;
      }
      case kResponse:
        ++state.completed;
        state.latency_sum += ctx.now().ticks() - msg.issued_at;
        state.checksum = mix(state.checksum, msg.address, ctx.now().ticks());
        break;
      default:
        OTW_REQUIRE_MSG(false, "unexpected message at source");
    }
  }

  [[nodiscard]] const char* kind() const noexcept override { return "source"; }

 private:
  void schedule_tick(tw::ObjectContext& ctx, std::uint32_t index) {
    // Deterministic jittered cadence around think_time (stateless draw so
    // re-execution is identical).
    const std::uint64_t jitter =
        mix(layout_.cfg_.seed, (std::uint64_t{p_} << 32) | index, 0x71) %
        (layout_.cfg_.think_time + 1);
    MemMsg tick;
    tick.type = kTick;
    tick.processor = p_;
    tick.req_index = index;
    ctx.send_pod(layout_.source_id(p_),
                 1 + layout_.cfg_.think_time / 2 + jitter, tick);
  }

  Layout layout_;
  std::uint32_t p_;
};

struct CounterState {
  std::uint64_t handled = 0;
  std::uint64_t hits = 0;
  std::uint64_t checksum = 0;
};
static_assert(std::has_unique_object_representations_v<CounterState>);

class Cache final : public tw::SimulationObject {
 public:
  Cache(const SmmpConfig& cfg, std::uint32_t p) : layout_(cfg), p_(p) {}

  [[nodiscard]] std::unique_ptr<tw::ObjectState> initial_state() const override {
    return std::make_unique<tw::PodState<CounterState>>();
  }

  void process_event(tw::ObjectContext& ctx, const tw::Event& event) override {
    ctx.charge(layout_.cfg_.event_grain_ns);
    auto& state = ctx.state_as<CounterState>();
    auto msg = event.payload.as<MemMsg>();
    ++state.handled;
    state.checksum = mix(state.checksum, msg.address, msg.type);

    switch (msg.type) {
      case kRequest:
        if (layout_.is_hit(msg.processor, msg.req_index, msg.address,
                           layout_.cfg_.seed)) {
          ++state.hits;
          msg.type = kResponse;
          ctx.send_pod(layout_.source_id(p_), layout_.cfg_.cache_time, msg);
        } else {
          msg.type = kMemRequest;
          ctx.send_pod(layout_.bus_id(layout_.lp_of_processor(p_)),
                       layout_.cfg_.cache_time, msg);
        }
        break;
      case kMemResponse:
        msg.type = kResponse;
        ctx.send_pod(layout_.source_id(p_), layout_.cfg_.link_delay, msg);
        break;
      default:
        OTW_REQUIRE_MSG(false, "unexpected message at cache");
    }
  }

  [[nodiscard]] const char* kind() const noexcept override { return "cache"; }

 private:
  Layout layout_;
  std::uint32_t p_;
};

class Bus final : public tw::SimulationObject {
 public:
  explicit Bus(const SmmpConfig& cfg) : layout_(cfg) {}

  [[nodiscard]] std::unique_ptr<tw::ObjectState> initial_state() const override {
    return std::make_unique<tw::PodState<CounterState>>();
  }

  void process_event(tw::ObjectContext& ctx, const tw::Event& event) override {
    ctx.charge(layout_.cfg_.event_grain_ns);
    auto& state = ctx.state_as<CounterState>();
    const auto msg = event.payload.as<MemMsg>();
    OTW_ASSERT(msg.type == kMemRequest);
    ++state.handled;
    state.checksum = mix(state.checksum, msg.address, 0xB5);
    const std::uint32_t bank = msg.address % layout_.cfg_.memory_banks;
    ctx.send_pod(layout_.bank_id(bank), layout_.cfg_.link_delay, msg);
  }

  [[nodiscard]] const char* kind() const noexcept override { return "bus"; }

 private:
  Layout layout_;
};

class Bank final : public tw::SimulationObject {
 public:
  explicit Bank(const SmmpConfig& cfg) : layout_(cfg) {}

  [[nodiscard]] std::unique_ptr<tw::ObjectState> initial_state() const override {
    return std::make_unique<tw::PodState<CounterState>>();
  }

  void process_event(tw::ObjectContext& ctx, const tw::Event& event) override {
    ctx.charge(layout_.cfg_.event_grain_ns);
    auto& state = ctx.state_as<CounterState>();
    auto msg = event.payload.as<MemMsg>();
    OTW_ASSERT(msg.type == kMemRequest);
    ++state.handled;
    state.checksum = mix(state.checksum, msg.address, 0xE7);
    // Memory is deliberately not serialized (multiple pending requests are
    // allowed, as in the paper's model): service time is per-request.
    msg.type = kMemResponse;
    ctx.send_pod(layout_.cache_id(msg.processor), layout_.cfg_.memory_time, msg);
  }

  [[nodiscard]] const char* kind() const noexcept override { return "bank"; }

 private:
  Layout layout_;
};

}  // namespace

tw::Model build_model(const SmmpConfig& config) {
  OTW_REQUIRE(config.num_lps >= 1);
  OTW_REQUIRE(config.num_processors >= 1);
  OTW_REQUIRE_MSG(config.num_processors % config.num_lps == 0,
                  "processors must divide evenly across LPs");
  OTW_REQUIRE_MSG(config.memory_banks % config.num_lps == 0,
                  "banks must divide evenly across LPs");
  OTW_REQUIRE(config.cache_hit_ratio >= 0.0 && config.cache_hit_ratio <= 1.0);
  OTW_REQUIRE(config.cache_time >= 1 && config.memory_time >= 1 &&
              config.link_delay >= 1);

  const Layout layout(config);
  tw::Model model;
  // Model::add assigns ids sequentially; the Layout id scheme must match.
  for (std::uint32_t p = 0; p < config.num_processors; ++p) {
    model.add(layout.lp_of_processor(p),
              [config, p] { return std::make_unique<Source>(config, p); });
  }
  for (std::uint32_t p = 0; p < config.num_processors; ++p) {
    model.add(layout.lp_of_processor(p),
              [config, p] { return std::make_unique<Cache>(config, p); });
  }
  for (std::uint32_t b = 0; b < config.memory_banks; ++b) {
    model.add(layout.lp_of_bank(b),
              [config] { return std::make_unique<Bank>(config); });
  }
  for (tw::LpId lp = 0; lp < config.num_lps; ++lp) {
    model.add(lp, [config] { return std::make_unique<Bus>(config); });
  }
  OTW_ASSERT(model.objects.size() == config.total_objects());
  return model;
}

std::uint64_t expected_completed_requests(const SmmpConfig& config) {
  return std::uint64_t{config.num_processors} * config.requests_per_processor;
}

}  // namespace otw::apps::smmp
