// SMMP: shared-memory multiprocessor model (paper Section 7).
//
// Each processor node has a request source and a private cache; caches miss
// into shared memory. As in the paper's (self-described "somewhat contrived")
// model, main memory is not serialized: a bank can have any number of
// requests pending. The generator partitions the model so that most traffic
// is intra-LP (source <-> cache <-> local banks) with a configurable
// fraction of accesses striking banks owned by other LPs.
//
// Default geometry reproduces the paper's configuration: 16 processors in
// 4 LPs, 100 simulation objects (per LP: 4 sources + 4 caches + 16 memory
// banks + 1 memory bus), 10ns cache, 100ns memory, 90% hit ratio.
//
// Object kinds and their cancellation character: every SMMP object computes
// its outputs from the triggering request alone (hit/miss is a hash of the
// address, not a draw from sequential RNG state), so re-execution after a
// rollback regenerates identical messages: all objects favour lazy
// cancellation, matching the paper's Figure 7 observation.
#pragma once

#include <cstdint>

#include "otw/tw/kernel.hpp"

namespace otw::apps::smmp {

struct SmmpConfig {
  std::uint32_t num_processors = 16;
  tw::LpId num_lps = 4;
  std::uint32_t memory_banks = 64;  ///< total, striped across LPs
  /// Requests ("test vectors") each processor issues.
  std::uint32_t requests_per_processor = 1000;
  std::uint64_t cache_time = 10;    ///< virtual ns
  std::uint64_t memory_time = 100;  ///< virtual ns
  double cache_hit_ratio = 0.90;
  /// Fraction of misses that touch banks on the processor's own LP.
  double local_bank_fraction = 0.8;
  /// Mean virtual ns between consecutive trace requests of one processor.
  std::uint64_t think_time = 100;
  /// Virtual ns per inter-object link hop.
  std::uint64_t link_delay = 5;
  /// Modeled host computation per event, nanoseconds.
  std::uint64_t event_grain_ns = 3'000;
  std::uint64_t seed = 2;

  [[nodiscard]] std::uint32_t total_objects() const noexcept {
    return 2 * num_processors + memory_banks + num_lps;
  }
};

/// Builds the SMMP model (finite workload: terminates on its own).
tw::Model build_model(const SmmpConfig& config);

/// Aggregate end-of-run figures derived from a run's digest-bearing states
/// are validated in tests; this helper exposes the expected total number of
/// completed requests.
[[nodiscard]] std::uint64_t expected_completed_requests(const SmmpConfig& config);

}  // namespace otw::apps::smmp
