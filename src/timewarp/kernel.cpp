#include "otw/tw/kernel.hpp"

#include <algorithm>
#include <chrono>
#include <string>

#include "kernel_internal.hpp"
#include "otw/obs/flight.hpp"
#include "otw/tw/partition.hpp"
#include "otw/util/assert.hpp"
#include "otw/util/net.hpp"

namespace otw::tw {

namespace {

using WallClock = std::chrono::steady_clock;

std::uint64_t elapsed_ns(WallClock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(WallClock::now() - start)
          .count());
}

RunResult run_simulated_now_impl(const Model& model, const KernelConfig& config,
                                 const platform::SimulatedNowConfig& now_config) {
  const auto start = WallClock::now();
  detail::Assembly assembly = detail::assemble(model, config);
  auto live_server = detail::start_live_server(config, assembly);
  platform::SimulatedNowEngine engine(now_config);
  const platform::EngineRunResult engine_result = engine.run(assembly.runners);
  RunResult result =
      detail::collect(model, assembly, engine_result, elapsed_ns(start));
  detail::finish_live_server(live_server, result);
  return result;
}

RunResult run_threaded_impl(const Model& model, const KernelConfig& config,
                            const platform::ThreadedConfig& threaded_config) {
  const auto start = WallClock::now();
  detail::Assembly assembly = detail::assemble(model, config);
  auto live_server = detail::start_live_server(config, assembly);
  platform::ThreadedConfig engine_config = threaded_config;
  if (config.observability.tracing &&
      engine_config.scheduler_trace_capacity == 0) {
    engine_config.scheduler_trace_capacity = config.observability.ring_capacity;
  }
  engine_config.live = assembly.live.get();
  platform::ThreadedEngine engine(engine_config);
  const platform::EngineRunResult engine_result = engine.run(assembly.runners);
  RunResult result =
      detail::collect(model, assembly, engine_result, elapsed_ns(start));
  detail::finish_live_server(live_server, result);
  return result;
}

/// Ground-truth kernel adapted to the common result shape. Only what a
/// sequential execution can know is filled: digests, committed == processed
/// event counts, final virtual time and wall time.
RunResult run_sequential_impl(const Model& model, const KernelConfig& config) {
  const SequentialResult seq =
      run_sequential(model, config.end_time, config.engine.queue);
  RunResult result;
  result.digests = seq.digests;
  result.wall_time_ns = seq.wall_time_ns;
  result.execution_time_ns = seq.wall_time_ns;
  result.stats.final_gvt = seq.final_time;
  result.stats.objects.resize(model.objects.size());
  for (ObjectId id = 0; id < seq.events_per_object.size(); ++id) {
    result.stats.objects[id].events_processed = seq.events_per_object[id];
    result.stats.objects[id].events_committed = seq.events_per_object[id];
  }
  return result;
}

}  // namespace

namespace detail {

Assembly assemble(const Model& model, const KernelConfig& config) {
  OTW_REQUIRE_MSG(!model.objects.empty(), "model has no objects");
  OTW_REQUIRE_MSG(config.num_lps >= model.required_lps(),
                  "config.num_lps is smaller than the model's LP placement");

  std::vector<LpId> object_to_lp;
  object_to_lp.reserve(model.objects.size());
  for (const auto& spec : model.objects) {
    object_to_lp.push_back(spec.lp);
  }

  Assembly assembly;
  for (LpId lp = 0; lp < config.num_lps; ++lp) {
    std::vector<std::pair<ObjectId, std::unique_ptr<SimulationObject>>> local;
    for (ObjectId id = 0; id < model.objects.size(); ++id) {
      if (model.objects[id].lp == lp) {
        OTW_REQUIRE(model.objects[id].factory != nullptr);
        local.emplace_back(id, model.objects[id].factory());
      }
    }
    assembly.lps.push_back(std::make_unique<LogicalProcess>(
        lp, config, object_to_lp, std::move(local)));
  }
  // One shared recycler for batch buffers: the receiving LP's message
  // destructor returns the vector the sending LP allocated. Each LP keeps a
  // shared_ptr so the pool outlives every in-flight message.
  auto batch_pool = std::make_shared<util::BufferPool<Event>>();
  for (const auto& lp : assembly.lps) {
    lp->set_batch_pool(batch_pool);
  }
  // Live plane: one registry cell bank for the whole assembly. In the
  // distributed engine this allocation happens pre-fork, so every shard
  // inherits a private copy and publishes into its own cells.
  if (config.observability.live_enabled() &&
      obs::live::LiveMetricsRegistry::compiled_in()) {
    assembly.live =
        std::make_shared<obs::live::LiveMetricsRegistry>(config.num_lps);
    if (config.observability.live.histograms) {
      // Bank layout is shard-count dependent; size it for the engine that
      // will run (in-process engines are a single "shard 0").
      assembly.live->enable_hists(
          config.engine.kind == EngineKind::Distributed
              ? std::max<std::uint32_t>(config.engine.num_shards, 1)
              : 1);
    }
    for (const auto& lp : assembly.lps) {
      lp->set_live(assembly.live.get());
    }
  }
  assembly.runners.reserve(assembly.lps.size());
  for (const auto& lp : assembly.lps) {
    assembly.runners.push_back(lp.get());
  }
  return assembly;
}

RunResult collect(const Model& model, Assembly& assembly,
                  const platform::EngineRunResult& engine_result,
                  std::uint64_t wall_ns) {
  RunResult result;
  result.execution_time_ns = engine_result.execution_time_ns;
  result.wall_time_ns = wall_ns;
  result.physical_messages = engine_result.physical_messages;
  result.wire_bytes = engine_result.wire_bytes;

  result.scheduler = engine_result.scheduler;
  result.dist = engine_result.dist;
  result.hists = engine_result.hists;
  result.shard_clocks = engine_result.shard_clocks;
  if (result.hists.empty() && assembly.live != nullptr &&
      assembly.live->hists() != nullptr) {
    // In-process engines record straight into the registry bank; harvest it
    // here as the single shard 0.
    result.hists = assembly.live->hists()->snapshot(0);
  }
  result.stats.objects.resize(model.objects.size());
  result.digests.resize(model.objects.size(), 0);
  result.telemetry.objects.resize(model.objects.size());
  for (const auto& lp : assembly.lps) {
    OTW_REQUIRE_MSG(lp->done(), "engine returned before all LPs finished");
    result.stats.lps.push_back(lp->snapshot_lp_stats());
    result.stats.final_gvt = lp->gvt();
    obs::Recorder& recorder = lp->recorder();
    if (recorder.tracing()) {
      result.trace.lps.push_back(recorder.drain_trace());
    }
    if (recorder.profiling()) {
      result.lp_phases.push_back(recorder.phase_totals());
    }
    if (!lp->trace().empty()) {
      LpTrace trace;
      trace.lp = static_cast<std::uint32_t>(result.telemetry.lps.size());
      trace.samples = lp->trace();
      result.telemetry.lps.push_back(std::move(trace));
    }
    for (const auto& runtime : lp->runtimes()) {
      result.stats.objects[runtime->self()] = runtime->snapshot_stats();
      result.digests[runtime->self()] = runtime->state_digest();
      result.telemetry.objects[runtime->self()] =
          ObjectTrace{runtime->self(), runtime->trace()};
    }
  }
  // Scheduler worker tracks ride in the same RunTrace, on track ids past the
  // LP range. They must come AFTER the LP logs: the analysis module treats
  // the first num_lps entries as the LPs (indexed by position).
  const auto num_lps = static_cast<std::uint32_t>(assembly.lps.size());
  for (const obs::LpTraceLog& log : engine_result.worker_traces) {
    obs::LpTraceLog shifted = log;
    shifted.lp = num_lps + log.lp;
    result.trace.lps.push_back(std::move(shifted));
  }

  if (result.telemetry.lps.empty()) {
    bool any = false;
    for (const auto& trace : result.telemetry.objects) {
      any = any || !trace.samples.empty();
    }
    if (!any) {
      result.telemetry.objects.clear();
    }
  }
  return result;
}

std::unique_ptr<obs::live::LiveServer> start_live_server(
    const KernelConfig& config, const Assembly& assembly) {
  if (!assembly.live) {
    return nullptr;
  }
  obs::live::LiveServerConfig server_config;
  server_config.port = config.observability.live_port;
  server_config.monitor_period_ms = config.observability.live.monitor_period_ms;
  server_config.watchdog = config.observability.live.watchdog;
  server_config.on_endpoint = config.observability.live.on_endpoint;
  // Flight recorder (in-process engines): fed from the snapshot pull and
  // the watchdog transition stream; dumps on every raised rule. Owned by
  // the closures so it lives exactly as long as the server.
  std::shared_ptr<obs::flight::FlightRecorder> flight;
  if (config.observability.flight.enabled) {
    obs::flight::FlightConfig flight_config;
    flight_config.enabled = true;
    flight_config.dir = config.observability.flight.dir;
    flight_config.snapshot_ring = config.observability.flight.snapshot_ring;
    flight_config.frame_ring = config.observability.flight.frame_ring;
    flight = std::make_shared<obs::flight::FlightRecorder>(flight_config,
                                                           /*num_shards=*/1);
    server_config.on_health = [flight](const obs::live::HealthEvent& event) {
      flight->on_health(event);
    };
  }
  std::shared_ptr<obs::live::LiveMetricsRegistry> registry = assembly.live;
  auto server = std::make_unique<obs::live::LiveServer>(
      std::move(server_config), [registry, flight] {
        obs::live::LiveSnapshot snap =
            registry->snapshot(/*shard=*/0, util::net::mono_ns());
        if (flight != nullptr) {
          flight->on_snapshot(snap);
        }
        return std::vector<obs::live::LiveSnapshot>{std::move(snap)};
      });
  server->start();
  return server;
}

void finish_live_server(std::unique_ptr<obs::live::LiveServer>& server,
                        RunResult& result) {
  if (!server) {
    return;
  }
  server->stop();
  result.health = server->health();
  server.reset();
}

void require_valid(const KernelConfig& config) {
  const std::vector<std::string> errors = config.validate();
  if (errors.empty()) {
    return;
  }
  std::string joined = "invalid KernelConfig:";
  for (const std::string& error : errors) {
    joined += "\n  - " + error;
  }
  OTW_REQUIRE_MSG(false, joined);
}

}  // namespace detail

std::vector<std::string> KernelConfig::validate() const {
  std::vector<std::string> errors;
  const auto fail = [&errors](std::string message) {
    errors.push_back(std::move(message));
  };

  if (num_lps == 0) {
    fail("num_lps must be >= 1");
  }
  if (batch_size == 0) {
    fail("batch_size must be >= 1 (an LP could never process an event)");
  }
  if (gvt_period_events == 0) {
    fail("gvt_period_events must be >= 1 (GVT would never start)");
  }

  // --- state saving ---
  if (checkpoint.interval == 0) {
    fail("checkpoint.interval must be >= 1 (chi = 1 saves after every "
         "event; 0 would never save at all)");
  }
  if (checkpoint.full_snapshot_interval == 0) {
    fail("checkpoint.full_snapshot_interval must be >= 1 (incremental "
         "chains need a full snapshot to terminate against)");
  }
  if (checkpoint.dynamic) {
    const auto& chi = checkpoint.control;
    if (chi.control_period_events == 0) {
      fail("checkpoint.control.control_period_events must be >= 1 "
           "(the chi controller would never tick)");
    }
    if (chi.min_interval == 0) {
      fail("checkpoint.control.min_interval must be >= 1");
    }
    if (chi.min_interval > chi.max_interval) {
      fail("checkpoint.control: min_interval exceeds max_interval");
    }
  }
  const auto& cancel = runtime.cancellation;
  if (cancel.control_period_comparisons == 0) {
    fail("runtime.cancellation.control_period_comparisons must be >= 1");
  }
  if (cancel.a2l_threshold < cancel.l2a_threshold) {
    fail("runtime.cancellation: a2l_threshold below l2a_threshold (the "
         "hysteresis band is inverted; the mode would oscillate)");
  }
  if (cancel.a2l_threshold < 0.0 || cancel.a2l_threshold > 1.0 ||
      cancel.l2a_threshold < 0.0 || cancel.l2a_threshold > 1.0) {
    fail("runtime.cancellation thresholds must lie in [0, 1] (they are Hit "
         "Ratio bounds)");
  }

  // --- optimism ---
  if (optimism.mode != Optimism::Mode::Unbounded && optimism.window == 0) {
    fail("optimism.window must be >= 1 tick under a bounded mode (a zero "
         "window stalls every LP at GVT)");
  }
  if (optimism.mode == Optimism::Mode::Adaptive) {
    const auto& oc = optimism.control;
    if (oc.control_period_events == 0) {
      fail("optimism.control.control_period_events must be >= 1");
    }
    if (oc.min_window > oc.max_window) {
      fail("optimism.control: min_window exceeds max_window");
    }
    if (oc.grow_factor <= 1.0) {
      fail("optimism.control.grow_factor must be > 1 (the window could "
           "never widen)");
    }
    if (oc.shrink_factor <= 0.0 || oc.shrink_factor >= 1.0) {
      fail("optimism.control.shrink_factor must lie in (0, 1)");
    }
  }

  // --- memory pressure ---
  if (memory.budget_bytes > 0) {
    const auto& mc = memory.control;
    if (mc.control_period_events == 0) {
      fail("memory.control.control_period_events must be >= 1");
    }
    if (mc.high_watermark <= mc.low_watermark) {
      fail("memory.control: high_watermark must exceed low_watermark (the "
           "pressure hysteresis band is inverted)");
    }
    if (mc.high_watermark <= 0.0 || mc.high_watermark > 1.0 ||
        mc.low_watermark < 0.0 || mc.low_watermark >= 1.0) {
      fail("memory.control watermarks must lie in (0, 1] / [0, 1) "
           "respectively (they are budget fractions)");
    }
    if (mc.emergency_window == 0) {
      fail("memory.control.emergency_window must be >= 1 tick (held sends "
           "could never flush)");
    }
  }

  // --- telemetry ---
  if (telemetry.enabled && telemetry.sample_period_events == 0) {
    fail("telemetry.sample_period_events must be >= 1 when telemetry is on");
  }

  // --- live introspection plane ---
  if (observability.live_enabled()) {
    if (observability.live.monitor_period_ms == 0) {
      fail("observability.live.monitor_period_ms must be >= 1 (the watchdog "
           "would spin)");
    }
    if (observability.live.stats_period_ms == 0) {
      fail("observability.live.stats_period_ms must be >= 1 (shards would "
           "flood the coordinator with STATS frames)");
    }
    const auto& wd = observability.live.watchdog;
    if (wd.gvt_stall_feeds == 0 || wd.occupancy_feeds == 0) {
      fail("observability.live.watchdog feed counts must be >= 1 (a rule "
           "would raise on the first sample)");
    }
    if (wd.rollback_ratio <= 0.0) {
      fail("observability.live.watchdog.rollback_ratio must be > 0");
    }
    if (wd.rollback_min_events == 0) {
      fail("observability.live.watchdog.rollback_min_events must be >= 1 "
           "(an empty delta window would trigger the storm rule)");
    }
    if (wd.occupancy_fraction <= 0.0 || wd.occupancy_fraction > 1.0) {
      fail("observability.live.watchdog.occupancy_fraction must lie in "
           "(0, 1] (it is a budget fraction)");
    }
    if (wd.shard_silent_ns == 0) {
      fail("observability.live.watchdog.shard_silent_ns must be >= 1");
    }
  }

  // --- flight recorder ---
  if (observability.flight.enabled) {
    if (!observability.live_enabled()) {
      fail("observability.flight.enabled requires the live plane (its "
           "evidence rings are fed from live snapshots and the watchdog)");
    }
    if (observability.flight.dir.empty()) {
      fail("observability.flight.dir must be non-empty (dump destination)");
    }
    if (observability.flight.snapshot_ring == 0) {
      fail("observability.flight.snapshot_ring must be >= 1 (a dump without "
           "snapshots names no evidence)");
    }
  }

  // --- engine sizing ---
  switch (engine.queue) {
    case QueueKind::Multiset:
    case QueueKind::SkipList:
    case QueueKind::LadderQueue:
      break;
    default:
      fail("engine.queue is not a recognized QueueKind (valid: Multiset, "
           "SkipList, LadderQueue)");
  }
  if (engine.kind == EngineKind::Threaded && engine.num_workers > 512) {
    fail("engine.num_workers exceeds 512 (use 0 for one per hardware "
         "thread)");
  }
  if (engine.kind == EngineKind::Distributed) {
    if (engine.num_shards == 0) {
      fail("engine.num_shards must be >= 1");
    }
    if (engine.num_shards > kMaxShards) {
      fail("engine.num_shards exceeds kMaxShards (" +
           std::to_string(kMaxShards) + " worker processes)");
    }
    if (num_lps > 0 && engine.num_shards > num_lps) {
      fail("engine.num_shards exceeds num_lps (a worker process would own "
           "no LPs)");
    }
  }

  // --- on-line migration ---
  if (migration.enabled) {
    if (engine.kind != EngineKind::Distributed) {
      fail("migration.enabled requires EngineKind::Distributed (only the "
           "sharded engine has shards to move LPs between)");
    }
    if (engine.topology != platform::Topology::Mesh) {
      fail("migration.enabled requires the Mesh topology (MIGRATE frames "
           "travel the shard-to-shard peer links)");
    }
    if (engine.num_shards < 2) {
      fail("migration.enabled requires engine.num_shards >= 2");
    }
    if (migration.period_ms == 0) {
      fail("migration.period_ms must be >= 1 (the controller would spin)");
    }
    const auto& lb = migration.control;
    if (lb.imbalance_threshold <= 1.0) {
      fail("migration.control.imbalance_threshold must be > 1 (a hot/cold "
           "ratio of 1 is perfect balance)");
    }
    if (lb.dead_zone < 0.0) {
      fail("migration.control.dead_zone must be >= 0");
    }
    for (const auto& [lp, shard] : migration.forced) {
      if (lp >= num_lps) {
        fail("migration.forced names LP " + std::to_string(lp) +
             " outside num_lps");
      }
      if (shard >= engine.num_shards) {
        fail("migration.forced names shard " + std::to_string(shard) +
             " outside num_shards");
      }
    }
  }

  // --- fault tolerance ---
  if (fault.enabled) {
    if (engine.kind != EngineKind::Distributed) {
      fail("fault.enabled requires EngineKind::Distributed (only worker "
           "processes can die and be re-forked)");
    }
    if (engine.topology != platform::Topology::Mesh) {
      fail("fault.enabled requires the Mesh topology (recovery re-dials the "
           "shard-to-shard peer links)");
    }
    if (engine.num_shards < 2) {
      fail("fault.enabled requires engine.num_shards >= 2 (with one shard "
           "there is no surviving side to recover toward)");
    }
    if (migration.enabled) {
      fail("fault.enabled and migration.enabled are mutually exclusive (a "
           "snapshot would have to version the owner map; keep placement "
           "fixed so a replacement inherits a known shard)");
    }
    if (fault.recovery_budget_ms == 0) {
      fail("fault.recovery_budget_ms must be >= 1 (the snapshot scheduler "
           "solves for a gap that fits this budget)");
    }
    if (fault.max_recoveries == 0) {
      fail("fault.max_recoveries must be >= 1 (0 means the first death is "
           "fatal — just leave fault tolerance off)");
    }
    if (fault.max_snapshot_bytes > 0 && fault.spill_dir.empty() &&
        fault.max_snapshot_bytes < 1024) {
      fail("fault.max_snapshot_bytes below 1 KiB with no spill_dir would "
           "refuse every epoch (raise the cap or configure spill_dir)");
    }
    const auto& sc = fault.control;
    if (sc.min_gap_ms == 0) {
      fail("fault.control.min_gap_ms must be >= 1 (back-to-back epochs "
           "would stop the world continuously)");
    }
    if (sc.min_gap_ms > sc.max_gap_ms) {
      fail("fault.control: min_gap_ms exceeds max_gap_ms");
    }
    if (sc.overhead_factor <= 0.0) {
      fail("fault.control.overhead_factor must be > 0 (it floors the gap "
           "at overhead_factor * average snapshot cost)");
    }
    if (sc.restore_factor <= 0.0) {
      fail("fault.control.restore_factor must be > 0 (restore time is "
           "estimated as restore_factor * serialize cost)");
    }
    if (fault.inject_kill_shard >= 0 &&
        static_cast<std::uint32_t>(fault.inject_kill_shard) >=
            engine.num_shards) {
      fail("fault.inject_kill_shard names a shard outside num_shards");
    }
  }
  return errors;
}

LpId Model::required_lps() const noexcept {
  LpId highest = 0;
  for (const auto& spec : objects) {
    highest = std::max(highest, spec.lp);
  }
  return highest + 1;
}

double RunResult::committed_events_per_sec() const noexcept {
  if (execution_time_ns == 0) {
    return 0.0;
  }
  return static_cast<double>(stats.total_committed()) /
         (static_cast<double>(execution_time_ns) / 1e9);
}

RunResult run(const Model& model, const KernelConfig& config,
              const EngineTuning& tuning) {
  detail::require_valid(config);
  switch (config.engine.kind) {
    case EngineKind::Sequential:
      return run_sequential_impl(model, config);
    case EngineKind::SimulatedNow:
      return run_simulated_now_impl(model, config, tuning.simulated_now);
    case EngineKind::Threaded: {
      platform::ThreadedConfig threaded = tuning.threaded;
      if (config.engine.num_workers > 0) {
        threaded.num_workers = config.engine.num_workers;
      }
      return run_threaded_impl(model, config, threaded);
    }
    case EngineKind::Distributed: {
      platform::DistributedConfig dist = tuning.distributed;
      dist.num_shards = config.engine.num_shards;
      dist.topology = config.engine.topology;
      if (dist.placement.empty()) {
        dist.placement = partition_lps(model, config.num_lps,
                                       config.engine.num_shards,
                                       config.engine.partition);
      }
      return detail::run_distributed_impl(model, config, dist);
    }
  }
  OTW_REQUIRE_MSG(false, "unknown engine kind");
}

}  // namespace otw::tw
