#include "otw/tw/kernel.hpp"

#include <chrono>

#include "otw/util/assert.hpp"

namespace otw::tw {

namespace {

using WallClock = std::chrono::steady_clock;

std::uint64_t elapsed_ns(WallClock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(WallClock::now() - start)
          .count());
}

/// Instantiates the LPs for one run of the model.
struct Assembly {
  std::vector<std::unique_ptr<LogicalProcess>> lps;
  std::vector<platform::LpRunner*> runners;
};

Assembly assemble(const Model& model, const KernelConfig& config) {
  OTW_REQUIRE_MSG(!model.objects.empty(), "model has no objects");
  OTW_REQUIRE_MSG(config.num_lps >= model.required_lps(),
                  "config.num_lps is smaller than the model's LP placement");

  std::vector<LpId> object_to_lp;
  object_to_lp.reserve(model.objects.size());
  for (const auto& spec : model.objects) {
    object_to_lp.push_back(spec.lp);
  }

  Assembly assembly;
  for (LpId lp = 0; lp < config.num_lps; ++lp) {
    std::vector<std::pair<ObjectId, std::unique_ptr<SimulationObject>>> local;
    for (ObjectId id = 0; id < model.objects.size(); ++id) {
      if (model.objects[id].lp == lp) {
        OTW_REQUIRE(model.objects[id].factory != nullptr);
        local.emplace_back(id, model.objects[id].factory());
      }
    }
    assembly.lps.push_back(std::make_unique<LogicalProcess>(
        lp, config, object_to_lp, std::move(local)));
  }
  // One shared recycler for batch buffers: the receiving LP's message
  // destructor returns the vector the sending LP allocated. Each LP keeps a
  // shared_ptr so the pool outlives every in-flight message.
  auto batch_pool = std::make_shared<util::BufferPool<Event>>();
  for (const auto& lp : assembly.lps) {
    lp->set_batch_pool(batch_pool);
  }
  assembly.runners.reserve(assembly.lps.size());
  for (const auto& lp : assembly.lps) {
    assembly.runners.push_back(lp.get());
  }
  return assembly;
}

RunResult collect(const Model& model, Assembly& assembly,
                  const platform::EngineRunResult& engine_result,
                  std::uint64_t wall_ns) {
  RunResult result;
  result.execution_time_ns = engine_result.execution_time_ns;
  result.wall_time_ns = wall_ns;
  result.physical_messages = engine_result.physical_messages;
  result.wire_bytes = engine_result.wire_bytes;

  result.scheduler = engine_result.scheduler;
  result.stats.objects.resize(model.objects.size());
  result.digests.resize(model.objects.size(), 0);
  result.telemetry.objects.resize(model.objects.size());
  for (const auto& lp : assembly.lps) {
    OTW_REQUIRE_MSG(lp->done(), "engine returned before all LPs finished");
    result.stats.lps.push_back(lp->snapshot_lp_stats());
    result.stats.final_gvt = lp->gvt();
    obs::Recorder& recorder = lp->recorder();
    if (recorder.tracing()) {
      result.trace.lps.push_back(recorder.drain_trace());
    }
    if (recorder.profiling()) {
      result.lp_phases.push_back(recorder.phase_totals());
    }
    if (!lp->trace().empty()) {
      LpTrace trace;
      trace.lp = static_cast<std::uint32_t>(result.telemetry.lps.size());
      trace.samples = lp->trace();
      result.telemetry.lps.push_back(std::move(trace));
    }
    for (const auto& runtime : lp->runtimes()) {
      result.stats.objects[runtime->self()] = runtime->snapshot_stats();
      result.digests[runtime->self()] = runtime->state_digest();
      result.telemetry.objects[runtime->self()] =
          ObjectTrace{runtime->self(), runtime->trace()};
    }
  }
  // Scheduler worker tracks ride in the same RunTrace, on track ids past the
  // LP range. They must come AFTER the LP logs: the analysis module treats
  // the first num_lps entries as the LPs (indexed by position).
  const auto num_lps = static_cast<std::uint32_t>(assembly.lps.size());
  for (const obs::LpTraceLog& log : engine_result.worker_traces) {
    obs::LpTraceLog shifted = log;
    shifted.lp = num_lps + log.lp;
    result.trace.lps.push_back(std::move(shifted));
  }

  if (result.telemetry.lps.empty()) {
    bool any = false;
    for (const auto& trace : result.telemetry.objects) {
      any = any || !trace.samples.empty();
    }
    if (!any) {
      result.telemetry.objects.clear();
    }
  }
  return result;
}

}  // namespace

LpId Model::required_lps() const noexcept {
  LpId highest = 0;
  for (const auto& spec : objects) {
    highest = std::max(highest, spec.lp);
  }
  return highest + 1;
}

double RunResult::committed_events_per_sec() const noexcept {
  if (execution_time_ns == 0) {
    return 0.0;
  }
  return static_cast<double>(stats.total_committed()) /
         (static_cast<double>(execution_time_ns) / 1e9);
}

RunResult run_simulated_now(const Model& model, const KernelConfig& config,
                            const platform::SimulatedNowConfig& now_config) {
  const auto start = WallClock::now();
  Assembly assembly = assemble(model, config);
  platform::SimulatedNowEngine engine(now_config);
  const platform::EngineRunResult engine_result = engine.run(assembly.runners);
  return collect(model, assembly, engine_result, elapsed_ns(start));
}

RunResult run_threaded(const Model& model, const KernelConfig& config,
                       const platform::ThreadedConfig& threaded_config) {
  const auto start = WallClock::now();
  Assembly assembly = assemble(model, config);
  platform::ThreadedConfig engine_config = threaded_config;
  if (config.observability.tracing &&
      engine_config.scheduler_trace_capacity == 0) {
    engine_config.scheduler_trace_capacity = config.observability.ring_capacity;
  }
  platform::ThreadedEngine engine(engine_config);
  const platform::EngineRunResult engine_result = engine.run(assembly.runners);
  return collect(model, assembly, engine_result, elapsed_ns(start));
}

}  // namespace otw::tw
