#include "otw/tw/checkpoint_store.hpp"

#include <cstring>

#include "otw/util/assert.hpp"

namespace otw::tw {

// ------------------------------------------------------------------ Copy --

SaveReceipt CopyCheckpointStore::save(const Position& pos,
                                      const ObjectState& current) {
  queue_.save(pos, arena_ != nullptr ? arena_->acquire_copy(current)
                                     : current.clone());
  return SaveReceipt{0, current.byte_size()};
}

RestorePoint CopyCheckpointStore::restore_before(const Position& target) {
  queue_.drop_from(target);
  const StateQueue::Entry* keeper = queue_.latest_before(target);
  OTW_REQUIRE_MSG(keeper != nullptr, "no checkpoint to roll back to");
  return RestorePoint{keeper->pos, arena_ != nullptr
                                       ? arena_->acquire_copy(*keeper->state)
                                       : keeper->state->clone()};
}

// ----------------------------------------------------------- Incremental --

IncrementalCheckpointStore::IncrementalCheckpointStore(
    std::uint32_t full_snapshot_interval, StateArena* arena)
    : full_snapshot_interval_(full_snapshot_interval), arena_(arena) {
  OTW_REQUIRE(full_snapshot_interval >= 1);
}

std::unique_ptr<ObjectState> IncrementalCheckpointStore::copy_state(
    const ObjectState& src) const {
  return arena_ != nullptr ? arena_->acquire_copy(src) : src.clone();
}

void IncrementalCheckpointStore::retire_entry(Entry& entry) noexcept {
  stored_delta_bytes_ -= entry.changes.size() * sizeof(Change);
  if (entry.snapshot != nullptr) {
    snapshot_bytes_ -= entry.snapshot->byte_size();
    if (arena_ != nullptr) {
      arena_->release(std::move(entry.snapshot));
    }
  }
}

SaveReceipt IncrementalCheckpointStore::save(const Position& pos,
                                             const ObjectState& current) {
  OTW_REQUIRE_MSG(entries_.empty() || entries_.back().pos < pos,
                  "checkpoint positions must be strictly increasing");
  const std::byte* raw = current.raw_bytes();
  OTW_REQUIRE_MSG(raw != nullptr,
                  "incremental checkpointing needs a flat state "
                  "(ObjectState::raw_bytes)");
  const std::size_t size = current.byte_size();

  if (shadow_ == nullptr || saves_since_full_ >= full_snapshot_interval_) {
    // Full snapshot.
    entries_.push_back(Entry{pos, copy_state(current), {}});
    snapshot_bytes_ += size;
    if (shadow_ == nullptr || !shadow_->assign_from(current)) {
      shadow_ = copy_state(current);
    }
    saves_since_full_ = 1;
    return SaveReceipt{0, size};
  }

  OTW_REQUIRE_MSG(shadow_->byte_size() == size,
                  "incremental checkpointing needs a fixed-size state");
  std::byte* base = shadow_->mutable_raw_bytes();
  Entry entry;
  entry.pos = pos;
  for (std::size_t i = 0; i < size; ++i) {
    if (base[i] != raw[i]) {
      entry.changes.push_back(Change{static_cast<std::uint32_t>(i), raw[i]});
      base[i] = raw[i];  // the shadow always mirrors the last saved state
    }
  }
  const std::uint64_t stored = entry.changes.size() * sizeof(Change);
  stored_delta_bytes_ += stored;
  entries_.push_back(std::move(entry));
  ++saves_since_full_;
  return SaveReceipt{size, stored};
}

std::unique_ptr<ObjectState> IncrementalCheckpointStore::reconstruct(
    std::size_t index) const {
  // Walk back to the nearest full snapshot, then roll the deltas forward.
  std::size_t base = index;
  while (entries_[base].snapshot == nullptr) {
    OTW_ASSERT(base > 0);
    --base;
  }
  std::unique_ptr<ObjectState> state = copy_state(*entries_[base].snapshot);
  std::byte* bytes = state->mutable_raw_bytes();
  OTW_ASSERT(bytes != nullptr);
  for (std::size_t i = base + 1; i <= index; ++i) {
    for (const Change& change : entries_[i].changes) {
      bytes[change.offset] = change.value;
    }
  }
  return state;
}

RestorePoint IncrementalCheckpointStore::restore_before(const Position& target) {
  while (!entries_.empty() && !(entries_.back().pos < target)) {
    retire_entry(entries_.back());
    entries_.pop_back();
  }
  OTW_REQUIRE_MSG(!entries_.empty(), "no checkpoint to roll back to");

  std::unique_ptr<ObjectState> state = reconstruct(entries_.size() - 1);
  // The shadow must mirror the last SAVED state so the next delta is
  // computed against the right base; the truncated chain itself stays sound
  // (its prefix is intact), so only the snapshot cadence is recomputed.
  if (shadow_ == nullptr || !shadow_->assign_from(*state)) {
    shadow_ = copy_state(*state);
  }
  std::size_t base = entries_.size() - 1;
  while (entries_[base].snapshot == nullptr) {
    --base;
  }
  saves_since_full_ = static_cast<std::uint32_t>(entries_.size() - base);
  return RestorePoint{entries_.back().pos, std::move(state)};
}

Position IncrementalCheckpointStore::fossil_collect(VirtualTime gvt) {
  OTW_REQUIRE(!entries_.empty());
  std::size_t keeper = 0;
  bool found = false;
  for (std::size_t i = entries_.size(); i-- > 0;) {
    if (entries_[i].pos.recv_time() < gvt) {
      keeper = i;
      found = true;
      break;
    }
  }
  if (!found) {
    keeper = 0;
  }
  // Retain back to the snapshot the keeper reconstructs from.
  std::size_t floor = keeper;
  while (entries_[floor].snapshot == nullptr) {
    OTW_ASSERT(floor > 0);
    --floor;
  }
  for (std::size_t i = 0; i < floor; ++i) {
    retire_entry(entries_[i]);
  }
  entries_.erase(entries_.begin(),
                 entries_.begin() + static_cast<std::ptrdiff_t>(floor));
  return entries_[keeper - floor].pos;
}

std::unique_ptr<CheckpointStore> make_checkpoint_store(
    StateSaving mode, std::uint32_t full_snapshot_interval, StateArena* arena) {
  switch (mode) {
    case StateSaving::Copy:
      return std::make_unique<CopyCheckpointStore>(arena);
    case StateSaving::Incremental:
      return std::make_unique<IncrementalCheckpointStore>(full_snapshot_interval,
                                                          arena);
  }
  return nullptr;
}

}  // namespace otw::tw
