// Kernel side of the distributed engine: assembles the model, hands the LP
// runners to platform::DistributedEngine, and (de)serializes per-shard
// results. The harvest half runs in the worker process after its LPs are
// Done; the merge half runs in the coordinator. Fork guarantees both halves
// share one ABI, so trivially-copyable stats ship as raw bytes and only the
// types holding heap state (ObjectStats' histogram) are encoded field-wise.
#include <atomic>
#include <chrono>
#include <cstring>
#include <exception>
#include <optional>
#include <type_traits>

#include "kernel_internal.hpp"
#include "otw/obs/flight.hpp"
#include "otw/platform/wire.hpp"
#include "otw/tw/wire.hpp"
#include "otw/util/assert.hpp"
#include "otw/util/net.hpp"
#include "wire_codec_internal.hpp"

namespace otw::tw::detail {

namespace {

using platform::WireReader;
using platform::WireWriter;

static_assert(std::is_trivially_copyable_v<LpStats>);
static_assert(std::is_trivially_copyable_v<obs::PhaseTotals>);
static_assert(std::is_trivially_copyable_v<LpSample>);
static_assert(std::is_trivially_copyable_v<ObjectSample>);

/// Serializes every LP this shard owns at harvest time (runs in the worker
/// process). `owners` is the engine's live LP -> shard map: with on-line
/// migration a shard harvests LPs its initial placement never gave it.
void encode_shard(WireWriter& w, const Assembly& assembly, std::uint32_t shard,
                  const std::vector<std::uint32_t>& owners) {
  std::uint32_t n_local = 0;
  for (LpId lp = 0; lp < assembly.lps.size(); ++lp) {
    n_local += owners[lp] == shard ? 1 : 0;
  }
  w.u32(n_local);
  for (LpId lp = 0; lp < assembly.lps.size(); ++lp) {
    if (owners[lp] != shard) {
      continue;
    }
    LogicalProcess& proc = *assembly.lps[lp];
    OTW_REQUIRE_MSG(proc.done(), "harvesting a shard whose LPs are not Done");
    w.u32(lp);
    w.u64(proc.gvt().ticks());
    write_pod(w, proc.snapshot_lp_stats());
    obs::Recorder& recorder = proc.recorder();
    w.u8(recorder.tracing() ? 1 : 0);
    if (recorder.tracing()) {
      const obs::LpTraceLog log = recorder.drain_trace();
      w.u64(log.dropped);
      write_pod_vector(w, log.records);
    }
    w.u8(recorder.profiling() ? 1 : 0);
    if (recorder.profiling()) {
      write_pod(w, recorder.phase_totals());
    }
    write_pod_vector(w, proc.trace());
    w.u32(static_cast<std::uint32_t>(proc.runtimes().size()));
    for (const auto& runtime : proc.runtimes()) {
      w.u32(runtime->self());
      w.u64(runtime->state_digest());
      encode_object_stats(w, runtime->snapshot_stats());
      write_pod_vector(w, runtime->trace());
    }
  }
}

/// One LP's harvested state, parked until all shards are in so the merged
/// result can be laid out in LP-id order regardless of shard interleaving.
struct HarvestedLp {
  VirtualTime gvt = VirtualTime::zero();
  LpStats stats;
  std::optional<obs::LpTraceLog> trace;
  std::optional<obs::PhaseTotals> phases;
  std::vector<LpSample> samples;
};

void decode_shard(WireReader& r, std::vector<std::optional<HarvestedLp>>& lps,
                  RunResult& result) {
  const std::uint32_t n_local = r.u32();
  for (std::uint32_t i = 0; i < n_local; ++i) {
    const LpId lp = r.u32();
    OTW_REQUIRE_MSG(lp < lps.size() && !lps[lp].has_value(),
                    "shard result names an unknown or duplicate LP");
    HarvestedLp harvested;
    harvested.gvt = VirtualTime(r.u64());
    harvested.stats = read_pod<LpStats>(r);
    if (r.u8() != 0) {
      obs::LpTraceLog log;
      log.lp = lp;
      log.dropped = r.u64();
      log.records = read_pod_vector<obs::TraceRecord>(r);
      harvested.trace = std::move(log);
    }
    if (r.u8() != 0) {
      harvested.phases = read_pod<obs::PhaseTotals>(r);
    }
    harvested.samples = read_pod_vector<LpSample>(r);
    const std::uint32_t n_objects = r.u32();
    for (std::uint32_t k = 0; k < n_objects; ++k) {
      const ObjectId id = r.u32();
      OTW_REQUIRE_MSG(id < result.digests.size(),
                      "shard result names an unknown object");
      result.digests[id] = r.u64();
      result.stats.objects[id] = decode_object_stats(r);
      result.telemetry.objects[id] =
          ObjectTrace{id, read_pod_vector<ObjectSample>(r)};
    }
    lps[lp] = std::move(harvested);
  }
}

}  // namespace

RunResult run_distributed_impl(const Model& model, const KernelConfig& config,
                               platform::DistributedConfig dist_config) {
  // Children inherit the registry through fork, so registering here (before
  // DistributedEngine::run forks) covers coordinator and every shard.
  register_wire_messages();

  const auto start = std::chrono::steady_clock::now();
  Assembly assembly = assemble(model, config);
  if (config.observability.tracing && dist_config.wire_trace_capacity == 0) {
    dist_config.wire_trace_capacity = config.observability.ring_capacity;
  }

  platform::DistributedEngine engine(dist_config);
  const std::uint32_t num_shards = dist_config.num_shards;

  // Live plane: every forked worker inherits its own copy of the registry
  // (assemble allocates it pre-fork), encodes snapshots of it into STATS
  // frames, and the coordinator folds the decoded payloads into a
  // ClusterView that backs the scrape endpoint and the watchdog.
  platform::LiveStatsHooks live_hooks;
  std::unique_ptr<obs::live::ClusterView> cluster;
  std::unique_ptr<obs::live::LiveServer> server;
  // Set inside the live-plane block when the watchdog may order recoveries;
  // shared with FaultHooks below so the monitor thread's verdicts reach the
  // coordinator's relay loop.
  std::shared_ptr<std::atomic<std::int32_t>> watchdog_kill_request;
  // Flight recorder: coordinator-side evidence rings. A SIGKILLed worker
  // cannot dump anything, so snapshots/health/frames accrete here and the
  // dump fires on a watchdog raise or an abnormal run teardown.
  std::shared_ptr<obs::flight::FlightRecorder> flight;
  if (assembly.live != nullptr && config.observability.flight.enabled) {
    obs::flight::FlightConfig flight_config;
    flight_config.enabled = true;
    flight_config.dir = config.observability.flight.dir;
    flight_config.snapshot_ring = config.observability.flight.snapshot_ring;
    flight_config.frame_ring = config.observability.flight.frame_ring;
    flight = std::make_shared<obs::flight::FlightRecorder>(flight_config,
                                                           num_shards);
  }
  if (assembly.live != nullptr) {
    cluster = std::make_unique<obs::live::ClusterView>(num_shards);
    obs::live::ClusterView* view = cluster.get();
    const std::shared_ptr<obs::live::LiveMetricsRegistry> registry = assembly.live;
    live_hooks.period_ms = config.observability.live.stats_period_ms;
    live_hooks.bank = registry->hists();
    live_hooks.encode = [registry](std::uint32_t shard) {
      std::vector<std::uint8_t> out;
      obs::live::encode_snapshot(registry->snapshot(shard, util::net::mono_ns()),
                                 out);
      return out;
    };
    live_hooks.on_stats = [view, flight](std::uint32_t shard,
                                         const std::uint8_t* data,
                                         std::size_t len) {
      obs::live::LiveSnapshot snap;
      if (obs::live::decode_snapshot(data, len, snap) && snap.shard == shard) {
        if (flight != nullptr) {
          flight->on_snapshot(snap);
        }
        view->update(std::move(snap), util::net::mono_ns());
      }
    };
    if (flight != nullptr) {
      // Catchable fatal signals in a worker (SIGSEGV/SIGABRT/...) leave a
      // minimal shard-side dump; SIGKILL is covered by the coordinator rings.
      const std::string flight_dir = config.observability.flight.dir;
      live_hooks.on_worker_start = [flight_dir](std::uint32_t shard) {
        obs::flight::install_worker_fatal_dump(flight_dir, shard);
      };
      live_hooks.on_relay = [flight](std::uint32_t src_shard,
                                     std::uint32_t dst_shard, std::uint16_t tag,
                                     std::uint32_t frame_len,
                                     std::uint64_t send_ns,
                                     std::uint64_t coord_now_ns) {
        obs::flight::FrameEvent event;
        event.src_shard = src_shard;
        event.dst_shard = dst_shard;
        event.tag = tag;
        event.frame_len = frame_len;
        event.send_ns = send_ns;
        event.coord_now_ns = coord_now_ns;
        flight->on_frame(event);
      };
    }
    obs::live::LiveServerConfig server_config;
    server_config.port = config.observability.live_port;
    server_config.monitor_period_ms = config.observability.live.monitor_period_ms;
    server_config.watchdog = config.observability.live.watchdog;
    server_config.on_endpoint = config.observability.live.on_endpoint;
    // Health routing: the flight recorder always sees every event (a raise
    // is evidence whether or not we act on it); under Policy::Recover a
    // ShardSilent raise additionally asks the coordinator to SIGKILL the
    // hung worker — the EOF path then restores it from the last cut.
    const bool recover_on_silent =
        config.fault.enabled &&
        config.fault.policy == KernelConfig::Fault::Policy::Recover;
    if (flight != nullptr || recover_on_silent) {
      const std::shared_ptr<std::atomic<std::int32_t>> kill_request =
          recover_on_silent
              ? std::make_shared<std::atomic<std::int32_t>>(-1)
              : nullptr;
      watchdog_kill_request = kill_request;
      server_config.on_health = [flight, kill_request](
                                    const obs::live::HealthEvent& event) {
        if (flight != nullptr) {
          flight->on_health(event);
        }
        if (kill_request != nullptr && event.raised &&
            event.rule == obs::live::HealthRule::ShardSilent) {
          kill_request->store(static_cast<std::int32_t>(event.shard));
        }
      };
    }
    server = std::make_unique<obs::live::LiveServer>(
        server_config, [view] { return view->shards(); });
    server->start();
  }

  // On-line migration: the decide() hook runs on the coordinator's relay
  // loop every period_ms. Scripted `forced` moves (tests, benches) fire
  // first — one per control period, no live plane needed. The adaptive path
  // is the paper's <O,I,S,T,P> loop: observations come from the ClusterView
  // the STATS stream feeds, the load-balance controller picks (hot, cold)
  // shards, and the hottest LP on the hot shard is ordered moved.
  platform::MigrationHooks migration_hooks;
  struct MigrationState {
    std::size_t next_forced = 0;
    core::LoadBalanceController controller;
    explicit MigrationState(const core::LoadBalanceConfig& lb)
        : controller(lb) {}
  };
  std::shared_ptr<MigrationState> mig_state;
  if (config.migration.enabled) {
    migration_hooks.period_ms = config.migration.period_ms;
    mig_state = std::make_shared<MigrationState>(config.migration.control);
    const std::vector<std::pair<LpId, std::uint32_t>> forced =
        config.migration.forced;
    obs::live::ClusterView* view = cluster.get();
    migration_hooks.decide =
        [mig_state, forced, view, num_shards](
            const std::vector<std::uint32_t>& owners)
        -> std::optional<platform::MigrationDecision> {
      MigrationState& state = *mig_state;
      while (state.next_forced < forced.size()) {
        const auto [lp, to] = forced[state.next_forced];
        if (lp < owners.size() && owners[lp] != to) {
          // Re-issued every period until the owner map shows the move took:
          // a shard may decline (LP finished, or GVT has not advanced past
          // zero yet) and the coordinator drops declined epochs on the floor.
          return platform::MigrationDecision{lp, to};
        }
        // Applied (or the partitioner beat us): advance to the next move.
        ++state.next_forced;
      }
      if (view == nullptr) {
        return std::nullopt;  // adaptive path needs the live plane
      }
      // O: per-shard work totals = committed + rolled-back events (wasted
      // optimism is load too), summed over the LPs each shard currently
      // owns. A per-LP cell is only written by its owning shard, so LP l is
      // read from the snapshot of owners[l]; totals travel with migrated
      // LPs because their stats ship inside the MIGRATE frame.
      const std::vector<obs::live::LiveSnapshot> snaps = view->shards();
      std::vector<std::uint64_t> totals(num_shards, 0);
      std::vector<std::uint64_t> lp_work(owners.size(), 0);
      for (std::size_t lp = 0; lp < owners.size(); ++lp) {
        const std::uint32_t owner = owners[lp];
        if (owner >= snaps.size()) {
          continue;
        }
        for (const obs::live::LpLive& cell : snaps[owner].lps) {
          if (cell.lp == lp) {
            lp_work[lp] = cell.counter(obs::live::Counter::EventsCommitted) +
                          cell.counter(obs::live::Counter::EventsRolledBack);
            totals[owner] += lp_work[lp];
            break;
          }
        }
      }
      const std::optional<core::LoadBalanceOrder> order =
          state.controller.update(totals);
      if (!order) {
        return std::nullopt;
      }
      // I: the heaviest LP on the hot shard (cumulative work — a persistent
      // hotspot dominates its shard's total). Never the shard's last LP:
      // swapping a singleton's only LP just relabels the imbalance.
      std::size_t best = owners.size();
      std::size_t on_hot = 0;
      for (std::size_t lp = 0; lp < owners.size(); ++lp) {
        if (owners[lp] != order->hot) {
          continue;
        }
        ++on_hot;
        if (best == owners.size() || lp_work[lp] > lp_work[best]) {
          best = lp;
        }
      }
      if (on_hot < 2 || best == owners.size()) {
        return std::nullopt;
      }
      return platform::MigrationDecision{static_cast<LpId>(best),
                                         order->cold};
    };
  }

  // Fault tolerance: snapshot cadence comes from the Bringmann-style
  // SnapshotScheduleController (core/snapshot_schedule_controller.hpp) —
  // each committed epoch feeds its stop-the-world cost back and the
  // controller picks the next gap inside [overhead floor, recovery budget].
  platform::FaultHooks fault_hooks;
  std::shared_ptr<core::SnapshotScheduleController> snap_sched;
  if (config.fault.enabled) {
    fault_hooks.enabled = true;
    fault_hooks.max_recoveries = config.fault.max_recoveries;
    fault_hooks.max_snapshot_bytes = config.fault.max_snapshot_bytes;
    fault_hooks.spill_dir = config.fault.spill_dir;
    fault_hooks.inject_kill_shard = config.fault.inject_kill_shard;
    fault_hooks.inject_kill_after_epoch = config.fault.inject_kill_after_epoch;
    core::SnapshotScheduleConfig sched_config = config.fault.control;
    sched_config.recovery_budget_ms = config.fault.recovery_budget_ms;
    snap_sched =
        std::make_shared<core::SnapshotScheduleController>(sched_config);
    fault_hooks.initial_gap_ms = snap_sched->gap_ms();
    fault_hooks.next_gap_ms = [snap_sched](std::uint64_t cost_ns,
                                           std::uint64_t bytes) {
      return snap_sched->on_snapshot(cost_ns, bytes);
    };
    fault_hooks.kill_request = watchdog_kill_request;
  }

  platform::EngineRunResult engine_result;
  try {
    engine_result = engine.run(
        assembly.runners,
        [&assembly](std::uint32_t shard, const std::vector<std::uint32_t>& owners) {
          std::vector<std::uint8_t> blob;
          WireWriter writer(blob);
          encode_shard(writer, assembly, shard, owners);
          return blob;
        },
        live_hooks, migration_hooks, fault_hooks);
  } catch (const std::exception& e) {
    // Abnormal teardown (a shard died, the relay failed): dump everything
    // we know before surfacing the error — this is the black box's moment.
    if (flight != nullptr) {
      flight->dump_all(e.what());
    }
    throw;
  }

  RunResult result;
  result.execution_time_ns = engine_result.execution_time_ns;
  result.wall_time_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  result.physical_messages = engine_result.physical_messages;
  result.wire_bytes = engine_result.wire_bytes;
  result.dist = engine_result.dist;
  result.recoveries = engine_result.recoveries;
  result.hists = engine_result.hists;
  result.shard_clocks = engine_result.shard_clocks;

  result.stats.objects.resize(model.objects.size());
  result.digests.resize(model.objects.size(), 0);
  result.telemetry.objects.resize(model.objects.size());

  const auto num_lps = static_cast<std::uint32_t>(assembly.lps.size());
  std::vector<std::optional<HarvestedLp>> harvested(num_lps);
  const auto& payloads = engine.shard_payloads();
  OTW_REQUIRE_MSG(payloads.size() == num_shards,
                  "coordinator returned without every shard's payload");
  for (const std::vector<std::uint8_t>& payload : payloads) {
    WireReader reader(payload.data(), payload.size());
    decode_shard(reader, harvested, result);
    OTW_REQUIRE_MSG(reader.done(), "trailing bytes in a shard result payload");
  }

  // Same layout discipline as detail::collect: LP-indexed vectors in LP-id
  // order, LP trace tracks first (positional), wire tracks offset past them.
  for (LpId lp = 0; lp < num_lps; ++lp) {
    OTW_REQUIRE_MSG(harvested[lp].has_value(), "no shard reported this LP");
    HarvestedLp& h = *harvested[lp];
    result.stats.lps.push_back(h.stats);
    result.stats.final_gvt = h.gvt;
    if (h.trace.has_value()) {
      // LP trace timestamps are the owning shard's driver clock; shift them
      // onto the coordinator's run-relative timeline (same rebase the engine
      // applied to its wire tracks) so the merged Chrome trace and the
      // analysis cascade walk are clock-aligned across shards. Keyed on the
      // FINAL owner: that is the shard whose recorder drained this trace.
      const std::uint32_t shard = lp < engine_result.final_owners.size()
                                      ? engine_result.final_owners[lp]
                                      : platform::shard_of_lp(lp, num_shards);
      const std::int64_t shift =
          shard < engine_result.shard_trace_shift_ns.size()
              ? engine_result.shard_trace_shift_ns[shard]
              : 0;
      for (obs::TraceRecord& rec : h.trace->records) {
        const std::int64_t shifted =
            static_cast<std::int64_t>(rec.wall_ns) + shift;
        rec.wall_ns = shifted > 0 ? static_cast<std::uint64_t>(shifted) : 0;
      }
      result.trace.lps.push_back(std::move(*h.trace));
    }
    if (h.phases.has_value()) {
      result.lp_phases.push_back(*h.phases);
    }
    if (!h.samples.empty()) {
      LpTrace trace;
      trace.lp = static_cast<std::uint32_t>(result.telemetry.lps.size());
      trace.samples = std::move(h.samples);
      result.telemetry.lps.push_back(std::move(trace));
    }
  }
  for (const obs::LpTraceLog& log : engine_result.worker_traces) {
    obs::LpTraceLog shifted = log;
    shifted.lp = num_lps + log.lp;
    result.trace.lps.push_back(std::move(shifted));
  }

  if (result.telemetry.lps.empty()) {
    bool any = false;
    for (const auto& trace : result.telemetry.objects) {
      any = any || !trace.samples.empty();
    }
    if (!any) {
      result.telemetry.objects.clear();
    }
  }
  finish_live_server(server, result);
  return result;
}

}  // namespace otw::tw::detail
