#include "otw/tw/partition.hpp"

#include <algorithm>

#include "otw/util/assert.hpp"

namespace otw::tw {

namespace {

/// Folds object-level edges into a dense LP-affinity matrix (num_lps x
/// num_lps, row-major). Self-edges (both objects on one LP) carry no cut
/// cost and are dropped.
std::vector<double> lp_affinity(const Model& model, LpId num_lps) {
  std::vector<double> affinity(static_cast<std::size_t>(num_lps) * num_lps, 0.0);
  for (const Model::Edge& edge : model.edges) {
    OTW_REQUIRE_MSG(edge.a < model.objects.size() && edge.b < model.objects.size(),
                    "model edge names an unknown object");
    const LpId a = model.objects[edge.a].lp;
    const LpId b = model.objects[edge.b].lp;
    if (a == b) {
      continue;
    }
    affinity[static_cast<std::size_t>(a) * num_lps + b] += edge.weight;
    affinity[static_cast<std::size_t>(b) * num_lps + a] += edge.weight;
  }
  return affinity;
}

}  // namespace

std::vector<std::uint32_t> partition_lps(const Model& model, LpId num_lps,
                                         std::uint32_t num_shards,
                                         PartitionKind kind) {
  OTW_REQUIRE(num_shards >= 1);
  OTW_REQUIRE(num_lps >= 1);
  std::vector<std::uint32_t> placement(num_lps);
  const auto round_robin = [&] {
    for (LpId lp = 0; lp < num_lps; ++lp) {
      placement[lp] = lp % num_shards;
    }
  };
  if (kind == PartitionKind::RoundRobin || num_shards == 1 ||
      model.edges.empty()) {
    round_robin();
    return placement;
  }

  const std::vector<double> affinity = lp_affinity(model, num_lps);
  // Balanced capacity: no shard may hold more than ceil(num_lps/num_shards)
  // LPs, so the edge-cut objective cannot collapse everything onto one
  // worker (throughput needs the parallelism more than it needs zero cut).
  const std::uint32_t capacity = (num_lps + num_shards - 1) / num_shards;

  // Greedy placement in decreasing total-affinity order: heavy communicators
  // choose first, when every shard still has room next to their peers.
  std::vector<LpId> order(num_lps);
  for (LpId lp = 0; lp < num_lps; ++lp) {
    order[lp] = lp;
  }
  std::vector<double> total(num_lps, 0.0);
  for (LpId lp = 0; lp < num_lps; ++lp) {
    for (LpId other = 0; other < num_lps; ++other) {
      total[lp] += affinity[static_cast<std::size_t>(lp) * num_lps + other];
    }
  }
  std::stable_sort(order.begin(), order.end(), [&](LpId a, LpId b) {
    return total[a] > total[b];  // ties keep ascending LP id (stable)
  });

  std::vector<std::uint32_t> load(num_shards, 0);
  std::vector<bool> placed(num_lps, false);
  for (const LpId lp : order) {
    // Affinity of this LP to each shard's already-placed population.
    std::uint32_t best = num_shards;
    double best_gain = -1.0;
    for (std::uint32_t shard = 0; shard < num_shards; ++shard) {
      if (load[shard] >= capacity) {
        continue;
      }
      double gain = 0.0;
      for (LpId other = 0; other < num_lps; ++other) {
        if (placed[other] && placement[other] == shard) {
          gain += affinity[static_cast<std::size_t>(lp) * num_lps + other];
        }
      }
      // Strict > : equal gains (including the all-zero first placement)
      // break toward the lower shard id, with emptier shards preferred so
      // disconnected components spread instead of stacking on shard 0.
      if (gain > best_gain ||
          (gain == best_gain && best < num_shards && load[shard] < load[best])) {
        best = shard;
        best_gain = gain;
      }
    }
    OTW_ASSERT(best < num_shards);  // capacities sum to >= num_lps
    placement[lp] = best;
    load[best] += 1;
    placed[lp] = true;
  }
  return placement;
}

double edge_cut(const Model& model, LpId num_lps,
                const std::vector<std::uint32_t>& placement) {
  OTW_REQUIRE(placement.size() >= num_lps);
  double cut = 0.0;
  for (const Model::Edge& edge : model.edges) {
    const LpId a = model.objects[edge.a].lp;
    const LpId b = model.objects[edge.b].lp;
    if (placement[a] != placement[b]) {
      cut += edge.weight;
    }
  }
  return cut;
}

}  // namespace otw::tw
