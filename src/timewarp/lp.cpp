#include "otw/tw/lp.hpp"

#include <algorithm>

#include "otw/platform/wire.hpp"
#include "otw/tw/wire.hpp"
#include "wire_codec_internal.hpp"

namespace otw::tw {

LogicalProcess::LogicalProcess(
    LpId id, const KernelConfig& config, std::vector<LpId> object_to_lp,
    std::vector<std::pair<ObjectId, std::unique_ptr<SimulationObject>>> objects)
    : id_(id),
      config_(config),
      object_to_lp_(std::move(object_to_lp)),
      local_index_(object_to_lp_.size(), SIZE_MAX),
      channel_(id, config.num_lps, config.aggregation),
      gvt_(id, config.num_lps, config.gvt_period_events) {
  OTW_REQUIRE(id < config.num_lps);
  recorder_.configure(config_.observability, id_);
  if (config_.optimism.mode == KernelConfig::Optimism::Mode::Adaptive) {
    auto control = config_.optimism.control;
    control.initial_window = config_.optimism.window;
    control.min_window = std::min(control.min_window, control.initial_window);
    control.max_window = std::max(control.max_window, control.initial_window);
    optimism_.emplace(control);
  }
  if (config_.memory.budget_bytes > 0) {
    // The run-wide budget is split evenly: each LP polices its own share.
    const std::uint64_t per_lp = std::max<std::uint64_t>(
        config_.memory.budget_bytes / config_.num_lps, 1);
    pressure_.emplace(per_lp, config_.memory.control);
    stats_.memory_budget_bytes = per_lp;
  }
  runtimes_.reserve(objects.size());
  for (auto& [object_id, object] : objects) {
    OTW_REQUIRE(object_id < object_to_lp_.size());
    OTW_REQUIRE_MSG(object_to_lp_[object_id] == id_,
                    "object assigned to a different LP");
    local_index_[object_id] = runtimes_.size();
    ObjectRuntimeConfig runtime_config;
    runtime_config.checkpoint_interval = config_.checkpoint.interval;
    runtime_config.state_saving = config_.checkpoint.state_saving;
    runtime_config.full_snapshot_interval =
        config_.checkpoint.full_snapshot_interval;
    runtime_config.dynamic_checkpointing = config_.checkpoint.dynamic;
    runtime_config.checkpoint_control = config_.checkpoint.control;
    runtime_config.cancellation = config_.runtime.cancellation;
    runtime_config.passive_compare_cap = config_.runtime.passive_compare_cap;
    runtime_config.telemetry = config_.telemetry;
    runtimes_.push_back(std::make_unique<ObjectRuntime>(
        object_id, std::move(object), *this, runtime_config));
  }
}

std::uint64_t LogicalProcess::wall_now_ns() const noexcept {
  OTW_ASSERT(ctx_ != nullptr);
  return ctx_->now_ns();
}

void LogicalProcess::wall_charge(std::uint64_t ns) noexcept {
  OTW_ASSERT(ctx_ != nullptr);
  ctx_->charge(ns);
}

const platform::CostModel& LogicalProcess::costs() const noexcept {
  OTW_ASSERT(ctx_ != nullptr);
  return ctx_->costs();
}

void LogicalProcess::note_rollback(std::size_t undone) noexcept {
  optimism_rolled_back_ += undone;
  if (live_ != nullptr) {
    live_->store_gauge(id_, obs::live::Gauge::LastRollbackDepth, undone);
    if (auto* bank = live_->hists()) {
      // Distribution, not just the last value: a long tail here is the
      // classic over-optimism signature (events undone per rollback).
      bank->record(obs::hist::Seam::RollbackDepth, undone);
    }
  }
}

void LogicalProcess::publish_live() noexcept {
  using obs::live::Counter;
  using obs::live::Gauge;
  obs::live::LiveMetricsRegistry& live = *live_;
  std::uint64_t processed = 0;
  std::uint64_t committed = 0;
  std::uint64_t rolled_back = 0;
  std::uint64_t rollbacks = 0;
  std::uint64_t anti_sent = 0;
  std::uint64_t sent = 0;
  std::uint32_t checkpoint_period = 0;
  VirtualTime lvt = VirtualTime::infinity();
  for (const auto& runtime : runtimes_) {
    const ObjectStats& s = runtime->stats();
    processed += s.events_processed;
    committed += s.events_committed;
    rolled_back += s.events_rolled_back;
    rollbacks += s.rollbacks;
    anti_sent += s.anti_messages_sent;
    sent += s.messages_sent;
    checkpoint_period = std::max(checkpoint_period, runtime->checkpoint_interval());
    lvt = min(lvt, runtime->next_event_time());
  }
  live.store_counter(id_, Counter::EventsProcessed, processed);
  live.store_counter(id_, Counter::EventsCommitted, committed);
  live.store_counter(id_, Counter::EventsRolledBack, rolled_back);
  live.store_counter(id_, Counter::Rollbacks, rollbacks);
  live.store_counter(id_, Counter::AntiMessagesSent, anti_sent);
  live.store_counter(id_, Counter::MessagesSent, sent);
  live.store_counter(id_, Counter::SendsHeld, stats_.sends_held);
  live.store_counter(id_, Counter::PressureEnters, stats_.pressure_enters);
  live.store_counter(id_, Counter::GvtEpochs, stats_.gvt_epochs);
  live.store_gauge(id_, Gauge::LvtTicks,
                   lvt.is_infinity() ? obs::live::kTicksInfinity : lvt.ticks());
  live.store_gauge(id_, Gauge::MemoryBytes, memory_footprint().total());
  live.store_gauge(id_, Gauge::MemoryBudgetBytes, stats_.memory_budget_bytes);
  live.store_gauge(
      id_, Gauge::PressureState,
      pressure_ ? static_cast<std::uint64_t>(pressure_->state()) : 0);
  std::uint64_t window = obs::live::kTicksInfinity;
  switch (config_.optimism.mode) {
    case KernelConfig::Optimism::Mode::Unbounded:
      break;
    case KernelConfig::Optimism::Mode::Static:
      window = config_.optimism.window;
      break;
    case KernelConfig::Optimism::Mode::Adaptive:
      window = optimism_ ? optimism_->window() : config_.optimism.window;
      break;
  }
  live.store_gauge(id_, Gauge::OptimismWindowTicks, window);
  live.store_gauge(id_, Gauge::CheckpointPeriod, checkpoint_period);
}

VirtualTime LogicalProcess::processing_bound() const noexcept {
  VirtualTime bound = config_.end_time;
  std::uint64_t window = UINT64_MAX;
  switch (config_.optimism.mode) {
    case KernelConfig::Optimism::Mode::Unbounded:
      break;
    case KernelConfig::Optimism::Mode::Static:
      window = config_.optimism.window;
      break;
    case KernelConfig::Optimism::Mode::Adaptive:
      window = optimism_->window();
      break;
  }
  // Memory pressure clamps the window regardless of the optimism mode: an
  // over-budget LP stops running ahead even under Unbounded optimism.
  if (pressure_) {
    window = std::min(window, pressure_->window_clamp());
  }
  if (window == UINT64_MAX || gvt_value_.is_infinity()) {
    return bound;
  }
  const std::uint64_t ticks = gvt_value_.ticks();
  const VirtualTime horizon{ticks > UINT64_MAX - window - 1 ? UINT64_MAX - 1
                                                            : ticks + window};
  return min(bound, horizon);
}

VirtualTime LogicalProcess::emergency_horizon() const noexcept {
  if (gvt_value_.is_infinity()) {
    return VirtualTime::infinity();
  }
  const std::uint64_t window = config_.memory.control.emergency_window;
  const std::uint64_t ticks = gvt_value_.ticks();
  return VirtualTime{ticks > UINT64_MAX - window - 1 ? UINT64_MAX - 1
                                                     : ticks + window};
}

ObjectRuntime& LogicalProcess::local_object(ObjectId id) {
  OTW_REQUIRE(id < local_index_.size() && local_index_[id] != SIZE_MAX);
  return *runtimes_[local_index_[id]];
}

void LogicalProcess::route(Event&& event) {
  const LpId dst = object_to_lp_[event.receiver];
  if (dst == id_) {
    ++stats_.events_sent_local;
    // Deferred: delivering immediately could re-enter an object that is in
    // the middle of processing an event (cascaded rollback to self).
    local_inbox_.push_back(std::move(event));
    return;
  }
  // Cancelback-lite. An anti-message whose positive is still held must
  // annihilate in place: shipping it would reach the receiver before the
  // positive ever does (the receiver REQUIREs positive-before-anti).
  if (!held_sends_.empty() && event.negative && annihilate_held(event)) {
    return;
  }
  // Under Emergency pressure, positive sends beyond the emergency horizon
  // are held locally instead of growing the receiver's queues. Time Warp
  // tolerates arbitrary message delay, so committed results are unchanged;
  // local_min() covers held receive times, so GVT cannot overtake them.
  if (pressure_ &&
      pressure_->state() == core::PressureState::Emergency && !event.negative &&
      event.recv_time > emergency_horizon()) {
    ++stats_.sends_held;
    held_sends_.push_back(std::move(event));
    return;
  }
  ++stats_.events_sent_remote;
  event.color = gvt_.on_send(event.recv_time);
  channel_.enqueue(dst, std::move(event), ctx_->now_ns(),
                   [this](LpId to, std::vector<Event>&& batch) {
                     ship_batch(to, std::move(batch));
                   });
}

bool LogicalProcess::annihilate_held(const Event& anti) {
  const auto match =
      std::find_if(held_sends_.begin(), held_sends_.end(),
                   [&](const Event& held) { return held.matches_instance(anti); });
  if (match == held_sends_.end()) {
    return false;
  }
  held_sends_.erase(match);
  ++stats_.holds_annihilated;
  return true;
}

void LogicalProcess::flush_held(VirtualTime horizon) {
  if (held_sends_.empty()) {
    return;
  }
  std::vector<Event> keep;
  keep.reserve(held_sends_.size());
  for (Event& event : held_sends_) {
    if (event.recv_time > horizon) {
      keep.push_back(std::move(event));
      continue;
    }
    const LpId dst = object_to_lp_[event.receiver];
    ++stats_.events_sent_remote;
    event.color = gvt_.on_send(event.recv_time);
    channel_.enqueue(dst, std::move(event), ctx_->now_ns(),
                     [this](LpId to, std::vector<Event>&& batch) {
                       ship_batch(to, std::move(batch));
                     });
  }
  held_sends_ = std::move(keep);
}

void LogicalProcess::ship_batch(LpId dst, std::vector<Event>&& events) {
  if (recorder_.tracing()) {
    recorder_.record(obs::TraceKind::AggregateFlush, ctx_->now_ns(), id_,
                     gvt_value_.ticks(),
                     obs::pack_aggregate_flush(events.size(),
                                               channel_.window_us()));
  }
  ctx_->send(dst, std::make_unique<EventBatchMessage>(std::move(events),
                                                      batch_pool_.get()));
}

MemoryStats LogicalProcess::memory_footprint() const noexcept {
  MemoryStats m;
  for (const auto& runtime : runtimes_) {
    m.add(runtime->memory_footprint());
  }
  m.held_bytes = held_sends_.size() * sizeof(Event);
  m.pool_slab_bytes = event_pool_.stats().slab_bytes;
  return m;
}

void LogicalProcess::sample_pressure() {
  OTW_ASSERT(pressure_.has_value() && ctx_ != nullptr);
  const MemoryStats footprint = memory_footprint();
  stats_.memory = footprint;
  stats_.memory_peak_bytes =
      std::max(stats_.memory_peak_bytes, footprint.total());

  const core::PressureState before = pressure_->state();
  const bool changed = pressure_->update(footprint.total());
  ctx_->charge(ctx_->costs().control_invocation_ns);
  recorder_.phase_add(obs::Phase::Control, ctx_->costs().control_invocation_ns);
  const core::PressureState after = pressure_->state();

  if (changed && before == core::PressureState::Normal) {
    ++stats_.pressure_enters;
    pressure_enter_ns_ = ctx_->now_ns();
    if (recorder_.tracing()) {
      recorder_.record(obs::TraceKind::PressureEnter, ctx_->now_ns(), id_,
                       gvt_value_.ticks(),
                       obs::pack_pressure_enter(
                           footprint.total(), static_cast<std::uint8_t>(after),
                           pressure_->budget_bytes()));
    }
  }
  if (changed && after == core::PressureState::Normal) {
    ++stats_.pressure_exits;
    if (recorder_.tracing()) {
      recorder_.record(obs::TraceKind::PressureExit, ctx_->now_ns(), id_,
                       gvt_value_.ticks(),
                       obs::pack_pressure_exit(
                           footprint.total(),
                           ctx_->now_ns() - pressure_enter_ns_));
    }
    // Back under budget: everything deferred may flow again.
    flush_held(VirtualTime::infinity());
  }
  // Pull the adaptive controller's window down with the clamp so it does not
  // keep "remembering" a wide window while throttled.
  if (optimism_ && after != core::PressureState::Normal) {
    optimism_->clamp(pressure_->window_clamp());
  }
}

void LogicalProcess::deliver_local_pending() {
  // receive() may append more entries while we iterate; index-based loop.
  for (std::size_t i = 0; i < local_inbox_.size(); ++i) {
    const Event event = std::move(local_inbox_[i]);
    local_object(event.receiver).receive(event);
  }
  local_inbox_.clear();
}

VirtualTime LogicalProcess::local_min() const noexcept {
  VirtualTime lowest = VirtualTime::infinity();
  for (const auto& runtime : runtimes_) {
    lowest = min(lowest, runtime->gvt_contribution(config_.end_time));
  }
  // Held sends are unacknowledged messages no queue can see — the same
  // soundness argument as lazy_pending_ in gvt_contribution. This term also
  // guarantees progress: GVT can never pass the earliest held receive time,
  // so apply_gvt's flush horizon (GVT + emergency window) eventually reaches
  // every held event.
  for (const Event& event : held_sends_) {
    lowest = min(lowest, event.recv_time);
  }
  return lowest;
}

ObjectRuntime* LogicalProcess::pick_lowest() noexcept {
  ObjectRuntime* best = nullptr;
  VirtualTime best_time = VirtualTime::infinity();
  for (const auto& runtime : runtimes_) {
    const VirtualTime t = runtime->next_event_time();
    if (t < best_time) {
      best_time = t;
      best = runtime.get();
    }
  }
  return best_time <= processing_bound() ? best : nullptr;
}

void LogicalProcess::handle_token(const GvtTokenMessage& token) {
  if (recorder_.profiling()) {
    recorder_.phase_begin(obs::Phase::Gvt, ctx_->now_ns());
  }
  const GvtAgent::Outcome outcome = gvt_.on_token(token, local_min());
  if (outcome.forward) {
    ctx_->send(gvt_.next_lp(),
               std::make_unique<GvtTokenMessage>(*outcome.forward));
  }
  if (outcome.gvt) {
    complete_epoch(*outcome.gvt);
  }
  if (recorder_.profiling()) {
    recorder_.phase_end(ctx_->now_ns());
  }
}

void LogicalProcess::complete_epoch(VirtualTime gvt) {
  ++stats_.gvt_epochs;
  // Only the initiator completes an epoch, so start -> completion on this
  // LP's clock is the token's full ring traversal.
  if (live_ != nullptr && epoch_ever_started_ && ctx_ != nullptr) {
    if (auto* bank = live_->hists()) {
      const std::uint64_t now = ctx_->now_ns();
      bank->record(obs::hist::Seam::GvtRound,
                   now > last_epoch_start_ns_ ? now - last_epoch_start_ns_ : 0);
    }
  }
  for (LpId lp = 0; lp < config_.num_lps; ++lp) {
    if (lp != id_) {
      ctx_->send(lp, std::make_unique<GvtAnnounceMessage>(gvt));
    }
  }
  apply_gvt(gvt);
}

void LogicalProcess::apply_gvt(VirtualTime gvt) {
  OTW_REQUIRE_MSG(gvt >= gvt_value_, "GVT went backwards");
  gvt_value_ = gvt;
  if (recorder_.tracing()) {
    recorder_.record(obs::TraceKind::GvtEpoch, ctx_->now_ns(), id_,
                     gvt.is_infinity() ? UINT64_MAX : gvt.ticks());
  }
  // The footprint right before fossil collection is the epoch's high-water
  // mark: record it whether or not a budget is set, so unthrottled runs
  // report an honest peak too.
  {
    const MemoryStats before_fossil = memory_footprint();
    stats_.memory = before_fossil;
    stats_.memory_peak_bytes =
        std::max(stats_.memory_peak_bytes, before_fossil.total());
  }
  for (const auto& runtime : runtimes_) {
    runtime->fossil_collect(gvt);
  }
  if (live_ != nullptr) {
    live_->store_gvt(gvt.is_infinity() ? obs::live::kTicksInfinity
                                       : gvt.ticks());
    publish_live();
  }
  // Held sends within the emergency window of the new GVT must flow now:
  // one of them may be the global minimum (deadlock freedom). Re-sample so
  // footprint freed by fossil collection can lift the pressure state without
  // waiting out the control period.
  if (pressure_) {
    flush_held(emergency_horizon());
    if (ctx_ != nullptr && !gvt.is_infinity()) {
      sample_pressure();
    }
  }
  if (gvt.is_infinity()) {
    for (const auto& runtime : runtimes_) {
      runtime->finalize();
    }
    done_ = true;
  }
}

void LogicalProcess::drain_one(std::unique_ptr<platform::EngineMessage> msg) {
  // Dispatch on the registered wire tag — the same identity the distributed
  // transport routes by, so in-process and cross-process deliveries take one
  // code path (no downcast probing).
  switch (msg->wire_tag()) {
    case kTagEventBatch: {
      auto* batch = static_cast<EventBatchMessage*>(msg.get());
      for (Event& event : batch->events()) {
        // Both polarities count for GVT: anti-messages are messages too.
        gvt_.on_receive(event.color);
        local_object(event.receiver).receive(event);
        deliver_local_pending();
      }
      return;
    }
    case kTagGvtToken:
      handle_token(*static_cast<GvtTokenMessage*>(msg.get()));
      return;
    case kTagGvtAnnounce:
      apply_gvt(static_cast<GvtAnnounceMessage*>(msg.get())->gvt());
      return;
    default:
      OTW_REQUIRE_MSG(false, "physical message with unknown wire tag");
  }
}

bool LogicalProcess::drain() {
  // Comm phase: self-time attribution means nested Rollback/Gvt scopes
  // opened while handling a message are subtracted back out.
  const bool profile = recorder_.profiling();
  if (profile) {
    recorder_.phase_begin(obs::Phase::Comm, ctx_->now_ns());
  }
  bool any = false;
  while (auto msg = ctx_->poll()) {
    any = true;
    drain_one(std::move(msg));
  }
  if (profile) {
    recorder_.phase_end(ctx_->now_ns());
  }
  return any;
}

platform::StepStatus LogicalProcess::step(platform::LpContext& ctx) {
  ctx_ = &ctx;
  struct CtxReset {
    platform::LpContext** slot;
    ~CtxReset() { *slot = nullptr; }
  } reset{&ctx_};

  ++stats_.steps;

  if (!initialized_) {
    for (const auto& runtime : runtimes_) {
      runtime->initialize();
    }
    deliver_local_pending();
    initialized_ = true;
  }
  if (done_) {
    return platform::StepStatus::Done;
  }

  const bool received = drain();
  if (done_) {
    return platform::StepStatus::Done;
  }

  // Process a batch of lowest-timestamp-first events (bounded, when
  // configured, by the optimism window above GVT). The engine's yield hint
  // cuts a batch short when other LPs are waiting on the same worker; the
  // LP returns Active, so no work is lost, only deferred.
  std::uint32_t processed = 0;
  while (processed < config_.batch_size) {
    if (processed > 0 && ctx.should_yield()) {
      break;
    }
    ObjectRuntime* lowest = pick_lowest();
    if (lowest == nullptr) {
      break;
    }
    if (!lowest->process_next()) {
      break;
    }
    gvt_.on_event_processed();
    deliver_local_pending();
    ++processed;
  }
  events_processed_total_ += processed;
  if (live_ != nullptr && processed > 0) {
    publish_live();
  }
  if (config_.telemetry.enabled && processed > 0) {
    events_since_sample_ += processed;
    if (events_since_sample_ >= config_.telemetry.sample_period_events) {
      events_since_sample_ = 0;
      LpSample sample;
      sample.events_processed = events_processed_total_;
      sample.gvt = gvt_value_;
      sample.aggregation_window_us = channel_.window_us();
      sample.optimism_window =
          config_.optimism.mode == KernelConfig::Optimism::Mode::Unbounded
              ? 0
              : (optimism_ ? optimism_->window() : config_.optimism.window);
      sample.memory_bytes = memory_footprint().total();
      sample.pressure = pressure_ ? static_cast<std::uint8_t>(pressure_->state())
                                  : 0;
      trace_.push_back(sample);
      if (recorder_.tracing()) {
        recorder_.record(obs::TraceKind::TelemetrySample, ctx.now_ns(), id_,
                         gvt_value_.ticks(),
                         obs::pack_lp_sample(events_processed_total_));
      }
    }
  }
  if (optimism_) {
    optimism_->record_processed(processed);
    optimism_->record_rolled_back(optimism_rolled_back_);
    optimism_rolled_back_ = 0;
    if (optimism_->maybe_adapt()) {
      ctx.charge(ctx.costs().control_invocation_ns);
      recorder_.phase_add(obs::Phase::Control, ctx.costs().control_invocation_ns);
      if (recorder_.tracing()) {
        recorder_.record(obs::TraceKind::OptimismDecision, ctx.now_ns(), id_,
                         gvt_value_.ticks(),
                         obs::pack_optimism_decision(
                             optimism_->window(),
                             optimism_->last_rollback_fraction()));
      }
    }
  }

  if (pressure_) {
    pressure_->record_processed(processed);
    if (pressure_->due()) {
      sample_pressure();
    }
  }

  if (processed == 0) {
    // Nothing runnable: resolve lazy/passive entries that can no longer be
    // regenerated (may emit anti-messages).
    for (const auto& runtime : runtimes_) {
      runtime->idle_flush();
    }
    deliver_local_pending();
  }

  // Flush aggregates whose window has expired.
  if (recorder_.profiling()) {
    recorder_.phase_begin(obs::Phase::Comm, ctx.now_ns());
  }
  channel_.pump(ctx.now_ns(), [this](LpId to, std::vector<Event>&& batch) {
    ship_batch(to, std::move(batch));
  });
  if (recorder_.profiling()) {
    recorder_.phase_end(ctx.now_ns());
  }

  const bool idle_now = processed == 0 && !received && !channel_.has_pending();
  // Under pressure, GVT is the release valve: every epoch advances the
  // fossil horizon and the held-send flush horizon. Start epochs eagerly
  // (still subject to the rate limit below) instead of waiting out
  // gvt_period_events.
  const bool urgent =
      pressure_ && pressure_->state() != core::PressureState::Normal;

  if (gvt_.should_start(idle_now || urgent)) {
    const std::uint64_t earliest =
        epoch_ever_started_ ? last_epoch_start_ns_ + config_.gvt_min_interval_ns
                            : 0;
    if (ctx.now_ns() < earliest) {
      // Too soon: wait out the rate limit (parked if idle, since no message
      // may ever arrive to wake us for the termination-detecting epoch).
      ctx.request_wakeup(earliest);
    } else {
      last_epoch_start_ns_ = ctx.now_ns();
      epoch_ever_started_ = true;
      if (urgent) {
        ++stats_.pressure_gvt_triggers;
      }
      if (recorder_.profiling()) {
        recorder_.phase_begin(obs::Phase::Gvt, ctx.now_ns());
      }
      const GvtAgent::Outcome outcome = gvt_.start_epoch(local_min());
      if (outcome.forward) {
        ctx_->send(gvt_.next_lp(),
                   std::make_unique<GvtTokenMessage>(*outcome.forward));
      }
      if (outcome.gvt) {
        complete_epoch(*outcome.gvt);
      }
      if (recorder_.profiling()) {
        recorder_.phase_end(ctx.now_ns());
      }
      if (done_) {
        return platform::StepStatus::Done;
      }
      return platform::StepStatus::Active;
    }
  }

  if (idle_now) {
    ++stats_.idle_polls;
    ctx.charge(ctx.costs().idle_poll_ns);
    recorder_.phase_add(obs::Phase::Idle, ctx.costs().idle_poll_ns);
    return platform::StepStatus::Idle;
  }
  if (processed == 0) {
    ctx.charge(ctx.costs().idle_poll_ns);
    recorder_.phase_add(obs::Phase::Idle, ctx.costs().idle_poll_ns);
    if (!received && channel_.has_pending()) {
      // Nothing to do until an aggregate window expires (or a message
      // lands): tell the engine when to come back instead of busy-polling.
      ctx.request_wakeup(channel_.next_deadline_ns());
      return platform::StepStatus::Idle;
    }
  }
  return platform::StepStatus::Active;
}

bool LogicalProcess::migrate_out(platform::LpContext& ctx,
                                 platform::WireWriter& w) {
  ctx_ = &ctx;
  struct CtxReset {
    platform::LpContext** slot;
    ~CtxReset() { *slot = nullptr; }
  } reset{&ctx_};

  if (!initialized_) {
    // Migration ordered before this LP's first step: run time-zero
    // initialization here so the initial events travel with the state.
    for (const auto& runtime : runtimes_) {
      runtime->initialize();
    }
    deliver_local_pending();
    initialized_ = true;
  }
  // The engine requires the inbox drained before the LP leaves this shard.
  drain();
  if (done_) {
    return false;  // completed while draining: decline the move
  }
  if (gvt_value_ == VirtualTime{0}) {
    // A cut at GVT zero degenerates to Position::before_all(), and nothing
    // is checkpointed strictly before the initial state. Decline; the
    // coordinator re-issues the order once the first GVT round has landed.
    return false;
  }

  // Freeze phase: every runtime rolls back to the GVT cut before ANY of the
  // resulting same-LP anti-messages are delivered — each anti then meets a
  // now-unprocessed positive and annihilates without further rollback. Only
  // after the local inbox settles is it safe to serialize.
  for (const auto& runtime : runtimes_) {
    runtime->migration_freeze(gvt_value_);
  }
  deliver_local_pending();
  // Held sends and aggregation batches cannot travel: ship them now, so
  // their Mattern colors are counted before the GVT agent is serialized.
  flush_held(VirtualTime::infinity());
  channel_.flush_all(ctx.now_ns(), [this](LpId to, std::vector<Event>&& batch) {
    ship_batch(to, std::move(batch));
  });
  OTW_ASSERT(local_inbox_.empty() && held_sends_.empty() &&
             !channel_.has_pending());

  w.u64(gvt_value_.ticks());
  gvt_.export_state(w);
  detail::write_pod(w, stats_);
  w.u64(events_processed_total_);
  detail::write_pod_vector(w, trace_);
  w.u32(static_cast<std::uint32_t>(runtimes_.size()));
  for (const auto& runtime : runtimes_) {
    runtime->migrate_out(w, gvt_value_);
  }
  return true;
}

void LogicalProcess::migrate_in(platform::LpContext& ctx,
                                platform::WireReader& r) {
  ctx_ = &ctx;
  struct CtxReset {
    platform::LpContext** slot;
    ~CtxReset() { *slot = nullptr; }
  } reset{&ctx_};

  gvt_value_ = VirtualTime{r.u64()};
  gvt_.import_state(r);
  stats_ = detail::read_pod<LpStats>(r);
  events_processed_total_ = r.u64();
  trace_ = detail::read_pod_vector<LpSample>(r);

  // This incarnation may hold stale state from a life before an earlier
  // migrate-out (or none at all): reset every LP-local transient and rebuild
  // the per-LP controllers exactly as the constructor did. The shipped state
  // replaces time-zero initialization.
  local_inbox_.clear();
  held_sends_.clear();
  optimism_rolled_back_ = 0;
  pressure_enter_ns_ = 0;
  last_epoch_start_ns_ = 0;
  epoch_ever_started_ = false;
  events_since_sample_ = 0;
  initialized_ = true;
  done_ = false;
  if (config_.optimism.mode == KernelConfig::Optimism::Mode::Adaptive) {
    auto control = config_.optimism.control;
    control.initial_window = config_.optimism.window;
    control.min_window = std::min(control.min_window, control.initial_window);
    control.max_window = std::max(control.max_window, control.initial_window);
    optimism_.emplace(control);
  }
  if (config_.memory.budget_bytes > 0) {
    const std::uint64_t per_lp = std::max<std::uint64_t>(
        config_.memory.budget_bytes / config_.num_lps, 1);
    pressure_.emplace(per_lp, config_.memory.control);
    stats_.memory_budget_bytes = per_lp;
  }

  const std::uint32_t count = r.u32();
  OTW_REQUIRE_MSG(count == runtimes_.size(),
                  "MIGRATE frame runtime count mismatch");
  for (std::uint32_t i = 0; i < count; ++i) {
    const ObjectId object_id = r.u32();
    local_object(object_id).migrate_in(r, gvt_value_);
  }
  if (live_ != nullptr) {
    publish_live();
  }
}

bool LogicalProcess::snapshot_settle(platform::LpContext& ctx) {
  ctx_ = &ctx;
  struct CtxReset {
    platform::LpContext** slot;
    ~CtxReset() { *slot = nullptr; }
  } reset{&ctx_};

  bool moved = false;
  if (!initialized_) {
    // Settle ordered before this LP's first step: run time-zero
    // initialization here (it would have happened on the next step anyway)
    // so the cut below never sees a half-born LP.
    for (const auto& runtime : runtimes_) {
      runtime->initialize();
    }
    initialized_ = true;
    moved = true;
  }
  if (drain()) {
    moved = true;
  }
  if (!local_inbox_.empty()) {
    deliver_local_pending();
    moved = true;
  }
  if (channel_.has_pending()) {
    // Events parked in an open aggregate were Mattern-counted when routed
    // but will not be *received* until the batch ships — an in-flight GVT
    // epoch (and the shard-level channel-op counters the coordinator polls)
    // can never stabilize over them. Force them onto the wire.
    channel_.flush_all(ctx.now_ns(),
                      [this](LpId to, std::vector<Event>&& batch) {
                        ship_batch(to, std::move(batch));
                      });
    moved = true;
  }
  return moved;
}

bool LogicalProcess::snapshot_cut(platform::LpContext& ctx) {
  ctx_ = &ctx;
  struct CtxReset {
    platform::LpContext** slot;
    ~CtxReset() { *slot = nullptr; }
  } reset{&ctx_};

  drain();
  if (done_) {
    return false;  // endgame: a finished LP has nothing left to protect
  }
  if (gvt_value_ == VirtualTime{0}) {
    // Same degeneration as migrate_out: a cut at GVT zero has no checkpoint
    // strictly before it. Decline; the coordinator retries after the first
    // GVT round lands. (Quiescence guarantees no epoch is in flight, so all
    // LPs agree on gvt_value_ and decline or accept together.)
    return false;
  }
  // Freeze exactly like a migration: every runtime rolls back to the cut
  // before any same-LP anti is delivered, then the inbox settles and held
  // sends / open aggregates reach the wire. The coordinator re-settles the
  // mesh afterwards, so cut-born antis land before serialization.
  for (const auto& runtime : runtimes_) {
    runtime->migration_freeze(gvt_value_);
  }
  deliver_local_pending();
  flush_held(VirtualTime::infinity());
  channel_.flush_all(ctx.now_ns(), [this](LpId to, std::vector<Event>&& batch) {
    ship_batch(to, std::move(batch));
  });
  OTW_ASSERT(local_inbox_.empty() && held_sends_.empty() &&
             !channel_.has_pending());
  return true;
}

void LogicalProcess::snapshot_encode(platform::LpContext& ctx,
                                     platform::WireWriter& w) {
  ctx_ = &ctx;
  struct CtxReset {
    platform::LpContext** slot;
    ~CtxReset() { *slot = nullptr; }
  } reset{&ctx_};

  // Identical layout to migrate_out's body — restore IS migrate_in — but
  // nothing is reset: the LP keeps executing after the epoch resumes.
  OTW_ASSERT(local_inbox_.empty() && held_sends_.empty() &&
             !channel_.has_pending());
  w.u64(gvt_value_.ticks());
  gvt_.export_state(w);
  detail::write_pod(w, stats_);
  w.u64(events_processed_total_);
  detail::write_pod_vector(w, trace_);
  w.u32(static_cast<std::uint32_t>(runtimes_.size()));
  for (const auto& runtime : runtimes_) {
    runtime->encode_frozen(w);
  }
}

void LogicalProcess::snapshot_restore(platform::LpContext& ctx,
                                      platform::WireReader& r) {
  // A surviving LP may hold post-cut aggregates from the incarnation being
  // rolled back; they must never reach the wire. (migrate_in clears the
  // local inbox and every other transient itself.)
  channel_.discard_all();
  migrate_in(ctx, r);
}

LpStats LogicalProcess::snapshot_lp_stats() const {
  LpStats s = stats_;
  s.gvt_rounds = gvt_.rounds();
  const comm::AggregationStats& agg = channel_.stats();
  s.aggregates_sent = agg.aggregates_sent;
  s.messages_aggregated = agg.messages_enqueued;
  s.aggregate_size = agg.aggregate_size;
  s.aggregation_window_us = agg.window_us;
  s.memory = memory_footprint();
  s.memory_peak_bytes = std::max(s.memory_peak_bytes, s.memory.total());
  s.pool_recycled_blocks = event_pool_.stats().freelist_hits;
  for (const auto& runtime : runtimes_) {
    s.pool_recycled_blocks += runtime->state_arena().recycled();
  }
  return s;
}

}  // namespace otw::tw
