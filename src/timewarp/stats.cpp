#include "otw/tw/stats.hpp"

#include <ostream>
#include <sstream>

#include "otw/tw/event.hpp"

namespace otw::tw {

std::ostream& operator<<(std::ostream& os, VirtualTime t) {
  if (t.is_infinity()) {
    return os << "inf";
  }
  return os << t.ticks();
}

std::ostream& operator<<(std::ostream& os, const EventKey& key) {
  return os << "(" << key.recv_time << ", s" << key.sender << ", #" << key.seq
            << ")";
}

std::ostream& operator<<(std::ostream& os, const Event& event) {
  os << (event.negative ? "anti" : "event") << "[" << event.sender << "->"
     << event.receiver << " @" << event.recv_time << " sent@" << event.send_time
     << " seq=" << event.seq << " inst=" << event.instance << "]";
  return os;
}

void MemoryStats::add(const MemoryStats& other) noexcept {
  input_queue_bytes += other.input_queue_bytes;
  output_queue_bytes += other.output_queue_bytes;
  state_bytes += other.state_bytes;
  pending_bytes += other.pending_bytes;
  held_bytes += other.held_bytes;
  pool_slab_bytes += other.pool_slab_bytes;
  live_events += other.live_events;
  checkpoints += other.checkpoints;
}

void ObjectStats::merge(const ObjectStats& other) {
  events_processed += other.events_processed;
  events_committed += other.events_committed;
  events_rolled_back += other.events_rolled_back;
  rollbacks += other.rollbacks;
  coast_forward_events += other.coast_forward_events;
  states_saved += other.states_saved;
  state_restores += other.state_restores;
  messages_sent += other.messages_sent;
  anti_messages_sent += other.anti_messages_sent;
  anti_messages_received += other.anti_messages_received;
  stragglers += other.stragglers;
  lazy_hits += other.lazy_hits;
  lazy_misses += other.lazy_misses;
  passive_hits += other.passive_hits;
  passive_misses += other.passive_misses;
  cancellation_switches += other.cancellation_switches;
  checkpoint_control_ticks += other.checkpoint_control_ticks;
  rollback_length.merge(other.rollback_length);
}

void LpStats::merge(const LpStats& other) {
  gvt_epochs += other.gvt_epochs;
  gvt_rounds += other.gvt_rounds;
  events_sent_remote += other.events_sent_remote;
  events_sent_local += other.events_sent_local;
  aggregates_sent += other.aggregates_sent;
  messages_aggregated += other.messages_aggregated;
  aggregate_size.merge(other.aggregate_size);
  aggregation_window_us.merge(other.aggregation_window_us);
  steps += other.steps;
  idle_polls += other.idle_polls;
  memory.add(other.memory);
  memory_peak_bytes += other.memory_peak_bytes;
  memory_budget_bytes += other.memory_budget_bytes;
  pool_recycled_blocks += other.pool_recycled_blocks;
  pressure_enters += other.pressure_enters;
  pressure_exits += other.pressure_exits;
  pressure_gvt_triggers += other.pressure_gvt_triggers;
  sends_held += other.sends_held;
  holds_annihilated += other.holds_annihilated;
}

ObjectStats KernelStats::object_totals() const {
  ObjectStats total;
  for (const auto& s : objects) {
    total.merge(s);
  }
  return total;
}

LpStats KernelStats::lp_totals() const {
  LpStats total;
  for (const auto& s : lps) {
    total.merge(s);
  }
  return total;
}

std::uint64_t KernelStats::total_committed() const {
  std::uint64_t n = 0;
  for (const auto& s : objects) {
    n += s.events_committed;
  }
  return n;
}

std::uint64_t KernelStats::total_rollbacks() const {
  std::uint64_t n = 0;
  for (const auto& s : objects) {
    n += s.rollbacks;
  }
  return n;
}

MemoryStats KernelStats::memory_totals() const {
  MemoryStats total;
  for (const auto& s : lps) {
    total.add(s.memory);
  }
  return total;
}

std::uint64_t KernelStats::memory_peak_bytes() const {
  std::uint64_t n = 0;
  for (const auto& s : lps) {
    n += s.memory_peak_bytes;
  }
  return n;
}

std::string KernelStats::summary() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const KernelStats& stats) {
  const ObjectStats obj = stats.object_totals();
  const LpStats lp = stats.lp_totals();
  os << "kernel stats:\n"
     << "  committed events:     " << obj.events_committed << "\n"
     << "  processed events:     " << obj.events_processed << "\n"
     << "  rollbacks:            " << obj.rollbacks << " (undone "
     << obj.events_rolled_back << ", coast-forward " << obj.coast_forward_events
     << ")\n"
     << "  stragglers:           " << obj.stragglers << "\n"
     << "  states saved:         " << obj.states_saved << " (restores "
     << obj.state_restores << ")\n"
     << "  messages:             " << obj.messages_sent << " app, "
     << obj.anti_messages_sent << " anti sent, " << obj.anti_messages_received
     << " anti received\n"
     << "  cancellation:         lazy " << obj.lazy_hits << "/"
     << obj.lazy_hits + obj.lazy_misses << " hits, passive " << obj.passive_hits
     << "/" << obj.passive_hits + obj.passive_misses << " hits, "
     << obj.cancellation_switches << " switches\n"
     << "  gvt:                  " << lp.gvt_epochs << " epochs, " << lp.gvt_rounds
     << " token rounds, final " << stats.final_gvt << "\n"
     << "  comm:                 " << lp.events_sent_remote << " remote events in "
     << lp.aggregates_sent << " aggregates, " << lp.events_sent_local
     << " local events\n"
     << "  memory:               " << lp.memory.total() << " B final, "
     << lp.memory_peak_bytes << " B peak";
  if (lp.memory_budget_bytes > 0) {
    os << " (budget " << lp.memory_budget_bytes << " B, "
       << lp.pressure_enters << " pressure enters, " << lp.sends_held
       << " sends held)";
  }
  os << "\n";
  return os;
}

}  // namespace otw::tw
