// PendingEventSet implementations (see pending_set.hpp for the contract):
//
//  * MultisetPendingSet — the original pool-backed std::multiset with a
//    boundary iterator; the correctness reference.
//  * SplitPendingSet<Backend> — shared shape for the tuned structures: the
//    processed run lives in a sorted deque (advance appends, fossil pops the
//    front, rollback moves the suffix back), the unprocessed events live in
//    a backend ordered structure. Backends: SkipListSet (slab-backed nodes,
//    deterministic tower heights) and LadderSet (contiguous buckets, O(1)
//    amortised insert/dequeue).
//
// Both backends are templates over the comparator so the same structures
// serve the input queues (InputOrder) and the sequential kernel's central
// event list (SeqOrder). Determinism note: equal-comparing events are
// inserted in arrival order (multiset upper_bound semantics) everywhere,
// and live input-queue events never compare equal under InputOrder, so the
// realised total order is identical across implementations.
#include "otw/tw/pending_set.hpp"

#include <algorithm>
#include <cstddef>
#include <deque>
#include <new>
#include <set>

#include "otw/util/assert.hpp"

namespace otw::tw {

const char* to_string(QueueKind kind) noexcept {
  switch (kind) {
    case QueueKind::Multiset:
      return "multiset";
    case QueueKind::SkipList:
      return "skiplist";
    case QueueKind::LadderQueue:
      return "ladder";
  }
  return "unknown";
}

namespace {

/// Sentinel event occupying exactly the given position.
Event at_position(const Position& pos) noexcept {
  Event s;
  s.recv_time = pos.key.recv_time;
  s.sender = pos.key.sender;
  s.seq = pos.key.seq;
  s.instance = pos.instance;
  return s;
}

// ---------------------------------------------------------------------------
// Multiset (reference)
// ---------------------------------------------------------------------------

class MultisetPendingSet final : public PendingEventSet {
 public:
  explicit MultisetPendingSet(SlabPool* pool)
      : events_(InputOrder{}, PoolAllocator<Event>(pool)), next_(events_.end()) {}

  [[nodiscard]] QueueKind kind() const noexcept override {
    return QueueKind::Multiset;
  }

  bool insert(const Event& event) override {
    OTW_REQUIRE_MSG(!event.negative,
                    "anti-messages are never stored in the input queue");
    const bool straggler =
        next_ != events_.begin() && InputOrder{}(event, *std::prev(next_));
    const auto pos = events_.insert(event);
    if (!straggler && (next_ == events_.end() || InputOrder{}(*pos, *next_))) {
      next_ = pos;
    }
    return straggler;
  }

  [[nodiscard]] const Event* peek_next() const override {
    return next_ == events_.end() ? nullptr : &*next_;
  }

  const Event& advance() override {
    OTW_ASSERT(next_ != events_.end());
    const Event& event = *next_;
    ++next_;
    return event;
  }

  void rewind_to_after(const Position& checkpoint) override {
    next_ = events_.upper_bound(at_position(checkpoint));
  }

  [[nodiscard]] std::size_t processed_after(const Position& pos) const override {
    auto it = events_.upper_bound(at_position(pos));
    std::size_t n = 0;
    while (it != next_) {
      OTW_ASSERT(it != events_.end());
      ++it;
      ++n;
    }
    return n;
  }

  [[nodiscard]] MatchStatus find_match(const Event& anti) const override {
    const auto it = events_.find(anti);
    if (it == events_.end()) {
      return MatchStatus::NotFound;
    }
    OTW_ASSERT(it->matches_instance(anti));
    return is_processed(it) ? MatchStatus::Processed : MatchStatus::Unprocessed;
  }

  void erase_match(const Event& anti) override {
    const auto it = events_.find(anti);
    OTW_REQUIRE_MSG(it != events_.end(), "anti-message with no matching positive");
    OTW_REQUIRE_MSG(!is_processed(it),
                    "matching positive still processed; rollback must precede erase");
    if (it == next_) {
      next_ = events_.erase(it);
    } else {
      events_.erase(it);
    }
  }

  std::size_t fossil_collect_before(const Position& pos) override {
    std::size_t dropped = 0;
    auto it = events_.begin();
    while (it != next_ && it->position() < pos) {
      it = events_.erase(it);
      ++dropped;
    }
    return dropped;
  }

  [[nodiscard]] std::size_t size() const noexcept override {
    return events_.size();
  }

  [[nodiscard]] std::size_t processed_count() const noexcept override {
    return static_cast<std::size_t>(
        std::distance(events_.begin(), Set::const_iterator(next_)));
  }

  [[nodiscard]] std::vector<Event> snapshot() const override {
    return std::vector<Event>(events_.begin(), events_.end());
  }

 private:
  using Set = std::multiset<Event, InputOrder, PoolAllocator<Event>>;

  [[nodiscard]] bool is_processed(Set::const_iterator it) const {
    if (next_ == events_.end()) {
      return true;
    }
    return InputOrder{}(*it, *next_);
  }

  Set events_;
  Set::iterator next_;  // first unprocessed event
};

// ---------------------------------------------------------------------------
// Skip list backend
// ---------------------------------------------------------------------------

/// Ordered set of events on slab-backed skip-list nodes. Tower heights come
/// from a per-instance xorshift64 stream, so a given insertion sequence
/// always builds the same structure (replayable, digest-neutral). Nodes are
/// allocated at exactly sizeof(Node) + height pointers and recycled through
/// the SlabPool's power-of-two classes.
template <class Compare>
class SkipListSet {
 public:
  static constexpr std::uint32_t kMaxHeight = 16;

  explicit SkipListSet(SlabPool* pool) : pool_(pool) {
    std::fill(std::begin(head_), std::end(head_), nullptr);
  }
  SkipListSet(const SkipListSet&) = delete;
  SkipListSet& operator=(const SkipListSet&) = delete;
  ~SkipListSet() {
    Node* node = head_[0];
    while (node != nullptr) {
      Node* next = node->next()[0];
      free_node(node);
      node = next;
    }
  }

  void insert(const Event& event) {
    Node* preds[kMaxHeight];
    walk</*kUpper=*/true>(event, preds);
    const std::uint32_t h = random_height();
    Node* node = alloc_node(event, h);
    if (h > height_) {
      for (std::uint32_t i = height_; i < h; ++i) {
        preds[i] = nullptr;
      }
      height_ = h;
    }
    for (std::uint32_t i = 0; i < h; ++i) {
      Node*& slot = next_slot(preds[i], i);
      node->next()[i] = slot;
      slot = node;
    }
    ++size_;
  }

  [[nodiscard]] const Event* peek_min() const noexcept {
    return head_[0] == nullptr ? nullptr : &head_[0]->event;
  }

  Event pop_min() {
    Node* node = head_[0];
    OTW_ASSERT(node != nullptr);
    // The global minimum is the first node of every level it reaches.
    for (std::uint32_t i = 0; i < node->height; ++i) {
      OTW_ASSERT(head_[i] == node);
      head_[i] = node->next()[i];
    }
    Event event = node->event;
    free_node(node);
    --size_;
    return event;
  }

  [[nodiscard]] const Event* find(const Event& probe) const {
    Node* preds[kMaxHeight];
    walk</*kUpper=*/false>(probe, preds);
    const Node* cand = preds[0] == nullptr ? head_[0] : preds[0]->next()[0];
    if (cand != nullptr && !comp_(probe, cand->event)) {
      return &cand->event;
    }
    return nullptr;
  }

  /// Erases the (unique) event comparing equivalent to `probe`. Returns
  /// false when there is none.
  bool erase(const Event& probe) {
    Node* preds[kMaxHeight];
    walk</*kUpper=*/false>(probe, preds);
    Node* cand = preds[0] == nullptr ? head_[0] : preds[0]->next()[0];
    if (cand == nullptr || comp_(probe, cand->event)) {
      return false;
    }
    for (std::uint32_t i = 0; i < cand->height; ++i) {
      Node*& slot = next_slot(preds[i], i);
      OTW_ASSERT(slot == cand);
      slot = cand->next()[i];
    }
    free_node(cand);
    --size_;
    return true;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  template <class Fn>
  void for_each(Fn&& fn) const {
    for (const Node* node = head_[0]; node != nullptr; node = node->next()[0]) {
      fn(node->event);
    }
  }

 private:
  struct Node {
    Event event;
    std::uint32_t height;

    /// Tower pointers live immediately past the struct (the node is
    /// allocated with room for exactly `height` of them).
    [[nodiscard]] Node** next() noexcept {
      return reinterpret_cast<Node**>(reinterpret_cast<std::byte*>(this) +
                                      sizeof(Node));
    }
    [[nodiscard]] Node* const* next() const noexcept {
      return reinterpret_cast<Node* const*>(
          reinterpret_cast<const std::byte*>(this) + sizeof(Node));
    }
  };
  static_assert(sizeof(Node) % alignof(Node*) == 0);

  [[nodiscard]] static std::size_t node_bytes(std::uint32_t height) noexcept {
    return sizeof(Node) + height * sizeof(Node*);
  }

  Node* alloc_node(const Event& event, std::uint32_t height) {
    const std::size_t bytes = node_bytes(height);
    void* mem = pool_ != nullptr ? pool_->allocate(bytes) : ::operator new(bytes);
    return ::new (mem) Node{event, height};
  }

  void free_node(Node* node) noexcept {
    const std::size_t bytes = node_bytes(node->height);
    node->~Node();
    if (pool_ != nullptr) {
      pool_->deallocate(node, bytes);
    } else {
      ::operator delete(node);
    }
  }

  [[nodiscard]] Node*& next_slot(Node* pred, std::uint32_t level) noexcept {
    return pred == nullptr ? head_[level] : pred->next()[level];
  }

  /// Fills preds[i] with the last node at level i ordered before `probe`
  /// (kUpper: at or before — multiset upper_bound insertion among equals),
  /// nullptr meaning the head. Levels >= height_ are left untouched.
  template <bool kUpper>
  void walk(const Event& probe, Node** preds) const {
    Node* pred = nullptr;
    for (std::uint32_t i = height_; i-- > 0;) {
      Node* cur = pred == nullptr ? head_[i] : pred->next()[i];
      while (cur != nullptr &&
             (kUpper ? !comp_(probe, cur->event) : comp_(cur->event, probe))) {
        pred = cur;
        cur = pred->next()[i];
      }
      preds[i] = pred;
    }
  }

  [[nodiscard]] std::uint32_t random_height() noexcept {
    rng_ ^= rng_ << 13;
    rng_ ^= rng_ >> 7;
    rng_ ^= rng_ << 17;
    std::uint64_t bits = rng_;
    std::uint32_t h = 1;
    while ((bits & 1u) != 0 && h < kMaxHeight) {
      ++h;
      bits >>= 1;
    }
    return h;
  }

  SlabPool* pool_;
  Node* head_[kMaxHeight];
  std::uint32_t height_ = 1;
  std::size_t size_ = 0;
  std::uint64_t rng_ = 0x9E3779B97F4A7C15ULL;
  [[no_unique_address]] Compare comp_{};
};

// ---------------------------------------------------------------------------
// Ladder queue backend
// ---------------------------------------------------------------------------

/// Tang/Tham ladder queue over contiguous storage (no per-event nodes):
/// an unsorted `top` catches far-future inserts, bucketed `rungs` refine
/// time bands, and a sorted `bottom` (descending, minimum at back) serves
/// dequeues. Buckets only ever migrate downward — top spreads into the
/// first rung, an oversized bucket spawns a finer rung, and small buckets
/// sort into bottom — so region boundaries are monotone and an event's
/// receive time always identifies its region.
template <class Compare>
class LadderSet {
 public:
  /// Buckets at most this large sort straight into bottom instead of
  /// spawning a finer rung.
  static constexpr std::size_t kSpawnThreshold = 64;
  static constexpr std::size_t kMaxRungs = 8;
  static constexpr std::size_t kMaxBucketsPerRung = std::size_t{1} << 14;

  explicit LadderSet(SlabPool* /*pool*/) {}
  LadderSet(const LadderSet&) = delete;
  LadderSet& operator=(const LadderSet&) = delete;

  void insert(const Event& event) {
    const std::uint64_t ts = event.recv_time.ticks();
    if (ts >= top_start_) {
      top_.push_back(event);
      top_min_ = std::min(top_min_, ts);
      top_max_ = std::max(top_max_, ts);
    } else if (Rung* rung = rung_for(ts)) {
      place(*rung, event);
    } else {
      // Below every active region: sorted insert into bottom. Descending
      // lower_bound == ascending upper_bound, i.e. arrival order among
      // equals, matching the multiset.
      const auto it = std::lower_bound(bottom_.begin(), bottom_.end(), event,
                                       DescOrder{comp_});
      bottom_.insert(it, event);
      maybe_reladder_bottom();
    }
    ++size_;
  }

  /// May sort the next bucket into bottom (observable state is unchanged).
  [[nodiscard]] const Event* peek_min() {
    prepare_bottom();
    return bottom_.empty() ? nullptr : &bottom_.back();
  }

  Event pop_min() {
    prepare_bottom();
    OTW_ASSERT(!bottom_.empty());
    Event event = bottom_.back();
    bottom_.pop_back();
    --size_;
    reset_when_empty();
    return event;
  }

  [[nodiscard]] const Event* find(const Event& probe) const {
    const auto [first, last] =
        std::equal_range(bottom_.begin(), bottom_.end(), probe, DescOrder{comp_});
    if (first != last) {
      return &*first;
    }
    const std::uint64_t ts = probe.recv_time.ticks();
    for (const Rung& rung : rungs_) {
      if (ts < rung.start || ts >= rung.end()) {
        continue;
      }
      for (const Event& event : rung.buckets[rung.index_of(ts)]) {
        if (equivalent(event, probe)) {
          return &event;
        }
      }
    }
    if (!top_.empty() && ts >= top_start_) {
      for (const Event& event : top_) {
        if (equivalent(event, probe)) {
          return &event;
        }
      }
    }
    return nullptr;
  }

  bool erase(const Event& probe) {
    const auto [first, last] =
        std::equal_range(bottom_.begin(), bottom_.end(), probe, DescOrder{comp_});
    if (first != last) {
      bottom_.erase(first);
      --size_;
      reset_when_empty();
      return true;
    }
    const std::uint64_t ts = probe.recv_time.ticks();
    for (Rung& rung : rungs_) {
      if (ts < rung.start || ts >= rung.end()) {
        continue;
      }
      auto& bucket = rung.buckets[rung.index_of(ts)];
      for (auto it = bucket.begin(); it != bucket.end(); ++it) {
        if (equivalent(*it, probe)) {
          bucket.erase(it);
          --rung.count;
          --size_;
          reset_when_empty();
          return true;
        }
      }
    }
    for (auto it = top_.begin(); it != top_.end(); ++it) {
      if (equivalent(*it, probe)) {
        // top_min_/top_max_ may now overestimate the span; that only makes
        // the next spread a little wider, never incorrect.
        top_.erase(it);
        --size_;
        reset_when_empty();
        return true;
      }
    }
    return false;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  template <class Fn>
  void for_each(Fn&& fn) const {
    for (const Event& event : bottom_) {
      fn(event);
    }
    for (const Rung& rung : rungs_) {
      for (const auto& bucket : rung.buckets) {
        for (const Event& event : bucket) {
          fn(event);
        }
      }
    }
    for (const Event& event : top_) {
      fn(event);
    }
  }

 private:
  struct DescOrder {
    Compare comp;
    bool operator()(const Event& a, const Event& b) const noexcept {
      return comp(b, a);
    }
  };

  struct Rung {
    std::uint64_t start = 0;  ///< lower time edge of bucket 0
    std::uint64_t width = 1;  ///< bucket width in ticks (>= 1)
    /// Exclusive upper edge of the region this rung covers. Stored, not
    /// derived from width * buckets.size(): when the bucket count is clamped
    /// to kMaxBucketsPerRung the last bucket absorbs the tail of the span
    /// (index_of saturates), so the derived product would under-report the
    /// region and find/erase would skip tail events.
    std::uint64_t limit = 0;
    std::size_t cur = 0;    ///< first bucket not yet spilled
    std::size_t count = 0;  ///< events across buckets[cur..]
    std::vector<std::vector<Event>> buckets;

    [[nodiscard]] std::uint64_t cur_start() const noexcept {
      return sat_add(start, sat_mul(width, cur));
    }
    [[nodiscard]] std::uint64_t end() const noexcept { return limit; }
    [[nodiscard]] std::size_t index_of(std::uint64_t ts) const noexcept {
      return std::min<std::size_t>(static_cast<std::size_t>((ts - start) / width),
                                   buckets.size() - 1);
    }
  };

  [[nodiscard]] static std::uint64_t sat_add(std::uint64_t a,
                                             std::uint64_t b) noexcept {
    const std::uint64_t s = a + b;
    return s < a ? UINT64_MAX : s;
  }
  [[nodiscard]] static std::uint64_t sat_mul(std::uint64_t a,
                                             std::uint64_t b) noexcept {
    if (b != 0 && a > UINT64_MAX / b) {
      return UINT64_MAX;
    }
    return a * b;
  }

  [[nodiscard]] bool equivalent(const Event& a, const Event& b) const noexcept {
    return !comp_(a, b) && !comp_(b, a);
  }

  /// The rung whose active region [cur_start, end) contains ts, finest
  /// first. Regions are pairwise disjoint (cur advances before any spill),
  /// so at most one rung matches.
  [[nodiscard]] Rung* rung_for(std::uint64_t ts) noexcept {
    for (std::size_t i = rungs_.size(); i-- > 0;) {
      Rung& rung = rungs_[i];
      // An exhausted rung (every bucket spilled, not yet popped by
      // prepare_bottom) covers nothing, even though width * cur can still
      // sit below its clamped limit.
      if (rung.cur >= rung.buckets.size()) {
        continue;
      }
      if (ts >= rung.cur_start() && ts < rung.end()) {
        return &rung;
      }
    }
    return nullptr;
  }

  void place(Rung& rung, const Event& event) {
    const std::size_t idx = rung.index_of(event.recv_time.ticks());
    OTW_ASSERT(idx >= rung.cur);
    rung.buckets[idx].push_back(event);
    ++rung.count;
  }

  /// Refills bottom from the finest rung (or from top) until it holds the
  /// current minimum band, spawning finer rungs for oversized buckets.
  void prepare_bottom() {
    while (bottom_.empty()) {
      if (rungs_.empty()) {
        if (top_.empty()) {
          return;
        }
        spread_top();
        continue;
      }
      Rung& rung = rungs_.back();
      while (rung.cur < rung.buckets.size() && rung.buckets[rung.cur].empty()) {
        ++rung.cur;
      }
      if (rung.cur >= rung.buckets.size()) {
        OTW_ASSERT(rung.count == 0);
        rungs_.pop_back();
        continue;
      }
      std::vector<Event> bucket = std::move(rung.buckets[rung.cur]);
      rung.buckets[rung.cur].clear();
      const std::uint64_t bucket_start = rung.cur_start();
      // The clamped last bucket covers the whole remaining region, not just
      // one width (see Rung::limit).
      const bool is_last = rung.cur + 1 == rung.buckets.size();
      const std::uint64_t bucket_span =
          is_last ? rung.end() - bucket_start : rung.width;
      ++rung.cur;  // advance before spawning/spilling: regions stay disjoint
      rung.count -= bucket.size();
      if (bucket.size() > kSpawnThreshold && bucket_span > 1 &&
          rungs_.size() < kMaxRungs) {
        spawn_rung(std::move(bucket), bucket_start, bucket_span);
      } else {
        sort_into_bottom(std::move(bucket));
      }
    }
  }

  /// Bottom is meant for the current minimum band, where O(band) sorted
  /// inserts are cheap. Sustained insertion below every active region (the
  /// ladder drained dry mid-run, or a deep rollback reinserting history)
  /// would grow it quadratic, so an oversized bottom is converted into a
  /// new finest rung. The rung must span all the way up to the next active
  /// region, not just the band it holds: the region chain has to stay
  /// contiguous so every future below-region insert lands in THIS rung —
  /// a gap would collect events in bottom above the rung, and peek_min
  /// trusts a non-empty bottom to be the minimum band.
  void maybe_reladder_bottom() {
    if (bottom_.size() <= 2 * kSpawnThreshold || rungs_.size() >= kMaxRungs) {
      return;
    }
    std::uint64_t next_start = top_start_;
    for (std::size_t i = rungs_.size(); i-- > 0;) {
      if (rungs_[i].cur < rungs_[i].buckets.size()) {  // skip spent husks
        next_start = rungs_[i].cur_start();
        break;
      }
    }
    const std::uint64_t lo = bottom_.back().recv_time.ticks();
    OTW_ASSERT(bottom_.front().recv_time.ticks() < next_start);
    std::vector<Event> band = std::move(bottom_);
    bottom_.clear();
    spawn_rung(std::move(band), lo, next_start - lo);
  }

  /// An empty ladder constrains nothing: drop exhausted rung husks and
  /// reopen the top for ALL times, so a refill goes through the O(1) top
  /// path instead of sorted-inserting into bottom forever.
  void reset_when_empty() {
    if (size_ != 0) {
      return;
    }
    rungs_.clear();
    top_start_ = 0;
    top_min_ = UINT64_MAX;
    top_max_ = 0;
  }

  void sort_into_bottom(std::vector<Event>&& bucket) {
    OTW_ASSERT(bottom_.empty());
    bottom_ = std::move(bucket);
    std::sort(bottom_.begin(), bottom_.end(), DescOrder{comp_});
  }

  void spawn_rung(std::vector<Event>&& bucket, std::uint64_t start,
                  std::uint64_t span) {
    Rung rung;
    rung.start = start;
    rung.limit = sat_add(start, span);
    rung.width = std::max<std::uint64_t>(
        1, span / std::min<std::uint64_t>(bucket.size(), kMaxBucketsPerRung));
    const std::uint64_t nb = (span + rung.width - 1) / rung.width;
    rung.buckets.assign(
        static_cast<std::size_t>(
            std::clamp<std::uint64_t>(nb, 1, kMaxBucketsPerRung + 1)),
        {});
    rungs_.push_back(std::move(rung));
    Rung& back = rungs_.back();
    for (const Event& event : bucket) {
      place(back, event);
    }
  }

  void spread_top() {
    OTW_ASSERT(!top_.empty() && rungs_.empty());
    const std::uint64_t new_start = sat_add(top_max_, 1);
    if (top_.size() <= kSpawnThreshold || top_min_ == top_max_) {
      sort_into_bottom(std::move(top_));
    } else {
      spawn_rung(std::move(top_), top_min_, top_max_ - top_min_ + 1);
    }
    top_.clear();
    top_start_ = new_start;
    top_min_ = UINT64_MAX;
    top_max_ = 0;
  }

  std::vector<Event> bottom_;  ///< sorted descending; minimum at back()
  std::vector<Rung> rungs_;    ///< [0] coarsest .. back() finest
  std::vector<Event> top_;     ///< unsorted region [top_start_, inf)
  std::uint64_t top_start_ = 0;
  std::uint64_t top_min_ = UINT64_MAX;
  std::uint64_t top_max_ = 0;
  std::size_t size_ = 0;
  [[no_unique_address]] Compare comp_{};
};

// ---------------------------------------------------------------------------
// Split pending set: sorted processed run + backend unprocessed set
// ---------------------------------------------------------------------------

template <class Backend, QueueKind Kind>
class SplitPendingSet final : public PendingEventSet {
 public:
  explicit SplitPendingSet(SlabPool* pool) : unprocessed_(pool) {}

  [[nodiscard]] QueueKind kind() const noexcept override { return Kind; }

  bool insert(const Event& event) override {
    OTW_REQUIRE_MSG(!event.negative,
                    "anti-messages are never stored in the input queue");
    if (!processed_.empty() && InputOrder{}(event, processed_.back())) {
      // Straggler: parked in the processed run; the rollback this return
      // value triggers rewinds it back into the unprocessed backend.
      const auto it = std::upper_bound(processed_.begin(), processed_.end(),
                                       event, InputOrder{});
      processed_.insert(it, event);
      return true;
    }
    unprocessed_.insert(event);
    return false;
  }

  [[nodiscard]] const Event* peek_next() const override {
    return unprocessed_.peek_min();
  }

  const Event& advance() override {
    processed_.push_back(unprocessed_.pop_min());
    return processed_.back();
  }

  void rewind_to_after(const Position& checkpoint) override {
    while (!processed_.empty() && checkpoint < processed_.back().position()) {
      unprocessed_.insert(processed_.back());
      processed_.pop_back();
    }
  }

  [[nodiscard]] std::size_t processed_after(const Position& pos) const override {
    const auto it = std::upper_bound(processed_.begin(), processed_.end(), pos,
                                     PositionBefore{});
    return static_cast<std::size_t>(processed_.end() - it);
  }

  [[nodiscard]] MatchStatus find_match(const Event& anti) const override {
    if (find_processed(anti) != nullptr) {
      return MatchStatus::Processed;
    }
    if (unprocessed_.find(anti) != nullptr) {
      return MatchStatus::Unprocessed;
    }
    return MatchStatus::NotFound;
  }

  void erase_match(const Event& anti) override {
    OTW_REQUIRE_MSG(find_processed(anti) == nullptr,
                    "matching positive still processed; rollback must precede erase");
    const bool erased = unprocessed_.erase(anti);
    OTW_REQUIRE_MSG(erased, "anti-message with no matching positive");
  }

  std::size_t fossil_collect_before(const Position& pos) override {
    std::size_t dropped = 0;
    while (!processed_.empty() && processed_.front().position() < pos) {
      processed_.pop_front();
      ++dropped;
    }
    return dropped;
  }

  [[nodiscard]] std::size_t size() const noexcept override {
    return processed_.size() + unprocessed_.size();
  }

  [[nodiscard]] std::size_t processed_count() const noexcept override {
    return processed_.size();
  }

  [[nodiscard]] std::vector<Event> snapshot() const override {
    std::vector<Event> out(processed_.begin(), processed_.end());
    out.reserve(size());
    unprocessed_.for_each([&out](const Event& event) { out.push_back(event); });
    return out;
  }

 private:
  struct PositionBefore {
    bool operator()(const Position& pos, const Event& event) const noexcept {
      return pos < event.position();
    }
  };

  [[nodiscard]] const Event* find_processed(const Event& anti) const {
    const auto it = std::lower_bound(processed_.begin(), processed_.end(), anti,
                                     InputOrder{});
    if (it != processed_.end() && !InputOrder{}(anti, *it)) {
      return &*it;
    }
    return nullptr;
  }

  std::deque<Event> processed_;  ///< InputOrder-sorted processed run
  /// mutable: the ladder's peek materialises its bottom band on demand.
  mutable Backend unprocessed_;
};

using SkipListPendingSet =
    SplitPendingSet<SkipListSet<InputOrder>, QueueKind::SkipList>;
using LadderPendingSet =
    SplitPendingSet<LadderSet<InputOrder>, QueueKind::LadderQueue>;

// ---------------------------------------------------------------------------
// Central event lists (sequential kernel)
// ---------------------------------------------------------------------------

class MultisetCentral final : public CentralEventList {
 public:
  explicit MultisetCentral(SlabPool* pool)
      : pending_(SeqOrder{}, PoolAllocator<Event>(pool)) {}

  void insert(const Event& event) override { pending_.insert(event); }
  [[nodiscard]] const Event* lowest() const override {
    return pending_.empty() ? nullptr : &*pending_.begin();
  }
  void pop_lowest() override { pending_.erase(pending_.begin()); }
  [[nodiscard]] std::size_t size() const noexcept override {
    return pending_.size();
  }

 private:
  std::multiset<Event, SeqOrder, PoolAllocator<Event>> pending_;
};

template <class Backend>
class BackendCentral final : public CentralEventList {
 public:
  explicit BackendCentral(SlabPool* pool) : backend_(pool) {}

  void insert(const Event& event) override { backend_.insert(event); }
  [[nodiscard]] const Event* lowest() const override {
    return backend_.peek_min();
  }
  void pop_lowest() override { (void)backend_.pop_min(); }
  [[nodiscard]] std::size_t size() const noexcept override {
    return backend_.size();
  }

 private:
  /// mutable: the ladder's peek materialises its bottom band on demand.
  mutable Backend backend_;
};

}  // namespace

std::unique_ptr<PendingEventSet> make_pending_set(QueueKind kind,
                                                  SlabPool* pool) {
  switch (kind) {
    case QueueKind::Multiset:
      return std::make_unique<MultisetPendingSet>(pool);
    case QueueKind::SkipList:
      return std::make_unique<SkipListPendingSet>(pool);
    case QueueKind::LadderQueue:
      return std::make_unique<LadderPendingSet>(pool);
  }
  OTW_REQUIRE_MSG(false, "unknown QueueKind");
  return nullptr;  // unreachable
}

std::unique_ptr<CentralEventList> make_central_event_list(QueueKind kind,
                                                          SlabPool* pool) {
  switch (kind) {
    case QueueKind::Multiset:
      return std::make_unique<MultisetCentral>(pool);
    case QueueKind::SkipList:
      return std::make_unique<BackendCentral<SkipListSet<SeqOrder>>>(pool);
    case QueueKind::LadderQueue:
      return std::make_unique<BackendCentral<LadderSet<SeqOrder>>>(pool);
  }
  OTW_REQUIRE_MSG(false, "unknown QueueKind");
  return nullptr;  // unreachable
}

}  // namespace otw::tw
