// Shared POD/stats wire codec for the kernel's cross-process payloads: the
// shard harvest blobs (distributed.cpp) and the MIGRATE frame body
// (lp.cpp/object_runtime.cpp) encode with the same helpers, so the two
// paths cannot drift. Fork guarantees one ABI per run, so trivially
// copyable types ship as raw bytes; only types holding heap state
// (ObjectStats' histogram) are encoded field-wise.
// Include-path private to src/timewarp; not installed.
#pragma once

#include <bit>
#include <type_traits>
#include <vector>

#include "otw/platform/wire.hpp"
#include "otw/tw/stats.hpp"

namespace otw::tw::detail {

template <typename T>
void write_pod(platform::WireWriter& w, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  w.bytes(&value, sizeof value);
}

template <typename T>
[[nodiscard]] T read_pod(platform::WireReader& r) {
  static_assert(std::is_trivially_copyable_v<T>);
  T value{};
  r.bytes(&value, sizeof value);
  return value;
}

template <typename T>
void write_pod_vector(platform::WireWriter& w, const std::vector<T>& values) {
  static_assert(std::is_trivially_copyable_v<T>);
  w.u32(static_cast<std::uint32_t>(values.size()));
  w.bytes(values.data(), values.size() * sizeof(T));
}

template <typename T>
[[nodiscard]] std::vector<T> read_pod_vector(platform::WireReader& r) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::vector<T> values(r.u32());
  r.bytes(values.data(), values.size() * sizeof(T));
  return values;
}

inline void encode_object_stats(platform::WireWriter& w, const ObjectStats& s) {
  w.u64(s.events_processed);
  w.u64(s.events_committed);
  w.u64(s.events_rolled_back);
  w.u64(s.rollbacks);
  w.u64(s.coast_forward_events);
  w.u64(s.states_saved);
  w.u64(s.state_restores);
  w.u64(s.messages_sent);
  w.u64(s.anti_messages_sent);
  w.u64(s.anti_messages_received);
  w.u64(s.stragglers);
  w.u64(s.lazy_hits);
  w.u64(s.lazy_misses);
  w.u64(s.passive_hits);
  w.u64(s.passive_misses);
  w.u64(s.cancellation_switches);
  w.u64(s.checkpoint_control_ticks);
  w.u32(s.final_checkpoint_interval);
  w.u8(static_cast<std::uint8_t>(s.final_mode));
  w.u64(std::bit_cast<std::uint64_t>(s.final_hit_ratio));
  w.u32(static_cast<std::uint32_t>(s.rollback_length.num_buckets()));
  for (std::size_t i = 0; i < s.rollback_length.num_buckets(); ++i) {
    w.u64(s.rollback_length.bucket(i));
  }
}

[[nodiscard]] inline ObjectStats decode_object_stats(platform::WireReader& r) {
  ObjectStats s;
  s.events_processed = r.u64();
  s.events_committed = r.u64();
  s.events_rolled_back = r.u64();
  s.rollbacks = r.u64();
  s.coast_forward_events = r.u64();
  s.states_saved = r.u64();
  s.state_restores = r.u64();
  s.messages_sent = r.u64();
  s.anti_messages_sent = r.u64();
  s.anti_messages_received = r.u64();
  s.stragglers = r.u64();
  s.lazy_hits = r.u64();
  s.lazy_misses = r.u64();
  s.passive_hits = r.u64();
  s.passive_misses = r.u64();
  s.cancellation_switches = r.u64();
  s.checkpoint_control_ticks = r.u64();
  s.final_checkpoint_interval = r.u32();
  s.final_mode = static_cast<core::CancellationMode>(r.u8());
  s.final_hit_ratio = std::bit_cast<double>(r.u64());
  std::vector<std::uint64_t> buckets(r.u32());
  for (std::uint64_t& bucket : buckets) {
    bucket = r.u64();
  }
  s.rollback_length = util::Log2Histogram::from_buckets(std::move(buckets));
  return s;
}

}  // namespace otw::tw::detail
