#include "otw/tw/queues.hpp"

#include <algorithm>

namespace otw::tw {

namespace {
/// Sentinel event occupying exactly the given position.
Event at_position(const Position& pos) noexcept {
  Event s;
  s.recv_time = pos.key.recv_time;
  s.sender = pos.key.sender;
  s.seq = pos.key.seq;
  s.instance = pos.instance;
  return s;
}
}  // namespace

bool InputQueue::insert(const Event& event) {
  OTW_REQUIRE_MSG(!event.negative, "anti-messages are never stored in the input queue");
  const bool straggler =
      next_ != events_.begin() && InputOrder{}(event, *std::prev(next_));
  const auto pos = events_.insert(event);
  if (!straggler &&
      (next_ == events_.end() || InputOrder{}(*pos, *next_))) {
    next_ = pos;
  }
  return straggler;
}

const Event& InputQueue::advance() {
  OTW_ASSERT(next_ != events_.end());
  const Event& event = *next_;
  ++next_;
  return event;
}

void InputQueue::rewind_to_after(const Position& checkpoint) {
  next_ = events_.upper_bound(at_position(checkpoint));
}

std::size_t InputQueue::processed_after(const Position& pos) const {
  auto it = events_.upper_bound(at_position(pos));
  std::size_t n = 0;
  while (it != next_) {
    OTW_ASSERT(it != events_.end());
    ++it;
    ++n;
  }
  return n;
}

bool InputQueue::is_processed(Set::const_iterator it) const {
  if (next_ == events_.end()) {
    return true;
  }
  return InputOrder{}(*it, *next_);
}

InputQueue::MatchStatus InputQueue::find_match(const Event& anti) const {
  const auto it = events_.find(anti);
  if (it == events_.end()) {
    return MatchStatus::NotFound;
  }
  OTW_ASSERT(it->matches_instance(anti));
  return is_processed(it) ? MatchStatus::Processed : MatchStatus::Unprocessed;
}

void InputQueue::erase_match(const Event& anti) {
  const auto it = events_.find(anti);
  OTW_REQUIRE_MSG(it != events_.end(), "anti-message with no matching positive");
  OTW_REQUIRE_MSG(!is_processed(it),
                  "matching positive still processed; rollback must precede erase");
  if (it == next_) {
    next_ = events_.erase(it);
  } else {
    events_.erase(it);
  }
}

std::size_t InputQueue::fossil_collect_before(const Position& pos) {
  std::size_t dropped = 0;
  auto it = events_.begin();
  while (it != next_ && it->position() < pos) {
    it = events_.erase(it);
    ++dropped;
  }
  return dropped;
}

std::size_t InputQueue::processed_count() const {
  return static_cast<std::size_t>(
      std::distance(events_.begin(), Set::const_iterator(next_)));
}

void OutputQueue::record(const Position& cause, const Event& event) {
  OTW_ASSERT(sent_.empty() || !(cause < sent_.back().cause));
  sent_.push_back(OutputEntry{cause, event});
}

std::vector<OutputEntry> OutputQueue::extract_after(const Position& target,
                                                    bool inclusive) {
  std::vector<OutputEntry> extracted;
  while (!sent_.empty() && (target < sent_.back().cause ||
                            (inclusive && target == sent_.back().cause))) {
    extracted.push_back(std::move(sent_.back()));
    sent_.pop_back();
  }
  std::reverse(extracted.begin(), extracted.end());
  return extracted;
}

void OutputQueue::fossil_collect_before(VirtualTime gvt) {
  while (!sent_.empty() && sent_.front().cause.recv_time() < gvt) {
    sent_.pop_front();
  }
}

void StateQueue::save(const Position& pos, std::unique_ptr<ObjectState> state) {
  OTW_REQUIRE(state != nullptr);
  OTW_REQUIRE_MSG(entries_.empty() || entries_.back().pos < pos,
                  "checkpoint positions must be strictly increasing");
  bytes_ += state->byte_size();
  entries_.push_back(Entry{pos, std::move(state)});
}

void StateQueue::retire(Entry& entry) noexcept {
  bytes_ -= entry.state->byte_size();
  if (arena_ != nullptr) {
    arena_->release(std::move(entry.state));
  }
}

const StateQueue::Entry* StateQueue::latest_before(const Position& target) const {
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    if (it->pos < target) {
      return &*it;
    }
  }
  return nullptr;
}

void StateQueue::drop_from(const Position& target) {
  while (!entries_.empty() && !(entries_.back().pos < target)) {
    retire(entries_.back());
    entries_.pop_back();
  }
}

Position StateQueue::fossil_collect(VirtualTime gvt) {
  OTW_REQUIRE(!entries_.empty());
  // Find the latest checkpoint strictly before gvt; everything older goes.
  std::size_t keeper = 0;
  bool found = false;
  for (std::size_t i = entries_.size(); i-- > 0;) {
    if (entries_[i].pos.recv_time() < gvt) {
      keeper = i;
      found = true;
      break;
    }
  }
  if (!found) {
    // Even the oldest checkpoint is at/after gvt: nothing is collectable.
    return entries_.front().pos;
  }
  for (std::size_t i = 0; i < keeper; ++i) {
    retire(entries_[i]);
  }
  entries_.erase(entries_.begin(),
                 entries_.begin() + static_cast<std::ptrdiff_t>(keeper));
  return entries_.front().pos;
}

}  // namespace otw::tw
