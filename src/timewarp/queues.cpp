#include "otw/tw/queues.hpp"

#include <algorithm>

namespace otw::tw {

// InputQueue is a header-only facade over PendingEventSet; the concrete
// implementations (multiset / skip list / ladder queue) live in
// pending_set.cpp.

void OutputQueue::record(const Position& cause, const Event& event) {
  OTW_ASSERT(sent_.empty() || !(cause < sent_.back().cause));
  sent_.push_back(OutputEntry{cause, event});
}

std::vector<OutputEntry> OutputQueue::extract_after(const Position& target,
                                                    bool inclusive) {
  std::vector<OutputEntry> extracted;
  while (!sent_.empty() && (target < sent_.back().cause ||
                            (inclusive && target == sent_.back().cause))) {
    extracted.push_back(std::move(sent_.back()));
    sent_.pop_back();
  }
  std::reverse(extracted.begin(), extracted.end());
  return extracted;
}

void OutputQueue::fossil_collect_before(VirtualTime gvt) {
  while (!sent_.empty() && sent_.front().cause.recv_time() < gvt) {
    sent_.pop_front();
  }
}

void StateQueue::save(const Position& pos, std::unique_ptr<ObjectState> state) {
  OTW_REQUIRE(state != nullptr);
  OTW_REQUIRE_MSG(entries_.empty() || entries_.back().pos < pos,
                  "checkpoint positions must be strictly increasing");
  bytes_ += state->byte_size();
  entries_.push_back(Entry{pos, std::move(state)});
}

void StateQueue::retire(Entry& entry) noexcept {
  bytes_ -= entry.state->byte_size();
  if (arena_ != nullptr) {
    arena_->release(std::move(entry.state));
  }
}

const StateQueue::Entry* StateQueue::latest_before(const Position& target) const {
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    if (it->pos < target) {
      return &*it;
    }
  }
  return nullptr;
}

void StateQueue::drop_from(const Position& target) {
  while (!entries_.empty() && !(entries_.back().pos < target)) {
    retire(entries_.back());
    entries_.pop_back();
  }
}

Position StateQueue::fossil_collect(VirtualTime gvt) {
  OTW_REQUIRE(!entries_.empty());
  // Find the latest checkpoint strictly before gvt; everything older goes.
  std::size_t keeper = 0;
  bool found = false;
  for (std::size_t i = entries_.size(); i-- > 0;) {
    if (entries_[i].pos.recv_time() < gvt) {
      keeper = i;
      found = true;
      break;
    }
  }
  if (!found) {
    // Even the oldest checkpoint is at/after gvt: nothing is collectable.
    return entries_.front().pos;
  }
  for (std::size_t i = 0; i < keeper; ++i) {
    retire(entries_[i]);
  }
  entries_.erase(entries_.begin(),
                 entries_.begin() + static_cast<std::ptrdiff_t>(keeper));
  return entries_.front().pos;
}

}  // namespace otw::tw
