#include "otw/tw/wire.hpp"

#include <array>
#include <memory>
#include <vector>

#include "otw/tw/messages.hpp"
#include "otw/util/assert.hpp"

namespace otw::tw {

void encode_event(platform::WireWriter& writer, const Event& event) {
  writer.u64(event.recv_time.ticks());
  writer.u64(event.send_time.ticks());
  writer.u32(event.sender);
  writer.u32(event.receiver);
  writer.u64(event.seq);
  writer.u64(event.instance);
  writer.u8(event.negative ? 1 : 0);
  writer.u8(event.color);
  writer.u8(static_cast<std::uint8_t>(event.payload.size()));
  writer.bytes(event.payload.data(), event.payload.size());
}

Event decode_event(platform::WireReader& reader) {
  Event event;
  event.recv_time = VirtualTime{reader.u64()};
  event.send_time = VirtualTime{reader.u64()};
  event.sender = reader.u32();
  event.receiver = reader.u32();
  event.seq = reader.u64();
  event.instance = reader.u64();
  event.negative = reader.u8() != 0;
  event.color = reader.u8();
  const std::size_t payload_len = reader.u8();
  OTW_REQUIRE_MSG(payload_len <= kMaxPayloadBytes, "payload exceeds capacity");
  std::array<std::byte, kMaxPayloadBytes> raw;
  reader.bytes(raw.data(), payload_len);
  event.payload = Payload::from_bytes(raw.data(), payload_len);
  return event;
}

// --- EventBatchMessage: u32 count | count * event -------------------------

std::uint16_t EventBatchMessage::wire_tag() const noexcept {
  return kTagEventBatch;
}

void EventBatchMessage::encode_wire(platform::WireWriter& writer) const {
  writer.u32(static_cast<std::uint32_t>(events_.size()));
  for (const Event& event : events_) {
    encode_event(writer, event);
  }
}

// --- GvtTokenMessage: u8 white | u32 round | u64 count (two's complement) |
//     u64 min_lvt | u64 min_red_send ---------------------------------------

std::uint16_t GvtTokenMessage::wire_tag() const noexcept { return kTagGvtToken; }

void GvtTokenMessage::encode_wire(platform::WireWriter& writer) const {
  writer.u8(white_color);
  writer.u32(round);
  writer.u64(static_cast<std::uint64_t>(count));
  writer.u64(min_lvt.ticks());
  writer.u64(min_red_send.ticks());
}

// --- GvtAnnounceMessage: u64 gvt ------------------------------------------

std::uint16_t GvtAnnounceMessage::wire_tag() const noexcept {
  return kTagGvtAnnounce;
}

void GvtAnnounceMessage::encode_wire(platform::WireWriter& writer) const {
  writer.u64(gvt_.ticks());
}

void register_wire_messages() {
  auto& registry = platform::WireRegistry::instance();
  registry.register_decoder(
      kTagEventBatch, "tw.EventBatch",
      [](platform::WireReader& reader) -> std::unique_ptr<platform::EngineMessage> {
        const std::uint32_t count = reader.u32();
        std::vector<Event> events;
        events.reserve(count);
        for (std::uint32_t i = 0; i < count; ++i) {
          events.push_back(decode_event(reader));
        }
        return std::make_unique<EventBatchMessage>(std::move(events));
      });
  registry.register_decoder(
      kTagGvtToken, "tw.GvtToken",
      [](platform::WireReader& reader) -> std::unique_ptr<platform::EngineMessage> {
        auto token = std::make_unique<GvtTokenMessage>();
        token->white_color = reader.u8();
        token->round = reader.u32();
        token->count = static_cast<std::int64_t>(reader.u64());
        token->min_lvt = VirtualTime{reader.u64()};
        token->min_red_send = VirtualTime{reader.u64()};
        return token;
      });
  registry.register_decoder(
      kTagGvtAnnounce, "tw.GvtAnnounce",
      [](platform::WireReader& reader) -> std::unique_ptr<platform::EngineMessage> {
        return std::make_unique<GvtAnnounceMessage>(VirtualTime{reader.u64()});
      });
}

}  // namespace otw::tw
