#include "otw/tw/memory_pool.hpp"

#include <algorithm>
#include <bit>

namespace otw::tw {

SlabPool::~SlabPool() = default;

std::size_t SlabPool::class_index(std::size_t size) noexcept {
  const std::size_t clamped = std::max(size, kMinBlock);
  // 64 -> 0, 65..128 -> 1, ..., 2049..4096 -> 6.
  return static_cast<std::size_t>(std::bit_width(clamped - 1)) - 6;
}

std::size_t SlabPool::class_block_size(std::size_t index) noexcept {
  return kMinBlock << index;
}

void* SlabPool::allocate(std::size_t size) {
  ++stats_.allocations;
  ++stats_.live_blocks;
  stats_.peak_live_blocks = std::max(stats_.peak_live_blocks, stats_.live_blocks);
  if (size > kMaxBlock) {
    ++stats_.oversize;
    return ::operator new(size);
  }
  const std::size_t index = class_index(size);
  if (FreeNode* node = freelists_[index]; node != nullptr) {
    freelists_[index] = node->next;
    ++stats_.freelist_hits;
    return node;
  }
  return bump_allocate(index);
}

void* SlabPool::bump_allocate(std::size_t index) {
  const std::size_t block = class_block_size(index);
  if (static_cast<std::size_t>(bump_end_ - bump_) < block) {
    // New slab: at least 16 blocks of this class so the bump region
    // amortizes, never below 16 KiB so small classes batch well.
    const std::size_t slab_size = std::max<std::size_t>(block * 16, 16384);
    slabs_.push_back(std::make_unique<std::byte[]>(slab_size));
    bump_ = slabs_.back().get();
    bump_end_ = bump_ + slab_size;
    stats_.slab_bytes += slab_size;
  }
  std::byte* ptr = bump_;
  bump_ += block;
  return ptr;
}

void SlabPool::deallocate(void* ptr, std::size_t size) noexcept {
  if (ptr == nullptr) {
    return;
  }
  OTW_REQUIRE_MSG(stats_.live_blocks > 0,
                  "SlabPool::deallocate without allocate");
  --stats_.live_blocks;
  if (size > kMaxBlock) {
    ::operator delete(ptr);
    return;
  }
  const std::size_t index = class_index(size);
  auto* node = static_cast<FreeNode*>(ptr);
  node->next = freelists_[index];
  freelists_[index] = node;
}

std::unique_ptr<ObjectState> StateArena::acquire_copy(const ObjectState& src) {
  while (!free_.empty()) {
    std::unique_ptr<ObjectState> state = std::move(free_.back());
    free_.pop_back();
    if (state->assign_from(src)) {
      ++recycled_;
      return state;
    }
    // Type/size mismatch (object changed state shape): drop and retry.
  }
  ++cloned_;
  return src.clone();
}

void StateArena::release(std::unique_ptr<ObjectState> state) noexcept {
  if (state == nullptr || free_.size() >= capacity_) {
    return;
  }
  free_.push_back(std::move(state));
}

}  // namespace otw::tw
