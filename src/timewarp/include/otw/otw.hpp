// Umbrella header: the whole public surface in one include.
//
//   #include "otw/otw.hpp"
//
//   otw::tw::Model model;          // objects + LP placement
//   otw::tw::KernelConfig kc;      // kernel + controller + engine selection
//   kc.engine.kind = otw::tw::EngineKind::Threaded;
//   otw::tw::RunResult r = otw::tw::run(model, kc);
//
// Fine-grained headers stay available for code that wants a narrower
// dependency (e.g. only otw/tw/virtual_time.hpp in a model library).
#pragma once

// Application API: SimulationObject, ObjectContext, ObjectState, PodState.
#include "otw/tw/event.hpp"
#include "otw/tw/object.hpp"
#include "otw/tw/virtual_time.hpp"

// Kernel entry points: Model, KernelConfig, EngineKind, tw::run, RunResult,
// run_sequential, plus the per-engine tuning structs (EngineTuning).
#include "otw/tw/kernel.hpp"

// Suspend/resume: tw::snapshot / tw::restore over OTWSNAP1 containers.
#include "otw/tw/snapshot.hpp"

// Results and instrumentation: stats, controller telemetry, trace export
// (Chrome trace / JSONL / Prometheus text).
#include "otw/tw/observability.hpp"
#include "otw/tw/stats.hpp"
#include "otw/tw/telemetry.hpp"

// Controller configuration types referenced from KernelConfig.
#include "otw/comm/aggregation.hpp"
#include "otw/core/cancellation_controller.hpp"
#include "otw/core/checkpoint_controller.hpp"
#include "otw/core/optimism_controller.hpp"
#include "otw/core/pressure_controller.hpp"

// Engine tuning (cost models, worker/shard knobs) for EngineTuning members.
#include "otw/platform/cost_model.hpp"
#include "otw/platform/distributed.hpp"
#include "otw/platform/simulated_now.hpp"
#include "otw/platform/threaded.hpp"
