// Suspend/resume for the sequential engine.
//
// tw::snapshot runs a model's ground-truth sequential execution up to a
// virtual-time cut and writes the suspended run to an "OTWSNAP1" container
// (platform/snapshot_file.hpp); tw::restore reads it back and runs to the
// real horizon. A restored run is bit-identical to an uninterrupted
// run_sequential over the same horizon: the cut falls between events, so
// the committed order is unchanged.
//
// The single shard section's blob layout (engine = 0, sequential):
//
//   u32 object_count
//   per object:
//     u32 object_id
//     u32 payload_bytes          8 + state size
//     u64 events_committed       feeds events_per_object after resume
//     bytes state                ObjectState::raw_bytes view
//   u64 events_processed
//   u64 final_time_ticks        recv_time of the last event before the cut
//   u32 pending_count
//   per pending event: the shared event codec (tw/wire.hpp encode_event)
//
// Only flat states (ObjectState::raw_bytes != nullptr, e.g. PodState) can
// suspend; tw::snapshot REQUIRE-fails with a descriptive message otherwise.
#pragma once

#include <string>

#include "otw/tw/kernel.hpp"

namespace otw::tw {

/// What tw::snapshot left on disk.
struct SnapshotResult {
  std::uint64_t events_processed = 0;      ///< committed before the cut
  VirtualTime suspend_time = VirtualTime::zero();  ///< last committed time
  std::uint64_t pending_events = 0;        ///< events frozen in the queue
  std::uint64_t bytes = 0;                 ///< container size on disk
};

/// Runs `model` sequentially until the next event would exceed `suspend_at`,
/// then writes the suspended run to `path`. The model is NOT finalized.
SnapshotResult snapshot(const Model& model, VirtualTime suspend_at,
                        const std::string& path,
                        QueueKind queue = QueueKind::Multiset);

/// Resumes a run written by tw::snapshot and carries it to `end_time`
/// (initialize() is not replayed; finalize() runs at the real end). The
/// returned digests match an uninterrupted run_sequential(model, end_time).
SequentialResult restore(const Model& model, const std::string& path,
                         VirtualTime end_time = VirtualTime::infinity(),
                         QueueKind queue = QueueKind::Multiset);

}  // namespace otw::tw
