// Per-object Time Warp machinery: event processing, periodic checkpointing,
// rollback with coast-forward, aggressive/lazy/dynamic cancellation, and the
// per-object feedback controllers.
#pragma once

#include <memory>
#include <vector>

#include "otw/core/cancellation_controller.hpp"
#include "otw/core/checkpoint_controller.hpp"
#include "otw/obs/recorder.hpp"
#include "otw/platform/cost_model.hpp"
#include "otw/tw/event.hpp"
#include "otw/tw/object.hpp"
#include "otw/tw/checkpoint_store.hpp"
#include "otw/tw/queues.hpp"
#include "otw/tw/stats.hpp"
#include "otw/tw/telemetry.hpp"

namespace otw::platform {
class WireReader;
class WireWriter;
}  // namespace otw::platform

namespace otw::tw {

/// Services an ObjectRuntime needs from its logical process.
class LpServices {
 public:
  virtual ~LpServices() = default;

  /// Takes ownership of a finished outgoing event (positive or anti) and
  /// routes it: deferred local delivery for same-LP receivers, the
  /// aggregation layer for remote ones.
  virtual void route(Event&& event) = 0;

  /// Platform wall clock / work accounting (modeled or real nanoseconds).
  [[nodiscard]] virtual std::uint64_t wall_now_ns() const noexcept = 0;
  virtual void wall_charge(std::uint64_t ns) noexcept = 0;

  [[nodiscard]] virtual const platform::CostModel& costs() const noexcept = 0;
  [[nodiscard]] virtual VirtualTime end_time() const noexcept = 0;

  /// Notification that a rollback undid `undone` processed events (feeds the
  /// LP-level optimism-window controller). Default: ignored.
  virtual void note_rollback(std::size_t undone) noexcept {
    static_cast<void>(undone);
  }

  /// The LP's observability sink (trace ring + phase profiler). The default
  /// is a shared disabled recorder, so test stubs record nothing.
  [[nodiscard]] virtual obs::Recorder& recorder() noexcept {
    static obs::Recorder disabled;
    return disabled;
  }

  /// The LP's slab pool for input-queue nodes (null: use the global heap).
  /// Must outlive every ObjectRuntime built against these services.
  [[nodiscard]] virtual SlabPool* event_pool() noexcept { return nullptr; }

  /// Pending-event-set implementation for every input queue this LP's
  /// runtimes build (KernelConfig::engine.queue; see pending_set.hpp).
  [[nodiscard]] virtual QueueKind queue_kind() const noexcept {
    return QueueKind::Multiset;
  }
};

struct ObjectRuntimeConfig {
  /// Static checkpoint interval chi (1 = copy state after every event).
  std::uint32_t checkpoint_interval = 1;
  /// Controller-trajectory recording (off by default).
  TelemetryConfig telemetry;
  /// Checkpoint representation: full copies or byte deltas (paper ref [7]).
  StateSaving state_saving = StateSaving::Copy;
  /// Incremental mode: saves between full snapshots.
  std::uint32_t full_snapshot_interval = 32;
  /// When true, chi is driven by the CheckpointIntervalController instead.
  bool dynamic_checkpointing = false;
  core::CheckpointControlConfig checkpoint_control;
  core::CancellationControlConfig cancellation;
  /// Bound on the passive-comparison list used to maintain HR under
  /// aggressive cancellation.
  std::size_t passive_compare_cap = 64;
};

class ObjectRuntime final : public ObjectContext {
 public:
  ObjectRuntime(ObjectId id, std::unique_ptr<SimulationObject> object,
                LpServices& lp, const ObjectRuntimeConfig& config);

  /// Creates the initial state, lets the object schedule its first events
  /// and records the time-zero checkpoint.
  void initialize();

  /// Receive time of the next unprocessed event (infinity when none).
  [[nodiscard]] VirtualTime next_event_time() const noexcept {
    return input_.next_unprocessed_time();
  }

  /// This object's GVT contribution: the next unprocessed event (clamped by
  /// the simulation horizon) AND the earliest receive time among
  /// lazy-pending entries (anti-messages this object may still send).
  [[nodiscard]] VirtualTime gvt_contribution(VirtualTime end_time) const noexcept;

  /// Processes the next unprocessed event if there is one at/below the
  /// simulation end time. Returns false when there is nothing to do.
  bool process_next();

  /// Delivers one incoming event (positive or anti-message). May trigger a
  /// rollback, which may route anti-messages through LpServices.
  void receive(const Event& event);

  /// Resolves lazy-pending and passive entries that can no longer be
  /// regenerated. Called when the object goes idle (and internally before
  /// each processed event).
  void idle_flush();

  /// Reclaims history below the new GVT; accumulates committed events.
  void fossil_collect(VirtualTime gvt);

  /// Commits remaining history and calls the object's finalize().
  void finalize();

  /// First phase of migration: rolls back every processed event at/after
  /// the GVT cut `gvt` (cancelling their outputs per the cancellation
  /// strategy) and force-misses the comparison lists. The resulting
  /// anti-messages may target sibling runtimes of the same LP, so the LP
  /// freezes ALL of its runtimes first, then drains the deferred local
  /// deliveries (each anti annihilates a now-unprocessed event — no further
  /// rollback), and only then serializes: an anti-message must never reach
  /// an already-serialized sibling.
  void migration_freeze(VirtualTime gvt);

  /// Second phase: commits the surviving processed prefix in place and
  /// serializes the runtime's travelling state (the `runtimes` group of the
  /// MIGRATE frame; DESIGN.md section 8b). Requires migration_freeze() and
  /// a settled local inbox. After this call the runtime is inert on the
  /// source shard.
  void migrate_out(platform::WireWriter& w, VirtualTime gvt);

  /// Non-destructive variant of migrate_out's serialization: writes the
  /// identical travelling layout (snapshot/restart reuses the MIGRATE
  /// revival path, DESIGN.md section 8c) but leaves every queue, stat and
  /// controller untouched so the runtime keeps executing afterwards.
  /// Requires the same preconditions as migrate_out (frozen + settled).
  void encode_frozen(platform::WireWriter& w);

  /// Migration restore: resets every queue/checkpoint structure and rebuilds
  /// the runtime from a MIGRATE payload. `gvt` is the same cut; the restored
  /// state is checkpointed at Position::before_all(), which any legal
  /// rollback (>= gvt, below every shipped event) can restore.
  void migrate_in(platform::WireReader& r, VirtualTime gvt);

  // --- ObjectContext (application-facing) ---
  [[nodiscard]] ObjectId self() const noexcept override { return id_; }
  [[nodiscard]] VirtualTime now() const noexcept override { return lvt_; }
  [[nodiscard]] ObjectState& state() noexcept override { return *current_state_; }
  void send(ObjectId dest, VirtualTime::rep delay, const Payload& payload) override;
  void charge(std::uint64_t ns) noexcept override { lp_.wall_charge(ns); }

  // --- introspection (stats, tests) ---
  [[nodiscard]] const ObjectStats& stats() const noexcept { return stats_; }
  [[nodiscard]] ObjectStats snapshot_stats() const;
  [[nodiscard]] std::uint64_t state_digest() const noexcept {
    return current_state_->digest();
  }
  [[nodiscard]] const SimulationObject& object() const noexcept { return *object_; }
  [[nodiscard]] const InputQueue& input_queue() const noexcept { return input_; }
  [[nodiscard]] const OutputQueue& output_queue() const noexcept { return output_; }
  [[nodiscard]] std::size_t lazy_pending_size() const noexcept {
    return lazy_pending_.size();
  }
  [[nodiscard]] const core::CancellationController& cancellation() const noexcept {
    return cancel_;
  }
  [[nodiscard]] const core::CheckpointIntervalController& checkpoint_controller()
      const noexcept {
    return ckpt_;
  }
  [[nodiscard]] std::uint32_t checkpoint_interval() const noexcept {
    return config_.dynamic_checkpointing ? ckpt_.interval()
                                         : config_.checkpoint_interval;
  }
  [[nodiscard]] const std::vector<ObjectSample>& trace() const noexcept {
    return trace_;
  }
  /// Current memory footprint of this object's optimistic history (exact
  /// byte accounting; the LP sums these against its budget).
  [[nodiscard]] MemoryStats memory_footprint() const noexcept;
  [[nodiscard]] const StateArena& state_arena() const noexcept { return arena_; }

 private:
  void execute(const Event& event);
  /// Rolls back to before `target`. `cause` is the message that forced the
  /// rollback (straggler or anti-message) — traced so the analysis layer can
  /// chain cascades across LPs. cancel_at_target additionally cancels
  /// outputs caused by the event AT `target` (annihilation: that event will
  /// never re-execute).
  void rollback(const Position& target, const Event& cause,
                bool cancel_at_target = false);
  void coast_forward(const Position& target);
  void cancel_invalid_outputs(std::vector<OutputEntry>&& invalid);
  void purge_entries_caused_by(const Position& cause);
  void flush_resolved_before(const Position& pos);
  void maybe_checkpoint(const Position& pos);
  void save_state(const Position& pos);
  void emit(Event&& event);
  void send_anti(const Event& original);
  /// Feeds one comparison outcome to the cancellation controller and traces
  /// the A<->L switch (with the triggering Hit Ratio) if one resulted.
  void note_comparison(bool hit);

  ObjectId id_;
  std::unique_ptr<SimulationObject> object_;
  LpServices& lp_;
  obs::Recorder& rec_;
  ObjectRuntimeConfig config_;

  /// Checkpoint recycler; declared before every member that releases into it.
  StateArena arena_;
  std::unique_ptr<ObjectState> current_state_;
  InputQueue input_;
  OutputQueue output_;
  std::unique_ptr<CheckpointStore> states_;
  /// Outputs invalidated by a lazy-mode rollback, awaiting regeneration or
  /// cancellation; sorted by cause.
  std::vector<OutputEntry> lazy_pending_;
  /// Copies of aggressively cancelled outputs kept only to maintain HR
  /// ("lazy aggressive hits"); sorted by cause.
  std::vector<OutputEntry> passive_;
  /// Anti-messages that arrived before their positive message. Impossible
  /// on a static placement (per-pair FIFO), but a migration rebind can put
  /// a positive on the old forwarding path while its anti takes the direct
  /// link. The positive is still in flight, so Mattern's counts pin GVT at
  /// or below it — the pair annihilates before it can matter.
  std::vector<Event> early_antis_;

  core::CheckpointIntervalController ckpt_;
  core::CancellationController cancel_;

  std::uint64_t instance_seq_ = 0;  ///< never rolled back
  VirtualTime lvt_ = VirtualTime::zero();
  Position current_pos_{};  ///< position of the event being processed
  std::uint32_t sends_this_event_ = 0;  ///< derive_send_seq index
  std::uint32_t events_since_save_ = 0;
  bool processing_ = false;
  bool suppress_sends_ = false;  ///< true during coast-forward
  VirtualTime gvt_bound_ = VirtualTime::zero();
  std::uint64_t events_since_sample_ = 0;

  std::vector<ObjectSample> trace_;
  ObjectStats stats_;
};

}  // namespace otw::tw
