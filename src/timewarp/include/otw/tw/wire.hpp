// Wire serialization of the kernel's physical message types.
//
// One registered tag + codec per message class (see platform/wire.hpp for
// the framing). The byte layouts are explicit little-endian and documented
// in DESIGN.md section 8; events carry their Mattern color, which is what
// lets distributed GVT piggyback white/black counting on ordinary data
// frames instead of needing acknowledgement traffic.
#pragma once

#include "otw/platform/wire.hpp"
#include "otw/tw/event.hpp"

namespace otw::tw {

/// Registered wire tags (process-wide, stable across shards via fork).
inline constexpr platform::WireTag kTagEventBatch = 1;
inline constexpr platform::WireTag kTagGvtToken = 2;
inline constexpr platform::WireTag kTagGvtAnnounce = 3;

/// Serialized size of one event on the wire (fixed fields + payload).
[[nodiscard]] inline std::size_t event_encoded_bytes(const Event& e) noexcept {
  return 8 + 8 + 4 + 4 + 8 + 8 + 1 + 1 + 1 + e.payload.size();
}

/// Field-wise event codec, shared by EventBatchMessage and any future
/// point-to-point event frame. Layout:
///   u64 recv_time | u64 send_time | u32 sender | u32 receiver |
///   u64 seq | u64 instance | u8 negative | u8 color | u8 payload_len | bytes
void encode_event(platform::WireWriter& writer, const Event& event);
[[nodiscard]] Event decode_event(platform::WireReader& reader);

/// Registers the kernel's message codecs with the process-wide WireRegistry.
/// Idempotent; every distributed entry point calls it before forking so
/// coordinator and shards share one tag table.
void register_wire_messages();

}  // namespace otw::tw
