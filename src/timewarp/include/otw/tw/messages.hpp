// Physical message types exchanged between LPs through the platform.
//
// EventBatch carries one aggregate of application events (one event when
// aggregation is off). GvtToken and GvtAnnounce are control messages for
// Mattern's GVT algorithm; they bypass the aggregation layer.
#pragma once

#include <memory>
#include <vector>

#include "otw/platform/engine.hpp"
#include "otw/tw/event.hpp"
#include "otw/util/buffer_pool.hpp"

namespace otw::tw {

/// Approximate wire size of one event: fixed header + payload bytes.
[[nodiscard]] inline std::uint64_t event_wire_bytes(const Event& e) noexcept {
  return 44 + e.payload.size();
}

class EventBatchMessage final : public platform::EngineMessage {
 public:
  /// With a recycler, the destructor returns the batch buffer to it (the
  /// receiver frees what the sender allocated — the recycler is the shared,
  /// thread-safe rendezvous). The recycler must outlive the message.
  explicit EventBatchMessage(std::vector<Event> events,
                             util::BufferPool<Event>* recycle = nullptr)
      : events_(std::move(events)), recycle_(recycle) {}

  ~EventBatchMessage() override {
    if (recycle_ != nullptr) {
      recycle_->release(std::move(events_));
    }
  }

  [[nodiscard]] std::uint64_t wire_bytes() const noexcept override {
    std::uint64_t bytes = 16;  // physical-message header
    for (const Event& e : events_) {
      bytes += event_wire_bytes(e);
    }
    return bytes;
  }

  [[nodiscard]] std::uint16_t wire_tag() const noexcept override;
  void encode_wire(platform::WireWriter& writer) const override;

  [[nodiscard]] const std::vector<Event>& events() const noexcept { return events_; }
  [[nodiscard]] std::vector<Event>& events() noexcept { return events_; }

 private:
  std::vector<Event> events_;
  util::BufferPool<Event>* recycle_ = nullptr;
};

/// Mattern GVT token, circulated around the LP ring.
class GvtTokenMessage final : public platform::EngineMessage {
 public:
  /// Epoch parity this cut is collecting ("white" color being drained).
  std::uint8_t white_color = 0;
  /// Round number within the epoch (diagnostics only).
  std::uint32_t round = 0;
  /// Sum over visited LPs of (white sent - white received); 0 on return to
  /// the initiator means the cut is consistent.
  std::int64_t count = 0;
  /// Min over visited LPs of their minimum unprocessed event time.
  VirtualTime min_lvt = VirtualTime::infinity();
  /// Min receive-time of any red (post-cut) message sent so far.
  VirtualTime min_red_send = VirtualTime::infinity();

  [[nodiscard]] std::uint64_t wire_bytes() const noexcept override { return 40; }
  [[nodiscard]] std::uint16_t wire_tag() const noexcept override;
  void encode_wire(platform::WireWriter& writer) const override;
  [[nodiscard]] bool wire_control() const noexcept override { return true; }
};

/// New GVT broadcast by the initiator at the end of an epoch.
class GvtAnnounceMessage final : public platform::EngineMessage {
 public:
  explicit GvtAnnounceMessage(VirtualTime gvt) : gvt_(gvt) {}
  [[nodiscard]] VirtualTime gvt() const noexcept { return gvt_; }
  [[nodiscard]] std::uint64_t wire_bytes() const noexcept override { return 24; }
  [[nodiscard]] std::uint16_t wire_tag() const noexcept override;
  void encode_wire(platform::WireWriter& writer) const override;
  [[nodiscard]] bool wire_control() const noexcept override { return true; }

 private:
  VirtualTime gvt_;
};

}  // namespace otw::tw
