// Virtual time (Jefferson 1985): the simulation's logical clock.
//
// A strong integer type so virtual times cannot be mixed up with wall-clock
// nanoseconds or event counts. Ticks are dimensionless; applications choose
// their own scale (SMMP uses nanoseconds of modeled hardware, RAID uses
// microseconds of disk mechanics).
#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <limits>

namespace otw::tw {

class VirtualTime {
 public:
  using rep = std::uint64_t;

  constexpr VirtualTime() noexcept = default;
  constexpr explicit VirtualTime(rep ticks) noexcept : ticks_(ticks) {}

  /// The beginning of simulated time.
  static constexpr VirtualTime zero() noexcept { return VirtualTime{0}; }
  /// Positive infinity: later than every reachable event time.
  static constexpr VirtualTime infinity() noexcept {
    return VirtualTime{std::numeric_limits<rep>::max()};
  }

  [[nodiscard]] constexpr rep ticks() const noexcept { return ticks_; }
  [[nodiscard]] constexpr bool is_infinity() const noexcept {
    return ticks_ == std::numeric_limits<rep>::max();
  }

  friend constexpr auto operator<=>(VirtualTime, VirtualTime) noexcept = default;

  friend constexpr VirtualTime operator+(VirtualTime t, rep delta) noexcept {
    return VirtualTime{t.ticks_ + delta};
  }

  constexpr VirtualTime& operator+=(rep delta) noexcept {
    ticks_ += delta;
    return *this;
  }

  friend constexpr VirtualTime min(VirtualTime a, VirtualTime b) noexcept {
    return a < b ? a : b;
  }
  friend constexpr VirtualTime max(VirtualTime a, VirtualTime b) noexcept {
    return a < b ? b : a;
  }

 private:
  rep ticks_ = 0;
};

std::ostream& operator<<(std::ostream& os, VirtualTime t);

}  // namespace otw::tw
