// The pending-event set: the data structure behind every LP input queue and
// the sequential kernel's central event list.
//
// The kernel talks to an abstract PendingEventSet so the concrete structure
// can race: `KernelConfig::engine.queue` selects one of the QueueKind
// implementations, with the pool-backed std::multiset staying the default
// and the correctness reference. All implementations realise the same total
// order (InputOrder: recv_time, then sender, then seq, then instance — no
// two live events compare equal), so queue choice is digest-neutral by
// construction; tests/tw_pending_set_test.cpp model-checks each one against
// a naive sorted-vector reference, and the QueueParity differential leg
// proves bit-identical digests across engines.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "otw/tw/event.hpp"
#include "otw/tw/memory_pool.hpp"

namespace otw::tw {

/// Which pending-event-set implementation backs the input queues and the
/// sequential kernel's central event list (KernelConfig::engine.queue).
enum class QueueKind : std::uint8_t {
  Multiset,     ///< pool-backed std::multiset with a boundary iterator (reference)
  SkipList,     ///< slab-node skip list, deterministic tower heights
  LadderQueue,  ///< Tang/Tham ladder: unsorted top, bucketed rungs, sorted bottom
};

[[nodiscard]] const char* to_string(QueueKind kind) noexcept;

/// Every selectable kind, for kind-parameterized tests and benches.
inline constexpr QueueKind kAllQueueKinds[] = {
    QueueKind::Multiset, QueueKind::SkipList, QueueKind::LadderQueue};

/// Result of looking up the positive event an anti-message cancels.
enum class MatchStatus : std::uint8_t { NotFound, Unprocessed, Processed };

/// The sequential kernel's event order (recv_time, receiver, sender, seq):
/// the committed order of any Time Warp execution of the same model, because
/// application message delays are >= 1 tick.
struct SeqOrder {
  bool operator()(const Event& a, const Event& b) const noexcept {
    if (a.recv_time != b.recv_time) return a.recv_time < b.recv_time;
    if (a.receiver != b.receiver) return a.receiver < b.receiver;
    if (a.sender != b.sender) return a.sender < b.sender;
    return a.seq < b.seq;
  }
};

/// One simulation object's pending-event set: all positive events at/after
/// the last fossil-collected checkpoint, totally ordered by InputOrder, with
/// a processed/unprocessed boundary. Anti-messages are never stored; they
/// annihilate on arrival (erase_match).
///
/// Contract notes shared by all implementations:
///  * Live events have pairwise-distinct Positions (the instance id breaks
///    any EventKey tie); inserting two events with one Position is outside
///    the contract.
///  * References returned by peek_next()/advance() stay valid until the next
///    mutating call on the set.
///  * peek_next() may reorganise internal storage (the ladder sorts its
///    bottom rung on demand) but never changes observable state.
class PendingEventSet {
 public:
  PendingEventSet() = default;
  PendingEventSet(const PendingEventSet&) = delete;
  PendingEventSet& operator=(const PendingEventSet&) = delete;
  virtual ~PendingEventSet() = default;

  [[nodiscard]] virtual QueueKind kind() const noexcept = 0;

  /// Inserts a positive event. Returns true when the event is a straggler:
  /// it orders before an already-processed event, so the caller must roll
  /// the object back to before the event's key.
  virtual bool insert(const Event& event) = 0;

  /// The next unprocessed event, or nullptr.
  [[nodiscard]] virtual const Event* peek_next() const = 0;

  /// Marks the next unprocessed event as processed and returns it.
  virtual const Event& advance() = 0;

  /// Moves the processed/unprocessed boundary back so the first unprocessed
  /// event is the first one ordered after `checkpoint` (rollback restore).
  virtual void rewind_to_after(const Position& checkpoint) = 0;

  /// Number of processed events ordered after `pos` (the rollback length).
  [[nodiscard]] virtual std::size_t processed_after(const Position& pos) const = 0;

  /// Looks for the positive event matching an anti-message (same sender and
  /// instance; InputOrder locates it by key+instance).
  [[nodiscard]] virtual MatchStatus find_match(const Event& anti) const = 0;

  /// Erases the positive event matching `anti`. If it was processed, the
  /// caller must have rolled back past it first (so it is unprocessed now).
  virtual void erase_match(const Event& anti) = 0;

  /// Drops processed events ordered before `pos` (all history before the
  /// checkpoint kept by fossil collection). Returns how many were dropped —
  /// these events are committed.
  virtual std::size_t fossil_collect_before(const Position& pos) = 0;

  [[nodiscard]] virtual std::size_t size() const noexcept = 0;
  [[nodiscard]] virtual std::size_t processed_count() const noexcept = 0;
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

  /// Receive time of the next unprocessed event (infinity if none): this
  /// object's contribution to GVT.
  [[nodiscard]] VirtualTime next_unprocessed_time() const {
    const Event* next = peek_next();
    return next == nullptr ? VirtualTime::infinity() : next->recv_time;
  }

  /// Every live event: the processed run first (oldest to newest, which is
  /// InputOrder), then the unprocessed events in implementation order. The
  /// property harness compares this against its reference model after every
  /// operation; it is not a hot-path operation.
  [[nodiscard]] virtual std::vector<Event> snapshot() const = 0;
};

/// Builds the pending-event set for one object. With a pool, node-based
/// implementations draw their nodes from it (and recycle them on
/// annihilation/fossil collection); the pool must outlive the set. A null
/// pool uses the global heap.
[[nodiscard]] std::unique_ptr<PendingEventSet> make_pending_set(
    QueueKind kind, SlabPool* pool = nullptr);

/// The sequential kernel's central event list: a plain min-queue in SeqOrder
/// (no processed prefix, no annihilation — the sequential kernel never rolls
/// back). Backed by the same data structures so the queue race covers the
/// committed-event hot path end to end.
class CentralEventList {
 public:
  CentralEventList() = default;
  CentralEventList(const CentralEventList&) = delete;
  CentralEventList& operator=(const CentralEventList&) = delete;
  virtual ~CentralEventList() = default;

  virtual void insert(const Event& event) = 0;
  /// The minimum event in SeqOrder, or nullptr when empty. Valid until the
  /// next mutating call.
  [[nodiscard]] virtual const Event* lowest() const = 0;
  virtual void pop_lowest() = 0;
  [[nodiscard]] virtual std::size_t size() const noexcept = 0;
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }
};

[[nodiscard]] std::unique_ptr<CentralEventList> make_central_event_list(
    QueueKind kind, SlabPool* pool = nullptr);

}  // namespace otw::tw
