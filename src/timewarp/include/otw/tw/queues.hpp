// The three history queues of a Time Warp simulation object (paper Fig. 1):
// input queue, output queue and state queue.
#pragma once

#include <deque>
#include <memory>
#include <set>
#include <vector>

#include "otw/tw/event.hpp"
#include "otw/tw/memory_pool.hpp"
#include "otw/tw/object.hpp"
#include "otw/tw/pending_set.hpp"
#include "otw/util/assert.hpp"

namespace otw::tw {

/// Input queue: all positive events at/after the last fossil-collected
/// checkpoint, totally ordered by InputOrder, with a processed/unprocessed
/// boundary. Anti-messages are never stored; they annihilate on arrival.
///
/// Thin facade over a PendingEventSet: the concrete data structure is
/// chosen per kernel via KernelConfig::engine.queue (multiset is the
/// default and the reference; see pending_set.hpp).
class InputQueue {
 public:
  using MatchStatus = tw::MatchStatus;

  /// With a pool, node-based implementations draw every queue node from it
  /// (and recycle it on annihilation/fossil collection); the pool must
  /// outlive the queue. A null pool uses the global heap.
  explicit InputQueue(SlabPool* pool = nullptr,
                      QueueKind queue = QueueKind::Multiset)
      : pool_(pool), kind_(queue), impl_(make_pending_set(queue, pool)) {}

  // The processed boundary must be maintained across copies; forbid them.
  InputQueue(const InputQueue&) = delete;
  InputQueue& operator=(const InputQueue&) = delete;

  /// Inserts a positive event. Returns true when the event is a straggler:
  /// it orders before an already-processed event, so the caller must roll
  /// the object back to before the event's key.
  bool insert(const Event& event) { return impl_->insert(event); }

  /// The next unprocessed event, or nullptr.
  [[nodiscard]] const Event* peek_next() const { return impl_->peek_next(); }

  /// Marks the next unprocessed event as processed and returns it. The
  /// reference stays valid until the next mutating call on the queue.
  const Event& advance() { return impl_->advance(); }

  /// Moves the processed/unprocessed boundary back so the first unprocessed
  /// event is the first one ordered after `checkpoint` (rollback restore).
  void rewind_to_after(const Position& checkpoint) {
    impl_->rewind_to_after(checkpoint);
  }

  /// Number of processed events ordered after `pos` (the rollback length).
  [[nodiscard]] std::size_t processed_after(const Position& pos) const {
    return impl_->processed_after(pos);
  }

  /// Looks for the positive event matching an anti-message (same sender and
  /// instance; InputOrder locates it by key+instance).
  [[nodiscard]] MatchStatus find_match(const Event& anti) const {
    return impl_->find_match(anti);
  }

  /// Erases the positive event matching `anti`. If it was processed, the
  /// caller must have rolled back past it first (so it is unprocessed now).
  void erase_match(const Event& anti) { impl_->erase_match(anti); }

  /// Drops processed events ordered before `pos` (all history before the
  /// checkpoint kept by fossil collection). Returns how many were dropped —
  /// these events are committed.
  std::size_t fossil_collect_before(const Position& pos) {
    return impl_->fossil_collect_before(pos);
  }

  /// Receive time of the next unprocessed event (infinity if none): this
  /// object's contribution to GVT.
  [[nodiscard]] VirtualTime next_unprocessed_time() const {
    return impl_->next_unprocessed_time();
  }

  [[nodiscard]] std::size_t size() const noexcept { return impl_->size(); }
  [[nodiscard]] bool empty() const noexcept { return impl_->empty(); }
  [[nodiscard]] std::size_t processed_count() const noexcept {
    return impl_->processed_count();
  }
  [[nodiscard]] QueueKind kind() const noexcept { return impl_->kind(); }

  /// Every stored event, processed run first in InputOrder, then the
  /// unprocessed events (the migration codec ships the unprocessed tail).
  [[nodiscard]] std::vector<Event> snapshot() const { return impl_->snapshot(); }

  /// Discards all contents and the processed boundary, rebuilding an empty
  /// implementation of the same kind over the same pool (migration restore).
  void reset() { impl_ = make_pending_set(kind_, pool_); }

 private:
  SlabPool* pool_;
  QueueKind kind_;
  std::unique_ptr<PendingEventSet> impl_;
};

/// One remembered output message: the event as sent plus the position of
/// the event whose processing generated it.
struct OutputEntry {
  Position cause;
  Event event;
};

/// Output queue: every message sent and not yet cancelled or fossil
/// collected, in increasing cause order. Rollback extracts the suffix of
/// entries caused by re-executed events; those are cancelled per the
/// cancellation strategy.
class OutputQueue {
 public:
  void record(const Position& cause, const Event& event);

  /// Removes and returns all entries with cause > `target` — or cause >=
  /// `target` when `inclusive` (an annihilated event's own outputs must be
  /// cancelled too: nothing will ever re-execute it). Order preserved.
  std::vector<OutputEntry> extract_after(const Position& target,
                                         bool inclusive = false);

  /// Drops entries sent at virtual times < gvt (no rollback can reach them).
  void fossil_collect_before(VirtualTime gvt);

  [[nodiscard]] std::size_t size() const noexcept { return sent_.size(); }
  [[nodiscard]] bool empty() const noexcept { return sent_.empty(); }
  [[nodiscard]] const std::deque<OutputEntry>& entries() const noexcept {
    return sent_;
  }

 private:
  std::deque<OutputEntry> sent_;  // increasing cause order
};

/// State queue: periodic checkpoints. Each entry snapshots the object state
/// *after* processing the event identified by `key`.
class StateQueue {
 public:
  struct Entry {
    Position pos;
    std::unique_ptr<ObjectState> state;
  };

  /// With an arena, states dropped by rollback or fossil collection are
  /// released into it for recycling (the arena must outlive the queue); a
  /// null arena simply destroys them.
  explicit StateQueue(StateArena* arena = nullptr) : arena_(arena) {}

  /// Appends a checkpoint; positions must be strictly increasing.
  void save(const Position& pos, std::unique_ptr<ObjectState> state);

  /// Latest checkpoint ordered before `target` — the rollback restore point.
  /// Never nullptr while fossil collection keeps its guarantee.
  [[nodiscard]] const Entry* latest_before(const Position& target) const;

  /// Drops checkpoints at/after `target` (invalidated by rollback).
  void drop_from(const Position& target);

  /// Keeps the latest checkpoint taken strictly before `gvt` (plus all later
  /// ones) and drops everything older. Returns the kept checkpoint's
  /// position: the input queue may drop processed events before it.
  Position fossil_collect(VirtualTime gvt);

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  [[nodiscard]] const Entry& back() const { return entries_.back(); }

  /// Sum of byte_size() over the stored checkpoints (memory accounting).
  [[nodiscard]] std::uint64_t stored_bytes() const noexcept { return bytes_; }

 private:
  void retire(Entry& entry) noexcept;

  std::deque<Entry> entries_;  // increasing key order
  StateArena* arena_ = nullptr;
  std::uint64_t bytes_ = 0;
};

}  // namespace otw::tw
