// Kernel-aware exporters over otw::obs: turn a RunResult into a metrics
// snapshot, a Chrome trace_event JSON file (load in Perfetto or
// chrome://tracing), a JSON-lines metrics dump, or a Prometheus text page.
#pragma once

#include <iosfwd>

#include "otw/obs/export.hpp"
#include "otw/tw/kernel.hpp"

namespace otw::tw {

/// Flattens a RunResult into a generic metrics snapshot: run-level gauges
/// (execution time, final GVT, throughput), object-total counters, per-LP
/// counters and — when profiling was on — per-LP phase breakdowns.
[[nodiscard]] obs::MetricsSnapshot build_metrics(const RunResult& result);

/// Writes RunResult::trace as Chrome trace_event JSON (one track per LP).
void write_chrome_trace(std::ostream& os, const RunResult& result);

/// Writes build_metrics(result) as JSON lines, one metric object per line.
void write_metrics_jsonl(std::ostream& os, const RunResult& result);

/// Writes build_metrics(result) in Prometheus text exposition format.
void write_prometheus(std::ostream& os, const RunResult& result);

}  // namespace otw::tw
