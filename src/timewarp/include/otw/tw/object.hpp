// The application programming interface: simulation objects and their state.
//
// Mirrors the WARPED model: all Time Warp machinery (state saving, rollback,
// cancellation, GVT) is invisible to the application. An object implements
// process_event(); the kernel owns the object's state, checkpoints it
// periodically and restores it on rollback. Everything an application wants
// preserved across rollbacks — including its RNG — must live inside the
// state object.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>

#include "otw/tw/event.hpp"
#include "otw/util/assert.hpp"

namespace otw::tw {

/// Checkpointable object state. byte_size() feeds the state-saving cost
/// model; digest() lets tests compare committed results across kernels.
/// raw_bytes()/mutable_raw_bytes() expose a flat byte view for INCREMENTAL
/// checkpointing (delta saves); they may return nullptr when the state is
/// not flat, in which case only copy checkpointing is available.
class ObjectState {
 public:
  virtual ~ObjectState() = default;
  [[nodiscard]] virtual std::unique_ptr<ObjectState> clone() const = 0;
  [[nodiscard]] virtual std::size_t byte_size() const noexcept = 0;
  [[nodiscard]] virtual std::uint64_t digest() const noexcept = 0;
  [[nodiscard]] virtual const std::byte* raw_bytes() const noexcept {
    return nullptr;
  }
  [[nodiscard]] virtual std::byte* mutable_raw_bytes() noexcept { return nullptr; }

  /// Overwrites this state with the value of `other` WITHOUT allocating —
  /// the recycling path of tw::StateArena (a retired checkpoint is re-filled
  /// instead of cloned). Returns false when the two states are not
  /// layout-compatible; the caller must fall back to other.clone(). The
  /// default covers flat states (both expose raw_bytes) of equal size via
  /// memcpy; states with out-of-line resources may override.
  [[nodiscard]] virtual bool assign_from(const ObjectState& other) noexcept {
    if (byte_size() != other.byte_size()) {
      return false;
    }
    std::byte* dst = mutable_raw_bytes();
    const std::byte* src = other.raw_bytes();
    if (dst == nullptr || src == nullptr) {
      return false;
    }
    std::memcpy(dst, src, byte_size());
    return true;
  }
};

namespace detail {
/// FNV-1a over a trivially copyable value.
inline std::uint64_t fnv1a(const void* data, std::size_t size) noexcept {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t hash = 0xCBF29CE484222325ULL;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 0x00000100000001B3ULL;
  }
  return hash;
}
}  // namespace detail

/// Ready-made state wrapper for trivially copyable application state.
template <typename T>
class PodState final : public ObjectState {
  static_assert(std::is_trivially_copyable_v<T>,
                "PodState requires trivially copyable state");

 public:
  PodState() = default;
  explicit PodState(const T& value) : value_(value) {}

  [[nodiscard]] std::unique_ptr<ObjectState> clone() const override {
    return std::make_unique<PodState>(value_);
  }
  [[nodiscard]] std::size_t byte_size() const noexcept override { return sizeof(T); }
  [[nodiscard]] std::uint64_t digest() const noexcept override {
    return detail::fnv1a(&value_, sizeof(T));
  }
  [[nodiscard]] const std::byte* raw_bytes() const noexcept override {
    return reinterpret_cast<const std::byte*>(&value_);
  }
  [[nodiscard]] std::byte* mutable_raw_bytes() noexcept override {
    return reinterpret_cast<std::byte*>(&value_);
  }

  T& value() noexcept { return value_; }
  const T& value() const noexcept { return value_; }

 private:
  T value_{};
};

/// Kernel services available to an object while it processes an event.
class ObjectContext {
 public:
  virtual ~ObjectContext() = default;

  /// This object's id.
  [[nodiscard]] virtual ObjectId self() const noexcept = 0;

  /// Local virtual time: the receive time of the event being processed.
  [[nodiscard]] virtual VirtualTime now() const noexcept = 0;

  /// The object's current (rollbackable) state.
  [[nodiscard]] virtual ObjectState& state() noexcept = 0;

  /// Typed access to PodState<T>-backed state.
  template <typename T>
  T& state_as() noexcept {
    return static_cast<PodState<T>&>(state()).value();
  }

  /// Schedules an event for `dest` at now() + delay. delay must be >= 1
  /// tick: zero-delay messages would make the committed order depend on the
  /// execution interleaving.
  virtual void send(ObjectId dest, VirtualTime::rep delay, const Payload& payload) = 0;

  template <typename T>
  void send_pod(ObjectId dest, VirtualTime::rep delay, const T& pod) {
    send(dest, delay, Payload::from(pod));
  }

  /// Charges `ns` nanoseconds of modeled computation for this event (the
  /// application's event granularity, e.g. a disk-seek calculation).
  virtual void charge(std::uint64_t ns) noexcept = 0;
};

/// A simulation object (the paper's physical process). Implementations must
/// be deterministic functions of (state, event): no hidden mutable members —
/// anything mutable belongs in the ObjectState so rollback restores it.
class SimulationObject {
 public:
  virtual ~SimulationObject() = default;

  /// Fresh state at virtual time zero.
  [[nodiscard]] virtual std::unique_ptr<ObjectState> initial_state() const = 0;

  /// Called once before the simulation starts; schedule initial events here.
  virtual void initialize(ObjectContext& ctx) { static_cast<void>(ctx); }

  /// Handles one event. All observable effects must go through ctx.
  virtual void process_event(ObjectContext& ctx, const Event& event) = 0;

  /// Called once after termination with the final committed state.
  virtual void finalize(ObjectContext& ctx) { static_cast<void>(ctx); }

  /// Human-readable kind tag for statistics ("disk", "fork", "cache", ...).
  [[nodiscard]] virtual const char* kind() const noexcept { return "object"; }
};

}  // namespace otw::tw
