// Telemetry: time series of the on-line controllers' decisions.
//
// The paper's motivation is that the optimal configuration *changes over the
// lifetime of the simulation*; these traces make the controllers' tracking
// of those phases observable. Sampling is by locally processed events (the
// same clock the controllers tick on) and is off by default — recording is
// itself intrusive.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "otw/core/cancellation_controller.hpp"
#include "otw/tw/virtual_time.hpp"

namespace otw::tw {

struct TelemetryConfig {
  bool enabled = false;
  /// Locally processed events between samples (per object / per LP).
  std::uint64_t sample_period_events = 256;
};

/// One sample of a simulation object's controller state.
struct ObjectSample {
  std::uint64_t events_processed = 0;  ///< sample clock
  VirtualTime lvt{};
  std::uint32_t checkpoint_interval = 1;
  double hit_ratio = 0.0;
  core::CancellationMode mode = core::CancellationMode::Aggressive;
  std::uint64_t rollbacks = 0;       ///< cumulative
  std::uint64_t memory_bytes = 0;    ///< object footprint (MemoryStats::total)
};

/// One sample of an LP's kernel state.
struct LpSample {
  std::uint64_t events_processed = 0;  ///< sample clock
  VirtualTime gvt{};
  double aggregation_window_us = 0.0;
  std::uint64_t optimism_window = 0;  ///< 0 = unbounded
  std::uint64_t events_in_transit_estimate = 0;
  std::uint64_t memory_bytes = 0;  ///< LP footprint at the sample
  std::uint8_t pressure = 0;       ///< PressureState (0 = Normal / no budget)
};

struct ObjectTrace {
  std::uint32_t object = 0;
  std::vector<ObjectSample> samples;
};

struct LpTrace {
  std::uint32_t lp = 0;
  std::vector<LpSample> samples;
};

struct Telemetry {
  std::vector<ObjectTrace> objects;  ///< one per object, indexed by ObjectId
  std::vector<LpTrace> lps;          ///< one per LP

  [[nodiscard]] bool empty() const noexcept {
    return objects.empty() && lps.empty();
  }

  /// Writes all traces as one CSV table with a fixed 12-column header:
  ///
  ///   kind,id,events,time,chi,hit_ratio,mode,rollbacks,window_us,optimism,mem_bytes,pressure
  ///
  /// Every row has exactly 12 fields; columns that do not apply to a row's
  /// kind are left empty. Two row kinds share the table:
  ///
  ///   kind=object  id=ObjectId  events=sample clock  time=LVT ticks
  ///                chi=checkpoint interval  hit_ratio=HR in [0,1]
  ///                mode=Aggressive|Lazy  rollbacks=cumulative count
  ///                window_us,optimism empty  mem_bytes=object footprint
  ///                pressure empty
  ///   kind=lp      id=LpId      events=sample clock  time=GVT ticks
  ///                chi,hit_ratio,mode,rollbacks empty
  ///                window_us=aggregation window  optimism=window ticks
  ///                (0 = unbounded)  mem_bytes=LP footprint
  ///                pressure=normal|throttle|emergency
  ///
  /// `time` prints VirtualTime via operator<< ("inf" when infinite). The
  /// schema is asserted by a parse-back test in tw_telemetry_test.cpp.
  void write_csv(std::ostream& os) const;
};

}  // namespace otw::tw
