// Public entry points: describe a model once, run it on any kernel.
//
//   Model model = smmp::build_model(cfg);
//   KernelConfig kc; kc.num_lps = 4;
//   kc.engine.kind = EngineKind::Threaded;  // or Sequential / SimulatedNow /
//                                           // Distributed
//   RunResult r = tw::run(model, kc);       // one call, any engine
//
// run() validates the configuration (KernelConfig::validate) and dispatches
// on kc.engine.kind. Ground truth for digest comparison is
// EngineKind::Sequential (or the lower-level run_sequential).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "otw/obs/phase_profiler.hpp"
#include "otw/obs/trace.hpp"
#include "otw/platform/distributed.hpp"
#include "otw/platform/simulated_now.hpp"
#include "otw/platform/threaded.hpp"
#include "otw/tw/lp.hpp"
#include "otw/tw/stats.hpp"

namespace otw::tw {

/// A simulation model: object factories plus their LP placement. Factories
/// (not live objects) so the same Model can be run repeatedly and on
/// different kernels.
struct Model {
  struct ObjectSpec {
    LpId lp = 0;
    std::function<std::unique_ptr<SimulationObject>()> factory;
  };

  /// One edge of the model's send graph: objects `a` and `b` exchange
  /// events with relative intensity `weight`. Purely advisory — the
  /// communication-aware partitioner (tw/partition.hpp) minimizes the
  /// weighted edge cut across shards; models that declare no edges fall
  /// back to round-robin sharding.
  struct Edge {
    ObjectId a = 0;
    ObjectId b = 0;
    double weight = 1.0;
  };

  std::vector<ObjectSpec> objects;  ///< index == ObjectId
  std::vector<Edge> edges;          ///< send-graph affinity (may be empty)

  ObjectId add(LpId lp, std::function<std::unique_ptr<SimulationObject>()> factory) {
    objects.push_back(ObjectSpec{lp, std::move(factory)});
    return static_cast<ObjectId>(objects.size() - 1);
  }

  /// Declares a send-graph edge (order of a/b is irrelevant).
  void add_edge(ObjectId a, ObjectId b, double weight = 1.0) {
    edges.push_back(Edge{a, b, weight});
  }

  [[nodiscard]] LpId required_lps() const noexcept;
};

struct RunResult {
  KernelStats stats;
  /// Controller trajectories (empty unless KernelConfig::telemetry.enabled).
  Telemetry telemetry;
  /// Final committed state digest per object (cross-kernel comparison).
  std::vector<std::uint64_t> digests;
  /// Modeled makespan (simulated NOW) or elapsed wall time (threaded), ns.
  std::uint64_t execution_time_ns = 0;
  /// Host wall time spent producing the result, ns.
  std::uint64_t wall_time_ns = 0;
  std::uint64_t physical_messages = 0;
  std::uint64_t wire_bytes = 0;
  /// Kernel trace (empty unless KernelConfig::observability.tracing).
  /// Export with otw/tw/observability.hpp (Chrome trace, JSONL, Prometheus).
  /// On the threaded engine this also carries per-worker scheduler tracks
  /// (park/steal/wake), with `lp` offset past the LP ids and a "worker k"
  /// display name; the distributed engine likewise appends per-shard
  /// "shard k wire" tracks when wire tracing is enabled.
  obs::RunTrace trace;
  /// Worker-pool counters (threaded engine only; default-empty elsewhere).
  platform::SchedulerStats scheduler;
  /// Socket-transport counters (distributed engine only; default-empty
  /// elsewhere). Feeds the otw_dist_* metrics in build_metrics().
  platform::DistStats dist;
  /// One entry per shard failure the coordinator recovered from (fault
  /// tolerance only; empty otherwise). An entry means a worker died, a
  /// replacement was restored from snapshot epoch `epoch`, and every
  /// survivor rolled back to that cut — the run's results are still exact.
  std::vector<platform::RecoveryIncident> recoveries;
  /// Per-LP phase breakdown (empty unless observability.profiling); index
  /// matches LpId. Times are modeled ns (simulated NOW) or wall ns (threaded).
  std::vector<obs::PhaseTotals> lp_phases;
  /// Watchdog health events (empty unless the live plane was enabled via
  /// observability.live_port / observability.live.enabled). Export with
  /// obs::live::write_health_jsonl.
  std::vector<obs::live::HealthEvent> health;
  /// Latency-attribution histograms (empty unless the live plane is armed
  /// with observability.live.histograms). In-process engines report shard 0;
  /// the distributed engine reports per-worker entries plus coordinator
  /// relay-residency entries stamped shard = num_shards.
  std::vector<obs::hist::Entry> hists;
  /// Per-shard clock alignment (distributed engine only; index = shard).
  std::vector<platform::ShardClock> shard_clocks;

  [[nodiscard]] double execution_time_sec() const noexcept {
    return static_cast<double>(execution_time_ns) / 1e9;
  }
  /// Committed events per second of (modeled or wall) execution time.
  [[nodiscard]] double committed_events_per_sec() const noexcept;
};

/// Per-engine tuning beyond what KernelConfig::Engine carries (cost models,
/// trace capacities, ports). Only the member matching kc.engine.kind is
/// consulted; kc.engine.num_workers / num_shards override the corresponding
/// fields here when set.
struct EngineTuning {
  platform::SimulatedNowConfig simulated_now{};
  platform::ThreadedConfig threaded{};
  platform::DistributedConfig distributed{};
};

/// THE entry point: validates `config` (throws otw::ContractViolation with
/// every validation error listed if KernelConfig::validate() is non-empty)
/// and runs the model on the engine selected by config.engine.kind.
///
/// EngineKind::Sequential adapts the ground-truth kernel into a RunResult: digests
/// and per-object committed-event counts are filled; Time-Warp-only fields
/// (rollbacks, GVT telemetry, traces) stay empty.
RunResult run(const Model& model, const KernelConfig& config,
              const EngineTuning& tuning = {});

/// Ground-truth sequential execution of the same model.
struct SequentialResult {
  std::vector<std::uint64_t> digests;
  std::vector<std::uint64_t> events_per_object;
  std::uint64_t events_processed = 0;
  VirtualTime final_time = VirtualTime::zero();
  std::uint64_t wall_time_ns = 0;
};

/// `queue` selects the central event list's data structure (digest-neutral;
/// see pending_set.hpp).
SequentialResult run_sequential(const Model& model,
                                VirtualTime end_time = VirtualTime::infinity(),
                                QueueKind queue = QueueKind::Multiset);

}  // namespace otw::tw
