// Pooled allocation for the Time Warp hot path.
//
// Optimistic execution allocates and frees at event rate: every received
// event becomes an input-queue node, every send an output-queue entry, every
// checkpoint an ObjectState clone — and fossil collection frees them again in
// bulk once GVT passes. Routing that churn through the global heap costs a
// lock-shared malloc/free pair per event and scatters queue nodes across the
// address space. The pools here exploit the Time Warp-specific structure:
//
//  * allocation is single-threaded per LP (each LP's queues are touched only
//    by the thread currently running that LP), so SlabPool needs no locks;
//  * block sizes are drawn from a tiny fixed set (input-queue nodes,
//    checkpoint states of one object type), so power-of-two size classes
//    with per-class freelists recycle every fossil-collected block into the
//    next event's allocation;
//  * freed memory is reused, never returned: a pool's footprint is the
//    high-water mark of live blocks, which is exactly the quantity the
//    pressure controller (core/pressure_controller.hpp) bounds.
//
// Three cooperating pieces:
//
//  * SlabPool — bump-allocated slabs + per-size-class freelists. Not
//    thread-safe; owned by one LP and used by its queues.
//  * PoolAllocator<T> — std::allocator adapter so node-based containers
//    (the input queue's multiset) draw their nodes from a SlabPool. A null
//    pool falls back to the global heap, so default-constructed containers
//    keep working in isolation tests.
//  * StateArena — recycler for ObjectState checkpoints. Retired states are
//    kept and re-filled via ObjectState::assign_from instead of a fresh
//    clone(); owned per ObjectRuntime so every recycled state has the
//    object's exact dynamic type and size.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "otw/tw/object.hpp"
#include "otw/util/assert.hpp"

namespace otw::tw {

/// Counters a SlabPool maintains. `live_blocks` is exact (allocations minus
/// deallocations, including oversize); `slab_bytes` is the pool's resident
/// footprint — it never shrinks, which makes it the honest number to charge
/// against a memory budget.
struct PoolStats {
  std::uint64_t allocations = 0;     ///< total allocate() calls
  std::uint64_t freelist_hits = 0;   ///< allocations served by recycling
  std::uint64_t oversize = 0;        ///< allocations above the largest class
  std::uint64_t slab_bytes = 0;      ///< bytes reserved in slabs (never shrinks)
  std::uint64_t live_blocks = 0;     ///< currently allocated blocks
  std::uint64_t peak_live_blocks = 0;///< high-water mark of live_blocks
};

/// Slab allocator with power-of-two size classes (64..4096 bytes).
///
/// allocate(n) rounds n up to its class and serves it from the class
/// freelist, else bumps the current slab, else reserves a new slab. Blocks
/// larger than the largest class go to ::operator new (counted in
/// stats().oversize). deallocate(p, n) must receive the same n as the
/// matching allocate and never throws. All freed memory is recycled, none is
/// returned to the heap before the pool is destroyed.
///
/// NOT thread-safe: a SlabPool belongs to one LP and is only touched by the
/// thread currently stepping that LP (the same exclusion that protects the
/// LP's queues).
class SlabPool {
 public:
  static constexpr std::size_t kMinBlock = 64;
  static constexpr std::size_t kMaxBlock = 4096;

  SlabPool() = default;
  SlabPool(const SlabPool&) = delete;
  SlabPool& operator=(const SlabPool&) = delete;
  ~SlabPool();

  /// Storage for at least `size` bytes, aligned for any object of that size
  /// (blocks are at least 64 bytes and slab bases are max_align_t-aligned).
  [[nodiscard]] void* allocate(std::size_t size);

  /// Returns a block to its class freelist. `size` must equal the size
  /// passed to the matching allocate().
  void deallocate(void* ptr, std::size_t size) noexcept;

  [[nodiscard]] const PoolStats& stats() const noexcept { return stats_; }

 private:
  struct FreeNode {
    FreeNode* next;
  };

  static std::size_t class_index(std::size_t size) noexcept;
  static std::size_t class_block_size(std::size_t index) noexcept;
  static constexpr std::size_t kNumClasses = 7;  // 64,128,...,4096

  void* bump_allocate(std::size_t index);

  FreeNode* freelists_[kNumClasses] = {};
  std::vector<std::unique_ptr<std::byte[]>> slabs_;
  std::byte* bump_ = nullptr;  // next free byte in the current slab
  std::byte* bump_end_ = nullptr;
  PoolStats stats_;
};

/// std::allocator adapter over a SlabPool, for node-based containers.
///
/// Single-element allocations (container nodes) go to the pool; array
/// allocations and a null pool fall back to the global heap. Two allocators
/// compare equal iff they share the pool, so containers with the same pool
/// can splice/swap. The pool must outlive every container using it.
template <typename T>
class PoolAllocator {
 public:
  using value_type = T;

  PoolAllocator() noexcept = default;
  explicit PoolAllocator(SlabPool* pool) noexcept : pool_(pool) {}
  template <typename U>
  PoolAllocator(const PoolAllocator<U>& other) noexcept : pool_(other.pool()) {}

  [[nodiscard]] T* allocate(std::size_t n) {
    if (pool_ != nullptr && n == 1) {
      return static_cast<T*>(pool_->allocate(sizeof(T)));
    }
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }

  void deallocate(T* ptr, std::size_t n) noexcept {
    if (pool_ != nullptr && n == 1) {
      pool_->deallocate(ptr, sizeof(T));
      return;
    }
    ::operator delete(ptr);
  }

  [[nodiscard]] SlabPool* pool() const noexcept { return pool_; }

  template <typename U>
  bool operator==(const PoolAllocator<U>& other) const noexcept {
    return pool_ == other.pool();
  }

 private:
  SlabPool* pool_ = nullptr;
};

/// Recycler for ObjectState checkpoints.
///
/// acquire_copy(src) returns a state equal to a clone of `src`, preferring
/// to re-fill a previously released state via ObjectState::assign_from (a
/// memcpy for flat states) over allocating a fresh clone. release() parks a
/// retired state for reuse; beyond `capacity` states it simply destroys
/// them. One arena serves exactly one object, so every parked state has the
/// object's dynamic type and assign_from can never mix types.
class StateArena {
 public:
  explicit StateArena(std::size_t capacity = 64) : capacity_(capacity) {
    free_.reserve(capacity_);
  }

  /// A state with the same value as `src` (assign_from-recycled or cloned).
  [[nodiscard]] std::unique_ptr<ObjectState> acquire_copy(const ObjectState& src);

  /// Parks `state` for reuse (or destroys it when the arena is full).
  void release(std::unique_ptr<ObjectState> state) noexcept;

  [[nodiscard]] std::uint64_t recycled() const noexcept { return recycled_; }
  [[nodiscard]] std::uint64_t cloned() const noexcept { return cloned_; }
  [[nodiscard]] std::size_t parked() const noexcept { return free_.size(); }

 private:
  std::vector<std::unique_ptr<ObjectState>> free_;
  std::size_t capacity_;
  std::uint64_t recycled_ = 0;
  std::uint64_t cloned_ = 0;
};

}  // namespace otw::tw
