// Events, anti-messages and the total orders the kernel relies on.
//
// Three distinct identities per message, kept deliberately separate:
//
//  * ordering key (recv_time, sender, seq): `seq` is derived by hashing the
//    ordering key of the event whose processing generated the message with
//    the send's index within that event (derive_send_seq). Re-execution after
//    a rollback therefore regenerates identical keys by construction, and
//    the committed event order is identical across the sequential kernel and
//    any Time Warp execution — a per-sender counter would shift whenever a
//    straggler inserted new sends before re-execution.
//
//  * instance id: a per-sender counter that is NOT rolled back, so every
//    physically sent message instance is unique. Anti-messages match their
//    positive message by (sender, instance) — unambiguous even when a
//    rollback reuses a seq for a different message.
//
//  * content (receiver, recv_time, payload): what lazy cancellation compares
//    to decide whether a regenerated message is a "hit" (identical to the
//    prematurely sent one, so it need not be cancelled/resent).
#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>

#include "otw/util/pod_buffer.hpp"
#include "otw/tw/virtual_time.hpp"

namespace otw::tw {

using ObjectId = std::uint32_t;
using LpId = std::uint32_t;

/// Maximum event payload size in bytes. Payloads must be trivially copyable
/// (bitwise equality is what lazy cancellation compares).
inline constexpr std::size_t kMaxPayloadBytes = 48;
using Payload = util::PodBuffer<kMaxPayloadBytes>;

/// Ordering key of an event at its receiver; also identifies "the position
/// in the execution" for checkpoints and rollback targets.
struct EventKey {
  VirtualTime recv_time{};
  ObjectId sender = 0;
  std::uint64_t seq = 0;

  friend constexpr auto operator<=>(const EventKey&, const EventKey&) noexcept = default;

  /// A key ordered before every real event (initial-state position).
  static constexpr EventKey before_all() noexcept { return EventKey{}; }
};

/// A point in an object's execution order: the ordering key plus the
/// instance id. Two *live* events can transiently share an EventKey (a
/// lazy-missed premature message and its content-differing regeneration
/// share cause and send index, hence seq and receive time), so everything
/// that anchors to "a place in the execution" — checkpoints, output causes,
/// rollback targets — must use the full Position.
struct Position {
  EventKey key{};
  std::uint64_t instance = 0;

  friend constexpr auto operator<=>(const Position&, const Position&) noexcept =
      default;

  static constexpr Position before_all() noexcept { return Position{}; }
  static constexpr Position after_all() noexcept {
    return Position{EventKey{VirtualTime::infinity(), UINT32_MAX, UINT64_MAX},
                    UINT64_MAX};
  }

  [[nodiscard]] constexpr VirtualTime recv_time() const noexcept {
    return key.recv_time;
  }
};

/// Ordering-key seq for the `index`-th message sent while processing the
/// event with key `cause` at object `sender`. Pure function of its inputs:
/// the Time Warp kernels and the sequential kernel all use it, which is what
/// makes their committed tie-break orders identical. (A 64-bit collision
/// between two same-time messages of one sender would merely make their
/// relative order fall back to the instance tie-break.)
[[nodiscard]] constexpr std::uint64_t derive_send_seq(VirtualTime cause_recv,
                                                      ObjectId cause_sender,
                                                      std::uint64_t cause_seq,
                                                      ObjectId sender,
                                                      std::uint32_t index) noexcept {
  std::uint64_t h = cause_recv.ticks() * 0x9E3779B97F4A7C15ULL;
  h ^= (static_cast<std::uint64_t>(cause_sender) << 32) ^ sender;
  h *= 0xC2B2AE3D27D4EB4FULL;
  h ^= cause_seq + 0x165667B19E3779F9ULL + (h << 6) + (h >> 2);
  h *= 0x2545F4914F6CDD1DULL;
  h ^= index;
  h ^= h >> 29;
  h *= 0xBF58476D1CE4E5B9ULL;
  h ^= h >> 32;
  return h;
}

struct Event {
  VirtualTime recv_time{};
  VirtualTime send_time{};
  ObjectId sender = 0;
  ObjectId receiver = 0;
  /// Ordering tie-break, from derive_send_seq (identical on re-execution).
  std::uint64_t seq = 0;
  /// Never-rolled-back per-sender instance id (anti-message matching).
  std::uint64_t instance = 0;
  /// True for anti-messages.
  bool negative = false;
  /// GVT color: parity of the sender's Mattern epoch at send time.
  std::uint8_t color = 0;
  Payload payload{};

  [[nodiscard]] EventKey key() const noexcept {
    return EventKey{recv_time, sender, seq};
  }

  [[nodiscard]] Position position() const noexcept {
    return Position{key(), instance};
  }

  /// The anti-message cancelling this (positive) event.
  [[nodiscard]] Event make_anti() const noexcept {
    Event anti = *this;
    anti.negative = true;
    anti.payload = Payload{};
    return anti;
  }

  /// Anti-message matching: same origin instance.
  [[nodiscard]] bool matches_instance(const Event& other) const noexcept {
    return sender == other.sender && instance == other.instance;
  }

  /// Lazy-cancellation content equality (what a "hit" means).
  [[nodiscard]] bool same_content(const Event& other) const noexcept {
    return receiver == other.receiver && recv_time == other.recv_time &&
           payload == other.payload;
  }
};

/// Receiver-queue order: ordering key, then instance for a stable total
/// order between transient duplicates (an old instance awaiting its
/// anti-message and its regenerated replacement).
struct InputOrder {
  bool operator()(const Event& a, const Event& b) const noexcept {
    return a.position() < b.position();
  }
};

std::ostream& operator<<(std::ostream& os, const EventKey& key);
std::ostream& operator<<(std::ostream& os, const Event& event);

}  // namespace otw::tw
