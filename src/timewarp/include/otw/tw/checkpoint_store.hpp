// State-saving back-ends (cf. Fleischmann & Wilsey, PADS'95 — the paper's
// ref [7], which compares periodic COPY state saving with INCREMENTAL state
// saving).
//
//  * CopyCheckpointStore      — each checkpoint is a full clone of the
//    object state (the kernel's default; cost ~ state size).
//  * IncrementalCheckpointStore — each checkpoint is a byte-level delta
//    against the previously saved state, with a full snapshot every
//    `full_snapshot_interval` saves to bound reconstruction chains. Cost ~
//    bytes actually CHANGED per event: a large-state object that touches a
//    few fields per event (e.g. the RAID fork controller) checkpoints almost
//    for free. Requires ObjectState::raw_bytes() (flat, fixed-size states).
//
// Both implement the CheckpointStore interface ObjectRuntime drives; the
// dynamic checkpoint-interval controller composes with either.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "otw/tw/event.hpp"
#include "otw/tw/object.hpp"
#include "otw/tw/queues.hpp"

namespace otw::tw {

enum class StateSaving : std::uint8_t { Copy, Incremental };

/// What one save() cost, in the cost model's terms.
struct SaveReceipt {
  /// Bytes scanned to compute the checkpoint (diffing; 0 for copy saves).
  std::uint64_t scanned_bytes = 0;
  /// Bytes written into the checkpoint (full size for copy saves).
  std::uint64_t stored_bytes = 0;
};

/// A reconstructed rollback target.
struct RestorePoint {
  Position pos;
  std::unique_ptr<ObjectState> state;
};

class CheckpointStore {
 public:
  virtual ~CheckpointStore() = default;

  /// Records a checkpoint of `current` at `pos` (positions strictly
  /// increasing).
  virtual SaveReceipt save(const Position& pos, const ObjectState& current) = 0;

  /// Drops every checkpoint at/after `target` and returns the latest
  /// remaining one (reconstructed if stored incrementally). The returned
  /// state is owned by the caller. Fails (contract) if nothing remains —
  /// fossil collection guarantees a floor below any legal rollback.
  virtual RestorePoint restore_before(const Position& target) = 0;

  /// Keeps the latest checkpoint strictly before `gvt` (plus everything the
  /// representation needs to reconstruct it) and drops older history.
  /// Returns that checkpoint's position: the input queue may drop processed
  /// events ordered before it.
  virtual Position fossil_collect(VirtualTime gvt) = 0;

  [[nodiscard]] virtual std::size_t entries() const noexcept = 0;

  /// Bytes currently held by live checkpoints (snapshots + deltas) — the
  /// state-queue term of the LP's memory footprint.
  [[nodiscard]] virtual std::uint64_t stored_bytes() const noexcept = 0;
};

/// Full-clone checkpoints (wraps the classic state queue). With an arena,
/// retired checkpoints are recycled instead of freed and fresh ones are
/// acquired from it instead of cloned.
class CopyCheckpointStore final : public CheckpointStore {
 public:
  explicit CopyCheckpointStore(StateArena* arena = nullptr)
      : arena_(arena), queue_(arena) {}

  SaveReceipt save(const Position& pos, const ObjectState& current) override;
  RestorePoint restore_before(const Position& target) override;
  Position fossil_collect(VirtualTime gvt) override { return queue_.fossil_collect(gvt); }
  [[nodiscard]] std::size_t entries() const noexcept override {
    return queue_.size();
  }
  [[nodiscard]] std::uint64_t stored_bytes() const noexcept override {
    return queue_.stored_bytes();
  }

 private:
  StateArena* arena_;
  StateQueue queue_;
};

/// Byte-delta checkpoints with periodic full snapshots.
class IncrementalCheckpointStore final : public CheckpointStore {
 public:
  explicit IncrementalCheckpointStore(std::uint32_t full_snapshot_interval = 32,
                                      StateArena* arena = nullptr);

  SaveReceipt save(const Position& pos, const ObjectState& current) override;
  RestorePoint restore_before(const Position& target) override;
  Position fossil_collect(VirtualTime gvt) override;
  [[nodiscard]] std::size_t entries() const noexcept override {
    return entries_.size();
  }
  [[nodiscard]] std::uint64_t stored_bytes() const noexcept override {
    return snapshot_bytes_ + stored_delta_bytes_;
  }

  /// Stored delta bytes across live entries (memory footprint; tests).
  [[nodiscard]] std::uint64_t stored_delta_bytes() const noexcept {
    return stored_delta_bytes_;
  }

 private:
  struct Change {
    std::uint32_t offset;
    std::byte value;
  };
  struct Entry {
    Position pos;
    std::unique_ptr<ObjectState> snapshot;  ///< non-null for full snapshots
    std::vector<Change> changes;            ///< for delta entries
  };

  /// State as of entries_[index], reconstructed from the nearest snapshot.
  [[nodiscard]] std::unique_ptr<ObjectState> reconstruct(std::size_t index) const;

  /// Copy of `src` via the arena (recycled) or clone (no arena).
  [[nodiscard]] std::unique_ptr<ObjectState> copy_state(const ObjectState& src) const;
  void retire_entry(Entry& entry) noexcept;

  std::uint32_t full_snapshot_interval_;
  std::uint32_t saves_since_full_ = 0;
  std::deque<Entry> entries_;
  /// Byte image of the most recently saved state (diff base).
  std::unique_ptr<ObjectState> shadow_;
  std::uint64_t stored_delta_bytes_ = 0;
  std::uint64_t snapshot_bytes_ = 0;
  StateArena* arena_ = nullptr;
};

/// Factory for ObjectRuntime. The arena (may be null) recycles checkpoint
/// states and must outlive the store.
std::unique_ptr<CheckpointStore> make_checkpoint_store(
    StateSaving mode, std::uint32_t full_snapshot_interval,
    StateArena* arena = nullptr);

}  // namespace otw::tw
