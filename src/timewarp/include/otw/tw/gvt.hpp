// Mattern-style GVT estimation (token ring, two colors).
//
// An epoch is one GVT computation. The initiator (LP 0) flips to the new
// color ("red") and launches a token around the LP ring. Each LP, at its
// first visit of the epoch, flips too; every visit accumulates into the
// token:
//   count       += (white messages it sent) - (white messages it received)
//   min_lvt      = min(min_lvt, its minimum unprocessed event time)
//   min_red_send = min(min_red_send, the minimum receive-time of any message
//                      it has sent since flipping)
// When the token returns with count == 0, every pre-cut (white) message has
// been delivered, and GVT = min(min_lvt, min_red_send) of that final round
// is a valid lower bound on any future rollback. Otherwise the initiator
// relaunches the token for another round with fresh count/min_lvt.
//
// GvtAgent is a pure state machine: the logical process performs all the
// message I/O, so the algorithm is directly unit-testable.
#pragma once

#include <cstdint>
#include <optional>

#include "otw/tw/messages.hpp"
#include "otw/util/assert.hpp"

namespace otw::tw {

class GvtAgent {
 public:
  /// @param self           this LP's id; LP 0 is the initiator
  /// @param num_lps        ring size
  /// @param period_events  locally processed events between epochs
  GvtAgent(LpId self, LpId num_lps, std::uint64_t period_events);

  /// Sender-side bookkeeping for one remote application message. Returns
  /// the color to stamp on the message.
  std::uint8_t on_send(VirtualTime recv_time) noexcept;

  /// Receiver-side bookkeeping for one remote application message.
  void on_receive(std::uint8_t color) noexcept { ++received_[color & 1]; }

  /// Local progress notification (one processed event).
  void on_event_processed() noexcept { ++events_since_epoch_; }

  /// Initiator: should a new epoch start now?
  [[nodiscard]] bool should_start(bool idle) const noexcept {
    return self_ == 0 && !epoch_active_ &&
           (idle || events_since_epoch_ >= period_events_);
  }

  struct Outcome {
    /// Token to forward to next_lp(), if any.
    std::optional<GvtTokenMessage> forward;
    /// Completed GVT value (initiator only), if the epoch finished.
    std::optional<VirtualTime> gvt;
  };

  /// Initiator: begins an epoch. local_min is this LP's minimum unprocessed
  /// event time. With a single LP the epoch completes immediately.
  Outcome start_epoch(VirtualTime local_min);

  /// Any LP: handles an arriving token.
  Outcome on_token(const GvtTokenMessage& token, VirtualTime local_min);

  [[nodiscard]] std::uint8_t current_color() const noexcept { return color_; }
  [[nodiscard]] bool epoch_active() const noexcept { return epoch_active_; }
  [[nodiscard]] LpId next_lp() const noexcept { return (self_ + 1) % num_lps_; }
  [[nodiscard]] std::uint64_t epochs() const noexcept { return epochs_; }
  [[nodiscard]] std::uint64_t rounds() const noexcept { return rounds_; }

  /// Migration codec: the Mattern counters ARE part of an LP's dynamic state
  /// (the white/black balances must move with the LP or the cut never
  /// closes). Ring identity (self/num_lps/period) is reconstructed from
  /// config on the destination, so only the counters travel.
  template <typename Writer>
  void export_state(Writer& w) const {
    w.u8(color_);
    w.u64(static_cast<std::uint64_t>(sent_[0]));
    w.u64(static_cast<std::uint64_t>(sent_[1]));
    w.u64(static_cast<std::uint64_t>(received_[0]));
    w.u64(static_cast<std::uint64_t>(received_[1]));
    w.u64(min_red_send_.ticks());
    w.u8(epoch_active_ ? 1 : 0);
    w.u64(events_since_epoch_);
    w.u64(epochs_);
    w.u64(rounds_);
  }

  template <typename Reader>
  void import_state(Reader& r) {
    color_ = r.u8();
    sent_[0] = static_cast<std::int64_t>(r.u64());
    sent_[1] = static_cast<std::int64_t>(r.u64());
    received_[0] = static_cast<std::int64_t>(r.u64());
    received_[1] = static_cast<std::int64_t>(r.u64());
    min_red_send_ = VirtualTime{r.u64()};
    epoch_active_ = r.u8() != 0;
    events_since_epoch_ = r.u64();
    epochs_ = r.u64();
    rounds_ = r.u64();
  }

 private:
  void flip_to_red(std::uint8_t white) noexcept;
  [[nodiscard]] std::int64_t white_balance(std::uint8_t white) const noexcept {
    return sent_[white] - received_[white];
  }

  LpId self_;
  LpId num_lps_;
  std::uint64_t period_events_;

  std::uint8_t color_ = 0;
  std::int64_t sent_[2] = {0, 0};
  std::int64_t received_[2] = {0, 0};
  VirtualTime min_red_send_ = VirtualTime::infinity();

  bool epoch_active_ = false;  // meaningful on the initiator only
  std::uint64_t events_since_epoch_ = 0;
  std::uint64_t epochs_ = 0;
  std::uint64_t rounds_ = 0;
};

}  // namespace otw::tw
