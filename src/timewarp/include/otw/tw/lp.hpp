// A logical process: a group of simulation objects sharing one scheduler,
// one aggregation channel and one GVT agent, driven step-wise by a platform
// engine. Implements the LpServices the per-object runtimes call back into.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "otw/comm/aggregation.hpp"
#include "otw/core/load_balance_controller.hpp"
#include "otw/core/optimism_controller.hpp"
#include "otw/core/pressure_controller.hpp"
#include "otw/core/snapshot_schedule_controller.hpp"
#include "otw/obs/live.hpp"
#include "otw/obs/recorder.hpp"
#include "otw/platform/distributed.hpp"
#include "otw/platform/engine.hpp"
#include "otw/tw/gvt.hpp"
#include "otw/tw/memory_pool.hpp"
#include "otw/tw/object_runtime.hpp"
#include "otw/tw/stats.hpp"
#include "otw/util/buffer_pool.hpp"

namespace otw::tw {

/// Which execution platform tw::run dispatches to.
enum class EngineKind : std::uint8_t {
  Sequential,    ///< ground-truth event-list kernel (no Time Warp)
  SimulatedNow,  ///< deterministic modeled network of workstations
  Threaded,      ///< M:N work-stealing scheduler on real threads
  Distributed,   ///< LPs sharded over worker processes + TCP loopback
};

/// LP -> shard placement policy for the distributed engine (tw/partition.hpp
/// implements both; the choice is digest-neutral).
enum class PartitionKind : std::uint8_t {
  RoundRobin,  ///< lp % num_shards (the adversarial layout for the wire)
  CommGraph,   ///< greedy edge-cut over the model's declared send graph
};

struct KernelConfig {
  LpId num_lps = 1;
  /// Events with receive time beyond this are never processed.
  VirtualTime end_time = VirtualTime::infinity();
  /// Events one LP processes per step() (between network polls).
  std::uint32_t batch_size = 8;
  /// Locally processed events between GVT epochs.
  std::uint64_t gvt_period_events = 512;
  /// Minimum platform time between GVT epochs. Keeps an idle initiator from
  /// flooding the network with back-to-back token rounds (GVT is control
  /// traffic competing with useful work, cf. paper Section 3).
  std::uint64_t gvt_min_interval_ns = 500'000;
  /// Per-object state saving. The LogicalProcess assembles the internal
  /// ObjectRuntimeConfig from this block plus `runtime` and `telemetry`.
  struct Checkpoint {
    /// Static checkpoint interval chi (1 = copy state after every event).
    std::uint32_t interval = 1;
    /// Checkpoint representation: full copies or byte deltas (paper ref [7]).
    StateSaving state_saving = StateSaving::Copy;
    /// Incremental mode: saves between full snapshots.
    std::uint32_t full_snapshot_interval = 32;
    /// When true, chi is driven by the CheckpointIntervalController instead.
    bool dynamic = false;
    core::CheckpointControlConfig control;
  } checkpoint;

  /// Per-object rollback/cancellation tuning.
  struct Runtime {
    core::CancellationControlConfig cancellation;
    /// Bound on the passive-comparison list used to maintain HR under
    /// aggressive cancellation.
    std::size_t passive_compare_cap = 64;
  } runtime;

  /// DyMA policy for the outgoing communication path.
  comm::AggregationConfig aggregation;

  /// Controller-trajectory recording (off by default). Applied to every
  /// object and LP; read back from RunResult::telemetry. Samples also land
  /// in the kernel trace when observability.tracing is on (one sink).
  TelemetryConfig telemetry;

  /// Kernel tracing and phase profiling (otw::obs; off by default). Traces
  /// are read back from RunResult::trace / RunResult::lp_phases and exported
  /// via otw/tw/observability.hpp.
  obs::ObsConfig observability;

  /// Bounded-time-window optimism throttling (Palaniswamy & Wilsey): an LP
  /// only processes events with receive time <= GVT + window.
  struct Optimism {
    enum class Mode : std::uint8_t { Unbounded, Static, Adaptive };
    Mode mode = Mode::Unbounded;
    /// Static window / adaptive initial window, in virtual-time ticks.
    std::uint64_t window = 1u << 16;
    core::OptimismControlConfig control;
  } optimism;

  /// Bounded-memory execution. With a non-zero budget, every LP samples its
  /// optimistic-history footprint (see MemoryStats) against budget_bytes /
  /// num_lps and drives the pressure controller: Throttle clamps the
  /// optimism window, Emergency additionally forces early GVT epochs and
  /// holds far-future remote sends (cancelback-lite). Committed results are
  /// unaffected — only speculation is delayed. budget_bytes == 0 disables
  /// the controller (pooled allocation and accounting stay on).
  struct Memory {
    std::uint64_t budget_bytes = 0;
    core::MemoryPressureConfig control;
  } memory;

  /// Which execution platform tw::run dispatches to, plus its sizing knobs.
  /// Per-engine tuning beyond these (cost models, trace capacities, ports)
  /// stays in the optional platform config each entry point accepts.
  struct Engine {
    EngineKind kind = EngineKind::SimulatedNow;
    /// Pending-event-set implementation behind every LP input queue and the
    /// sequential kernel's central event list (digest-neutral; see
    /// pending_set.hpp). Multiset is the reference.
    QueueKind queue = QueueKind::Multiset;
    /// Threaded engine: worker threads (0 = one per hardware thread).
    std::uint32_t num_workers = 0;
    /// Distributed engine: worker processes (each owns num_lps/num_shards
    /// LPs under RoundRobin; CommGraph balances by edge cut).
    std::uint32_t num_shards = 2;
    /// Distributed data plane: direct peer links (Mesh, the default) or the
    /// legacy coordinator relay (Star, kept for A/B comparisons).
    platform::Topology topology = platform::Topology::Mesh;
    /// Initial LP -> shard placement policy (Distributed only).
    PartitionKind partition = PartitionKind::CommGraph;
  } engine;

  /// On-line LP migration (Distributed engine, Mesh topology only). The
  /// coordinator samples per-shard work every period_ms via the live plane,
  /// feeds the <O,I,S,T,P> load-balance controller (core/
  /// load_balance_controller.hpp), and past the dead-zoned threshold orders
  /// the hottest LP on the hottest shard frozen at a GVT cut and shipped to
  /// the coldest shard. The adaptive path needs the live plane
  /// (observability.live) for its observations; `forced` works without it.
  struct Migration {
    bool enabled = false;
    /// Control period P: how often the coordinator evaluates the controller.
    std::uint32_t period_ms = 20;
    core::LoadBalanceConfig control;
    /// Scripted moves (tests/benches): each (lp, to_shard) fires on its own
    /// control period, in order, before the adaptive controller runs.
    std::vector<std::pair<LpId, std::uint32_t>> forced;
  } migration;

  /// Shard-level checkpoint/restart with automatic failure recovery
  /// (Distributed engine, Mesh topology only; DESIGN.md section 8c). When
  /// enabled, the coordinator schedules stop-the-world snapshot epochs via a
  /// SnapshotScheduleController tuned against `recovery_budget_ms`, retains
  /// the last complete cut, and — on a worker-process death or a watchdog
  /// ShardSilent verdict under Policy::Recover — forks a replacement,
  /// restores the lost shard from the cut, rolls every survivor back to it
  /// and resumes. Mutually exclusive with on-line migration (owners keep
  /// their initial placement so a replacement inherits a known shard).
  struct Fault {
    bool enabled = false;
    /// Worst-case work-at-risk promise: snapshot gap + restore must fit.
    std::uint32_t recovery_budget_ms = 250;
    /// Cap on one epoch's total serialized bytes (0 = unlimited). Epochs
    /// over the cap are recorded to `spill_dir` instead of held in memory,
    /// or refused when no spill directory is configured.
    std::uint64_t max_snapshot_bytes = 0;
    /// Recoveries allowed per run; past this a death is fatal again.
    std::uint32_t max_recoveries = 4;
    /// Directory for spilled snapshot epochs (OTWSNAP1 container files,
    /// readable by `twreport snapshot`). Empty = keep epochs in memory.
    std::string spill_dir;
    /// What a ShardSilent watchdog verdict does: report-only leaves the
    /// existing flight-dump path in charge; Recover kills the hung worker
    /// and restores it from the last complete cut.
    enum class Policy : std::uint8_t { ReportOnly, Recover };
    Policy policy = Policy::Recover;
    /// Snapshot cadence controller (budget cap / overhead floor bounds).
    core::SnapshotScheduleConfig control;
    /// Chaos injection (tests/CI): SIGKILL this shard's worker right after
    /// snapshot epoch `inject_kill_after_epoch` completes. -1 = disabled.
    std::int32_t inject_kill_shard = -1;
    std::uint32_t inject_kill_after_epoch = 1;
  } fault;

  /// Copy of this config with fault tolerance switched on and the recovery
  /// budget set (0 keeps the default). Keeps enabling a one-liner:
  /// `kc.with_fault_tolerance(500)` — analogous to with_engine().
  [[nodiscard]] KernelConfig with_fault_tolerance(
      std::uint32_t recovery_budget_ms = 0) const {
    KernelConfig copy = *this;
    copy.fault.enabled = true;
    if (recovery_budget_ms > 0) {
      copy.fault.recovery_budget_ms = recovery_budget_ms;
      copy.fault.control.recovery_budget_ms = recovery_budget_ms;
    } else {
      copy.fault.control.recovery_budget_ms = copy.fault.recovery_budget_ms;
    }
    return copy;
  }

  /// Copy of this config running on `kind`; `size` (when non-zero) sets the
  /// engine's parallelism — num_workers for Threaded, num_shards for
  /// Distributed. Keeps call-site migration to tw::run a one-liner.
  [[nodiscard]] KernelConfig with_engine(EngineKind kind,
                                         std::uint32_t size = 0) const {
    KernelConfig copy = *this;
    copy.engine.kind = kind;
    if (size > 0) {
      if (kind == EngineKind::Threaded) {
        copy.engine.num_workers = size;
      } else if (kind == EngineKind::Distributed) {
        copy.engine.num_shards = size;
      }
    }
    return copy;
  }

  /// Hard cap on Engine::num_shards — one process per shard; beyond this the
  /// coordinator's relay loop is the bottleneck, not the kernel.
  static constexpr std::uint32_t kMaxShards = 64;

  /// Checks the whole configuration for contradictions a constructor cannot
  /// see locally: zero control periods, inverted thresholds/watermarks,
  /// engine sizing out of range. Returns one descriptive message per
  /// violation (empty = valid). Every tw::run entry point rejects a config
  /// for which this is non-empty.
  [[nodiscard]] std::vector<std::string> validate() const;
};

class LogicalProcess final : public platform::LpRunner,
                             public LpServices,
                             public platform::MigratableLp {
 public:
  /// @param object_to_lp global ObjectId -> LpId map (shared by all LPs)
  /// @param objects      (global id, object) pairs owned by this LP
  LogicalProcess(LpId id, const KernelConfig& config,
                 std::vector<LpId> object_to_lp,
                 std::vector<std::pair<ObjectId, std::unique_ptr<SimulationObject>>>
                     objects);

  // --- platform::LpRunner ---
  platform::StepStatus step(platform::LpContext& ctx) override;

  // --- platform::MigratableLp ---
  /// Freezes this LP at the current GVT cut and serializes it into the
  /// MIGRATE frame body (DESIGN.md section 8b): drains the engine inbox,
  /// rolls every runtime back to the cut, settles the resulting same-LP
  /// anti-messages, flushes held sends and aggregation batches, then writes
  /// gvt / gvt_agent / lp_stats / events_total / samples / runtimes. Returns
  /// false (declining the move) when the drain completes the LP.
  [[nodiscard]] bool migrate_out(platform::LpContext& ctx,
                                 platform::WireWriter& writer) override;
  /// Rebuilds this LP from a MIGRATE frame body on the destination shard.
  /// The shipped GVT cut replaces local progress; per-LP controllers restart
  /// fresh and the restored runtimes checkpoint at Position::before_all().
  void migrate_in(platform::LpContext& ctx,
                  platform::WireReader& reader) override;

  /// Snapshot settle pass (DESIGN.md section 8c): drains the engine inbox,
  /// delivers deferred same-LP events and force-flushes the aggregation
  /// channel so parked (already Mattern-counted) events reach the wire and
  /// the shard's channel-op counters can stabilize. Processes no events.
  /// Returns true when anything moved (the shard is not yet quiescent).
  bool snapshot_settle(platform::LpContext& ctx) override;
  /// Cut phase: rolls every runtime back to the current GVT
  /// (migration_freeze), settles the resulting same-LP anti-messages and
  /// flushes held sends and channel batches. Declines (returns false) when
  /// the LP is done, uninitialized, or GVT is still zero — the coordinator
  /// aborts the epoch and retries later; an executed cut is digest-neutral,
  /// so no undo is needed.
  [[nodiscard]] bool snapshot_cut(platform::LpContext& ctx) override;
  /// Serializes this LP in the MIGRATE travelling layout without disturbing
  /// it (ObjectRuntime::encode_frozen); the LP keeps executing after resume.
  void snapshot_encode(platform::LpContext& ctx,
                       platform::WireWriter& writer) override;
  /// Restores this LP in place from a snapshot blob (survivor rollback or
  /// replacement revival): clears the aggregation channel and local inbox,
  /// then rebuilds exactly like migrate_in.
  void snapshot_restore(platform::LpContext& ctx,
                        platform::WireReader& reader) override;
  [[nodiscard]] std::uint64_t snapshot_gvt_ticks() const noexcept override {
    return gvt_value_.ticks();
  }

  // --- LpServices (called by ObjectRuntime) ---
  void route(Event&& event) override;
  void note_rollback(std::size_t undone) noexcept override;
  [[nodiscard]] std::uint64_t wall_now_ns() const noexcept override;
  void wall_charge(std::uint64_t ns) noexcept override;
  [[nodiscard]] const platform::CostModel& costs() const noexcept override;
  [[nodiscard]] VirtualTime end_time() const noexcept override {
    return config_.end_time;
  }
  [[nodiscard]] obs::Recorder& recorder() noexcept override { return recorder_; }
  [[nodiscard]] SlabPool* event_pool() noexcept override { return &event_pool_; }
  [[nodiscard]] QueueKind queue_kind() const noexcept override {
    return config_.engine.queue;
  }

  /// Shared recycler for cross-LP event-batch buffers (null: no recycling).
  /// Installed by the kernel before the run starts; the pool must outlive
  /// every message shipped through this LP.
  void set_batch_pool(std::shared_ptr<util::BufferPool<Event>> pool) noexcept {
    batch_pool_ = std::move(pool);
    channel_.set_recycler(batch_pool_.get());
  }

  /// Live introspection registry (null: publishing disabled). Installed by
  /// the kernel before the run starts; must outlive the run. Publishing is
  /// relaxed atomic stores only — provably digest-neutral.
  void set_live(obs::live::LiveMetricsRegistry* live) noexcept { live_ = live; }

  // --- results / introspection ---
  [[nodiscard]] VirtualTime gvt() const noexcept { return gvt_value_; }
  [[nodiscard]] bool done() const noexcept { return done_; }
  [[nodiscard]] const LpStats& lp_stats() const noexcept { return stats_; }
  [[nodiscard]] LpStats snapshot_lp_stats() const;
  [[nodiscard]] const std::vector<std::unique_ptr<ObjectRuntime>>& runtimes()
      const noexcept {
    return runtimes_;
  }
  [[nodiscard]] const GvtAgent& gvt_agent() const noexcept { return gvt_; }
  [[nodiscard]] const comm::AggregationChannel<Event>& channel() const noexcept {
    return channel_;
  }
  [[nodiscard]] const std::vector<LpSample>& trace() const noexcept {
    return trace_;
  }
  /// This LP's current footprint: runtimes' queues/checkpoints plus held
  /// sends, plus the slab pool's resident bytes.
  [[nodiscard]] MemoryStats memory_footprint() const noexcept;
  [[nodiscard]] const core::MemoryPressureController* pressure() const noexcept {
    return pressure_ ? &*pressure_ : nullptr;
  }

 private:
  void drain_one(std::unique_ptr<platform::EngineMessage> msg);
  bool drain();  ///< returns true if any message was handled
  void deliver_local_pending();
  void handle_token(const GvtTokenMessage& token);
  void complete_epoch(VirtualTime gvt);
  void apply_gvt(VirtualTime gvt);
  [[nodiscard]] VirtualTime local_min() const noexcept;
  [[nodiscard]] ObjectRuntime& local_object(ObjectId id);
  void ship_batch(LpId dst, std::vector<Event>&& events);
  [[nodiscard]] ObjectRuntime* pick_lowest() noexcept;
  /// Highest receive time currently processable (end_time and, when bounded,
  /// GVT + optimism window — further clamped under memory pressure).
  [[nodiscard]] VirtualTime processing_bound() const noexcept;
  /// GVT + emergency_window, overflow-clamped: the horizon below which held
  /// sends must always flow (deadlock freedom).
  [[nodiscard]] VirtualTime emergency_horizon() const noexcept;
  /// Samples the footprint, steps the pressure controller, applies the
  /// actuations (window clamp, held-send flush on exit). ctx_ must be valid.
  void sample_pressure();
  /// Ships every held send with receive time <= horizon (order preserved).
  void flush_held(VirtualTime horizon);
  /// Annihilates a held positive matching `anti` in place (the pair never
  /// reaches the wire). True when a match was found.
  bool annihilate_held(const Event& anti);
  /// Copies this LP's running totals into its live-registry cell (relaxed
  /// stores of absolute totals; see obs/live.hpp for the ordering argument).
  void publish_live() noexcept;

  LpId id_;
  KernelConfig config_;
  obs::Recorder recorder_;
  std::vector<LpId> object_to_lp_;
  /// Input-queue node pool; declared before runtimes_ (their queues release
  /// nodes into it on destruction).
  SlabPool event_pool_;
  std::vector<std::unique_ptr<ObjectRuntime>> runtimes_;
  /// Global ObjectId -> index into runtimes_, or SIZE_MAX for remote objects.
  std::vector<std::size_t> local_index_;
  std::vector<Event> local_inbox_;  ///< deferred same-LP deliveries
  comm::AggregationChannel<Event> channel_;
  GvtAgent gvt_;
  std::optional<core::OptimismWindowController> optimism_;
  std::uint64_t optimism_rolled_back_ = 0;
  std::optional<core::MemoryPressureController> pressure_;
  /// Cancelback-lite: positive remote sends deferred under Emergency, in
  /// send order. Their receive times feed local_min() so GVT can never
  /// overtake a held message.
  std::vector<Event> held_sends_;
  std::uint64_t pressure_enter_ns_ = 0;
  std::shared_ptr<util::BufferPool<Event>> batch_pool_;
  VirtualTime gvt_value_ = VirtualTime::zero();
  std::uint64_t last_epoch_start_ns_ = 0;
  bool epoch_ever_started_ = false;
  bool initialized_ = false;
  bool done_ = false;
  platform::LpContext* ctx_ = nullptr;  ///< valid only inside step()
  std::uint64_t events_since_sample_ = 0;
  std::uint64_t events_processed_total_ = 0;
  std::vector<LpSample> trace_;
  LpStats stats_;
  obs::live::LiveMetricsRegistry* live_ = nullptr;
};

}  // namespace otw::tw
