// Initial LP -> shard placement for the distributed engine.
//
// RoundRobin reproduces the legacy lp % num_shards layout — the adversarial
// case for the wire (every GVT token hop crosses a process boundary and
// neighbouring model objects usually land on different shards).
//
// CommGraph minimizes the weighted edge cut over the model's declared send
// graph (Model::add_edge): object edges are folded into LP-level affinities,
// LPs are placed greedily in decreasing total-affinity order onto the shard
// where they have the highest affinity to already-placed LPs, subject to a
// balanced capacity of ceil(num_lps / num_shards) LPs per shard. The
// algorithm is deterministic (ties break toward the lower LP id and the
// lower shard id), so the same model always yields the same placement and
// digest comparisons across runs stay meaningful. A model with no edges
// degrades to exactly the round-robin layout.
//
// Placement is digest-neutral: it changes who computes, never what is
// computed. With on-line migration the result is only the *initial* owner
// map; the engine's epoch-tagged rebinds take over from there.
#pragma once

#include <cstdint>
#include <vector>

#include "otw/tw/kernel.hpp"

namespace otw::tw {

/// Returns the LP -> shard table (index = LpId, size = num_lps) under the
/// given policy. num_shards must be >= 1; LPs the model never mentions are
/// still placed (they idle at GVT).
[[nodiscard]] std::vector<std::uint32_t> partition_lps(const Model& model,
                                                       LpId num_lps,
                                                       std::uint32_t num_shards,
                                                       PartitionKind kind);

/// Weighted edge-cut of a placement over the model's send graph: the sum of
/// edge weights whose endpoints land on different shards (bench/test metric).
[[nodiscard]] double edge_cut(const Model& model, LpId num_lps,
                              const std::vector<std::uint32_t>& placement);

}  // namespace otw::tw
