// Kernel instrumentation: per-object and per-LP counters plus roll-ups.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "otw/core/cancellation_controller.hpp"
#include "otw/tw/virtual_time.hpp"
#include "otw/util/stats.hpp"

namespace otw::tw {

struct ObjectStats {
  std::uint64_t events_processed = 0;   ///< process_event calls, incl. re-execution
  std::uint64_t events_committed = 0;   ///< events finally below GVT
  std::uint64_t events_rolled_back = 0; ///< processed events undone by rollbacks
  std::uint64_t rollbacks = 0;
  std::uint64_t coast_forward_events = 0;
  std::uint64_t states_saved = 0;
  std::uint64_t state_restores = 0;
  std::uint64_t messages_sent = 0;      ///< positive messages (first sends + re-sends)
  std::uint64_t anti_messages_sent = 0;
  std::uint64_t anti_messages_received = 0;
  std::uint64_t stragglers = 0;
  std::uint64_t lazy_hits = 0;          ///< identical regeneration under lazy
  std::uint64_t lazy_misses = 0;        ///< lazy entries cancelled after all
  std::uint64_t passive_hits = 0;       ///< "lazy aggressive hits" (paper S5)
  std::uint64_t passive_misses = 0;
  std::uint64_t cancellation_switches = 0;
  std::uint64_t checkpoint_control_ticks = 0;
  std::uint32_t final_checkpoint_interval = 1;
  core::CancellationMode final_mode = core::CancellationMode::Aggressive;
  double final_hit_ratio = 0.0;
  util::Log2Histogram rollback_length;

  void merge(const ObjectStats& other);
};

struct LpStats {
  std::uint64_t gvt_epochs = 0;
  std::uint64_t gvt_rounds = 0;        ///< token passes handled
  std::uint64_t events_sent_remote = 0;
  std::uint64_t events_sent_local = 0;
  std::uint64_t aggregates_sent = 0;
  std::uint64_t messages_aggregated = 0;
  util::RunningStat aggregate_size;
  util::RunningStat aggregation_window_us;
  std::uint64_t steps = 0;
  std::uint64_t idle_polls = 0;

  void merge(const LpStats& other);
};

struct KernelStats {
  std::vector<ObjectStats> objects;  ///< indexed by ObjectId
  std::vector<LpStats> lps;          ///< indexed by LpId
  VirtualTime final_gvt = VirtualTime::zero();

  [[nodiscard]] ObjectStats object_totals() const;
  [[nodiscard]] LpStats lp_totals() const;
  [[nodiscard]] std::uint64_t total_committed() const;
  [[nodiscard]] std::uint64_t total_rollbacks() const;

  /// Multi-line human-readable summary.
  [[nodiscard]] std::string summary() const;
};

std::ostream& operator<<(std::ostream& os, const KernelStats& stats);

}  // namespace otw::tw
