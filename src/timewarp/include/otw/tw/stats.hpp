// Kernel instrumentation: per-object and per-LP counters plus roll-ups.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "otw/core/cancellation_controller.hpp"
#include "otw/tw/virtual_time.hpp"
#include "otw/util/stats.hpp"

namespace otw::tw {

/// One memory-footprint sample. Every term counts bytes the optimistic
/// history currently pins: events still rollback-reachable, remembered
/// output messages, stored checkpoints, and comparison lists awaiting
/// resolution. Pool slab bytes are accounted separately (slabs never
/// shrink, so they are a high-water mark, not a live count). Invariant:
/// total() is exactly what fossil collection can eventually reclaim plus
/// one checkpoint + the unprocessed-event tail.
struct MemoryStats {
  std::uint64_t input_queue_bytes = 0;   ///< live input-queue events
  std::uint64_t output_queue_bytes = 0;  ///< remembered sent messages
  std::uint64_t state_bytes = 0;         ///< stored checkpoints (snapshots+deltas)
  std::uint64_t pending_bytes = 0;       ///< lazy-pending + passive entries
  std::uint64_t held_bytes = 0;          ///< cancelback-held remote sends
  std::uint64_t pool_slab_bytes = 0;     ///< slab reservation (never shrinks)
  std::uint64_t live_events = 0;         ///< input-queue population
  std::uint64_t checkpoints = 0;         ///< state-queue population

  /// The number the pressure controller compares against the budget.
  [[nodiscard]] std::uint64_t total() const noexcept {
    return input_queue_bytes + output_queue_bytes + state_bytes +
           pending_bytes + held_bytes;
  }

  void add(const MemoryStats& other) noexcept;
};

struct ObjectStats {
  std::uint64_t events_processed = 0;   ///< process_event calls, incl. re-execution
  std::uint64_t events_committed = 0;   ///< events finally below GVT
  std::uint64_t events_rolled_back = 0; ///< processed events undone by rollbacks
  std::uint64_t rollbacks = 0;
  std::uint64_t coast_forward_events = 0;
  std::uint64_t states_saved = 0;
  std::uint64_t state_restores = 0;
  std::uint64_t messages_sent = 0;      ///< positive messages (first sends + re-sends)
  std::uint64_t anti_messages_sent = 0;
  std::uint64_t anti_messages_received = 0;
  std::uint64_t stragglers = 0;
  std::uint64_t lazy_hits = 0;          ///< identical regeneration under lazy
  std::uint64_t lazy_misses = 0;        ///< lazy entries cancelled after all
  std::uint64_t passive_hits = 0;       ///< "lazy aggressive hits" (paper S5)
  std::uint64_t passive_misses = 0;
  std::uint64_t cancellation_switches = 0;
  std::uint64_t checkpoint_control_ticks = 0;
  std::uint32_t final_checkpoint_interval = 1;
  core::CancellationMode final_mode = core::CancellationMode::Aggressive;
  double final_hit_ratio = 0.0;
  util::Log2Histogram rollback_length;

  void merge(const ObjectStats& other);
};

struct LpStats {
  std::uint64_t gvt_epochs = 0;
  std::uint64_t gvt_rounds = 0;        ///< token passes handled
  std::uint64_t events_sent_remote = 0;
  std::uint64_t events_sent_local = 0;
  std::uint64_t aggregates_sent = 0;
  std::uint64_t messages_aggregated = 0;
  util::RunningStat aggregate_size;
  util::RunningStat aggregation_window_us;
  std::uint64_t steps = 0;
  std::uint64_t idle_polls = 0;

  /// --- memory governance (final footprint + pressure history) ---
  MemoryStats memory;                      ///< footprint at the last sample
  std::uint64_t memory_peak_bytes = 0;     ///< max sampled MemoryStats::total()
  std::uint64_t memory_budget_bytes = 0;   ///< configured per-LP budget (0 = off)
  std::uint64_t pool_recycled_blocks = 0;  ///< allocations served by freelists
  std::uint64_t pressure_enters = 0;       ///< Normal -> Throttle/Emergency edges
  std::uint64_t pressure_exits = 0;        ///< edges back to Normal
  std::uint64_t pressure_gvt_triggers = 0; ///< early GVT epochs forced by pressure
  std::uint64_t sends_held = 0;            ///< cancelback-lite: sends deferred
  std::uint64_t holds_annihilated = 0;     ///< held sends cancelled in place

  void merge(const LpStats& other);
};

struct KernelStats {
  std::vector<ObjectStats> objects;  ///< indexed by ObjectId
  std::vector<LpStats> lps;          ///< indexed by LpId
  VirtualTime final_gvt = VirtualTime::zero();

  [[nodiscard]] ObjectStats object_totals() const;
  [[nodiscard]] LpStats lp_totals() const;
  [[nodiscard]] std::uint64_t total_committed() const;
  [[nodiscard]] std::uint64_t total_rollbacks() const;
  /// Final footprint summed over LPs; peak is the sum of per-LP peaks (an
  /// upper bound on the true global peak — per-LP peaks need not coincide).
  [[nodiscard]] MemoryStats memory_totals() const;
  [[nodiscard]] std::uint64_t memory_peak_bytes() const;

  /// Multi-line human-readable summary.
  [[nodiscard]] std::string summary() const;
};

std::ostream& operator<<(std::ostream& os, const KernelStats& stats);

}  // namespace otw::tw
