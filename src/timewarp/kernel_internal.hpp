// Internal glue between the kernel entry points (kernel.cpp) and the
// distributed run path (distributed.cpp). Not installed; include-path private
// to src/timewarp.
#pragma once

#include <memory>
#include <vector>

#include "otw/obs/live_server.hpp"
#include "otw/tw/kernel.hpp"

namespace otw::tw::detail {

/// Instantiated LPs for one run of a model.
struct Assembly {
  std::vector<std::unique_ptr<LogicalProcess>> lps;
  std::vector<platform::LpRunner*> runners;
  /// Live introspection registry, allocated (and installed into every LP)
  /// when the config enables the live plane; null otherwise. shared_ptr so
  /// the scrape thread's snapshot closure can outlive scope churn.
  std::shared_ptr<obs::live::LiveMetricsRegistry> live;
};

Assembly assemble(const Model& model, const KernelConfig& config);

/// Starts the scrape endpoint over the assembly's registry (single-shard
/// view). Null when the live plane is disabled or compiled out.
std::unique_ptr<obs::live::LiveServer> start_live_server(
    const KernelConfig& config, const Assembly& assembly);

/// Stops the server and moves its watchdog history into result.health.
void finish_live_server(std::unique_ptr<obs::live::LiveServer>& server,
                        RunResult& result);

/// Builds a RunResult by reading digests/stats/traces out of live LPs (the
/// in-process engines). The distributed path has its own merge: its LPs
/// finished in other processes.
RunResult collect(const Model& model, Assembly& assembly,
                  const platform::EngineRunResult& engine_result,
                  std::uint64_t wall_ns);

/// Throws ContractViolation listing every KernelConfig::validate() error.
void require_valid(const KernelConfig& config);

/// Distributed run path (distributed.cpp): fork/TCP engine + harvest merge.
RunResult run_distributed_impl(const Model& model, const KernelConfig& config,
                               platform::DistributedConfig dist_config);

}  // namespace otw::tw::detail
