// Internal glue between the kernel entry points (kernel.cpp) and the
// distributed run path (distributed.cpp). Not installed; include-path private
// to src/timewarp.
#pragma once

#include <memory>
#include <vector>

#include "otw/tw/kernel.hpp"

namespace otw::tw::detail {

/// Instantiated LPs for one run of a model.
struct Assembly {
  std::vector<std::unique_ptr<LogicalProcess>> lps;
  std::vector<platform::LpRunner*> runners;
};

Assembly assemble(const Model& model, const KernelConfig& config);

/// Builds a RunResult by reading digests/stats/traces out of live LPs (the
/// in-process engines). The distributed path has its own merge: its LPs
/// finished in other processes.
RunResult collect(const Model& model, Assembly& assembly,
                  const platform::EngineRunResult& engine_result,
                  std::uint64_t wall_ns);

/// Throws ContractViolation listing every KernelConfig::validate() error.
void require_valid(const KernelConfig& config);

/// Distributed run path (distributed.cpp): fork/TCP engine + harvest merge.
RunResult run_distributed_impl(const Model& model, const KernelConfig& config,
                               platform::DistributedConfig dist_config);

}  // namespace otw::tw::detail
