// Sequential reference kernel: one central event list, no rollback. The
// event order (recv_time, receiver, sender, seq) matches the committed order
// of any Time Warp execution of the same model because application message
// delays are >= 1 tick (enforced by ObjectContext::send), making same-time
// cross-object interactions impossible.
#include "otw/tw/kernel.hpp"

#include <chrono>

#include "otw/platform/snapshot_file.hpp"
#include "otw/tw/memory_pool.hpp"
#include "otw/tw/pending_set.hpp"
#include "otw/tw/snapshot.hpp"
#include "otw/tw/wire.hpp"
#include "otw/util/assert.hpp"

namespace otw::tw {

namespace {

// The central event list's order (SeqOrder) and its selectable backing
// structures live in pending_set.hpp, shared with the LP input queues.

class SequentialContext final : public ObjectContext {
 public:
  SequentialContext(ObjectId num_objects, QueueKind queue)
      : states_(num_objects), pending_(make_central_event_list(queue, &pool_)) {}

  void set_state(ObjectId id, std::unique_ptr<ObjectState> state) {
    states_[id] = std::move(state);
  }

  /// Enters object `id` processing the event with key `cause` (before_all()
  /// for initialize()).
  void begin(ObjectId id, VirtualTime now, const EventKey& cause) {
    current_ = id;
    now_ = now;
    cause_ = cause;
    sends_this_event_ = 0;
  }

  [[nodiscard]] ObjectId self() const noexcept override { return current_; }
  [[nodiscard]] VirtualTime now() const noexcept override { return now_; }
  [[nodiscard]] ObjectState& state() noexcept override {
    return *states_[current_];
  }

  void send(ObjectId dest, VirtualTime::rep delay, const Payload& payload) override {
    OTW_REQUIRE(dest < states_.size());
    OTW_REQUIRE_MSG(delay >= 1, "zero-delay messages are not allowed");
    Event event;
    event.sender = current_;
    event.receiver = dest;
    event.send_time = now_;
    event.recv_time = now_ + delay;
    // Same derivation as the Time Warp kernels: identical tie-break keys.
    event.seq = derive_send_seq(cause_.recv_time, cause_.sender, cause_.seq,
                                current_, sends_this_event_++);
    event.payload = payload;
    pending_->insert(event);
  }

  void charge(std::uint64_t) noexcept override {}

  [[nodiscard]] bool empty() const noexcept { return pending_->empty(); }
  [[nodiscard]] const Event& lowest() const { return *pending_->lowest(); }
  void pop() { pending_->pop_lowest(); }

  [[nodiscard]] std::uint64_t state_digest(ObjectId id) const {
    return states_[id]->digest();
  }

  // tw::snapshot / tw::restore need the raw state views and direct event
  // insertion (bypassing send()'s now()-relative timing).
  [[nodiscard]] ObjectState& raw_state(ObjectId id) { return *states_[id]; }
  void insert_pending(const Event& event) { pending_->insert(event); }

 private:
  std::vector<std::unique_ptr<ObjectState>> states_;
  /// Declared before pending_: the event list's nodes live in the pool.
  SlabPool pool_;
  std::unique_ptr<CentralEventList> pending_;
  ObjectId current_ = 0;
  VirtualTime now_ = VirtualTime::zero();
  EventKey cause_{};
  std::uint32_t sends_this_event_ = 0;
};

}  // namespace

SequentialResult run_sequential(const Model& model, VirtualTime end_time,
                                QueueKind queue) {
  OTW_REQUIRE_MSG(!model.objects.empty(), "model has no objects");
  const auto start = std::chrono::steady_clock::now();

  const auto n = static_cast<ObjectId>(model.objects.size());
  std::vector<std::unique_ptr<SimulationObject>> objects;
  objects.reserve(n);
  SequentialContext ctx(n, queue);

  for (ObjectId id = 0; id < n; ++id) {
    OTW_REQUIRE(model.objects[id].factory != nullptr);
    objects.push_back(model.objects[id].factory());
    ctx.set_state(id, objects.back()->initial_state());
  }

  SequentialResult result;
  result.events_per_object.assign(n, 0);

  for (ObjectId id = 0; id < n; ++id) {
    ctx.begin(id, VirtualTime::zero(), EventKey::before_all());
    objects[id]->initialize(ctx);
  }

  while (!ctx.empty()) {
    const Event event = ctx.lowest();
    if (event.recv_time > end_time) {
      break;
    }
    ctx.pop();
    ctx.begin(event.receiver, event.recv_time, event.key());
    objects[event.receiver]->process_event(ctx, event);
    ++result.events_processed;
    ++result.events_per_object[event.receiver];
    result.final_time = event.recv_time;
  }

  for (ObjectId id = 0; id < n; ++id) {
    ctx.begin(id, result.final_time, EventKey::before_all());
    objects[id]->finalize(ctx);
  }

  result.digests.reserve(n);
  for (ObjectId id = 0; id < n; ++id) {
    result.digests.push_back(ctx.state_digest(id));
  }
  result.wall_time_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  return result;
}

SnapshotResult snapshot(const Model& model, VirtualTime suspend_at,
                        const std::string& path, QueueKind queue) {
  OTW_REQUIRE_MSG(!model.objects.empty(), "model has no objects");
  const auto n = static_cast<ObjectId>(model.objects.size());
  std::vector<std::unique_ptr<SimulationObject>> objects;
  objects.reserve(n);
  SequentialContext ctx(n, queue);
  for (ObjectId id = 0; id < n; ++id) {
    OTW_REQUIRE(model.objects[id].factory != nullptr);
    objects.push_back(model.objects[id].factory());
    ctx.set_state(id, objects.back()->initial_state());
  }
  for (ObjectId id = 0; id < n; ++id) {
    ctx.begin(id, VirtualTime::zero(), EventKey::before_all());
    objects[id]->initialize(ctx);
  }

  SnapshotResult out;
  std::vector<std::uint64_t> per_object(n, 0);
  VirtualTime final_time = VirtualTime::zero();
  while (!ctx.empty()) {
    const Event event = ctx.lowest();
    if (event.recv_time > suspend_at) {
      break;
    }
    ctx.pop();
    ctx.begin(event.receiver, event.recv_time, event.key());
    objects[event.receiver]->process_event(ctx, event);
    ++out.events_processed;
    ++per_object[event.receiver];
    final_time = event.recv_time;
  }

  // The cut falls between events: everything still queued is frozen
  // verbatim, no object is mid-event. Objects are NOT finalized.
  std::vector<std::uint8_t> blob;
  platform::WireWriter w(blob);
  w.u32(n);
  for (ObjectId id = 0; id < n; ++id) {
    const ObjectState& state = ctx.raw_state(id);
    const std::byte* raw = state.raw_bytes();
    OTW_REQUIRE_MSG(raw != nullptr,
                    "tw::snapshot requires flat object states "
                    "(ObjectState::raw_bytes, e.g. PodState)");
    w.u32(id);
    w.u32(static_cast<std::uint32_t>(8 + state.byte_size()));
    w.u64(per_object[id]);
    w.bytes(raw, state.byte_size());
  }
  w.u64(out.events_processed);
  w.u64(static_cast<std::uint64_t>(final_time.ticks()));
  std::vector<Event> pending;
  while (!ctx.empty()) {
    pending.push_back(ctx.lowest());
    ctx.pop();
  }
  w.u32(static_cast<std::uint32_t>(pending.size()));
  for (const Event& event : pending) {
    encode_event(w, event);
  }

  platform::SnapshotImage image;
  image.engine = platform::kSnapshotEngineSequential;
  image.epoch = 0;
  image.gvt_ticks = static_cast<std::uint64_t>(final_time.ticks());
  image.num_lps = n;
  image.shards.resize(1);
  image.shards[0].shard = 0;
  image.shards[0].blob = std::move(blob);
  out.bytes = platform::encode_snapshot_image(image).size();
  platform::write_snapshot_file(path, image);
  out.suspend_time = final_time;
  out.pending_events = pending.size();
  return out;
}

SequentialResult restore(const Model& model, const std::string& path,
                         VirtualTime end_time, QueueKind queue) {
  OTW_REQUIRE_MSG(!model.objects.empty(), "model has no objects");
  const auto start = std::chrono::steady_clock::now();
  const platform::SnapshotImage image = platform::read_snapshot_file(path);
  OTW_REQUIRE_MSG(image.engine == platform::kSnapshotEngineSequential,
                  "tw::restore needs a sequential snapshot (engine 0); this "
                  "container holds a distributed epoch");
  OTW_REQUIRE_MSG(image.shards.size() == 1,
                  "sequential snapshot must hold exactly one shard section");
  const auto n = static_cast<ObjectId>(model.objects.size());
  OTW_REQUIRE_MSG(image.num_lps == n,
                  "snapshot object count does not match the model");

  std::vector<std::unique_ptr<SimulationObject>> objects;
  objects.reserve(n);
  SequentialContext ctx(n, queue);
  for (ObjectId id = 0; id < n; ++id) {
    OTW_REQUIRE(model.objects[id].factory != nullptr);
    objects.push_back(model.objects[id].factory());
    ctx.set_state(id, objects.back()->initial_state());
  }

  SequentialResult result;
  result.events_per_object.assign(n, 0);
  const auto& blob = image.shards[0].blob;
  platform::WireReader r(blob.data(), blob.size());
  const std::uint32_t count = r.u32();
  OTW_REQUIRE_MSG(count == n, "snapshot blob object count mismatch");
  for (std::uint32_t i = 0; i < count; ++i) {
    const ObjectId id = r.u32();
    const std::uint32_t len = r.u32();
    OTW_REQUIRE_MSG(id < n && len >= 8, "malformed snapshot object section");
    result.events_per_object[id] = r.u64();
    ObjectState& state = ctx.raw_state(id);
    std::byte* raw = state.mutable_raw_bytes();
    OTW_REQUIRE_MSG(raw != nullptr && state.byte_size() == len - 8,
                    "snapshot state does not fit the model's object state");
    r.bytes(raw, len - 8);
  }
  result.events_processed = r.u64();
  result.final_time = VirtualTime{static_cast<VirtualTime::rep>(r.u64())};
  const std::uint32_t pending = r.u32();
  for (std::uint32_t i = 0; i < pending; ++i) {
    ctx.insert_pending(decode_event(r));
  }
  OTW_REQUIRE_MSG(r.done(), "snapshot blob has trailing bytes");

  // initialize() is not replayed — its effects are inside the snapshot.
  while (!ctx.empty()) {
    const Event event = ctx.lowest();
    if (event.recv_time > end_time) {
      break;
    }
    ctx.pop();
    ctx.begin(event.receiver, event.recv_time, event.key());
    objects[event.receiver]->process_event(ctx, event);
    ++result.events_processed;
    ++result.events_per_object[event.receiver];
    result.final_time = event.recv_time;
  }
  for (ObjectId id = 0; id < n; ++id) {
    ctx.begin(id, result.final_time, EventKey::before_all());
    objects[id]->finalize(ctx);
  }
  result.digests.reserve(n);
  for (ObjectId id = 0; id < n; ++id) {
    result.digests.push_back(ctx.state_digest(id));
  }
  result.wall_time_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  return result;
}

}  // namespace otw::tw
