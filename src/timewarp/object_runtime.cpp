#include "otw/tw/object_runtime.hpp"

#include <algorithm>

#include "otw/platform/wire.hpp"
#include "otw/tw/wire.hpp"
#include "wire_codec_internal.hpp"

namespace otw::tw {

ObjectRuntime::ObjectRuntime(ObjectId id, std::unique_ptr<SimulationObject> object,
                             LpServices& lp, const ObjectRuntimeConfig& config)
    : id_(id),
      object_(std::move(object)),
      lp_(lp),
      rec_(lp.recorder()),
      config_(config),
      input_(lp.event_pool(), lp.queue_kind()),
      states_(make_checkpoint_store(config.state_saving,
                                    config.full_snapshot_interval, &arena_)),
      ckpt_(config.checkpoint_control),
      cancel_(config.cancellation) {
  OTW_REQUIRE(object_ != nullptr);
  OTW_REQUIRE(config.checkpoint_interval >= 1);
}

void ObjectRuntime::initialize() {
  current_state_ = object_->initial_state();
  OTW_REQUIRE(current_state_ != nullptr);
  lvt_ = VirtualTime::zero();
  current_pos_ = Position::before_all();
  sends_this_event_ = 0;
  // Initial sends are recorded with cause == before_all(), which no rollback
  // target can ever invalidate.
  processing_ = true;
  object_->initialize(*this);
  processing_ = false;
  save_state(Position::before_all());
  events_since_save_ = 0;
}

bool ObjectRuntime::process_next() {
  const Event* next = input_.peek_next();
  if (next == nullptr || next->recv_time > lp_.end_time()) {
    return false;
  }
  const Position pos = next->position();
  flush_resolved_before(pos);
  execute(*next);
  input_.advance();
  maybe_checkpoint(pos);
  if (config_.dynamic_checkpointing && ckpt_.on_event_processed()) {
    lp_.wall_charge(lp_.costs().control_invocation_ns);
    ++stats_.checkpoint_control_ticks;
    rec_.phase_add(obs::Phase::Control, lp_.costs().control_invocation_ns);
    if (rec_.tracing()) {
      rec_.record(obs::TraceKind::CheckpointDecision, lp_.wall_now_ns(), id_,
                  lvt_.ticks(),
                  obs::pack_checkpoint_decision(ckpt_.interval(),
                                                ckpt_.last_cost_index()));
    }
  }
  if (config_.telemetry.enabled &&
      ++events_since_sample_ >= config_.telemetry.sample_period_events) {
    events_since_sample_ = 0;
    trace_.push_back(ObjectSample{stats_.events_processed, lvt_,
                                  checkpoint_interval(), cancel_.hit_ratio(),
                                  cancel_.mode(), stats_.rollbacks,
                                  memory_footprint().total()});
    if (rec_.tracing()) {
      rec_.record(obs::TraceKind::TelemetrySample, lp_.wall_now_ns(), id_,
                  lvt_.ticks(),
                  obs::pack_object_sample(
                      cancel_.mode() == core::CancellationMode::Lazy,
                      cancel_.hit_ratio()));
    }
  }
  return true;
}

void ObjectRuntime::execute(const Event& event) {
  processing_ = true;
  current_pos_ = event.position();
  sends_this_event_ = 0;
  lvt_ = event.recv_time;
  // Coast-forward re-execution is accounted to the CoastForward phase by the
  // enclosing scope; only first-class executions open an EventProcessing one.
  const bool observe = !suppress_sends_;
  if (observe) {
    if (rec_.profiling()) {
      rec_.phase_begin(obs::Phase::EventProcessing, lp_.wall_now_ns());
    }
    if (rec_.tracing()) {
      rec_.record(obs::TraceKind::EventProcessed, lp_.wall_now_ns(), id_,
                  event.recv_time.ticks());
    }
  }
  lp_.wall_charge(lp_.costs().event_overhead_ns);
  object_->process_event(*this, event);
  processing_ = false;
  ++stats_.events_processed;
  if (observe && rec_.profiling()) {
    rec_.phase_end(lp_.wall_now_ns());
  }
}

void ObjectRuntime::send(ObjectId dest, VirtualTime::rep delay, const Payload& payload) {
  OTW_REQUIRE_MSG(processing_, "send() is only valid while processing an event");
  OTW_REQUIRE_MSG(delay >= 1,
                  "zero-delay messages would make the committed order depend on "
                  "the execution interleaving");
  Event event;
  event.sender = id_;
  event.receiver = dest;
  event.send_time = lvt_;
  event.recv_time = lvt_ + delay;
  event.seq = derive_send_seq(current_pos_.key.recv_time, current_pos_.key.sender,
                              current_pos_.key.seq, id_, sends_this_event_++);
  event.instance = instance_seq_++;
  event.payload = payload;
  emit(std::move(event));
}

void ObjectRuntime::emit(Event&& event) {
  if (suppress_sends_) {
    // Coast-forward: this exact message was already sent and is still
    // correct; re-execution only rebuilds the state.
    return;
  }

  // Lazy-cancellation regeneration check: identical to a prematurely sent
  // message (same receiver, receive time, seq and payload)? Then that
  // message stands; nothing is transmitted.
  if (!lazy_pending_.empty()) {
    lp_.wall_charge(lp_.costs().comparison_cost_ns);
    const auto match = std::find_if(
        lazy_pending_.begin(), lazy_pending_.end(), [&](const OutputEntry& entry) {
          return entry.event.seq == event.seq && entry.event.same_content(event);
        });
    if (match != lazy_pending_.end()) {
      // Keep the ORIGINAL instance: a future rollback must cancel the
      // physical message that is actually at the receiver.
      output_.record(current_pos_, match->event);
      lazy_pending_.erase(match);
      ++stats_.lazy_hits;
      note_comparison(true);
      return;
    }
  }

  // Passive comparison under aggressive cancellation: the original was
  // already cancelled, so the new message is sent regardless; the outcome
  // only feeds the Hit Ratio. Skipped entirely once the controller froze
  // (that skip is the PS/PA variants' performance edge).
  if (!passive_.empty() && cancel_.monitoring()) {
    lp_.wall_charge(lp_.costs().comparison_cost_ns);
    const auto match = std::find_if(
        passive_.begin(), passive_.end(), [&](const OutputEntry& entry) {
          return entry.event.seq == event.seq &&
                 entry.event.receiver == event.receiver &&
                 entry.event.recv_time == event.recv_time;
        });
    if (match != passive_.end()) {
      const bool hit = match->event.payload == event.payload;
      hit ? ++stats_.passive_hits : ++stats_.passive_misses;
      note_comparison(hit);
      passive_.erase(match);
    }
  }

  output_.record(current_pos_, event);
  ++stats_.messages_sent;
  lp_.route(std::move(event));
}

void ObjectRuntime::send_anti(const Event& original) {
  ++stats_.anti_messages_sent;
  if (rec_.tracing()) {
    rec_.record(obs::TraceKind::AntiSent, lp_.wall_now_ns(), id_,
                original.recv_time.ticks(),
                obs::pack_anti_sent(original.receiver,
                                    original.send_time.ticks()));
  }
  lp_.route(original.make_anti());
}

void ObjectRuntime::note_comparison(bool hit) {
  const core::CancellationMode before = cancel_.mode();
  cancel_.record_comparison(hit);
  const core::CancellationMode after = cancel_.mode();
  if (after != before && rec_.tracing()) {
    rec_.record(obs::TraceKind::CancellationSwitch, lp_.wall_now_ns(), id_,
                lvt_.ticks(),
                obs::pack_cancellation_switch(
                    after == core::CancellationMode::Lazy,
                    cancel_.hit_ratio()));
  }
}

void ObjectRuntime::receive(const Event& event) {
  OTW_REQUIRE_MSG(event.receiver == id_, "event routed to the wrong object");
  if (event.negative) {
    ++stats_.anti_messages_received;
    if (rec_.tracing()) {
      rec_.record(obs::TraceKind::AntiReceived, lp_.wall_now_ns(), id_,
                  event.recv_time.ticks());
    }
    const auto status = input_.find_match(event);
    if (status == InputQueue::MatchStatus::NotFound) {
      // The anti overtook its positive message. Per-pair FIFO makes that
      // impossible on a static placement, but after a migration rebind the
      // positive can still be on the old owner's forwarding path while the
      // anti takes the direct link. Park the anti; the positive is in
      // flight, so Mattern's counts hold GVT at or below it until the pair
      // annihilates in the positive branch below.
      early_antis_.push_back(event);
      return;
    }
    if (status == InputQueue::MatchStatus::Processed) {
      rollback(event.position(), event, /*cancel_at_target=*/true);
      // The annihilated event itself was processed and is now undone (the
      // rollback only counted the events after it).
      ++stats_.events_rolled_back;
    }
    input_.erase_match(event);
    // Comparison entries caused by the annihilated event can never be
    // regenerated (it is gone): cancel the physical messages, but record no
    // hit/miss — this is cascaded cancellation, not failed speculation.
    purge_entries_caused_by(event.position());
  } else {
    if (!early_antis_.empty()) {
      const auto match = std::find_if(
          early_antis_.begin(), early_antis_.end(),
          [&](const Event& anti) { return anti.matches_instance(event); });
      if (match != early_antis_.end()) {
        // The parked anti-message meets its positive: annihilate in flight.
        early_antis_.erase(match);
        return;
      }
    }
    if (input_.insert(event)) {
      ++stats_.stragglers;
      rollback(event.position(), event);
    }
  }
}

void ObjectRuntime::rollback(const Position& target, const Event& cause,
                             bool cancel_at_target) {
  OTW_REQUIRE_MSG(target.recv_time() >= gvt_bound_,
                  "rollback below GVT: the GVT algorithm is unsound");
  ++stats_.rollbacks;
  const std::size_t undone = input_.processed_after(target);
  stats_.events_rolled_back += undone;
  stats_.rollback_length.add(undone);
  lp_.note_rollback(undone);
  if (rec_.profiling()) {
    rec_.phase_begin(obs::Phase::Rollback, lp_.wall_now_ns());
  }
  if (rec_.tracing()) {
    rec_.record(obs::TraceKind::RollbackBegin, lp_.wall_now_ns(), id_,
                target.recv_time().ticks(),
                obs::pack_rollback_cause(cause.sender, cause.negative,
                                         cause.send_time.ticks()));
  }

  // Restore the latest checkpoint before the target; the abandoned working
  // state is recycled into the arena.
  RestorePoint keeper = states_->restore_before(target);
  arena_.release(std::move(current_state_));
  current_state_ = std::move(keeper.state);
  lvt_ = keeper.pos.recv_time();
  input_.rewind_to_after(keeper.pos);
  events_since_save_ = 0;
  ++stats_.state_restores;
  lp_.wall_charge(lp_.costs().rollback_fixed_ns + lp_.costs().state_restore_ns);
  if (rec_.tracing()) {
    rec_.record(obs::TraceKind::StateRestore, lp_.wall_now_ns(), id_,
                keeper.pos.recv_time().ticks());
  }

  // Outputs caused by re-executed events are no longer trustworthy.
  std::vector<OutputEntry> invalid = output_.extract_after(target, cancel_at_target);
  if (cancel_at_target) {
    // Outputs of the annihilated event itself: the event will never
    // re-execute, so there is nothing to compare against — cancel them
    // unconditionally and record no hit/miss (they would otherwise poison
    // the Hit Ratio with guaranteed misses).
    auto split = invalid.begin();
    while (split != invalid.end() && split->cause == target) {
      send_anti(split->event);
      ++split;
    }
    invalid.erase(invalid.begin(), split);
  }
  cancel_invalid_outputs(std::move(invalid));

  coast_forward(target);
  if (rec_.tracing()) {
    rec_.record(obs::TraceKind::RollbackEnd, lp_.wall_now_ns(), id_,
                target.recv_time().ticks(), undone);
  }
  if (rec_.profiling()) {
    rec_.phase_end(lp_.wall_now_ns());
  }
}

void ObjectRuntime::coast_forward(const Position& target) {
  const std::uint64_t start_ns = lp_.wall_now_ns();
  const std::uint64_t events_before = stats_.coast_forward_events;
  if (rec_.profiling()) {
    rec_.phase_begin(obs::Phase::CoastForward, start_ns);
  }
  suppress_sends_ = true;
  while (const Event* next = input_.peek_next()) {
    if (!(next->position() < target)) {
      break;
    }
    execute(*next);
    input_.advance();
    ++stats_.coast_forward_events;
  }
  suppress_sends_ = false;
  const std::uint64_t end_ns = lp_.wall_now_ns();
  if (rec_.profiling()) {
    rec_.phase_end(end_ns);
  }
  if (rec_.tracing()) {
    rec_.record(obs::TraceKind::CoastForward, start_ns, id_,
                target.recv_time().ticks(),
                stats_.coast_forward_events - events_before, end_ns - start_ns);
  }
  if (config_.dynamic_checkpointing) {
    ckpt_.record_coast_forward(end_ns - start_ns);
  }
}

void ObjectRuntime::cancel_invalid_outputs(std::vector<OutputEntry>&& invalid) {
  if (invalid.empty()) {
    return;
  }
  if (cancel_.mode() == core::CancellationMode::Lazy) {
    // Park them: forward re-execution decides hit (keep) or miss (cancel).
    // Entries from an earlier, shallower rollback may already be pending;
    // keep the list sorted by cause.
    lazy_pending_.insert(lazy_pending_.end(),
                         std::make_move_iterator(invalid.begin()),
                         std::make_move_iterator(invalid.end()));
    std::sort(lazy_pending_.begin(), lazy_pending_.end(),
              [](const OutputEntry& a, const OutputEntry& b) {
                return a.cause < b.cause ||
                       (a.cause == b.cause && a.event.instance < b.event.instance);
              });
  } else {
    for (OutputEntry& entry : invalid) {
      send_anti(entry.event);
      if (cancel_.monitoring() && passive_.size() < config_.passive_compare_cap) {
        passive_.push_back(std::move(entry));
      }
    }
  }
}

void ObjectRuntime::purge_entries_caused_by(const Position& cause) {
  std::erase_if(lazy_pending_, [&](const OutputEntry& entry) {
    if (entry.cause != cause) {
      return false;
    }
    send_anti(entry.event);  // the premature message is physically out there
    return true;
  });
  std::erase_if(passive_, [&](const OutputEntry& entry) {
    return entry.cause == cause;  // original was already cancelled
  });
}

void ObjectRuntime::flush_resolved_before(const Position& pos) {
  // Lazy entries whose generating position has been passed without an
  // identical regeneration: the premature message was wrong after all.
  while (!lazy_pending_.empty() && lazy_pending_.front().cause < pos) {
    send_anti(lazy_pending_.front().event);
    ++stats_.lazy_misses;
    note_comparison(false);
    lazy_pending_.erase(lazy_pending_.begin());
  }
  // Passive entries past their position: recorded as misses (no anti; the
  // original was already cancelled aggressively).
  while (!passive_.empty() && passive_.front().cause < pos) {
    ++stats_.passive_misses;
    note_comparison(false);
    passive_.erase(passive_.begin());
  }
}

void ObjectRuntime::idle_flush() {
  flush_resolved_before(input_.peek_next() == nullptr
                            ? Position::after_all()
                            : input_.peek_next()->position());
}

VirtualTime ObjectRuntime::gvt_contribution(VirtualTime end_time) const noexcept {
  VirtualTime lowest = next_event_time();
  if (lowest > end_time) {
    // Events beyond the simulation horizon will never run.
    lowest = VirtualTime::infinity();
  }
  // Lazy-pending entries are future anti-messages the GVT algorithm cannot
  // see in any queue: a miss will send an anti-message timestamped at the
  // entry's receive time. Without this term, GVT can overtake a doomed
  // premature message, the receiver commits it, and the late anti-message
  // finds nothing to annihilate.
  for (const OutputEntry& entry : lazy_pending_) {
    lowest = min(lowest, entry.event.recv_time);
  }
  return lowest;
}

void ObjectRuntime::fossil_collect(VirtualTime gvt) {
  gvt_bound_ = gvt;
  const Position keeper = states_->fossil_collect(gvt);
  const std::size_t committed = input_.fossil_collect_before(keeper);
  stats_.events_committed += committed;
  output_.fossil_collect_before(gvt);
  if (committed > 0 && rec_.tracing()) {
    rec_.record(obs::TraceKind::EventsCommitted, lp_.wall_now_ns(), id_,
                gvt.ticks(), committed);
  }
}

void ObjectRuntime::finalize() {
  OTW_ASSERT(lazy_pending_.empty());
  OTW_ASSERT(early_antis_.empty());
  stats_.events_committed += input_.processed_count();
  processing_ = true;  // allow finalize() to read state via the context
  object_->finalize(*this);
  processing_ = false;
}

void ObjectRuntime::migration_freeze(VirtualTime gvt) {
  OTW_ASSERT(!processing_);
  // The minimal position with receive time == gvt: it orders before every
  // real event at/after the cut, and fossil collection keeps a checkpoint
  // strictly before it (the kept checkpoint's receive time is < gvt).
  const Position cut{EventKey{gvt, 0, 0}, 0};
  if (input_.processed_after(cut) > 0) {
    Event cause;  // synthetic straggler standing in for the freeze order
    cause.sender = id_;
    cause.receiver = id_;
    cause.send_time = gvt;
    cause.recv_time = gvt;
    rollback(cut, cause);
  }
  // Every surviving comparison entry is a forced miss: the source shard will
  // not re-execute anything, so premature messages must be cancelled now.
  // Their receive times are >= gvt (the entries' causes survived fossil
  // collection at gvt only if still cancellable), so the receivers can still
  // annihilate them.
  flush_resolved_before(Position::after_all());
  OTW_ASSERT(lazy_pending_.empty());
  OTW_ASSERT(passive_.empty());
}

void ObjectRuntime::encode_frozen(platform::WireWriter& w) {
  OTW_ASSERT(lazy_pending_.empty() && passive_.empty());
  w.u32(id_);
  w.u64(lvt_.ticks());
  w.u64(current_pos_.key.recv_time.ticks());
  w.u32(current_pos_.key.sender);
  w.u64(current_pos_.key.seq);
  w.u64(current_pos_.instance);
  w.u64(instance_seq_);
  const std::byte* raw = current_state_->raw_bytes();
  OTW_REQUIRE_MSG(raw != nullptr,
                  "LP migration requires a flat object state (raw_bytes)");
  const std::size_t state_len = current_state_->byte_size();
  w.u32(static_cast<std::uint32_t>(state_len));
  w.bytes(raw, state_len);
  // The processed prefix is final on the receiving side: no rollback can
  // reach below the cut, so the shipped stats count it as committed. Only
  // the serialized copy is touched — a snapshot must leave a continuing
  // runtime byte-identical to one that never snapshotted.
  ObjectStats shipped = snapshot_stats();
  shipped.events_committed += input_.processed_count();
  detail::encode_object_stats(w, shipped);
  detail::write_pod_vector(w, trace_);
  // Remaining output entries have causes below the cut; they can never be
  // cancelled (rollback below GVT is impossible), so the queue is not
  // serialized. Unprocessed events and parked early antis travel.
  const std::vector<Event> all = input_.snapshot();
  const std::size_t processed = input_.processed_count();
  w.u32(static_cast<std::uint32_t>((all.size() - processed) +
                                   early_antis_.size()));
  for (std::size_t i = processed; i < all.size(); ++i) {
    encode_event(w, all[i]);
  }
  for (const Event& anti : early_antis_) {
    encode_event(w, anti);
  }
}

void ObjectRuntime::migrate_out(platform::WireWriter& w, VirtualTime gvt) {
  static_cast<void>(gvt);
  encode_frozen(w);
  // Inert on this shard from here on: drop the history wholesale. The
  // committed prefix already travelled inside the shipped stats.
  input_.reset();
  output_ = OutputQueue{};
  early_antis_.clear();
  trace_.clear();
  stats_ = ObjectStats{};
}

void ObjectRuntime::migrate_in(platform::WireReader& r, VirtualTime gvt) {
  // The caller dispatched on the object id; the reader is positioned at lvt.
  lvt_ = VirtualTime{r.u64()};
  current_pos_.key.recv_time = VirtualTime{r.u64()};
  current_pos_.key.sender = r.u32();
  current_pos_.key.seq = r.u64();
  current_pos_.instance = r.u64();
  instance_seq_ = r.u64();
  const std::uint32_t state_len = r.u32();
  current_state_ = object_->initial_state();
  OTW_REQUIRE(current_state_ != nullptr);
  OTW_REQUIRE_MSG(current_state_->mutable_raw_bytes() != nullptr &&
                      current_state_->byte_size() == state_len,
                  "LP migration requires a flat object state of fixed size");
  r.bytes(current_state_->mutable_raw_bytes(), state_len);
  stats_ = detail::decode_object_stats(r);
  trace_ = detail::read_pod_vector<ObjectSample>(r);

  // Fresh history structures; the shipped totals stay in stats_ and the
  // per-object controllers restart their adaptation from scratch.
  input_.reset();
  output_ = OutputQueue{};
  states_ = make_checkpoint_store(config_.state_saving,
                                  config_.full_snapshot_interval, &arena_);
  lazy_pending_.clear();
  passive_.clear();
  early_antis_.clear();
  ckpt_ = core::CheckpointIntervalController(config_.checkpoint_control);
  cancel_ = core::CancellationController(config_.cancellation);
  events_since_save_ = 0;
  events_since_sample_ = 0;
  sends_this_event_ = 0;
  processing_ = false;
  suppress_sends_ = false;
  gvt_bound_ = gvt;

  const std::uint32_t pending = r.u32();
  for (std::uint32_t i = 0; i < pending; ++i) {
    Event event = decode_event(r);
    if (event.negative) {
      // A parked early anti travels with the LP; its positive is still in
      // flight and will be forwarded here by the source's stale-route path.
      early_antis_.push_back(event);
    } else {
      const bool straggler = input_.insert(event);
      OTW_ASSERT(!straggler);  // the queue is empty: nothing processed yet
      static_cast<void>(straggler);
    }
  }

  // One checkpoint of the shipped state at the minimal position: any legal
  // rollback target is >= gvt, below every shipped event, and restore_before
  // always finds this entry. Coast-forward then re-executes only events this
  // shard processed itself — the committed prefix never shipped.
  save_state(Position::before_all());
}

void ObjectRuntime::maybe_checkpoint(const Position& pos) {
  if (++events_since_save_ >= checkpoint_interval()) {
    save_state(pos);
    events_since_save_ = 0;
  }
}

void ObjectRuntime::save_state(const Position& pos) {
  if (rec_.profiling()) {
    rec_.phase_begin(obs::Phase::StateSaving, lp_.wall_now_ns());
  }
  const SaveReceipt receipt = states_->save(pos, *current_state_);
  const std::uint64_t cost =
      lp_.costs().state_save_base_ns +
      lp_.costs().state_diff_scan_per_byte_ns * receipt.scanned_bytes +
      lp_.costs().state_save_per_byte_ns * receipt.stored_bytes;
  lp_.wall_charge(cost);
  ++stats_.states_saved;
  if (rec_.tracing()) {
    rec_.record(obs::TraceKind::StateSave, lp_.wall_now_ns(), id_,
                pos.recv_time().ticks(), receipt.stored_bytes);
  }
  if (rec_.profiling()) {
    rec_.phase_end(lp_.wall_now_ns());
  }
  if (config_.dynamic_checkpointing) {
    ckpt_.record_state_save(cost);
  }
}

MemoryStats ObjectRuntime::memory_footprint() const noexcept {
  MemoryStats m;
  m.input_queue_bytes = input_.size() * sizeof(Event);
  m.output_queue_bytes = output_.size() * sizeof(OutputEntry);
  m.state_bytes = states_->stored_bytes();
  m.pending_bytes =
      (lazy_pending_.size() + passive_.size()) * sizeof(OutputEntry) +
      early_antis_.size() * sizeof(Event);
  m.live_events = input_.size();
  m.checkpoints = states_->entries();
  return m;
}

ObjectStats ObjectRuntime::snapshot_stats() const {
  ObjectStats s = stats_;
  s.final_checkpoint_interval = checkpoint_interval();
  s.final_mode = cancel_.mode();
  s.final_hit_ratio = cancel_.hit_ratio();
  // Additive: after a migration stats_ carries the previous incarnation's
  // switch count and cancel_ only the switches since arrival.
  s.cancellation_switches += cancel_.switches();
  return s;
}

}  // namespace otw::tw
