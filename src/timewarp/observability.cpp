#include "otw/tw/observability.hpp"

#include <string>

namespace otw::tw {

namespace {

void add_object_totals(obs::MetricsSnapshot& snapshot, const ObjectStats& t) {
  using obs::Metric;
  snapshot.add("otw_events_processed_total", static_cast<double>(t.events_processed),
               Metric::Type::Counter);
  snapshot.add("otw_events_committed_total", static_cast<double>(t.events_committed),
               Metric::Type::Counter);
  snapshot.add("otw_events_rolled_back_total",
               static_cast<double>(t.events_rolled_back), Metric::Type::Counter);
  snapshot.add("otw_rollbacks_total", static_cast<double>(t.rollbacks),
               Metric::Type::Counter);
  snapshot.add("otw_coast_forward_events_total",
               static_cast<double>(t.coast_forward_events), Metric::Type::Counter);
  snapshot.add("otw_states_saved_total", static_cast<double>(t.states_saved),
               Metric::Type::Counter);
  snapshot.add("otw_state_restores_total", static_cast<double>(t.state_restores),
               Metric::Type::Counter);
  snapshot.add("otw_messages_sent_total", static_cast<double>(t.messages_sent),
               Metric::Type::Counter);
  snapshot.add("otw_anti_messages_sent_total",
               static_cast<double>(t.anti_messages_sent), Metric::Type::Counter);
  snapshot.add("otw_anti_messages_received_total",
               static_cast<double>(t.anti_messages_received), Metric::Type::Counter);
  snapshot.add("otw_stragglers_total", static_cast<double>(t.stragglers),
               Metric::Type::Counter);
  snapshot.add("otw_cancellation_switches_total",
               static_cast<double>(t.cancellation_switches), Metric::Type::Counter);
}

}  // namespace

obs::MetricsSnapshot build_metrics(const RunResult& result) {
  using obs::Metric;
  obs::MetricsSnapshot snapshot;

  snapshot.add("otw_execution_time_ns", static_cast<double>(result.execution_time_ns),
               Metric::Type::Gauge);
  snapshot.add("otw_wall_time_ns", static_cast<double>(result.wall_time_ns),
               Metric::Type::Gauge);
  snapshot.add("otw_final_gvt_ticks",
               result.stats.final_gvt.is_infinity()
                   ? static_cast<double>(UINT64_MAX)
                   : static_cast<double>(result.stats.final_gvt.ticks()),
               Metric::Type::Gauge);
  snapshot.add("otw_physical_messages_total",
               static_cast<double>(result.physical_messages), Metric::Type::Counter);
  snapshot.add("otw_wire_bytes_total", static_cast<double>(result.wire_bytes),
               Metric::Type::Counter);
  snapshot.add("otw_committed_events_per_sec", result.committed_events_per_sec(),
               Metric::Type::Gauge);

  add_object_totals(snapshot, result.stats.object_totals());

  // Memory governance: live footprint at collection, sum of per-LP peaks
  // (upper bound on the true global peak), and pressure-controller activity.
  {
    const MemoryStats mem = result.stats.memory_totals();
    std::uint64_t budget = 0;
    std::uint64_t enters = 0;
    std::uint64_t held = 0;
    for (const LpStats& s : result.stats.lps) {
      budget += s.memory_budget_bytes;
      enters += s.pressure_enters;
      held += s.sends_held;
    }
    snapshot.add("otw_memory_live_bytes", static_cast<double>(mem.total()),
                 Metric::Type::Gauge);
    snapshot.add("otw_memory_peak_bytes",
                 static_cast<double>(result.stats.memory_peak_bytes()),
                 Metric::Type::Gauge);
    snapshot.add("otw_memory_budget_bytes", static_cast<double>(budget),
                 Metric::Type::Gauge);
    snapshot.add("otw_memory_pool_slab_bytes",
                 static_cast<double>(mem.pool_slab_bytes), Metric::Type::Gauge);
    snapshot.add("otw_memory_pressure_enters_total", static_cast<double>(enters),
                 Metric::Type::Counter);
    snapshot.add("otw_memory_sends_held_total", static_cast<double>(held),
                 Metric::Type::Counter);
  }

  for (std::size_t lp = 0; lp < result.stats.lps.size(); ++lp) {
    const LpStats& s = result.stats.lps[lp];
    const std::pair<std::string, std::string> label{"lp", std::to_string(lp)};
    auto add = [&](const char* name, double value, Metric::Type type) {
      Metric metric;
      metric.name = name;
      metric.labels.push_back(label);
      metric.value = value;
      metric.type = type;
      snapshot.metrics.push_back(std::move(metric));
    };
    add("otw_lp_gvt_epochs_total", static_cast<double>(s.gvt_epochs),
        Metric::Type::Counter);
    add("otw_lp_gvt_rounds_total", static_cast<double>(s.gvt_rounds),
        Metric::Type::Counter);
    add("otw_lp_events_sent_remote_total", static_cast<double>(s.events_sent_remote),
        Metric::Type::Counter);
    add("otw_lp_events_sent_local_total", static_cast<double>(s.events_sent_local),
        Metric::Type::Counter);
    add("otw_lp_aggregates_sent_total", static_cast<double>(s.aggregates_sent),
        Metric::Type::Counter);
    add("otw_lp_messages_aggregated_total",
        static_cast<double>(s.messages_aggregated), Metric::Type::Counter);
    add("otw_lp_steps_total", static_cast<double>(s.steps), Metric::Type::Counter);
    add("otw_lp_idle_polls_total", static_cast<double>(s.idle_polls),
        Metric::Type::Counter);
    add("otw_lp_memory_live_bytes", static_cast<double>(s.memory.total()),
        Metric::Type::Gauge);
    add("otw_lp_memory_peak_bytes", static_cast<double>(s.memory_peak_bytes),
        Metric::Type::Gauge);
  }

  // Work-stealing scheduler counters (threaded engine runs only).
  if (result.scheduler.num_workers > 0) {
    snapshot.add("otw_scheduler_workers",
                 static_cast<double>(result.scheduler.num_workers),
                 Metric::Type::Gauge);
    snapshot.add("otw_scheduler_mailbox_overflows_total",
                 static_cast<double>(result.scheduler.mailbox_overflows),
                 Metric::Type::Counter);
    snapshot.add("otw_scheduler_timers_scheduled_total",
                 static_cast<double>(result.scheduler.timers_scheduled),
                 Metric::Type::Counter);
    for (std::size_t w = 0; w < result.scheduler.workers.size(); ++w) {
      const platform::WorkerStats& s = result.scheduler.workers[w];
      const std::pair<std::string, std::string> label{"worker",
                                                      std::to_string(w)};
      auto add = [&](const char* name, double value) {
        Metric metric;
        metric.name = name;
        metric.labels.push_back(label);
        metric.value = value;
        metric.type = Metric::Type::Counter;
        snapshot.metrics.push_back(std::move(metric));
      };
      add("otw_worker_steps_total", static_cast<double>(s.steps));
      add("otw_worker_steals_total", static_cast<double>(s.steals));
      add("otw_worker_steal_fails_total", static_cast<double>(s.steal_fails));
      add("otw_worker_parks_total", static_cast<double>(s.parks));
      add("otw_worker_wakes_total", static_cast<double>(s.wakes));
      add("otw_worker_timer_fires_total", static_cast<double>(s.timer_fires));
      add("otw_worker_yields_total", static_cast<double>(s.yields));
    }
  }

  // Socket-transport counters (distributed engine runs only).
  if (result.dist.num_shards > 0) {
    const platform::DistStats& d = result.dist;
    snapshot.add("otw_dist_shards", static_cast<double>(d.num_shards),
                 Metric::Type::Gauge);
    snapshot.add("otw_dist_frames_sent_total",
                 static_cast<double>(d.frames_sent), Metric::Type::Counter);
    snapshot.add("otw_dist_frames_received_total",
                 static_cast<double>(d.frames_received), Metric::Type::Counter);
    snapshot.add("otw_dist_frames_relayed_total",
                 static_cast<double>(d.frames_relayed), Metric::Type::Counter);
    snapshot.add("otw_dist_bytes_sent_total",
                 static_cast<double>(d.bytes_sent), Metric::Type::Counter);
    snapshot.add("otw_dist_bytes_received_total",
                 static_cast<double>(d.bytes_received), Metric::Type::Counter);
    snapshot.add("otw_dist_gvt_token_frames_total",
                 static_cast<double>(d.gvt_token_frames), Metric::Type::Counter);
    snapshot.add("otw_dist_serialize_seconds_total",
                 static_cast<double>(d.serialize_ns) / 1e9,
                 Metric::Type::Counter);
    snapshot.add("otw_dist_deserialize_seconds_total",
                 static_cast<double>(d.deserialize_ns) / 1e9,
                 Metric::Type::Counter);
  }

  obs::add_phase_metrics(snapshot, result.lp_phases);
  return snapshot;
}

void write_chrome_trace(std::ostream& os, const RunResult& result) {
  obs::write_chrome_trace(os, result.trace);
}

void write_metrics_jsonl(std::ostream& os, const RunResult& result) {
  obs::write_metrics_jsonl(os, build_metrics(result));
}

void write_prometheus(std::ostream& os, const RunResult& result) {
  obs::write_prometheus(os, build_metrics(result));
}

}  // namespace otw::tw
