#include "otw/tw/telemetry.hpp"

#include <ostream>

#include "otw/core/pressure_controller.hpp"
#include "otw/tw/stats.hpp"

namespace otw::tw {

void Telemetry::write_csv(std::ostream& os) const {
  os << "kind,id,events,time,chi,hit_ratio,mode,rollbacks,window_us,optimism,"
        "mem_bytes,pressure\n";
  for (const ObjectTrace& trace : objects) {
    for (const ObjectSample& s : trace.samples) {
      os << "object," << trace.object << ',' << s.events_processed << ','
         << s.lvt << ',' << s.checkpoint_interval << ',' << s.hit_ratio << ','
         << core::to_string(s.mode) << ',' << s.rollbacks << ",,,"
         << s.memory_bytes << ",\n";
    }
  }
  for (const LpTrace& trace : lps) {
    for (const LpSample& s : trace.samples) {
      os << "lp," << trace.lp << ',' << s.events_processed << ',' << s.gvt
         << ",,,,," << s.aggregation_window_us << ',' << s.optimism_window
         << ',' << s.memory_bytes << ','
         << core::to_string(static_cast<core::PressureState>(s.pressure))
         << '\n';
    }
  }
}

}  // namespace otw::tw
