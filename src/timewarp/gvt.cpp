#include "otw/tw/gvt.hpp"

namespace otw::tw {

GvtAgent::GvtAgent(LpId self, LpId num_lps, std::uint64_t period_events)
    : self_(self), num_lps_(num_lps), period_events_(period_events) {
  OTW_REQUIRE(num_lps >= 1);
  OTW_REQUIRE(self < num_lps);
  OTW_REQUIRE(period_events >= 1);
}

std::uint8_t GvtAgent::on_send(VirtualTime recv_time) noexcept {
  ++sent_[color_];
  min_red_send_ = min(min_red_send_, recv_time);
  return color_;
}

void GvtAgent::flip_to_red(std::uint8_t white) noexcept {
  OTW_ASSERT(color_ == white);
  color_ = static_cast<std::uint8_t>(1 - white);
  // The send/receive counters are cumulative across epochs: a red message
  // can reach an LP before that LP has flipped, and a per-flip reset would
  // lose its receive count and leave the next cut's balance permanently
  // positive. The previous cut on this color closed with a zero global
  // balance, so the cumulative balance of the new cut starts from zero
  // without any reset. Only the red send-time minimum restarts at the cut.
  min_red_send_ = VirtualTime::infinity();
}

GvtAgent::Outcome GvtAgent::start_epoch(VirtualTime local_min) {
  OTW_REQUIRE_MSG(self_ == 0, "only the initiator starts GVT epochs");
  OTW_REQUIRE(!epoch_active_);
  epoch_active_ = true;
  events_since_epoch_ = 0;

  const std::uint8_t white = color_;
  flip_to_red(white);

  if (num_lps_ == 1) {
    // No ring: no remote messages can exist, GVT is the local minimum.
    epoch_active_ = false;
    ++epochs_;
    return Outcome{std::nullopt, local_min};
  }

  GvtTokenMessage token;
  token.white_color = white;
  token.round = 1;
  token.count = white_balance(white);
  token.min_lvt = local_min;
  token.min_red_send = min_red_send_;
  ++rounds_;
  return Outcome{token, std::nullopt};
}

GvtAgent::Outcome GvtAgent::on_token(const GvtTokenMessage& token,
                                     VirtualTime local_min) {
  const std::uint8_t white = token.white_color;
  ++rounds_;

  if (self_ == 0) {
    // Token completed a round.
    OTW_REQUIRE(epoch_active_);
    if (token.count == 0) {
      epoch_active_ = false;
      ++epochs_;
      // Fold in the initiator's own contribution as of NOW: red messages it
      // sent after launching this round are in no other sample, and taking
      // the min with extra lower bounds can only make the estimate safer.
      const VirtualTime gvt =
          min(min(token.min_lvt, local_min),
              min(token.min_red_send, min_red_send_));
      return Outcome{std::nullopt, gvt};
    }
    // Some white messages are still in flight: go around again with fresh
    // count and min_lvt (min_red_send keeps accumulating since the flip).
    GvtTokenMessage next;
    next.white_color = white;
    next.round = token.round + 1;
    next.count = white_balance(white);
    next.min_lvt = local_min;
    next.min_red_send = min_red_send_;
    return Outcome{next, std::nullopt};
  }

  if (color_ == white) {
    flip_to_red(white);
  }
  GvtTokenMessage next = token;
  next.count += white_balance(white);
  next.min_lvt = min(next.min_lvt, local_min);
  next.min_red_send = min(next.min_red_send, min_red_send_);
  return Outcome{next, std::nullopt};
}

}  // namespace otw::tw
