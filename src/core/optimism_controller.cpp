#include "otw/core/optimism_controller.hpp"

#include <algorithm>

namespace otw::core {

OptimismWindowController::OptimismWindowController(
    const OptimismControlConfig& config)
    : config_(config), window_(config.initial_window) {
  OTW_REQUIRE(config.min_window >= 1);
  OTW_REQUIRE(config.min_window <= config.max_window);
  OTW_REQUIRE(config.initial_window >= config.min_window &&
              config.initial_window <= config.max_window);
  OTW_REQUIRE(config.target_rollback_fraction > 0.0 &&
              config.target_rollback_fraction < 1.0);
  OTW_REQUIRE(config.grow_factor > 1.0);
  OTW_REQUIRE(config.shrink_factor > 0.0 && config.shrink_factor < 1.0);
  OTW_REQUIRE(config.control_period_events >= 1);
}

bool OptimismWindowController::maybe_adapt() {
  if (processed_ - processed_at_last_tick_ < config_.control_period_events) {
    return false;
  }
  const double period_events =
      static_cast<double>(processed_ - processed_at_last_tick_);
  last_fraction_ = static_cast<double>(rolled_back_) / period_events;

  // Too much undone work: the LPs ran too far ahead — tighten. Otherwise
  // optimism is cheap here — widen and harvest more parallelism.
  const double factor = last_fraction_ > config_.target_rollback_fraction
                            ? config_.shrink_factor
                            : config_.grow_factor;
  const auto next = static_cast<std::uint64_t>(
      std::max(1.0, static_cast<double>(window_) * factor));
  window_ = std::clamp(next, config_.min_window, config_.max_window);

  processed_at_last_tick_ = processed_;
  rolled_back_ = 0;
  ++invocations_;
  return true;
}

void OptimismWindowController::reset() {
  window_ = config_.initial_window;
  processed_ = 0;
  rolled_back_ = 0;
  processed_at_last_tick_ = 0;
  last_fraction_ = 0.0;
  invocations_ = 0;
}

}  // namespace otw::core
