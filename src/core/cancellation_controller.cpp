#include "otw/core/cancellation_controller.hpp"

#include "otw/util/assert.hpp"

namespace otw::core {

const char* to_string(CancellationMode mode) noexcept {
  return mode == CancellationMode::Aggressive ? "aggressive" : "lazy";
}

const char* to_string(CancellationPolicy policy) noexcept {
  switch (policy) {
    case CancellationPolicy::StaticAggressive: return "AC";
    case CancellationPolicy::StaticLazy: return "LC";
    case CancellationPolicy::Dynamic: return "DC";
    case CancellationPolicy::SingleThreshold: return "ST";
    case CancellationPolicy::PermanentAfter: return "PS";
    case CancellationPolicy::MissStreakToAggressive: return "PA";
  }
  return "?";
}

CancellationControlConfig CancellationControlConfig::aggressive() {
  CancellationControlConfig c;
  c.policy = CancellationPolicy::StaticAggressive;
  return c;
}

CancellationControlConfig CancellationControlConfig::lazy() {
  CancellationControlConfig c;
  c.policy = CancellationPolicy::StaticLazy;
  return c;
}

CancellationControlConfig CancellationControlConfig::dynamic(std::size_t filter_depth,
                                                             double a2l, double l2a) {
  CancellationControlConfig c;
  c.policy = CancellationPolicy::Dynamic;
  c.filter_depth = filter_depth;
  c.a2l_threshold = a2l;
  c.l2a_threshold = l2a;
  return c;
}

CancellationControlConfig CancellationControlConfig::st(double threshold) {
  CancellationControlConfig c;
  c.policy = CancellationPolicy::SingleThreshold;
  c.single_threshold = threshold;
  return c;
}

CancellationControlConfig CancellationControlConfig::ps(std::size_t n) {
  CancellationControlConfig c;
  c.policy = CancellationPolicy::PermanentAfter;
  c.filter_depth = n;
  c.permanent_after = n;
  return c;
}

CancellationControlConfig CancellationControlConfig::pa(std::size_t n) {
  CancellationControlConfig c;
  c.policy = CancellationPolicy::MissStreakToAggressive;
  c.miss_streak_limit = n;
  return c;
}

namespace {

double effective_lower(const CancellationControlConfig& config) {
  return config.policy == CancellationPolicy::SingleThreshold
             ? config.single_threshold
             : config.l2a_threshold;
}

double effective_upper(const CancellationControlConfig& config) {
  return config.policy == CancellationPolicy::SingleThreshold
             ? config.single_threshold
             : config.a2l_threshold;
}

}  // namespace

CancellationController::CancellationController(const CancellationControlConfig& config)
    : config_(config),
      window_(config.filter_depth),
      threshold_(effective_lower(config), effective_upper(config),
                 HysteresisThreshold::Level::Low) {
  OTW_REQUIRE(config.filter_depth >= 1);
  OTW_REQUIRE(config.l2a_threshold <= config.a2l_threshold);
  OTW_REQUIRE(config.control_period_comparisons >= 1);
  switch (config_.policy) {
    case CancellationPolicy::StaticAggressive:
      mode_ = CancellationMode::Aggressive;
      freeze();
      break;
    case CancellationPolicy::StaticLazy:
      mode_ = CancellationMode::Lazy;
      freeze();
      break;
    default:
      // The paper: "The simulation starts with aggressive-cancellation."
      mode_ = CancellationMode::Aggressive;
      break;
  }
}

void CancellationController::record_comparison(bool hit) {
  if (!monitoring_) {
    return;
  }
  window_.push(hit);
  ++comparisons_;
  miss_streak_ = hit ? 0 : miss_streak_ + 1;

  if (config_.policy == CancellationPolicy::MissStreakToAggressive &&
      miss_streak_ >= config_.miss_streak_limit) {
    set_mode(CancellationMode::Aggressive);
    freeze();
    return;
  }

  if (++comparisons_since_decision_ >= config_.control_period_comparisons) {
    comparisons_since_decision_ = 0;
    apply_decision();
  }

  if (config_.policy == CancellationPolicy::PermanentAfter &&
      comparisons_ >= config_.permanent_after) {
    // Decide once more from the final HR, then stop paying for monitoring.
    apply_decision();
    freeze();
  }
}

void CancellationController::apply_decision() {
  const auto level = threshold_.update(hit_ratio());
  set_mode(level == HysteresisThreshold::Level::High ? CancellationMode::Lazy
                                                     : CancellationMode::Aggressive);
}

void CancellationController::set_mode(CancellationMode next) noexcept {
  if (next != mode_) {
    mode_ = next;
    ++switches_;
  }
}

}  // namespace otw::core
