#include "otw/core/pressure_controller.hpp"

namespace otw::core {

const char* to_string(PressureState state) noexcept {
  switch (state) {
    case PressureState::Normal:
      return "normal";
    case PressureState::Throttle:
      return "throttle";
    case PressureState::Emergency:
      return "emergency";
  }
  return "?";
}

MemoryPressureController::MemoryPressureController(
    std::uint64_t budget_bytes, const MemoryPressureConfig& config)
    : config_(config), budget_(budget_bytes) {
  OTW_REQUIRE(config.low_watermark > 0.0);
  OTW_REQUIRE(config.low_watermark < config.high_watermark);
  OTW_REQUIRE(config.high_watermark <= 1.0);
  OTW_REQUIRE(config.control_period_events >= 1);
  OTW_REQUIRE(config.emergency_window >= 1);
  OTW_REQUIRE(config.throttle_window >= config.emergency_window);
}

bool MemoryPressureController::update(std::uint64_t footprint_bytes) noexcept {
  last_footprint_ = footprint_bytes;
  processed_at_last_update_ = processed_;
  ++invocations_;
  if (budget_ == 0) {
    return false;
  }
  const auto fp = static_cast<double>(footprint_bytes);
  const double high = config_.high_watermark * static_cast<double>(budget_);
  const double low = config_.low_watermark * static_cast<double>(budget_);
  const double full = static_cast<double>(budget_);

  PressureState next = state_;
  switch (state_) {
    case PressureState::Normal:
      if (fp >= full) {
        next = PressureState::Emergency;
      } else if (fp >= high) {
        next = PressureState::Throttle;
      }
      break;
    case PressureState::Throttle:
      if (fp >= full) {
        next = PressureState::Emergency;
      } else if (fp < low) {
        next = PressureState::Normal;
      }
      break;
    case PressureState::Emergency:
      if (fp < low) {
        next = PressureState::Normal;
      } else if (fp < high) {
        next = PressureState::Throttle;
      }
      break;
  }
  if (next == state_) {
    return false;
  }
  state_ = next;
  ++transitions_;
  return true;
}

std::uint64_t MemoryPressureController::window_clamp() const noexcept {
  switch (state_) {
    case PressureState::Normal:
      return UINT64_MAX;
    case PressureState::Throttle:
      return config_.throttle_window;
    case PressureState::Emergency:
      return config_.emergency_window;
  }
  return UINT64_MAX;
}

}  // namespace otw::core
