// Dynamic checkpoint-interval controller (paper Section 4).
//
// Control tuple: <Ec, chi, chi0, A, P>.
//   Ec  - cost index: state-saving cost + coast-forward cost accumulated
//         since the previous control invocation,
//   chi - the periodic checkpoint interval under configuration,
//   A   - transfer function; the paper's heuristic: if Ec has not increased
//         significantly, increment chi, otherwise decrement it,
//   P   - events processed between control invocations.
//
// Under the single-minimum assumption (checkpointing cost falls and
// coast-forward cost rises monotonically with chi), the heuristic hovers in
// the neighbourhood of the optimal interval. A direction-tracking hill-climb
// variant (after Fleischmann & Wilsey, PADS'95) is provided for the ablation
// study.
#pragma once

#include <cstdint>

#include "otw/util/assert.hpp"

namespace otw::core {

struct CheckpointControlConfig {
  /// chi0: initial checkpoint interval (events between state saves).
  std::uint32_t initial_interval = 1;
  std::uint32_t min_interval = 1;
  std::uint32_t max_interval = 64;
  /// P: processed events between control invocations.
  std::uint64_t control_period_events = 128;
  /// Relative growth of normalized Ec considered "significant". Keep this
  /// small: if it exceeds the cost curve's per-step slope near the optimum,
  /// the increment bias walks the interval away without ever reversing.
  double significance = 0.01;
  /// Transfer-function variant.
  enum class Heuristic {
    PaperSimple,  ///< increment unless Ec rose significantly, else decrement
    HillClimb,    ///< keep moving while improving, reverse on significant rise
  } heuristic = Heuristic::PaperSimple;
  /// Normalize Ec by events processed in the period (recommended: the raw
  /// sum scales with load, not with the quality of chi).
  bool normalize_per_event = true;
};

class CheckpointIntervalController {
 public:
  explicit CheckpointIntervalController(const CheckpointControlConfig& config);

  /// Accounting fed by the kernel as it runs.
  void record_state_save(std::uint64_t cost_ns) noexcept {
    state_save_cost_ns_ += cost_ns;
  }
  void record_coast_forward(std::uint64_t cost_ns) noexcept {
    coast_forward_cost_ns_ += cost_ns;
  }

  /// Called once per processed event; every P events the transfer function
  /// runs. Returns true when the interval was (re)evaluated.
  bool on_event_processed();

  [[nodiscard]] std::uint32_t interval() const noexcept { return interval_; }
  [[nodiscard]] std::uint64_t invocations() const noexcept { return invocations_; }
  /// Last evaluated cost index (normalized if configured); for tests/stats.
  [[nodiscard]] double last_cost_index() const noexcept { return last_cost_; }

  void reset();

 private:
  void apply_transfer();
  void step_interval(int direction) noexcept;

  CheckpointControlConfig config_;
  std::uint32_t interval_;
  std::uint64_t state_save_cost_ns_ = 0;
  std::uint64_t coast_forward_cost_ns_ = 0;
  std::uint64_t events_in_period_ = 0;
  std::uint64_t invocations_ = 0;
  double last_cost_ = -1.0;  // < 0 means "no previous observation"
  int direction_ = +1;       // used by the HillClimb heuristic
};

}  // namespace otw::core
