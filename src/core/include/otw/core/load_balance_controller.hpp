// On-line load balancing: the paper's <O, I, S, T, P> framework applied to
// shard-level load imbalance, actuated by LP migration over the mesh.
//
// A static partition — even a communication-aware one — drifts: a hotspot
// model phase can concentrate event mass on one shard while the others idle
// at the GVT frontier. The controller watches per-shard progress and orders
// one LP moved when the spread exceeds a dead-zoned threshold:
//
//   control tuple <O, I, S, T, P>:
//     O - observed per-shard work: cumulative committed + rolled-back event
//         totals (a work proxy that counts wasted optimism as load), read
//         from the live plane's shard snapshots; the controller differences
//         consecutive observations into per-period deltas
//     I - one migration order per actuation: (hottest shard -> coldest
//         shard); the kernel picks the hottest LP on the source shard
//     S - Armed (watching) / Cooldown (a migration is settling)
//     T - dead-zoned threshold on the hot/cold delta ratio:
//           Armed --(ratio >= threshold * (1 + dead_zone))--> actuate,
//                 then Cooldown for cooldown_periods periods
//         Inside the dead zone nothing fires, so a ratio hovering at the
//         threshold cannot make migrations oscillate; the cooldown lets the
//         moved LP's cost show up in the deltas before re-evaluating.
//     P - the coordinator's migration control period (period_ms)
//
// The controller only picks shards; freezing, shipping and rebinding are the
// engine's migration protocol (platform/distributed.hpp). Like every other
// controller here it is a pure state machine — no I/O, directly testable.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

namespace otw::core {

struct LoadBalanceConfig {
  /// T: hot/cold per-period work ratio that triggers a migration.
  double imbalance_threshold = 1.75;
  /// Dead-zone half-width as a fraction of the threshold.
  double dead_zone = 0.15;
  /// Control periods to sit out after ordering a migration.
  std::uint32_t cooldown_periods = 3;
  /// Hot-shard per-period delta below which the sample is noise, not load.
  std::uint64_t min_window_events = 512;
};

/// One actuation: rebalance from `hot` to `cold`.
struct LoadBalanceOrder {
  std::uint32_t hot = 0;
  std::uint32_t cold = 0;
  double ratio = 0.0;  ///< the triggering hot/cold delta ratio
};

class LoadBalanceController {
 public:
  explicit LoadBalanceController(const LoadBalanceConfig& config)
      : config_(config) {}

  /// Feeds one observation: cumulative per-shard work totals (monotone;
  /// index = shard). Returns a migration order when the transfer function
  /// fires, nullopt otherwise.
  std::optional<LoadBalanceOrder> update(
      const std::vector<std::uint64_t>& totals) {
    ++invocations_;
    if (last_totals_.size() != totals.size()) {
      last_totals_ = totals;  // first sight of this shard count: baseline only
      return std::nullopt;
    }
    std::vector<std::uint64_t> delta(totals.size());
    for (std::size_t s = 0; s < totals.size(); ++s) {
      delta[s] = totals[s] >= last_totals_[s] ? totals[s] - last_totals_[s] : 0;
    }
    last_totals_ = totals;
    if (cooldown_left_ > 0) {
      --cooldown_left_;
      return std::nullopt;
    }
    if (totals.size() < 2) {
      return std::nullopt;
    }
    std::size_t hot = 0;
    std::size_t cold = 0;
    for (std::size_t s = 1; s < delta.size(); ++s) {
      if (delta[s] > delta[hot]) {
        hot = s;
      }
      if (delta[s] < delta[cold]) {
        cold = s;
      }
    }
    if (delta[hot] < config_.min_window_events) {
      return std::nullopt;  // the whole window is noise
    }
    const double ratio = static_cast<double>(delta[hot]) /
                         static_cast<double>(delta[cold] > 0 ? delta[cold] : 1);
    last_ratio_ = ratio;
    if (ratio < config_.imbalance_threshold * (1.0 + config_.dead_zone)) {
      return std::nullopt;  // below the threshold or inside the dead zone
    }
    cooldown_left_ = config_.cooldown_periods;
    ++decisions_;
    return LoadBalanceOrder{static_cast<std::uint32_t>(hot),
                            static_cast<std::uint32_t>(cold), ratio};
  }

  [[nodiscard]] std::uint64_t invocations() const noexcept { return invocations_; }
  [[nodiscard]] std::uint64_t decisions() const noexcept { return decisions_; }
  [[nodiscard]] double last_ratio() const noexcept { return last_ratio_; }
  [[nodiscard]] bool in_cooldown() const noexcept { return cooldown_left_ > 0; }
  [[nodiscard]] const LoadBalanceConfig& config() const noexcept { return config_; }

 private:
  LoadBalanceConfig config_;
  std::vector<std::uint64_t> last_totals_;
  std::uint32_t cooldown_left_ = 0;
  std::uint64_t invocations_ = 0;
  std::uint64_t decisions_ = 0;
  double last_ratio_ = 0.0;
};

}  // namespace otw::core
