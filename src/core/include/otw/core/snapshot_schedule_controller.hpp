// Snapshot cadence controller for shard-level checkpoint/restart.
//
// Second consumer of the checkpoint-interval machinery (ROADMAP: "use it to
// schedule shard snapshots against a recovery-time budget"): where the
// per-object CheckpointIntervalController picks chi (events between state
// saves), this controller picks the wall-clock gap between *shard snapshot
// epochs*, balancing two costs exactly like Bringmann et al.'s online
// checkpointing analysis:
//
//   - lost work: a failure forfeits everything since the last complete cut,
//     so worst-case recovery time ~= gap + restore cost. The user budget
//     (recovery_budget_ms) therefore caps the gap from above:
//         gap <= recovery_budget_ms - estimated_restore_ms.
//   - overhead: every epoch stops the world for its serialize cost, so the
//     gap is floored from below to bound steady-state overhead:
//         gap >= overhead_factor * avg_snapshot_cost
//     (overhead_factor = 20 keeps snapshotting under ~5% of wall time).
//
// Between those bounds an embedded CheckpointIntervalController hill-climbs:
// each epoch feeds its serialize cost as a "state save" and ticks the
// controller once, and the resulting chi in [min_interval, max_interval]
// interpolates the gap inside [floor, cap] — cheap snapshots drift the gap
// toward the floor (tighter cuts, cheaper recovery), expensive ones toward
// the budget cap. When the bounds cross, the budget wins: the recovery-time
// promise is the hard constraint, overhead the advisory one.
#pragma once

#include <cstdint>

#include "otw/core/checkpoint_controller.hpp"

namespace otw::core {

struct SnapshotScheduleConfig {
  /// Worst-case recovery budget: lost progress (the gap) plus the restore
  /// replay must fit inside this.
  std::uint32_t recovery_budget_ms = 250;
  /// Hard bounds on the scheduled gap.
  std::uint32_t min_gap_ms = 10;
  std::uint32_t max_gap_ms = 10'000;
  /// Overhead floor: gap >= overhead_factor * average snapshot cost.
  double overhead_factor = 20.0;
  /// Restore is estimated as this multiple of the (measured) serialize
  /// cost: deserialization plus replacement-fork handshake overhead.
  double restore_factor = 2.0;
  /// Embedded hill-climber. Defaults are re-tuned for epoch granularity
  /// (one tick per snapshot, not per event) by the constructor unless the
  /// caller overrides them.
  CheckpointControlConfig control;
};

class SnapshotScheduleController {
 public:
  explicit SnapshotScheduleController(const SnapshotScheduleConfig& config);

  /// Feeds one complete snapshot epoch (its stop-the-world wall cost and
  /// total blob bytes) and returns the gap, in ms, until the next epoch.
  std::uint32_t on_snapshot(std::uint64_t cost_ns, std::uint64_t bytes);

  /// Current gap without feeding an observation (used for the first epoch).
  [[nodiscard]] std::uint32_t gap_ms() const noexcept { return gap_ms_; }
  [[nodiscard]] std::uint64_t epochs_observed() const noexcept {
    return epochs_;
  }
  [[nodiscard]] std::uint64_t avg_cost_ns() const noexcept {
    return avg_cost_ns_;
  }
  [[nodiscard]] std::uint64_t avg_bytes() const noexcept { return avg_bytes_; }
  [[nodiscard]] const CheckpointIntervalController& interval_controller()
      const noexcept {
    return chi_;
  }

 private:
  void recompute() noexcept;

  SnapshotScheduleConfig config_;
  CheckpointIntervalController chi_;
  std::uint64_t avg_cost_ns_ = 0;  ///< EWMA (alpha = 1/4)
  std::uint64_t avg_bytes_ = 0;    ///< EWMA (alpha = 1/4)
  std::uint64_t epochs_ = 0;
  std::uint32_t gap_ms_;
};

}  // namespace otw::core
