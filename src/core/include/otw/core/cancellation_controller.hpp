// Dynamic cancellation-strategy controller (paper Section 5).
//
// Control tuple: <HR, I, Aggressive, A, P>.
//   HR - Hit Ratio: (#lazy hits + #lazy-aggressive hits) / Filter Depth,
//        computed over a sliding window of the last Filter Depth output
//        message comparisons. A comparison is a "hit" when the message
//        regenerated after a rollback is identical to the prematurely sent
//        one (so cancelling it would have been wasted work).
//   I  - the selected cancellation mode, Aggressive or Lazy.
//   A  - a dead-zone thresholding heuristic: switch Aggressive->Lazy when HR
//        rises above the A2L threshold, Lazy->Aggressive when it falls below
//        the L2A threshold; hold inside the dead zone.
//   P  - comparisons between control invocations.
//
// Variants evaluated in the paper's Figures 6 and 7:
//   Dynamic (DC)             - as above.
//   SingleThreshold (ST_v)   - A2L == L2A == v (no dead zone).
//   PermanentAfter (PS_n)    - dynamic until n comparisons have been made,
//                              then the current mode is frozen and monitoring
//                              stops (saving the passive-comparison cost).
//   MissStreakToAggressive (PA_n) - dynamic, but n successive misses freeze
//                              the mode permanently at Aggressive.
//   StaticAggressive / StaticLazy - no monitoring at all (the AC / LC
//                              baselines).
#pragma once

#include <cstddef>
#include <cstdint>

#include "otw/core/threshold.hpp"
#include "otw/util/sliding_window.hpp"

namespace otw::core {

enum class CancellationMode : std::uint8_t { Aggressive, Lazy };

enum class CancellationPolicy : std::uint8_t {
  StaticAggressive,
  StaticLazy,
  Dynamic,
  SingleThreshold,
  PermanentAfter,
  MissStreakToAggressive,
};

[[nodiscard]] const char* to_string(CancellationMode mode) noexcept;
[[nodiscard]] const char* to_string(CancellationPolicy policy) noexcept;

struct CancellationControlConfig {
  CancellationPolicy policy = CancellationPolicy::Dynamic;
  /// Filter Depth: size of the comparison window (and the HR denominator).
  std::size_t filter_depth = 16;
  /// Switch Aggressive -> Lazy when HR rises above this.
  double a2l_threshold = 0.45;
  /// Switch Lazy -> Aggressive when HR falls below this.
  double l2a_threshold = 0.2;
  /// Threshold used when policy == SingleThreshold (A2L == L2A == this).
  double single_threshold = 0.4;
  /// PS_n: comparisons after which the mode is frozen.
  std::size_t permanent_after = 32;
  /// PA_n: successive misses that freeze the mode at Aggressive.
  std::size_t miss_streak_limit = 10;
  /// P: comparisons between control invocations (decisions).
  std::uint64_t control_period_comparisons = 4;

  /// Convenience factories matching the paper's experiment labels
  /// (AC, LC, DC, ST_v, PS_n, PA_n).
  static CancellationControlConfig aggressive();
  static CancellationControlConfig lazy();
  static CancellationControlConfig dynamic(std::size_t filter_depth = 16,
                                           double a2l = 0.45, double l2a = 0.2);
  static CancellationControlConfig st(double threshold = 0.4);
  static CancellationControlConfig ps(std::size_t n);
  static CancellationControlConfig pa(std::size_t n = 10);
};

class CancellationController {
 public:
  explicit CancellationController(const CancellationControlConfig& config);

  /// Records one output-message comparison (true = hit). Ignored once the
  /// controller is frozen. Mode changes only happen on control-period
  /// boundaries.
  void record_comparison(bool hit);

  /// The currently selected cancellation strategy I.
  [[nodiscard]] CancellationMode mode() const noexcept { return mode_; }

  /// False once the strategy is frozen (static policies, PS after n
  /// comparisons, PA after a miss streak). The kernel uses this to skip the
  /// passive-comparison bookkeeping entirely.
  [[nodiscard]] bool monitoring() const noexcept { return monitoring_; }

  /// Hit Ratio over the window. The paper's formula divides by Filter Depth;
  /// we divide by the samples actually present (identical once the window is
  /// full) so a lightly-rolled-back object is not biased toward Aggressive
  /// merely for lack of rollbacks early in the run.
  [[nodiscard]] double hit_ratio() const noexcept { return window_.ratio(); }

  [[nodiscard]] std::uint64_t comparisons() const noexcept { return comparisons_; }
  [[nodiscard]] std::uint64_t switches() const noexcept { return switches_; }
  [[nodiscard]] const CancellationControlConfig& config() const noexcept {
    return config_;
  }

 private:
  void apply_decision();
  void freeze() noexcept { monitoring_ = false; }
  void set_mode(CancellationMode next) noexcept;

  CancellationControlConfig config_;
  util::BoolWindow window_;
  HysteresisThreshold threshold_;
  CancellationMode mode_ = CancellationMode::Aggressive;
  bool monitoring_ = true;
  std::uint64_t comparisons_ = 0;
  std::uint64_t comparisons_since_decision_ = 0;
  std::uint64_t switches_ = 0;
  std::size_t miss_streak_ = 0;
};

}  // namespace otw::core
