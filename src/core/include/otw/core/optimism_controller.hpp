// Adaptive bounded time windows (Palaniswamy & Wilsey, GLSVLSI'93; folded
// into "Parameterized Time Warp", JPDC'96 — the paper's refs [20] and [23]).
//
// A fourth on-line configuration facet beyond the paper's three: an LP may
// only process events with receive time <= GVT + W. A small window throttles
// optimism (few rollbacks, poor parallelism); a large window is unbounded
// Time Warp. The controller adapts W from the observed rollback fraction:
//
//   control tuple <R, W, W0, A, P>:
//     R  - fraction of processed events undone by rollbacks in the period
//     W  - the optimism window (virtual-time ticks)
//     A  - multiplicative-increase / multiplicative-decrease around a target
//          rollback fraction (TCP-flavoured: stable under noisy feedback)
//     P  - processed events between control invocations
#pragma once

#include <algorithm>
#include <cstdint>

#include "otw/util/assert.hpp"

namespace otw::core {

struct OptimismControlConfig {
  /// W0, in virtual-time ticks.
  std::uint64_t initial_window = 1u << 16;
  std::uint64_t min_window = 1;
  std::uint64_t max_window = std::uint64_t{1} << 40;
  /// Adapt toward this fraction of rolled-back work.
  double target_rollback_fraction = 0.15;
  /// Multiplicative step per control invocation.
  double grow_factor = 1.3;
  double shrink_factor = 0.7;
  /// P: processed events between invocations.
  std::uint64_t control_period_events = 256;
};

class OptimismWindowController {
 public:
  explicit OptimismWindowController(const OptimismControlConfig& config);

  /// Fed by the LP as it runs.
  void record_processed(std::uint64_t events) noexcept { processed_ += events; }
  void record_rolled_back(std::uint64_t events) noexcept {
    rolled_back_ += events;
  }

  /// Invoke after record_processed; applies the transfer function every P
  /// processed events. Returns true when the window was re-evaluated.
  bool maybe_adapt();

  [[nodiscard]] std::uint64_t window() const noexcept { return window_; }
  [[nodiscard]] double last_rollback_fraction() const noexcept {
    return last_fraction_;
  }
  [[nodiscard]] std::uint64_t invocations() const noexcept { return invocations_; }

  /// Externally imposed ceiling (memory-pressure throttling): immediately
  /// shrinks the window to at most `cap` (never below min_window). The
  /// rollback-fraction feedback keeps running and may re-grow the window
  /// once the caller stops clamping.
  void clamp(std::uint64_t cap) noexcept {
    window_ = std::clamp(std::min(window_, cap), config_.min_window,
                         config_.max_window);
  }

  void reset();

 private:
  OptimismControlConfig config_;
  std::uint64_t window_;
  std::uint64_t processed_ = 0;
  std::uint64_t rolled_back_ = 0;
  std::uint64_t processed_at_last_tick_ = 0;
  double last_fraction_ = 0.0;
  std::uint64_t invocations_ = 0;
};

}  // namespace otw::core
