// Adaptive aggregation-window controller: SAAW (paper Section 6).
//
// Control tuple: <R(age), W, W_initial, SAAW, everyAggregate>.
// The communication layer batches application messages per destination LP;
// an aggregate is flushed when its age reaches the window W. FAW keeps W
// fixed; SAAW re-evaluates W every time an aggregate is sent.
//
// The paper specifies R(age) loosely: "the rate of reception of messages,
// modified to reflect the age of the aggregate" — an aggregate with the same
// raw rate but a smaller age scores higher. We realize it as a per-aggregate
// net-benefit score balancing the paper's two factors:
//
//   AOF (gain)  = (n - 1) * benefit_per_message     (physical sends avoided)
//   APF (harm)  = age_penalty * age^2               (delay harm; superlinear
//                  because stale messages compound into downstream rollbacks)
//   score(n, age) = AOF - APF
//
// which at arrival rate lambda is concave in W with an interior maximum at
// W* = lambda * benefit / (2 * penalty): bursty phases (high lambda) earn
// larger windows, exactly the adaptation the paper describes. The transfer
// function is a direction-tracking hill-climb on the score, so W converges
// to the neighbourhood of W* from any initial window.
//
// A literal-transcription variant (compare raw age-discounted rates, no
// direction memory) is kept for the ablation bench; under steady load it
// limit-cycles around W_initial, which is why the score form is the default.
#pragma once

#include <cstddef>
#include <cstdint>

namespace otw::core {

enum class SaawVariant : std::uint8_t {
  /// Default: certainty-equivalence adaptive control (cf. the paper's
  /// Astrom & Wittenmark reference). Estimate the arrival rate lambda from
  /// (message count, elapsed time since the previous flush), smooth it with
  /// an EWMA, and move the window toward the optimum of the AOF-APF balance,
  /// W* = lambda * benefit / (2 * penalty). Converges from any initial
  /// window and tracks bursts, which is what Figures 8-9 require of SAAW.
  RateTracking,
  /// Direction-memory hill-climb on the per-aggregate AOF-APF score.
  /// Simple, but noise-dominated near the optimum (kept for the ablation).
  ScoreHillClimb,
  /// Literal transcription of the paper's sentence: grow iff the
  /// age-discounted rate rose vs. the previous aggregate. Limit-cycles
  /// around the initial window under steady load (see the ablation bench).
  PaperLiteral,
};

struct AggregationControlConfig {
  /// W_initial, in platform microseconds.
  double initial_window_us = 32.0;
  double min_window_us = 1.0;
  double max_window_us = 100000.0;
  /// Multiplicative step applied by one hill-climb move.
  double step_factor = 1.25;
  /// AOF weight: benefit of one avoided physical message (score units).
  double benefit_per_message = 1.0;
  /// APF weight applied to age^2 (score units per us^2).
  double age_penalty = 2.0e-6;
  /// Age scale for the PaperLiteral rate discount 1 / (1 + age / ref).
  double age_reference_us = 100.0;
  /// RateTracking: EWMA weight for the arrival-rate estimate.
  double rate_alpha = 0.2;
  /// RateTracking: fraction of the window-to-target gap closed per flush.
  double tracking_gain = 0.3;
  SaawVariant variant = SaawVariant::RateTracking;
};

class AggregationWindowController {
 public:
  explicit AggregationWindowController(const AggregationControlConfig& config);

  /// Invoked by the communication layer each time an aggregate is flushed
  /// ("the window size is adapted as each aggregate is sent").
  /// @param message_count application messages in the aggregate (>= 1)
  /// @param age_us        time the aggregate spent open, in microseconds
  /// @param elapsed_us    time since the previous flush to the same
  ///                      destination (>= age_us); 0 means unknown, in which
  ///                      case age_us is used. Lets the rate estimator see
  ///                      the true arrival rate even when the window is far
  ///                      too small to batch anything.
  /// @return the window to use for the next aggregate.
  double on_aggregate_sent(std::size_t message_count, double age_us,
                           double elapsed_us = 0.0);

  /// RateTracking: current smoothed arrival-rate estimate (messages/us).
  [[nodiscard]] double rate_estimate() const noexcept { return rate_ewma_; }

  [[nodiscard]] double window_us() const noexcept { return window_us_; }
  [[nodiscard]] double last_score() const noexcept { return last_score_; }
  [[nodiscard]] std::uint64_t adaptations() const noexcept { return adaptations_; }
  [[nodiscard]] const AggregationControlConfig& config() const noexcept {
    return config_;
  }

  void reset();

 private:
  [[nodiscard]] double score(std::size_t message_count, double age_us) const;

  AggregationControlConfig config_;
  double window_us_;
  double last_score_ = 0.0;
  bool have_last_ = false;
  int direction_ = +1;
  double rate_ewma_ = 0.0;
  bool rate_primed_ = false;
  std::uint64_t adaptations_ = 0;
};

}  // namespace otw::core
