// The paper's on-line configuration model (Section 3).
//
// A configuration control system is the tuple <O, I, S, T, P>:
//   O - the sampled output (an observation of the running simulator),
//   I - the current state of the parameter under configuration,
//   S - the initial configuration,
//   T - a transfer function from O (and I) to the next configuration I',
//   P - the configuration period: how many samples pass between control
//       invocations. Control is intrusive (it competes for the CPU cycles of
//       the simulation itself), so P keeps the adaptation infrequent.
//
// FeedbackController realizes the tuple generically; the three concrete
// controllers (checkpoint interval, cancellation strategy, aggregation
// window) are built on it or follow the same shape where their sampling is
// richer than a single value.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>

#include "otw/util/assert.hpp"

namespace otw::core {

/// Generic realization of the <O, I, S, T, P> control tuple.
///
/// Output:   the sampled observation type O.
/// Param:    the configured parameter type I.
/// Transfer: callable Param(const Output&, const Param&) — the function T.
template <typename Output, typename Param, typename Transfer>
class FeedbackController {
 public:
  /// @param initial  S, the initial configuration.
  /// @param period   P, samples between control invocations (>= 1).
  /// @param transfer T, maps (last sampled output, current I) to the next I.
  FeedbackController(Param initial, std::uint64_t period, Transfer transfer)
      : param_(initial),
        initial_(std::move(initial)),
        period_(period),
        transfer_(std::move(transfer)) {
    OTW_REQUIRE(period_ >= 1);
  }

  /// Feeds one observation. Every `period()` samples the transfer function
  /// runs and the new parameter value is returned; otherwise nullopt.
  std::optional<Param> sample(const Output& output) {
    if (++samples_since_tick_ < period_) {
      return std::nullopt;
    }
    samples_since_tick_ = 0;
    param_ = transfer_(output, param_);
    ++invocations_;
    return param_;
  }

  /// Current value of the configured parameter I.
  [[nodiscard]] const Param& param() const noexcept { return param_; }

  /// Restores the initial configuration S and clears the sample counter.
  void reset() {
    param_ = initial_;
    samples_since_tick_ = 0;
    invocations_ = 0;
  }

  [[nodiscard]] std::uint64_t period() const noexcept { return period_; }
  [[nodiscard]] std::uint64_t invocations() const noexcept { return invocations_; }

 private:
  Param param_;
  Param initial_;
  std::uint64_t period_;
  Transfer transfer_;
  std::uint64_t samples_since_tick_ = 0;
  std::uint64_t invocations_ = 0;
};

template <typename Output, typename Param, typename Transfer>
FeedbackController(Param, std::uint64_t, Transfer)
    -> FeedbackController<Output, Param, Transfer>;

}  // namespace otw::core
