// Non-linear thresholding filter with a dead zone (paper Figure 3).
//
// The filter output is binary. It flips to HIGH only when the input rises
// above the upper threshold and to LOW only when it falls below the lower
// threshold; anywhere in the dead zone between the thresholds the previous
// output is held. The hysteresis damps thrashing between the two
// cancellation strategies. Setting both thresholds equal removes the dead
// zone (the paper's ST variant).
#pragma once

#include "otw/util/assert.hpp"

namespace otw::core {

class HysteresisThreshold {
 public:
  enum class Level { Low, High };

  /// @param lower   input must fall strictly below this to produce Low.
  /// @param upper   input must rise strictly above this to produce High.
  /// @param initial starting output level.
  HysteresisThreshold(double lower, double upper, Level initial)
      : lower_(lower), upper_(upper), level_(initial) {
    OTW_REQUIRE(lower <= upper);
  }

  /// Feeds one input value and returns the (possibly held) output level.
  Level update(double input) noexcept {
    if (input > upper_) {
      level_ = Level::High;
    } else if (input < lower_) {
      level_ = Level::Low;
    }
    // Inside [lower_, upper_]: dead zone, hold the previous level.
    return level_;
  }

  [[nodiscard]] Level level() const noexcept { return level_; }
  [[nodiscard]] double lower() const noexcept { return lower_; }
  [[nodiscard]] double upper() const noexcept { return upper_; }
  [[nodiscard]] bool has_dead_zone() const noexcept { return lower_ < upper_; }

 private:
  double lower_;
  double upper_;
  Level level_;
};

/// Exponentially weighted moving average, the simplest smoothing filter used
/// to damp spurious samples before they reach a transfer function.
class EwmaFilter {
 public:
  /// @param alpha weight of the newest sample, in (0, 1].
  explicit EwmaFilter(double alpha) : alpha_(alpha) {
    OTW_REQUIRE(alpha > 0.0 && alpha <= 1.0);
  }

  double update(double sample) noexcept {
    if (!primed_) {
      value_ = sample;
      primed_ = true;
    } else {
      value_ += alpha_ * (sample - value_);
    }
    return value_;
  }

  [[nodiscard]] double value() const noexcept { return value_; }
  [[nodiscard]] bool primed() const noexcept { return primed_; }
  void reset() noexcept { primed_ = false; value_ = 0.0; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool primed_ = false;
};

}  // namespace otw::core
