// Memory-pressure control: the paper's <O, I, S, T, P> framework applied to
// a fifth facet — the simulator's memory footprint.
//
// Unbounded optimism grows the input/output/state queues without limit: one
// far-ahead LP can exhaust memory long before GVT commits its history. The
// controller bounds that growth against a configured budget:
//
//   control tuple <O, I, S, T, P>:
//     O - observed footprint: sampled live bytes (queues + checkpoints +
//         pool slabs) of one LP
//     I - the budget (bytes) and the optimism-window clamp applied while
//         over pressure
//     S - Normal (initial state: no interference)
//     T - dead-zone hysteresis over two watermarks of the budget:
//           Normal   --(footprint >= high*budget)--> Throttle
//           Throttle --(footprint >= budget)------> Emergency
//           Throttle --(footprint <  low*budget)--> Normal
//           Emergency--(footprint <  high*budget)-> Throttle
//         Inside [low*budget, high*budget) nothing changes (dead zone), so
//         a footprint hovering near a watermark cannot make the controller
//         oscillate.
//     P - control period: every `control_period_events` processed events,
//         plus every GVT advance
//
// The controller only decides the state; the LP applies the actuation:
// Throttle clamps the optimism window (far-ahead LPs stop receiving CPU),
// Emergency additionally triggers early GVT/fossil passes and holds
// non-urgent remote sends (cancelback-lite). None of the actuations can
// change committed results — they only delay work that rollback could have
// undone anyway.
#pragma once

#include <cstdint>

#include "otw/util/assert.hpp"

namespace otw::core {

struct MemoryPressureConfig {
  /// Footprint fraction of the budget that enters Throttle.
  double high_watermark = 0.85;
  /// Footprint fraction of the budget that re-enters Normal.
  double low_watermark = 0.60;
  /// P: processed events between footprint samples.
  std::uint64_t control_period_events = 256;
  /// Optimism-window ceiling (virtual-time ticks) while in Throttle.
  std::uint64_t throttle_window = 1u << 10;
  /// Optimism-window ceiling while in Emergency; also the horizon below
  /// which held sends are flushed (events at <= GVT + emergency_window are
  /// always deliverable, which is what makes a bounded budget deadlock-free).
  std::uint64_t emergency_window = 64;
};

enum class PressureState : std::uint8_t { Normal = 0, Throttle = 1, Emergency = 2 };

[[nodiscard]] const char* to_string(PressureState state) noexcept;

/// Per-LP memory-pressure controller. A budget of 0 disables it (update()
/// never leaves Normal).
class MemoryPressureController {
 public:
  MemoryPressureController(std::uint64_t budget_bytes,
                           const MemoryPressureConfig& config);

  /// Fed by the LP as it runs; drives due().
  void record_processed(std::uint64_t events) noexcept { processed_ += events; }

  /// True when a control period has elapsed since the last update().
  [[nodiscard]] bool due() const noexcept {
    return processed_ - processed_at_last_update_ >= config_.control_period_events;
  }

  /// Applies the transfer function to a fresh footprint sample. Returns
  /// true when the state changed.
  bool update(std::uint64_t footprint_bytes) noexcept;

  [[nodiscard]] PressureState state() const noexcept { return state_; }
  [[nodiscard]] std::uint64_t budget_bytes() const noexcept { return budget_; }
  [[nodiscard]] std::uint64_t last_footprint() const noexcept {
    return last_footprint_;
  }
  [[nodiscard]] std::uint64_t invocations() const noexcept { return invocations_; }
  [[nodiscard]] std::uint64_t transitions() const noexcept { return transitions_; }

  /// The optimism-window ceiling the current state imposes (UINT64_MAX in
  /// Normal: no interference).
  [[nodiscard]] std::uint64_t window_clamp() const noexcept;

 private:
  MemoryPressureConfig config_;
  std::uint64_t budget_;
  PressureState state_ = PressureState::Normal;
  std::uint64_t last_footprint_ = 0;
  std::uint64_t processed_ = 0;
  std::uint64_t processed_at_last_update_ = 0;
  std::uint64_t invocations_ = 0;
  std::uint64_t transitions_ = 0;
};

}  // namespace otw::core
