#include "otw/core/aggregation_controller.hpp"

#include <algorithm>

#include "otw/util/assert.hpp"

namespace otw::core {

AggregationWindowController::AggregationWindowController(
    const AggregationControlConfig& config)
    : config_(config), window_us_(config.initial_window_us) {
  OTW_REQUIRE(config.min_window_us > 0.0);
  OTW_REQUIRE(config.min_window_us <= config.max_window_us);
  OTW_REQUIRE(config.initial_window_us >= config.min_window_us &&
              config.initial_window_us <= config.max_window_us);
  OTW_REQUIRE(config.step_factor > 1.0);
  OTW_REQUIRE(config.age_penalty > 0.0);
  OTW_REQUIRE(config.rate_alpha > 0.0 && config.rate_alpha <= 1.0);
  OTW_REQUIRE(config.tracking_gain > 0.0 && config.tracking_gain <= 1.0);
}

double AggregationWindowController::score(std::size_t message_count,
                                          double age_us) const {
  switch (config_.variant) {
    case SaawVariant::RateTracking:
      return 0.0;  // not score-driven
    case SaawVariant::ScoreHillClimb: {
      const double gain =
          static_cast<double>(message_count - 1) * config_.benefit_per_message;
      const double harm = config_.age_penalty * age_us * age_us;
      return gain - harm;
    }
    case SaawVariant::PaperLiteral: {
      const double safe_age = std::max(age_us, 1e-9);
      const double rate = static_cast<double>(message_count) / safe_age;
      return rate / (1.0 + safe_age / config_.age_reference_us);
    }
  }
  return 0.0;
}

double AggregationWindowController::on_aggregate_sent(std::size_t message_count,
                                                      double age_us,
                                                      double elapsed_us) {
  OTW_REQUIRE(message_count >= 1);
  OTW_REQUIRE(age_us >= 0.0);
  OTW_REQUIRE(elapsed_us >= 0.0);

  if (config_.variant == SaawVariant::RateTracking) {
    // One aggregate = one observation of the arrival process: message_count
    // arrivals over the span since the previous flush (falling back to the
    // aggregate's own age when the spacing is unknown).
    const double span = std::max(elapsed_us > 0.0 ? elapsed_us : age_us, 1e-3);
    const double rate = static_cast<double>(message_count) / span;
    if (!rate_primed_) {
      rate_ewma_ = rate;
      rate_primed_ = true;
    } else {
      rate_ewma_ += config_.rate_alpha * (rate - rate_ewma_);
    }
    // Optimum of AOF - APF at arrival rate lambda:
    //   d/dW [lambda W benefit - penalty W^2] = 0  =>
    //   W* = lambda benefit / (2 penalty).
    const double target =
        rate_ewma_ * config_.benefit_per_message / (2.0 * config_.age_penalty);
    window_us_ += config_.tracking_gain * (target - window_us_);
    window_us_ =
        std::clamp(window_us_, config_.min_window_us, config_.max_window_us);
    ++adaptations_;
    return window_us_;
  }

  const double current = score(message_count, age_us);
  if (!have_last_) {
    have_last_ = true;
    last_score_ = current;
    return window_us_;
  }

  switch (config_.variant) {
    case SaawVariant::ScoreHillClimb:
      // Keep moving while the score improves; reverse when it degrades.
      // Bounce off the clamps: the score flattens there and would otherwise
      // never trigger a reversal.
      if (current < last_score_ || window_us_ <= config_.min_window_us ||
          window_us_ >= config_.max_window_us) {
        direction_ = -direction_;
      }
      break;
    case SaawVariant::PaperLiteral:
      // "W is increased if R(age) has increased relative to the last
      //  aggregate, and vice versa."
      direction_ = current > last_score_ ? +1 : -1;
      break;
    case SaawVariant::RateTracking:
      break;  // handled above
  }

  if (direction_ > 0) {
    window_us_ *= config_.step_factor;
  } else {
    window_us_ /= config_.step_factor;
  }
  window_us_ = std::clamp(window_us_, config_.min_window_us, config_.max_window_us);
  last_score_ = current;
  ++adaptations_;
  return window_us_;
}

void AggregationWindowController::reset() {
  window_us_ = config_.initial_window_us;
  last_score_ = 0.0;
  have_last_ = false;
  direction_ = +1;
  rate_ewma_ = 0.0;
  rate_primed_ = false;
  adaptations_ = 0;
}

}  // namespace otw::core
