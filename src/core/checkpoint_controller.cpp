#include "otw/core/checkpoint_controller.hpp"

#include <algorithm>

namespace otw::core {

CheckpointIntervalController::CheckpointIntervalController(
    const CheckpointControlConfig& config)
    : config_(config), interval_(config.initial_interval) {
  OTW_REQUIRE(config.min_interval >= 1);
  OTW_REQUIRE(config.min_interval <= config.max_interval);
  OTW_REQUIRE(config.initial_interval >= config.min_interval &&
              config.initial_interval <= config.max_interval);
  OTW_REQUIRE(config.control_period_events >= 1);
  OTW_REQUIRE(config.significance >= 0.0);
}

bool CheckpointIntervalController::on_event_processed() {
  if (++events_in_period_ < config_.control_period_events) {
    return false;
  }
  apply_transfer();
  return true;
}

void CheckpointIntervalController::apply_transfer() {
  double cost = static_cast<double>(state_save_cost_ns_ + coast_forward_cost_ns_);
  if (config_.normalize_per_event && events_in_period_ > 0) {
    cost /= static_cast<double>(events_in_period_);
  }

  const bool have_previous = last_cost_ >= 0.0;
  const bool rose_significantly =
      have_previous && cost > last_cost_ * (1.0 + config_.significance);

  switch (config_.heuristic) {
    case CheckpointControlConfig::Heuristic::PaperSimple:
      // "if Ec is not observed to have increased significantly, the
      //  check-pointing period is incremented; otherwise, it is decremented."
      step_interval(rose_significantly ? -1 : +1);
      break;
    case CheckpointControlConfig::Heuristic::HillClimb:
      if (rose_significantly) {
        direction_ = -direction_;
      }
      step_interval(direction_);
      break;
  }

  last_cost_ = cost;
  state_save_cost_ns_ = 0;
  coast_forward_cost_ns_ = 0;
  events_in_period_ = 0;
  ++invocations_;
}

void CheckpointIntervalController::step_interval(int direction) noexcept {
  if (direction > 0) {
    interval_ = std::min(interval_ + 1, config_.max_interval);
  } else {
    interval_ = std::max(interval_ - 1, config_.min_interval);
  }
}

void CheckpointIntervalController::reset() {
  interval_ = config_.initial_interval;
  state_save_cost_ns_ = 0;
  coast_forward_cost_ns_ = 0;
  events_in_period_ = 0;
  invocations_ = 0;
  last_cost_ = -1.0;
  direction_ = +1;
}

}  // namespace otw::core
