#include "otw/core/snapshot_schedule_controller.hpp"

#include <algorithm>

#include "otw/util/assert.hpp"

namespace otw::core {

namespace {

CheckpointControlConfig epoch_tuned(CheckpointControlConfig control) {
  // The embedded controller ticks once per snapshot epoch, not once per
  // processed event; a per-event control period of 128 would take minutes
  // to evaluate. Only re-tune fields the caller left at their per-event
  // defaults, so explicit overrides stick.
  CheckpointControlConfig defaults;
  if (control.control_period_events == defaults.control_period_events) {
    control.control_period_events = 4;
  }
  if (control.initial_interval == defaults.initial_interval) {
    control.initial_interval = 8;
  }
  return control;
}

}  // namespace

SnapshotScheduleController::SnapshotScheduleController(
    const SnapshotScheduleConfig& config)
    : config_(config), chi_(epoch_tuned(config.control)) {
  OTW_REQUIRE_MSG(config_.recovery_budget_ms >= 1,
                  "recovery budget must be >= 1 ms");
  OTW_REQUIRE_MSG(config_.min_gap_ms >= 1 &&
                      config_.min_gap_ms <= config_.max_gap_ms,
                  "snapshot gap bounds inverted");
  config_.control = epoch_tuned(config_.control);
  gap_ms_ = std::min(config_.max_gap_ms,
                     std::max(config_.min_gap_ms,
                              config_.recovery_budget_ms / 2));
}

std::uint32_t SnapshotScheduleController::on_snapshot(std::uint64_t cost_ns,
                                                      std::uint64_t bytes) {
  avg_cost_ns_ =
      epochs_ == 0 ? cost_ns : (avg_cost_ns_ * 3 + cost_ns) / 4;
  avg_bytes_ = epochs_ == 0 ? bytes : (avg_bytes_ * 3 + bytes) / 4;
  ++epochs_;
  chi_.record_state_save(cost_ns);
  chi_.on_event_processed();
  recompute();
  return gap_ms_;
}

void SnapshotScheduleController::recompute() noexcept {
  const double cost_ms = static_cast<double>(avg_cost_ns_) / 1e6;
  const double restore_ms = cost_ms * config_.restore_factor;
  // Budget cap: gap + restore <= recovery budget (hard).
  double cap = static_cast<double>(config_.recovery_budget_ms) - restore_ms;
  cap = std::max(cap, static_cast<double>(config_.min_gap_ms));
  // Overhead floor: gap >= overhead_factor * cost (advisory).
  double floor = std::max(static_cast<double>(config_.min_gap_ms),
                          config_.overhead_factor * cost_ms);
  double gap;
  if (floor >= cap) {
    gap = cap;  // the recovery-time promise wins
  } else {
    // chi in [min_interval, max_interval] interpolates inside [floor, cap].
    const auto lo = config_.control.min_interval;
    const auto hi = config_.control.max_interval;
    const double t =
        hi > lo ? static_cast<double>(chi_.interval() - lo) /
                      static_cast<double>(hi - lo)
                : 0.0;
    gap = floor + t * (cap - floor);
  }
  gap = std::min(gap, static_cast<double>(config_.max_gap_ms));
  gap = std::max(gap, static_cast<double>(config_.min_gap_ms));
  gap_ms_ = static_cast<std::uint32_t>(gap);
}

}  // namespace otw::core
