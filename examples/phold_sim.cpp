// PHOLD example: the classic synthetic Time Warp stress test, runnable on
// all three kernels with the rollback-pressure knob exposed.
//
//   $ ./build/examples/phold_sim [objects] [lps] [remote_probability] [workers]
#include <cstdio>
#include <cstdlib>

#include "otw/apps/phold.hpp"
#include "otw/tw/kernel.hpp"

int main(int argc, char** argv) {
  using namespace otw;

  apps::phold::PholdConfig app;
  app.num_objects = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 32;
  app.num_lps = argc > 2 ? static_cast<tw::LpId>(std::atoi(argv[2])) : 4;
  app.remote_probability = argc > 3 ? std::atof(argv[3]) : 0.3;
  app.population_per_object = 4;
  const tw::Model model = apps::phold::build_model(app);
  const tw::VirtualTime end{200'000};

  std::printf("PHOLD: %u objects on %u LPs, remote probability %.2f, "
              "horizon %llu ticks\n\n",
              app.num_objects, app.num_lps, app.remote_probability,
              static_cast<unsigned long long>(end.ticks()));

  tw::KernelConfig kc;
  kc.num_lps = app.num_lps;
  kc.end_time = end;
  kc.checkpoint.dynamic = true;
  kc.runtime.cancellation = core::CancellationControlConfig::dynamic();

  const tw::SequentialResult seq = tw::run_sequential(model, end);
  std::printf("sequential: %llu events in %.3fs wall\n",
              static_cast<unsigned long long>(seq.events_processed),
              static_cast<double>(seq.wall_time_ns) / 1e9);

  const tw::RunResult now = tw::run(model, kc);
  std::printf("simulated NOW: %.3fs modeled, %llu rollbacks, efficiency %.1f%% "
              "(committed/processed)\n",
              now.execution_time_sec(),
              static_cast<unsigned long long>(now.stats.total_rollbacks()),
              100.0 * static_cast<double>(now.stats.total_committed()) /
                  static_cast<double>(now.stats.object_totals().events_processed));

  platform::ThreadedConfig tc;
  tc.num_workers = argc > 4 ? static_cast<std::uint32_t>(std::atoi(argv[4])) : 0;
  const tw::RunResult threads = tw::run(model, kc.with_engine(tw::EngineKind::Threaded), {.threaded = tc});
  std::printf("threads: %.3fs wall, %u workers, %llu rollbacks, "
              "%llu steals, %llu parks\n",
              threads.execution_time_sec(), threads.scheduler.num_workers,
              static_cast<unsigned long long>(threads.stats.total_rollbacks()),
              static_cast<unsigned long long>(threads.scheduler.total_steals()),
              static_cast<unsigned long long>(threads.scheduler.total_parks()));

  const bool ok = now.digests == seq.digests && threads.digests == seq.digests;
  std::printf("\ndigest check across kernels: %s\n", ok ? "OK" : "MISMATCH");
  return ok ? 0 : 1;
}
