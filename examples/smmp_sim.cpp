// SMMP example: simulate a shared-memory multiprocessor with all three
// on-line optimizations enabled, and print an end-of-run report.
//
//   $ ./build/examples/smmp_sim [processors] [requests_per_processor]
//
// Demonstrates: building a paper-scale model, enabling dynamic
// checkpointing + dynamic cancellation + SAAW aggregation, validating the
// run against the sequential kernel, and reading the kernel statistics.
#include <cstdio>
#include <cstdlib>

#include "otw/apps/smmp.hpp"
#include "otw/tw/kernel.hpp"

int main(int argc, char** argv) {
  using namespace otw;

  apps::smmp::SmmpConfig app;  // defaults: 16 processors, 4 LPs, 100 objects
  if (argc > 1) {
    app.num_processors = static_cast<std::uint32_t>(std::atoi(argv[1]));
    app.memory_banks = app.num_processors * 4;
  }
  app.requests_per_processor = argc > 2
                                   ? static_cast<std::uint32_t>(std::atoi(argv[2]))
                                   : 500;
  const tw::Model model = apps::smmp::build_model(app);

  tw::KernelConfig kc;
  kc.num_lps = app.num_lps;
  kc.batch_size = 16;
  kc.checkpoint.dynamic = true;
  kc.runtime.cancellation = core::CancellationControlConfig::dynamic();
  kc.aggregation.policy = comm::AggregationPolicy::Adaptive;
  kc.aggregation.window_us = 32.0;

  std::printf("SMMP: %u processors, %u LPs, %zu objects, %u requests each\n",
              app.num_processors, app.num_lps, model.objects.size(),
              app.requests_per_processor);

  const tw::RunResult run = tw::run(model, kc);
  std::printf("\n%s\n", run.stats.summary().c_str());
  std::printf("modeled execution time: %.3f s (%.0f committed events/s)\n",
              run.execution_time_sec(), run.committed_events_per_sec());
  std::printf("host wall time:         %.3f s\n",
              static_cast<double>(run.wall_time_ns) / 1e9);

  // Per-kind final cancellation modes chosen by the dynamic controller.
  const std::uint32_t p = app.num_processors;
  const std::uint32_t banks = app.memory_banks;
  struct Range {
    const char* kind;
    std::uint32_t first, count;
  };
  const Range ranges[] = {{"sources", 0, p},
                          {"caches", p, p},
                          {"banks", 2 * p, banks},
                          {"buses", 2 * p + banks, app.num_lps}};
  std::printf("\nfinal cancellation mode by kind (dynamic selection):\n");
  for (const Range& range : ranges) {
    std::uint32_t lazy = 0;
    for (std::uint32_t i = range.first; i < range.first + range.count; ++i) {
      lazy += run.stats.objects[i].final_mode == core::CancellationMode::Lazy;
    }
    std::printf("  %-8s %u/%u lazy\n", range.kind, lazy, range.count);
  }

  // Validate the committed results against the sequential kernel.
  const tw::SequentialResult seq = tw::run_sequential(model);
  const bool ok = seq.digests == run.digests;
  std::printf("\nsequential validation: %s (%llu events)\n",
              ok ? "OK" : "MISMATCH",
              static_cast<unsigned long long>(seq.events_processed));
  return ok ? 0 : 1;
}
