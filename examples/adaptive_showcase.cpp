// Adaptive showcase: watch the on-line controllers track a workload whose
// character changes mid-run (the paper's core motivation).
//
//   $ ./build/examples/adaptive_showcase [phases] [csv_path] [trace_path]
//
// Runs the phase-shifting PHOLD workload — alternating between an
// order-independent regime (rollback regenerations identical: lazy
// cancellation wins) and an order-dependent regime (regenerations differ:
// aggressive wins) — under full dynamic control, then prints a timeline of
// what the cancellation controllers chose and writes all controller
// trajectories as CSV, plus a Chrome trace_event JSON of the whole run
// (open trace_path in https://ui.perfetto.dev or chrome://tracing) and a
// metrics snapshot next to it. A post-mortem trace analysis (rollback
// cascades, controller convergence, per-epoch commit efficiency) is printed
// and written as markdown to <trace_path>.report.md.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "otw/apps/phold.hpp"
#include "otw/obs/analysis.hpp"
#include "otw/tw/kernel.hpp"
#include "otw/tw/observability.hpp"

int main(int argc, char** argv) {
  using namespace otw;

  const std::uint32_t phases =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 8;
  const char* csv_path = argc > 2 ? argv[2] : "telemetry.csv";
  const char* trace_path = argc > 3 ? argv[3] : "showcase.trace.json";

  apps::phold::PholdConfig app;
  app.num_objects = 16;
  app.num_lps = 4;
  app.population_per_object = 4;
  app.remote_probability = 0.7;
  app.mean_delay = 60;
  app.event_grain_ns = 500;
  app.phase_length = 5'000;
  const tw::Model model = apps::phold::build_model(app);

  tw::KernelConfig kc;
  kc.num_lps = app.num_lps;
  kc.end_time = tw::VirtualTime{app.phase_length * phases};
  kc.batch_size = 32;
  kc.gvt_period_events = 64;
  kc.runtime.cancellation = core::CancellationControlConfig::dynamic();
  kc.checkpoint.dynamic = true;
  kc.aggregation.policy = comm::AggregationPolicy::Adaptive;
  kc.aggregation.window_us = 32.0;
  kc.telemetry.enabled = true;
  kc.telemetry.sample_period_events = 32;
  kc.observability.tracing = true;
  kc.observability.profiling = true;

  platform::SimulatedNowConfig now;
  now.costs = platform::CostModel::free();
  now.costs.wire_latency_ns = 20'000;
  now.costs.msg_send_overhead_ns = 5'000;

  std::printf("phased PHOLD: %u phases of %llu ticks "
              "(even phases favour lazy, odd phases favour aggressive)\n\n",
              phases, static_cast<unsigned long long>(app.phase_length));
  const tw::RunResult r = tw::run(model, kc, {.simulated_now = now});

  // Timeline: fraction of telemetry samples in Lazy mode per phase bucket.
  std::printf("phase  virtual time          lazy-mode samples\n");
  for (std::uint32_t phase = 0; phase < phases; ++phase) {
    const std::uint64_t lo = phase * app.phase_length;
    const std::uint64_t hi = lo + app.phase_length;
    std::uint64_t lazy = 0, total = 0;
    for (const tw::ObjectTrace& trace : r.telemetry.objects) {
      for (const tw::ObjectSample& s : trace.samples) {
        if (s.lvt.ticks() >= lo && s.lvt.ticks() < hi) {
          ++total;
          lazy += s.mode == core::CancellationMode::Lazy;
        }
      }
    }
    const double frac =
        total == 0 ? 0.0 : static_cast<double>(lazy) / static_cast<double>(total);
    std::printf("%5u  [%6llu, %6llu)  %5.1f%%  %s  %s\n", phase,
                static_cast<unsigned long long>(lo),
                static_cast<unsigned long long>(hi), frac * 100.0,
                std::string(static_cast<std::size_t>(frac * 40), '#').c_str(),
                phase % 2 == 0 ? "(lazy-friendly)" : "(aggressive-friendly)");
  }

  std::printf("\ntotal strategy switches: %llu; rollbacks: %llu; "
              "committed: %llu in %.3f modeled seconds\n",
              static_cast<unsigned long long>(
                  r.stats.object_totals().cancellation_switches),
              static_cast<unsigned long long>(r.stats.total_rollbacks()),
              static_cast<unsigned long long>(r.stats.total_committed()),
              r.execution_time_sec());

  std::ofstream csv(csv_path);
  r.telemetry.write_csv(csv);
  std::printf("controller trajectories written to %s\n", csv_path);

  std::ofstream trace(trace_path);
  tw::write_chrome_trace(trace, r);
  std::printf("kernel trace written to %s (%llu records; load in "
              "https://ui.perfetto.dev)\n",
              trace_path,
              static_cast<unsigned long long>(r.trace.total_records()));

  const std::string metrics_path = std::string(trace_path) + ".metrics.jsonl";
  std::ofstream metrics(metrics_path);
  tw::write_metrics_jsonl(metrics, r);
  std::printf("metrics snapshot written to %s\n", metrics_path.c_str());

  // Phase breakdown (summed over LPs, modeled ns).
  obs::PhaseTotals totals;
  for (const obs::PhaseTotals& t : r.lp_phases) {
    totals.merge(t);
  }
  std::printf("\nphase breakdown (modeled time):\n");
  for (std::size_t i = 0; i < obs::kPhaseCount; ++i) {
    if (totals.ns[i] == 0) {
      continue;
    }
    std::printf("  %-18s %10.3f ms  (x%llu)\n",
                obs::to_string(static_cast<obs::Phase>(i)),
                static_cast<double>(totals.ns[i]) / 1e6,
                static_cast<unsigned long long>(totals.count[i]));
  }

  // Post-mortem analysis of the same trace: who started the rollback
  // cascades, how quickly each controller settled, and how much optimistic
  // work each GVT epoch actually kept.
  const obs::AnalysisReport analysis = obs::analyze(r.trace);
  std::printf("\n");
  obs::write_analysis_markdown(std::cout, analysis);
  const std::string report_path = std::string(trace_path) + ".report.md";
  std::ofstream report(report_path);
  obs::write_analysis_markdown(report, analysis);
  std::printf("\nanalysis report written to %s\n", report_path.c_str());

  const tw::SequentialResult seq = tw::run_sequential(model, kc.end_time);
  const bool ok = seq.digests == r.digests;
  std::printf("sequential validation: %s\n", ok ? "OK" : "MISMATCH");
  return ok ? 0 : 1;
}
