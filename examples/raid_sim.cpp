// RAID example: simulate the disk array and compare cancellation strategies,
// showing the per-object-kind preferences that motivate DYNAMIC cancellation
// (disks favour lazy, forks favour aggressive).
//
//   $ ./build/examples/raid_sim [requests_per_source]
#include <cstdio>
#include <cstdlib>

#include "otw/apps/raid.hpp"
#include "otw/tw/kernel.hpp"

namespace {

using namespace otw;

tw::RunResult run_with(const tw::Model& model, const apps::raid::RaidConfig& app,
                       const core::CancellationControlConfig& cancellation) {
  tw::KernelConfig kc;
  kc.num_lps = app.num_lps;
  kc.batch_size = 16;
  kc.checkpoint.interval = 4;
  kc.runtime.cancellation = cancellation;
  return tw::run(model, kc);
}

}  // namespace

int main(int argc, char** argv) {
  apps::raid::RaidConfig app;  // defaults: 20 sources, 4 forks, 8 disks, 4 LPs
  app.requests_per_source =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 400;
  const tw::Model model = apps::raid::build_model(app);

  std::printf("RAID-5: %u sources -> %u forks -> %u disks on %u LPs, "
              "%u requests/source\n\n",
              app.num_sources, app.num_forks, app.num_disks, app.num_lps,
              app.requests_per_source);

  const struct {
    const char* name;
    core::CancellationControlConfig config;
  } strategies[] = {
      {"aggressive", core::CancellationControlConfig::aggressive()},
      {"lazy", core::CancellationControlConfig::lazy()},
      {"dynamic", core::CancellationControlConfig::dynamic()},
  };

  const tw::RunResult* dynamic_run = nullptr;
  static tw::RunResult results[3];
  int i = 0;
  for (const auto& strategy : strategies) {
    results[i] = run_with(model, app, strategy.config);
    const tw::RunResult& r = results[i];
    std::printf("%-10s exec %.3fs | rollbacks %llu | anti-messages %llu | "
                "%0.f ev/s\n",
                strategy.name, r.execution_time_sec(),
                static_cast<unsigned long long>(r.stats.total_rollbacks()),
                static_cast<unsigned long long>(
                    r.stats.object_totals().anti_messages_sent),
                r.committed_events_per_sec());
    if (i == 2) dynamic_run = &results[i];
    ++i;
  }

  // What did the dynamic controller decide, per object kind?
  std::printf("\ndynamic cancellation decisions:\n");
  const struct {
    const char* kind;
    std::uint32_t first, count;
  } kinds[] = {{"sources", 0, app.num_sources},
               {"forks", app.num_sources, app.num_forks},
               {"disks", app.num_sources + app.num_forks, app.num_disks}};
  for (const auto& kind : kinds) {
    std::uint32_t lazy = 0;
    double hr_sum = 0;
    for (std::uint32_t k = kind.first; k < kind.first + kind.count; ++k) {
      const auto& obj = dynamic_run->stats.objects[k];
      lazy += obj.final_mode == core::CancellationMode::Lazy;
      hr_sum += obj.final_hit_ratio;
    }
    std::printf("  %-8s %u/%u lazy (mean final hit ratio %.2f)\n", kind.kind,
                lazy, kind.count, hr_sum / kind.count);
  }

  const tw::SequentialResult seq = tw::run_sequential(model);
  bool ok = true;
  for (const tw::RunResult& r : results) {
    ok = ok && r.digests == seq.digests;
  }
  std::printf("\nsequential validation: %s\n", ok ? "OK" : "MISMATCH");
  return ok ? 0 : 1;
}
