// Quickstart: a two-object ping-pong model, run on every kernel through the
// one public entry point.
//
//   $ ./build/examples/quickstart
//
// Demonstrates the application API (SimulationObject / ObjectContext /
// PodState), building a Model, and engine selection via
// KernelConfig::engine.kind — the same model runs sequentially (ground
// truth), on the deterministic simulated-NOW Time Warp kernel, on real
// threads, and sharded across worker processes.
#include <cstdio>

#include "otw/otw.hpp"

namespace {

using namespace otw;

struct Ball {
  std::uint64_t rally = 0;
};
static_assert(std::has_unique_object_representations_v<Ball>);

struct PlayerState {
  std::uint64_t hits = 0;
  std::uint64_t longest_rally = 0;
};
static_assert(std::has_unique_object_representations_v<PlayerState>);

class Player final : public tw::SimulationObject {
 public:
  Player(tw::ObjectId peer, bool serves, std::uint64_t end_rally)
      : peer_(peer), serves_(serves), end_rally_(end_rally) {}

  std::unique_ptr<tw::ObjectState> initial_state() const override {
    return std::make_unique<tw::PodState<PlayerState>>();
  }

  void initialize(tw::ObjectContext& ctx) override {
    if (serves_) {
      ctx.send_pod(peer_, /*delay=*/7, Ball{0});
    }
  }

  void process_event(tw::ObjectContext& ctx, const tw::Event& event) override {
    auto& me = ctx.state_as<PlayerState>();
    auto ball = event.payload.as<Ball>();
    ++me.hits;
    me.longest_rally = std::max(me.longest_rally, ball.rally);
    if (ball.rally < end_rally_) {
      ++ball.rally;
      ctx.send_pod(peer_, /*delay=*/5 + ball.rally % 3, ball);
    }
  }

  const char* kind() const noexcept override { return "player"; }

 private:
  tw::ObjectId peer_;
  bool serves_;
  std::uint64_t end_rally_;
};

constexpr std::uint64_t kRallies = 10'000;

}  // namespace

int main() {
  // Two players on two LPs: every message crosses the (simulated) network.
  tw::Model model;
  model.add(/*lp=*/0, [] { return std::make_unique<Player>(1, true, kRallies); });
  model.add(/*lp=*/1, [] { return std::make_unique<Player>(0, false, kRallies); });

  tw::KernelConfig kc;
  kc.num_lps = 2;
  kc.checkpoint.interval = 4;
  kc.runtime.cancellation = core::CancellationControlConfig::dynamic();
  kc.aggregation.policy = comm::AggregationPolicy::Fixed;
  kc.aggregation.window_us = 64.0;

  // 1. Ground truth: the sequential kernel through the same entry point.
  const tw::RunResult seq =
      tw::run(model, kc.with_engine(tw::EngineKind::Sequential));
  std::printf("sequential : %llu events\n",
              static_cast<unsigned long long>(seq.stats.total_committed()));

  // 2. Time Warp on the deterministic simulated network of workstations
  //    (EngineKind::SimulatedNow is the KernelConfig default).
  const tw::RunResult now = tw::run(model, kc);
  std::printf("simulated  : %llu committed events in %.3f modeled seconds "
              "(%llu physical messages, %llu rollbacks)\n",
              static_cast<unsigned long long>(now.stats.total_committed()),
              now.execution_time_sec(),
              static_cast<unsigned long long>(now.physical_messages),
              static_cast<unsigned long long>(now.stats.total_rollbacks()));

  // 3. Time Warp on real threads.
  const tw::RunResult threads =
      tw::run(model, kc.with_engine(tw::EngineKind::Threaded));
  std::printf("threaded   : %llu committed events in %.3f wall seconds\n",
              static_cast<unsigned long long>(threads.stats.total_committed()),
              threads.execution_time_sec());

  // 4. Time Warp sharded across two worker processes over TCP loopback.
  const tw::RunResult dist =
      tw::run(model, kc.with_engine(tw::EngineKind::Distributed, /*size=*/2));
  std::printf("distributed: %llu committed events across %u shards "
              "(%llu wire frames)\n",
              static_cast<unsigned long long>(dist.stats.total_committed()),
              dist.dist.num_shards,
              static_cast<unsigned long long>(dist.dist.frames_sent));

  // All kernels must agree on the committed final states.
  const bool ok = now.digests == seq.digests &&
                  threads.digests == seq.digests && dist.digests == seq.digests;
  std::printf("digest check: %s\n", ok ? "OK" : "MISMATCH");
  return ok ? 0 : 1;
}
